(* Validates the flight-recorder artefacts a telemetry-enabled CLI run
   writes: the JSONL event log from [--events-out] (every line must parse
   back through [Obs.Json.parse] and [Obs.Event.of_json], at least one
   event, at least one op-completion record carrying [dur_ms]) and the
   Chrome trace-event file from [--trace-out] (must parse, [traceEvents]
   non-empty, every entry carrying name/ph/ts/dur).

     check_events.exe EVENTS.jsonl TRACE.json

   This is what `dune build @obs-smoke` runs. *)

module Obs = Imprecise.Obs

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("check_events: " ^ msg);
      exit 1)
    fmt

let check_events file =
  let ic = open_in file in
  let events = ref 0 and with_dur = ref 0 and line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then begin
         let ev =
           match Obs.Json.parse line with
           | Error e -> fail "%s:%d: does not parse as JSON: %s" file !line_no e
           | Ok json -> (
               match Obs.Event.of_json json with
               | Error e -> fail "%s:%d: not an event: %s" file !line_no e
               | Ok ev -> ev)
         in
         incr events;
         if Obs.Event.field "dur_ms" ev <> None then incr with_dur
       end
     done
   with End_of_file -> close_in ic);
  if !events = 0 then fail "%s: no events" file;
  if !with_dur = 0 then fail "%s: no op-completion records (dur_ms)" file;
  (!events, !with_dur)

let check_trace file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let json =
    match Obs.Json.parse s with
    | Ok j -> j
    | Error e -> fail "%s does not parse as JSON: %s" file e
  in
  let spans =
    match Obs.Json.member "traceEvents" json with
    | Some (Obs.Json.List (_ :: _ as l)) -> l
    | Some (Obs.Json.List []) -> fail "%s: traceEvents is empty" file
    | _ -> fail "%s: missing \"traceEvents\" list" file
  in
  List.iteri
    (fun i span ->
      List.iter
        (fun key ->
          if Obs.Json.member key span = None then
            fail "%s: traceEvents[%d] has no %S" file i key)
        [ "name"; "ph"; "ts"; "dur" ])
    spans;
  List.length spans

let () =
  let events_file, trace_file =
    match Sys.argv with
    | [| _; e; t |] -> (e, t)
    | _ -> fail "usage: check_events EVENTS.jsonl TRACE.json"
  in
  let events, with_dur = check_events events_file in
  let spans = check_trace trace_file in
  Printf.printf "check_events: %s OK (%d events, %d with dur_ms), %s OK (%d spans)\n"
    events_file events with_dur trace_file spans
