(* Reproduction harness for every table and figure in the paper, plus
   Bechamel performance benchmarks.

     dune exec bench/main.exe            runs everything
     dune exec bench/main.exe -- table1  runs one experiment
       (table1 | figure5 | typical | addressbook | queries | quality |
        feedback | ablation | perf)

   Absolute counts are not expected to match the paper (the sources are
   synthetic stand-ins for IMDB/MPEG-7; see DESIGN.md); the shape is: which
   rule wins, by how many orders of magnitude, and where the residual
   uncertainty lands. EXPERIMENTS.md records paper-vs-measured. *)

open Imprecise

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let human n =
  if n >= 1e9 then Printf.sprintf "%.2fG" (n /. 1e9)
  else if n >= 1e6 then Printf.sprintf "%.2fM" (n /. 1e6)
  else if n >= 1e3 then Printf.sprintf "%.1fk" (n /. 1e3)
  else Printf.sprintf "%.0f" n

(* Every experiment runs under [run_experiment] below, which records its
   name here — so a failure anywhere in the harness names the experiment it
   happened in, not just the operation that failed. *)
let in_experiment = ref "(harness)"

let or_fail what pp = function
  | Ok v -> v
  | Error e -> Fmt.failwith "[%s] %s failed: %a" !in_experiment what pp e

let stats_or_fail ~rules ?factorize ~dtd a b =
  or_fail "integration stats" Integrate.pp_error
    (integration_stats ~rules ?factorize ~dtd a b)

let integrate_or_fail ~rules ~dtd a b =
  or_fail "integration" Integrate.pp_error (integrate ~rules ~dtd a b)

(* ---- Table I -------------------------------------------------------------- *)

(* Paper, Table I: effective rules vs #nodes (reported in units of 100). *)
let table1_paper =
  [
    ("none", 1395800.); ("genre", 601500.); ("title", 24300.);
    ("genre+title", 15400.); ("genre+title+year", 2900.);
  ]

let table1 () =
  section "Table I - effect of rules on uncertainty (confusing 6 vs 6)";
  let wl = Data.Workloads.confusing () in
  let a = Data.Workloads.mpeg7_doc wl and b = Data.Workloads.imdb_doc wl in
  Printf.printf "%-20s %12s %12s %14s %10s %8s\n" "rules" "paper-nodes" "nodes" "worlds"
    "unsure" "factor";
  let prev = ref None in
  List.iter2
    (fun (rs : Rulesets.t) (_, paper) ->
      let s = stats_or_fail ~rules:rs ~dtd:wl.dtd a b in
      let factor =
        match !prev with
        | None -> ""
        | Some p -> Printf.sprintf "%.1fx" (p /. s.Integrate.nodes)
      in
      prev := Some s.Integrate.nodes;
      Printf.printf "%-20s %12s %12s %14s %10d %8s\n" rs.name (human paper)
        (human s.Integrate.nodes) (human s.Integrate.worlds)
        s.Integrate.trace.Integrate.unsure_pairs factor)
    Rulesets.table1 table1_paper;
  Printf.printf
    "shape check: each added rule reduces #nodes; title >> genre; year strongest.\n"

(* ---- Figure 5 ------------------------------------------------------------- *)

let figure5 () =
  section "Figure 5 - influence of rules on scalability (6 MPEG-7 vs n IMDB)";
  let title_only = Rulesets.movie ~title:true () in
  let genre_title = Rulesets.movie ~genre:true ~title:true () in
  let title_year = Rulesets.movie ~title:true ~year:true () in
  Printf.printf "%-6s %16s %16s %16s\n" "n" "title-only" "genre+title" "title+year";
  List.iter
    (fun n ->
      let wl = Data.Workloads.figure5 ~n_imdb:n in
      let a = Data.Workloads.mpeg7_doc wl and b = Data.Workloads.imdb_doc wl in
      let s1 = stats_or_fail ~rules:title_only ~dtd:wl.dtd a b in
      let s2 = stats_or_fail ~rules:genre_title ~dtd:wl.dtd a b in
      let s3 = stats_or_fail ~rules:title_year ~dtd:wl.dtd a b in
      Printf.printf "%-6d %16s %16s %16s\n" n (human s1.Integrate.nodes)
        (human s2.Integrate.nodes) (human s3.Integrate.nodes))
    [ 0; 5; 10; 15; 20; 25; 30; 35; 40; 45; 50; 55; 60 ];
  Printf.printf
    "shape check (paper, log axis 1e3..1e9): title-only grows by orders of\n\
     magnitude; the stronger rule sets stay orders of magnitude below it.\n\
     (The paper's in-text 6-vs-60 'about 1.5 million nodes with effective\n\
     rules' sits between these columns, as it does here on a log axis.)\n"

(* ---- typical conditions ----------------------------------------------------- *)

let typical () =
  section "Section V in-text - typical conditions (6 movies of 1995 vs 60)";
  let wl = Data.Workloads.typical () in
  let a = Data.Workloads.mpeg7_doc wl and b = Data.Workloads.imdb_doc wl in
  let s = stats_or_fail ~rules:Rulesets.full ~dtd:wl.dtd a b in
  Printf.printf "paper   : ~3500 nodes, 4 possible worlds, 2 undecided pairs\n";
  Printf.printf "measured: %s nodes, %.0f possible worlds, %d undecided pairs\n"
    (human s.Integrate.nodes) s.Integrate.worlds
    s.Integrate.trace.Integrate.unsure_pairs

(* ---- Figure 2 worked example ------------------------------------------------- *)

let addressbook () =
  section "Figure 2 - two address books, DTD 'person: nm?, tel?'";
  let rules = Rulesets.generic in
  let doc =
    integrate_or_fail ~rules ~dtd:Data.Addressbook.dtd Data.Addressbook.source_a
      Data.Addressbook.source_b
  in
  Printf.printf "paper   : 3 possible worlds (two Johns; John/1111; John/2222)\n";
  Printf.printf "measured: %d distinct worlds, %d representation nodes\n"
    (Worlds.distinct_count doc) (node_count doc);
  List.iter
    (fun (p, forest) ->
      Printf.printf "  %.2f  %s\n" p
        (String.concat "" (List.map (fun t -> Xml.Printer.to_string t) forest)))
    (Worlds.merged doc)

(* ---- Section VI queries --------------------------------------------------------- *)

let query_document () =
  let wl = Data.Workloads.confusing () in
  let rules = Rulesets.movie ~genre:true ~title:true ~director:true () in
  let cfg =
    Integrate.config ~oracle:rules.Rulesets.oracle ~reconcile:rules.Rulesets.reconcile
      ~dtd:wl.dtd ()
  in
  or_fail "query document" Integrate.pp_error
    (Integrate.integrate cfg (Data.Workloads.mpeg7_doc wl) (Data.Workloads.imdb_doc wl))

let print_answers answers =
  List.iter
    (fun (a : Answer.t) ->
      Printf.printf "  %3.0f%%  %s\n" (100. *. a.Answer.prob) a.Answer.value)
    answers

let q1 = {|//movie[.//genre="Horror"]/title|}

let q2 = {|//movie[some $d in .//director satisfies contains($d,"John")]/title|}

let queries () =
  section "Section VI - probabilistic querying under confusing conditions";
  let doc = query_document () in
  Printf.printf "integrated document: %d nodes, %s possible worlds\n" (node_count doc)
    (human (world_count doc));
  Printf.printf "paper's document: 33856 possible worlds\n";
  Printf.printf "\nQ1  %s\n" q1;
  Printf.printf "paper   :  97%% Jaws; 97%% Jaws 2 (and nothing else)\n";
  Printf.printf "measured:\n";
  print_answers (rank doc q1);
  Printf.printf "\nQ2  %s\n" q2;
  Printf.printf
    "paper   : 100%% Die Hard: With a Vengeance; 96%% Mission: Impossible II;\n\
    \          21%% Mission: Impossible (the 'II typo' artefact)\n";
  Printf.printf "measured:\n";
  print_answers (rank doc q2)

(* ---- extension: answer quality -------------------------------------------------- *)

let quality () =
  section "Extension - answer quality vs rule set (announced in Sections V/VII)";
  let wl = Data.Workloads.confusing () in
  let truth = Data.Workloads.titles_with_genre wl "Horror" in
  Printf.printf "query: %s   ground truth: %s\n" q1 (String.concat ", " truth);
  Printf.printf "%-28s %10s %10s %10s %10s\n" "rules" "precision" "recall" "F" "entropy";
  List.iter
    (fun (rs : Rulesets.t) ->
      let cfg =
        Integrate.config ~oracle:rs.Rulesets.oracle ~reconcile:rs.Rulesets.reconcile
          ~dtd:wl.dtd ()
      in
      match
        Integrate.integrate cfg (Data.Workloads.mpeg7_doc wl)
          (Data.Workloads.imdb_doc wl)
      with
      | Error e ->
          Printf.printf "%-28s (skipped: %s)\n" rs.name
            (Fmt.str "%a" Integrate.pp_error e)
      | Ok doc ->
          let answers = rank doc q1 in
          let p = Quality.probabilistic_precision answers ~truth in
          let r = Quality.probabilistic_recall answers ~truth in
          let f = Quality.f_measure answers ~truth in
          let entropy =
            if world_count doc <= 200_000. then
              Printf.sprintf "%.1f b" (Quality.world_entropy doc)
            else "-"
          in
          Printf.printf "%-28s %10.3f %10.3f %10.3f %10s\n" rs.name p r f entropy)
    [
      Rulesets.movie ~genre:true ~title:true ();
      Rulesets.movie ~genre:true ~title:true ~director:true ();
      Rulesets.movie ~genre:true ~title:true ~year:true ~director:true ();
    ];
  Printf.printf
    "note: the paper warns that over-pruning can remove valid possibilities;\n\
     precision rises with stronger rules while recall stays high here because\n\
     the rules are sound for this workload.\n"

(* ---- extension: user feedback ----------------------------------------------------- *)

let feedback () =
  section "Extension - the feedback loop (ref [4]; unimplemented in the paper)";
  (* Feedback that is decidable at a single probability node prunes the
     database in place (the paper's "remove data related to impossible
     worlds"); correlated evidence falls back to exact conditioning. *)
  let wl = Data.Workloads.typical () in
  let doc =
    integrate_or_fail ~rules:Rulesets.full ~dtd:wl.dtd (Data.Workloads.mpeg7_doc wl)
      (Data.Workloads.imdb_doc wl)
  in
  let report label doc =
    Printf.printf "%-58s %6d nodes %4s worlds  certainty %.2f\n" label (node_count doc)
      (human (world_count doc))
      (Feedback.certainty ~limit:2e5 doc)
  in
  report "initial integration (typical 6 vs 60)" doc;
  let steps =
    [
      ( "user confirms the two Twelve Monkeys entries are one movie",
        "count(//movie[title='Twelve Monkeys'])", "1", true );
      ( "user confirms the two GoldenEye entries are one movie",
        "count(//movie[title='GoldenEye'])", "1", true );
    ]
  in
  let final =
    List.fold_left
      (fun doc (label, query, value, correct) ->
        match Feedback.prune doc ~query ~value ~correct with
        | Ok doc' ->
            report label doc';
            doc'
        | Error e ->
            Printf.printf "%-58s (no-op: %s)\n" label (Fmt.str "%a" Feedback.pp_error e);
            doc)
      doc steps
  in
  Printf.printf
    "feedback removed the data of impossible worlds: %d -> %d nodes, certain: %b\n"
    (node_count doc) (node_count final)
    (Pxml.is_certain final)

(* ---- ablations --------------------------------------------------------------------- *)

let ablation () =
  section "Ablation - design choices (this repo's additions)";
  let wl = Data.Workloads.confusing () in
  let a = Data.Workloads.mpeg7_doc wl and b = Data.Workloads.imdb_doc wl in
  Printf.printf "A. cluster factorisation (independent choices stored locally)\n";
  Printf.printf "%-20s %14s %14s %10s\n" "rules" "flat-nodes" "factor-nodes" "saving";
  List.iter
    (fun (rs : Rulesets.t) ->
      let flat = stats_or_fail ~rules:rs ~dtd:wl.dtd a b in
      let fact = stats_or_fail ~rules:rs ~factorize:true ~dtd:wl.dtd a b in
      Printf.printf "%-20s %14s %14s %9.1fx\n" rs.name (human flat.Integrate.nodes)
        (human fact.Integrate.nodes)
        (flat.Integrate.nodes /. fact.Integrate.nodes))
    Rulesets.table1;
  Printf.printf "\nB. compaction of the query document\n";
  let doc = query_document () in
  let compacted = Compact.compact doc in
  Printf.printf "before %d nodes, after %d nodes (%.1f%% saved)\n" (node_count doc)
    (node_count compacted)
    (100.
    *. (1. -. (float_of_int (node_count compacted) /. float_of_int (node_count doc))));
  Printf.printf "\nC. direct probabilistic evaluation vs world enumeration (Q1)\n";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let direct, td = time (fun () -> rank ~strategy:Pquery.Direct_only doc q1) in
  let naive, tn =
    time (fun () -> rank ~strategy:Pquery.Enumerate_only ~world_limit:1e7 doc q1)
  in
  Printf.printf "direct   : %.3fs (%d answers)\n" td (List.length direct);
  Printf.printf "enumerate: %.3fs (%d answers)\n" tn (List.length naive);
  Printf.printf "agree    : %b\n" (Answer.equal ~tolerance:1e-6 direct naive)

(* ---- extension: lossy reduction vs answer quality -------------------------------- *)

let reduction () =
  section "Extension - 'reduction should not be pushed too far' (Section V)";
  (* The dangerous case for lossy reduction: the less-trusted source is the
     one that is right. The integrator weighs MPEG-7 values at 0.7, but
     ground truth says John's number is the IMDB one (2222). Pruning
     low-probability possibilities deletes the true value. *)
  let oracle =
    (* the Oracle leans towards the match (0.6) and towards MPEG-7's value
       (0.75) - and is wrong about the latter *)
    Imprecise.Oracle.make
      ~default:(Imprecise.Oracle.constant_prob 0.6)
      [ Imprecise.Oracle.deep_equal_rule ]
  in
  let cfg =
    Integrate.config ~oracle ~dtd:Data.Addressbook.dtd
      ~value_conflict:(fun _ _ -> 0.75) ()
  in
  let doc =
    or_fail "reduction setup" Integrate.pp_error
      (Integrate.integrate cfg Data.Addressbook.source_a Data.Addressbook.source_b)
  in
  let truth = [ "2222" ] in
  Printf.printf "query: //person/tel   ground truth: John's number is 2222\n";
  Printf.printf "%-10s %8s %8s %12s %18s\n" "threshold" "nodes" "worlds" "P(2222)" "recall(truth)";
  List.iter
    (fun threshold ->
      let pruned = if threshold <= 0. then doc else Compact.prune_unlikely ~threshold doc in
      let answers = rank pruned "//person/tel" in
      let p =
        match List.find_opt (fun (a : Answer.t) -> a.Answer.value = "2222") answers with
        | Some a -> a.Answer.prob
        | None -> 0.
      in
      Printf.printf "%-10.2f %8d %8.0f %12.3f %18.3f\n" threshold (node_count pruned)
        (world_count pruned) p
        (Quality.probabilistic_recall answers ~truth))
    [ 0.; 0.2; 0.3; 0.5 ];
  Printf.printf
    "moderate pruning is harmless; past the true value's probability the valid\n\
     possibility is eliminated and recall collapses - the paper's warning.\n"

(* ---- extension: sampling accuracy ---------------------------------------------------- *)

let sampling () =
  section "Extension - Monte-Carlo query answering (approximate, any scale)";
  let doc = query_document () in
  let exact = rank ~strategy:Pquery.Direct_only doc q2 in
  let prob answers v =
    match List.find_opt (fun (a : Answer.t) -> a.Answer.value = v) answers with
    | Some a -> a.Answer.prob
    | None -> 0.
  in
  Printf.printf "query: %s\n" q2;
  Printf.printf "%-10s %22s\n" "samples" "max |error| vs exact";
  List.iter
    (fun n ->
      let approx = rank ~strategy:(Pquery.Sample { n; seed = 42 }) doc q2 in
      let err =
        List.fold_left
          (fun acc (a : Answer.t) ->
            Float.max acc (Float.abs (a.Answer.prob -. prob approx a.Answer.value)))
          0. exact
      in
      Printf.printf "%-10d %22.4f\n" n err)
    [ 100; 1_000; 10_000 ];
  Printf.printf "error shrinks as O(1/sqrt n); sampling needs no enumeration at all.\n"

(* ---- extension: scalable probabilistic querying --------------------------------------- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let pquery_enumerate () =
  section "Querying - sequential world enumeration (the reference evaluator)";
  let doc = query_document () in
  Printf.printf "document: %d nodes, %s possible worlds\n" (node_count doc)
    (human (world_count doc));
  List.iter
    (fun (label, q) ->
      let answers, t =
        time (fun () -> rank ~strategy:Pquery.Enumerate_only ~world_limit:1e7 doc q)
      in
      Printf.printf "%-4s %8.3fs  %d answers\n" label t (List.length answers))
    [ ("Q1", q1); ("Q2", q2) ]

let pquery_parallel () =
  section "Querying - parallel world enumeration (--jobs)";
  let doc = query_document () in
  Printf.printf "document: %s worlds, %d cores on this machine\n"
    (human (world_count doc))
    (Domain.recommended_domain_count ());
  let seq, t1 =
    time (fun () -> rank ~strategy:Pquery.Enumerate_only ~world_limit:1e7 doc q1)
  in
  let par, t4 =
    time (fun () -> rank ~strategy:Pquery.Enumerate_only ~world_limit:1e7 ~jobs:4 doc q1)
  in
  Printf.printf "Q1 jobs=1: %.3fs   jobs=4: %.3fs   speedup %.2fx\n" t1 t4 (t1 /. t4);
  Printf.printf "answers agree: %b\n" (Answer.equal ~tolerance:1e-9 seq par);
  Printf.printf
    "(the shards partition the choice space; speedup tracks the number of\n\
     physical cores, and is ~1x on a single-core machine)\n"

let pquery_cached () =
  section "Querying - the LRU answer cache (store generations invalidate)";
  let doc = query_document () in
  let store = Store.create () in
  Store.put store "movies" (Store.Probabilistic doc);
  let run () =
    or_fail "cached query" Fmt.string
      (query_store ~strategy:Pquery.Enumerate_only ~world_limit:1e7 store "movies" q1)
  in
  let cold, t_cold = time run in
  let warm_runs = 1000 in
  let warm, t_warm_total =
    time (fun () ->
        let rec go n last = if n = 0 then last else go (n - 1) (run ()) in
        go warm_runs cold)
  in
  let t_warm = t_warm_total /. float_of_int warm_runs in
  Printf.printf "cold (miss, full enumeration): %8.3fs\n" t_cold;
  Printf.printf "warm (hit, avg of %d)        : %.6fs   speedup %.0fx\n" warm_runs t_warm
    (t_cold /. t_warm);
  Printf.printf "warm answers agree: %b\n" (Answer.equal ~tolerance:1e-9 cold warm);
  (* a put of the same name moves the generation; the next query must miss *)
  Store.put store "movies" (Store.Probabilistic doc);
  let misses = Obs.Metrics.counter "pquery.cache.miss" in
  let before = Obs.Metrics.count misses in
  let fresh, t_inval = time run in
  Printf.printf "after Store.put: recomputed (miss: %b) in %.3fs, agrees: %b\n"
    (Obs.Metrics.count misses = before + 1)
    t_inval
    (Answer.equal ~tolerance:1e-9 cold fresh)

(* ---- extension: graceful degradation -------------------------------------------------- *)

let pquery_degraded () =
  section "Resilience - graceful degradation under starved budgets (doc/resilience.md)";
  let doc = query_document () in
  (* count(..) is outside the direct evaluator's class, so the exact rung
     must enumerate — and 500 work units cannot cover this document *)
  let q = Printf.sprintf "count(%s)" q1 in
  let exact = rank ~strategy:Pquery.Enumerate_only ~world_limit:1e7 doc q in
  Printf.printf "document: %d nodes, %s possible worlds; query: %s\n" (node_count doc)
    (human (world_count doc)) q;
  let budget = Resilience.Budget.create ~max_worlds:500 () in
  let graded, t = time (fun () -> Pquery.rank_graded ~budget doc q) in
  let prob answers v =
    match List.find_opt (fun (a : Answer.t) -> a.Answer.value = v) answers with
    | Some a -> a.Answer.prob
    | None -> 0.
  in
  let err =
    List.fold_left
      (fun acc (a : Answer.t) ->
        Float.max acc (Float.abs (a.Answer.prob -. prob graded.Resilience.Degrade.value a.Answer.value)))
      0. exact
  in
  (match graded.Resilience.Degrade.grade with
  | Resilience.Degrade.Exact ->
      Fmt.failwith "[%s] a 500-world budget cannot rank %g worlds exactly" !in_experiment
        (world_count doc)
  | Resilience.Degrade.Approximate { rung; tolerance; confidence } ->
      Printf.printf
        "budget 500 worlds: degraded to %-7s in %.3fs — max |error| %.4f vs declared \
         tolerance %.4f (confidence %.3f)\n"
        rung t err tolerance confidence;
      (* small slack on top of the declared bound for the Hoeffding tail *)
      if err > tolerance +. 0.02 then
        Fmt.failwith "[%s] degraded answer off by %.4f > declared %.4f" !in_experiment err
          tolerance);
  (* a deadline of D ms must halt an open-ended enumeration within 2·D *)
  let huge =
    Pxml.certain
      [
        Pxml.elem "r"
          (List.init 30 (fun i ->
               Pxml.dist
                 [
                   Pxml.choice ~prob:0.5
                     [ Pxml.Elem ("v", [], [ Pxml.certain [ Pxml.Text (string_of_int i) ] ]) ];
                   Pxml.choice ~prob:0.5 [];
                 ]))
      ]
  in
  let d_ms = 50 in
  let deadline = Resilience.Budget.create ~timeout_ms:d_ms () in
  let t0 = Unix.gettimeofday () in
  (match
     rank ~budget:deadline ~strategy:Pquery.Enumerate_only ~world_limit:1e12 huge "//r/v"
   with
  | _ -> Fmt.failwith "[%s] 2^30 worlds cannot be enumerated in %d ms" !in_experiment d_ms
  | exception Resilience.Budget.Exceeded Resilience.Budget.Deadline -> ());
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Printf.printf "deadline %d ms on 2^30 worlds: halted in %.1f ms" d_ms elapsed_ms;
  if elapsed_ms >= 2. *. float_of_int d_ms then
    Fmt.failwith "[%s] deadline %d ms only halted after %.1f ms (> 2x)" !in_experiment d_ms
      elapsed_ms;
  Printf.printf " (< 2x the deadline)\n";
  Printf.printf
    "(the ladder fell exact -> top-k -> sampling; every answer carries its\n\
     declared tolerance, so 'good is good enough' extends to time budgets)\n"

(* ---- extension: static analysis prune ------------------------------------------------- *)

let analyze_prune () =
  section "Static analysis - pruning statically-empty queries (doc/analysis.md)";
  let doc = query_document () in
  let dead = "//movie/nonexistent" in
  let pruned_counter = Obs.Metrics.counter "pquery.static_pruned" in
  let before = Obs.Metrics.count pruned_counter in
  let pruned, t_pruned =
    time (fun () -> rank ~strategy:Pquery.Enumerate_only ~world_limit:1e7 doc dead)
  in
  let full, t_full =
    time (fun () ->
        rank ~strategy:Pquery.Enumerate_only ~static_check:false ~world_limit:1e7 doc
          dead)
  in
  Printf.printf "document: %d nodes, %s possible worlds\n" (node_count doc)
    (human (world_count doc));
  Printf.printf "dead query: %s (no such path exists in any world)\n" dead;
  Printf.printf "pruned (static check on): %.6fs  %d answers\n" t_pruned
    (List.length pruned);
  Printf.printf "full world enumeration  : %.3fs  %d answers\n" t_full (List.length full);
  Printf.printf "agree: %b   speedup: %.0fx   pquery.static_pruned: +%d\n"
    (pruned = full)
    (t_full /. Float.max t_pruned 1e-9)
    (Obs.Metrics.count pruned_counter - before);
  (* and a live query must sail through the check unpruned *)
  let live, t_live =
    time (fun () -> rank ~strategy:Pquery.Enumerate_only ~world_limit:1e7 doc q1)
  in
  Printf.printf "live query %s: %.3fs, %d answers (not pruned)\n" q1 t_live
    (List.length live)

(* ---- extension: static query planner --------------------------------------------------- *)

let pquery_direct_wide () =
  section "Static planner - routing the widened direct fragment (doc/analysis.md)";
  (* The §VI document first: integration feeds the usual counters, and the
     paper's queries plus widened shapes must all route past enumeration. *)
  let doc = query_document () in
  Printf.printf "document: %d nodes, %s possible worlds\n" (node_count doc)
    (human (world_count doc));
  List.iter
    (fun q ->
      let plan = Pquery.plan doc q in
      Printf.printf "%-9s %s\n"
        (Analyze.Plan.route_to_string plan.Analyze.Plan.route)
        q;
      if plan.Analyze.Plan.route <> Analyze.Plan.Direct then
        Fmt.failwith "[%s] %s did not route direct" !in_experiment q)
    [ q1; q2; "/descendant::movie/title"; "//movie/title/text()" ];
  let direct, t_direct = time (fun () -> rank doc q1) in
  let enum, t_enum =
    time (fun () -> rank ~strategy:Pquery.Enumerate_only ~world_limit:1e7 doc q1)
  in
  Printf.printf "Q1 planned (direct): %.4fs   forced enumeration: %.3fs   speedup %.0fx\n"
    t_direct t_enum
    (t_enum /. Float.max t_direct 1e-9);
  if not (Answer.equal ~tolerance:1e-9 direct enum) then
    Fmt.failwith "[%s] direct route disagrees with enumeration on Q1" !in_experiment;
  (* The fuzz-representative corpus: the differential harness's generator
     with a pool biased to the widened fragment. Every case runs under Auto
     with the static-empty prune off so the planner decides the route, and
     the route the evaluator takes must match the plan. Answer agreement
     with raw enumeration is certified exhaustively by @fuzz-smoke and
     @plan-stress; here the first two seeds are re-checked as a spot probe
     (a full per-case reference would drown pquery.path.enumerate in
     reference runs and make the routing tally meaningless). *)
  let widened =
    [
      "//a"; "//item/name"; "/descendant::a"; "//item/descendant::b"; "item/name";
      {|//a[contains(.,"z")]|}; {|//item[name="42"]/b[2]|}; {|//a[b[1]="x"]|};
      "//a/text()"; {|//a[.="x"]|};
    ]
  in
  let fallbacks = [ "//a[1]"; "count(//a)"; "//a | //b" ] in
  let c_direct = Obs.Metrics.counter "pquery.path.direct" in
  let c_enum = Obs.Metrics.counter "pquery.path.enumerate" in
  let d0 = Obs.Metrics.count c_direct and e0 = Obs.Metrics.count c_enum in
  let cases = ref 0 and spot_checked = ref 0 and disagreements = ref 0 in
  for seed = 0 to 29 do
    let doc = fst (Data.Random_docs.pxml (Data.Prng.make seed) ~depth:2) in
    if Pxml.world_count doc <= 5000. then
      List.iter
        (fun q ->
          incr cases;
          let plan = Pquery.plan doc q in
          let d_before = Obs.Metrics.count c_direct in
          let auto = rank ~static_check:false doc q in
          let took_direct = Obs.Metrics.count c_direct > d_before in
          (match plan.Analyze.Plan.route with
          | Analyze.Plan.Direct when not took_direct ->
              Fmt.failwith "[%s] plan routed %s direct but Auto enumerated"
                !in_experiment q
          | Analyze.Plan.Enumerate when took_direct ->
              Fmt.failwith "[%s] plan routed %s to enumeration but Auto went direct"
                !in_experiment q
          | _ -> ());
          if seed < 2 then begin
            incr spot_checked;
            let reference =
              rank ~strategy:Pquery.Enumerate_only ~static_check:false doc q
            in
            if not (Answer.equal ~tolerance:1e-9 auto reference) then
              incr disagreements
          end)
        (widened @ fallbacks)
  done;
  let routed_direct = Obs.Metrics.count c_direct - d0 in
  let routed_enum = Obs.Metrics.count c_enum - e0 in
  Printf.printf
    "corpus: %d (document, query) cases — routed direct: %d, enumeration fallbacks: \
     %d (incl. %d reference runs), disagreements vs raw enumeration: %d/%d spot-checked\n"
    !cases routed_direct routed_enum !spot_checked !disagreements !spot_checked;
  if !disagreements > 0 then
    Fmt.failwith "[%s] %d Auto answers disagree with enumeration" !in_experiment
      !disagreements;
  if routed_direct <= routed_enum then
    Fmt.failwith "[%s] direct routes (%d) do not dominate fallbacks (%d)" !in_experiment
      routed_direct routed_enum;
  Printf.printf
    "(the planner proves the route from the path summary alone; P-codes on the\n\
     fallbacks and the analyze.plan histogram land in the snapshot)\n"

(* ---- extension: title-threshold sensitivity ------------------------------------------- *)

let threshold () =
  section "Extension - sensitivity of the title rule's similarity threshold";
  let wl = Data.Workloads.confusing () in
  let a = Data.Workloads.mpeg7_doc wl and b = Data.Workloads.imdb_doc wl in
  Printf.printf "%-10s %12s %14s %10s\n" "threshold" "nodes" "worlds" "undecided";
  List.iter
    (fun th ->
      let rules = Rulesets.movie ~title:true ~threshold:th () in
      match integration_stats ~rules ~dtd:wl.dtd a b with
      | Ok s ->
          Printf.printf "%-10.2f %12s %14s %10d\n" th (human s.Integrate.nodes)
            (human s.Integrate.worlds) s.Integrate.trace.Integrate.unsure_pairs
      | Error e -> Printf.printf "%-10.2f error: %s\n" th (Fmt.str "%a" Integrate.pp_error e))
    [ 0.0; 0.2; 0.3; 0.4; 0.5; 0.7; 0.95 ];
  Printf.printf
    "a stricter threshold prunes more pairs; past ~0.5 it also prunes the real\n\
     sequels' confusion away, which is when valid possibilities start to die.\n"

(* ---- extension: incremental integration ------------------------------------------------ *)

let incremental () =
  section "Extension - incremental integration (a third source arrives)";
  (* Names identify persons across all three books. *)
  let oracle =
    Imprecise.Oracle.make
      [ Imprecise.Oracle.deep_equal_rule; Imprecise.Oracle.key_rule ~tag:"person" ~field:"nm" ]
  in
  let cfg = Integrate.config ~oracle ~dtd:Data.Addressbook.dtd () in
  let doc =
    or_fail "incremental setup" Integrate.pp_error
      (Integrate.integrate cfg Data.Addressbook.source_a Data.Addressbook.source_b)
  in
  Printf.printf "after A+B : %d nodes, %g worlds\n" (node_count doc) (world_count doc);
  let third =
    Imprecise.parse_xml_exn
      "<addressbook><person><nm>John</nm><tel>1111</tel></person><person><nm>Mary</nm><tel>3333</tel></person></addressbook>"
  in
  let doc =
    or_fail "incremental step" Integrate.pp_error
      (Integrate.integrate_incremental cfg doc third)
  in
  Printf.printf "after +C  : %d nodes, %g worlds\n" (node_count doc) (world_count doc);
  Printf.printf "\nphones for John after three sources:\n";
  print_answers (rank doc "//person[nm='John']/tel");
  Printf.printf "\nMary (only in C) is certain:\n";
  print_answers (rank doc "//person[nm='Mary']/tel")

(* ---- extension: scale (blocking) ------------------------------------------------------ *)

let scale () =
  section "Extension - scaling integration with entity-resolution blocking";
  let oracle =
    Imprecise.Oracle.make
      [ Imprecise.Oracle.deep_equal_rule; Imprecise.Oracle.key_rule ~tag:"person" ~field:"nm" ]
  in
  let name_block t =
    if Tree.name t = Some "person" then Tree.field t "nm" else None
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "%-8s %14s %14s %12s\n" "persons" "no blocking" "blocking" "nodes";
  List.iter
    (fun n ->
      let a, b = Data.Addressbook.larger n (1000 + n) in
      let run block =
        let cfg =
          if block then
            Integrate.config ~oracle ~dtd:Data.Addressbook.dtd ~block:name_block
              ~factorize:true ()
          else Integrate.config ~oracle ~dtd:Data.Addressbook.dtd ~factorize:true ()
        in
        or_fail "scale run" Integrate.pp_error (Integrate.integrate cfg a b)
      in
      let plain_time =
        if n <= 1000 then (
          let _, t = time (fun () -> run false) in
          Printf.sprintf "%.3fs" t)
        else "(skipped)"
      in
      let doc, blocked_time = time (fun () -> run true) in
      Printf.printf "%-8d %14s %13.3fs %12d\n" n plain_time blocked_time (node_count doc))
    [ 100; 400; 1000; 4000 ];
  Printf.printf
    "the Oracle is O(pairs) without blocking; with block keys computed once per\n\
     record, cross-block pairs are ruled out before the Oracle ever runs.\n"

(* ---- extension: pluggable blocking ----------------------------------------------------- *)

let integrate_blocking () =
  section "Extension - pluggable blocking & candidate indexing (integrate --blocker)";
  let oracle =
    Imprecise.Oracle.make
      [ Imprecise.Oracle.deep_equal_rule; Imprecise.Oracle.key_rule ~tag:"person" ~field:"nm" ]
  in
  let run blocker a b =
    let cfg =
      Integrate.config ~oracle ~dtd:Data.Addressbook.dtd ~factorize:true ~blocker ()
    in
    match Integrate.integrate_traced cfg a b with
    | Ok (_, trace) -> trace
    | Error e -> Fmt.failwith "[%s] blocking run failed: %a" !in_experiment Integrate.pp_error e
  in
  Printf.printf "%-8s %-20s %12s %12s %12s %10s\n" "persons" "blocker" "generated"
    "compared" "blocked" "time";
  List.iter
    (fun n ->
      let a, b = Data.Addressbook.larger n (2000 + n) in
      let presets =
        (* the quadratic baseline is only feasible at the smallest size *)
        (if n <= 1_000 then [ ("all", Blocking.All_pairs) ] else [])
        @ [
            ("key", Blocking.key ~field:"nm" ());
            ("sortedneighbourhood", Blocking.sorted_neighbourhood ~field:"nm" ());
          ]
        (* the q-gram index verifies Jaccard per posting-list candidate, and
           this name pool shares most of its bigrams — past ~1k persons the
           cheap key/window plans are the right tools for this workload *)
        @ (if n <= 1_000 then [ ("qgram", Blocking.qgram ~field:"nm" ()) ] else [])
      in
      List.iter
        (fun (label, blocker) ->
          let trace, t = time (fun () -> run blocker a b) in
          Printf.printf "%-8d %-20s %12s %12s %12s %9.3fs\n" n label
            (human (float_of_int trace.Integrate.pairs_generated))
            (human (float_of_int trace.Integrate.pairs_compared))
            (human (float_of_int trace.Integrate.pairs_blocked))
            t)
        presets)
    [ 1_000; 10_000; 100_000 ];
  Printf.printf
    "the grid generates n^2 pairs; every blocker compares a near-linear subset\n\
     and stays bit-identical to All_pairs (certified by `dune build @block-stress`).\n"

(* ---- extension: parallel integration engine ------------------------------------------- *)

let integrate_parallel () =
  section "Extension - parallel verdict grid (integrate --jobs, doc/integrate.md)";
  let oracle =
    Imprecise.Oracle.make
      [ Imprecise.Oracle.deep_equal_rule; Imprecise.Oracle.key_rule ~tag:"person" ~field:"nm" ]
  in
  let name_block t =
    if Tree.name t = Some "person" then Tree.field t "nm" else None
  in
  let a, b = Data.Addressbook.larger 800 1800 in
  let cfg jobs =
    Integrate.config ~oracle ~dtd:Data.Addressbook.dtd ~block:name_block ~factorize:true
      ~jobs ()
  in
  let run jobs =
    or_fail "parallel integrate" Integrate.pp_error (Integrate.integrate (cfg jobs) a b)
  in
  Printf.printf "persons: 800 per book, cores on this machine: %d\n"
    (Domain.recommended_domain_count ());
  let doc1, t1 = time (fun () -> run 1) in
  let doc4, t4 = time (fun () -> run 4) in
  Printf.printf "jobs=1: %.3fs   jobs=4: %.3fs   speedup %.2fx\n" t1 t4 (t1 /. t4);
  Printf.printf "bit-identical: %b   nodes: %d\n"
    (Codec.to_string doc1 = Codec.to_string doc4)
    (node_count doc1);
  Printf.printf
    "(the candidate grid is sharded into contiguous row bands, one domain per\n\
     band; the merge is deterministic, so any jobs value is exact, and speedup\n\
     tracks physical cores)\n"

let integrate_incremental_bench () =
  section "Extension - batch integration reusing the Oracle decision cache";
  let third =
    Imprecise.parse_xml_exn
      "<addressbook><person><nm>John</nm><tel>1111</tel></person><person><nm>Mary</nm><tel>3333</tel></person></addressbook>"
  in
  let oracle_rules = Rulesets.generic in
  let sources = [ Data.Addressbook.source_a; Data.Addressbook.source_b; third ] in
  let plain, t_plain =
    time (fun () ->
        or_fail "integrate_all" Integrate.pp_error
          (integrate_all ~rules:oracle_rules ~dtd:Data.Addressbook.dtd sources))
  in
  let hits = Obs.Metrics.counter "oracle.cache.hit" in
  let h0 = Obs.Metrics.count hits in
  let cached, t_cached =
    time (fun () ->
        or_fail "integrate_many" Integrate.pp_error
          (integrate_many ~rules:oracle_rules ~dtd:Data.Addressbook.dtd ~jobs:2 sources))
  in
  Printf.printf "three sources folded; worlds: %g\n" (world_count cached);
  Printf.printf "integrate_all  (no cache): %.4fs\n" t_plain;
  Printf.printf "integrate_many (cache+jobs=2): %.4fs   oracle.cache.hit: +%d\n" t_cached
    (Obs.Metrics.count hits - h0);
  Printf.printf "results agree: %b\n"
    (Codec.to_string plain = Codec.to_string cached);
  Printf.printf
    "(the incremental step re-integrates the new source against every prior\n\
     world; the decision cache answers the repeated subtree pairs without\n\
     consulting the rules again)\n"

(* ---- compact binary store & hash-consing ---------------------------------------------- *)

let store_binary_roundtrip () =
  section "Extension - compact binary store (v3) vs XML persistence (doc/store.md)";
  let fig2 =
    integrate_or_fail ~rules:Rulesets.generic ~dtd:Data.Addressbook.dtd
      Data.Addressbook.source_a Data.Addressbook.source_b
  in
  let wl = Data.Workloads.confusing () in
  let movies = Data.Workloads.mpeg7_doc wl in
  let qdoc = query_document () in
  let s = Store.create () in
  Store.put s "fig2" (Store.Probabilistic fig2);
  Store.put s "query-doc" (Store.Probabilistic qdoc);
  Store.put s "movies" (Store.Certain movies);
  let tmp = Filename.get_temp_dir_name () in
  let dir_xml = Filename.concat tmp "imprecise-bench-store-xml" in
  let dir_bin = Filename.concat tmp "imprecise-bench-store-bin" in
  or_fail "xml save" Fmt.string (Store.save s ~dir:dir_xml);
  or_fail "binary save" Fmt.string (Store.save ~format:Store.Binary s ~dir:dir_bin);
  let payload_bytes dir suffix =
    Array.fold_left
      (fun acc f ->
        if Filename.check_suffix f suffix then
          acc + (Unix.stat (Filename.concat dir f)).Unix.st_size
        else acc)
      0 (Sys.readdir dir)
  in
  let xml_bytes = payload_bytes dir_xml ".xml"
  and bin_bytes = payload_bytes dir_bin ".ipx" in
  Printf.printf "on-disk payload: xml %d B   binary %d B   ratio %.2fx\n" xml_bytes
    bin_bytes
    (float_of_int xml_bytes /. float_of_int bin_bytes);
  (* codec-only comparison: the same documents through each serialisation,
     timed per decode (the store's IO and manifest work is shared overhead) *)
  let h_xml = Obs.Metrics.histogram "store.parse_xml"
  and h_bin = Obs.Metrics.histogram "store.parse_binary" in
  let xml_strs = List.map Codec.to_string [ fig2; qdoc ] in
  let bin_strs = List.map Bincodec.doc_to_string [ fig2; qdoc ] in
  for _ = 1 to 40 do
    let t0 = Unix.gettimeofday () in
    List.iter (fun str -> ignore (or_fail "xml decode" Fmt.string (Codec.of_string str))) xml_strs;
    Obs.Metrics.observe h_xml ((Unix.gettimeofday () -. t0) *. 1000.);
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun str -> ignore (or_fail "binary decode" Fmt.string (Bincodec.of_string str)))
      bin_strs;
    Obs.Metrics.observe h_bin ((Unix.gettimeofday () -. t0) *. 1000.)
  done;
  let p50 h = (Obs.Metrics.stats h).Obs.Metrics.p50 in
  Printf.printf "decode p50: xml %.3f ms   binary %.3f ms   speedup %.1fx\n" (p50 h_xml)
    (p50 h_bin)
    (p50 h_xml /. p50 h_bin);
  (* whole-store reloads (manifest verify, checksums, salvage scan included) *)
  let (loaded_xml, _), t_xml = time (fun () -> or_fail "xml load" Fmt.string (Store.load dir_xml)) in
  let (loaded_bin, _), t_bin = time (fun () -> or_fail "binary load" Fmt.string (Store.load dir_bin)) in
  let doc_of st = match Store.get st "fig2" with
    | Some (Store.Probabilistic d) -> d
    | _ -> Fmt.failwith "[%s] fig2 missing after reload" !in_experiment
  in
  Printf.printf "store.load: xml %.4fs   binary %.4fs\n" t_xml t_bin;
  Printf.printf "bit-identical reload: %b\n"
    (Codec.to_string (doc_of loaded_xml) = Codec.to_string fig2
    && Codec.to_string (doc_of loaded_bin) = Codec.to_string fig2);
  Printf.printf
    "(the v3 frame is magic + version + kind + varint length + CRC-32; the\n\
     payload writes each distinct subtree once and back-references repeats,\n\
     so dedup happens on disk too — see doc/store.md)\n"

let intern_dedup () =
  section "Extension - hash-consed subtrees (weak intern pool, doc/pxml.md)";
  let fig2 =
    integrate_or_fail ~rules:Rulesets.generic ~dtd:Data.Addressbook.dtd
      Data.Addressbook.source_a Data.Addressbook.source_b
  in
  let hits = Obs.Metrics.counter "pxml.intern.hit"
  and misses = Obs.Metrics.counter "pxml.intern.miss" in
  let h0 = Obs.Metrics.count hits and m0 = Obs.Metrics.count misses in
  let interned = Intern.doc fig2 in
  let h1 = Obs.Metrics.count hits and m1 = Obs.Metrics.count misses in
  Printf.printf "first intern: %d hits, %d misses (pool fills bottom-up)\n" (h1 - h0)
    (m1 - m0);
  (* a structurally-equal deep copy — fresh allocations throughout — must
     resolve to the same canonical pointers without growing any pool *)
  let copy =
    or_fail "codec roundtrip" Fmt.string (Codec.of_string (Codec.to_string fig2))
  in
  let copy' = Intern.doc copy in
  let h2 = Obs.Metrics.count hits and m2 = Obs.Metrics.count misses in
  Printf.printf "re-intern of a deep copy: %d hits, %d misses, same pointer: %b\n"
    (h2 - h1) (m2 - m1) (copy' == interned);
  Printf.printf "node occurrences %d   distinct after interning %d\n" (node_count fig2)
    (Intern.distinct_nodes interned);
  (* the payoff: deep equality on interned values is a pointer check *)
  let fresh_a =
    or_fail "codec roundtrip" Fmt.string (Codec.of_string (Codec.to_string fig2))
  in
  let fresh_b =
    or_fail "codec roundtrip" Fmt.string (Codec.of_string (Codec.to_string fig2))
  in
  let reps = 20_000 in
  let _, t_deep =
    time (fun () ->
        for _ = 1 to reps do
          assert (Pxml.equal fresh_a fresh_b)
        done)
  in
  let ia = Intern.doc fresh_a and ib = Intern.doc fresh_b in
  let _, t_ptr =
    time (fun () ->
        for _ = 1 to reps do
          assert (Pxml.equal ia ib)
        done)
  in
  Printf.printf "%d deep-equality checks: fresh %.4fs   interned %.4fs (%.0fx)\n" reps
    t_deep t_ptr (t_deep /. Float.max 1e-9 t_ptr);
  Printf.printf
    "(Decision_cache keys, dedup-compaction and the binary codec all lean on\n\
     this: hashing an interned subtree is O(1) and equality short-circuits\n\
     on physical identity)\n"

(* ---- bechamel performance benches ---------------------------------------------------- *)

let perf () =
  section "Performance (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let wl = Data.Workloads.confusing () in
  let a = Data.Workloads.mpeg7_doc wl and b = Data.Workloads.imdb_doc wl in
  let full = Rulesets.movie ~genre:true ~title:true ~year:true ~director:true () in
  let qdoc = query_document () in
  let movie_xml = Xml.Printer.to_string ~indent:2 a in
  let fig2 =
    integrate_or_fail ~rules:Rulesets.generic ~dtd:Data.Addressbook.dtd
      Data.Addressbook.source_a Data.Addressbook.source_b
  in
  (* the atomicity overhead of persistence (tmp + fsync + rename, CRC-32,
     manifest commit) measured on a mixed certain/probabilistic collection *)
  let store_dir = Filename.concat (Filename.get_temp_dir_name ()) "imprecise-bench-store" in
  let doc_store =
    let s = Store.create () in
    Store.put s "mpeg7" (Store.Certain a);
    Store.put s "imdb" (Store.Certain b);
    Store.put s "fig2" (Store.Probabilistic fig2);
    Store.put s "query-doc" (Store.Probabilistic qdoc);
    s
  in
  or_fail "bench store save" Fmt.string (Store.save doc_store ~dir:store_dir);
  let tests =
    [
      Test.make ~name:"xml.parse movie collection"
        (Staged.stage (fun () -> Xml.Parser.parse_string_exn movie_xml));
      Test.make ~name:"xpath.parse Q2" (Staged.stage (fun () -> Xpath.Parser.parse_exn q2));
      Test.make ~name:"xpath.eval //movie/title on certain doc"
        (Staged.stage (fun () -> Xpath.Eval.select_strings a "//movie/title"));
      Test.make ~name:"integrate fig2"
        (Staged.stage (fun () ->
             integrate_or_fail ~rules:Rulesets.generic ~dtd:Data.Addressbook.dtd
               Data.Addressbook.source_a Data.Addressbook.source_b));
      Test.make ~name:"integrate confusing 6v6 (full rules)"
        (Staged.stage (fun () -> integrate_or_fail ~rules:full ~dtd:wl.dtd a b));
      Test.make ~name:"stats confusing 6v6 (no rules, 13k matchings)"
        (Staged.stage (fun () -> stats_or_fail ~rules:Rulesets.generic ~dtd:wl.dtd a b));
      Test.make ~name:"rank Q1 direct (query doc)"
        (Staged.stage (fun () -> rank ~strategy:Pquery.Direct_only qdoc q1));
      Test.make ~name:"rank //person/tel enumerate (fig2)"
        (Staged.stage (fun () ->
             rank ~strategy:Pquery.Enumerate_only fig2 "//person/tel"));
      Test.make ~name:"compact query doc" (Staged.stage (fun () -> Compact.compact qdoc));
      Test.make ~name:"codec.encode+decode fig2"
        (Staged.stage (fun () -> Codec.of_string (Codec.to_string fig2)));
      Test.make ~name:"store.save 4 docs (atomic, fsync+manifest)"
        (Staged.stage (fun () ->
             or_fail "store.save bench" Fmt.string (Store.save doc_store ~dir:store_dir)));
      Test.make ~name:"store.load 4 docs (manifest verify + salvage)"
        (Staged.stage (fun () ->
             or_fail "store.load bench" Fmt.string
               (Result.map fst (Store.load store_dir))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
              let label = Test.Elt.name elt in
              if ns >= 1e9 then Printf.printf "%-46s %10.2f s/run\n" label (ns /. 1e9)
              else if ns >= 1e6 then Printf.printf "%-46s %10.2f ms/run\n" label (ns /. 1e6)
              else if ns >= 1e3 then Printf.printf "%-46s %10.2f us/run\n" label (ns /. 1e3)
              else Printf.printf "%-46s %10.0f ns/run\n" label ns
          | _ -> Printf.printf "%-46s (no estimate)\n" (Test.Elt.name elt))
        (Test.elements test))
    tests

(* ---- driver ----------------------------------------------------------------------------- *)

let experiments =
  [
    ("table1", table1);
    ("figure5", figure5);
    ("typical", typical);
    ("addressbook", addressbook);
    ("queries", queries);
    ("pquery_enumerate", pquery_enumerate);
    ("pquery_parallel", pquery_parallel);
    ("pquery_cached", pquery_cached);
    ("pquery_degraded", pquery_degraded);
    ("analyze_prune", analyze_prune);
    ("pquery_direct_wide", pquery_direct_wide);
    ("quality", quality);
    ("feedback", feedback);
    ("reduction", reduction);
    ("sampling", sampling);
    ("threshold", threshold);
    ("incremental", incremental);
    ("scale", scale);
    ("integrate_parallel", integrate_parallel);
    ("integrate_incremental", integrate_incremental_bench);
    ("integrate_blocking", integrate_blocking);
    ("store_binary_roundtrip", store_binary_roundtrip);
    ("intern_dedup", intern_dedup);
    ("ablation", ablation);
    ("perf", perf);
  ]

(* With [--json FILE] each experiment runs against a freshly-reset global
   metrics registry; its snapshot plus wall time lands in a BENCH_core-style
   file (schema "imprecise-bench/1") that bench/check_snapshot.exe
   validates. See doc/observability.md for the snapshot shape. *)
let json_of_run (name, wall_s, snap) =
  Obs.Json.Obj
    [
      ("name", Obs.Json.String name);
      ("wall_s", Obs.Json.Float wall_s);
      ("metrics", Obs.Metrics.to_json snap);
    ]

let run_experiment ~record name f =
  in_experiment := name;
  if Option.is_some record then Obs.Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  Obs.Trace.with_span ("bench." ^ name) f;
  let wall_s = Unix.gettimeofday () -. t0 in
  Option.iter
    (fun acc -> acc := (name, wall_s, Obs.Metrics.snapshot ()) :: !acc)
    record;
  in_experiment := "(harness)"

let () =
  (* wall-clock latency histograms (lib/obs defaults to CPU time) *)
  Obs.Clock.set Unix.gettimeofday;
  let rec split json acc = function
    | [] -> (json, List.rev acc)
    | "--json" :: file :: rest -> split (Some file) acc rest
    | [ "--json" ] ->
        prerr_endline "--json requires a file argument";
        exit 1
    | arg :: rest -> split json (arg :: acc) rest
  in
  let json_file, names = split None [] (List.tl (Array.to_list Sys.argv)) in
  let selected =
    match names with
    | [] -> experiments
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt name experiments with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" name
                  (String.concat ", " (List.map fst experiments));
                exit 1)
          names
  in
  let record = Option.map (fun _ -> ref []) json_file in
  List.iter (fun (name, f) -> run_experiment ~record name f) selected;
  match (json_file, record) with
  | Some file, Some acc ->
      let json =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.String "imprecise-bench/1");
            ("experiments", Obs.Json.List (List.rev_map json_of_run !acc));
          ]
      in
      let oc = open_out file in
      output_string oc (Obs.Json.to_string ~indent:2 json);
      output_string oc "\n";
      close_out oc;
      Printf.printf "\nwrote %s (%d experiments)\n" file (List.length !acc)
  | _ -> ()
