(* Validates a bench snapshot written by `main.exe <exp> --json FILE`: the
   file must parse as JSON, declare the expected schema, contain every
   experiment named on the command line, and carry the core metric keys the
   instrumented libraries promise (doc/observability.md has the catalogue).

     check_snapshot.exe FILE EXPERIMENT [EXPERIMENT ...]

   This is what `dune build @bench-smoke` runs. *)

module Obs = Imprecise.Obs

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("check_snapshot: " ^ msg);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let member ~ctx name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> fail "%s: missing %S" ctx name

let keys ~ctx = function
  | Obs.Json.Obj kvs -> List.map fst kvs
  | _ -> fail "%s: expected an object" ctx

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Counters every integration experiment must report (non-zero where the
   instrumentation cannot plausibly be asleep), plus registered-but-possibly
   -zero catalogue entries like the store's. *)
let required_counters =
  [ "integrate.pairs_generated"; "integrate.pairs_compared"; "oracle.decisions";
    "store.bytes_written";
    "pquery.worlds_enumerated"; "pquery.static_pruned"; "pquery.degraded";
    "resilience.retries"; "resilience.deadline_exceeded"; "obs.events_dropped";
    "obs.ops_recorded" ]

let required_histograms =
  [ "integrate.nodes_produced"; "integrate.worlds_produced"; "pquery.latency" ]

let check_experiment ~file experiments name =
  let e =
    match
      List.find_opt
        (fun e -> Obs.Json.member "name" e = Some (Obs.Json.String name))
        experiments
    with
    | Some e -> e
    | None -> fail "experiment %S missing from %s" name file
  in
  let ctx = Printf.sprintf "%s:%s" file name in
  (match member ~ctx "wall_s" e with
  | Obs.Json.Float w when w >= 0. -> ()
  | Obs.Json.Int w when w >= 0 -> ()
  | _ -> fail "%s: wall_s is not a non-negative number" ctx);
  let metrics = member ~ctx "metrics" e in
  let counters = member ~ctx "counters" metrics in
  let ckeys = keys ~ctx:(ctx ^ ".counters") counters in
  let hkeys = keys ~ctx:(ctx ^ ".histograms") (member ~ctx "histograms" metrics) in
  List.iter
    (fun k -> if not (List.mem k ckeys) then fail "%s: counter %S missing" ctx k)
    required_counters;
  List.iter
    (fun k -> if not (List.mem k hkeys) then fail "%s: histogram %S missing" ctx k)
    required_histograms;
  if not (List.exists (starts_with ~prefix:"oracle.rule_fired.") ckeys) then
    fail "%s: no oracle.rule_fired.* counters registered" ctx;
  let positive counter =
    match Obs.Json.member counter counters with
    | Some (Obs.Json.Int n) when n > 0 -> ()
    | _ -> fail "%s: %s is zero — instrumentation asleep?" ctx counter
  in
  positive "integrate.pairs_compared";
  (* the querying experiments must actually have enumerated worlds, and the
     cache experiment must actually have hit its cache *)
  if starts_with ~prefix:"pquery_" name then positive "pquery.worlds_enumerated";
  if name = "pquery_cached" then positive "pquery.cache.hit";
  (* the prune experiment must actually have pruned something *)
  if name = "analyze_prune" then positive "pquery.static_pruned";
  (* the parallel integration experiment must actually have fanned out,
     and the incremental batch must actually have reused cached verdicts *)
  if name = "integrate_parallel" then positive "integrate.parallel_runs";
  if name = "integrate_incremental" then positive "oracle.cache.hit";
  (* the blocking experiment must have skipped real work: an index pruned
     pairs, and across the whole run at least 4x fewer pairs were compared
     than the grids generated (the 10k/100k sources dominate the tally) *)
  if name = "integrate_blocking" then begin
    positive "integrate.pairs_blocked";
    let count counter =
      match Obs.Json.member counter counters with
      | Some (Obs.Json.Int n) -> n
      | _ -> fail "%s: counter %S is not an integer" ctx counter
    in
    let generated = count "integrate.pairs_generated" in
    let compared = count "integrate.pairs_compared" in
    if compared * 4 > generated then
      fail "%s: blocking compared %d of %d generated pairs (< 4x reduction)" ctx
        compared generated
  end;
  (* the degradation experiment must actually have degraded an answer and
     tripped its deadline *)
  if name = "pquery_degraded" then begin
    positive "pquery.degraded";
    positive "resilience.deadline_exceeded"
  end;
  (* the planner experiment must have routed most of the widened corpus
     past enumeration, and the planner itself must have been timed *)
  if name = "pquery_direct_wide" then begin
    positive "pquery.path.direct";
    let count counter =
      match Obs.Json.member counter counters with
      | Some (Obs.Json.Int n) -> n
      | _ -> fail "%s: counter %S is not an integer" ctx counter
    in
    if count "pquery.path.direct" <= count "pquery.path.enumerate" then
      fail "%s: direct routes (%d) do not dominate enumeration fallbacks (%d)" ctx
        (count "pquery.path.direct")
        (count "pquery.path.enumerate");
    let h =
      match Obs.Json.member "analyze.plan" (member ~ctx "histograms" metrics) with
      | Some h -> h
      | None -> fail "%s: histogram \"analyze.plan\" missing" ctx
    in
    match Obs.Json.member "n" h with
    | Some (Obs.Json.Int n) when n > 0 -> ()
    | _ -> fail "%s: analyze.plan has no observations — planner untimed?" ctx
  end;
  (* the binary-store experiment must actually have written binary frames,
     and decoding them must beat parsing the equivalent XML by >= 2x at the
     median (the whole point of the v3 format) *)
  if name = "store_binary_roundtrip" then begin
    positive "store.binary_bytes";
    let p50 hname =
      let h =
        match Obs.Json.member hname (member ~ctx "histograms" metrics) with
        | Some h -> h
        | None -> fail "%s: histogram %S missing" ctx hname
      in
      match Obs.Json.member "p50" h with
      | Some (Obs.Json.Float p) when p > 0. -> p
      | Some (Obs.Json.Int p) when p > 0 -> float_of_int p
      | _ -> fail "%s: %s has no positive p50 — decode untimed?" ctx hname
    in
    let xml = p50 "store.parse_xml" and bin = p50 "store.parse_binary" in
    if bin *. 2. > xml then
      fail "%s: binary decode p50 %.3fms not 2x faster than xml parse p50 %.3fms"
        ctx bin xml
  end;
  (* the interning experiment must actually have found sharing *)
  if name = "intern_dedup" then positive "pxml.intern.hit";
  (* the event ring must never have overflowed during a bench run *)
  (match Obs.Json.member "obs.events_dropped" counters with
  | Some (Obs.Json.Int 0) -> ()
  | Some j -> fail "%s: obs.events_dropped = %s (ring overflowed)" ctx (Obs.Json.to_string j)
  | None -> fail "%s: counter \"obs.events_dropped\" missing" ctx);
  (* querying experiments must surface latency quantiles in their snapshot *)
  if starts_with ~prefix:"pquery_" name then begin
    let h =
      match Obs.Json.member "pquery.latency" (member ~ctx "histograms" metrics) with
      | Some h -> h
      | None -> fail "%s: histogram \"pquery.latency\" missing" ctx
    in
    match Obs.Json.member "p99" h with
    | Some (Obs.Json.Float p) when p >= 0. -> ()
    | Some (Obs.Json.Int p) when p >= 0 -> ()
    | _ -> fail "%s: pquery.latency has no p99 — quantile sketch asleep?" ctx
  end

let () =
  let file, wanted =
    match Array.to_list Sys.argv with
    | _ :: file :: (_ :: _ as wanted) -> (file, wanted)
    | _ -> fail "usage: check_snapshot FILE EXPERIMENT [EXPERIMENT ...]"
  in
  let json =
    match Obs.Json.parse (read_file file) with
    | Ok j -> j
    | Error e -> fail "%s does not parse as JSON: %s" file e
  in
  (match member ~ctx:file "schema" json with
  | Obs.Json.String "imprecise-bench/1" -> ()
  | j -> fail "%s: unexpected schema %s" file (Obs.Json.to_string j));
  let experiments =
    match member ~ctx:file "experiments" json with
    | Obs.Json.List l -> l
    | _ -> fail "%s: \"experiments\" is not a list" file
  in
  List.iter (check_experiment ~file experiments) wanted;
  Printf.printf "check_snapshot: %s OK (%s)\n" file (String.concat ", " wanted)
