(* The imprecise command-line tool: integrate, inspect, query and give
   feedback on probabilistic XML documents.

     imprecise integrate a.xml b.xml --rules genre,title -o out.xml
     imprecise stats a.xml b.xml --rules none
     imprecise query out.xml '//movie[.//genre="Horror"]/title'
     imprecise worlds out.xml
     imprecise feedback out.xml '//person/tel' 2222 --incorrect -o out.xml
     imprecise doctor /var/lib/imprecise/store
     imprecise demo *)

open Cmdliner
open Imprecise

(* ---- shared argument handling --------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A document file is either plain XML or a pxml-encoded probabilistic
   document (recognised by its p:prob root). *)
let load_doc path : (Pxml.doc, string) result =
  match Xml.Parser.parse_file path with
  | Error e -> Error (Fmt.str "%s: %s" path (Xml.Parser.error_to_string e))
  | Ok tree ->
      if Tree.name tree = Some Codec.prob_tag then Codec.decode tree
      else Ok (Pxml.doc_of_tree tree)

let load_certain path : (Tree.t, string) result =
  Result.map_error
    (fun e -> Fmt.str "%s: %s" path (Xml.Parser.error_to_string e))
    (Xml.Parser.parse_file path)

let rules_of_string s : (Rulesets.t, string) result =
  match s with
  | "none" | "generic" -> Ok Rulesets.generic
  | "full" -> Ok Rulesets.full
  | s ->
      let flags = String.split_on_char ',' s in
      let known = [ "genre"; "title"; "year"; "director" ] in
      let bad = List.filter (fun f -> not (List.mem f known)) flags in
      if bad <> [] then
        Error
          (Fmt.str "unknown rule(s) %s; expected none, full, or a comma-list of %s"
             (String.concat ", " bad) (String.concat ", " known))
      else
        let has f = List.mem f flags in
        Ok
          (Rulesets.movie ~genre:(has "genre") ~title:(has "title") ~year:(has "year")
             ~director:(has "director") ())

let rules_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (rules_of_string s) in
  let print ppf (r : Rulesets.t) = Fmt.string ppf r.name in
  Arg.conv (parse, print)

let rules_arg =
  Arg.(
    value
    & opt rules_conv Rulesets.full
    & info [ "rules"; "r" ] ~docv:"RULES"
        ~doc:
          "Knowledge rules for the Oracle: $(b,none), $(b,full), or a comma-separated \
           subset of genre,title,year,director.")

let dtd_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "dtd" ] ~docv:"FILE"
        ~doc:
          "Cardinality declarations, one per line, e.g. 'person: nm?, tel?'. Used to \
           reject impossible worlds during integration.")

let load_dtd = function
  | None -> Ok Dtd.empty
  | Some path -> Result.map_error (fun e -> Fmt.str "%s: %s" path e) (Dtd.of_string (read_file path))


let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the resulting probabilistic document to $(docv) (pxml encoding).")

let write_output doc = function
  | None -> print_endline (Codec.to_string ~indent:2 doc)
  | Some path ->
      Xml.Printer.to_file ~decl:true ~indent:2 path (Codec.encode doc);
      Fmt.pr "wrote %s@." path

let or_die = function
  | Ok v -> v
  | Error msg ->
      Fmt.epr "imprecise: %s@." msg;
      exit 1

let die fmt = Fmt.kstr (fun msg -> or_die (Error msg)) fmt

(* ---- telemetry -------------------------------------------------------------- *)

type telemetry = {
  trace : bool;  (* span tree + metrics snapshot to stderr *)
  trace_out : string option;  (* Chrome trace-event JSON file *)
  events_out : string option;  (* JSONL structured-event file *)
}

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Record timing spans and metrics while the command runs, and print the span \
           tree and a metrics snapshot to stderr afterwards (see doc/observability.md).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the recorded spans to $(docv) as Chrome trace-event JSON, loadable \
           in Perfetto or chrome://tracing.")

let events_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events-out" ] ~docv:"FILE"
        ~doc:
          "Stream structured flight-recorder events (oracle verdicts, cache hits, \
           budget trips, degradations, per-op records) to $(docv) as JSON lines; \
           aggregate afterwards with $(b,imprecise report).")

let telemetry_term =
  Term.(
    const (fun trace trace_out events_out -> { trace; trace_out; events_out })
    $ trace_arg $ trace_out_arg $ events_out_arg)

(* The report runs once, as a [Fun.protect] finaliser for exceptions and
   via [at_exit] for the subcommands (doctor, validate, …) that [exit]
   mid-body — [Stdlib.exit] does not unwind [Fun.protect]. Spans still
   open at a hard [exit] are simply not reported. Tracing is installed for
   any of the three outputs: the event stream wants span ids on its events
   even when nobody asked for the span tree itself. *)
let with_telemetry t f =
  if not (t.trace || t.trace_out <> None || t.events_out <> None) then f ()
  else begin
    let sink, roots = Obs.Trace.collector () in
    Obs.Trace.install ~now:Unix.gettimeofday sink;
    let events_oc =
      Option.map
        (fun path ->
          let oc = open_out path in
          Obs.Event.enable ~sink:(Obs.Event.jsonl_sink oc) ();
          oc)
        t.events_out
    in
    let reported = ref false in
    let report () =
      if not !reported then begin
        reported := true;
        Obs.Trace.uninstall ();
        let spans = roots () in
        (match events_oc with
        | Some oc ->
            Obs.Event.disable ();
            close_out oc
        | None -> ());
        (match t.trace_out with
        | Some path ->
            let oc = open_out path in
            output_string oc (Obs.Json.to_string (Obs.Trace.to_chrome spans));
            output_char oc '\n';
            close_out oc
        | None -> ());
        if t.trace then begin
          Fmt.epr "--- trace spans ---@.";
          List.iter (fun s -> Fmt.epr "%s" (Obs.Trace.to_text s)) spans;
          Fmt.epr "--- metrics ---@.%s@?" (Obs.Metrics.to_text (Obs.Metrics.snapshot ()))
        end
      end
    in
    at_exit report;
    Fun.protect ~finally:report f
  end

(* ---- resilience -------------------------------------------------------------- *)

let timeout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Deadline for the command's heavy work (world enumeration, candidate-grid \
           scoring), in milliseconds. Query falls down a degradation ladder to a \
           cheaper approximate answer; integrate and stats report a clean budget \
           error. See doc/resilience.md.")

let max_worlds_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-worlds" ] ~docv:"N"
        ~doc:
          "Work budget: at most $(docv) enumerated worlds / grid cells before the \
           command degrades (query) or stops with a budget error (integrate, stats).")

let budget_of timeout_ms max_worlds =
  match (timeout_ms, max_worlds) with
  | None, None -> None
  | _ -> (
      try Some (Resilience.Budget.create ?timeout_ms ?max_worlds ())
      with Invalid_argument msg -> or_die (Error msg))

let resilience_totals () =
  let count name = Obs.Metrics.count (Obs.Metrics.counter name) in
  ( count "resilience.retries",
    count "resilience.retry_giveups",
    count "resilience.deadline_exceeded",
    count "pquery.degraded" )

(* ---- blocking ---------------------------------------------------------------- *)

let blocker_name_arg =
  Arg.(
    value
    & opt string "all"
    & info [ "blocker" ] ~docv:"NAME"
        ~doc:
          "Candidate-indexing stage run in front of the Oracle: $(b,all) (full grid, \
           the default), $(b,key) (exact normalized key), $(b,qgram) (inverted q-gram \
           similarity index) or $(b,sortedneighbourhood) (sorted window). See \
           doc/integrate.md for the recall guarantees of each.")

let block_field_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "block-field" ] ~docv:"TAG"
        ~doc:
          "Blocking key: the text of child element $(docv) (e.g. $(b,nm) or \
           $(b,title)). Default: the element's whole text content.")

let block_threshold_arg =
  Arg.(
    value
    & opt float 0.3
    & info [ "block-threshold" ] ~docv:"T"
        ~doc:
          "Minimum q-gram Jaccard similarity for a pair to survive $(b,--blocker \
           qgram), in [0,1]. 0 disables pruning; lower is safer, higher prunes more.")

let block_window_arg =
  Arg.(
    value
    & opt int 7
    & info [ "block-window" ] ~docv:"W"
        ~doc:"Window size for $(b,--blocker sortedneighbourhood).")

let block_q_arg =
  Arg.(
    value
    & opt int 2
    & info [ "block-q" ] ~docv:"Q" ~doc:"Gram length for $(b,--blocker qgram).")

let blocker_term =
  Term.(
    const (fun name field threshold window q ->
        or_die (Blocking.of_string ?field ~q ~threshold ~window name))
    $ blocker_name_arg $ block_field_arg $ block_threshold_arg $ block_window_arg
    $ block_q_arg)

let infer_dtd_arg =
  Arg.(
    value & flag
    & info [ "infer-dtd" ]
        ~doc:
          "Derive cardinality knowledge from the sources themselves: child tags that \
           never repeat under a parent are treated as at-most-one. Combined with --dtd \
           if both are given (explicit declarations win).")

let resolve_dtd ~infer dtd_file docs =
  let explicit = or_die (load_dtd dtd_file) in
  if not infer then explicit
  else
    let inferred = Dtd.infer docs in
    (* explicit declarations override inferred ones *)
    List.fold_left
      (fun d (p, c, o) -> Dtd.declare d ~parent:p ~child:c o)
      inferred (Dtd.declarations explicit)

let report_doc doc =
  Fmt.pr "nodes: %d  world combinations: %g@." (node_count doc) (world_count doc)

(* ---- integrate -------------------------------------------------------------- *)

let integrate_cmd =
  let run inputs rules dtd infer factorize jobs blocker timeout_ms max_worlds output
      tele =
    with_telemetry tele @@ fun () ->
    (match inputs with
    | _ :: _ :: _ -> ()
    | _ ->
        Fmt.epr "imprecise: integrate needs at least two documents@.";
        exit 1);
    let docs = List.map (fun p -> or_die (load_certain p)) inputs in
    let dtd = resolve_dtd ~infer dtd docs in
    let budget = budget_of timeout_ms max_worlds in
    match integrate_many ~rules ~dtd ~factorize ~blocker ~jobs ?budget docs with
    | Error e ->
        Fmt.epr "imprecise: %a@." Integrate.pp_error e;
        exit 1
    | Ok doc ->
        report_doc doc;
        write_output doc output
  in
  let inputs =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"SOURCE.xml")
  in
  let factorize =
    Arg.(value & flag & info [ "factorize" ] ~doc:"Store independent clusters locally (compact representation).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Score each candidate grid with $(docv) OCaml domains. Any $(docv) produces \
             a bit-identical result to sequential integration (see doc/integrate.md).")
  in
  Cmd.v
    (Cmd.info "integrate"
       ~doc:
         "Probabilistically integrate two or more XML documents. The first two are \
          integrated directly; each further document is folded in incrementally, \
          reusing one Oracle decision cache across the whole batch.")
    Term.(
      const run $ inputs $ rules_arg $ dtd_arg $ infer_dtd_arg $ factorize $ jobs
      $ blocker_term $ timeout_arg $ max_worlds_arg $ output_arg $ telemetry_term)

(* ---- stats -------------------------------------------------------------------- *)

let stats_cmd =
  let run left right rules dtd infer factorize blocker timeout_ms max_worlds tele =
    with_telemetry tele @@ fun () ->
    let a = or_die (load_certain left) and b = or_die (load_certain right) in
    let dtd = resolve_dtd ~infer dtd [ a; b ] in
    let budget = budget_of timeout_ms max_worlds in
    match integration_stats ~rules ~dtd ~factorize ~blocker ?budget a b with
    | Error e ->
        Fmt.epr "imprecise: %a@." Integrate.pp_error e;
        exit 1
    | Ok s ->
        Fmt.pr "rules: %s@." rules.Rulesets.name;
        Fmt.pr "blocker: %s@." (Blocking.describe blocker);
        Fmt.pr "nodes: %.0f@." s.Integrate.nodes;
        Fmt.pr "world combinations: %g@." s.Integrate.worlds;
        Fmt.pr "pairs generated: %d@." s.Integrate.trace.Integrate.pairs_generated;
        Fmt.pr "pairs compared: %d (blocked: %d)@."
          s.Integrate.trace.Integrate.pairs_compared
          s.Integrate.trace.Integrate.pairs_blocked;
        Fmt.pr "undecided pairs: %d@." s.Integrate.trace.Integrate.unsure_pairs;
        Fmt.pr "forced matches: %d@." s.Integrate.trace.Integrate.same_pairs;
        Fmt.pr "clusters: %d (largest enumeration: %d)@."
          s.Integrate.trace.Integrate.cluster_count
          s.Integrate.trace.Integrate.largest_enumeration;
        let retries, giveups, deadlines, degraded = resilience_totals () in
        Fmt.pr "resilience: retries=%d giveups=%d deadline_exceeded=%d degraded=%d@."
          retries giveups deadlines degraded
  in
  let left = Arg.(required & pos 0 (some file) None & info [] ~docv:"LEFT.xml") in
  let right = Arg.(required & pos 1 (some file) None & info [] ~docv:"RIGHT.xml") in
  let factorize = Arg.(value & flag & info [ "factorize" ] ~doc:"Measure the factorised representation.") in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Compute the size of an integration without materialising it (works far beyond \
          what $(b,integrate) can build).")
    Term.(
      const run $ left $ right $ rules_arg $ dtd_arg $ infer_dtd_arg $ factorize
      $ blocker_term $ timeout_arg $ max_worlds_arg $ telemetry_term)

(* ---- rules ---------------------------------------------------------------------- *)

let rules_cmd =
  let run tele =
    with_telemetry tele @@ fun () ->
    List.iter
      (fun (r : Rulesets.t) ->
        Fmt.pr "%-22s %s@." r.Rulesets.name r.Rulesets.description;
        List.iter (fun n -> Fmt.pr "    - %s@." n) (Oracle.rule_names r.Rulesets.oracle))
      (Rulesets.table1 @ [ Rulesets.full ])
  in
  Cmd.v
    (Cmd.info "rules" ~doc:"List the built-in Oracle rule presets and their rules.")
    Term.(const run $ telemetry_term)

(* ---- query --------------------------------------------------------------------- *)

let strategy_names = [ "auto"; "direct"; "enumerate"; "sample" ]

let query_cmd =
  let run path query strategy samples seed jobs top_k timeout_ms max_worlds tele =
    with_telemetry tele @@ fun () ->
    let doc = or_die (load_doc path) in
    let strategy =
      match strategy with
      | "auto" -> Pquery.Auto
      | "direct" -> Pquery.Direct_only
      | "enumerate" -> Pquery.Enumerate_only
      | "sample" -> Pquery.Sample { n = samples; seed }
      | s ->
          Fmt.epr "imprecise: unknown strategy %S (expected %s)@." s
            (String.concat ", " strategy_names);
          exit 1
    in
    if jobs < 1 then begin
      Fmt.epr "imprecise: --jobs must be at least 1@.";
      exit 1
    end;
    (match top_k with
    | Some k when k < 1 ->
        Fmt.epr "imprecise: --top-k must be at least 1@.";
        exit 1
    | _ -> ());
    let budget = budget_of timeout_ms max_worlds in
    (* With a budget and the default strategy, answer through the
       degradation ladder: always an answer, graded by how approximate.
       An explicit strategy is honoured instead — there a blown budget is
       a clean error, not a silent strategy change. *)
    match (budget, strategy) with
    | Some _, Pquery.Auto -> (
        match Pquery.rank_graded ?budget ~jobs ?top_k doc query with
        | { Resilience.Degrade.value; grade } ->
            if not (Resilience.Degrade.is_exact grade) then
              Fmt.epr "imprecise: budget exhausted, degraded answer: %a@."
                Resilience.Degrade.pp_grade grade;
            Fmt.pr "%a@?" Answer.pp value
        | exception Failure msg ->
            Fmt.epr "imprecise: %s@." msg;
            exit 1)
    | _ -> (
        match Pquery.rank ?budget ~strategy ~jobs ?top_k doc query with
        | answers -> Fmt.pr "%a@?" Answer.pp answers
        | exception Pquery.Cannot_answer msg ->
            Fmt.epr "imprecise: cannot answer: %s@." msg;
            exit 1
        | exception Resilience.Budget.Exceeded reason ->
            Fmt.epr
              "imprecise: budget exceeded (%s) under --strategy %a; drop --strategy to \
               degrade gracefully@."
              (Resilience.Budget.reason_to_string reason)
              (fun ppf -> function
                | Pquery.Direct_only -> Fmt.string ppf "direct"
                | Pquery.Enumerate_only -> Fmt.string ppf "enumerate"
                | Pquery.Sample _ -> Fmt.string ppf "sample"
                | Pquery.Auto -> Fmt.string ppf "auto")
              strategy;
            exit 1
        | exception Failure msg ->
            Fmt.epr "imprecise: %s@." msg;
            exit 1)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let query = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY") in
  let strategy =
    Arg.(
      value & opt string "auto"
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:"auto, direct, enumerate, or sample (Monte-Carlo estimate).")
  in
  let samples =
    Arg.(value & opt int 10_000 & info [ "samples" ] ~docv:"N" ~doc:"Sample count for --strategy sample.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for --strategy sample.") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Enumerate possible worlds on $(docv) parallel domains. The answer \
             distribution is identical; 1 (the default) is the sequential path.")
  in
  let top_k =
    Arg.(
      value & opt (some int) None
      & info [ "top-k" ] ~docv:"K"
          ~doc:
            "Report only the $(docv) most likely answers, stopping the enumeration \
             early once their order is provably final.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Query a (probabilistic or plain) document; answers are ranked by the \
          probability that they belong to the result.")
    Term.(
      const run $ path $ query $ strategy $ samples $ seed $ jobs $ top_k $ timeout_arg
      $ max_worlds_arg $ telemetry_term)

(* ---- worlds -------------------------------------------------------------------- *)

let worlds_cmd =
  let run path limit top tele =
    with_telemetry tele @@ fun () ->
    let doc = or_die (load_doc path) in
    let print (p, forest) =
      Fmt.pr "%.4f  %s@." p
        (String.concat "" (List.map (fun t -> Xml.Printer.to_string t) forest))
    in
    match top with
    | Some k ->
        (* k-best works at any scale, no enumeration *)
        List.iter print (Worlds.most_likely ~k doc)
    | None ->
        let combos = world_count doc in
        if combos > float_of_int limit then begin
          Fmt.epr
            "imprecise: %g world combinations exceed --limit %d (hint: --top K works at any scale)@."
            combos limit;
          exit 1
        end;
        List.iter print (Worlds.merged doc)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let limit =
    Arg.(value & opt int 10_000 & info [ "limit" ] ~docv:"N" ~doc:"Refuse to enumerate more than $(docv) combinations.")
  in
  let top =
    Arg.(value & opt (some int) None & info [ "top" ] ~docv:"K" ~doc:"Only the $(docv) most likely worlds (works on documents of any size).")
  in
  Cmd.v
    (Cmd.info "worlds" ~doc:"Enumerate the possible worlds of a probabilistic document.")
    Term.(const run $ path $ limit $ top $ telemetry_term)

(* ---- feedback -------------------------------------------------------------------- *)

let feedback_cmd =
  let run path query value incorrect exact output tele =
    with_telemetry tele @@ fun () ->
    let doc = or_die (load_doc path) in
    let correct = not incorrect in
    let result =
      if exact then Feedback.assert_answer doc ~query ~value ~correct
      else Feedback.prune doc ~query ~value ~correct
    in
    match result with
    | Error e ->
        Fmt.epr "imprecise: %a@." Feedback.pp_error e;
        exit 1
    | Ok doc' ->
        Fmt.pr "before: %d nodes, %g worlds@." (node_count doc) (world_count doc);
        Fmt.pr "after : %d nodes, %g worlds@." (node_count doc') (world_count doc');
        write_output doc' output
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let query = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY") in
  let value = Arg.(required & pos 2 (some string) None & info [] ~docv:"VALUE") in
  let incorrect =
    Arg.(value & flag & info [ "incorrect" ] ~doc:"Assert the value is NOT a correct answer (default: it is).")
  in
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"Exact Bayesian conditioning (rebuilds the document) instead of in-place pruning.")
  in
  Cmd.v
    (Cmd.info "feedback"
       ~doc:"Assert that VALUE is a correct/incorrect answer of QUERY and remove the data of inconsistent worlds.")
    Term.(const run $ path $ query $ value $ incorrect $ exact $ output_arg $ telemetry_term)

(* ---- explain --------------------------------------------------------------------- *)

let explain_cmd =
  let run path query value k tele =
    with_telemetry tele @@ fun () ->
    let doc = or_die (load_doc path) in
    match Pquery.explain ~k doc query value with
    | e ->
        Fmt.pr "P(%S in answer) = %.3f@." value e.Pquery.prob;
        Fmt.pr "examined the %d most likely worlds (%.1f%% of the probability mass)@."
          (List.length e.Pquery.supporting + List.length e.Pquery.opposing)
          (100. *. e.Pquery.covered);
        let show label worlds =
          Fmt.pr "%s:@." label;
          List.iter
            (fun (p, forest) ->
              Fmt.pr "  %.4f  %s@." p
                (String.concat "" (List.map (fun t -> Xml.Printer.to_string t) forest)))
            worlds
        in
        show "supporting worlds" e.Pquery.supporting;
        show "opposing worlds" e.Pquery.opposing
    | exception Pquery.Cannot_answer msg ->
        Fmt.epr "imprecise: cannot answer: %s@." msg;
        exit 1
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let query = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY") in
  let value = Arg.(required & pos 2 (some string) None & info [] ~docv:"VALUE") in
  let k = Arg.(value & opt int 6 & info [ "k" ] ~docv:"K" ~doc:"How many of the most likely worlds to examine.") in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the most likely worlds in which VALUE is (and is not) an answer of QUERY.")
    Term.(const run $ path $ query $ value $ k $ telemetry_term)

(* ---- validate / check ------------------------------------------------------------- *)

module Diag = Analyze.Diag

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc:"Report findings as $(b,text) or $(b,json).")

(* DTD conformance, checked per possible world (bounded: beyond 10k worlds
   the check is skipped, as validate always has). Violations become D009. *)
let dtd_world_diags dtd_decl doc =
  if Dtd.declarations dtd_decl = [] || Pxml.world_count doc > 10_000. then []
  else
    List.concat_map
      (fun (_, forest) ->
        List.concat_map
          (fun w ->
            match Dtd.validate dtd_decl w with
            | Ok () -> []
            | Error vs ->
                List.map
                  (fun v ->
                    Diag.makef ~code:"D009" ~severity:Diag.Error
                      "a possible world violates the DTD: %a" Dtd.pp_violation v)
                  vs)
          forest)
      (Worlds.merged doc)

(* Findings go to stdout: they are the product of these subcommands, not
   commentary on it. *)
let render_diags format diags =
  match format with
  | `Json -> print_endline (Obs.Json.to_string ~indent:2 (Diag.list_to_json diags))
  | `Text ->
      List.iter (fun d -> Fmt.pr "%s@." (Diag.to_text d)) diags;
      (match Diag.worst diags with
      | None -> ()
      | Some w ->
          Fmt.pr "%d finding(s), worst: %s@." (List.length diags)
            (Diag.severity_to_string w))

let validate_cmd =
  let run path dtd format tele =
    with_telemetry tele @@ fun () ->
    let dtd_decl = or_die (load_dtd dtd) in
    let diags, doc =
      match load_doc path with
      | Error msg -> ([ Diag.make ~code:"D000" ~severity:Diag.Error msg ], None)
      | Ok doc -> (Analyze.Doc_lint.lint doc @ dtd_world_diags dtd_decl doc, Some doc)
    in
    render_diags format diags;
    (match (doc, format) with
    | Some doc, `Text when Diag.worst diags <> Some Diag.Error ->
        Fmt.pr "valid: %d nodes, %g world combinations@." (node_count doc)
          (world_count doc)
    | _ -> ());
    exit (Diag.exit_code diags)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Check probabilistic structure (and optionally a DTD in every world). All \
          findings are reported, not just the first; the exit code is the worst \
          severity (0 ok/info, 1 warning, 2 error).")
    Term.(const run $ path $ dtd_arg $ format_arg $ telemetry_term)

let check_cmd =
  let run path queries dtd plan format tele =
    with_telemetry tele @@ fun () ->
    if path = None && queries = [] then begin
      Fmt.epr "imprecise: nothing to check: give a DOC.xml and/or --query@.";
      exit 1
    end;
    let dtd_decl = or_die (load_dtd dtd) in
    let doc_diags, summary =
      match path with
      | None -> ([], None)
      | Some path -> (
          match load_doc path with
          | Error msg -> ([ Diag.make ~code:"D000" ~severity:Diag.Error msg ], None)
          | Ok doc ->
              ( Analyze.Doc_lint.lint doc @ dtd_world_diags dtd_decl doc,
                Some (Analyze.Summary.of_doc doc) ))
    in
    let query_diags =
      List.concat_map (fun q -> Analyze.Query_check.check_string ?summary q) queries
    in
    (* --plan: the static planner's verdict per query. Syntax errors are
       already reported by check_string above, so unparseable queries are
       simply skipped here; P-code fallback reasons join the diagnostics
       (severity info, so they never affect the exit code). *)
    let plans =
      if not plan then []
      else
        let summary = Option.value summary ~default:Analyze.Summary.empty in
        List.filter_map
          (fun q ->
            match Xpath.Parser.parse q with
            | Error _ -> None
            | Ok e -> Some (q, Analyze.Plan.plan ~summary ~source:q e))
          queries
    in
    let diags =
      doc_diags @ query_diags
      @ List.concat_map (fun (_, (p : Analyze.Plan.t)) -> p.Analyze.Plan.reasons) plans
    in
    (match format with
    | `Json ->
        let base =
          match Diag.list_to_json diags with
          | Obs.Json.Obj fields -> fields
          | j -> [ ("diagnostics", j) ]
        in
        let fields =
          if not plan then base
          else
            base
            @ [
                ( "plans",
                  Obs.Json.List
                    (List.map
                       (fun (q, p) ->
                         Obs.Json.Obj
                           [
                             ("query", Obs.Json.String q);
                             ("plan", Analyze.Plan.to_json p);
                           ])
                       plans) );
              ]
        in
        print_endline (Obs.Json.to_string ~indent:2 (Obs.Json.Obj fields))
    | `Text ->
        render_diags `Text diags;
        List.iter (fun (q, p) -> Fmt.pr "plan %s:@.  %a@." q Analyze.Plan.pp p) plans);
    (if format = `Text && diags = [] && plans = [] then
       Fmt.pr "clean: no findings in %d document(s), %d query(ies)@."
         (if path = None then 0 else 1)
         (List.length queries));
    exit (Diag.exit_code diags)
  in
  let path = Arg.(value & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let queries =
    Arg.(
      value & opt_all string []
      & info [ "query"; "q" ] ~docv:"QUERY"
          ~doc:
            "Statically analyse $(docv) (repeatable). With a document, the query is \
             additionally checked against its path summary: a provably empty result is \
             an error.")
  in
  let plan =
    Arg.(
      value & flag
      & info [ "plan" ]
          ~doc:
            "Also print the static query plan for each --query: the chosen route \
             (direct/enumerate), cost and cardinality bounds, discharged proof \
             obligations, and P-code fallback reasons (doc/analysis.md). With a \
             document the plan is computed against its path summary; without one, \
             against the empty summary.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Static analysis: lint a probabilistic document and/or analyse queries \
          against its path summary, without enumerating any worlds. Reports stable \
          diagnostic codes (doc/analysis.md); the exit code is the worst severity.")
    Term.(const run $ path $ queries $ dtd_arg $ plan $ format_arg $ telemetry_term)

(* ---- doctor ------------------------------------------------------------------------ *)

let doctor_cmd =
  let run dir strict repair migrate retries tele =
    with_telemetry tele @@ fun () ->
    let mode = if strict then Store.Strict else Store.Salvage in
    let retry =
      if retries <= 1 then None
      else
        try Some (Resilience.Retry.policy ~max_attempts:retries ())
        with Invalid_argument msg -> or_die (Error msg)
    in
    match Store.load ?retry ~mode ~quarantine:repair dir with
    | Error msg ->
        Fmt.epr "imprecise: %s@." msg;
        exit 1
    | Ok (s, report) ->
        Fmt.pr "%a" Store.pp_report report;
        Fmt.pr "recovered %d of %d document(s)@." (Store.size s)
          (List.length report.Store.docs);
        (* clean means the commit record itself checked out, not just that
           every file the load happened to find was readable *)
        let clean = Store.recovered_all report && report.Store.manifest = `Ok in
        if migrate then begin
          (* with --repair the quarantining load above already set the
             directory straight, and the binary save below re-commits the
             recovered documents — that save IS the repair, in v3 form *)
          if not (clean || repair) then begin
            Fmt.epr
              "imprecise: refusing to migrate a damaged store (run doctor --repair \
               first)@.";
            exit 1
          end;
          match Store.save ?retry ~format:Store.Binary s ~dir with
          | Ok () ->
              Fmt.pr "migrated %d document(s) to the compact binary format (v3)@."
                (Store.size s);
              exit 0
          | Error msg ->
              Fmt.epr "imprecise: migrate failed: %s@." msg;
              exit 1
        end
        else if clean then exit 0
        else if repair then begin
          match Store.save ?retry s ~dir with
          | Ok () ->
              Fmt.pr "rewrote a clean manifest for the recovered documents@.";
              exit 0
          | Error msg ->
              Fmt.epr "imprecise: repair failed: %s@." msg;
              exit 1
        end
        else exit 1
  in
  let dir = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR") in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"All-or-nothing: fail on the first problem instead of salvaging around it.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Quarantine damaged and stray files (renamed to $(b,*.corrupt), bytes kept) \
             and re-save the recovered documents, so the directory carries a clean, \
             verified manifest again — also upgrading a legacy or corrupt-manifest \
             directory. Without this flag doctor only reads.")
  in
  let migrate =
    Arg.(
      value & flag
      & info [ "migrate" ]
          ~doc:
            "Re-save a clean store in the compact binary format (v3): every document \
             becomes a checksummed $(b,.ipx) frame with deep-equal subtrees stored \
             once, committed by the usual staged manifest. Loads auto-detect the \
             format, so reads need no flag and old XML stores keep working. Refuses \
             to run on a damaged store unless combined with $(b,--repair), which \
             quarantines the damage first and migrates what was recovered.")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Re-run a load (and the $(b,--repair) save) up to $(docv) times on \
             transient IO failures, with exponential backoff. Safe: each load \
             attempt builds a fresh store, each save attempt stages under a fresh \
             generation.")
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Check a store directory: verify every document against the checksummed \
          manifest and print a per-document recovery report. Exits 0 only if the \
          manifest is present and verified and every document was recovered (or \
          $(b,--repair) restored that state). $(b,--migrate) converts a clean store \
          to the compact binary format.")
    Term.(const run $ dir $ strict $ repair $ migrate $ retries $ telemetry_term)

(* ---- demo -------------------------------------------------------------------------- *)

let demo_cmd =
  let run tele =
    with_telemetry tele @@ fun () ->
    Fmt.pr "Integrating the two Figure-2 address books under 'person: nm?, tel?':@.";
    let doc =
      Result.get_ok
        (integrate ~rules:Rulesets.generic ~dtd:Data.Addressbook.dtd Data.Addressbook.source_a
           Data.Addressbook.source_b)
    in
    List.iter
      (fun (p, forest) ->
        Fmt.pr "  %.2f  %s@." p
          (String.concat "" (List.map (fun t -> Xml.Printer.to_string t) forest)))
      (Worlds.merged doc);
    Fmt.pr "@.Querying //person/tel:@.";
    Fmt.pr "%a" Answer.pp (rank doc "//person/tel");
    Fmt.pr "@.After the user denies 2222:@.";
    let doc = Result.get_ok (Feedback.prune doc ~query:"//person/tel" ~value:"2222" ~correct:false) in
    Fmt.pr "%a" Answer.pp (rank doc "//person/tel")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the paper's Figure-2 example end to end.")
    Term.(const run $ telemetry_term)

(* ---- report ------------------------------------------------------------------------ *)

(* Offline aggregation of a JSONL event log written by [--events-out].
   An "op completion" is any event carrying a [dur_ms] field, except the
   [slow_op] markers (those duplicate an op the recorder already emitted,
   so counting them would double-book the latency). *)
let report_cmd =
  let fstr name ev =
    match Obs.Event.field name ev with Some (Obs.Json.String s) -> Some s | _ -> None
  in
  let ffloat name ev =
    match Obs.Event.field name ev with
    | Some (Obs.Json.Float f) -> Some f
    | Some (Obs.Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let fbool name ev =
    match Obs.Event.field name ev with Some (Obs.Json.Bool b) -> Some b | _ -> None
  in
  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let run file top format =
    let ic =
      try open_in file
      with Sys_error msg -> die "cannot open event log: %s" msg
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    (* per-op latency aggregates, keyed by event (= op) name *)
    let lat : (string, Obs.Quantile.t * float ref * int ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let total_events = ref 0 and ops = ref 0 and errors = ref 0 in
    let degrades = Hashtbl.create 8 (* rung -> count *) in
    let trips = Hashtbl.create 8 (* reason -> count *) in
    let retries = ref 0 and giveups = ref 0 and slow_marks = ref 0 in
    let caches = Hashtbl.create 8 (* event name -> (hits, lookups) *) in
    (* slowest ops, descending by dur_ms, bounded to [top] *)
    let slowest = ref [] in
    let note_slow dur ev =
      slowest :=
        List.filteri
          (fun i _ -> i < top)
          (List.merge (fun (a, _) (b, _) -> compare b a) [ (dur, ev) ] !slowest)
    in
    let line_no = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr line_no;
         if String.trim line <> "" then begin
           let ev =
             match Obs.Json.parse line with
             | Error msg -> die "%s:%d: %s" file !line_no msg
             | Ok json -> (
                 match Obs.Event.of_json json with
                 | Error msg -> die "%s:%d: %s" file !line_no msg
                 | Ok ev -> ev)
           in
           incr total_events;
           (match ev.Obs.Event.name with
           | "degrade" ->
               bump degrades (Option.value ~default:"?" (fstr "rung" ev))
           | "budget.trip" ->
               bump trips (Option.value ~default:"?" (fstr "reason" ev))
           | "retry" -> incr retries
           | "retry.giveup" -> incr giveups
           | "slow_op" -> incr slow_marks
           | _ -> ());
           (match fbool "hit" ev with
           | Some hit ->
               let h, n =
                 Option.value ~default:(0, 0) (Hashtbl.find_opt caches ev.Obs.Event.name)
               in
               Hashtbl.replace caches ev.Obs.Event.name
                 ((h + if hit then 1 else 0), n + 1)
           | None -> ());
           match ffloat "dur_ms" ev with
           | Some dur when ev.Obs.Event.name <> "slow_op" ->
               incr ops;
               let q, mx, errs =
                 match Hashtbl.find_opt lat ev.Obs.Event.name with
                 | Some entry -> entry
                 | None ->
                     let entry = (Obs.Quantile.create (), ref 0., ref 0) in
                     Hashtbl.add lat ev.Obs.Event.name entry;
                     entry
               in
               Obs.Quantile.add q dur;
               if dur > !mx then mx := dur;
               (match fstr "outcome" ev with
               | Some o when String.length o >= 5 && String.sub o 0 5 = "error" ->
                   incr errs;
                   incr errors
               | _ -> ());
               note_slow dur ev
           | _ -> ()
         end
       done
     with End_of_file -> ());
    if !total_events = 0 then die "%s: no events (is this an --events-out log?)" file;
    let by_name tbl = List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) tbl []) in
    let ops_rows =
      List.map
        (fun (name, (q, mx, errs)) ->
          (name, Obs.Quantile.count q, Obs.Quantile.estimate q 0.5,
           Obs.Quantile.estimate q 0.9, Obs.Quantile.estimate q 0.99, !mx, !errs))
        (by_name lat)
    in
    match format with
    | `Json ->
        let obj =
          Obs.Json.Obj
            [
              ("events", Obs.Json.Int !total_events);
              ("ops", Obs.Json.Int !ops);
              ("errors", Obs.Json.Int !errors);
              ( "latency_ms",
                Obs.Json.Obj
                  (List.map
                     (fun (name, n, p50, p90, p99, mx, errs) ->
                       ( name,
                         Obs.Json.Obj
                           [
                             ("n", Obs.Json.Int n); ("p50", Obs.Json.Float p50);
                             ("p90", Obs.Json.Float p90); ("p99", Obs.Json.Float p99);
                             ("max", Obs.Json.Float mx); ("errors", Obs.Json.Int errs);
                           ] ))
                     ops_rows) );
              ( "degradations",
                Obs.Json.Obj
                  (List.map (fun (r, n) -> (r, Obs.Json.Int n)) (by_name degrades)) );
              ( "budget_trips",
                Obs.Json.Obj
                  (List.map (fun (r, n) -> (r, Obs.Json.Int n)) (by_name trips)) );
              ("retries", Obs.Json.Int !retries);
              ("retry_giveups", Obs.Json.Int !giveups);
              ("slow_ops", Obs.Json.Int !slow_marks);
              ( "caches",
                Obs.Json.Obj
                  (List.map
                     (fun (name, (h, n)) ->
                       ( name,
                         Obs.Json.Obj
                           [ ("hits", Obs.Json.Int h); ("lookups", Obs.Json.Int n) ] ))
                     (by_name caches)) );
              ( "slowest",
                Obs.Json.List
                  (List.map
                     (fun (dur, ev) ->
                       Obs.Json.Obj
                         [
                           ("op", Obs.Json.String ev.Obs.Event.name);
                           ("dur_ms", Obs.Json.Float dur);
                           ("trace", Obs.Json.Int ev.Obs.Event.trace_id);
                           ( "detail",
                             Obs.Json.String (Option.value ~default:"" (fstr "detail" ev))
                           );
                         ])
                     !slowest) );
            ]
        in
        print_endline (Obs.Json.to_string ~indent:2 obj)
    | `Text ->
        Fmt.pr "%d event(s), %d op completion(s), %d error(s)@.@." !total_events !ops
          !errors;
        if ops_rows <> [] then begin
          Fmt.pr "latency (ms)          %8s %9s %9s %9s %9s %6s@." "n" "p50" "p90" "p99"
            "max" "err";
          List.iter
            (fun (name, n, p50, p90, p99, mx, errs) ->
              Fmt.pr "  %-19s %8d %9.3f %9.3f %9.3f %9.3f %6d@." name n p50 p90 p99 mx
                errs)
            ops_rows;
          Fmt.pr "@."
        end;
        let section title rows pp =
          if rows <> [] then begin
            Fmt.pr "%s@." title;
            List.iter pp rows;
            Fmt.pr "@."
          end
        in
        section "degradations (by rung degraded from)" (by_name degrades)
          (fun (r, n) -> Fmt.pr "  %-19s %8d@." r n);
        section "budget trips (by reason)" (by_name trips) (fun (r, n) ->
            Fmt.pr "  %-19s %8d@." r n);
        if !retries > 0 || !giveups > 0 then
          Fmt.pr "retries: %d (gave up %d time(s))@.@." !retries !giveups;
        section "cache effectiveness" (by_name caches) (fun (name, (h, n)) ->
            Fmt.pr "  %-19s %8d/%d hits (%.0f%%)@." name h n
              (if n = 0 then 0. else 100. *. float_of_int h /. float_of_int n));
        section
          (Fmt.str "slowest ops (top %d)" top)
          !slowest
          (fun (dur, ev) ->
            Fmt.pr "  %9.3f ms  %-19s trace=%d  %s@." dur ev.Obs.Event.name
              ev.Obs.Event.trace_id
              (Option.value ~default:"" (fstr "detail" ev)))
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EVENTS.jsonl" ~doc:"JSONL event log written by $(b,--events-out).")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N" ~doc:"How many of the slowest ops to list.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate a flight-recorder event log: per-op latency quantiles, degradation \
          and budget-trip rates, cache effectiveness, and the slowest operations.")
    Term.(const run $ file $ top $ format_arg)

let main =
  Cmd.group
    (Cmd.info "imprecise" ~version:"1.0.0"
       ~doc:"Good-is-good-enough probabilistic XML data integration (IMPrECISE, ICDE 2008).")
    [
      integrate_cmd; stats_cmd; query_cmd; worlds_cmd; explain_cmd; feedback_cmd;
      validate_cmd; check_cmd; rules_cmd; doctor_cmd; demo_cmd; report_cmd;
    ]

let () =
  (* wall-clock for event timestamps and recorder durations; the obs
     library itself is stdlib-only and defaults to CPU time *)
  Obs.Clock.set Unix.gettimeofday;
  exit (Cmd.eval main)
