(* Quickstart: integrate two tiny product catalogues whose entries overlap,
   then query the uncertain result.

     dune exec examples/quickstart.exe *)

open Imprecise

let shop_a =
  parse_xml_exn
    {|<catalog>
        <product><name>Espresso Machine X100</name><price>199</price></product>
        <product><name>Milk Frother</name><price>25</price></product>
      </catalog>|}

let shop_b =
  parse_xml_exn
    {|<catalog>
        <product><name>Espresso Machine X100</name><price>189</price></product>
        <product><name>Coffee Grinder</name><price>49</price></product>
      </catalog>|}

let () =
  (* A product has one name and one price; the name identifies the product.
     That is all the knowledge the Oracle needs here. *)
  let dtd = Result.get_ok (Dtd.of_string "product: name?, price?") in
  let rules =
    Rulesets.
      {
        name = "catalog";
        oracle =
          Oracle.make
            [ Oracle.deep_equal_rule; Oracle.key_rule ~tag:"product" ~field:"name" ];
        reconcile = (fun _ _ _ -> None);
        description = "product names are keys";
      }
  in
  let doc =
    match integrate ~rules ~dtd shop_a shop_b with
    | Ok doc -> doc
    | Error e -> Fmt.failwith "integration failed: %a" Integrate.pp_error e
  in
  Fmt.pr "Integrated catalogue: %d nodes, %g possible worlds@.@." (node_count doc)
    (world_count doc);

  (* The espresso machine matched in both shops but the price conflicts, so
     the integrated catalogue is uncertain about it. *)
  Fmt.pr "All product names (certain — the matching was decided by the key):@.";
  Fmt.pr "%a@." Answer.pp (rank doc "//product/name");

  Fmt.pr "Price of the espresso machine (uncertain — the sources disagree):@.";
  Fmt.pr "%a@." Answer.pp (rank doc "//product[name='Espresso Machine X100']/price");

  Fmt.pr "Products under 30 (depends on the world):@.";
  Fmt.pr "%a@." Answer.pp (rank doc "//product[price < 30]/name");

  (* Worlds can be listed outright while they are few. *)
  Fmt.pr "The possible worlds:@.";
  List.iter
    (fun (p, forest) ->
      Fmt.pr "  %.2f %s@." p
        (String.concat "" (List.map (fun t -> Xml.Printer.to_string t) forest)))
    (Worlds.merged doc)
