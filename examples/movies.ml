(* The paper's Section V experiment at demo scale: integrate movie metadata
   in MPEG-7 and IMDB conventions under intentionally confusing conditions
   (sequels, TV shows), watch the rules tame the possibility explosion, and
   run the paper's two demo queries.

     dune exec examples/movies.exe *)

open Imprecise

let human n =
  if n >= 1e12 then Printf.sprintf "%.2fT" (n /. 1e12)
  else if n >= 1e9 then Printf.sprintf "%.2fG" (n /. 1e9)
  else if n >= 1e6 then Printf.sprintf "%.2fM" (n /. 1e6)
  else if n >= 1e3 then Printf.sprintf "%.1fk" (n /. 1e3)
  else Printf.sprintf "%.0f" n

let () =
  let wl = Data.Workloads.confusing () in
  let a = Data.Workloads.mpeg7_doc wl and b = Data.Workloads.imdb_doc wl in
  Fmt.pr "MPEG-7 source (%d movies), IMDB source (%d movies); per construction@."
    (List.length wl.mpeg7) (List.length wl.imdb);
  Fmt.pr "exactly one movie per franchise is the same real-world object.@.@.";

  (* The explosion and its taming: same sources, increasing knowledge. *)
  Fmt.pr "%-22s %12s %14s %10s@." "rules" "nodes" "worlds" "undecided";
  List.iter
    (fun (rs : Rulesets.t) ->
      match integration_stats ~rules:rs ~dtd:wl.dtd a b with
      | Ok s ->
          Fmt.pr "%-22s %12s %14s %10d@." rs.name (human s.Integrate.nodes)
            (human s.Integrate.worlds) s.Integrate.trace.Integrate.unsure_pairs
      | Error e -> Fmt.pr "%-22s error: %a@." rs.name Integrate.pp_error e)
    Rulesets.table1;

  (* Integrate with rules that keep interesting confusion (no year rule) and
     query the uncertain result. *)
  let rules = Rulesets.movie ~genre:true ~title:true ~director:true () in
  let doc =
    match integrate ~rules ~dtd:wl.dtd a b with
    | Ok doc -> doc
    | Error e -> Fmt.failwith "integration failed: %a" Integrate.pp_error e
  in
  Fmt.pr "@.Integrated with %s: %d nodes, %s worlds — still queryable:@." rules.name
    (node_count doc)
    (human (world_count doc));

  let q1 = {|//movie[.//genre="Horror"]/title|} in
  Fmt.pr "@.%s@.%a" q1 Answer.pp (rank doc q1);

  let q2 = {|//movie[some $d in .//director satisfies contains($d,"John")]/title|} in
  Fmt.pr "@.%s@.%a" q2 Answer.pp (rank doc q2);
  Fmt.pr
    "@.(The low-probability 'Mission: Impossible' answer is the paper's 'II may@.\
     be a typing mistake' world.)@.";

  (* Answer quality against the generator's ground truth. *)
  let truth = Data.Workloads.titles_with_genre wl "Horror" in
  let answers = rank doc q1 in
  Fmt.pr "@.Against ground truth {%s}: precision %.3f, recall %.3f@."
    (String.concat ", " truth)
    (Quality.probabilistic_precision answers ~truth)
    (Quality.probabilistic_recall answers ~truth)
