(* The information cycle of the paper's Figure 1: integrate, query, get
   feedback on the answers, remove the data of impossible worlds, repeat —
   integration completes incrementally while the data is already in use.

     dune exec examples/feedback_loop.exe *)

open Imprecise

let report label doc =
  Fmt.pr "%-52s %6d nodes %5.0f worlds  certainty %.2f@." label (node_count doc)
    (world_count doc)
    (Feedback.certainty doc)

let () =
  let wl = Data.Workloads.typical () in
  let doc =
    match
      integrate ~rules:Rulesets.full ~dtd:wl.dtd (Data.Workloads.mpeg7_doc wl)
        (Data.Workloads.imdb_doc wl)
    with
    | Ok doc -> doc
    | Error e -> Fmt.failwith "integration failed: %a" Integrate.pp_error e
  in
  report "after near-automatic integration" doc;
  Fmt.pr "@.The system could not decide whether the two 'Twelve Monkeys' and the two@.";
  Fmt.pr "'GoldenEye' entries co-refer. Query answers are usable regardless:@.@.";
  let q = "count(//movie)" in
  Fmt.pr "%s:@.%a@." q Answer.pp (rank doc q);

  (* The user looks at an answer and reacts; each reaction removes the data
     of the worlds it contradicts. *)
  let step doc (query, value, correct, label) =
    match Feedback.prune doc ~query ~value ~correct with
    | Ok doc' ->
        report label doc';
        doc'
    | Error e ->
        Fmt.pr "%-52s no-op (%a)@." label Feedback.pp_error e;
        doc
  in
  let doc =
    List.fold_left step doc
      [
        ( "count(//movie[title='Twelve Monkeys'])",
          "1",
          true,
          "user: the Twelve Monkeys entries are one movie" );
        ( "count(//movie[title='GoldenEye'])",
          "1",
          true,
          "user: the GoldenEye entries are one movie" );
      ]
  in
  Fmt.pr "@.%s now has a single certain answer:@.%a@." q Answer.pp (rank doc q);
  assert (Pxml.is_certain doc);

  (* The merged movie carries the union of both sources' knowledge. *)
  Fmt.pr "@.The merged Twelve Monkeys record:@.";
  match Pxml.to_tree_exn doc with
  | [ tree ] ->
      List.iter
        (fun m -> Fmt.pr "%s@." (Xml.Printer.to_string ~indent:2 m))
        (Xpath.Eval.select tree "//movie[title='Twelve Monkeys']")
  | _ -> assert false
