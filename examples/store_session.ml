(* Using the document store as a tiny probabilistic XML DBMS session: load
   sources, integrate, persist, reopen, query — the workflow the paper's
   demo runs on top of MonetDB/XQuery.

     dune exec examples/store_session.exe *)

open Imprecise

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "imprecise-session" in
  let store = Store.create () in

  (* Ingest the two sources. *)
  let wl = Data.Workloads.confusing () in
  Store.put store "mpeg7" (Store.Certain (Data.Workloads.mpeg7_doc wl));
  Store.put store "imdb" (Store.Certain (Data.Workloads.imdb_doc wl));

  (* Integrate inside the store. *)
  let a = Option.get (Store.get_certain store "mpeg7") in
  let b = Option.get (Store.get_certain store "imdb") in
  let rules = Rulesets.movie ~genre:true ~title:true ~year:true ~director:true () in
  let doc =
    match integrate ~rules ~dtd:wl.dtd a b with
    | Ok doc -> doc
    | Error e -> Fmt.failwith "integration failed: %a" Integrate.pp_error e
  in
  Store.put store "movies-integrated" (Store.Probabilistic doc);
  Fmt.pr "store now holds: %s@." (String.concat ", " (Store.names store));

  (* Persist and reopen — probabilistic documents round-trip through their
     XML encoding. The save is atomic (tmp + fsync + rename, committed by a
     checksummed MANIFEST) and the load verifies every file against the
     manifest, salvaging what it can and reporting the rest. *)
  (match Store.save store ~dir with
  | Ok () -> Fmt.pr "saved to %s@." dir
  | Error msg -> Fmt.failwith "save failed: %s" msg);
  let reopened =
    match Store.load dir with
    | Ok (s, report) ->
        assert (Store.recovered_all report);
        s
    | Error msg -> Fmt.failwith "load failed: %s" msg
  in
  let doc' = Option.get (Store.get_probabilistic reopened "movies-integrated") in
  assert (Pxml.equal doc doc');
  Fmt.pr "reopened %d documents; integration intact (%d nodes)@.@."
    (Store.size reopened) (node_count doc');

  (* Query the stored probabilistic document. *)
  let q = "//movie[year=1995]/title" in
  Fmt.pr "%s:@.%a" q Answer.pp (rank doc' q)
