(* The paper's Figure 2, end to end: two address books each containing a
   person named John, with different phone numbers. Are they the same
   person? The system keeps all three possible worlds; a DTD limiting a
   person to one phone rejects the nonsense two-phone world.

     dune exec examples/addressbook.exe *)

open Imprecise

let () =
  let a = Data.Addressbook.source_a and b = Data.Addressbook.source_b in
  Fmt.pr "Source A: %s@." (Xml.Printer.to_string a);
  Fmt.pr "Source B: %s@.@." (Xml.Printer.to_string b);

  let doc =
    match integrate ~rules:Rulesets.generic ~dtd:Data.Addressbook.dtd a b with
    | Ok doc -> doc
    | Error e -> Fmt.failwith "integration failed: %a" Integrate.pp_error e
  in

  Fmt.pr "The three possible worlds of the paper's Figure 2:@.";
  List.iter
    (fun (p, forest) ->
      Fmt.pr "  %.2f %s@." p
        (String.concat "" (List.map (fun t -> Xml.Printer.to_string t) forest)))
    (Worlds.merged doc);

  (* Without the DTD the system would also have to consider one John owning
     both phones. *)
  let no_dtd = Result.get_ok (integrate ~rules:Rulesets.generic a b) in
  Fmt.pr "@.Without the DTD there are %d worlds (one John may own both phones).@."
    (Worlds.distinct_count no_dtd);

  (* The compact representation, as it would be stored in the XML DBMS. *)
  Fmt.pr "@.Stored representation (%d nodes):@.%s@." (node_count doc)
    (Codec.to_string ~indent:2 doc);

  (* Querying never requires resolving the uncertainty first. *)
  Fmt.pr "@.Phone numbers for John, ranked:@.%a" Answer.pp (rank doc "//person[nm='John']/tel");

  (* Every probability can be explained in terms of worlds. *)
  let e = explain ~k:3 doc "//person/tel" "2222" in
  Fmt.pr "@.Why 2222 at %.0f%%? It holds in:@." (100. *. e.Pquery.prob);
  List.iter
    (fun (p, forest) ->
      Fmt.pr "  %.2f %s@." p
        (String.concat "" (List.map Xml.Printer.to_string forest)))
    e.Pquery.supporting;

  (* Larger, generated address books exercise the same pipeline at scale. *)
  let big_a, big_b = Data.Addressbook.larger 120 42 in
  let rules =
    Rulesets.
      {
        name = "addressbook";
        oracle =
          Oracle.make [ Oracle.deep_equal_rule; Oracle.key_rule ~tag:"person" ~field:"nm" ];
        reconcile = (fun _ _ _ -> None);
        description = "names are keys";
      }
  in
  match integration_stats ~rules ~dtd:Data.Addressbook.dtd big_a big_b with
  | Ok s ->
      Fmt.pr "@.Scale check (120 vs ~110 persons, names as keys): %.0f nodes, %g worlds, %d undecided@."
        s.Integrate.nodes s.Integrate.worlds s.Integrate.trace.Integrate.unsure_pairs
  | Error e -> Fmt.failwith "scale check failed: %a" Integrate.pp_error e
