(* Integrating bibliographies: a DBLP-style and an ACM-style source that
   describe overlapping sets of papers in different conventions. Shows the
   IMPrECISE machinery on a second domain — the rule builders and
   reconciliation hooks are not movie-specific.

     dune exec examples/publications.exe *)

open Imprecise
module Pub = Data.Publications

let () =
  let dblp, acm = Pub.sources () in
  Fmt.pr "DBLP-style source: %d records; ACM-style source: %d records;@."
    (List.length dblp) (List.length acm);
  Fmt.pr "%d records describe the same publication in both.@.@."
    (List.length (Pub.coref_pairs dblp acm));

  let a = Pub.collection Pub.Dblp dblp and b = Pub.collection Pub.Acm acm in
  let cfg =
    Integrate.config ~oracle:(Pub.rules ()) ~reconcile:Pub.reconcile ~dtd:Pub.dtd ()
  in
  let doc =
    match Integrate.integrate cfg a b with
    | Ok doc -> doc
    | Error e -> Fmt.failwith "integration failed: %a" Integrate.pp_error e
  in
  Fmt.pr "integrated bibliography: %d nodes, %g possible worlds@.@." (node_count doc)
    (world_count doc);

  (* Authors survive in one canonical convention; venues are reconciled. *)
  Fmt.pr "publications at ICDE:@.%a@." Answer.pp (rank doc "//publication[venue='ICDE']/title");

  Fmt.pr "publications by van Keulen:@.%a@." Answer.pp
    (rank doc
       {|//publication[some $a in author satisfies contains($a, "Keulen")]/title|});

  (* The demo/full confuser: similar titles, different years — the year
     rule keeps them apart, so both remain distinct entries. *)
  Fmt.pr "the 2008 demo paper is certain and separate from the 2006 paper:@.%a@."
    Answer.pp
    (rank doc "//publication[year=2008]/title");

  (* Pages only exist in the DBLP-style source; integration keeps them. *)
  Fmt.pr "page ranges (DBLP-only knowledge survives integration):@.%a@." Answer.pp
    (rank doc "//publication[pages]/pages")
