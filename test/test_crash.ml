(* Fault-injection matrix for the store's crash-safe persistence.

   For every mutating IO operation a save performs (write, fsync, rename,
   delete, manifest write) and for every failure flavour (clean crash, torn
   write, ENOSPC), inject the fault, let the save die, and assert that a
   subsequent salvaging load recovers exactly the documents whose rename
   completed, quarantines the rest with a reason, and never returns a
   document whose bytes differ from what the store wrote.

     dune build @crash       runs only this matrix
     dune runtest            includes it *)

module Store = Imprecise.Store
module Io = Imprecise.Store.Io
module Tree = Imprecise.Tree
module Pxml = Imprecise.Pxml

let check = Alcotest.check

let dir_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "imprecise-crash-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  dir

let mode_name = function
  | Io.Crash -> "crash"
  | Io.Torn -> "torn-write"
  | Io.Enospc -> "enospc"

let modes = [ Io.Crash; Io.Torn; Io.Enospc ]

let doc_equal a b =
  match (a, b) with
  | Store.Certain x, Store.Certain y -> Tree.deep_equal x y
  | Store.Probabilistic x, Store.Probabilistic y -> Pxml.equal x y
  | _ -> false

(* three documents, one probabilistic with messy content *)
let alpha_v1 = Store.Certain (Imprecise.parse_xml_exn "<alpha><item>one</item></alpha>")

let alpha_v2 = Store.Certain (Imprecise.parse_xml_exn "<alpha><item>two</item><item>2</item></alpha>")

let beta =
  Store.Probabilistic
    (Pxml.certain
       [
         Pxml.Elem
           ( "beta",
             [ ("note", {|"<&>" — ångström|}) ],
             [
               Pxml.dist
                 [
                   Pxml.choice ~prob:0.1 [ Pxml.Text "π ≈ 3" ];
                   Pxml.choice ~prob:0.9 [ Pxml.Text "<tag> & entity" ];
                 ];
             ] );
       ])

let gamma = Store.Certain (Imprecise.parse_xml_exn "<gamma/>")

let delta = Store.Certain (Imprecise.parse_xml_exn "<delta>new in v2</delta>")

let v1_docs = [ ("alpha", alpha_v1); ("beta", beta); ("gamma", gamma) ]

let make_v1 () =
  let s = Store.create () in
  List.iter (fun (n, d) -> Store.put s n d) v1_docs;
  s

(* Committed files are generation-stamped: alpha.g3.xml holds document
   "alpha". *)
let doc_of_path path =
  let base = Filename.chop_suffix (Filename.basename path) ".xml" in
  match String.rindex_opt base '.' with
  | Some i when i + 1 < String.length base && base.[i + 1] = 'g' -> String.sub base 0 i
  | _ -> base

(* Count the mutating operations of [save] so the matrix covers them all. *)
let count_ops save =
  let n = ref 0 in
  let io = Io.observe (fun op _ -> if Io.is_mutating op then incr n) Io.real in
  (match save io with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "sizing save failed: %s" msg);
  !n

let assert_reasons report =
  List.iter
    (fun (name, o) ->
      match o with
      | Store.Quarantined "" -> Alcotest.failf "%s quarantined without a reason" name
      | _ -> ())
    report.Store.docs

(* --- first save into an empty directory -------------------------------- *)

let test_fresh_save_matrix () =
  let total = count_ops (fun io -> Store.save ~io (make_v1 ()) ~dir:(fresh_dir ())) in
  (* mkdir + 3 ops per document + 3 for the manifest + 2 directory syncs *)
  check Alcotest.int "matrix size" (1 + (3 * List.length v1_docs) + 3 + 2) total;
  List.iter
    (fun mode ->
      for fail_at = 1 to total do
        let label what = Printf.sprintf "%s (mode %s, fault %d)" what (mode_name mode) fail_at in
        let dir = fresh_dir () in
        (* record which documents made it through their rename *)
        let renamed = ref [] in
        let io =
          Io.observe
            (fun op path ->
              if op = Io.Rename && Filename.check_suffix path ".xml" then
                renamed := doc_of_path path :: !renamed)
            (Io.faulty ~mode ~fail_at Io.real)
        in
        (match Store.save ~io (make_v1 ()) ~dir with
        | Error _ -> ()
        | Ok () -> Alcotest.fail (label "save survived its injected fault"));
        if not (Sys.file_exists dir) then
          (* the fault hit mkdir: nothing was ever written *)
          check Alcotest.(list string) (label "nothing written") [] !renamed
        else
        match Store.load dir with
        | Error msg -> Alcotest.failf "%s: %s" (label "salvaging load refused") msg
        | Ok (s, report) ->
            (* exactly the renamed documents are recovered *)
            check
              Alcotest.(list string)
              (label "recovered = renamed")
              (List.sort String.compare !renamed)
              (List.sort String.compare (Store.names s));
            (* and each one is intact, bit for bit *)
            List.iter
              (fun (name, doc) ->
                match Store.get s name with
                | Some d -> check Alcotest.bool (label (name ^ " intact")) true (doc_equal doc d)
                | None -> ())
              v1_docs;
            assert_reasons report;
            (* the default load only reads: nothing was renamed aside *)
            check Alcotest.bool (label "default load is read-only") false
              (Array.exists
                 (fun f -> Filename.check_suffix f ".corrupt")
                 (Sys.readdir dir));
            (* recovery converges: quarantining the damage yields a clean
               directory for every later load *)
            (match Store.load ~quarantine:true dir with
            | Error msg -> Alcotest.failf "%s: %s" (label "quarantining load refused") msg
            | Ok (sq, _) ->
                check Alcotest.int (label "quarantine recovers the same") (Store.size s)
                  (Store.size sq));
            (match Store.load dir with
            | Error msg -> Alcotest.failf "%s: %s" (label "second load refused") msg
            | Ok (s2, r2) ->
                check Alcotest.int (label "second load stable") (Store.size s) (Store.size s2);
                check Alcotest.bool (label "second load clean") true (Store.recovered_all r2))
      done)
    modes

(* --- overwriting save on a committed directory -------------------------- *)

(* v2 changes alpha, keeps beta, removes gamma, adds delta. The manifest
   rename is the commit point: before it the store must read as v1 (gamma
   and all), after it as exactly v2 (gamma gone for good). *)
let test_overwrite_save_matrix () =
  let apply_v2 s =
    Store.put s "alpha" alpha_v2;
    Store.remove s "gamma";
    Store.put s "delta" delta
  in
  let total =
    count_ops (fun io ->
        let dir = fresh_dir () in
        match Store.save (make_v1 ()) ~dir with
        | Error msg -> Alcotest.failf "v1 save failed: %s" msg
        | Ok () ->
            let s = make_v1 () in
            apply_v2 s;
            Store.save ~io s ~dir)
  in
  (* 3 ops per live document + 3 for the manifest + 2 directory syncs
     + 3 deletes of the superseded generation-1 files *)
  check Alcotest.int "matrix size" ((3 * 3) + 3 + 2 + 3) total;
  List.iter
    (fun mode ->
      for fail_at = 1 to total do
        let label what = Printf.sprintf "%s (mode %s, fault %d)" what (mode_name mode) fail_at in
        let dir = fresh_dir () in
        (match Store.save (make_v1 ()) ~dir with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "v1 save failed: %s" msg);
        let committed = ref false in
        let io =
          Io.observe
            (fun op path ->
              if op = Io.Rename && Filename.basename path = "MANIFEST" then committed := true)
            (Io.faulty ~mode ~fail_at Io.real)
        in
        let s = make_v1 () in
        apply_v2 s;
        (match Store.save ~io s ~dir with
        | Error _ -> ()
        | Ok () -> Alcotest.fail (label "save survived its injected fault"));
        match Store.load dir with
        | Error msg -> Alcotest.failf "%s: %s" (label "salvaging load refused") msg
        | Ok (s', report) ->
            assert_reasons report;
            (* safety: anything returned is a version the store once wrote *)
            let acceptable = function
              | "alpha" -> [ alpha_v1; alpha_v2 ]
              | "beta" -> [ beta ]
              | "gamma" -> [ gamma ]
              | "delta" -> [ delta ]
              | name -> Alcotest.failf "%s" (label ("unexpected document " ^ name))
            in
            List.iter
              (fun name ->
                let d = Option.get (Store.get s' name) in
                check Alcotest.bool
                  (label (name ^ " is a version the store wrote"))
                  true
                  (List.exists (doc_equal d) (acceptable name)))
              (Store.names s');
            if !committed then begin
              (* after the commit point: exactly v2 *)
              check Alcotest.bool (label "alpha is v2") true
                (match Store.get s' "alpha" with
                | Some d -> doc_equal d alpha_v2
                | None -> false);
              check Alcotest.bool (label "beta survives") true (Store.mem s' "beta");
              check Alcotest.bool (label "delta present") true (Store.mem s' "delta");
              check Alcotest.bool (label "gamma never resurrects") false (Store.mem s' "gamma")
            end
            else begin
              (* before the commit point: v1 is still in force, in full —
                 the interrupted save must not have damaged any committed
                 document (staging never touches committed files) *)
              check Alcotest.bool (label "gamma still v1") true
                (match Store.get s' "gamma" with
                | Some d -> doc_equal d gamma
                | None -> false);
              check Alcotest.bool (label "beta still readable") true (Store.mem s' "beta");
              check Alcotest.bool (label "alpha still v1") true
                (match Store.get s' "alpha" with
                | Some d -> doc_equal d alpha_v1
                | None -> false);
              check Alcotest.bool (label "delta not visible before commit") false
                (Store.mem s' "delta")
            end
      done)
    modes

(* --- the checksum gate -------------------------------------------------- *)

(* A torn write that the filesystem "completes" (prefix of the bytes, file
   renamed by a later interleaving) must be caught by the manifest CRC, not
   returned as a silently truncated document. *)
let test_truncated_committed_file_is_caught () =
  let dir = fresh_dir () in
  (match Store.save (make_v1 ()) ~dir with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save failed: %s" msg);
  let path = Filename.concat dir "alpha.g1.xml" in
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full / 2)));
  match Store.load dir with
  | Error msg -> Alcotest.failf "salvaging load refused: %s" msg
  | Ok (s, report) ->
      check Alcotest.bool "truncated doc never returned" false (Store.mem s "alpha");
      (match List.assoc_opt "alpha" report.Store.docs with
      | Some (Store.Quarantined _) -> ()
      | _ -> Alcotest.fail "truncated doc not quarantined");
      check Alcotest.bool "other docs unaffected" true
        (Store.mem s "beta" && Store.mem s "gamma")

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "store.crash-matrix",
      [
        t "fresh save: every fault point, every mode" test_fresh_save_matrix;
        t "overwriting save: commit-point semantics" test_overwrite_save_matrix;
        t "checksum catches a truncated committed file" test_truncated_committed_file_is_caught;
      ] );
  ]

let () = Alcotest.run "imprecise-crash" suite
