(* Tests for the static analysis subsystem: diagnostics, path summaries,
   query checks (and the soundness of the empty-query prune), and the
   document linter. *)

module Pxml = Imprecise.Pxml
module Pquery = Imprecise.Pquery
module Diag = Imprecise.Analyze.Diag
module Summary = Imprecise.Analyze.Summary
module Query_check = Imprecise.Analyze.Query_check
module Doc_lint = Imprecise.Analyze.Doc_lint
module Cost = Imprecise.Analyze.Cost
module Plan = Imprecise.Analyze.Plan
module Rule_lint = Imprecise.Analyze.Rule_lint
module Oracle = Imprecise.Oracle
module Obs = Imprecise.Obs

let check = Alcotest.check

let parse = Imprecise.parse_xml_exn

let codes diags = List.map (fun (d : Diag.t) -> d.Diag.code) diags

let has_code c diags = List.mem c (codes diags)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Raw record builders so the linter tests can construct deliberately
   invalid distributions. *)
let raw_dist choices = { Pxml.choices }

let raw_choice prob nodes = { Pxml.prob; nodes }

(* Figure 2's address book: one John with an uncertain phone, or two
   distinct persons. *)
let fig2_doc =
  let tel v = Pxml.elem "tel" [ Pxml.certain [ Pxml.text v ] ] in
  let person tel_dist =
    Pxml.elem "person"
      [ Pxml.certain [ Pxml.elem "nm" [ Pxml.certain [ Pxml.text "John" ] ] ]; tel_dist ]
  in
  let uncertain_tel =
    Pxml.dist
      [ Pxml.choice ~prob:0.5 [ tel "1111" ]; Pxml.choice ~prob:0.5 [ tel "2222" ] ]
  in
  Pxml.certain
    [
      Pxml.elem "addressbook"
        [
          Pxml.dist
            [
              Pxml.choice ~prob:0.5 [ person uncertain_tel ];
              Pxml.choice ~prob:0.5
                [ person (Pxml.certain [ tel "1111" ]); person (Pxml.certain [ tel "2222" ]) ];
            ];
        ];
    ]

(* ---- diagnostics framework ---------------------------------------------- *)

let test_diag_severity () =
  check Alcotest.int "empty exit" 0 (Diag.exit_code []);
  let info = Diag.make ~code:"X001" ~severity:Diag.Info "i" in
  let warn = Diag.make ~code:"X002" ~severity:Diag.Warning "w" in
  let err = Diag.make ~code:"X003" ~severity:Diag.Error "e" in
  check Alcotest.int "info exit" 0 (Diag.exit_code [ info ]);
  check Alcotest.int "warning exit" 1 (Diag.exit_code [ info; warn ]);
  check Alcotest.int "error exit" 2 (Diag.exit_code [ warn; err; info ]);
  check Alcotest.bool "worst is error" true (Diag.worst [ warn; err ] = Some Diag.Error);
  check Alcotest.bool "worst of none" true (Diag.worst [] = None)

let test_diag_caret () =
  let d =
    Diag.make
      ~location:(Diag.Query_at { source = "//a[oops"; offset = Some 4 })
      ~code:"Q000" ~severity:Diag.Error "unexpected token"
  in
  match String.split_on_char '\n' (Diag.to_text d) with
  | [ head; src_line; caret_line ] ->
      check Alcotest.bool "head has code" true (contains_sub head "Q000");
      check Alcotest.string "source line" "  in: //a[oops" src_line;
      (* six columns of "  in: " prefix, then the offset *)
      check Alcotest.int "caret column" (6 + 4) (String.index caret_line '^')
  | _ -> Alcotest.fail "expected three lines"

let test_diag_doc_path () =
  let d =
    Diag.make
      ~location:(Diag.Doc_path [ "a"; "prob[1]"; "poss[2]" ])
      ~code:"D005" ~severity:Diag.Warning "w"
  in
  check Alcotest.bool "path rendered" true
    (contains_sub (Diag.to_text d) "/a/prob[1]/poss[2]")

let test_diag_json () =
  let d =
    Diag.make
      ~location:(Diag.Query_at { source = "//x"; offset = Some 2 })
      ~code:"Q001" ~severity:Diag.Error "empty"
  in
  let json = Diag.list_to_json [ d ] in
  match Obs.Json.parse (Obs.Json.to_string json) with
  | Error e -> Alcotest.failf "json did not parse back: %s" e
  | Ok (Obs.Json.Obj fields) ->
      check Alcotest.bool "has diagnostics" true (List.mem_assoc "diagnostics" fields);
      check Alcotest.bool "worst is error" true
        (List.assoc "worst" fields = Obs.Json.String "error")
  | Ok _ -> Alcotest.fail "expected an object"

(* ---- path summaries ------------------------------------------------------ *)

let test_summary_of_tree () =
  let s =
    Summary.of_tree (parse "<movies><movie><title>Jaws</title></movie><movie/></movies>")
  in
  check Alcotest.bool "movies path" true (Summary.mem s [ "movies" ]);
  check Alcotest.bool "title path" true (Summary.mem s [ "movies"; "movie"; "title" ]);
  check Alcotest.bool "no ghost path" false (Summary.mem s [ "movies"; "title" ]);
  check (Alcotest.list Alcotest.string) "root labels" [ "movies" ]
    (Summary.labels_under s []);
  check Alcotest.bool "title has text" true
    (Summary.has_text s [ "movies"; "movie"; "title" ]);
  (match Summary.find s [ "movies"; "movie" ] with
  | None -> Alcotest.fail "movie entry missing"
  | Some e ->
      check Alcotest.int "movie instances" 2 e.Summary.instances;
      check Alcotest.bool "movie certain" true e.Summary.certain;
      check Alcotest.int "movie cmin" 2 e.Summary.card.Summary.cmin;
      check Alcotest.int "movie cmax" 2 e.Summary.card.Summary.cmax);
  (* title occurs under only one of the two movie instances *)
  match Summary.find s [ "movies"; "movie"; "title" ] with
  | None -> Alcotest.fail "title entry missing"
  | Some e ->
      check Alcotest.int "title cmin" 0 e.Summary.card.Summary.cmin;
      check Alcotest.int "title cmax" 1 e.Summary.card.Summary.cmax;
      check Alcotest.bool "title not certain" false e.Summary.certain

let test_summary_of_doc () =
  let s = Summary.of_doc fig2_doc in
  check Alcotest.bool "person path" true (Summary.mem s [ "addressbook"; "person" ]);
  check Alcotest.bool "tel path" true (Summary.mem s [ "addressbook"; "person"; "tel" ]);
  check Alcotest.bool "no email" false (Summary.mem s [ "addressbook"; "person"; "email" ]);
  (match Summary.find s [ "addressbook" ] with
  | Some e -> check Alcotest.bool "addressbook certain" true e.Summary.certain
  | None -> Alcotest.fail "addressbook missing");
  (* person count varies between the two branches: 1 or 2 *)
  match Summary.find s [ "addressbook"; "person" ] with
  | Some e ->
      check Alcotest.int "person cmin" 1 e.Summary.card.Summary.cmin;
      check Alcotest.int "person cmax" 2 e.Summary.card.Summary.cmax
  | None -> Alcotest.fail "person missing"

let test_summary_zero_prob_is_possible () =
  (* A zero-probability choice still counts as possible: the
     over-approximation must not depend on probabilities. *)
  let d =
    Pxml.certain
      [
        Pxml.elem "r"
          [
            raw_dist
              [
                raw_choice 1. [ Pxml.elem "a" [] ]; raw_choice 0. [ Pxml.elem "ghost" [] ];
              ];
          ];
      ]
  in
  let s = Summary.of_doc d in
  check Alcotest.bool "ghost recorded" true (Summary.mem s [ "r"; "ghost" ])

let test_summary_merge () =
  let a = Summary.of_tree (parse "<r><x>1</x></r>") in
  let b = Summary.of_tree (parse "<r><y/></r>") in
  let m = Summary.merge a b in
  check Alcotest.bool "x possible" true (Summary.mem m [ "r"; "x" ]);
  check Alcotest.bool "y possible" true (Summary.mem m [ "r"; "y" ]);
  (match Summary.find m [ "r"; "x" ] with
  | Some e ->
      check Alcotest.int "x cmin drops" 0 e.Summary.card.Summary.cmin;
      check Alcotest.bool "x no longer certain" false e.Summary.certain
  | None -> Alcotest.fail "x missing");
  (* merging with the neutral element changes nothing *)
  let m0 = Summary.merge Summary.empty a in
  check
    Alcotest.(list (list string))
    "empty is neutral" (Summary.paths a) (Summary.paths m0)

(* ---- query static analysis ----------------------------------------------- *)

let summary = Summary.of_doc fig2_doc

let empty_q q =
  match Imprecise.Xpath.Parser.parse q with
  | Ok e -> Query_check.statically_empty ~summary e
  | Error m -> Alcotest.failf "parse %s: %s" q m

let test_statically_empty_positive () =
  List.iter
    (fun q -> check Alcotest.bool q true (empty_q q))
    [
      "//email";
      "//person/email";
      "/addressbook/nm" (* nm is below person, not addressbook *);
      "//tel/text()/tel" (* text has no element children *);
      "//person[false()]";
      "//person[0]" (* positions start at 1 *);
      "//tel/@missing" (* no attributes anywhere in fig2 *);
      "//person[.//email]/nm";
      "//email | //person/fax";
      "/addressbook/person/nm/parent::tel" (* nm's parent is person *);
      (* boolean coercions of a provably empty node-set (Q001 widening):
         existential comparisons and explicit boolean() / exists() /
         some-quantifier wrappers are all false over the empty set *)
      "//person[boolean(.//email)]";
      "//person[exists(.//email)]";
      {|//person[.//email = "x"]/nm|};
      {|//person[some $e in .//email satisfies $e = "x"]|};
    ]

let test_statically_empty_negative () =
  List.iter
    (fun q -> check Alcotest.bool q false (empty_q q))
    [
      "//person/tel";
      "/addressbook/person";
      "//person[1]";
      "//person[nm]";
      "//nm/text()";
      "//person/..";
      "count(//email)" (* atomic result: one value per world, never empty *);
      "some $t in //tel satisfies $t = \"1111\"";
      "//person[$x]" (* unbound var raises at eval; must not be pruned *);
      (* boolean-coercion widening must stay conservative: not(∅) is true,
         count(∅)=0 compares equal to 0, and comparing a node-set against a
         boolean coerces the node-set first (∅ != true() is true) *)
      "//person[not(.//email)]";
      "//person[count(.//email) = 0]";
      "//person[.//email != true()]";
      "//person[every $e in .//email satisfies $e = \"x\"]" (* every over ∅ *);
    ]

let test_check_codes () =
  let diags_of q = Query_check.check_string ~summary q in
  check Alcotest.bool "Q000 on syntax error" true (has_code "Q000" (diags_of "//a["));
  check Alcotest.bool "Q001 on empty" true (has_code "Q001" (diags_of "//email"));
  check Alcotest.bool "Q002 on unknown fn" true
    (has_code "Q002" (diags_of "//person[frob(.)]"));
  check Alcotest.bool "Q003 on unbound var" true
    (has_code "Q003" (diags_of "//person[$x = 1]"));
  check Alcotest.bool "no Q003 for bound var" false
    (has_code "Q003" (diags_of "some $t in //tel satisfies $t = \"1111\""));
  check Alcotest.bool "Q004 on constant cmp" true
    (has_code "Q004" (diags_of "//person[1 = 2]"));
  check Alcotest.bool "Q004 on empty-side cmp" true
    (has_code "Q004" (diags_of "//person[.//email = \"x\"]"));
  check Alcotest.bool "Q005 on dead union branch" true
    (has_code "Q005" (diags_of "//person/tel | //person/fax"));
  check (Alcotest.list Alcotest.string) "clean query" [] (codes (diags_of "//person/tel"))

let test_check_without_summary () =
  (* No shape information: emptiness cannot be judged, shape-free checks
     still fire. *)
  check (Alcotest.list Alcotest.string) "no summary, no findings" []
    (codes (Query_check.check_string "//whatever/zzz"));
  check Alcotest.bool "unknown fn still caught" true
    (has_code "Q002" (Query_check.check_string "frob(22)"))

let test_q000_offset () =
  match Query_check.check_string ~summary "//person[" with
  | [ { Diag.location = Diag.Query_at { offset = Some off; _ }; code; _ } ] ->
      check Alcotest.string "code" "Q000" code;
      check Alcotest.int "offset at eof" 9 off
  | _ -> Alcotest.fail "expected exactly one located Q000"

(* The prune must agree with ground truth: ranking with the check on
   equals ranking with it off, and flagged-empty queries rank to []. *)
let test_prune_soundness () =
  List.iter
    (fun q ->
      let pruned = Pquery.rank ~strategy:Pquery.Enumerate_only fig2_doc q in
      let full =
        Pquery.rank ~strategy:Pquery.Enumerate_only ~static_check:false fig2_doc q
      in
      check Alcotest.int (q ^ ": same answer count") (List.length full)
        (List.length pruned);
      if empty_q q then check Alcotest.int (q ^ ": truly empty") 0 (List.length full))
    [ "//person/tel"; "//person/email"; "//nm"; "//email"; "//person[.//email]/nm" ]

(* ---- document linter ----------------------------------------------------- *)

let test_lint_fig2 () =
  (* Fig. 2 carries adjacent certain probability nodes (nm then tel), an
     Info-level hint — but nothing at Warning or above. *)
  let diags = Doc_lint.lint fig2_doc in
  check Alcotest.int "exit code" 0 (Diag.exit_code diags);
  check Alcotest.bool "only D008" true
    (List.for_all (fun (d : Diag.t) -> d.Diag.code = "D008") diags)

let test_lint_findings () =
  let zero =
    Pxml.certain [ Pxml.elem "r" [ raw_dist [ raw_choice 1.0 []; raw_choice 0.0 [] ] ] ]
  in
  check Alcotest.bool "D005 zero prob" true (has_code "D005" (Doc_lint.lint zero));
  let dup =
    Pxml.certain
      [
        Pxml.elem "r"
          [ raw_dist [ raw_choice 0.5 [ Pxml.text "x" ]; raw_choice 0.5 [ Pxml.text "x" ] ] ];
      ]
  in
  check Alcotest.bool "D006 deep-equal" true (has_code "D006" (Doc_lint.lint dup));
  let bad_sum = raw_dist [ raw_choice 0.5 []; raw_choice 0.2 [] ] in
  check Alcotest.bool "D003 bad sum" true (has_code "D003" (Doc_lint.lint bad_sum));
  let drift = raw_dist [ raw_choice 0.5 []; raw_choice (0.5 +. 1e-7) [] ] in
  check Alcotest.bool "D004 drift" true (has_code "D004" (Doc_lint.lint drift));
  let out_of_range = raw_dist [ raw_choice 1.5 []; raw_choice (-0.5) [] ] in
  check Alcotest.bool "D001 out of range" true
    (has_code "D001" (Doc_lint.lint out_of_range));
  let empty_dist = Pxml.certain [ Pxml.elem "r" [ raw_dist [] ] ] in
  check Alcotest.bool "D002 no possibilities" true
    (has_code "D002" (Doc_lint.lint empty_dist));
  let reserved = Pxml.certain [ Pxml.elem "p:poss" [] ] in
  check Alcotest.bool "D007 reserved tag" true (has_code "D007" (Doc_lint.lint reserved));
  let degenerate =
    Pxml.certain
      [ Pxml.elem "r" [ Pxml.certain [ Pxml.text "a" ]; Pxml.certain [ Pxml.text "b" ] ] ]
  in
  check Alcotest.bool "D008 adjacent certain" true
    (has_code "D008" (Doc_lint.lint degenerate))

let test_lint_locations () =
  let zero =
    Pxml.certain [ Pxml.elem "r" [ raw_dist [ raw_choice 1.0 []; raw_choice 0.0 [] ] ] ]
  in
  match List.find_opt (fun (d : Diag.t) -> d.Diag.code = "D005") (Doc_lint.lint zero) with
  | Some { Diag.location = Diag.Doc_path path; _ } ->
      check (Alcotest.list Alcotest.string) "path components"
        [ "prob[1]"; "poss[1]"; "r"; "prob[1]"; "poss[2]" ]
        path
  | _ -> Alcotest.fail "D005 with a Doc_path expected"

(* ---- static query planner ------------------------------------------------ *)

let plan_q ?(s = summary) q =
  match Imprecise.Xpath.Parser.parse q with
  | Ok e -> Plan.plan ~summary:s ~source:q e
  | Error m -> Alcotest.failf "parse %s: %s" q m

let check_cost name (p : Plan.t) ~worlds ~answers_lo ~answers_hi ~pw_lo ~pw_hi =
  let f = Alcotest.float 0. in
  check f (name ^ ": worlds") worlds p.Plan.cost.Cost.worlds;
  check f (name ^ ": answers.lo") answers_lo p.Plan.cost.Cost.answers.Cost.lo;
  check f (name ^ ": answers.hi") answers_hi p.Plan.cost.Cost.answers.Cost.hi;
  check f (name ^ ": per_world.lo") pw_lo p.Plan.cost.Cost.per_world.Cost.lo;
  check f (name ^ ": per_world.hi") pw_hi p.Plan.cost.Cost.per_world.Cost.hi

(* Golden pins for Figure 2: route and bound values are part of the
   planner's contract, not incidental output. *)
let test_plan_fig2 () =
  let p = plan_q "//person/tel" in
  check Alcotest.bool "route direct" true (p.Plan.route = Plan.Direct);
  check Alcotest.int "shards" 1 p.Plan.shards;
  check Alcotest.int "no fallback reasons" 0 (List.length p.Plan.reasons);
  check Alcotest.bool "obligations discharged" true (p.Plan.obligations <> []);
  (* 3 worlds; 4 tel instances across the representation; every world has
     1 or 2 tels and at least one (tel is certain under every person) *)
  check_cost "//person/tel" p ~worlds:3. ~answers_lo:1. ~answers_hi:4. ~pw_lo:1.
    ~pw_hi:2.;
  (* widened admissions route direct too *)
  List.iter
    (fun q ->
      let p = plan_q q in
      check Alcotest.bool (q ^ " routes direct") true (p.Plan.route = Plan.Direct))
    [
      "/descendant::person/tel";
      "//person[contains(nm,\"Jo\")]/tel";
      "//person/tel[1]";
      "//person/nm/text()";
      "addressbook/person/tel";
    ];
  (* positional test on the binder itself stays out: P004, enumerate *)
  let p = plan_q "//person[1]/tel" in
  check Alcotest.bool "P004 route" true (p.Plan.route = Plan.Enumerate);
  check (Alcotest.list Alcotest.string) "P004 reason" [ "P004" ] (codes p.Plan.reasons);
  (* non-paths fall back with P001 and the untracked world-bound cost *)
  let p = plan_q "count(//person)" in
  check Alcotest.bool "P001 route" true (p.Plan.route = Plan.Enumerate);
  check (Alcotest.list Alcotest.string) "P001 reason" [ "P001" ] (codes p.Plan.reasons);
  check Alcotest.bool "P001 untracked" false p.Plan.cost.Cost.tracked

(* The §VI movie demo document, reduced: one movie, uncertain genre. *)
let movies_doc =
  let leaf tag v = Pxml.elem tag [ Pxml.certain [ Pxml.text v ] ] in
  Pxml.certain
    [
      Pxml.elem "movies"
        [
          Pxml.certain
            [
              Pxml.elem "movie"
                [
                  Pxml.certain [ leaf "title" "Jaws" ];
                  Pxml.dist
                    [
                      Pxml.choice ~prob:0.8 [ leaf "genre" "Horror" ];
                      Pxml.choice ~prob:0.2 [ leaf "genre" "Thriller" ];
                    ];
                ];
            ];
        ];
    ]

let test_plan_section_vi () =
  let s = Summary.of_doc movies_doc in
  let p = plan_q ~s {|//movie[.//genre="Horror"]/title|} in
  check Alcotest.bool "Q1 direct" true (p.Plan.route = Plan.Direct);
  (* 2 worlds; 1 title in the representation; the predicate voids any
     lower bound *)
  check_cost "Q1" p ~worlds:2. ~answers_lo:0. ~answers_hi:1. ~pw_lo:0. ~pw_hi:1.;
  let p = plan_q ~s {|//movie[some $d in .//director satisfies contains($d,"John")]/title|} in
  check Alcotest.bool "Q2 direct" true (p.Plan.route = Plan.Direct);
  let p = plan_q ~s "//movie/genre" in
  check Alcotest.bool "genre direct" true (p.Plan.route = Plan.Direct);
  (* both genre instances are distinct representation nodes, one per world *)
  check_cost "//movie/genre" p ~worlds:2. ~answers_lo:1. ~answers_hi:2. ~pw_lo:1.
    ~pw_hi:1.

let test_plan_nested_binder () =
  (* //a occurrences nest: the planner must prove P005 and enumerate,
     exactly as Direct would have refused dynamically. *)
  let s = Summary.of_tree (parse "<r><a><a/></a></r>") in
  let p = plan_q ~s "//a" in
  check Alcotest.bool "P005 route" true (p.Plan.route = Plan.Enumerate);
  check (Alcotest.list Alcotest.string) "P005 reason" [ "P005" ] (codes p.Plan.reasons)

(* ---- rule-set lint ------------------------------------------------------- *)

let test_rule_lint () =
  let a = parse "<m><t>Jaws</t></m>" and b = parse "<m><t>Jaws 2</t></m>" in
  let probes = [ (a, b) ] in
  let fires_always =
    { Oracle.name = "always"; judge = (fun _ _ -> Some (Oracle.Unsure 0.5)) }
  in
  let shadowed =
    { Oracle.name = "shadowed"; judge = (fun _ _ -> Some Oracle.Same) }
  in
  (* R003: "shadowed" fires on the probe, but "always" already fired *)
  let diags = Rule_lint.check ~probes (Oracle.make [ fires_always; shadowed ]) in
  check Alcotest.bool "R003 fires" true (has_code "R003" diags);
  (* R004: a rule that inspects only its first argument is asymmetric *)
  let asym =
    { Oracle.name = "asym"; judge = (fun x _ -> if x == a then Some Oracle.Same else None) }
  in
  let diags = Rule_lint.check ~probes (Oracle.make [ asym ]) in
  check Alcotest.bool "R004 fires" true (has_code "R004" diags);
  (* clean: a symmetric rule that fires alone *)
  check (Alcotest.list Alcotest.string) "clean ruleset" []
    (codes (Rule_lint.check ~probes (Oracle.make [ Oracle.deep_equal_rule; asym ])
           |> List.filter (fun (d : Diag.t) -> d.Diag.code = "R003")));
  check (Alcotest.list Alcotest.string) "symmetric rule ok" []
    (codes (Rule_lint.check ~probes (Oracle.make [ fires_always ])));
  (* never-firing rules are not "unreachable": the probe set just missed
     them, and R003 must not cry wolf *)
  let never = { Oracle.name = "never"; judge = (fun _ _ -> None) } in
  check (Alcotest.list Alcotest.string) "abstainer ok" []
    (codes (Rule_lint.check ~probes (Oracle.make [ fires_always; never ])))

(* ---- diagnostic JSON offset uniformity ----------------------------------- *)

let offset_of (d : Diag.t) =
  match Diag.to_json d with
  | Obs.Json.Obj fields -> (
      match List.assoc "location" fields with
      | Obs.Json.Obj lf -> List.assoc_opt "offset" lf
      | _ -> None)
  | _ -> None

let test_offset_shape () =
  (* every located diagnostic carries an "offset" key: a real character
     offset for Q-codes, null for D/R/P-codes *)
  let q0 =
    Diag.make
      ~location:(Diag.Query_at { source = "//a["; offset = Some 4 })
      ~code:"Q000" ~severity:Diag.Error "syntax"
  in
  let d5 = Diag.make ~location:(Diag.Doc_path [ "r" ]) ~code:"D005" ~severity:Diag.Warning "w" in
  let p4 =
    Diag.make
      ~location:(Diag.Query_at { source = "//a[1]"; offset = None })
      ~code:"P004" ~severity:Diag.Info "i"
  in
  check Alcotest.bool "Q000 offset is an int" true (offset_of q0 = Some (Obs.Json.Int 4));
  check Alcotest.bool "D005 offset is null" true (offset_of d5 = Some Obs.Json.Null);
  check Alcotest.bool "P004 offset is null" true (offset_of p4 = Some Obs.Json.Null);
  (* planner reasons inherit the shape *)
  let p = plan_q "//person[1]/tel" in
  match p.Plan.reasons with
  | [ r ] -> check Alcotest.bool "P-code reason offset null" true (offset_of r = Some Obs.Json.Null)
  | _ -> Alcotest.fail "expected one reason"

let suite =
  [
    ( "analyze.diag",
      [
        Alcotest.test_case "severity and exit codes" `Quick test_diag_severity;
        Alcotest.test_case "caret rendering" `Quick test_diag_caret;
        Alcotest.test_case "document path rendering" `Quick test_diag_doc_path;
        Alcotest.test_case "json round-trip" `Quick test_diag_json;
      ] );
    ( "analyze.summary",
      [
        Alcotest.test_case "of_tree" `Quick test_summary_of_tree;
        Alcotest.test_case "of_doc (fig2)" `Quick test_summary_of_doc;
        Alcotest.test_case "zero-probability choices are possible" `Quick
          test_summary_zero_prob_is_possible;
        Alcotest.test_case "merge" `Quick test_summary_merge;
      ] );
    ( "analyze.query",
      [
        Alcotest.test_case "statically empty: positives" `Quick
          test_statically_empty_positive;
        Alcotest.test_case "statically empty: negatives" `Quick
          test_statically_empty_negative;
        Alcotest.test_case "diagnostic codes" `Quick test_check_codes;
        Alcotest.test_case "without a summary" `Quick test_check_without_summary;
        Alcotest.test_case "syntax error offset" `Quick test_q000_offset;
        Alcotest.test_case "prune soundness vs ground truth" `Quick test_prune_soundness;
      ] );
    ( "analyze.doc_lint",
      [
        Alcotest.test_case "fig2 is info-only" `Quick test_lint_fig2;
        Alcotest.test_case "every code fires" `Quick test_lint_findings;
        Alcotest.test_case "locations" `Quick test_lint_locations;
      ] );
    ( "analyze.plan",
      [
        Alcotest.test_case "fig2 golden plans" `Quick test_plan_fig2;
        Alcotest.test_case "section VI golden plans" `Quick test_plan_section_vi;
        Alcotest.test_case "nested binder falls back (P005)" `Quick
          test_plan_nested_binder;
        Alcotest.test_case "json offset uniformity" `Quick test_offset_shape;
      ] );
    ( "analyze.rule_lint",
      [ Alcotest.test_case "R003/R004" `Quick test_rule_lint ] );
  ]
