(* Tests for the user-feedback loop: conditioning the probabilistic document
   on answer correctness is Bayes on the world distribution, and iterated
   feedback drives the document to certainty. *)

module Feedback = Imprecise.Feedback
module Worlds = Imprecise.Worlds
module Pxml = Imprecise.Pxml
module Tree = Imprecise.Tree
module Oracle = Imprecise.Oracle
module Integrate = Imprecise.Integrate
module Addressbook = Imprecise.Data.Addressbook
module Prng = Imprecise.Data.Prng
module Random_docs = Imprecise.Data.Random_docs

let check = Alcotest.check

let fig2 =
  let cfg =
    Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) ~dtd:Addressbook.dtd ()
  in
  Result.get_ok (Integrate.integrate cfg Addressbook.source_a Addressbook.source_b)

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "feedback failed: %a" Feedback.pp_error e

let test_confirm_phone () =
  (* The user confirms John's number is 1111: the 2222-only world dies; the
     two remaining worlds renormalise to 2/3 and 1/3. *)
  let doc = get (Feedback.assert_answer fig2 ~query:"//person/tel" ~value:"1111" ~correct:true) in
  check Alcotest.bool "still valid" true (Result.is_ok (Pxml.validate doc));
  match Worlds.merged doc with
  | [ (p1, _); (p2, _) ] ->
      check (Alcotest.float 1e-9) "two-person world" (2. /. 3.) p1;
      check (Alcotest.float 1e-9) "merged 1111 world" (1. /. 3.) p2
  | l -> Alcotest.failf "expected 2 worlds, got %d" (List.length l)

let test_reject_phone () =
  (* The user says 2222 is wrong: every world containing it dies. *)
  let doc = get (Feedback.assert_answer fig2 ~query:"//person/tel" ~value:"2222" ~correct:false) in
  let worlds = Worlds.merged doc in
  check Alcotest.int "one world" 1 (List.length worlds);
  let _, forest = List.hd worlds in
  List.iter
    (fun w ->
      Tree.iter
        (fun n ->
          if Tree.name n = Some "tel" then
            check Alcotest.string "only 1111 left" "1111" (Tree.text_content n))
        w)
    forest

let test_feedback_reaches_certainty () =
  (* Confirm 1111 AND confirm there are two persons: single world left. *)
  let doc = get (Feedback.assert_answer fig2 ~query:"//person/tel" ~value:"1111" ~correct:true) in
  let doc =
    get (Feedback.assert_answer doc ~query:"//person/tel" ~value:"2222" ~correct:true)
  in
  check Alcotest.bool "certain" true (Pxml.is_certain doc);
  check (Alcotest.float 1e-9) "certainty 1" 1. (Feedback.certainty doc)

let test_contradiction () =
  match Feedback.assert_answer fig2 ~query:"//person/nm" ~value:"John" ~correct:false with
  | Error Feedback.Contradiction -> ()
  | Ok _ -> Alcotest.fail "conditioning on a probability-0 event succeeded"
  | Error e -> Alcotest.failf "wrong error: %a" Feedback.pp_error e

let test_world_limit () =
  match Feedback.condition ~limit:1. fig2 (fun _ -> true) with
  | Error (Feedback.Too_many_worlds _) -> ()
  | _ -> Alcotest.fail "expected Too_many_worlds"

let test_certainty_monotone () =
  let before = Feedback.certainty fig2 in
  let doc = get (Feedback.assert_answer fig2 ~query:"//person/tel" ~value:"1111" ~correct:true) in
  check Alcotest.bool "certainty rose" true (Feedback.certainty doc >= before)

let prop_condition_is_bayes =
  (* Conditioning on an arbitrary world predicate = filtering + renormalising
     the merged world distribution. *)
  let gen = QCheck.map (fun seed -> fst (Random_docs.pxml (Prng.make seed) ~depth:2)) QCheck.int in
  QCheck.Test.make ~name:"conditioning = Bayes on the world distribution" ~count:80 gen
    (fun doc ->
      (* predicate: worlds whose serialisation has even length *)
      let pred forest =
        List.fold_left (fun n t -> n + Tree.node_count t) 0 forest mod 2 = 0
      in
      match Feedback.condition doc pred with
      | Error Feedback.Contradiction -> true
      | Error _ -> QCheck.assume_fail ()
      | Ok doc' ->
          let expected =
            let kept = List.filter (fun (_, w) -> pred w) (Worlds.merged doc) in
            let total = List.fold_left (fun acc (p, _) -> acc +. p) 0. kept in
            List.map (fun (p, w) -> (p /. total, w)) kept
          in
          let actual = Worlds.merged doc' in
          List.length expected = List.length actual
          && List.for_all2
               (fun (p, w) (q, v) ->
                 Float.abs (p -. q) < 1e-6 && List.equal Tree.deep_equal w v)
               expected actual)

(* ---- structure-preserving pruning -------------------------------------------- *)

let test_prune_denial () =
  (* Denying 2222 kills both the two-person world (where 2222 certainly
     exists) and the 2222 branch of the merged person: only John/1111
     survives, in place. *)
  let doc = get (Feedback.prune fig2 ~query:"//person/tel" ~value:"2222" ~correct:false) in
  check Alcotest.bool "certain" true (Pxml.is_certain doc);
  (match Worlds.merged doc with
  | [ (p, [ w ]) ] ->
      check (Alcotest.float 1e-9) "prob 1" 1. p;
      check Alcotest.int "one person" 1 (List.length (Tree.children w));
      check Alcotest.bool "kept 1111" true
        (Astring_contains.contains (Imprecise.Xml.Printer.to_string w) "1111")
  | _ -> Alcotest.fail "expected one world");
  check Alcotest.bool "representation shrank" true
    (Pxml.node_count doc < Pxml.node_count fig2)

let test_prune_conservative () =
  (* Confirming 1111 removes no single possibility: every choice leaves
     some world containing 1111. Pruning must be a no-op (up to
     compaction). *)
  let doc = get (Feedback.prune fig2 ~query:"//person/tel" ~value:"1111" ~correct:true) in
  check Alcotest.int "worlds unchanged" 3 (List.length (Worlds.merged doc))

let test_prune_contradiction () =
  let doc = get (Feedback.prune fig2 ~query:"//person/tel" ~value:"1111" ~correct:false) in
  match Feedback.prune doc ~query:"//person/tel" ~value:"2222" ~correct:false with
  | Error Feedback.Contradiction -> ()
  | Ok _ -> Alcotest.fail "pruned away every world without an error"
  | Error e -> Alcotest.failf "wrong error: %a" Feedback.pp_error e

let test_prune_preserves_support () =
  (* Pruning keeps exactly the worlds consistent with the assertion — the
     same support as exact conditioning. *)
  let pruned = get (Feedback.prune fig2 ~query:"//person/tel" ~value:"2222" ~correct:false) in
  let conditioned =
    get (Feedback.assert_answer fig2 ~query:"//person/tel" ~value:"2222" ~correct:false)
  in
  let canon doc = List.map snd (Worlds.merged doc) in
  check Alcotest.bool "same worlds" true
    (List.equal (List.equal Tree.deep_equal) (canon pruned) (canon conditioned))

let test_prune_count_feedback () =
  (* Count-based feedback on the typical workload resolves one undecided
     pair at a time (used by the bench demo). *)
  let wl = Imprecise.Data.Workloads.typical () in
  let doc =
    Result.get_ok
      (Imprecise.integrate ~rules:Imprecise.Rulesets.full ~dtd:wl.dtd
         (Imprecise.Data.Workloads.mpeg7_doc wl)
         (Imprecise.Data.Workloads.imdb_doc wl))
  in
  check (Alcotest.float 0.) "four worlds before" 4. (Pxml.world_count doc);
  let doc =
    get
      (Feedback.prune doc ~query:"count(//movie[title='Twelve Monkeys'])" ~value:"1"
         ~correct:true)
  in
  check (Alcotest.float 0.) "two worlds after" 2. (Pxml.world_count doc)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let q p = QCheck_alcotest.to_alcotest p in
  [
    ( "feedback",
      [
        t "confirming an answer renormalises" test_confirm_phone;
        t "rejecting an answer removes worlds" test_reject_phone;
        t "iterated feedback reaches certainty" test_feedback_reaches_certainty;
        t "contradictory feedback is an error" test_contradiction;
        t "world-limit guard" test_world_limit;
        t "certainty is monotone under true feedback" test_certainty_monotone;
        q prop_condition_is_bayes;
      ] );
    ( "feedback.prune",
      [
        t "denial prunes in place" test_prune_denial;
        t "pruning is conservative" test_prune_conservative;
        t "pruning detects contradictions" test_prune_contradiction;
        t "pruning preserves the conditioned support" test_prune_preserves_support;
        t "count-based feedback resolves matchings" test_prune_count_feedback;
      ] );
  ]
