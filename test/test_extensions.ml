(* Tests for the extension features: XQuery-lite (for/let/if, constructors),
   the extra axes and sequence functions, Monte-Carlo world sampling, lossy
   compaction, and incremental integration of additional sources. *)

module Tree = Imprecise.Tree
module Pxml = Imprecise.Pxml
module Worlds = Imprecise.Worlds
module Compact = Imprecise.Compact
module Oracle = Imprecise.Oracle
module Integrate = Imprecise.Integrate
module Pquery = Imprecise.Pquery
module Answer = Imprecise.Answer
module Quality = Imprecise.Quality
module Addressbook = Imprecise.Data.Addressbook
module Prng = Imprecise.Data.Prng
module Random_docs = Imprecise.Data.Random_docs
module Eval = Imprecise.Xpath.Eval

let check = Alcotest.check

let doc =
  Imprecise.parse_xml_exn
    {|<movies>
        <movie><title>Jaws</title><year>1975</year><genre>Horror</genre></movie>
        <movie><title>Jaws 2</title><year>1978</year><genre>Horror</genre></movie>
        <movie><title>Mission: Impossible II</title><year>2000</year><genre>Action</genre></movie>
      </movies>|}

let q query = Imprecise.query_certain doc query

let check_q query expected () = check Alcotest.(list string) query expected (q query)

let check_s query expected () =
  check Alcotest.string query expected (Eval.eval_string doc query)

let check_n query expected () =
  check (Alcotest.float 1e-9) query expected (Eval.eval_number doc query)

(* ---- new axes ---------------------------------------------------------------- *)

let suite_axes =
  [
    ( "ancestor",
      check_q "//genre[.='Action']/ancestor::movie/title" [ "Mission: Impossible II" ] );
    ("ancestor-or-self keeps self", check_q "//movie[1]/ancestor-or-self::*[1]/title" [ "Jaws" ]);
    (* //genre[1] selects the first genre of EACH movie: 3 nodes, whose
       ancestors are the 3 movies plus the shared movies element *)
    ("ancestor over several contexts", check_n "count(//genre[1]/ancestor::*)" 4.);
    ("ancestor reaches the root", check_n "count((//genre)[1]/ancestor::*)" 2.);
    ( "following-sibling",
      check_q "//movie[1]/following-sibling::movie/title" [ "Jaws 2"; "Mission: Impossible II" ] );
    ("preceding-sibling", check_q "//movie[3]/preceding-sibling::movie/title" [ "Jaws"; "Jaws 2" ]);
    ("siblings within an element", check_q "//movie[1]/title/following-sibling::year" [ "1975" ]);
    ("no preceding for first", check_n "count(//movie[1]/preceding-sibling::movie)" 0.);
  ]

(* ---- new functions -------------------------------------------------------------- *)

let suite_functions =
  [
    ("min", check_n "min(//year)" 1975.);
    ("max", check_n "max(//year)" 2000.);
    ("avg", check_n "avg(//year)" ((1975. +. 1978. +. 2000.) /. 3.));
    ("min of empty is NaN", fun () -> check Alcotest.bool "nan" true (Float.is_nan (Eval.eval_number doc "min(//nope)")));
    ("string-join", check_s "string-join(//movie/genre, '+')" "Horror+Horror+Action");
    ("distinct-values", check_n "count(distinct-values(//genre))" 2.);
    ("exists", check_s "string(exists(//movie))" "true");
    ("empty", check_s "string(empty(//nope))" "true");
  ]

(* ---- XQuery-lite ------------------------------------------------------------------ *)

let suite_flwor =
  [
    ("let", check_n "let $y := 1975 return count(//movie[year > $y])" 2.);
    ("nested let", check_n "let $a := 1 return let $b := 2 return $a + $b" 3.);
    ("if then else", check_s "if (count(//movie) > 2) then 'many' else 'few'" "many");
    ("if other branch", check_s "if (false()) then 'x' else 'y'" "y");
    ("for over nodes", check_q "for $m in //movie return $m/title"
       [ "Jaws"; "Jaws 2"; "Mission: Impossible II" ]);
    ( "for with predicate body",
      check_q "for $m in //movie return $m/genre[. = 'Horror']" [ "Horror"; "Horror" ] );
    ( "for with where clause",
      check_q "for $m in //movie where $m/year > 1976 return $m/title"
        [ "Jaws 2"; "Mission: Impossible II" ] );
    ( "where referencing outer let",
      check_n "let $y := 1978 return count(for $m in //movie where $m/year = $y return $m)" 1. );
    ("for + let combined", check_n
       "count(for $m in //movie return (let $g := $m/genre return $m/title[$g = 'Horror']))" 2.);
  ]

let test_element_ctor () =
  match Eval.eval doc (Imprecise.Xpath.Parser.parse_exn "element summary { count(//movie), text { ' movies' } }") with
  | Eval.Nodeset [ Eval.Node n ] ->
      check Alcotest.string "constructed" "<summary>3 movies</summary>"
        (Imprecise.Xml.Printer.to_string n.Eval.tree)
  | _ -> Alcotest.fail "expected one constructed node"

let test_for_restructure () =
  (* The classic restructuring FLWOR: wrap each title in a new element. *)
  let expr =
    Imprecise.Xpath.Parser.parse_exn "for $m in //movie return element entry { $m/title }"
  in
  match Eval.eval doc expr with
  | Eval.Nodeset items ->
      check Alcotest.int "three entries" 3 (List.length items);
      let first =
        match items with Eval.Node n :: _ -> Imprecise.Xml.Printer.to_string n.Eval.tree | _ -> ""
      in
      check Alcotest.string "shape" "<entry><title>Jaws</title></entry>" first
  | _ -> Alcotest.fail "expected a node-set"

let test_ctor_with_attribute () =
  let expr =
    Imprecise.Xpath.Parser.parse_exn "element m { //movie[1]/@*, //movie[1]/title }"
  in
  match Eval.eval doc expr with
  | Eval.Nodeset [ Eval.Node n ] ->
      check Alcotest.string "no attrs on source, title copied" "<m><title>Jaws</title></m>"
        (Imprecise.Xml.Printer.to_string n.Eval.tree)
  | _ -> Alcotest.fail "expected one node"

let test_flwor_roundtrip () =
  List.iter
    (fun src ->
      match Imprecise.Xpath.Parser.parse src with
      | Error e -> Alcotest.failf "parse %S: %s" src e
      | Ok ast -> (
          match Imprecise.Xpath.Parser.parse (Imprecise.Xpath.Ast.to_string ast) with
          | Error e -> Alcotest.failf "reparse of %S failed: %s" src e
          | Ok ast2 ->
              check Alcotest.string "stable" (Imprecise.Xpath.Ast.to_string ast)
                (Imprecise.Xpath.Ast.to_string ast2)))
    [
      "for $m in //movie return $m/title";
      "for $m in //movie where $m/year > 1976 return $m/title";
      "let $x := 1 return $x + 1";
      "if (//a) then 'x' else 'y'";
      "element e { text { 'x' }, //a }";
    ]

(* ---- probabilistic queries still agree with new machinery -------------------------- *)

let fig2 =
  let cfg =
    Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) ~dtd:Addressbook.dtd ()
  in
  Result.get_ok (Integrate.integrate cfg Addressbook.source_a Addressbook.source_b)

let test_flwor_on_probabilistic () =
  (* FLWOR queries run through the enumeration evaluator. *)
  let answers =
    Pquery.rank ~strategy:Pquery.Enumerate_only fig2 "for $p in //person return $p/tel"
  in
  check Alcotest.int "two phones" 2 (List.length answers);
  List.iter (fun (a : Answer.t) -> check (Alcotest.float 1e-9) a.value 0.75 a.prob) answers

(* ---- sampling ----------------------------------------------------------------------- *)

let test_sample_unbiased () =
  (* On Figure 2, P(1111 in answer) = 0.75; a 4000-sample estimate must land
     within a few standard deviations (σ ≈ 0.0068). *)
  let answers = Pquery.rank ~strategy:(Pquery.Sample { n = 4000; seed = 7 }) fig2 "//person/tel" in
  let p v =
    match List.find_opt (fun (a : Answer.t) -> a.value = v) answers with
    | Some a -> a.prob
    | None -> 0.
  in
  check Alcotest.bool "1111 near 0.75" true (Float.abs (p "1111" -. 0.75) < 0.04);
  check Alcotest.bool "2222 near 0.75" true (Float.abs (p "2222" -. 0.75) < 0.04)

let test_sample_deterministic () =
  let a = Pquery.rank ~strategy:(Pquery.Sample { n = 100; seed = 3 }) fig2 "//person/tel" in
  let b = Pquery.rank ~strategy:(Pquery.Sample { n = 100; seed = 3 }) fig2 "//person/tel" in
  check Alcotest.bool "same seed same estimate" true (Answer.equal a b)

let test_sample_probability_product () =
  (* Each sampled world's probability is a genuine world probability. *)
  let (p, forest), _ = Worlds.sample (Prng.make 5) fig2 in
  check Alcotest.bool "prob positive" true (p > 0. && p <= 1.);
  check Alcotest.int "one root" 1 (List.length forest)

let prop_sampled_worlds_are_possible =
  let gen = QCheck.map (fun seed -> fst (Random_docs.pxml (Prng.make seed) ~depth:2)) QCheck.int in
  QCheck.Test.make ~name:"sampled worlds are possible worlds" ~count:50 gen (fun doc ->
      let worlds = Worlds.merged doc in
      let samples, _ = Worlds.sample_many ~n:20 (Prng.make 17) doc in
      List.for_all
        (fun (_, forest) ->
          let canon = List.map Tree.canonical forest in
          List.exists (fun (_, w) -> List.equal Tree.deep_equal canon w) worlds)
        samples)

(* ---- k-best worlds ------------------------------------------------------------------ *)

let test_most_likely_fig2 () =
  match Worlds.most_likely ~k:2 fig2 with
  | [ (p1, _); (p2, _) ] ->
      check (Alcotest.float 1e-9) "best" 0.5 p1;
      check (Alcotest.float 1e-9) "second" 0.25 p2
  | l -> Alcotest.failf "expected 2 worlds, got %d" (List.length l)

let test_most_likely_beyond_space () =
  (* asking for more worlds than exist returns them all *)
  check Alcotest.int "all three" 3 (List.length (Worlds.most_likely ~k:10 fig2));
  check Alcotest.int "k=0" 0 (List.length (Worlds.most_likely ~k:0 fig2))

let test_most_likely_on_large_doc () =
  (* the confusing query document: k-best without enumeration *)
  let wl = Imprecise.Data.Workloads.confusing () in
  let rules = Imprecise.Rulesets.movie ~genre:true ~title:true ~director:true () in
  let doc =
    Result.get_ok
      (Imprecise.integrate ~rules ~dtd:wl.dtd
         (Imprecise.Data.Workloads.mpeg7_doc wl)
         (Imprecise.Data.Workloads.imdb_doc wl))
  in
  match Worlds.most_likely ~k:3 doc with
  | (p1, _) :: (p2, _) :: _ ->
      check Alcotest.bool "ordered" true (p1 >= p2);
      check Alcotest.bool "positive" true (p2 > 0.)
  | _ -> Alcotest.fail "expected worlds"

let prop_most_likely_matches_enumeration =
  let gen = QCheck.map (fun seed -> fst (Random_docs.pxml (Prng.make seed) ~depth:2)) QCheck.int in
  QCheck.Test.make ~name:"most_likely = top of the enumeration" ~count:80 gen (fun doc ->
      let k = 5 in
      let best = Worlds.most_likely ~k doc in
      let expected =
        List.filteri
          (fun i _ -> i < k)
          (List.sort
             (fun (p, _) (q, _) -> Float.compare q p)
             (List.of_seq (Worlds.enumerate doc)))
      in
      List.length best = List.length expected
      && List.for_all2 (fun (p, _) (q, _) -> Float.abs (p -. q) < 1e-9) best expected)

(* ---- lossy compaction ------------------------------------------------------------------ *)

let test_prune_unlikely_basic () =
  let d =
    Pxml.dist
      [
        Pxml.choice ~prob:0.9 [ Pxml.text "likely" ];
        Pxml.choice ~prob:0.08 [ Pxml.text "rare" ];
        Pxml.choice ~prob:0.02 [ Pxml.text "rarer" ];
      ]
  in
  let pruned = Compact.prune_unlikely ~threshold:0.05 d in
  check Alcotest.int "two left" 2 (List.length pruned.Pxml.choices);
  check Alcotest.bool "valid" true (Result.is_ok (Pxml.validate pruned));
  (* renormalised: 0.9/0.98 and 0.08/0.98 *)
  match pruned.Pxml.choices with
  | [ a; b ] ->
      check (Alcotest.float 1e-9) "renormalised" (0.9 /. 0.98) a.Pxml.prob;
      check (Alcotest.float 1e-9) "renormalised 2" (0.08 /. 0.98) b.Pxml.prob
  | _ -> Alcotest.fail "unexpected shape"

let test_prune_unlikely_keeps_best () =
  let d =
    Pxml.dist [ Pxml.choice ~prob:0.6 [ Pxml.text "a" ]; Pxml.choice ~prob:0.4 [ Pxml.text "b" ] ]
  in
  let pruned = Compact.prune_unlikely ~threshold:0.99 d in
  match pruned.Pxml.choices with
  | [ only ] ->
      check (Alcotest.float 1e-9) "certain" 1. only.Pxml.prob;
      check Alcotest.bool "kept the most likely" true (only.Pxml.nodes = [ Pxml.Text "a" ])
  | _ -> Alcotest.fail "expected a single choice"

let test_overpruning_reduces_recall () =
  (* The paper's warning, measured. With an asymmetric value conflict the
     2222 branch carries 0.3: pruning below 0.4 deletes it, and with it the
     only world in which the merged John has that phone — recall drops. *)
  let cfg =
    Integrate.config
      ~oracle:(Oracle.make [ Oracle.deep_equal_rule ])
      ~dtd:Addressbook.dtd
      ~value_conflict:(fun _ _ -> 0.7)
      ()
  in
  let doc =
    Result.get_ok (Integrate.integrate cfg Addressbook.source_a Addressbook.source_b)
  in
  let answers doc = Pquery.rank doc "//person/tel" in
  let truth = [ "2222" ] in
  let before = Quality.probabilistic_recall (answers doc) ~truth in
  let pruned = Compact.prune_unlikely ~threshold:0.4 doc in
  let after = Quality.probabilistic_recall (answers pruned) ~truth in
  check Alcotest.bool "recall of the pruned value drops" true (after < before);
  check Alcotest.bool "representation shrank" true
    (Pxml.node_count pruned < Pxml.node_count doc)

let prop_prune_unlikely_valid_and_smaller =
  let gen = QCheck.map (fun seed -> fst (Random_docs.pxml (Prng.make seed) ~depth:2)) QCheck.int in
  QCheck.Test.make ~name:"prune_unlikely output valid and no larger" ~count:80 gen
    (fun doc ->
      let pruned = Compact.prune_unlikely ~threshold:0.2 doc in
      Result.is_ok (Pxml.validate pruned)
      && Pxml.node_count pruned <= Pxml.node_count doc
      && Pxml.world_count pruned <= Pxml.world_count doc)

(* ---- incremental integration -------------------------------------------------------------- *)

let test_incremental_third_source () =
  (* A third address book arrives, confirming tel 1111: integrating it into
     the probabilistic state refines the distribution. *)
  let third =
    Imprecise.parse_xml_exn
      "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>"
  in
  let cfg =
    Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) ~dtd:Addressbook.dtd ()
  in
  match Integrate.integrate_incremental cfg fig2 third with
  | Error e -> Alcotest.failf "incremental failed: %a" Integrate.pp_error e
  | Ok doc ->
      check Alcotest.bool "valid" true (Result.is_ok (Pxml.validate doc));
      check Alcotest.bool "still uncertain" false (Pxml.is_certain doc);
      (* every world still satisfies the DTD *)
      List.iter
        (fun (_, forest) ->
          List.iter
            (fun w ->
              check Alcotest.bool "dtd in world" true
                (Result.is_ok (Imprecise.Dtd.validate Addressbook.dtd w)))
            forest)
        (Worlds.merged doc)

let test_incremental_equals_two_way_on_certain () =
  (* Folding into a certain document is exactly ordinary integration. *)
  let a = Imprecise.parse_xml_exn "<r><x>1</x></r>" in
  let b = Imprecise.parse_xml_exn "<r><x>2</x></r>" in
  let cfg = Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) () in
  let direct = Result.get_ok (Integrate.integrate cfg a b) in
  let incremental =
    Result.get_ok (Integrate.integrate_incremental cfg (Pxml.doc_of_tree a) b)
  in
  let worlds d = Worlds.merged d in
  check Alcotest.bool "same distribution" true
    (List.for_all2
       (fun (p, w) (q, v) -> Float.abs (p -. q) < 1e-9 && List.equal Tree.deep_equal w v)
       (worlds direct) (worlds incremental))

let test_incremental_guard () =
  let third = Imprecise.parse_xml_exn "<addressbook/>" in
  let cfg = Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) () in
  match Integrate.integrate_incremental cfg ~world_limit:1. fig2 third with
  | Error (Integrate.Too_large _) -> ()
  | _ -> Alcotest.fail "expected Too_large"

(* ---- blocking --------------------------------------------------------------------- *)

let person_oracle =
  Oracle.make [ Oracle.deep_equal_rule; Oracle.key_rule ~tag:"person" ~field:"nm" ]

let name_block t =
  if Tree.name t = Some "person" then Tree.field t "nm" else None

let test_blocking_preserves_result () =
  (* The name-key rule and name blocking agree, so blocking must not change
     the result distribution. *)
  let a, b = Addressbook.larger 40 3 in
  let run block =
    let cfg =
      if block then
        Integrate.config ~oracle:person_oracle ~dtd:Addressbook.dtd ~block:name_block ()
      else Integrate.config ~oracle:person_oracle ~dtd:Addressbook.dtd ()
    in
    match Integrate.integrate cfg a b with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "integration failed: %a" Integrate.pp_error e
  in
  let plain = run false and blocked = run true in
  check Alcotest.int "same node count" (Pxml.node_count plain) (Pxml.node_count blocked);
  check (Alcotest.float 1e-6) "same world count" (Pxml.world_count plain)
    (Pxml.world_count blocked)

let test_blocking_scales () =
  (* 1000-person books integrate in well under a second with blocking. *)
  let a, b = Addressbook.larger 1000 9 in
  let cfg =
    Integrate.config ~oracle:person_oracle ~dtd:Addressbook.dtd ~block:name_block
      ~factorize:true ()
  in
  let t0 = Unix.gettimeofday () in
  match Integrate.integrate cfg a b with
  | Error e -> Alcotest.failf "integration failed: %a" Integrate.pp_error e
  | Ok doc ->
      let dt = Unix.gettimeofday () -. t0 in
      check Alcotest.bool "finished fast" true (dt < 5.);
      check Alcotest.bool "valid" true (Result.is_ok (Pxml.validate doc));
      check Alcotest.bool "big" true (Pxml.node_count doc > 5000)

let test_blocking_prunes_cross_block () =
  (* Different block keys never reach the Oracle: a spy rule observes. *)
  let calls = ref 0 in
  let spy =
    {
      Oracle.name = "spy";
      judge =
        (fun _ _ ->
          incr calls;
          Some Oracle.Different);
    }
  in
  let a = Imprecise.parse_xml_exn "<r><p><k>a</k></p><p><k>b</k></p></r>" in
  let b = Imprecise.parse_xml_exn "<r><p><k>c</k></p><p><k>a</k></p></r>" in
  let block t = Tree.field t "k" in
  let cfg = Integrate.config ~oracle:(Oracle.make [ spy ]) ~block () in
  (match Integrate.integrate cfg a b with Ok _ -> () | Error e -> Alcotest.failf "%a" Integrate.pp_error e);
  check Alcotest.int "only the same-key pair consulted" 1 !calls

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let ts l = List.map (fun (n, f) -> t n f) l in
  let qc p = QCheck_alcotest.to_alcotest p in
  [
    ("xpath.axes2", ts suite_axes);
    ("xpath.functions2", ts suite_functions);
    ( "xpath.flwor",
      ts suite_flwor
      @ [
          t "element constructor" test_element_ctor;
          t "restructuring for-return" test_for_restructure;
          t "constructor with attributes" test_ctor_with_attribute;
          t "pretty-print roundtrip" test_flwor_roundtrip;
          t "FLWOR over a probabilistic document" test_flwor_on_probabilistic;
        ] );
    ( "pquery.sample",
      [
        t "unbiased estimate" test_sample_unbiased;
        t "deterministic under a seed" test_sample_deterministic;
        t "sampled world sanity" test_sample_probability_product;
        qc prop_sampled_worlds_are_possible;
      ] );
    ( "pxml.most_likely",
      [
        t "figure-2 top worlds" test_most_likely_fig2;
        t "k beyond the world space" test_most_likely_beyond_space;
        t "k-best on a large document" test_most_likely_on_large_doc;
        qc prop_most_likely_matches_enumeration;
      ] );
    ( "pxml.prune_unlikely",
      [
        t "prunes and renormalises" test_prune_unlikely_basic;
        t "always keeps the most likely choice" test_prune_unlikely_keeps_best;
        t "over-pruning reduces recall (the paper's warning)" test_overpruning_reduces_recall;
        qc prop_prune_unlikely_valid_and_smaller;
      ] );
    ( "integrate.blocking",
      [
        t "blocking preserves the result when sound" test_blocking_preserves_result;
        t "1000-person integration under a second" test_blocking_scales;
        t "cross-block pairs never reach the oracle" test_blocking_prunes_cross_block;
      ] );
    ( "integrate.incremental",
      [
        t "third source refines the state" test_incremental_third_source;
        t "certain base = ordinary integration" test_incremental_equals_two_way_on_certain;
        t "world-limit guard" test_incremental_guard;
      ] );
  ]
