(* Binary codec certification: the compact v3 format must be a perfect
   round-trip and fail loudly on damage.

   - 500 random probabilistic documents (seeded, reproducible) encode and
     decode BIT-identically — probabilities compared by their IEEE-754
     bits, not an epsilon — interned or not, plus the XML attribute codec
     round-trip on hostile floats (0.1 +. 0.2, subnormals, 1e-300).
   - Corruption is detected, never crashes: every truncation of a frame
     and every single-bit flip in a payload decodes to [Error]; a store
     load over a corrupted binary file quarantines it.
   - Legacy XML stores load unchanged next to binary ones, and a store
     migrated to binary reloads with the same documents and the same
     ranked answers on the paper's pinned queries (§VI Q1/Q2, Figure 2).

   Runs under `dune runtest` and alone via `dune build @codec-stress`;
   case count is overridable through CODEC_CASES. *)

module Pxml = Imprecise.Pxml
module Tree = Imprecise.Tree
module Codec = Imprecise.Codec
module Bincodec = Imprecise.Bincodec
module Intern = Imprecise.Intern
module Compact = Imprecise.Compact
module Store = Imprecise.Store
module Pquery = Imprecise.Pquery
module Answer = Imprecise.Answer
module Prng = Imprecise.Data.Prng
module Random_docs = Imprecise.Data.Random_docs
module Addressbook = Imprecise.Data.Addressbook
module Workloads = Imprecise.Data.Workloads

let cases =
  match Sys.getenv_opt "CODEC_CASES" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 500)
  | None -> 500

let failures = ref 0

let fail seed fmt =
  Fmt.kstr
    (fun msg ->
      incr failures;
      Fmt.epr "[codec-stress] seed %d: %s@." seed msg)
    fmt

(* Bit-exact structural equality: Pxml.equal tolerates an epsilon on
   probabilities, which would hide a decode that drifted by one ulp. *)
let rec exact_node a b =
  match (a, b) with
  | Pxml.Text x, Pxml.Text y -> String.equal x y
  | Pxml.Elem (t1, a1, c1), Pxml.Elem (t2, a2, c2) ->
      String.equal t1 t2 && a1 = a2 && List.equal exact_dist c1 c2
  | _ -> false

and exact_dist (a : Pxml.dist) (b : Pxml.dist) = List.equal exact_choice a.choices b.choices

and exact_choice (a : Pxml.choice) (b : Pxml.choice) =
  Int64.bits_of_float a.prob = Int64.bits_of_float b.prob
  && List.equal exact_node a.nodes b.nodes

(* ---- random round-trips ------------------------------------------------ *)

let check_roundtrip seed =
  let doc = fst (Random_docs.pxml (Prng.make seed) ~depth:(2 + (seed mod 2))) in
  (match Bincodec.of_string (Bincodec.doc_to_string doc) with
  | Ok (Bincodec.Probabilistic d) ->
      if not (exact_dist doc d) then fail seed "binary round-trip changed the document"
  | Ok (Bincodec.Certain _) -> fail seed "probabilistic doc decoded as certain"
  | Error e -> fail seed "binary round-trip failed: %s" e);
  (* interning is transparent: the interned doc encodes to the same
     document (and usually fewer bytes, via back-references) *)
  let interned = Intern.doc doc in
  if not (exact_dist doc interned) then fail seed "interning changed the document";
  (match Bincodec.of_string (Bincodec.doc_to_string interned) with
  | Ok (Bincodec.Probabilistic d) ->
      if not (exact_dist doc d) then fail seed "interned round-trip changed the document"
  | Ok (Bincodec.Certain _) | Error _ -> fail seed "interned round-trip failed");
  if Intern.distinct_nodes interned > Intern.distinct_nodes doc then
    fail seed "interning increased the number of distinct nodes";
  (* certain trees use the same frame *)
  let tree = fst (Random_docs.xml (Prng.make (seed + 7919)) ~depth:2) in
  match Bincodec.of_string (Bincodec.tree_to_string tree) with
  | Ok (Bincodec.Certain t) ->
      if not (Tree.equal tree t) then fail seed "tree round-trip changed the tree"
  | Ok (Bincodec.Probabilistic _) -> fail seed "certain tree decoded as probabilistic"
  | Error e -> fail seed "tree round-trip failed: %s" e

(* ---- the XML attribute codec on hostile floats ------------------------- *)

let hostile_probs =
  [
    0.1 +. 0.2;
    1. -. (0.1 +. 0.2);
    1e-300;
    1. -. 1e-300;
    Float.min_float (* smallest normal *);
    4.9e-324 (* smallest subnormal *);
    0.5;
    1. /. 3.;
    0.30000000000000004;
    1. -. 0.30000000000000004 -. 1e-300;
  ]

let check_float_attr () =
  List.iter
    (fun p ->
      (* the attribute printer must round-trip every float bit-for-bit *)
      let s = Codec.float_to_attr p in
      match float_of_string_opt s with
      | None -> fail 0 "float_to_attr printed unparsable %S" s
      | Some q ->
          if Int64.bits_of_float q <> Int64.bits_of_float p then
            fail 0 "float_to_attr drifted: %h printed as %S, parses to %h" p s q)
    (hostile_probs @ List.map (fun p -> 1. -. p) hostile_probs);
  (* and through a whole document: a two-way choice with hostile split *)
  List.iter
    (fun p ->
      if p > 0. && p < 1. then
        let q = 1. -. p in
        let doc =
          {
            Pxml.choices =
              [
                { Pxml.prob = p; nodes = [ Pxml.Text "yes" ] };
                { Pxml.prob = q; nodes = [ Pxml.Text "no" ] };
              ];
          }
        in
        match Codec.of_string (Codec.to_string doc) with
        | Error e -> fail 0 "xml codec rejected hostile-prob doc: %s" e
        | Ok d ->
            if not (exact_dist doc d) then
              fail 0 "xml codec drifted on probability %h" p)
    hostile_probs

(* ---- corruption -------------------------------------------------------- *)

let check_corruption seed =
  let doc = fst (Random_docs.pxml (Prng.make seed) ~depth:2) in
  let frame = Bincodec.doc_to_string doc in
  let n = String.length frame in
  (* every truncation fails cleanly *)
  List.iter
    (fun k ->
      if k < n then
        match Bincodec.of_string (String.sub frame 0 k) with
        | Error _ -> ()
        | Ok _ -> fail seed "truncation to %d bytes decoded successfully" k)
    [ 0; 1; 3; 4; 5; 6; n / 4; n / 2; n - 1 ];
  (* every single-bit flip in the payload region is caught by the CRC (the
     header region fails on magic/version/kind/length checks instead) *)
  let header_len =
    (* magic + version + kind, then the varint length, then 4 CRC bytes *)
    let rec skip_varint i = if Char.code frame.[i] land 0x80 <> 0 then skip_varint (i + 1) else i + 1 in
    skip_varint 6 + 4
  in
  let flip pos bit =
    let b = Bytes.of_string frame in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    Bytes.to_string b
  in
  let step = max 1 ((n - header_len) / 16) in
  let pos = ref header_len in
  while !pos < n do
    (match Bincodec.of_string (flip !pos (!pos mod 8)) with
    | Error _ -> ()
    | Ok _ -> fail seed "bit flip at byte %d went undetected" !pos);
    pos := !pos + step
  done

(* ---- stores: legacy XML, binary v3, migration, pinned answers --------- *)

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "imprecise-codec-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let rank_sig doc query =
  List.map (fun (a : Answer.t) -> Fmt.str "%s@%.12g" a.Answer.value a.Answer.prob)
    (Pquery.rank doc query)

(* §VI Q1/Q2 on the movie workload and the Figure 2 integration: the pinned
   queries whose answers a binary reload must preserve exactly. *)
let pinned_docs () =
  let fig2 =
    match
      Imprecise.integrate ~rules:Imprecise.Rulesets.generic ~dtd:Addressbook.dtd
        Addressbook.source_a Addressbook.source_b
    with
    | Ok doc -> doc
    | Error _ -> failwith "fig2 integration failed"
  in
  let wl = Workloads.confusing () in
  let rules = Imprecise.Rulesets.movie ~genre:true ~title:true ~director:true () in
  let movies =
    match
      Imprecise.integrate ~rules ~dtd:wl.Workloads.dtd (Workloads.mpeg7_doc wl)
        (Workloads.imdb_doc wl)
    with
    | Ok doc -> doc
    | Error _ -> failwith "§VI movie integration failed"
  in
  [
    ("fig2", fig2, [ "//person/nm"; "//person/tel" ]);
    ( "movies",
      movies,
      [
        {|//movie[.//genre="Horror"]/title|};
        {|//movie[some $d in .//director satisfies contains($d,"John")]/title|};
      ] );
  ]

let check_stores () =
  let docs = pinned_docs () in
  let store = Store.create () in
  List.iter (fun (name, doc, _) -> Store.put store name (Store.Probabilistic doc)) docs;
  Store.put store "certain" (Store.Certain (Tree.element "root" [ Tree.leaf "k" "v" ]));
  let pins =
    List.concat_map (fun (name, doc, qs) -> List.map (fun q -> (name, q, rank_sig doc q)) qs) docs
  in
  let check_loaded label loaded =
    List.iter
      (fun (name, q, expected) ->
        match Store.get_probabilistic loaded name with
        | None -> fail 0 "%s: document %s missing after reload" label name
        | Some doc ->
            let got = rank_sig doc q in
            if got <> expected then
              fail 0 "%s: %s answers changed after reload (%s)" label q
                (String.concat "; " got))
      pins;
    match Store.get_certain loaded "certain" with
    | Some t when Tree.equal t (Tree.element "root" [ Tree.leaf "k" "v" ]) -> ()
    | _ -> fail 0 "%s: certain document damaged" label
  in
  (* legacy XML save/load still works, byte format unchanged *)
  with_tmp_dir (fun dir ->
      (match Store.save store ~dir with Ok () -> () | Error e -> fail 0 "xml save: %s" e);
      let has_binary_file =
        Array.exists (fun f -> Filename.check_suffix f ".ipx") (Sys.readdir dir)
      in
      if has_binary_file then fail 0 "default save wrote a binary file";
      match Store.load dir with
      | Ok (loaded, report) ->
          if not (Store.recovered_all report) then fail 0 "xml load not clean";
          check_loaded "xml" loaded
      | Error e -> fail 0 "xml load: %s" e);
  (* binary v3 save/load: same documents, same answers, smaller files *)
  with_tmp_dir (fun dir ->
      (match Store.save ~format:Store.Binary store ~dir with
      | Ok () -> ()
      | Error e -> fail 0 "binary save: %s" e);
      let files = Sys.readdir dir in
      if not (Array.exists (fun f -> Filename.check_suffix f ".ipx") files) then
        fail 0 "binary save wrote no .ipx files";
      (match Store.load dir with
      | Ok (loaded, report) ->
          if not (Store.recovered_all report) then fail 0 "binary load not clean";
          if report.Store.manifest <> `Ok then fail 0 "binary manifest not verified";
          check_loaded "binary" loaded
      | Error e -> fail 0 "binary load: %s" e);
      (* corrupt one binary payload byte: the load must quarantine exactly
         that document and recover the rest *)
      let victim =
        Array.to_list files |> List.filter (fun f -> Filename.check_suffix f ".ipx")
        |> List.sort String.compare |> List.hd
      in
      let path = Filename.concat dir victim in
      let data = In_channel.with_open_bin path In_channel.input_all in
      let b = Bytes.of_string data in
      let pos = Bytes.length b - 1 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
      match Store.load dir with
      | Ok (_, report) ->
          let bad =
            List.filter_map
              (fun (name, o) ->
                match o with Store.Quarantined _ -> Some name | _ -> None)
              report.Store.docs
          in
          if List.length bad <> 1 then
            fail 0 "corrupted binary store: expected 1 quarantined doc, got %d"
              (List.length bad)
      | Error e -> fail 0 "corrupted binary store refused to load: %s" e);
  (* migration: an XML store re-saved as binary keeps everything *)
  with_tmp_dir (fun dir ->
      (match Store.save store ~dir with Ok () -> () | Error e -> fail 0 "save: %s" e);
      (match Store.load dir with
      | Ok (loaded, _) -> (
          match Store.save ~format:Store.Binary loaded ~dir with
          | Ok () -> ()
          | Error e -> fail 0 "migrate save: %s" e)
      | Error e -> fail 0 "migrate load: %s" e);
      let files = Sys.readdir dir in
      if Array.exists (fun f -> Filename.check_suffix f ".xml") files then
        fail 0 "migration left XML document files behind";
      match Store.load dir with
      | Ok (loaded, report) ->
          if not (Store.recovered_all report && report.Store.manifest = `Ok) then
            fail 0 "migrated store not clean";
          check_loaded "migrated" loaded
      | Error e -> fail 0 "migrated load: %s" e)

(* ---- size and sharing sanity ------------------------------------------- *)

let check_compression () =
  (* a document with heavy repetition: binary + interning must beat XML *)
  let person i =
    Pxml.elem "person"
      [
        Pxml.certain
          [ Pxml.elem "nm" [ Pxml.certain [ Pxml.text "alice" ] ];
            Pxml.elem "tel" [ Pxml.certain [ Pxml.text (string_of_int (i mod 3)) ] ] ];
      ]
  in
  let doc = Pxml.certain [ Pxml.elem "book" [ Pxml.certain (List.init 200 person) ] ] in
  let xml = Codec.to_string doc in
  let binary = Bincodec.doc_to_string doc in
  if String.length binary * 4 > String.length xml then
    fail 0 "binary did not compress a repetitive doc 4x (xml %d, binary %d)"
      (String.length xml) (String.length binary);
  let interned = Intern.doc doc in
  if Intern.distinct_nodes interned >= Pxml.node_count doc then
    fail 0 "interning found no sharing in a repetitive document"

let () =
  for i = 0 to cases - 1 do
    check_roundtrip i
  done;
  for i = 0 to 19 do
    check_corruption (1000 + i)
  done;
  check_float_attr ();
  check_stores ();
  check_compression ();
  Fmt.pr
    "codec-stress: %d round-trip cases, 20 corruption cases, %d hostile floats, 3 store \
     scenarios, %d failures@."
    cases
    (List.length hostile_probs * 2)
    !failures;
  if !failures > 0 then exit 1
