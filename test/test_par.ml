(* Parallel-engine equivalence harness.

   The contract of `Integrate.config ~jobs` is exact: any jobs value must
   produce a result bit-identical to the sequential run, with identical
   per-run tallies (pairs_compared, pairs_blocked, same, unsure). This
   harness checks that contract three ways:

   - fuzzed document pairs (seeded, reproducible) integrated with jobs 1,
     2 and 4, comparing the pxml encodings byte for byte and the trace
     records field by field;
   - a larger address-book pair with blocking, whose candidate grids are
     big enough to actually cross the parallel threshold and fan out;
   - the decision cache riding along: a cached run must answer the same
     as an uncached one, and a repeat run on the same cache must be
     served mostly from memory (hits observed, oracle decisions flat).

   Runs under `dune runtest` and alone via `dune build @par-stress`; case
   count overridable through PAR_FUZZ_CASES. *)

module Tree = Imprecise.Tree
module Codec = Imprecise.Codec
module Oracle = Imprecise.Oracle
module Decision_cache = Imprecise.Decision_cache
module Integrate = Imprecise.Integrate
module Matching = Imprecise.Matching
module Obs = Imprecise.Obs
module Prng = Imprecise.Data.Prng
module Random_docs = Imprecise.Data.Random_docs
module Addressbook = Imprecise.Data.Addressbook

let cases =
  match Sys.getenv_opt "PAR_FUZZ_CASES" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 150)
  | None -> 150

let failures = ref 0

let fail seed fmt =
  incr failures;
  Fmt.epr "FAIL (reproduce: seed %d)@.  " seed;
  Fmt.epr (fmt ^^ "@.")

let oracle =
  Oracle.make [ Oracle.deep_equal_rule; Oracle.key_rule ~tag:"person" ~field:"nm" ]

let name_block t = if Tree.name t = Some "person" then Tree.field t "nm" else None

let encode doc = Codec.to_string ~indent:2 doc

let same_trace seed label (a : Integrate.trace) (b : Integrate.trace) =
  let field name va vb =
    if va <> vb then fail seed "%s: %s differs (jobs=1: %d, parallel: %d)" label name va vb
  in
  field "pairs_generated" a.Integrate.pairs_generated b.Integrate.pairs_generated;
  field "pairs_compared" a.Integrate.pairs_compared b.Integrate.pairs_compared;
  field "pairs_blocked" a.Integrate.pairs_blocked b.Integrate.pairs_blocked;
  field "same_pairs" a.Integrate.same_pairs b.Integrate.same_pairs;
  field "unsure_pairs" a.Integrate.unsure_pairs b.Integrate.unsure_pairs;
  field "cluster_count" a.Integrate.cluster_count b.Integrate.cluster_count

let config ?decisions ~jobs () =
  Integrate.config ~oracle ~dtd:Addressbook.dtd ~block:name_block ~factorize:true
    ~jobs ?decisions ()

(* One fuzz case: same pair, three jobs values, byte-identical results and
   identical tallies. Roots are forced to a common tag so integration does
   not trivially stop at a root mismatch. *)
let check_fuzz_case seed =
  let rng = Prng.make seed in
  let a, rng = Random_docs.xml rng ~depth:2 in
  let b, _ = Random_docs.xml rng ~depth:2 in
  let reroot t = Tree.element "root" [ t ] in
  let a = reroot a and b = reroot b in
  match Integrate.integrate_traced (config ~jobs:1 ()) a b with
  | Error _ ->
      (* jobs must not change which inputs are rejected either *)
      List.iter
        (fun jobs ->
          match Integrate.integrate_traced (config ~jobs ()) a b with
          | Error _ -> ()
          | Ok _ -> fail seed "jobs=%d succeeded where jobs=1 failed" jobs)
        [ 2; 4 ]
  | Ok (doc1, trace1) ->
      let ref_bytes = encode doc1 in
      List.iter
        (fun jobs ->
          match Integrate.integrate_traced (config ~jobs ()) a b with
          | Error e -> fail seed "jobs=%d failed where jobs=1 succeeded: %a" jobs Integrate.pp_error e
          | Ok (doc, trace) ->
              if encode doc <> ref_bytes then
                fail seed "jobs=%d result is not bit-identical to jobs=1" jobs;
              same_trace seed (Printf.sprintf "jobs=%d" jobs) trace1 trace)
        [ 2; 4 ]

(* Large grids: [Addressbook.larger] yields person pools whose candidate
   grid crosses the parallel threshold, so jobs>1 genuinely fans out
   (verified via the integrate.parallel_runs counter). *)
let check_large_case n seed =
  let a, b = Addressbook.larger n (1000 + seed) in
  let run jobs =
    match Integrate.integrate_traced (config ~jobs ()) a b with
    | Ok r -> r
    | Error e -> (fail seed "larger(%d) jobs=%d failed: %a" n jobs Integrate.pp_error e; exit 1)
  in
  let doc1, trace1 = run 1 in
  let ref_bytes = encode doc1 in
  List.iter
    (fun jobs ->
      let doc, trace = run jobs in
      if encode doc <> ref_bytes then
        fail seed "larger(%d): jobs=%d not bit-identical" n jobs;
      same_trace seed (Printf.sprintf "larger(%d) jobs=%d" n jobs) trace1 trace)
    [ 2; 4; 8 ]

let count name = Obs.Metrics.count (Obs.Metrics.counter name)

(* Regression: a band worker failing used to be visible only if it was
   band 0 — a later band's exception escaped before the workers were
   joined (leaking domains), and when several bands failed, which failure
   surfaced was racy. graph_of_outcomes must join every worker and
   re-raise the first failure in band order, deterministically. *)
exception Band_boom of int

let check_band_exception_propagation () =
  (* 8x8 = 64 cells: exactly par_grid_min, so jobs=4 really fans out into
     four 2-row bands. Bands 1 (rows 2-3) and 3 (rows 6-7) both raise at
     their first cell; bands 0 and 2 run to completion. *)
  let cells = Atomic.make 0 in
  let outcome i j =
    Atomic.incr cells;
    if (i = 2 || i = 6) && j = 0 then raise (Band_boom (i / 2));
    Matching.Verdict (if i = j then Oracle.Unsure 0.5 else Oracle.Different)
  in
  (match Matching.graph_of_outcomes ~jobs:4 ~n_left:8 ~n_right:8 outcome with
  | _ -> fail 0 "two bands raised, yet the grid reported success"
  | exception Band_boom 1 -> ()
  | exception Band_boom b -> fail 0 "band %d's failure surfaced before band 1's" b);
  (* all four bands were joined: the two clean bands finished their 16
     cells each, the two raising bands stopped at their first cell *)
  let seen = Atomic.get cells in
  if seen <> 34 then fail 0 "expected 16+1+16+1 = 34 cells visited, saw %d" seen

let check_decision_cache () =
  let a, b = Addressbook.larger 40 7 in
  let plain =
    match Integrate.integrate (config ~jobs:1 ()) a b with
    | Ok doc -> encode doc
    | Error e -> (fail 7 "uncached run failed: %a" Integrate.pp_error e; exit 1)
  in
  let decisions = Decision_cache.create () in
  let cached jobs =
    match Integrate.integrate (config ~decisions ~jobs ()) a b with
    | Ok doc -> encode doc
    | Error e -> (fail 7 "cached run failed: %a" Integrate.pp_error e; exit 1)
  in
  let first = cached 1 in
  if first <> plain then fail 7 "decision cache changed the result";
  (* the repeat run meets only already-decided pairs: hits must grow and
     the Oracle must not be consulted again *)
  let hits0 = count "oracle.cache.hit" and decided0 = count "oracle.decisions" in
  let second = cached 4 in
  if second <> plain then fail 7 "cached parallel repeat changed the result";
  if count "oracle.cache.hit" <= hits0 then fail 7 "repeat run produced no cache hits";
  if count "oracle.decisions" <> decided0 then
    fail 7 "repeat run still consulted the Oracle (%d fresh decisions)"
      (count "oracle.decisions" - decided0)

let () =
  for seed = 0 to cases - 1 do
    check_fuzz_case seed
  done;
  let par0 = count "integrate.parallel_runs" in
  List.iter (fun (n, seed) -> check_large_case n seed) [ (24, 1); (40, 2) ];
  if count "integrate.parallel_runs" <= par0 then begin
    incr failures;
    Fmt.epr "FAIL: large cases never took the parallel path@."
  end;
  check_decision_cache ();
  check_band_exception_propagation ();
  if !failures > 0 then begin
    Fmt.epr "%d parallel-equivalence failure(s) over %d fuzz cases@." !failures cases;
    exit 1
  end;
  Fmt.pr
    "parallel engine: %d fuzz cases + large grids + decision cache + band-failure \
     propagation, all identical@."
    cases
