(* Tests for the query substrate: lexer, parser, and the XPath 1.0 subset
   evaluator with XQuery quantifiers. *)

module Parser = Imprecise.Xpath.Parser
module Ast = Imprecise.Xpath.Ast
module Eval = Imprecise.Xpath.Eval
module Lexer = Imprecise.Xpath.Lexer

let check = Alcotest.check

let doc =
  Imprecise.parse_xml_exn
    {|<movies year="2008">
        <movie id="m1"><title>Jaws</title><year>1975</year><genre>Horror</genre>
          <cast><director>Steven Spielberg</director></cast></movie>
        <movie id="m2"><title>Jaws 2</title><year>1978</year><genre>Horror</genre><genre>Thriller</genre>
          <cast><director>Jeannot Szwarc</director></cast></movie>
        <movie id="m3"><title>Mission: Impossible II</title><year>2000</year><genre>Action</genre>
          <cast><director>John Woo</director></cast></movie>
      </movies>|}

let strings q = Imprecise.query_certain doc q

let bool q = Eval.eval_bool doc q

let number q = Eval.eval_number doc q

let str q = Eval.eval_string doc q

let check_q q expected () = check Alcotest.(list string) q expected (strings q)

let check_b q expected () = check Alcotest.bool q expected (bool q)

let check_n q expected () = check (Alcotest.float 1e-9) q expected (number q)

let check_s q expected () = check Alcotest.string q expected (str q)

let parse_err q () =
  match Parser.parse q with
  | Ok _ -> Alcotest.failf "expected parse error for %S" q
  | Error _ -> ()

(* ---- lexer ---------------------------------------------------------------- *)

let test_lexer_basic () =
  match Lexer.tokenize "//a[@k='v' and 2<=3]" with
  | Error e -> Alcotest.failf "lex error: %s" e
  | Ok toks ->
      check Alcotest.int "token count" 13 (List.length toks);
      check Alcotest.bool "starts with //" true (List.hd toks = Lexer.Double_slash)

let test_lexer_qname_vs_axis () =
  (match Lexer.tokenize "child::p:prob" with
  | Ok [ Lexer.Name "child"; Lexer.Axis_sep; Lexer.Name "p:prob"; Lexer.Eof ] -> ()
  | Ok toks ->
      Alcotest.failf "unexpected tokens: %s"
        (String.concat " " (List.map Lexer.token_to_string toks))
  | Error e -> Alcotest.failf "lex error: %s" e);
  match Lexer.tokenize "descendant-or-self::node()" with
  | Ok (Lexer.Name "descendant-or-self" :: Lexer.Axis_sep :: _) -> ()
  | _ -> Alcotest.fail "axis name mislexed"

let test_lexer_errors () =
  List.iter
    (fun s ->
      match Lexer.tokenize s with
      | Ok _ -> Alcotest.failf "expected lex error for %S" s
      | Error _ -> ())
    [ "'unterminated"; "a ! b"; "$"; "a # b" ]

(* ---- parser --------------------------------------------------------------- *)

let roundtrip q () =
  match Parser.parse q with
  | Error e -> Alcotest.failf "parse error for %S: %s" q e
  | Ok ast -> (
      (* printing then reparsing yields the same AST *)
      match Parser.parse (Ast.to_string ast) with
      | Error e -> Alcotest.failf "reparse error for %S: %s" (Ast.to_string ast) e
      | Ok ast2 ->
          check Alcotest.string "pp stable" (Ast.to_string ast) (Ast.to_string ast2))

let test_parser_precedence () =
  match Parser.parse "1 + 2 * 3 = 7 and true()" with
  | Ok (Ast.Binop (Ast.And, Ast.Binop (Ast.Eq, Ast.Binop (Ast.Add, _, Ast.Binop (Ast.Mul, _, _)), _), _)) -> ()
  | Ok ast -> Alcotest.failf "wrong tree: %s" (Ast.to_string ast)
  | Error e -> Alcotest.fail e

let test_parser_operator_names_as_tags () =
  (* 'and', 'or', 'div', 'mod' in operand position are element names *)
  match Parser.parse "//and/or[div=1]" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "keyword-as-name failed: %s" e

(* ---- evaluator: paths and axes -------------------------------------------- *)

let suite_paths =
  [
    ("child path", check_q "/movies/movie/title" [ "Jaws"; "Jaws 2"; "Mission: Impossible II" ]);
    ("descendant //", check_q "//director" [ "Steven Spielberg"; "Jeannot Szwarc"; "John Woo" ]);
    ("// mid-path", check_q "/movies//director" [ "Steven Spielberg"; "Jeannot Szwarc"; "John Woo" ]);
    ("wildcard", check_q "/movies/movie[1]/*[1]" [ "Jaws" ]);
    ("parent ..", check_q "//director/../../title[1]" [ "Jaws"; "Jaws 2"; "Mission: Impossible II" ]);
    ("self .", check_q "//title/." [ "Jaws"; "Jaws 2"; "Mission: Impossible II" ]);
    ("attribute @", check_q "//movie/@id" [ "m1"; "m2"; "m3" ]);
    ("attribute exists filter", check_q "//movie[@id='m2']/title" [ "Jaws 2" ]);
    ("root attribute", check_q "/movies/@year" [ "2008" ]);
    (* [1] applies per context node: the first descendant director of EACH movie *)
    ("explicit axes", check_q "/movies/child::movie/descendant::director[1]"
       [ "Steven Spielberg"; "Jeannot Szwarc"; "John Woo" ]);
    ("descendant-or-self axis", check_q "//movie[1]/descendant-or-self::movie/title" [ "Jaws" ]);
    ("text()", check_q "//movie[1]/title/text()" [ "Jaws" ]);
    ("node() includes text", check_q "//movie[1]/title/node()" [ "Jaws" ]);
    ("no match", check_q "//nonexistent" []);
    ("union |", check_q "//movie[1]/title | //movie[3]/title" [ "Jaws"; "Mission: Impossible II" ]);
    ("union dedups and orders", check_q "//title | //movie/title" [ "Jaws"; "Jaws 2"; "Mission: Impossible II" ]);
  ]

(* ---- evaluator: predicates ------------------------------------------------- *)

let suite_predicates =
  [
    ("value =", check_q {|//movie[year="1975"]/title|} [ "Jaws" ]);
    ("numeric >", check_q "//movie[year>1976]/title" [ "Jaws 2"; "Mission: Impossible II" ]);
    ("numeric <=", check_q "//movie[year<=1975]/title" [ "Jaws" ]);
    ("!= over nodeset (exists semantics)", check_q {|//movie[genre!="Horror"]/title|} [ "Jaws 2"; "Mission: Impossible II" ]);
    ("position", check_q "//movie[2]/title" [ "Jaws 2" ]);
    ("position()", check_q "//movie[position()=3]/title" [ "Mission: Impossible II" ]);
    ("last()", check_q "//movie[last()]/title" [ "Mission: Impossible II" ]);
    ("chained predicates", check_q {|//movie[genre="Horror"][2]/title|} [ "Jaws 2" ]);
    ("predicate on deep path", check_q {|//movie[cast/director="John Woo"]/title|} [ "Mission: Impossible II" ]);
    ("predicate with //", check_q {|//movie[.//director="John Woo"]/title|} [ "Mission: Impossible II" ]);
    ("boolean and", check_q {|//movie[genre="Horror" and year>1976]/title|} [ "Jaws 2" ]);
    ("boolean or", check_q {|//movie[year=1975 or year=2000]/title|} [ "Jaws"; "Mission: Impossible II" ]);
    ("not()", check_q {|//movie[not(genre="Horror")]/title|} [ "Mission: Impossible II" ]);
    ("count() in predicate", check_q "//movie[count(genre)=2]/title" [ "Jaws 2" ]);
    ("attribute in predicate", check_q "//movie[@id='m3']/year" [ "2000" ]);
  ]

(* ---- evaluator: functions, arithmetic, coercions ---------------------------- *)

let suite_functions =
  [
    ("count", check_n "count(//movie)" 3.);
    ("sum", check_n "sum(//year)" (1975. +. 1978. +. 2000.));
    ("arithmetic", check_n "(1 + 2 * 3 - 4) div 3" 1.);
    ("mod", check_n "10 mod 3" 1.);
    ("unary minus", check_n "-(2 + 3)" (-5.));
    ("floor/ceiling/round", check_n "floor(1.7) + ceiling(1.2) + round(2.5)" 6.);
    ("string()", check_s "string(//movie[1]/year)" "1975");
    ("string of number", check_s "string(2 + 2)" "4");
    ("concat", check_s "concat(//movie[1]/title, ' (', //movie[1]/year, ')')" "Jaws (1975)");
    ("contains", check_b "contains(//movie[3]/title, 'Impossible')" true);
    ("contains false", check_b "contains('abc', 'z')" false);
    ("contains empty needle", check_b "contains('abc', '')" true);
    ("starts-with", check_b "starts-with('Jaws 2', 'Jaws')" true);
    ("ends-with", check_b "ends-with('Jaws 2', '2')" true);
    ("substring", check_s "substring('12345', 2, 3)" "234");
    ("substring out of range", check_s "substring('12345', 0, 2)" "1");
    ("substring-before/after", check_s "concat(substring-before('a-b', '-'), substring-after('a-b', '-'))" "ab");
    ("string-length", check_n "string-length('hello')" 5.);
    ("normalize-space", check_s "normalize-space('  a   b ')" "a b");
    ("translate", check_s "translate('abcabc', 'ab', 'BA')" "BAcBAc");
    ("translate deletes", check_s "translate('abc', 'b', '')" "ac");
    ("boolean coercions", check_b "boolean('x') and boolean(1) and not(boolean('')) and not(boolean(0))" true);
    ("number of string", check_n "number('42') + number(' 1 ')" 43.);
    ("NaN comparisons", check_b "number('x') = number('x')" false);
    ("name()", check_s "name(//movie[1]/*[1])" "title");
    ("deep-equal true", check_b "deep-equal(//movie[1]/genre, //movie[2]/genre[1])" true);
    ("deep-equal false", check_b "deep-equal(//movie[1], //movie[2])" false);
    ("true/false", check_b "true() and not(false())" true);
  ]

(* ---- evaluator: comparison semantics ---------------------------------------- *)

let suite_comparisons =
  [
    ("nodeset = string, exists", check_b {|//genre = "Thriller"|} true);
    ("nodeset = string, none", check_b {|//genre = "Western"|} false);
    ("nodeset != string (exists non-equal)", check_b {|//genre != "Horror"|} true);
    ("nodeset = nodeset", check_b "//movie[1]/genre = //movie[2]/genre" true);
    ("nodeset vs number", check_b "//year > 1999" true);
    ("nodeset vs bool", check_b "//nonexistent = false()" true);
    ("empty nodeset vs number", check_b "//nonexistent = 0" false);
    ("string number compare", check_b "'10' > '9'" true);
    (* numeric, not lexicographic *)
  ]

(* ---- quantified expressions --------------------------------------------------- *)

let suite_quantified =
  [
    ( "some satisfies (paper Q2 shape)",
      check_q {|//movie[some $d in .//director satisfies contains($d, "John")]/title|}
        [ "Mission: Impossible II" ] );
    ("some over genres", check_q {|//movie[some $g in genre satisfies $g = "Thriller"]/title|} [ "Jaws 2" ]);
    ("every", check_b {|every $y in //year satisfies $y > 1900|} true);
    ("every false", check_b {|every $g in //genre satisfies $g = "Horror"|} false);
    ("some empty domain is false", check_b {|some $x in //nonexistent satisfies true()|} false);
    ("every empty domain is true", check_b {|every $x in //nonexistent satisfies false()|} true);
    ( "nested quantifiers",
      check_b
        {|some $m in //movie satisfies (every $g in $m/genre satisfies $g = "Horror")|}
        true );
  ]

(* ---- filter expressions -------------------------------------------------------- *)

let suite_filters =
  [
    ("parenthesised path with predicate", check_q "(//title)[2]" [ "Jaws 2" ]);
    ("filter with continuation", check_q "(//movie)[3]/title" [ "Mission: Impossible II" ]);
    ("filter with // continuation", check_q "(//movie)[1]//director" [ "Steven Spielberg" ]);
    ("variable-free filter of literal", check_s "string(('x'))" "x");
  ]

(* ---- errors ---------------------------------------------------------------------- *)

let test_eval_errors () =
  let expect_error q =
    match Eval.eval doc (Parser.parse_exn q) with
    | exception Eval.Eval_error _ -> ()
    | _ -> Alcotest.failf "expected Eval_error for %S" q
  in
  expect_error "$unbound";
  expect_error "unknownfn(1)";
  expect_error "count(1)";
  expect_error "sum('x')";
  expect_error "1 | 2";
  expect_error "some $d in 42 satisfies true()"

let test_vars () =
  let v =
    Eval.eval ~vars:[ ("x", Eval.Num 2.) ] doc (Parser.parse_exn "$x + 3")
  in
  check (Alcotest.float 1e-9) "bound variable" 5. (Eval.number_value v)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let ts l = List.map (fun (n, f) -> t n f) l in
  [
    ( "xpath.lexer",
      [
        t "basic tokens" test_lexer_basic;
        t "qname vs axis separator" test_lexer_qname_vs_axis;
        t "lex errors" test_lexer_errors;
      ] );
    ( "xpath.parser",
      [
        t "precedence" test_parser_precedence;
        t "operator keywords as element names" test_parser_operator_names_as_tags;
        t "roundtrip: paper Q1" (roundtrip {|//movie[.//genre="Horror"]/title|});
        t "roundtrip: paper Q2"
          (roundtrip {|//movie[some $d in .//director satisfies contains($d,"John")]/title|});
        t "roundtrip: arithmetic" (roundtrip "1 + 2 * -3 div (4 mod 5)");
        t "roundtrip: axes" (roundtrip "/a//b/child::c/@d[. = 'x']");
        t "roundtrip: union filter" (roundtrip "(//a | //b)[2]/c");
        t "parse error: empty" (parse_err "");
        t "parse error: dangling slash op" (parse_err "//");
        t "parse error: bad axis" (parse_err "preceding::a");
        t "parse error: unclosed bracket" (parse_err "//a[b");
        t "parse error: trailing tokens" (parse_err "//a )");
      ] );
    ("xpath.paths", ts suite_paths);
    ("xpath.predicates", ts suite_predicates);
    ("xpath.functions", ts suite_functions);
    ("xpath.comparisons", ts suite_comparisons);
    ("xpath.quantified", ts suite_quantified);
    ("xpath.filters", ts suite_filters);
    ("xpath.errors", [ t "eval errors" test_eval_errors; t "variables" test_vars ]);
  ]
