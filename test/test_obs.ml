(* Tests for the telemetry library (lib/obs) and its wiring: registry
   idempotence, snapshot/reset semantics, span nesting under a fake clock
   (no wall clock anywhere in the assertions), the no-sink fast path, JSON
   round-trips, and tagged store-io attribution. *)

module Obs = Imprecise.Obs
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Json = Obs.Json
module Store = Imprecise.Store
module Io = Imprecise.Store.Io
module Oracle = Imprecise.Oracle
module Integrate = Imprecise.Integrate
module Addressbook = Imprecise.Data.Addressbook

let check = Alcotest.check

let feq = Alcotest.float 1e-9

(* ---- metrics ------------------------------------------------------------- *)

let test_counter_idempotent () =
  let r = Metrics.registry () in
  let c1 = Metrics.counter ~registry:r "a" in
  Metrics.incr ~by:2 c1;
  let c2 = Metrics.counter ~registry:r "a" in
  Metrics.incr c2;
  check Alcotest.int "both handles see every increment" 3 (Metrics.count c1);
  check Alcotest.int "same value through either handle" 3 (Metrics.count c2);
  let snap = Metrics.snapshot ~registry:r () in
  check
    Alcotest.(list (pair string int))
    "one entry, not two" [ ("a", 3) ] snap.Metrics.counters

let test_histogram_idempotent () =
  let r = Metrics.registry () in
  let h1 = Metrics.histogram ~registry:r "h" in
  let h2 = Metrics.histogram ~registry:r "h" in
  Metrics.observe h1 2.;
  Metrics.observe h2 6.;
  let s = Metrics.stats h1 in
  check Alcotest.int "observations" 2 s.Metrics.observations;
  check feq "sum" 8. s.Metrics.sum;
  check feq "min" 2. s.Metrics.min;
  check feq "max" 6. s.Metrics.max;
  check feq "mean" 4. (Metrics.mean s)

let test_snapshot_order_and_zeros () =
  let r = Metrics.registry () in
  ignore (Metrics.counter ~registry:r "z.second-alphabetically");
  ignore (Metrics.counter ~registry:r "a.first-alphabetically");
  ignore (Metrics.histogram ~registry:r "h.never-observed");
  let snap = Metrics.snapshot ~registry:r () in
  check
    Alcotest.(list string)
    "registration order, zeros included"
    [ "z.second-alphabetically"; "a.first-alphabetically" ]
    (List.map fst snap.Metrics.counters);
  match snap.Metrics.histograms with
  | [ ("h.never-observed", s) ] ->
      check Alcotest.int "empty histogram listed" 0 s.Metrics.observations
  | _ -> Alcotest.fail "expected exactly the one registered histogram"

let test_snapshot_then_reset () =
  let r = Metrics.registry () in
  let c = Metrics.counter ~registry:r "c" in
  let h = Metrics.histogram ~registry:r "h" in
  Metrics.incr ~by:5 c;
  Metrics.observe h 1.5;
  let before = Metrics.snapshot ~registry:r () in
  Metrics.reset ~registry:r ();
  let after = Metrics.snapshot ~registry:r () in
  check Alcotest.(list (pair string int)) "snapshot kept its values" [ ("c", 5) ]
    before.Metrics.counters;
  check Alcotest.(list (pair string int)) "reset zeroes, keeps the name" [ ("c", 0) ]
    after.Metrics.counters;
  check Alcotest.int "histogram registration survives reset" 1
    (List.length after.Metrics.histograms);
  check Alcotest.int "histogram observations zeroed" 0
    (Metrics.stats h).Metrics.observations;
  (* the handles handed out before the reset still work *)
  Metrics.incr c;
  Metrics.observe h 2.;
  check Alcotest.int "old counter handle still live" 1 (Metrics.count c);
  check Alcotest.int "old histogram handle still live" 1
    (Metrics.stats h).Metrics.observations

(* ---- domain safety -------------------------------------------------------- *)

(* The headline regression of PR 5: counters used to be plain mutable ints,
   so 8 domains racing on one counter lost updates. Atomic fetch-and-add
   must account for every single increment. *)
let test_counter_domain_safe () =
  let r = Metrics.registry () in
  let c = Metrics.counter ~registry:r "stress" in
  let domains = 8 and per_domain = 100_000 in
  let worker () =
    Domain.spawn (fun () ->
        for _ = 1 to per_domain do
          Metrics.incr c
        done)
  in
  let spawned = List.init domains (fun _ -> worker ()) in
  List.iter Domain.join spawned;
  check Alcotest.int "no increment lost across 8 domains" (domains * per_domain)
    (Metrics.count c)

let test_histogram_domain_safe () =
  let r = Metrics.registry () in
  let h = Metrics.histogram ~registry:r "stress.h" in
  let domains = 8 and per_domain = 10_000 in
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              (* distinct values per domain so min/max are exercised too *)
              Metrics.observe h (float_of_int ((d * per_domain) + i))
            done))
  in
  List.iter Domain.join spawned;
  let s = Metrics.stats h in
  check Alcotest.int "no observation lost" (domains * per_domain) s.Metrics.observations;
  check feq "min observed" 1. s.Metrics.min;
  check feq "max observed" (float_of_int (domains * per_domain)) s.Metrics.max;
  let n = float_of_int (domains * per_domain) in
  check feq "sum is exactly 1+2+...+n" (n *. (n +. 1.) /. 2.) s.Metrics.sum

(* Concurrent registration under the registry lock: every domain asking for
   the same name must get the same counter, and distinct names must all
   survive into the snapshot. *)
let test_registration_domain_safe () =
  let r = Metrics.registry () in
  let domains = 8 in
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 100 do
              Metrics.incr (Metrics.counter ~registry:r "shared");
              Metrics.incr (Metrics.counter ~registry:r (Printf.sprintf "own.%d.%d" d i))
            done))
  in
  List.iter Domain.join spawned;
  check Alcotest.int "shared counter exact" (domains * 100)
    (Metrics.count (Metrics.counter ~registry:r "shared"));
  let snap = Metrics.snapshot ~registry:r () in
  check Alcotest.int "every registration survived"
    (1 + (domains * 100))
    (List.length snap.Metrics.counters)

(* ---- tracing ------------------------------------------------------------- *)

(* A deterministic clock: every assertion below is pure arithmetic on the
   ticks, never a wall-clock reading. *)
let fake_clock () =
  let t = ref 0. in
  ((fun () -> !t), fun dt -> t := !t +. dt)

let with_collector now f =
  let sink, roots = Trace.collector () in
  Trace.install ~now sink;
  Fun.protect ~finally:Trace.uninstall (fun () -> f ());
  roots ()

let test_nested_spans_fake_clock () =
  let now, tick = fake_clock () in
  let roots =
    with_collector now (fun () ->
        Trace.with_span "root" (fun () ->
            tick 1.;
            Trace.with_span "child1" (fun () -> tick 2.);
            Trace.with_span "child2" (fun () -> tick 3.);
            tick 1.))
  in
  match roots with
  | [ r ] ->
      check Alcotest.string "root name" "root" r.Trace.name;
      check feq "root start" 0. r.Trace.start;
      check feq "root duration covers children" 7. (Trace.duration r);
      check
        Alcotest.(list string)
        "children attached in start order" [ "child1"; "child2" ]
        (List.map (fun (s : Trace.span) -> s.Trace.name) r.Trace.children);
      let c1 = List.nth r.Trace.children 0 and c2 = List.nth r.Trace.children 1 in
      check feq "child1 interval" 1. c1.Trace.start;
      check feq "child1 duration" 2. (Trace.duration c1);
      check feq "child2 starts where child1 stopped" 3. c2.Trace.start;
      check feq "child2 duration" 3. (Trace.duration c2);
      check Alcotest.int "grandchildren empty" 0 (List.length c1.Trace.children)
  | roots -> Alcotest.failf "expected 1 root span, got %d" (List.length roots)

let test_span_closes_on_exception () =
  let now, tick = fake_clock () in
  let roots =
    with_collector now (fun () ->
        Trace.with_span "outer" (fun () ->
            (try Trace.with_span "boom" (fun () -> tick 1.; failwith "boom")
             with Failure _ -> tick 1.));
        try Trace.with_span "solo" (fun () -> raise Exit) with Exit -> ())
  in
  match roots with
  | [ outer; solo ] ->
      check Alcotest.string "outer first (completion order)" "outer" outer.Trace.name;
      check Alcotest.string "raising root still reported" "solo" solo.Trace.name;
      (match outer.Trace.children with
      | [ boom ] ->
          check Alcotest.string "raising child still attached" "boom" boom.Trace.name;
          check feq "child closed at the raise" 1. (Trace.duration boom)
      | _ -> Alcotest.fail "expected the raising child under its parent")
  | roots -> Alcotest.failf "expected 2 root spans, got %d" (List.length roots)

let test_no_sink_fast_path () =
  Trace.uninstall ();
  check Alcotest.bool "disabled without a sink" false (Trace.enabled ());
  (* spans run while disabled are pure pass-through... *)
  check Alcotest.int "with_span is the identity on its thunk" 42
    (Trace.with_span "ghost" (fun () -> 42));
  (* ...and leave no residue behind for a sink installed later *)
  let now, tick = fake_clock () in
  let roots =
    with_collector now (fun () -> Trace.with_span "real" (fun () -> tick 1.))
  in
  check
    Alcotest.(list string)
    "only spans from the enabled window" [ "real" ]
    (List.map (fun (s : Trace.span) -> s.Trace.name) roots);
  check Alcotest.bool "uninstall disables again" false (Trace.enabled ())

(* Span stacks are domain-local: spans opened inside a spawned domain must
   arrive at the sink as their own root (with their own children intact) and
   must never corrupt the tree of the span open on the spawning domain. *)
let test_spans_domain_local () =
  let now, tick = fake_clock () in
  let roots =
    with_collector now (fun () ->
        Trace.with_span "main" (fun () ->
            tick 1.;
            let d =
              Domain.spawn (fun () ->
                  Trace.with_span "worker" (fun () ->
                      Trace.with_span "inner" (fun () -> tick 1.)))
            in
            Domain.join d;
            (* the worker's spans must not have hijacked main's stack *)
            Trace.with_span "after" (fun () -> tick 1.)))
  in
  let by_name n = List.find_opt (fun (s : Trace.span) -> s.Trace.name = n) roots in
  check Alcotest.int "two roots: worker and main" 2 (List.length roots);
  (match by_name "worker" with
  | Some w ->
      check
        Alcotest.(list string)
        "worker kept its own child" [ "inner" ]
        (List.map (fun (s : Trace.span) -> s.Trace.name) w.Trace.children)
  | None -> Alcotest.fail "worker span missing from the sink");
  match by_name "main" with
  | Some m ->
      check
        Alcotest.(list string)
        "main's tree has only its own child" [ "after" ]
        (List.map (fun (s : Trace.span) -> s.Trace.name) m.Trace.children)
  | None -> Alcotest.fail "main span missing from the sink"

(* ---- json ---------------------------------------------------------------- *)

let json_testable =
  Alcotest.testable (fun ppf j -> Fmt.string ppf (Json.to_string j)) ( = )

let sample =
  Json.Obj
    [
      ("s", Json.String "line\n\"quoted\"\ttab \\ slash");
      ("i", Json.Int (-42));
      ("f", Json.Float 1.5);
      ("b", Json.Bool true);
      ("n", Json.Null);
      ("l", Json.List [ Json.Int 1; Json.Float (-0.25); Json.Obj [] ]);
      ("o", Json.Obj [ ("nested", Json.List []) ]);
    ]

let test_json_roundtrip () =
  let rt s = match Json.parse s with Ok j -> j | Error e -> Alcotest.fail e in
  check json_testable "compact round-trip" sample (rt (Json.to_string sample));
  check json_testable "indented round-trip" sample
    (rt (Json.to_string ~indent:2 sample));
  check
    Alcotest.(option string)
    "member finds a field" (Some "1.5")
    (Option.map Json.to_string (Json.member "f" sample));
  check
    Alcotest.(option string)
    "member on a non-object" None
    (Option.map Json.to_string (Json.member "f" (Json.Int 3)))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

(* [u "0041"] is the six-character JSON escape for U+0041; built from the
   char code so no tooling between here and the compiler can decode the
   escape prematurely. [quoted ss] wraps a concatenation in JSON quotes. *)
let u hex = String.make 1 (Char.chr 0x5c) ^ "u" ^ hex

let quoted ss = {|"|} ^ String.concat "" ss ^ {|"|}

let test_json_unicode_escapes () =
  let parse s = match Json.parse s with Ok j -> j | Error e -> Alcotest.fail e in
  check json_testable "BMP escape" (Json.String "A") (parse (quoted [ u "0041" ]));
  check json_testable "two-byte UTF-8 (e-acute)" (Json.String "\xc3\xa9")
    (parse (quoted [ u "00e9" ]));
  check json_testable "three-byte UTF-8 (euro)" (Json.String "\xe2\x82\xac")
    (parse (quoted [ u "20AC" ]));
  check json_testable "surrogate pair (emoji)" (Json.String "\xf0\x9f\x98\x80")
    (parse (quoted [ u "d83d"; u "de00" ]));
  check json_testable "escape embedded in text" (Json.String "a\xe2\x82\xacb")
    (parse (quoted [ "a"; u "20ac"; "b" ]));
  check json_testable "decoded UTF-8 survives a round-trip"
    (Json.String "\xf0\x9f\x98\x80")
    (parse (Json.to_string (Json.String "\xf0\x9f\x98\x80")))

let test_json_unicode_escape_errors () =
  List.iter
    (fun (label, s) ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %s: %S" label s
      | Error _ -> ())
    [
      ("a lone high surrogate", quoted [ u "d800" ]);
      ("a lone low surrogate", quoted [ u "dc00" ]);
      ("a high surrogate followed by text", quoted [ u "d800"; "abcd" ]);
      ("a high surrogate followed by a non-surrogate escape",
       quoted [ u "d800"; u "0041" ]);
      ("a low surrogate after the pair's low half", quoted [ u "d83d"; u "dc00"; u "dc00" ]);
      ("truncated hex", quoted [ u "00" ]);
      ("a non-hex digit", quoted [ u "00g1" ]);
      ("an underscore where int_of_string would accept it", quoted [ u "0_41" ]);
    ]

(* ---- quantile sketch ------------------------------------------------------- *)

(* The sketch declares ~5% relative error (doc/observability.md); assert a
   slightly looser 5.5% so bucket-boundary rounding can't flake. *)
let within name expected actual =
  let rel = Float.abs (actual -. expected) /. expected in
  if rel > 0.055 then
    Alcotest.failf "%s: estimated %g for true %g (relative error %.3f)" name actual
      expected rel

let test_quantile_accuracy () =
  let q = Obs.Quantile.create () in
  for i = 1 to 10_000 do
    Obs.Quantile.add q (float_of_int i)
  done;
  check Alcotest.int "count" 10_000 (Obs.Quantile.count q);
  within "p50" 5_000. (Obs.Quantile.estimate q 0.5);
  within "p90" 9_000. (Obs.Quantile.estimate q 0.9);
  within "p99" 9_900. (Obs.Quantile.estimate q 0.99);
  Obs.Quantile.clear q;
  check Alcotest.int "cleared" 0 (Obs.Quantile.count q);
  check feq "empty estimate is 0" 0. (Obs.Quantile.estimate q 0.5)

let test_quantile_zeros () =
  let q = Obs.Quantile.create () in
  Obs.Quantile.add q 0.;
  Obs.Quantile.add q (-3.);
  Obs.Quantile.add q 100.;
  check Alcotest.int "zero and negative counted" 3 (Obs.Quantile.count q);
  check feq "p50 lands in the zero bucket" 0. (Obs.Quantile.estimate q 0.5);
  within "p99 still sees the positive tail" 100. (Obs.Quantile.estimate q 0.99)

let test_histogram_quantiles () =
  let r = Metrics.registry () in
  let h = Metrics.histogram ~registry:r "lat" in
  for i = 1 to 1_000 do
    Metrics.observe h (float_of_int i)
  done;
  let s = Metrics.stats h in
  within "stats p50" 500. s.Metrics.p50;
  within "stats p90" 900. s.Metrics.p90;
  within "stats p99" 990. s.Metrics.p99;
  Metrics.reset ~registry:r ();
  let s = Metrics.stats h in
  check feq "reset clears the sketch" 0. s.Metrics.p99

(* ---- rendered output is sorted -------------------------------------------- *)

let index_of hay needle =
  let n = String.length needle in
  let rec go i =
    if i + n > String.length hay then -1
    else if String.sub hay i n = needle then i
    else go (i + 1)
  in
  go 0

let test_rendered_output_sorted () =
  let r = Metrics.registry () in
  ignore (Metrics.counter ~registry:r "z.registered-first");
  ignore (Metrics.counter ~registry:r "a.registered-second");
  Metrics.observe (Metrics.histogram ~registry:r "m.hist") 1.;
  let snap = Metrics.snapshot ~registry:r () in
  (* the snapshot itself keeps registration order (asserted elsewhere)... *)
  let text = Metrics.to_text snap in
  let za = index_of text "z.registered-first" and az = index_of text "a.registered-second" in
  if az < 0 || za < 0 then Alcotest.fail "a rendered counter is missing";
  check Alcotest.bool "...but to_text sorts by name" true (az < za);
  match Metrics.to_json snap with
  | Json.Obj kvs ->
      let keys_of name =
        match List.assoc_opt name kvs with
        | Some (Json.Obj fields) -> List.map fst fields
        | _ -> Alcotest.failf "to_json: %S is not an object" name
      in
      let ckeys = keys_of "counters" in
      check Alcotest.(list string) "to_json counters sorted"
        (List.sort compare ckeys) ckeys
  | _ -> Alcotest.fail "to_json: expected an object"

(* ---- events ---------------------------------------------------------------- *)

let c_emitted = Metrics.counter "obs.events_emitted"

let c_dropped = Metrics.counter "obs.events_dropped"

let event_int name ev =
  match Obs.Event.field name ev with Some (Json.Int i) -> i | _ -> min_int

let test_event_disabled_is_noop () =
  Obs.Event.disable ();
  check Alcotest.bool "disabled" false (Obs.Event.enabled ());
  let e0 = Metrics.count c_emitted in
  Obs.Event.emit ~fields:[ ("x", Json.Int 1) ] "ghost";
  check Alcotest.int "no emission while disabled" e0 (Metrics.count c_emitted);
  check Alcotest.int "emitted () is 0 while disabled" 0 (Obs.Event.emitted ());
  check Alcotest.int "recent () empty while disabled" 0
    (List.length (Obs.Event.recent ()))

let test_event_ring_capacity_and_drops () =
  Obs.Event.enable ~capacity:4 ();
  Fun.protect ~finally:Obs.Event.disable @@ fun () ->
  let e0 = Metrics.count c_emitted and d0 = Metrics.count c_dropped in
  for i = 1 to 6 do
    Obs.Event.emit ~fields:[ ("i", Json.Int i) ] "test.ev"
  done;
  check Alcotest.int "emitted counts every event" 6 (Obs.Event.emitted ());
  check Alcotest.int "obs.events_emitted delta exact" 6 (Metrics.count c_emitted - e0);
  check Alcotest.int "obs.events_dropped = emitted - capacity" 2
    (Metrics.count c_dropped - d0);
  let recents = Obs.Event.recent () in
  check Alcotest.int "capacity respected" 4 (List.length recents);
  check
    Alcotest.(list int)
    "survivors are the newest, oldest first" [ 3; 4; 5; 6 ]
    (List.map (event_int "i") recents);
  List.iter
    (fun ev -> check Alcotest.string "name intact" "test.ev" ev.Obs.Event.name)
    recents

let test_event_json_roundtrip () =
  let ev =
    {
      Obs.Event.ts = 12.5; name = "x.y"; trace_id = 3; span_id = 7;
      fields = [ ("a", Json.Int 1); ("b", Json.String "two") ];
    }
  in
  (match Obs.Event.of_json (Obs.Event.to_json ev) with
  | Ok ev' -> check Alcotest.bool "round-trip preserves the record" true (ev = ev')
  | Error e -> Alcotest.fail e);
  List.iter
    (fun (label, j) ->
      match Obs.Event.of_json j with
      | Ok _ -> Alcotest.failf "accepted %s" label
      | Error _ -> ())
    [
      ("a non-object", Json.Int 3);
      ("a missing ts", Json.Obj [ ("name", Json.String "x") ]);
      ("a missing name", Json.Obj [ ("ts", Json.Float 1.) ]);
      ( "a non-string name",
        Json.Obj [ ("ts", Json.Float 1.); ("name", Json.Int 1) ] );
    ]

(* Astral-plane text (anything above U+FFFF escapes as a surrogate pair in
   JSON) must survive both sides of the pipeline: an event line written by
   an external emitter with \uXXXX pairs decodes to the UTF-8 scalar, and a
   metrics label carrying raw astral UTF-8 survives render + parse. *)
let test_astral_events_and_metric_labels () =
  let emoji = "\xf0\x9f\x98\x80" (* U+1F600 *) in
  let line =
    {|{"ts": 1.5, "name": "user.note", "trace_id": 0, "span_id": 0, "fields": {"text": |}
    ^ quoted [ "integration "; u "d83d"; u "de00" ]
    ^ {|}}|}
  in
  (match Json.parse line with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Obs.Event.of_json j with
      | Error e -> Alcotest.fail e
      | Ok ev ->
          check json_testable "event field decoded the pair to UTF-8"
            (Json.String ("integration " ^ emoji))
            (match Obs.Event.field "text" ev with Some v -> v | None -> Json.Null)));
  let r = Metrics.registry () in
  let name = "docs." ^ emoji ^ ".count" in
  Metrics.incr (Metrics.counter ~registry:r name);
  match Json.parse (Json.to_string (Metrics.to_json (Metrics.snapshot ~registry:r ()))) with
  | Error e -> Alcotest.fail e
  | Ok parsed -> (
      match Json.member "counters" parsed with
      | Some (Json.Obj counters) ->
          check
            Alcotest.(option int)
            "astral metric label survives render + parse" (Some 1)
            (match List.assoc_opt name counters with
            | Some (Json.Int n) -> Some n
            | _ -> None)
      | _ -> Alcotest.fail "snapshot JSON has no counters object")

(* 8 domains hammering one ring: the emitted/dropped counters must both be
   exact, the ring must hold exactly [capacity] survivors, and no survivor
   may be torn (every record well-formed, fields consistent). *)
let test_event_ring_domain_stress () =
  let capacity = 512 in
  Obs.Event.enable ~capacity ();
  Fun.protect ~finally:Obs.Event.disable @@ fun () ->
  let e0 = Metrics.count c_emitted and d0 = Metrics.count c_dropped in
  let domains = 8 and per_domain = 10_000 in
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Event.emit
                ~fields:[ ("d", Json.Int d); ("i", Json.Int i) ]
                "stress.ev"
            done))
  in
  List.iter Domain.join spawned;
  let total = domains * per_domain in
  check Alcotest.int "emitted () exact across 8 domains" total (Obs.Event.emitted ());
  check Alcotest.int "obs.events_emitted delta exact" total
    (Metrics.count c_emitted - e0);
  check Alcotest.int "obs.events_dropped = total - capacity" (total - capacity)
    (Metrics.count c_dropped - d0);
  let recents = Obs.Event.recent () in
  check Alcotest.int "ring holds exactly capacity survivors" capacity
    (List.length recents);
  List.iter
    (fun ev ->
      check Alcotest.string "no torn name" "stress.ev" ev.Obs.Event.name;
      let d = event_int "d" ev and i = event_int "i" ev in
      if d < 0 || d >= domains || i < 1 || i > per_domain then
        Alcotest.failf "torn record: d=%d i=%d" d i)
    recents

(* ---- flight recorder ------------------------------------------------------- *)

let test_recorder_records () =
  let now, tick = fake_clock () in
  Obs.Clock.set now;
  Fun.protect ~finally:(fun () -> Obs.Clock.set Sys.time) @@ fun () ->
  Obs.Recorder.configure ~capacity:8 ~slow_s:2.0 ();
  check feq "slow threshold installed" 2.0 (Obs.Recorder.slow_threshold ());
  let result =
    Obs.Recorder.run ~op:"test.fast" ~detail:"q1" (fun () ->
        Obs.Recorder.note "k" (Json.Int 7);
        tick 1.;
        "answer")
  in
  check Alcotest.string "run is transparent" "answer" result;
  Obs.Recorder.run ~op:"test.slow" (fun () -> tick 3.);
  (try Obs.Recorder.run ~op:"test.err" (fun () -> failwith "kaboom")
   with Failure _ -> ());
  (match Obs.Recorder.recent ~n:3 () with
  | [ err; slow; fast ] ->
      check Alcotest.string "newest first" "test.err" err.Obs.Recorder.op;
      check Alcotest.bool "exception recorded as error outcome" true
        (index_of err.Obs.Recorder.outcome "error" = 0);
      check Alcotest.string "slow op name" "test.slow" slow.Obs.Recorder.op;
      check feq "slow duration from the fake clock" 3. slow.Obs.Recorder.duration;
      check Alcotest.bool "slow flagged" true slow.Obs.Recorder.slow;
      check Alcotest.bool "fast not flagged" false fast.Obs.Recorder.slow;
      check Alcotest.string "detail kept" "q1" fast.Obs.Recorder.detail;
      check Alcotest.string "ok outcome" "ok" fast.Obs.Recorder.outcome;
      (match List.assoc_opt "k" fast.Obs.Recorder.fields with
      | Some (Json.Int 7) -> ()
      | _ -> Alcotest.fail "note lost")
  | rs -> Alcotest.failf "expected 3 records, got %d" (List.length rs));
  check Alcotest.bool "slowest keeps the outlier" true
    (List.exists
       (fun r -> r.Obs.Recorder.op = "test.slow")
       (Obs.Recorder.slowest ()));
  (* a slow op must also emit the force-log event when events are on *)
  Obs.Event.enable ~capacity:64 ();
  Fun.protect ~finally:Obs.Event.disable @@ fun () ->
  Obs.Recorder.run ~op:"test.slow2" (fun () -> tick 5.);
  let names = List.map (fun ev -> ev.Obs.Event.name) (Obs.Event.recent ()) in
  check Alcotest.bool "op completion event" true (List.mem "test.slow2" names);
  check Alcotest.bool "slow_op marker event" true (List.mem "slow_op" names)

(* ---- resilience events ----------------------------------------------------- *)

module Pxml = Imprecise.Pxml
module Pquery = Imprecise.Pquery
module Budget = Imprecise.Resilience.Budget
module Degrade = Imprecise.Resilience.Degrade

(* The PR 7 regression: a budget-tripped query must yield exactly one
   [degrade] event per failed rung, naming it, and the event count must
   equal the resilience.degradations counter delta. *)
let test_degrade_emits_events () =
  (* 2^12 worlds; count() is outside the direct evaluator's class, so the
     exact and top-k rungs must enumerate — and an 8-world budget trips *)
  let doc =
    Pxml.certain
      [
        Pxml.elem "r"
          (List.init 12 (fun i ->
               Pxml.dist
                 [
                   Pxml.choice ~prob:0.5
                     [ Pxml.Elem ("v", [], [ Pxml.certain [ Pxml.Text (string_of_int i) ] ]) ];
                   Pxml.choice ~prob:0.5 [];
                 ]))
      ]
  in
  Obs.Event.enable ~capacity:65536 ();
  Fun.protect ~finally:Obs.Event.disable @@ fun () ->
  let c_deg = Metrics.counter "resilience.degradations" in
  let deg0 = Metrics.count c_deg in
  let budget = Budget.create ~max_worlds:8 () in
  let graded = Pquery.rank_graded ~budget doc "count(//r/v)" in
  (match graded.Degrade.grade with
  | Degrade.Approximate { rung = "sample"; _ } -> ()
  | Degrade.Approximate { rung; _ } -> Alcotest.failf "expected the sample rung, got %s" rung
  | Degrade.Exact -> Alcotest.fail "an 8-world budget cannot rank 4096 worlds exactly");
  let events = Obs.Event.recent () in
  let degrades =
    List.filter (fun ev -> ev.Obs.Event.name = "degrade") events
  in
  let rung ev =
    match Obs.Event.field "rung" ev with Some (Json.String s) -> s | _ -> "?"
  in
  check
    Alcotest.(list string)
    "exactly one degrade event per failed rung, naming it" [ "exact"; "top_k" ]
    (List.map rung degrades);
  check Alcotest.int "degrade events match the degradations counter"
    (Metrics.count c_deg - deg0)
    (List.length degrades);
  check Alcotest.bool "the budget trip emitted its event" true
    (List.exists (fun ev -> ev.Obs.Event.name = "budget.trip") events);
  (* the graded record carries the fallbacks as degraded_from notes *)
  match
    List.find_opt
      (fun r -> r.Obs.Recorder.op = "pquery.rank_graded")
      (Obs.Recorder.recent ())
  with
  | None -> Alcotest.fail "no pquery.rank_graded flight record"
  | Some r ->
      check Alcotest.string "record outcome degraded" "degraded" r.Obs.Recorder.outcome;
      let degraded_from =
        List.filter_map
          (function "degraded_from", Json.String s -> Some s | _ -> None)
          r.Obs.Recorder.fields
      in
      check
        Alcotest.(list string)
        "degraded_from notes in rung order" [ "exact"; "top_k" ] degraded_from

(* ---- tagged store io ------------------------------------------------------ *)

let test_with_tag_scoping () =
  check Alcotest.string "default tag" "io" (Io.current_tag ());
  Io.with_tag "doc" (fun () ->
      check Alcotest.string "inner tag" "doc" (Io.current_tag ());
      Io.with_tag "manifest" (fun () ->
          check Alcotest.string "nested tag" "manifest" (Io.current_tag ()));
      check Alcotest.string "restored after nesting" "doc" (Io.current_tag ()));
  (try Io.with_tag "cleanup" (fun () -> raise Exit) with Exit -> ());
  check Alcotest.string "restored after a raise" "io" (Io.current_tag ())

let obs_dir =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "imprecise-obs-%d" (Unix.getpid ()))
     in
     if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
     dir)

let test_metered_io_attribution () =
  let r = Metrics.registry () in
  let io = Io.metered ~registry:r Io.real in
  let dir = Lazy.force obs_dir in
  let doc = Filename.concat dir "doc.xml" and man = Filename.concat dir "MANIFEST" in
  Io.with_tag "doc" (fun () -> Io.write_file io doc "hello");
  Io.with_tag "manifest" (fun () ->
      Io.write_file io (man ^ ".tmp") "abc";
      Io.rename io ~src:(man ^ ".tmp") ~dst:man);
  ignore (Io.read_file io doc);
  let count name = Metrics.count (Metrics.counter ~registry:r name) in
  check Alcotest.int "total bytes written" 8 (count "store.bytes_written");
  check Alcotest.int "bytes read back" 5 (count "store.bytes_read");
  check Alcotest.int "doc writes attributed" 1 (count "store.writes.doc");
  check Alcotest.int "doc bytes attributed" 5 (count "store.write_bytes.doc");
  check Alcotest.int "manifest writes attributed" 1 (count "store.writes.manifest");
  check Alcotest.int "manifest bytes attributed" 3 (count "store.write_bytes.manifest");
  check Alcotest.int "renames counted" 1 (count "store.renames");
  check Alcotest.int "nothing deleted" 0 (count "store.deletes")

(* ---- end-to-end: the instrumented libraries feed the global registry ------ *)

let test_global_wiring () =
  let c name = Metrics.counter name in
  let pairs = c "integrate.pairs_compared" in
  let decisions = c "oracle.decisions" in
  let saves = c "store.saves" in
  let manifest_writes = c "store.writes.manifest" in
  let p0 = Metrics.count pairs and d0 = Metrics.count decisions in
  let cfg =
    Integrate.config
      ~oracle:(Oracle.make [ Oracle.deep_equal_rule ])
      ~dtd:Addressbook.dtd ()
  in
  let doc =
    match Integrate.integrate cfg Addressbook.source_a Addressbook.source_b with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "integration failed: %a" Integrate.pp_error e
  in
  check Alcotest.bool "integration counted pairs" true (Metrics.count pairs > p0);
  check Alcotest.bool "oracle counted decisions" true (Metrics.count decisions > d0);
  let s0 = Metrics.count saves and m0 = Metrics.count manifest_writes in
  let store = Store.create () in
  Store.put store "doc" (Store.Probabilistic doc);
  let dir = Filename.concat (Lazy.force obs_dir) "store" in
  (match Store.save store ~dir with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save failed: %s" msg);
  check Alcotest.int "save counted itself" (s0 + 1) (Metrics.count saves);
  check Alcotest.bool "manifest commit attributed" true
    (Metrics.count manifest_writes > m0)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "obs.metrics",
      [
        t "counter registration is idempotent" test_counter_idempotent;
        t "histogram registration is idempotent" test_histogram_idempotent;
        t "snapshot: registration order, zeros included" test_snapshot_order_and_zeros;
        t "snapshot then reset" test_snapshot_then_reset;
      ] );
    ( "obs.domains",
      [
        t "8 domains x 100k increments count exactly" test_counter_domain_safe;
        t "parallel histogram observations are exact" test_histogram_domain_safe;
        t "concurrent registration is safe" test_registration_domain_safe;
      ] );
    ( "obs.trace",
      [
        t "nested spans under a fake clock" test_nested_spans_fake_clock;
        t "spans close on exceptions" test_span_closes_on_exception;
        t "no sink: with_span is pass-through" test_no_sink_fast_path;
        t "span stacks are domain-local" test_spans_domain_local;
      ] );
    ( "obs.json",
      [
        t "round-trip through to_string/parse" test_json_roundtrip;
        t "malformed inputs are rejected" test_json_parse_errors;
        t "unicode escapes decode to UTF-8" test_json_unicode_escapes;
        t "malformed surrogate halves are rejected" test_json_unicode_escape_errors;
      ] );
    ( "obs.quantile",
      [
        t "estimates within the declared error bound" test_quantile_accuracy;
        t "zeros and negatives report as 0" test_quantile_zeros;
        t "histogram stats expose p50/p90/p99" test_histogram_quantiles;
        t "to_text/to_json are sorted by metric name" test_rendered_output_sorted;
      ] );
    ( "obs.events",
      [
        t "emit is a no-op while disabled" test_event_disabled_is_noop;
        t "ring capacity and exact drop counting" test_event_ring_capacity_and_drops;
        t "event json round-trip and rejection" test_event_json_roundtrip;
        t "astral-plane text in events and metric labels"
          test_astral_events_and_metric_labels;
        t "8-domain emit stress: exact counters, no torn records"
          test_event_ring_domain_stress;
      ] );
    ( "obs.recorder",
      [
        t "records, notes, outcomes, slow flagging" test_recorder_records;
        t "a budget-tripped query emits one degrade event per rung"
          test_degrade_emits_events;
      ] );
    ( "obs.io",
      [
        t "with_tag is dynamically scoped" test_with_tag_scoping;
        t "metered io attributes ops to tags" test_metered_io_attribution;
        t "integrate/oracle/store feed the global registry" test_global_wiring;
      ] );
  ]
