(* A conformance-style battery for the query engine: coercion corner cases,
   string-function edges, axis interactions, numeric formatting — the cases
   that distinguish an XPath implementation from a toy. Plus parser
   robustness under mutation fuzzing. *)

module Eval = Imprecise.Xpath.Eval
module Parser = Imprecise.Xpath.Parser
module Prng = Imprecise.Data.Prng

let check = Alcotest.check

let doc =
  Imprecise.parse_xml_exn
    {|<root version="2">
        <nums><n>1</n><n>2</n><n>03</n><n>-4</n><n> 5 </n><n>x</n></nums>
        <strs><s>alpha</s><s></s><s>  spaced  </s><s>UPPER</s></strs>
        <dup><v>7</v><v>7</v></dup>
        <deep><a><b><c>leaf</c></b></a></deep>
      </root>|}

let n q expected () = check (Alcotest.float 1e-9) q expected (Eval.eval_number doc q)

let s q expected () = check Alcotest.string q expected (Eval.eval_string doc q)

let b q expected () = check Alcotest.bool q expected (Eval.eval_bool doc q)

let nan q () = check Alcotest.bool q true (Float.is_nan (Eval.eval_number doc q))

let cases =
  [
    (* -- number coercion -- *)
    ("leading zeros parse", n "//nums/n[3] + 0" 3.);
    ("negative numbers", n "//nums/n[4] + 0" (-4.));
    ("whitespace-trimmed numbers", n "//nums/n[5] + 0" 5.);
    ("non-numeric text is NaN", nan "number(//nums/n[6])");
    ("NaN is not equal to itself", b "number('x') = number('x')" false);
    ("NaN != itself is true", b "number('x') != number('x')" true);
    ("NaN comparisons are false", b "number('x') < 1 or number('x') > 1" false);
    ("boolean of NaN is false", b "boolean(number('x'))" false);
    ("number of true", n "number(true())" 1.);
    ("number of empty node-set", nan "number(//missing)");
    ("sum skips nothing (NaN poisons)", nan "sum(//nums/n)");
    ("sum over clean numbers", n "sum(//dup/v)" 14.);
    ("div by zero is infinity", b "1 div 0 > 1000000" true);
    ("negative div by zero", b "-1 div 0 < -1000000" true);
    ("0 div 0 is NaN", nan "0 div 0");
    ("mod sign follows dividend", n "-7 mod 3" (-1.));
    ("float mod", n "5.5 mod 2" 1.5);
    (* -- string coercion and formatting -- *)
    ("integer formatting has no decimal point", s "string(4)" "4");
    ("negative zero", s "string(0 - 0)" "0");
    ("string of boolean", s "string(1 = 1)" "true");
    ("string of node-set takes the first node", s "string(//strs/s)" "alpha");
    ("string of empty node-set", s "string(//missing)" "");
    ("string-length of context node", n "string-length(string(//deep))" 4.);
    (* -- string functions -- *)
    ("substring with NaN start", s "substring('abc', number('x'))" "");
    ("substring rounds per spec", s "substring('12345', 1.5, 2.6)" "234");
    ("substring negative start clamps", s "substring('abc', -1, 3)" "a");
    ("substring-before missing needle", s "substring-before('abc', 'z')" "");
    ("substring-after self", s "substring-after('abc', 'abc')" "");
    ("contains is case-sensitive", b "contains('UPPER', 'upper')" false);
    ("translate shrinking map deletes", s "translate('banana', 'an', 'N')" "bNNN");
    ("normalize-space of element", s "normalize-space(//strs/s[3])" "spaced");
    ("concat coerces", s "concat(1 + 1, '-', true())" "2-true");
    ("string-join on empty set", s "string-join(//missing, ',')" "");
    (* -- boolean semantics -- *)
    ("empty string is false", b "boolean(//strs/s[2])" true);
    (* node-set with one (empty) node is TRUE: existence, not content *)
    ("empty-text node exists", b "boolean(//strs/s[2]) and not(boolean(string(//strs/s[2])))" true);
    ("and short-circuit result", b "false() and (1 div 0 = 0)" false);
    (* -- node-set comparisons -- *)
    ("duplicate values compare once", b "//dup/v = 7" true);
    ("set != same-valued set is false here", b "//dup/v != //dup/v" false);
    ("set vs set existential", b "//nums/n = //dup/v" false);
    ("set less-than picks any witness", b "//nums/n < 0" true);
    ("attribute compares numerically", b "//root/@version + 1 = 3" true);
    ("attribute compares as string", b "/root/@version = '2'" true);
    (* -- axes interactions -- *)
    ("descendant of self", n "count(//deep/descendant::*)" 3.);
    ("descendant-or-self count", n "count(//deep/descendant-or-self::*)" 4.);
    ("parent of root element is not an element", n "count(/root/parent::*)" 0.);
    ("parent of root is the document node", n "count(/root/..)" 1.);
    ("chained parents", s "string(//c/../../../a/b/c)" "leaf");
    ("attribute axis has no children", n "count(//root/@version/node())" 0.);
    ("self on attribute", n "count(//root/@version/.)" 1.);
    ("union with attributes", n "count(//root/@version | //deep)" 2.);
    (* -- predicates -- *)
    ("predicate on empty set", n "count(//missing[1])" 0.);
    ("numeric predicate out of range", n "count(//nums/n[99])" 0.);
    ("predicate chaining preserves positions", s "string(//nums/n[position() > 1][2])" "03");
    ("last() in arithmetic", s "string(//nums/n[last() - 1])" " 5 ");
    ("boolean predicate over attribute", n "count(//root[@version])" 1.);
    ("negated attribute predicate", n "count(//root[not(@missing)])" 1.);
  ]

(* ---- FLWOR and constructor edges ------------------------------------------- *)

let flwor_cases =
  [
    ("for over empty domain", n "count(for $x in //missing return $x)" 0.);
    ("nested for (cross product)", n "count(for $a in //dup/v return (for $b in //dup/v return concat($a, $b)))" 4.);
    ("for body producing atomics becomes text nodes", s
       "string-join(for $v in //dup/v return concat($v, '!'), '-')" "7!-7!");
    ("let shadows outer binding", n "let $x := 1 return (let $x := 2 return $x)" 2.);
    ("if with node-set condition", s "if (//dup) then 'yes' else 'no'" "yes");
    ("constructor inside predicate context", n "count(element w { //dup/v })" 1.);
    ("constructed element has copied children", n "count(element w { //dup/v }/v)" 2.);
    ("constructed text node", s "string(text { 40 + 2 })" "42");
    ("empty constructor", n "count(element empty { }/node())" 0.);
    ("quantifier over constructed set", b
       "some $x in (for $v in //dup/v return $v) satisfies $x = 7" true);
  ]

let flwor_errors =
  [ "for $x in 1 return $x"; "for x in //a return x"; "let $x = 1 return $x";
    "if //a then 1 else 2"; "if (//a) then 1"; "element { 'x' }" ]

let test_flwor_errors () =
  List.iter
    (fun q ->
      match Parser.parse q with
      | Ok ast -> (
          (* a few of these parse but must fail in evaluation *)
          match Eval.eval doc ast with
          | exception Eval.Eval_error _ -> ()
          | _ -> Alcotest.failf "%S accepted and evaluated" q)
      | Error _ -> ())
    flwor_errors

(* ---- parser robustness: mutation fuzzing ---------------------------------- *)

let valid_queries =
  [|
    "//movie[.//genre=\"Horror\"]/title";
    "for $m in //movie where $m/year > 1976 return element e { $m/title }";
    "some $d in .//director satisfies contains($d, 'John')";
    "count(//a[b='c'][2]) + sum(//n) div 2";
    "/a/b/../c/@d | //e[last()]";
  |]

let mutate rng s =
  let n = String.length s in
  if n = 0 then (s, rng)
  else begin
    let i, rng = Prng.int rng n in
    let op, rng = Prng.int rng 3 in
    let s' =
      match op with
      | 0 -> String.sub s 0 i ^ String.sub s (min n (i + 1)) (n - min n (i + 1)) (* delete *)
      | 1 ->
          let c, _ = Prng.pick rng [ "["; "]"; "("; ")"; "$"; "/"; "'"; "{"; "@" ] in
          String.sub s 0 i ^ c ^ String.sub s i (n - i) (* insert *)
      | _ -> String.sub s 0 i ^ "\x01" ^ String.sub s (min n (i + 1)) (n - min n (i + 1))
    in
    (s', rng)
  end

let prop_parser_total_under_mutation =
  QCheck.Test.make ~name:"query parser is total under mutation" ~count:500 QCheck.int
    (fun seed ->
      let rng = Prng.make seed in
      let q, rng = Prng.pick rng (Array.to_list valid_queries) in
      let rounds, rng = Prng.int rng 4 in
      let rec go k q rng = if k = 0 then q else let q, rng = mutate rng q in go (k - 1) q rng in
      let q = go (rounds + 1) q rng in
      match Parser.parse q with Ok _ | Error _ -> true)

let prop_eval_total_on_parse_success =
  (* whatever parses either evaluates or raises Eval_error — never anything
     else *)
  QCheck.Test.make ~name:"evaluator is total on parsed queries" ~count:300 QCheck.int
    (fun seed ->
      let rng = Prng.make seed in
      let q, rng = Prng.pick rng (Array.to_list valid_queries) in
      let q, _ = mutate rng q in
      match Parser.parse q with
      | Error _ -> true
      | Ok expr -> (
          match Eval.eval doc expr with
          | _ -> true
          | exception Eval.Eval_error _ -> true))

(* ---- probabilistic query goldens ------------------------------------------- *)

(* The exact ranked (value, probability) lists for the deterministic demo
   scenarios, pinned value-for-value and in order. Tighter than the pins in
   test_pquery (which tolerate drift): any change to integration weights,
   amalgamation, or ranking shows up here first. Tolerance 1e-6 absorbs
   only float noise. *)
let golden_pquery =
  let movie_doc =
    lazy
      (let wl = Imprecise.Data.Workloads.confusing () in
       let rules = Imprecise.Rulesets.movie ~genre:true ~title:true ~director:true () in
       let cfg =
         Imprecise.Integrate.config ~oracle:rules.oracle ~reconcile:rules.reconcile
           ~dtd:wl.dtd ()
       in
       Result.get_ok
         (Imprecise.Integrate.integrate cfg
            (Imprecise.Data.Workloads.mpeg7_doc wl)
            (Imprecise.Data.Workloads.imdb_doc wl)))
  in
  let fig2_doc =
    lazy
      (let cfg =
         Imprecise.Integrate.config
           ~oracle:(Imprecise.Oracle.make [ Imprecise.Oracle.deep_equal_rule ])
           ~dtd:Imprecise.Data.Addressbook.dtd ()
       in
       Result.get_ok
         (Imprecise.Integrate.integrate cfg Imprecise.Data.Addressbook.source_a
            Imprecise.Data.Addressbook.source_b))
  in
  let golden doc query expected () =
    let got = Imprecise.Pquery.rank (Lazy.force doc) query in
    check Alcotest.int (query ^ ": answer count") (List.length expected) (List.length got);
    List.iteri
      (fun i ((value, prob), (a : Imprecise.Answer.t)) ->
        check Alcotest.string (Fmt.str "%s: value #%d" query i) value a.Imprecise.Answer.value;
        check (Alcotest.float 1e-6) (Fmt.str "%s: P(%s)" query value) prob
          a.Imprecise.Answer.prob)
      (List.combine expected got)
  in
  [
    ( "Q1 horror titles (MPEG-7 x IMDB)",
      golden movie_doc {|//movie[.//genre="Horror"]/title|}
        [ ("Jaws", 1.); ("Jaws 2", 0.97619047619) ] );
    ( "Q2 John-directed titles (MPEG-7 x IMDB)",
      golden movie_doc {|//movie[some $d in .//director satisfies contains($d,"John")]/title|}
        [
          ("Die Hard: With a Vengeance", 1.);
          ("Mission: Impossible II", 0.977852760736);
          ("Mission: Impossible", 0.0804294478528);
          ("Die Hard 2", 0.00819672131148);
        ] );
    ( "fig2 phone numbers",
      golden fig2_doc "//person/tel" [ ("1111", 0.75); ("2222", 0.75) ] );
    ("fig2 names", golden fig2_doc "//person/nm" [ ("John", 1.) ]);
  ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let qc p = QCheck_alcotest.to_alcotest p in
  [
    ("xpath.conformance", List.map (fun (name, f) -> t name f) cases);
    ( "xpath.flwor-edges",
      List.map (fun (name, f) -> t name f) flwor_cases
      @ [ t "malformed FLWOR rejected" test_flwor_errors ] );
    ( "xpath.fuzz",
      [ qc prop_parser_total_under_mutation; qc prop_eval_total_on_parse_success ] );
    ("pquery.golden", List.map (fun (name, f) -> t name f) golden_pquery);
  ]
