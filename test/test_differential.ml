(* Differential fuzz harness: every evaluation strategy must tell the same
   story. Random probabilistic documents (seeded, reproducible) are queried
   with a pool of query shapes, and the answers of the direct evaluator,
   the parallel enumerator, the top-k early-terminating enumerator and the
   answer cache are all compared against sequential world enumeration — the
   reference semantics. The Monte-Carlo sampler is checked for statistical
   convergence separately. Any disagreement prints the reproducing seed and
   query and fails the run.

   The static analyzer rides along: the reference enumeration runs with
   the static-empty prune disabled, so (a) a query the analyzer flags as
   statically empty must enumerate to zero answers (soundness), and (b)
   every pruning strategy below, which runs with the default prune on, is
   differentially compared against the unpruned reference. A precision
   smoke test asserts the paper's golden queries are never flagged on
   their own documents.

   Runs under `dune runtest` and alone via `dune build @fuzz-smoke`; case
   count is overridable through FUZZ_CASES. *)

module Pxml = Imprecise.Pxml
module Worlds = Imprecise.Worlds
module Pquery = Imprecise.Pquery
module Answer = Imprecise.Answer
module Store = Imprecise.Store
module Obs = Imprecise.Obs
module Prng = Imprecise.Data.Prng
module Random_docs = Imprecise.Data.Random_docs
module Summary = Imprecise.Analyze.Summary
module Query_check = Imprecise.Analyze.Query_check
module Cost = Imprecise.Analyze.Cost
module Plan = Imprecise.Analyze.Plan

(* The pool leans on the generator's alphabet (tags a b c item name, words
   x y zz hello 42) so matches are likely. count(...) and some...satisfies
   queries are single-valued: exactly one answer value per world. *)
let queries =
  [|
    "//a";
    "//b";
    "//c";
    "//item";
    "//name";
    "//a/b";
    "//item/name";
    "/a";
    "//a//c";
    "//*";
    "//a[b]";
    {|//a[.="x"]|};
    {|//name[.="hello" or .="y"]|};
    {|//item[name="42"]/b|};
    {|//a[contains(.,"z")]|};
    "//a | //b";
    "//a/..";
    "count(//a)";
    "count(//item | //name)";
    {|some $x in //name satisfies $x = "y"|};
    (* widened direct fragment (PR 9): descendant axes, contains, relative
       paths, positional predicates below the binder, trailing text() *)
    "/descendant::a";
    "//item/descendant::b";
    {|descendant::item[contains(name,"4")]|};
    {|//a[b[1]="x"]|};
    {|//item[name="42"]/b[2]|};
    "//a/text()";
    "item/name";
  |]

let single_valued q =
  String.length q >= 5 && (String.sub q 0 5 = "count" || String.sub q 0 5 = "some ")

let cases =
  match Sys.getenv_opt "FUZZ_CASES" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 600)
  | None -> 600

let failures = ref 0

let pruned_cases = ref 0

let fail seed query fmt =
  incr failures;
  Fmt.epr "FAIL (reproduce: seed %d, query %s)@.  " seed query;
  Fmt.epr (fmt ^^ "@.")

let pp_answers answers = Fmt.str "%a" Answer.pp answers

let agree = Answer.equal ~tolerance:1e-9

let check_case i =
  let seed = i in
  let query = queries.(i mod Array.length queries) in
  let doc = fst (Random_docs.pxml (Prng.make seed) ~depth:2) in
  let world_count = Pxml.world_count doc in
  if world_count > 5000. then false
  else begin
    (* the reference is the raw semantics: the static prune stays off so it
       can act as ground truth for the analyzer itself *)
    let c_worlds = Obs.Metrics.counter "pquery.worlds_enumerated" in
    let worlds_before = Obs.Metrics.count c_worlds in
    let reference =
      Pquery.rank ~strategy:Pquery.Enumerate_only ~static_check:false doc query
    in
    let observed_worlds = Obs.Metrics.count c_worlds - worlds_before in
    (* static analysis soundness: flagged empty ⇒ zero enumerated answers *)
    (match Imprecise.Xpath.Parser.parse query with
    | Error e -> fail seed query "query pool entry does not parse: %s" e
    | Ok expr ->
        if Query_check.statically_empty ~summary:(Summary.of_doc doc) expr then begin
          incr pruned_cases;
          if reference <> [] then
            fail seed query "statically empty, but enumeration found %d answer(s):@.%s"
              (List.length reference) (pp_answers reference)
        end);
    (* properties of the reference itself *)
    List.iter
      (fun (a : Answer.t) ->
        if not (a.Answer.prob > 0. && a.Answer.prob <= 1. +. 1e-9) then
          fail seed query "probability out of (0,1]: %g for %S" a.Answer.prob
            a.Answer.value)
      reference;
    let enumerated, multi_root =
      Seq.fold_left
        (fun (n, multi) (_, forest) -> (n + 1, multi || List.length forest <> 1))
        (0, false) (Worlds.enumerate doc)
    in
    (* count()/some queries produce exactly one value per {e root}; only
       when every world is single-rooted is the query single-valued and its
       total mass bounded by 1 *)
    if single_valued query && not multi_root then begin
      let mass = List.fold_left (fun acc (a : Answer.t) -> acc +. a.Answer.prob) 0. reference in
      if mass > 1. +. 1e-9 then
        fail seed query "single-valued query carries mass %g > 1" mass
    end;
    (* the generator never emits zero-probability choices, so the skip in
       [enumerate] must not change the yield count *)
    if float_of_int enumerated <> world_count then
      fail seed query "world_count %g but enumerate yielded %d worlds" world_count
        enumerated;
    (* direct evaluator, where the query is in its class; the prune stays
       off so a statically-empty query cannot short-circuit past Direct
       (the route certification below needs to know what Direct itself did) *)
    let direct_ok =
      match Pquery.rank ~strategy:Pquery.Direct_only ~static_check:false doc query with
      | direct ->
          if not (agree direct reference) then
            fail seed query "direct disagrees:@.%s@.vs enumeration:@.%s"
              (pp_answers direct) (pp_answers reference);
          true
      | exception Pquery.Cannot_answer _ -> false
    in
    (* static planner certification: the route prediction must agree with
       what the direct evaluator actually did, and the cost model's world
       bound must dominate what enumeration observed *)
    let plan = Pquery.plan doc query in
    (match (plan.Plan.route, direct_ok) with
    | Plan.Direct, false ->
        fail seed query "planner routed direct but the direct evaluator refused"
    | Plan.Enumerate, true ->
        fail seed query "planner routed enumerate (%s) but direct succeeded"
          (String.concat "; "
             (List.map
                (fun (d : Imprecise.Analyze.Diag.t) -> d.Imprecise.Analyze.Diag.code)
                plan.Plan.reasons))
    | Plan.Direct, true | Plan.Enumerate, false -> ());
    if plan.Plan.cost.Cost.worlds +. 1e-9 < float_of_int observed_worlds then
      fail seed query "cost bound violated: predicted <= %g worlds, enumeration observed %d"
        plan.Plan.cost.Cost.worlds observed_worlds;
    (* parallel enumeration: 2 domains always, 4 on a subsample *)
    let jobs_list = if i mod 7 = 0 then [ 2; 4 ] else [ 2 ] in
    List.iter
      (fun jobs ->
        let par = Pquery.rank ~strategy:Pquery.Enumerate_only ~jobs doc query in
        if not (agree par reference) then
          fail seed query "jobs=%d disagrees:@.%s@.vs jobs=1:@.%s" jobs (pp_answers par)
            (pp_answers reference))
      jobs_list;
    (* top-k: the head of the reference ranking, probabilities intact *)
    List.iter
      (fun k ->
        let topk = Pquery.rank ~strategy:Pquery.Enumerate_only ~top_k:k doc query in
        let expected = List.filteri (fun i _ -> i < k) reference in
        if not (agree topk expected) then
          fail seed query "top_k=%d disagrees:@.%s@.vs reference head:@.%s" k
            (pp_answers topk) (pp_answers expected))
      [ 1; 3 ];
    (* the answer cache: a miss computing the reference, then a hit *)
    let hits = Obs.Metrics.counter "pquery.cache.hit" in
    let collection = Printf.sprintf "fuzz%d" i in
    let cached1 =
      Pquery.rank_cached ~strategy:Pquery.Enumerate_only ~collection ~generation:i doc
        query
    in
    let hits_before = Obs.Metrics.count hits in
    let cached2 =
      Pquery.rank_cached ~strategy:Pquery.Enumerate_only ~collection ~generation:i doc
        query
    in
    if Obs.Metrics.count hits <> hits_before + 1 then
      fail seed query "second rank_cached call was not a cache hit";
    if not (agree cached1 reference && agree cached2 reference) then
      fail seed query "cached answers disagree:@.%s@.vs:@.%s" (pp_answers cached2)
        (pp_answers reference);
    true
  end

(* The sampler cannot meet 1e-9; it must converge statistically. With
   n = 4000 the standard error is at most ~0.008, so 0.05 is > 6 sigma. *)
let check_sampling seed =
  let doc = fst (Random_docs.pxml (Prng.make seed) ~depth:2) in
  if Pxml.world_count doc <= 5000. then
    List.iter
      (fun query ->
        let exact = Pquery.rank ~strategy:Pquery.Enumerate_only doc query in
        let sampled =
          Pquery.rank ~strategy:(Pquery.Sample { n = 4000; seed = (seed * 3) + 1 }) doc
            query
        in
        let prob answers v =
          match List.find_opt (fun (a : Answer.t) -> a.Answer.value = v) answers with
          | Some a -> a.Answer.prob
          | None -> 0.
        in
        List.iter
          (fun (a : Answer.t) ->
            let p = prob sampled a.Answer.value in
            if Float.abs (p -. a.Answer.prob) > 0.05 then
              fail seed query "sampling did not converge on %S: exact %.4f, sampled %.4f"
                a.Answer.value a.Answer.prob p)
          exact;
        List.iter
          (fun (a : Answer.t) ->
            if prob exact a.Answer.value = 0. then
              fail seed query "sampler produced impossible value %S (p=%.4f)"
                a.Answer.value a.Answer.prob)
          sampled)
      [ "//a"; "//name"; "count(//a)" ]

(* Precision smoke: the static analyzer must never flag the paper's golden
   queries on the documents they are meant for — a false "empty" there
   would silently prune real answers. *)
let check_precision () =
  let flagged summary q =
    match Imprecise.Xpath.Parser.parse q with
    | Ok e -> Query_check.statically_empty ~summary e
    | Error e ->
        fail 0 q "golden query does not parse: %s" e;
        true
  in
  let assert_clean label summary queries =
    List.iter
      (fun q -> if flagged summary q then fail 0 q "%s golden query flagged empty" label)
      queries
  in
  let module Addressbook = Imprecise.Data.Addressbook in
  let module Workloads = Imprecise.Data.Workloads in
  (match
     Imprecise.integrate ~rules:Imprecise.Rulesets.generic ~dtd:Addressbook.dtd
       Addressbook.source_a Addressbook.source_b
   with
  | Error _ -> fail 0 "fig2" "fig2 integration failed"
  | Ok doc ->
      assert_clean "fig2" (Summary.of_doc doc)
        [ "//person"; "//person/nm"; "//person/tel" ]);
  let wl = Workloads.confusing () in
  let rules = Imprecise.Rulesets.movie ~genre:true ~title:true ~director:true () in
  match
    Imprecise.integrate ~rules ~dtd:wl.Workloads.dtd (Workloads.mpeg7_doc wl)
      (Workloads.imdb_doc wl)
  with
  | Error _ -> fail 0 "§VI" "movie integration failed"
  | Ok doc ->
      assert_clean "§VI" (Summary.of_doc doc)
        [
          {|//movie[.//genre="Horror"]/title|};
          {|//movie[some $d in .//director satisfies contains($d,"John")]/title|};
        ]

let () =
  let ran = ref 0 in
  let skipped = ref 0 in
  for i = 0 to cases - 1 do
    if check_case i then incr ran else incr skipped
  done;
  List.iter check_sampling [ 1; 5; 9 ];
  check_precision ();
  Fmt.pr
    "fuzz: %d differential cases (%d skipped as too large, %d statically pruned), 3 \
     sampling seeds, 2 precision documents, %d disagreements@."
    !ran !skipped !pruned_cases !failures;
  if !failures > 0 then exit 1
