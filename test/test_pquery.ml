(* Tests for probabilistic querying: the amalgamated-answer machinery, the
   world-enumeration reference evaluator, and the direct compositional
   evaluator — cross-checked against each other on unit cases, random
   documents and real integration results. *)

module Tree = Imprecise.Tree
module Pxml = Imprecise.Pxml
module Answer = Imprecise.Answer
module Naive = Imprecise_pquery.Naive
module Direct = Imprecise_pquery.Direct
module Pquery = Imprecise.Pquery
module Oracle = Imprecise.Oracle
module Integrate = Imprecise.Integrate
module Addressbook = Imprecise.Data.Addressbook
module Workloads = Imprecise.Data.Workloads
module Rulesets = Imprecise.Rulesets
module Prng = Imprecise.Data.Prng
module Random_docs = Imprecise.Data.Random_docs

let check = Alcotest.check

let answers_agree ?(tolerance = 1e-9) a b =
  Answer.equal ~tolerance a b

let pp_answers answers = Fmt.str "%a" Answer.pp answers

(* ---- answers ---------------------------------------------------------------- *)

let test_rank_orders () =
  let a = { Answer.value = "b"; prob = 0.5 } in
  let b = { Answer.value = "a"; prob = 0.9 } in
  let c = { Answer.value = "a-tie"; prob = 0.5 } in
  check Alcotest.(list string) "by prob then value" [ "a"; "a-tie"; "b" ]
    (List.map (fun (x : Answer.t) -> x.value) (Answer.rank [ a; b; c ]))

let test_of_prob_map_merges () =
  let answers = Answer.of_prob_map [ ("x", 0.2); ("y", 0.5); ("x", 0.25) ] in
  match answers with
  | [ y; x ] ->
      check Alcotest.string "top" "y" y.Answer.value;
      check (Alcotest.float 1e-9) "merged" 0.45 x.Answer.prob
  | _ -> Alcotest.fail "expected two answers"

(* ---- the figure-2 document --------------------------------------------------- *)

let fig2 =
  let cfg =
    Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) ~dtd:Addressbook.dtd ()
  in
  match Integrate.integrate cfg Addressbook.source_a Addressbook.source_b with
  | Ok doc -> doc
  | Error _ -> assert false

let test_fig2_tel_probabilities () =
  (* Each phone number exists in the no-match world (0.5) and in one of the
     two match sub-worlds (0.25). *)
  let answers = Pquery.rank fig2 "//person/tel" in
  match answers with
  | [ x; y ] ->
      check (Alcotest.float 1e-9) "1111" 0.75 x.Answer.prob;
      check (Alcotest.float 1e-9) "2222" 0.75 y.Answer.prob
  | l -> Alcotest.failf "expected two answers, got %s" (pp_answers l)

let test_fig2_nm_certain () =
  match Pquery.rank fig2 "//person/nm" with
  | [ { Answer.value = "John"; prob } ] -> check (Alcotest.float 1e-9) "certain" 1. prob
  | l -> Alcotest.failf "unexpected: %s" (pp_answers l)

let test_fig2_count_predicate () =
  (* persons = 2 only in the no-match world *)
  match Pquery.rank fig2 "//addressbook[count(person)=2]/person/tel" with
  | answers ->
      List.iter (fun (a : Answer.t) -> check (Alcotest.float 1e-9) a.value 0.5 a.prob) answers;
      check Alcotest.int "both phones" 2 (List.length answers)

let test_strategies_agree_fig2 () =
  List.iter
    (fun q ->
      let d = Pquery.rank ~strategy:Pquery.Direct_only fig2 q in
      let n = Pquery.rank ~strategy:Pquery.Enumerate_only fig2 q in
      if not (answers_agree d n) then
        Alcotest.failf "%s:\ndirect:\n%s\nnaive:\n%s" q (pp_answers d) (pp_answers n))
    [
      "//person/tel";
      "//person/nm";
      "//person[tel='1111']/nm";
      "//person[contains(nm,'Jo')]/tel";
      "//addressbook[count(person)=2]/person/nm";
      "//addressbook/person[not(tel)]/nm";
      "/addressbook/person/tel";
    ]

(* ---- direct evaluator: support detection -------------------------------------- *)

let test_supported () =
  let supported q = Direct.supported (Imprecise.Xpath.Parser.parse_exn q) in
  check Alcotest.bool "paper Q1" true (supported {|//movie[.//genre="Horror"]/title|});
  check Alcotest.bool "paper Q2" true
    (supported {|//movie[some $d in .//director satisfies contains($d,"John")]/title|});
  (* widened fragment (PR 9): relative paths, descendant axes, nested
     positional predicates, trailing text() steps *)
  check Alcotest.bool "relative path" true (supported "movie/title");
  check Alcotest.bool "descendant axis" true (supported "/descendant::movie/title");
  check Alcotest.bool "nested positional" true (supported "//movie/title[1]");
  check Alcotest.bool "trailing text()" true (supported "//movie/title/text()");
  check Alcotest.bool "contains in predicate" true
    (supported {|//movie[contains(title,"x")]/title|});
  (* still rejected: non-paths, positional tests on the binder itself,
     upward axes and absolute paths inside predicates *)
  check Alcotest.bool "non-path" false (supported "1 + 2");
  check Alcotest.bool "leading positional predicate" false (supported "//movie[2]/title");
  check Alcotest.bool "leading position() call" false
    (supported "//movie[position()=1]/title");
  check Alcotest.bool "absolute path in predicate" false (supported "//movie[//x]/title");
  check Alcotest.bool "parent in predicate" false (supported "//movie[../x]/title")

let test_dispatcher_fallback () =
  (* Positional query: Auto must fall back to enumeration and agree with it. *)
  let q = "//person[1]/tel" in
  check Alcotest.string "strategy" "enumerate"
    (match Pquery.used_strategy fig2 q with `Direct -> "direct" | `Enumerate -> "enumerate");
  let auto = Pquery.rank fig2 q in
  let naive = Pquery.rank ~strategy:Pquery.Enumerate_only fig2 q in
  check Alcotest.bool "fallback agrees" true (answers_agree auto naive)

let test_direct_only_raises () =
  match Pquery.rank ~strategy:Pquery.Direct_only fig2 "//person[1]/tel" with
  | exception Pquery.Cannot_answer _ -> ()
  | _ -> Alcotest.fail "expected Cannot_answer"

let test_world_limit () =
  match Pquery.rank ~strategy:Pquery.Enumerate_only ~world_limit:1. fig2 "//person/tel" with
  | exception Pquery.Cannot_answer _ -> ()
  | _ -> Alcotest.fail "expected Cannot_answer on tiny world limit"

(* ---- direct vs naive: property test on random documents ------------------------ *)

let queries_for_property =
  [
    "//a";
    "//item/name";
    "//a[b]/c";
    "//a[contains(., 'x')]";
    "//item[name='hello']/b";
    "/a/b";
    "//name[. = 'x' or . = 'y']";
  ]

let prop_direct_equals_naive =
  let gen =
    QCheck.map
      (fun (seed, qi) ->
        let doc = fst (Random_docs.pxml (Prng.make seed) ~depth:2) in
        (doc, List.nth queries_for_property (qi mod List.length queries_for_property)))
      QCheck.(pair int small_nat)
  in
  QCheck.Test.make ~name:"direct evaluation = world enumeration" ~count:150 gen
    (fun (doc, q) ->
      let expr = Imprecise.Xpath.Parser.parse_exn q in
      match Direct.rank_expr doc expr with
      | exception Direct.Unsupported _ -> QCheck.assume_fail ()
      | direct ->
          let naive = Naive.rank_expr doc expr in
          if answers_agree ~tolerance:1e-6 direct naive then true
          else
            QCheck.Test.fail_reportf "query %s:\ndirect:\n%s\nnaive:\n%s" q
              (pp_answers direct) (pp_answers naive))

let prop_direct_equals_naive_on_integrations =
  (* Random pairs of small documents, integrated, then queried. *)
  let gen =
    QCheck.map
      (fun (seed, qi) ->
        let rng = Prng.make seed in
        let a, rng = Random_docs.xml rng ~depth:2 in
        let b, _ = Random_docs.xml rng ~depth:2 in
        let retag t =
          match t with Tree.Element (_, at, c) -> Tree.Element ("r", at, c) | t -> t
        in
        (retag a, retag b, List.nth queries_for_property (qi mod List.length queries_for_property)))
      QCheck.(pair int small_nat)
  in
  QCheck.Test.make ~name:"direct = enumeration on integration results" ~count:80 gen
    (fun (a, b, q) ->
      let cfg =
        Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) ~max_possibilities:2000 ()
      in
      match Integrate.integrate cfg a b with
      | Error _ -> QCheck.assume_fail ()
      | Ok doc when Pxml.world_count doc > 20000. -> QCheck.assume_fail ()
      | Ok doc -> (
          let expr = Imprecise.Xpath.Parser.parse_exn q in
          match Direct.rank_expr doc expr with
          | exception Direct.Unsupported _ -> QCheck.assume_fail ()
          | direct -> answers_agree ~tolerance:1e-6 direct (Naive.rank_expr doc expr)))

(* ---- answer invariants on random documents ------------------------------------ *)

let random_doc_gen =
  QCheck.map
    (fun (seed, qi) ->
      let doc = fst (Random_docs.pxml (Prng.make seed) ~depth:2) in
      (doc, List.nth queries_for_property (qi mod List.length queries_for_property)))
    QCheck.(pair int small_nat)

let prop_probabilities_in_unit_interval =
  QCheck.Test.make ~name:"answer probabilities lie in (0, 1]" ~count:150 random_doc_gen
    (fun (doc, q) ->
      List.for_all
        (fun (a : Answer.t) -> a.Answer.prob > 0. && a.Answer.prob <= 1. +. 1e-9)
        (Naive.rank doc q))

let prop_world_count_matches_enumeration =
  QCheck.Test.make ~name:"world_count = number of enumerated worlds" ~count:150
    QCheck.int (fun seed ->
      let doc = fst (Random_docs.pxml (Prng.make seed) ~depth:2) in
      let n =
        Seq.fold_left (fun n _ -> n + 1) 0 (Imprecise.Worlds.enumerate doc)
      in
      float_of_int n = Pxml.world_count doc)

let prop_single_valued_mass_bounded =
  (* count() yields exactly one value per root; on single-rooted worlds the
     answer is a distribution over counts and its mass cannot exceed 1. *)
  QCheck.Test.make ~name:"single-valued query mass <= 1" ~count:150 QCheck.int
    (fun seed ->
      let doc = fst (Random_docs.pxml (Prng.make seed) ~depth:2) in
      let single_rooted =
        Seq.for_all
          (fun (_, forest) -> List.length forest = 1)
          (Imprecise.Worlds.enumerate doc)
      in
      if not single_rooted then QCheck.assume_fail ()
      else
        let mass =
          List.fold_left
            (fun acc (a : Answer.t) -> acc +. a.Answer.prob)
            0.
            (Naive.rank doc "count(//a)")
        in
        mass <= 1. +. 1e-9)

(* ---- the parallel and top-k enumeration paths --------------------------------- *)

let prop_parallel_equals_sequential =
  QCheck.Test.make ~name:"jobs=2 enumeration = sequential" ~count:60 random_doc_gen
    (fun (doc, q) ->
      answers_agree (Naive.rank ~jobs:2 doc q) (Naive.rank doc q))

let prop_topk_is_reference_head =
  QCheck.Test.make ~name:"top_k = head of full ranking" ~count:60 random_doc_gen
    (fun (doc, q) ->
      let full = Naive.rank doc q in
      List.for_all
        (fun k ->
          answers_agree
            (Naive.rank ~top_k:k doc q)
            (List.filteri (fun i _ -> i < k) full))
        [ 1; 2; 5 ])

let test_cache_hit_and_invalidation () =
  let store = Imprecise.Store.create () in
  Imprecise.Store.put store "fig2" (Imprecise.Store.Probabilistic fig2);
  let q = "//person/tel" in
  let r1 = Result.get_ok (Imprecise.query_store store "fig2" q) in
  let hits = Imprecise.Obs.Metrics.counter "pquery.cache.hit" in
  let before = Imprecise.Obs.Metrics.count hits in
  let r2 = Result.get_ok (Imprecise.query_store store "fig2" q) in
  check Alcotest.int "second query is a hit" (before + 1) (Imprecise.Obs.Metrics.count hits);
  check Alcotest.bool "hit returns the same answer" true (answers_agree r1 r2);
  (* a put of the same name moves the generation: the next query recomputes *)
  Imprecise.Store.put store "fig2" (Imprecise.Store.Probabilistic fig2);
  let before = Imprecise.Obs.Metrics.count hits in
  let r3 = Result.get_ok (Imprecise.query_store store "fig2" q) in
  check Alcotest.int "after put: not a hit" before (Imprecise.Obs.Metrics.count hits);
  check Alcotest.bool "recomputed answer agrees" true (answers_agree r1 r3);
  match Imprecise.query_store store "missing" q with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error for a missing document"

let test_lru_eviction () =
  let cache = Imprecise_pquery.Cache.create ~capacity:2 () in
  let key n = Imprecise_pquery.Cache.key ~collection:"c" ~generation:n ~variant:"v" ~query:"q" in
  Imprecise_pquery.Cache.add cache (key 1) [];
  Imprecise_pquery.Cache.add cache (key 2) [];
  ignore (Imprecise_pquery.Cache.find cache (key 1));
  Imprecise_pquery.Cache.add cache (key 3) [];
  (* key 2 was least recently used and must be the one evicted *)
  check Alcotest.bool "key 1 kept" true (Imprecise_pquery.Cache.find cache (key 1) <> None);
  check Alcotest.bool "key 2 evicted" true (Imprecise_pquery.Cache.find cache (key 2) = None);
  check Alcotest.bool "key 3 kept" true (Imprecise_pquery.Cache.find cache (key 3) <> None);
  check Alcotest.int "capacity respected" 2 (Imprecise_pquery.Cache.length cache)

(* Regression: the old separator-joined key ("c#g1#v#q") was not injective
   when a field contained the separator — these two entries collided, so a
   cached answer for one query could be served for a different one. The
   length-prefixed key must keep them distinct. *)
let test_key_injective () =
  let k1 = Imprecise_pquery.Cache.key ~collection:"c" ~generation:1 ~variant:"v" ~query:"x#g1#v#x" in
  let k2 = Imprecise_pquery.Cache.key ~collection:"c#g1#v#x" ~generation:1 ~variant:"v" ~query:"x" in
  check Alcotest.bool "fields containing '#' no longer collide" true (k1 <> k2);
  (* a few more adversarial splits of the same rendered text *)
  let k3 = Imprecise_pquery.Cache.key ~collection:"a#g2" ~generation:3 ~variant:"" ~query:"q" in
  let k4 = Imprecise_pquery.Cache.key ~collection:"a" ~generation:2 ~variant:"#g3#" ~query:"q" in
  check Alcotest.bool "generation cannot migrate between fields" true (k3 <> k4);
  let k5 = Imprecise_pquery.Cache.key ~collection:"c" ~generation:1 ~variant:"v#1:q" ~query:"" in
  let k6 = Imprecise_pquery.Cache.key ~collection:"c" ~generation:1 ~variant:"v" ~query:"q" in
  check Alcotest.bool "variant/query boundary is unambiguous" true (k5 <> k6);
  (* identical fields still produce identical keys *)
  check Alcotest.string "key is deterministic" k1
    (Imprecise_pquery.Cache.key ~collection:"c" ~generation:1 ~variant:"v" ~query:"x#g1#v#x")

(* ---- the paper's demo queries (§VI) ---------------------------------------------- *)

let query_doc =
  lazy
    (let wl = Workloads.confusing () in
     let rules = Rulesets.movie ~genre:true ~title:true ~director:true () in
     let cfg =
       Integrate.config ~oracle:rules.oracle ~reconcile:rules.reconcile ~dtd:wl.dtd ()
     in
     match Integrate.integrate cfg (Workloads.mpeg7_doc wl) (Workloads.imdb_doc wl) with
     | Ok doc -> doc
     | Error _ -> assert false)

let test_q1_horror () =
  let answers =
    Pquery.rank (Lazy.force query_doc) {|//movie[.//genre="Horror"]/title|}
  in
  (* Exactly the two Jaws movies, with very high probability — the paper
     reports 97% for both. *)
  match answers with
  | [ a; b ] ->
      check Alcotest.(list string) "the two horror titles" [ "Jaws"; "Jaws 2" ]
        (List.sort String.compare [ a.Answer.value; b.Answer.value ]);
      List.iter
        (fun (x : Answer.t) ->
          check Alcotest.bool (x.value ^ " is near-certain") true (x.prob > 0.85))
        answers
  | l -> Alcotest.failf "expected exactly two answers, got %s" (pp_answers l)

let test_q2_john () =
  let answers =
    Pquery.rank (Lazy.force query_doc)
      {|//movie[some $d in .//director satisfies contains($d,"John")]/title|}
  in
  let prob v =
    match List.find_opt (fun (a : Answer.t) -> a.Answer.value = v) answers with
    | Some a -> a.Answer.prob
    | None -> 0.
  in
  check Alcotest.bool "Die Hard: With a Vengeance certain" true
    (prob "Die Hard: With a Vengeance" > 0.99);
  check Alcotest.bool "Mission: Impossible II near-certain" true
    (prob "Mission: Impossible II" > 0.9);
  let mi = prob "Mission: Impossible" in
  check Alcotest.bool "Mission: Impossible low but possible (the II typo)" true
    (mi > 0.01 && mi < 0.5)

let test_q1_q2_strategies_agree () =
  let doc = Lazy.force query_doc in
  List.iter
    (fun q ->
      let d = Pquery.rank ~strategy:Pquery.Direct_only doc q in
      let n = Pquery.rank ~strategy:Pquery.Enumerate_only ~world_limit:1e7 doc q in
      if not (answers_agree ~tolerance:1e-6 d n) then
        Alcotest.failf "%s disagrees:\ndirect:\n%s\nnaive:\n%s" q (pp_answers d) (pp_answers n))
    [
      {|//movie[.//genre="Horror"]/title|};
      {|//movie[some $d in .//director satisfies contains($d,"John")]/title|};
    ]

let test_query_battery_on_movies () =
  (* A broad battery over the real confusing-integration document: the
     direct evaluator must agree with enumeration wherever it applies. *)
  let doc = Lazy.force query_doc in
  List.iter
    (fun q ->
      let n = Pquery.rank ~strategy:Pquery.Enumerate_only ~world_limit:1e7 doc q in
      match Pquery.rank ~strategy:Pquery.Direct_only doc q with
      | d ->
          if not (answers_agree ~tolerance:1e-6 d n) then
            Alcotest.failf "%s disagrees:\ndirect:\n%s\nnaive:\n%s" q (pp_answers d)
              (pp_answers n)
      | exception Pquery.Cannot_answer _ ->
          (* outside the direct class: enumeration alone must still work *)
          Alcotest.(check bool) (q ^ " enumerable") true (List.length n >= 0))
    [
      "//movie/title";
      "//movie/year";
      "//movie[year=1975]/title";
      "//movie[year>1990]/title";
      {|//movie[genre="Action"]/title|};
      {|//movie[contains(title, "Die")]/director|};
      {|//movie[count(genre)=2]/title|};
      {|//movie[not(genre)]/title|};
      {|//movie[starts-with(title, "Mission")]/year|};
      {|//movie[some $g in genre satisfies $g = "Adventure"]/title|};
      "//movies[count(movie) > 10]/movie[1]/title";
      {|//movie[title = "Jaws"]//director|};
    ]

let test_sample_agrees_coarsely () =
  let doc = Lazy.force query_doc in
  let exact = Pquery.rank doc {|//movie[.//genre="Horror"]/title|} in
  let approx =
    Pquery.rank ~strategy:(Pquery.Sample { n = 3000; seed = 11 }) doc
      {|//movie[.//genre="Horror"]/title|}
  in
  List.iter
    (fun (a : Answer.t) ->
      let p =
        match List.find_opt (fun (x : Answer.t) -> x.value = a.value) approx with
        | Some x -> x.prob
        | None -> 0.
      in
      Alcotest.(check bool) (a.value ^ " within sampling error") true (Float.abs (p -. a.prob) < 0.05))
    exact

let test_explain () =
  let e = Pquery.explain ~k:3 fig2 "//person/tel" "2222" in
  check (Alcotest.float 1e-9) "probability" 0.75 e.Pquery.prob;
  check (Alcotest.float 1e-9) "full mass covered" 1. e.Pquery.covered;
  check Alcotest.int "two supporting worlds" 2 (List.length e.Pquery.supporting);
  check Alcotest.int "one opposing world" 1 (List.length e.Pquery.opposing);
  (* mass of supporting worlds equals the probability when coverage is full *)
  let mass = List.fold_left (fun acc (p, _) -> acc +. p) 0. e.Pquery.supporting in
  check (Alcotest.float 1e-9) "mass consistent" e.Pquery.prob mass;
  (* an impossible value has no supporting worlds *)
  let none = Pquery.explain ~k:3 fig2 "//person/tel" "9999" in
  check (Alcotest.float 1e-9) "impossible" 0. none.Pquery.prob;
  check Alcotest.int "no support" 0 (List.length none.Pquery.supporting)

let test_explain_partial_coverage () =
  (* On the big query document, k=4 covers only part of the mass and says
     so. *)
  let doc = Lazy.force query_doc in
  let e = Pquery.explain ~k:4 doc {|//movie[.//genre="Horror"]/title|} "Jaws" in
  check Alcotest.bool "partial coverage" true (e.Pquery.covered < 1.);
  check Alcotest.int "k worlds" 4
    (List.length e.Pquery.supporting + List.length e.Pquery.opposing);
  check Alcotest.bool "Jaws is near-certain" true (e.Pquery.prob > 0.99)

let test_paper_answers_pinned () =
  (* Regression pins for the §VI reproduction: the workloads are
     deterministic, so these probabilities only move if the algorithm
     does. Tolerances allow harmless numeric drift. *)
  let doc = Lazy.force query_doc in
  let pin answers (value, expected, tol) =
    let p =
      match List.find_opt (fun (a : Answer.t) -> a.Answer.value = value) answers with
      | Some a -> a.Answer.prob
      | None -> 0.
    in
    if Float.abs (p -. expected) > tol then
      Alcotest.failf "%s: expected %.3f±%.3f, got %.3f" value expected tol p
  in
  let a1 = Pquery.rank doc {|//movie[.//genre="Horror"]/title|} in
  List.iter (pin a1) [ ("Jaws", 1.0, 0.01); ("Jaws 2", 0.98, 0.03) ];
  check Alcotest.int "Q1 has exactly two answers" 2 (List.length a1);
  let a2 =
    Pquery.rank doc {|//movie[some $d in .//director satisfies contains($d,"John")]/title|}
  in
  List.iter (pin a2)
    [
      ("Die Hard: With a Vengeance", 1.0, 0.01);
      ("Mission: Impossible II", 0.98, 0.03);
      ("Mission: Impossible", 0.08, 0.06);
    ]

let test_rank_on_certain_equals_plain_query () =
  (* On a certain document, probabilistic ranking degenerates to the plain
     query with probability 1 everywhere. *)
  let tree =
    Imprecise.parse_xml_exn
      "<movies><movie><title>Jaws</title><genre>Horror</genre></movie><movie><title>Heat</title><genre>Crime</genre></movie></movies>"
  in
  let doc = Pxml.doc_of_tree tree in
  List.iter
    (fun q ->
      let ranked = Pquery.rank doc q in
      let plain = List.sort_uniq String.compare (Imprecise.query_certain tree q) in
      check Alcotest.(list string) (q ^ " values") plain
        (List.sort String.compare (List.map (fun (a : Answer.t) -> a.Answer.value) ranked));
      List.iter (fun (a : Answer.t) -> check (Alcotest.float 1e-9) a.value 1. a.prob) ranked)
    [ "//movie/title"; {|//movie[genre="Horror"]/title|}; "//movie/genre" ]

(* Regression: a rank_cached call whose budget trips mid-enumeration must
   not populate the cache with whatever it had accumulated — the next call
   would serve a truncated ranking as if it were the document's answer.
   Exceptions must leave the cache exactly as it was. *)
let test_cancelled_query_cannot_poison_cache () =
  let module Budget = Imprecise.Resilience.Budget in
  let module Cache = Imprecise_pquery.Cache in
  (* 2^12 worlds: plenty to be mid-flight when a 40-world budget trips *)
  let doc =
    Pxml.certain
      [
        Pxml.elem "r"
          (List.init 12 (fun i ->
               Pxml.dist
                 [
                   Pxml.choice ~prob:0.5
                     [ Pxml.Elem ("v", [], [ Pxml.certain [ Pxml.Text (string_of_int i) ] ]) ];
                   Pxml.choice ~prob:0.5 [];
                 ]))
      ]
  in
  let query = "//r/v" in
  let len0 = Cache.length Cache.global in
  let budget = Budget.create ~max_worlds:40 () in
  (match
     Pquery.rank_cached ~budget ~strategy:Pquery.Enumerate_only ~collection:"poison-test"
       ~generation:1 doc query
   with
  | _ -> Alcotest.fail "40 worlds cannot enumerate 2^12"
  | exception Budget.Exceeded _ -> ());
  check Alcotest.int "tripped query left the cache untouched" len0
    (Cache.length Cache.global);
  (* the same key, uncancelled: a full recomputation (no hit), and the
     answer must be the exact ranking, not a cancelled run's leftovers *)
  let hits = Imprecise.Obs.Metrics.counter "pquery.cache.hit" in
  let hits0 = Imprecise.Obs.Metrics.count hits in
  let answers =
    Pquery.rank_cached ~strategy:Pquery.Enumerate_only ~collection:"poison-test"
      ~generation:1 doc query
  in
  check Alcotest.int "recomputed, not served from cache" hits0
    (Imprecise.Obs.Metrics.count hits);
  check Alcotest.bool "recomputed answer is the exact ranking" true
    (answers_agree answers (Pquery.rank ~strategy:Pquery.Enumerate_only doc query))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let s name f = Alcotest.test_case name `Slow f in
  let q p = QCheck_alcotest.to_alcotest p in
  [
    ( "pquery.answers",
      [ t "ranking order" test_rank_orders; t "of_prob_map merges" test_of_prob_map_merges ] );
    ( "pquery.fig2",
      [
        t "phone probabilities" test_fig2_tel_probabilities;
        t "certain name" test_fig2_nm_certain;
        t "count predicate" test_fig2_count_predicate;
        t "direct = enumeration on a query battery" test_strategies_agree_fig2;
      ] );
    ( "pquery.direct",
      [
        t "supported query class" test_supported;
        t "dispatcher falls back" test_dispatcher_fallback;
        t "Direct_only raises on unsupported" test_direct_only_raises;
        t "world limit enforced" test_world_limit;
        q prop_direct_equals_naive;
        q prop_direct_equals_naive_on_integrations;
      ] );
    ( "pquery.invariants",
      [
        q prop_probabilities_in_unit_interval;
        q prop_world_count_matches_enumeration;
        q prop_single_valued_mass_bounded;
      ] );
    ( "pquery.scale",
      [
        q prop_parallel_equals_sequential;
        q prop_topk_is_reference_head;
        t "cache hits and generation invalidation" test_cache_hit_and_invalidation;
        t "LRU eviction order" test_lru_eviction;
        t "composite key is injective" test_key_injective;
        t "cancelled queries cannot poison the cache" test_cancelled_query_cannot_poison_cache;
      ] );
    ( "pquery.paper",
      [
        t "Q1: horror movies" test_q1_horror;
        t "Q2: movies directed by a John" test_q2_john;
        s "Q1/Q2: evaluators agree" test_q1_q2_strategies_agree;
        s "broad query battery agrees" test_query_battery_on_movies;
        t "explanations" test_explain;
        t "paper answers pinned (regression)" test_paper_answers_pinned;
        t "certain documents rank like plain queries" test_rank_on_certain_equals_plain_query;
        s "explanations with partial coverage" test_explain_partial_coverage;
        s "sampling agrees within error" test_sample_agrees_coarsely;
      ] );
  ]
