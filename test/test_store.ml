(* Tests for the document store: CRUD, name validation, and persistence of
   both certain and probabilistic documents. *)

module Store = Imprecise.Store
module Tree = Imprecise.Tree
module Pxml = Imprecise.Pxml
module Oracle = Imprecise.Oracle
module Integrate = Imprecise.Integrate
module Addressbook = Imprecise.Data.Addressbook

let check = Alcotest.check

let tree = Imprecise.parse_xml_exn "<catalog><item>x</item></catalog>"

let pdoc =
  let cfg =
    Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) ~dtd:Addressbook.dtd ()
  in
  Result.get_ok (Integrate.integrate cfg Addressbook.source_a Addressbook.source_b)

let test_crud () =
  let s = Store.create () in
  check Alcotest.int "empty" 0 (Store.size s);
  Store.put s "catalog" (Store.Certain tree);
  Store.put s "john" (Store.Probabilistic pdoc);
  check Alcotest.int "two docs" 2 (Store.size s);
  check Alcotest.(list string) "insertion order" [ "catalog"; "john" ] (Store.names s);
  check Alcotest.bool "mem" true (Store.mem s "catalog");
  (match Store.get_certain s "catalog" with
  | Some t -> check Alcotest.bool "same tree" true (Tree.deep_equal tree t)
  | None -> Alcotest.fail "missing");
  check Alcotest.bool "typed getter mismatches" true (Store.get_certain s "john" = None);
  (match Store.get_probabilistic s "john" with
  | Some d -> check Alcotest.bool "same doc" true (Pxml.equal pdoc d)
  | None -> Alcotest.fail "missing");
  Store.put s "catalog" (Store.Certain (Tree.element "catalog" []));
  check Alcotest.int "replace keeps size" 2 (Store.size s);
  Store.remove s "catalog";
  check Alcotest.bool "removed" false (Store.mem s "catalog");
  check Alcotest.(list string) "order updated" [ "john" ] (Store.names s)

let test_name_validation () =
  let s = Store.create () in
  List.iter
    (fun name ->
      match Store.put s name (Store.Certain tree) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "accepted bad name %S" name)
    [ ""; "a/b"; "a b"; "../evil"; "a\n" ]

let test_save_load_roundtrip () =
  let s = Store.create () in
  Store.put s "catalog" (Store.Certain tree);
  Store.put s "john" (Store.Probabilistic pdoc);
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "imprecise-store-test" in
  (match Store.save s ~dir with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save failed: %s" msg);
  match Store.load ~dir with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok s' -> (
      check Alcotest.int "both docs back" 2 (Store.size s');
      (match Store.get_certain s' "catalog" with
      | Some t -> check Alcotest.bool "certain round-trips" true (Tree.deep_equal tree t)
      | None -> Alcotest.fail "catalog missing or mistyped");
      match Store.get_probabilistic s' "john" with
      | Some d -> check Alcotest.bool "probabilistic round-trips" true (Pxml.equal pdoc d)
      | None -> Alcotest.fail "john missing or mistyped")

let test_load_ignores_non_xml () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "imprecise-mixed-files" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name content =
    let oc = open_out (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  write "notes.txt" "not xml at all <<<";
  write "data.xml" "<catalog><item>x</item></catalog>";
  (match Store.load ~dir with
  | Ok s ->
      check Alcotest.int "only the xml file" 1 (Store.size s);
      check Alcotest.bool "named after the file" true (Store.mem s "data")
  | Error msg -> Alcotest.failf "load failed: %s" msg);
  Sys.remove (Filename.concat dir "notes.txt");
  Sys.remove (Filename.concat dir "data.xml")

let test_load_missing_dir () =
  match Store.load ~dir:"/nonexistent/imprecise" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "store",
      [
        t "put/get/remove/list" test_crud;
        t "name validation" test_name_validation;
        t "save/load roundtrip" test_save_load_roundtrip;
        t "loading a missing directory fails" test_load_missing_dir;
        t "load ignores non-XML files" test_load_ignores_non_xml;
      ] );
  ]
