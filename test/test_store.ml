(* Tests for the document store: CRUD, name validation, and crash-safe
   persistence of both certain and probabilistic documents. The fault-
   injection crash matrix lives in test_crash.ml (dune alias @crash). *)

module Store = Imprecise.Store
module Tree = Imprecise.Tree
module Pxml = Imprecise.Pxml
module Worlds = Imprecise.Worlds
module Oracle = Imprecise.Oracle
module Integrate = Imprecise.Integrate
module Addressbook = Imprecise.Data.Addressbook

let check = Alcotest.check

let tree = Imprecise.parse_xml_exn "<catalog><item>x</item></catalog>"

let pdoc =
  let cfg =
    Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) ~dtd:Addressbook.dtd ()
  in
  Result.get_ok (Integrate.integrate cfg Addressbook.source_a Addressbook.source_b)

(* Every test gets its own directory so salvage-mode quarantines cannot
   leak between tests or runs. *)
let dir_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "imprecise-store-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  dir

let write_raw dir name content =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin (Filename.concat dir name) in
  output_string oc content;
  close_out oc

let save_exn s dir =
  match Store.save s ~dir with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save failed: %s" msg

let load_exn ?mode ?quarantine dir =
  match Store.load ?mode ?quarantine dir with
  | Ok (s, report) -> (s, report)
  | Error msg -> Alcotest.failf "load failed: %s" msg

let dir_has dir pred = Array.exists pred (Sys.readdir dir)

let test_crud () =
  let s = Store.create () in
  check Alcotest.int "empty" 0 (Store.size s);
  Store.put s "catalog" (Store.Certain tree);
  Store.put s "john" (Store.Probabilistic pdoc);
  check Alcotest.int "two docs" 2 (Store.size s);
  check Alcotest.(list string) "insertion order" [ "catalog"; "john" ] (Store.names s);
  check Alcotest.bool "mem" true (Store.mem s "catalog");
  (match Store.get_certain s "catalog" with
  | Some t -> check Alcotest.bool "same tree" true (Tree.deep_equal tree t)
  | None -> Alcotest.fail "missing");
  check Alcotest.bool "typed getter mismatches" true (Store.get_certain s "john" = None);
  (match Store.get_probabilistic s "john" with
  | Some d -> check Alcotest.bool "same doc" true (Pxml.equal pdoc d)
  | None -> Alcotest.fail "missing");
  Store.put s "catalog" (Store.Certain (Tree.element "catalog" []));
  check Alcotest.int "replace keeps size" 2 (Store.size s);
  Store.remove s "catalog";
  check Alcotest.bool "removed" false (Store.mem s "catalog");
  check Alcotest.(list string) "order updated" [ "john" ] (Store.names s)

let test_name_validation () =
  let s = Store.create () in
  List.iter
    (fun name ->
      match Store.put s name (Store.Certain tree) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "accepted bad name %S" name)
    [ ""; "a/b"; "a b"; "../evil"; "a\n" ]

(* Regression: put used to append with [t.order @ [name]], making N puts
   O(N^2). The rewrite must stay O(1) per put and keep insertion-order
   semantics across removes and re-puts. *)
let test_insertion_order_at_scale () =
  let s = Store.create () in
  let names = List.init 5000 (Printf.sprintf "doc-%04d") in
  List.iter (fun n -> Store.put s n (Store.Certain tree)) names;
  check Alcotest.int "all inserted" 5000 (Store.size s);
  check Alcotest.(list string) "insertion order kept" names (Store.names s);
  (* replacing does not move a document *)
  Store.put s "doc-0000" (Store.Certain (Tree.element "r" []));
  check Alcotest.string "replace keeps position" "doc-0000" (List.hd (Store.names s));
  (* remove + re-put moves it to the end *)
  Store.remove s "doc-2500";
  Store.put s "doc-2500" (Store.Certain tree);
  check Alcotest.string "re-put goes last" "doc-2500"
    (List.nth (Store.names s) (Store.size s - 1))

let test_save_load_roundtrip () =
  let s = Store.create () in
  Store.put s "catalog" (Store.Certain tree);
  Store.put s "john" (Store.Probabilistic pdoc);
  let dir = fresh_dir () in
  save_exn s dir;
  check Alcotest.bool "manifest written" true
    (Sys.file_exists (Filename.concat dir "MANIFEST"));
  let s', report = load_exn dir in
  check Alcotest.bool "clean recovery" true (Store.recovered_all report);
  check Alcotest.bool "manifest verified" true (report.Store.manifest = `Ok);
  check Alcotest.int "both docs back" 2 (Store.size s');
  (match Store.get_certain s' "catalog" with
  | Some t -> check Alcotest.bool "certain round-trips" true (Tree.deep_equal tree t)
  | None -> Alcotest.fail "catalog missing or mistyped");
  match Store.get_probabilistic s' "john" with
  | Some d -> check Alcotest.bool "probabilistic round-trips" true (Pxml.equal pdoc d)
  | None -> Alcotest.fail "john missing or mistyped"

(* Regression: save never deleted files of removed documents, so
   remove + save + load resurrected them from stale files. *)
let test_removed_documents_stay_removed () =
  let dir = fresh_dir () in
  let s = Store.create () in
  Store.put s "keep" (Store.Certain tree);
  Store.put s "gone" (Store.Certain tree);
  save_exn s dir;
  Store.remove s "gone";
  save_exn s dir;
  check Alcotest.bool "stale file deleted" false
    (dir_has dir (fun f -> Astring_contains.contains f "gone"));
  let s', report = load_exn dir in
  check Alcotest.bool "clean recovery" true (Store.recovered_all report);
  check Alcotest.bool "survivor present" true (Store.mem s' "keep");
  check Alcotest.bool "removed document stays removed" false (Store.mem s' "gone")

(* Regression: an .xml file whose basename fails valid_name used to make
   put raise Invalid_argument inside load, escaping the result contract. *)
let test_invalid_name_file_handled_gracefully () =
  let dir = fresh_dir () in
  write_raw dir "bad name.xml" "<r/>";
  write_raw dir "good.xml" "<r/>";
  (match Store.load ~mode:Store.Strict dir with
  | Error msg ->
      check Alcotest.bool "error names the file" true
        (Astring_contains.contains msg "bad name")
  | Ok _ -> Alcotest.fail "strict load accepted an invalid document name");
  let s, report = load_exn ~quarantine:true dir in
  check Alcotest.bool "good document recovered" true (Store.mem s "good");
  check Alcotest.int "only the good document" 1 (Store.size s);
  (match List.assoc_opt "bad name" report.Store.docs with
  | Some (Store.Quarantined _) -> ()
  | _ -> Alcotest.fail "invalid-name file not quarantined");
  check Alcotest.bool "bytes kept under .corrupt" true
    (Sys.file_exists (Filename.concat dir "bad name.xml.corrupt"))

(* World probabilities of a probabilistic document must survive persistence
   bit for bit (the codec prints them with %.17g), unicode and XML special
   characters included. *)
let test_probabilistic_bit_for_bit_roundtrip () =
  let doc =
    Pxml.certain
      [
        Pxml.Elem
          ( "catalog",
            [ ("label", {|"π & <spice>" — Zoë's|}) ],
            [
              Pxml.dist
                [
                  Pxml.choice ~prob:(1. /. 3.) [ Pxml.Text "कथा & <Context>" ];
                  Pxml.choice ~prob:(2. /. 3.)
                    [ Pxml.Elem ("entry", [], [ Pxml.certain [ Pxml.Text "Bjørn Ångström" ] ]) ];
                ];
              Pxml.dist
                [
                  Pxml.choice ~prob:0.1 [ Pxml.Text "a]]>b" ];
                  Pxml.choice ~prob:0.9 [ Pxml.Text "newline\nand\ttab" ];
                ];
            ] );
      ]
  in
  let dir = fresh_dir () in
  let s = Store.create () in
  Store.put s "messy" (Store.Probabilistic doc);
  save_exn s dir;
  let s', report = load_exn dir in
  check Alcotest.bool "clean recovery" true (Store.recovered_all report);
  match Store.get_probabilistic s' "messy" with
  | None -> Alcotest.fail "document lost or mistyped"
  | Some doc' ->
      check Alcotest.bool "structurally equal" true (Pxml.equal doc doc');
      let ws = Worlds.merged doc and ws' = Worlds.merged doc' in
      check Alcotest.int "same number of worlds" (List.length ws) (List.length ws');
      List.iter2
        (fun (p, forest) (p', forest') ->
          check Alcotest.bool "world probability bit-for-bit" true (p = p');
          check Alcotest.bool "world content intact" true
            (List.for_all2 Tree.deep_equal forest forest'))
        ws ws'

let test_load_ignores_non_xml () =
  let dir = fresh_dir () in
  write_raw dir "notes.txt" "not xml at all <<<";
  write_raw dir "data.xml" "<catalog><item>x</item></catalog>";
  let s, report = load_exn dir in
  check Alcotest.int "only the xml file" 1 (Store.size s);
  check Alcotest.bool "named after the file" true (Store.mem s "data");
  check Alcotest.bool "legacy directory flagged" true (report.Store.manifest = `Absent)

let test_load_missing_dir () =
  match Store.load "/nonexistent/imprecise" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

(* A corrupted document is quarantined with a reason in salvage mode and
   aborts a strict load; the manifest pins down exactly what was lost. *)
let test_corrupted_file_quarantined () =
  let dir = fresh_dir () in
  let s = Store.create () in
  Store.put s "alpha" (Store.Certain tree);
  Store.put s "beta" (Store.Certain (Tree.element "beta" []));
  save_exn s dir;
  (* flip bytes behind the store's back (the first save writes gen 1) *)
  write_raw dir "alpha.g1.xml" "<catalog><item>tampered</item></catalog>";
  (match Store.load ~mode:Store.Strict dir with
  | Error msg ->
      check Alcotest.bool "strict reports checksum" true
        (Astring_contains.contains msg "checksum")
  | Ok _ -> Alcotest.fail "strict load accepted tampered bytes");
  let s', report = load_exn dir in
  check Alcotest.bool "intact doc recovered" true (Store.mem s' "beta");
  check Alcotest.bool "tampered doc never returned" false (Store.mem s' "alpha");
  (match List.assoc_opt "alpha" report.Store.docs with
  | Some (Store.Quarantined reason) ->
      check Alcotest.bool "reason mentions checksum" true
        (Astring_contains.contains reason "checksum")
  | _ -> Alcotest.fail "tampered doc not quarantined");
  (* the default load left the damaged bytes where they were *)
  check Alcotest.bool "read-only load moves nothing" true
    (Sys.file_exists (Filename.concat dir "alpha.g1.xml"));
  let _ = load_exn ~quarantine:true dir in
  check Alcotest.bool "bytes preserved under .corrupt" true
    (Sys.file_exists (Filename.concat dir "alpha.g1.xml.corrupt"));
  check Alcotest.bool "damaged file moved aside" false
    (Sys.file_exists (Filename.concat dir "alpha.g1.xml"))

(* A manifest that fails its own checksum is quarantined and the directory
   degrades to face-value loading rather than refusing wholesale. *)
let test_corrupt_manifest_salvaged () =
  let dir = fresh_dir () in
  let s = Store.create () in
  Store.put s "alpha" (Store.Certain tree);
  save_exn s dir;
  write_raw dir "MANIFEST" "imprecise-manifest 1\ngarbage\n";
  (match Store.load ~mode:Store.Strict dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict load accepted a corrupt manifest");
  let s', report = load_exn ~quarantine:true dir in
  (match report.Store.manifest with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "corrupt manifest not reported");
  check Alcotest.bool "document still salvaged" true (Store.mem s' "alpha");
  check Alcotest.bool "manifest quarantined" true
    (Sys.file_exists (Filename.concat dir "MANIFEST.corrupt"))

(* Regression: save's post-commit cleanup used to delete every .xml file it
   did not recognise, silently destroying foreign user files. Cleanup may
   only touch store-owned names (previous manifest files, generation files,
   staging leftovers); loads report foreign files but never move them. *)
let test_foreign_files_never_deleted () =
  let dir = fresh_dir () in
  let s = Store.create () in
  Store.put s "alpha" (Store.Certain tree);
  save_exn s dir;
  write_raw dir "notes.xml" "<notes>user data, not ours</notes>";
  write_raw dir "todo.txt" "plain text";
  Store.put s "beta" (Store.Certain (Tree.element "beta" []));
  save_exn s dir;
  check Alcotest.bool "foreign xml survives save" true
    (Sys.file_exists (Filename.concat dir "notes.xml"));
  check Alcotest.bool "foreign txt survives save" true
    (Sys.file_exists (Filename.concat dir "todo.txt"));
  let s', report = load_exn dir in
  check Alcotest.bool "foreign xml never loaded" false (Store.mem s' "notes");
  (match List.assoc_opt "notes.xml" report.Store.docs with
  | Some (Store.Quarantined _) -> ()
  | _ -> Alcotest.fail "foreign xml not reported");
  check Alcotest.bool "read-only load leaves it in place" true
    (Sys.file_exists (Filename.concat dir "notes.xml"))

(* The default load has no write side effects: damage is reported but every
   byte stays exactly where it was until someone opts into quarantining. *)
let test_default_load_is_read_only () =
  let dir = fresh_dir () in
  let s = Store.create () in
  Store.put s "alpha" (Store.Certain tree);
  save_exn s dir;
  write_raw dir "alpha.g1.xml" "torn garbage <<<";
  write_raw dir "beta.g7.xml.tmp" "interrupted staging";
  let before = List.sort String.compare (Array.to_list (Sys.readdir dir)) in
  let s', report = load_exn dir in
  check Alcotest.bool "damaged doc not returned" false (Store.mem s' "alpha");
  check Alcotest.bool "damage reported" true
    (List.exists (fun (_, o) -> o <> Store.Recovered) report.Store.docs);
  let after = List.sort String.compare (Array.to_list (Sys.readdir dir)) in
  check Alcotest.(list string) "directory untouched" before after

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "store",
      [
        t "put/get/remove/list" test_crud;
        t "name validation" test_name_validation;
        t "insertion order at scale (put is O(1))" test_insertion_order_at_scale;
        t "save/load roundtrip" test_save_load_roundtrip;
        t "removed documents stay removed" test_removed_documents_stay_removed;
        t "invalid-name files handled gracefully" test_invalid_name_file_handled_gracefully;
        t "probabilistic round-trip is bit-for-bit" test_probabilistic_bit_for_bit_roundtrip;
        t "loading a missing directory fails" test_load_missing_dir;
        t "load ignores non-XML files" test_load_ignores_non_xml;
        t "corrupted file quarantined, not returned" test_corrupted_file_quarantined;
        t "corrupt manifest salvaged" test_corrupt_manifest_salvaged;
        t "foreign files are never deleted" test_foreign_files_never_deleted;
        t "default load is read-only" test_default_load_is_read_only;
      ] );
  ]
