(* Entry point: every library's suite in one alcotest binary. *)
let () =
  Alcotest.run "imprecise"
    (Test_xml.suite @ Test_pxml.suite @ Test_xpath.suite @ Test_oracle.suite
   @ Test_integrate.suite @ Test_pquery.suite @ Test_quality.suite
   @ Test_feedback.suite @ Test_data.suite @ Test_store.suite @ Test_obs.suite
   @ Test_core.suite @ Test_extensions.suite @ Test_publications.suite
   @ Test_conformance.suite @ Test_robustness.suite @ Test_analyze.suite)
