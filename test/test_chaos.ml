(* Cross-subsystem chaos harness.

   Every scenario scripts faults — transient or persistent IO failures,
   deadline expiry, work-budget exhaustion, explicit cancellation, mid-fold
   source failures — against a real subsystem (store persistence,
   integration, probabilistic querying, or the whole pipeline) and asserts
   the resilience contract: the operation either succeeds, fails with a
   clean typed error, or returns a sound degraded answer. Never a crash,
   never a corrupted store, never a poisoned cache.

     dune build @chaos       runs only this harness
     dune runtest            includes it

   Faults are driven by Imprecise.Resilience.Chaos plans feeding
   Store.Io.flaky; deadlines use injected fake clocks, and retry backoff
   sleeps are recorded rather than slept, so the whole harness is
   deterministic (one real-clock halt-timing scenario excepted). *)

module Store = Imprecise.Store
module Io = Imprecise.Store.Io
module Tree = Imprecise.Tree
module Pxml = Imprecise.Pxml
module Pquery = Imprecise.Pquery
module Answer = Imprecise.Answer
module Integrate = Imprecise.Integrate
module Budget = Imprecise.Resilience.Budget
module Retry = Imprecise.Resilience.Retry
module Degrade = Imprecise.Resilience.Degrade
module Chaos = Imprecise.Resilience.Chaos
module Obs = Imprecise.Obs
module Prng = Imprecise.Data.Prng
module Random_docs = Imprecise.Data.Random_docs
module Cache = Imprecise_pquery.Cache

let check = Alcotest.check

let count name = Obs.Metrics.count (Obs.Metrics.counter name)

(* ---- fixtures --------------------------------------------------------------- *)

let dir_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "imprecise-chaos-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  dir

let doc_equal a b =
  match (a, b) with
  | Store.Certain x, Store.Certain y -> Tree.deep_equal x y
  | Store.Probabilistic x, Store.Probabilistic y -> Pxml.equal x y
  | _ -> false

let alpha = Store.Certain (Imprecise.parse_xml_exn "<alpha><item>one</item></alpha>")

let beta =
  Store.Probabilistic
    (Pxml.certain
       [
         Pxml.elem "beta"
           [
             Pxml.dist
               [
                 Pxml.choice ~prob:0.3 [ Pxml.text "maybe" ];
                 Pxml.choice ~prob:0.7 [ Pxml.text "likely" ];
               ];
           ];
       ])

let gamma = Store.Certain (Imprecise.parse_xml_exn "<gamma><g>3</g></gamma>")

let store_docs = [ ("alpha", alpha); ("beta", beta); ("gamma", gamma) ]

let make_store () =
  let s = Store.create () in
  List.iter (fun (n, d) -> Store.put s n d) store_docs;
  s

(* A document with [k] independent binary choices — 2^k possible worlds,
   every one enumerable, so budgets have something to run out on. *)
let wide_doc k =
  Pxml.certain
    [
      Pxml.elem "r"
        (List.init k (fun i ->
             Pxml.dist
               [
                 Pxml.choice ~prob:0.5
                   [ Pxml.Elem ("v", [], [ Pxml.certain [ Pxml.text (string_of_int i) ] ]) ];
                 Pxml.choice ~prob:0.5 [];
               ]))
    ]

let wide_query = "//r/v"

(* A clock that advances [step_ms] per consultation — deadlines expire
   deterministically, with no real time involved. *)
let fake_clock ?(step_ms = 1.) () =
  let t = ref 0. in
  fun () ->
    t := !t +. (step_ms /. 1000.);
    !t

(* A retry policy whose sleeps are recorded, never slept. *)
let test_policy ?(max_attempts = 3) () = Retry.policy ~max_attempts ~seed:7 ()

let no_sleep = ignore

(* Fault the [spec]-scheduled hits of IO operation [op] (by name). *)
let flaky_io ?mode plan ops base =
  Io.flaky ?mode
    ~should_fail:(fun op _path ->
      match List.assoc_opt op ops with
      | Some site -> Chaos.fires plan site
      | None -> false)
    base

(* ---- store: transient faults a retry gets past ------------------------------ *)

let save_retry_scenario ~mode ~op ~site () =
  let dir = fresh_dir () in
  let plan = Chaos.plan [ (site, Chaos.First 1) ] in
  let io = flaky_io ~mode plan [ (op, site) ] Io.real in
  let before = count "resilience.retries" in
  let s = make_store () in
  (match Store.save ~io ~retry:(test_policy ()) ~sleep:no_sleep s ~dir with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save did not survive a transient %s fault: %s" site msg);
  check Alcotest.bool "the fault actually fired" true (Chaos.faults plan site = 1);
  check Alcotest.int "exactly one retry" (before + 1) (count "resilience.retries");
  (* the committed directory is fully intact *)
  match Store.load dir with
  | Error msg -> Alcotest.failf "reload failed: %s" msg
  | Ok (s', report) ->
      check Alcotest.bool "clean reload" true
        (Store.recovered_all report && report.Store.manifest = `Ok);
      List.iter
        (fun (n, d) ->
          match Store.get s' n with
          | Some d' when doc_equal d d' -> ()
          | _ -> Alcotest.failf "document %s corrupted by the retried save" n)
        store_docs;
      rm_rf dir

let scenario_save_transient_write_crash = save_retry_scenario ~mode:Io.Crash ~op:Io.Write ~site:"write"

let scenario_save_transient_write_torn = save_retry_scenario ~mode:Io.Torn ~op:Io.Write ~site:"write"

let scenario_save_transient_fsync_enospc =
  save_retry_scenario ~mode:Io.Enospc ~op:Io.Fsync ~site:"fsync"

let scenario_save_transient_rename_crash =
  save_retry_scenario ~mode:Io.Crash ~op:Io.Rename ~site:"rename"

let scenario_save_transient_mkdir_crash =
  save_retry_scenario ~mode:Io.Crash ~op:Io.Mkdir ~site:"mkdir"

(* Two consecutive faulted attempts, third succeeds: backoff walks the
   whole schedule and the store still commits. *)
let scenario_save_two_faults_then_heal () =
  let dir = fresh_dir () in
  let plan = Chaos.plan [ ("write", Chaos.First 2) ] in
  (* First 2 hits fault — but each attempt performs many writes, so hit 1
     kills attempt 1 and hit 2 kills attempt 2; attempt 3 is clean. *)
  let io = flaky_io ~mode:Io.Crash plan [ (Io.Write, "write") ] Io.real in
  let sleeps = ref [] in
  let sleep d = sleeps := d :: !sleeps in
  let policy = test_policy () in
  let s = make_store () in
  (match Store.save ~io ~retry:policy ~sleep s ~dir with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save did not survive two transient faults: %s" msg);
  check Alcotest.int "two faults fired" 2 (Chaos.faults plan "write");
  check Alcotest.int "two backoff sleeps" 2 (List.length !sleeps);
  (* the recorded sleeps are exactly the deterministic jittered schedule *)
  List.iteri
    (fun i slept ->
      let attempt = List.length !sleeps - i in
      check (Alcotest.float 1e-9)
        (Printf.sprintf "sleep %d matches the schedule" attempt)
        (Retry.delay_ms policy ~attempt /. 1000.)
        slept)
    !sleeps;
  rm_rf dir

(* ---- store: persistent faults fail cleanly, prior commit survives ----------- *)

let scenario_save_persistent_fault_gives_up () =
  let dir = fresh_dir () in
  let s = make_store () in
  (match Store.save s ~dir with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "clean v1 save failed: %s" msg);
  (* now every write faults, forever: the v2 save must give up cleanly *)
  let plan = Chaos.plan [ ("write", Chaos.Always) ] in
  let io = flaky_io ~mode:Io.Crash plan [ (Io.Write, "write") ] Io.real in
  Store.put s "alpha" (Store.Certain (Imprecise.parse_xml_exn "<alpha>v2</alpha>"));
  let retries0 = count "resilience.retries" in
  let giveups0 = count "resilience.retry_giveups" in
  (match Store.save ~io ~retry:(test_policy ()) ~sleep:no_sleep s ~dir with
  | Ok () -> Alcotest.fail "save must not report success under a persistent fault"
  | Error _ -> ());
  check Alcotest.int "retried max_attempts - 1 times" (retries0 + 2) (count "resilience.retries");
  check Alcotest.int "one giveup" (giveups0 + 1) (count "resilience.retry_giveups");
  check Alcotest.int "three attempts hit the disk" 3 (Chaos.faults plan "write");
  (* the v1 commit is untouched *)
  match Store.load dir with
  | Error msg -> Alcotest.failf "v1 reload failed: %s" msg
  | Ok (s', report) ->
      check Alcotest.bool "v1 still clean" true
        (Store.recovered_all report && report.Store.manifest = `Ok);
      (match Store.get s' "alpha" with
      | Some d when doc_equal d alpha -> ()
      | _ -> Alcotest.fail "v1 alpha must survive the failed v2 save");
      rm_rf dir

let scenario_permanent_error_not_retried () =
  (* A permanent failure must fail on the first attempt — no retries. *)
  let attempts = ref 0 in
  let boom () =
    incr attempts;
    raise (Sys_error "Permission denied")
  in
  let retries0 = count "resilience.retries" in
  (match Retry.run ~sleep:no_sleep ~classify:Io.classify_error (test_policy ()) boom with
  | _ -> Alcotest.fail "permanent failure must raise"
  | exception Sys_error _ -> ());
  check Alcotest.int "single attempt" 1 !attempts;
  check Alcotest.int "no retries" retries0 (count "resilience.retries")

let scenario_transient_fragment_classification () =
  List.iter
    (fun (e, expected, name) ->
      check Alcotest.bool name true (Io.classify_error e = expected))
    [
      (Io.Fault "injected", Retry.Transient, "injected faults are transient");
      (Sys_error "foo: No space left on device", Retry.Transient, "ENOSPC is transient");
      (Sys_error "read: Interrupted system call", Retry.Transient, "EINTR is transient");
      (Sys_error "bar: Permission denied", Retry.Permanent, "EACCES is permanent");
      (Sys_error "No such file or directory", Retry.Permanent, "ENOENT is permanent");
      (Not_found, Retry.Permanent, "non-IO exceptions are permanent");
    ]

(* ---- store: faulted loads ---------------------------------------------------- *)

let saved_store () =
  let dir = fresh_dir () in
  let s = make_store () in
  (match Store.save s ~dir with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fixture save failed: %s" msg);
  dir

let scenario_load_transient_read_crash () =
  let dir = saved_store () in
  let plan = Chaos.plan [ ("read", Chaos.First 1) ] in
  let io = flaky_io ~mode:Io.Crash plan [ (Io.Read, "read") ] Io.real in
  (match Store.load ~io ~retry:(test_policy ()) ~sleep:no_sleep dir with
  | Error msg -> Alcotest.failf "load did not survive a transient read fault: %s" msg
  | Ok (s', report) ->
      check Alcotest.bool "clean load" true
        (Store.recovered_all report && report.Store.manifest = `Ok);
      check Alcotest.int "all documents back" (List.length store_docs) (Store.size s'));
  check Alcotest.bool "the fault actually fired" true (Chaos.faults plan "read" = 1);
  rm_rf dir

let scenario_load_transient_listdir_crash () =
  let dir = saved_store () in
  let plan = Chaos.plan [ ("ls", Chaos.First 1) ] in
  let io = flaky_io ~mode:Io.Crash plan [ (Io.List_dir, "ls") ] Io.real in
  (match Store.load ~io ~retry:(test_policy ()) ~sleep:no_sleep dir with
  | Error msg -> Alcotest.failf "load did not survive a transient list_dir fault: %s" msg
  | Ok (s', report) ->
      check Alcotest.bool "clean load" true (Store.recovered_all report);
      check Alcotest.int "all documents back" (List.length store_docs) (Store.size s'));
  rm_rf dir

let scenario_load_torn_read_is_quarantined () =
  (* A torn read silently truncates the data — no exception to retry, so
     the CRC gate is the only defence. The damaged document must be
     reported, and never returned with wrong bytes. *)
  let dir = saved_store () in
  let plan = Chaos.plan [ ("read", Chaos.At [ 2 ]) ] in
  let io = flaky_io ~mode:Io.Torn plan [ (Io.Read, "read") ] Io.real in
  (match Store.load ~io dir with
  | Error msg -> Alcotest.failf "salvage load must not abort: %s" msg
  | Ok (s', report) ->
      let damaged =
        List.filter
          (fun (_, o) -> match o with Store.Quarantined _ -> true | _ -> false)
          report.Store.docs
      in
      check Alcotest.int "exactly one document caught by the CRC gate" 1 (List.length damaged);
      (* every document that did come back is byte-exact *)
      List.iter
        (fun (n, d) ->
          match Store.get s' n with
          | None -> ()
          | Some d' ->
              check Alcotest.bool (n ^ " returned uncorrupted") true (doc_equal d d'))
        store_docs);
  rm_rf dir

let scenario_load_persistent_fault_gives_up () =
  let dir = saved_store () in
  let plan = Chaos.plan [ ("read", Chaos.Always) ] in
  let io = flaky_io ~mode:Io.Crash plan [ (Io.Read, "read") ] Io.real in
  let giveups0 = count "resilience.retry_giveups" in
  (match Store.load ~io ~retry:(test_policy ()) ~sleep:no_sleep ~mode:Store.Strict dir with
  | Ok _ -> Alcotest.fail "strict load must not succeed when every read faults"
  | Error _ -> ());
  check Alcotest.int "one giveup" (giveups0 + 1) (count "resilience.retry_giveups");
  (* the directory itself is untouched — a clean load still works *)
  (match Store.load dir with
  | Error msg -> Alcotest.failf "directory was disturbed by the failed loads: %s" msg
  | Ok (_, report) -> check Alcotest.bool "still clean" true (Store.recovered_all report));
  rm_rf dir

(* ---- chaos-plan accounting --------------------------------------------------- *)

let scenario_plan_schedules () =
  let plan =
    Chaos.plan
      [
        ("never", Chaos.Never);
        ("always", Chaos.Always);
        ("first2", Chaos.First 2);
        ("at", Chaos.At [ 2; 4 ]);
        ("every3", Chaos.Every 3);
      ]
  in
  let fire site n = List.init n (fun _ -> Chaos.fires plan site) in
  check (Alcotest.list Alcotest.bool) "Never" [ false; false; false ] (fire "never" 3);
  check (Alcotest.list Alcotest.bool) "Always" [ true; true ] (fire "always" 2);
  check (Alcotest.list Alcotest.bool) "First 2" [ true; true; false; false ] (fire "first2" 4);
  check (Alcotest.list Alcotest.bool) "At [2;4]" [ false; true; false; true; false ]
    (fire "at" 5);
  check (Alcotest.list Alcotest.bool) "Every 3" [ false; false; true; false; false; true ]
    (fire "every3" 6);
  check Alcotest.int "hits counted" 4 (Chaos.hits plan "first2");
  check Alcotest.int "faults counted" 2 (Chaos.faults plan "first2");
  check Alcotest.int "report covers every site" 5 (List.length (Chaos.report plan))

let scenario_plan_unknown_site () =
  let plan = Chaos.plan [ ("known", Chaos.Always) ] in
  check Alcotest.bool "unknown sites never fire" false (Chaos.fires plan "unknown");
  check Alcotest.int "but are counted" 1 (Chaos.hits plan "unknown");
  check Alcotest.int "and never fault" 0 (Chaos.faults plan "unknown")

(* ---- pquery: budgets --------------------------------------------------------- *)

let scenario_query_world_budget_trips () =
  let doc = wide_doc 10 in
  let worlds0 = count "resilience.world_budget_exceeded" in
  let budget = Budget.create ~max_worlds:50 () in
  (match Pquery.rank ~budget ~strategy:Pquery.Enumerate_only doc wide_query with
  | _ -> Alcotest.fail "50 worlds cannot cover 2^10"
  | exception Budget.Exceeded Budget.Worlds -> ()
  | exception Budget.Exceeded r ->
      Alcotest.failf "wrong trip reason: %s" (Budget.reason_to_string r));
  check Alcotest.int "world-budget counter bumped once" (worlds0 + 1)
    (count "resilience.world_budget_exceeded")

let scenario_query_deadline_trips () =
  let doc = wide_doc 10 in
  let deadlines0 = count "resilience.deadline_exceeded" in
  (* the clock advances 1 ms per consultation: a 5 ms deadline expires
     deterministically a few ticks in, with no real time involved *)
  let budget = Budget.create ~timeout_ms:5 ~clock:(fake_clock ()) () in
  (match Pquery.rank ~budget ~strategy:Pquery.Enumerate_only doc wide_query with
  | _ -> Alcotest.fail "the fake clock must expire the deadline"
  | exception Budget.Exceeded Budget.Deadline -> ()
  | exception Budget.Exceeded r ->
      Alcotest.failf "wrong trip reason: %s" (Budget.reason_to_string r));
  check Alcotest.int "deadline counter bumped once" (deadlines0 + 1)
    (count "resilience.deadline_exceeded")

let scenario_query_cancelled_before_start () =
  let doc = wide_doc 4 in
  let budget = Budget.create () in
  Budget.cancel budget;
  match Pquery.rank ~budget doc wide_query with
  | _ -> Alcotest.fail "a cancelled budget must stop the query on entry"
  | exception Budget.Exceeded Budget.Cancelled -> ()
  | exception Budget.Exceeded r ->
      Alcotest.failf "wrong trip reason: %s" (Budget.reason_to_string r)

let scenario_query_parallel_budget_trip_is_clean () =
  (* Worker domains sharing one budget: the trip must propagate as one
     clean exception, with every domain joined (run it repeatedly — a
     leaked domain would wedge or crash a later iteration). *)
  let doc = wide_doc 12 in
  for _ = 1 to 3 do
    let budget = Budget.create ~max_worlds:100 () in
    match Pquery.rank ~budget ~strategy:Pquery.Enumerate_only ~jobs:4 doc wide_query with
    | _ -> Alcotest.fail "100 worlds cannot cover 2^12"
    | exception Budget.Exceeded _ -> ()
  done

let scenario_query_sampling_respects_budget () =
  let doc = wide_doc 6 in
  let budget = Budget.create ~max_worlds:50 () in
  match
    Pquery.rank ~budget ~strategy:(Pquery.Sample { n = 500; seed = 3 }) doc wide_query
  with
  | _ -> Alcotest.fail "sampling 500 worlds must trip a 50-world budget"
  | exception Budget.Exceeded Budget.Worlds -> ()
  | exception Budget.Exceeded r ->
      Alcotest.failf "wrong trip reason: %s" (Budget.reason_to_string r)

(* ---- pquery: graceful degradation -------------------------------------------- *)

let max_abs_error ~exact answers =
  let prob_of v = match List.find_opt (fun a -> a.Answer.value = v) exact with
    | Some a -> a.Answer.prob
    | None -> 0.
  in
  List.fold_left
    (fun acc a -> Float.max acc (Float.abs (a.Answer.prob -. prob_of a.Answer.value)))
    0. answers

let scenario_graded_exact_when_budget_suffices () =
  let doc = wide_doc 5 in
  let degraded0 = count "pquery.degraded" in
  let budget = Budget.create ~max_worlds:1_000_000 () in
  let graded = Pquery.rank_graded ~budget doc wide_query in
  check Alcotest.bool "grade is Exact" true (Degrade.is_exact graded.Degrade.grade);
  check Alcotest.int "no degradation counted" degraded0 (count "pquery.degraded");
  let exact = Pquery.rank doc wide_query in
  check Alcotest.bool "answer is the exact ranking" true
    (Answer.equal ~tolerance:1e-12 exact graded.Degrade.value)

let scenario_graded_degrades_under_world_budget () =
  let doc = wide_doc 10 in
  (* count(..) is outside the direct evaluator's class, so the exact rung
     must enumerate — and a 64-world budget cannot cover 2^10 worlds *)
  let wide_query = "count(//v)" in
  let degraded0 = count "pquery.degraded" in
  let budget = Budget.create ~max_worlds:64 () in
  let graded = Pquery.rank_graded ~budget doc wide_query in
  (match graded.Degrade.grade with
  | Degrade.Exact -> Alcotest.fail "64 worlds cannot rank 2^10 exactly"
  | Degrade.Approximate { tolerance; confidence; _ } ->
      check Alcotest.bool "a tolerance is declared" true (tolerance > 0.);
      check Alcotest.bool "a confidence is declared" true (confidence > 0.9);
      let exact = Pquery.rank doc wide_query in
      let err = max_abs_error ~exact graded.Degrade.value in
      check Alcotest.bool
        (Printf.sprintf "max error %.4f within declared tolerance %.4f" err tolerance)
        true
        (err <= tolerance));
  check Alcotest.int "degradation counted once" (degraded0 + 1) (count "pquery.degraded")

let scenario_graded_answers_under_cancellation () =
  (* Even a budget cancelled before the call produces an answer: the
     sampling rung runs unbudgeted, by design. *)
  let doc = wide_doc 8 in
  let budget = Budget.create () in
  Budget.cancel budget;
  let graded = Pquery.rank_graded ~budget doc wide_query in
  (match graded.Degrade.grade with
  | Degrade.Exact -> Alcotest.fail "a cancelled budget cannot produce an exact answer"
  | Degrade.Approximate { rung; _ } -> check Alcotest.string "fell to sampling" "sample" rung);
  check Alcotest.bool "still produced a ranking" true (graded.Degrade.value <> [])

let scenario_graded_soundness_fuzz () =
  (* Random documents, starved budget: the degraded probabilities must
     stay within the declared tolerance of the exact ones. Deterministic
     seeds; small slack on top of the declared bound for the 0.1%
     Hoeffding tail across values. *)
  let rng = ref (Prng.make 42) in
  for case = 1 to 25 do
    let doc, rng' = Random_docs.pxml !rng ~depth:3 in
    rng := rng';
    if Pxml.world_count doc <= 50_000. then begin
      let exact = Pquery.rank doc "//*" in
      let budget = Budget.create ~max_worlds:16 () in
      let graded = Pquery.rank_graded ~budget doc "//*" in
      let tolerance =
        match graded.Degrade.grade with
        | Degrade.Exact -> 1e-9
        | Degrade.Approximate { tolerance; _ } -> tolerance
      in
      let err = max_abs_error ~exact graded.Degrade.value in
      if err > tolerance +. 0.02 then
        Alcotest.failf "case %d: degraded answer off by %.4f > declared %.4f" case err
          tolerance
    end
  done

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let scenario_query_store_budget_error_is_clean () =
  let store = Store.create () in
  Store.put store "wide" (Store.Probabilistic (wide_doc 10));
  let budget = Budget.create ~max_worlds:50 () in
  match Imprecise.query_store ~budget ~strategy:Pquery.Enumerate_only store "wide" wide_query with
  | Ok _ -> Alcotest.fail "50 worlds cannot cover 2^10"
  | Error msg -> check Alcotest.bool "error names the budget" true (contains ~needle:"budget" msg)

(* ---- pquery: the cache cannot be poisoned ------------------------------------ *)

let scenario_cancelled_query_never_caches () =
  let doc = wide_doc 10 in
  let len0 = Cache.length Cache.global in
  let budget = Budget.create ~max_worlds:50 () in
  (match
     Pquery.rank_cached ~budget ~strategy:Pquery.Enumerate_only ~collection:"chaos-poison"
       ~generation:1 doc wide_query
   with
  | _ -> Alcotest.fail "the budget must trip"
  | exception Budget.Exceeded _ -> ());
  check Alcotest.int "tripped query cached nothing" len0 (Cache.length Cache.global);
  (* the same key now computes cleanly — and must be the full exact answer,
     not anything left over from the cancelled run *)
  let hits0 = count "pquery.cache.hit" in
  let answers =
    Pquery.rank_cached ~strategy:Pquery.Enumerate_only ~collection:"chaos-poison"
      ~generation:1 doc wide_query
  in
  check Alcotest.int "recomputation was not served from cache" hits0 (count "pquery.cache.hit");
  let exact = Pquery.rank ~strategy:Pquery.Enumerate_only doc wide_query in
  check Alcotest.bool "recomputed answer is exact" true
    (Answer.equal ~tolerance:1e-12 exact answers)

(* ---- integration under budgets ------------------------------------------------ *)

let similar_books n suffix =
  (* n near-identical persons: a dense candidate grid for the matcher *)
  let person i =
    Printf.sprintf "<person><nm>Person%d</nm><tel>555-%04d%s</tel></person>" (i mod 3) i
      suffix
  in
  Imprecise.parse_xml_exn
    (Printf.sprintf "<addressbook>%s</addressbook>"
       (String.concat "" (List.init n person)))

let scenario_integrate_pair_budget_trips () =
  let left = similar_books 8 "" and right = similar_books 8 "x" in
  let budget = Budget.create ~max_worlds:10 () in
  match Imprecise.integrate_many ~budget [ left; right ] with
  | Ok _ -> Alcotest.fail "10 grid cells cannot cover an 8x8 candidate grid"
  | Error (Integrate.Budget_exceeded _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Integrate.pp_error e

let scenario_integrate_deadline_trips () =
  let left = similar_books 8 "" and right = similar_books 8 "x" in
  let budget = Budget.create ~timeout_ms:5 ~clock:(fake_clock ()) () in
  match Imprecise.integrate_many ~budget [ left; right ] with
  | Ok _ -> Alcotest.fail "the fake clock must expire the deadline"
  | Error (Integrate.Budget_exceeded reason) ->
      check Alcotest.bool "reason is the deadline" true
        (reason = Budget.reason_to_string Budget.Deadline)
  | Error e -> Alcotest.failf "wrong error: %a" Integrate.pp_error e

let scenario_integrate_parallel_budget_trip_is_clean () =
  (* The banded grid with jobs=4 shares one budget; the trip must come
     back as one clean typed error with all worker domains joined. *)
  let left = similar_books 12 "" and right = similar_books 12 "x" in
  for _ = 1 to 3 do
    let budget = Budget.create ~max_worlds:20 () in
    match Imprecise.integrate_many ~jobs:4 ~budget [ left; right ] with
    | Ok _ -> Alcotest.fail "20 grid cells cannot cover a 12x12 candidate grid"
    | Error (Integrate.Budget_exceeded _) -> ()
    | Error e -> Alcotest.failf "wrong error: %a" Integrate.pp_error e
  done

let scenario_integrate_budget_spares_decision_cache () =
  (* A budget trip mid-fold must not leave junk in a shared decision
     cache: rerunning unbudgeted with the same cache gives the same
     document as a fresh run. Distinct names keep the fold small enough
     to materialise; a 3-unit budget still trips on the first grid. *)
  let book suffix =
    Imprecise.parse_xml_exn
      (Printf.sprintf
         "<addressbook><person><nm>Alice</nm><tel>555-0001%s</tel></person>\
          <person><nm>Bob</nm><tel>555-0002%s</tel></person></addressbook>"
         suffix suffix)
  in
  let sources = [ book ""; book "x"; book "y" ] in
  let decisions = Imprecise.Decision_cache.create () in
  (match
     Imprecise.integrate_many ~decisions ~budget:(Budget.create ~max_worlds:3 ()) sources
   with
  | Ok _ -> Alcotest.fail "3 work units cannot cover the fold"
  | Error (Integrate.Budget_exceeded _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Integrate.pp_error e);
  let reused =
    match Imprecise.integrate_many ~decisions sources with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "unbudgeted rerun failed: %a" Integrate.pp_error e
  in
  let fresh =
    match Imprecise.integrate_many sources with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "fresh run failed: %a" Integrate.pp_error e
  in
  check Alcotest.bool "cache survived the trip unpoisoned" true (Pxml.equal fresh reused)

let scenario_stats_budget_trips () =
  let left = similar_books 10 "" and right = similar_books 10 "x" in
  match Imprecise.integration_stats ~budget:(Budget.create ~max_worlds:10 ()) left right with
  | Ok _ -> Alcotest.fail "10 cells cannot cover a 10x10 grid"
  | Error (Integrate.Budget_exceeded _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Integrate.pp_error e

(* ---- budget mechanics ---------------------------------------------------------- *)

let scenario_sub_budget_trip_spares_parent () =
  let parent = Budget.create ~max_worlds:100 () in
  let child = Budget.sub ~fraction:0.1 parent in
  (match
     for _ = 1 to 100 do
       Budget.tick child
     done
   with
  | () -> Alcotest.fail "the child's 10-world slice must trip"
  | exception Budget.Exceeded Budget.Worlds -> ());
  check Alcotest.bool "parent still live" true (Budget.exceeded parent = None);
  (* the child's ticks drained the parent's pool *)
  check Alcotest.bool "parent pool drained by child ticks" true
    (match Budget.remaining_worlds parent with Some n -> n < 100 | None -> false);
  Budget.tick parent (* parent still usable *)

let scenario_budget_trip_reason_is_stable () =
  let b = Budget.create ~max_worlds:1 () in
  (match Budget.tick ~n:2 b with
  | () -> Alcotest.fail "must trip"
  | exception Budget.Exceeded Budget.Worlds -> ());
  Budget.cancel b;
  (* the original reason wins over the later cancel, on every check *)
  match Budget.check b with
  | () -> Alcotest.fail "tripped budgets fail every check"
  | exception Budget.Exceeded Budget.Worlds -> ()
  | exception Budget.Exceeded r ->
      Alcotest.failf "original reason lost: %s" (Budget.reason_to_string r)

let scenario_deadline_halts_within_bound () =
  (* The one real-clock scenario: a deadline of D ms must halt an
     open-ended enumeration well within the acceptance bound of 2·D. *)
  let doc = wide_doc 24 (* 16M worlds: far more than any deadline allows *) in
  let d_ms = 250 in
  let budget = Budget.create ~timeout_ms:d_ms () in
  let t0 = Unix.gettimeofday () in
  (match
     Pquery.rank ~budget ~strategy:Pquery.Enumerate_only ~world_limit:1e9 doc wide_query
   with
  | _ -> Alcotest.fail "enumeration of 2^24 worlds must hit the deadline"
  | exception Budget.Exceeded Budget.Deadline -> ());
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  check Alcotest.bool
    (Printf.sprintf "halted in %.0f ms < 2 x %d ms" elapsed_ms d_ms)
    true
    (elapsed_ms < 2. *. float_of_int d_ms)

(* ---- the full pipeline under chaos -------------------------------------------- *)

let scenario_full_pipeline_chaos () =
  (* integrate -> save (through transient faults, with retry) -> load ->
     budgeted graded query. End to end: no crash, clean store, sound
     answer. *)
  let dir = fresh_dir () in
  let doc =
    match Imprecise.integrate_many [ similar_books 5 ""; similar_books 5 "x" ] with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "pipeline integrate failed: %a" Integrate.pp_error e
  in
  let s = Store.create () in
  Store.put s "merged" (Store.Probabilistic doc);
  let plan =
    Chaos.plan [ ("write", Chaos.At [ 2 ]); ("fsync", Chaos.First 1) ]
  in
  let io =
    flaky_io ~mode:Io.Enospc plan [ (Io.Write, "write"); (Io.Fsync, "fsync") ] Io.real
  in
  (match Store.save ~io ~retry:(test_policy ~max_attempts:5 ()) ~sleep:no_sleep s ~dir with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "pipeline save failed: %s" msg);
  let s', report =
    match Store.load dir with
    | Ok r -> r
    | Error msg -> Alcotest.failf "pipeline load failed: %s" msg
  in
  check Alcotest.bool "store clean after chaos" true
    (Store.recovered_all report && report.Store.manifest = `Ok);
  let loaded =
    match Store.get_probabilistic s' "merged" with
    | Some d -> d
    | None -> Alcotest.fail "merged document lost"
  in
  check Alcotest.bool "document round-tripped" true (Pxml.equal doc loaded);
  let graded =
    Pquery.rank_graded ~budget:(Budget.create ~max_worlds:40 ()) loaded "//person/nm"
  in
  let exact = Pquery.rank loaded "//person/nm" in
  let tolerance =
    match graded.Degrade.grade with
    | Degrade.Exact -> 1e-9
    | Degrade.Approximate { tolerance; _ } -> tolerance
  in
  check Alcotest.bool "pipeline answer sound" true
    (max_abs_error ~exact graded.Degrade.value <= tolerance +. 0.02);
  rm_rf dir

(* ---- suite -------------------------------------------------------------------- *)

let scenarios =
  [
    ("save: transient write crash, retried", scenario_save_transient_write_crash);
    ("save: transient torn write, retried", scenario_save_transient_write_torn);
    ("save: transient ENOSPC at fsync, retried", scenario_save_transient_fsync_enospc);
    ("save: transient rename crash, retried", scenario_save_transient_rename_crash);
    ("save: transient mkdir crash, retried", scenario_save_transient_mkdir_crash);
    ("save: two faults then heal, scheduled backoff", scenario_save_two_faults_then_heal);
    ("save: persistent fault gives up, v1 intact", scenario_save_persistent_fault_gives_up);
    ("retry: permanent errors are not retried", scenario_permanent_error_not_retried);
    ("retry: fault classification", scenario_transient_fragment_classification);
    ("load: transient read crash, retried", scenario_load_transient_read_crash);
    ("load: transient list_dir crash, retried", scenario_load_transient_listdir_crash);
    ("load: torn read caught by the CRC gate", scenario_load_torn_read_is_quarantined);
    ("load: persistent fault gives up cleanly", scenario_load_persistent_fault_gives_up);
    ("chaos: schedules fire exactly as scripted", scenario_plan_schedules);
    ("chaos: unknown sites are counted, never fire", scenario_plan_unknown_site);
    ("query: world budget trips enumeration", scenario_query_world_budget_trips);
    ("query: deadline trips enumeration", scenario_query_deadline_trips);
    ("query: cancellation stops the query on entry", scenario_query_cancelled_before_start);
    ("query: parallel budget trip joins all domains", scenario_query_parallel_budget_trip_is_clean);
    ("query: sampling path respects the budget", scenario_query_sampling_respects_budget);
    ("degrade: exact when the budget suffices", scenario_graded_exact_when_budget_suffices);
    ("degrade: sound approximate answer when starved", scenario_graded_degrades_under_world_budget);
    ("degrade: answers even under cancellation", scenario_graded_answers_under_cancellation);
    ("degrade: fuzzed soundness on random documents", scenario_graded_soundness_fuzz);
    ("query_store: budget trip is a clean Error", scenario_query_store_budget_error_is_clean);
    ("cache: cancelled queries cannot poison it", scenario_cancelled_query_never_caches);
    ("integrate: pair budget trips the grid", scenario_integrate_pair_budget_trips);
    ("integrate: deadline trips the grid", scenario_integrate_deadline_trips);
    ("integrate: parallel trip joins all bands", scenario_integrate_parallel_budget_trip_is_clean);
    ("integrate: trip leaves the decision cache sound", scenario_integrate_budget_spares_decision_cache);
    ("stats: budget trips the estimator", scenario_stats_budget_trips);
    ("budget: child trip spares the parent", scenario_sub_budget_trip_spares_parent);
    ("budget: first trip reason is stable", scenario_budget_trip_reason_is_stable);
    ("budget: deadline halts within 2x the deadline", scenario_deadline_halts_within_bound);
    ("pipeline: integrate-save-load-query under chaos", scenario_full_pipeline_chaos);
  ]

let scenario_count_floor () =
  check Alcotest.bool
    (Printf.sprintf "%d scenarios >= 25" (List.length scenarios))
    true
    (List.length scenarios >= 25)

let () =
  let cases =
    List.map (fun (name, f) -> Alcotest.test_case name `Quick f) scenarios
    @ [ Alcotest.test_case "at least 25 scenarios" `Quick scenario_count_floor ]
  in
  Alcotest.run "chaos" [ ("chaos", cases) ]
