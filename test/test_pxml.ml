(* Tests for the probabilistic XML model: layering invariants, world
   enumeration, counting, compaction, and the XML encoding. *)

module Tree = Imprecise.Tree
module Pxml = Imprecise.Pxml
module Worlds = Imprecise.Worlds
module Compact = Imprecise.Compact
module Codec = Imprecise.Codec
module Prng = Imprecise.Data.Prng
module Random_docs = Imprecise.Data.Random_docs

let check = Alcotest.check

let parse = Imprecise.parse_xml_exn

let random_doc seed = fst (Random_docs.pxml (Prng.make seed) ~depth:2)

let doc_gen = QCheck.map random_doc QCheck.int

(* Figure 2's example document, built by hand: an address book where the two
   Johns are the same person (with one of two phones) or two persons. *)
let fig2_doc =
  let person tel =
    Pxml.elem "person"
      [
        Pxml.certain [ Pxml.elem "nm" [ Pxml.certain [ Pxml.text "John" ] ] ];
        tel;
      ]
  in
  let tel v = Pxml.elem "tel" [ Pxml.certain [ Pxml.text v ] ] in
  let certain_tel v = Pxml.certain [ tel v ] in
  let uncertain_tel =
    Pxml.dist [ Pxml.choice ~prob:0.5 [ tel "1111" ]; Pxml.choice ~prob:0.5 [ tel "2222" ] ]
  in
  Pxml.certain
    [
      Pxml.elem "addressbook"
        [
          Pxml.dist
            [
              Pxml.choice ~prob:0.5 [ person uncertain_tel ];
              Pxml.choice ~prob:0.5 [ person (certain_tel "1111"); person (certain_tel "2222") ];
            ];
        ];
    ]

(* ---- construction and validation ----------------------------------------- *)

let test_dist_validation () =
  (match Pxml.dist [] with
  | exception Pxml.Invalid _ -> ()
  | _ -> Alcotest.fail "empty dist accepted");
  (match Pxml.dist [ Pxml.choice ~prob:0.7 [] ] with
  | exception Pxml.Invalid _ -> ()
  | _ -> Alcotest.fail "sum 0.7 accepted");
  (match Pxml.dist [ Pxml.choice ~prob:1.5 []; Pxml.choice ~prob:(-0.5) [] ] with
  | exception Pxml.Invalid _ -> ()
  | _ -> Alcotest.fail "out-of-range probability accepted");
  match Pxml.dist [ Pxml.choice ~prob:0.25 []; Pxml.choice ~prob:0.75 [ Pxml.text "x" ] ] with
  | _ -> ()

let test_validate_deep () =
  let bad =
    { Pxml.choices = [ { Pxml.prob = 1.; nodes = [ Pxml.Elem ("a", [], [ { Pxml.choices = [ { Pxml.prob = 0.4; nodes = [] } ] } ]) ] } ] }
  in
  check Alcotest.bool "nested invalid detected" true (Result.is_error (Pxml.validate bad));
  check Alcotest.bool "fig2 valid" true (Result.is_ok (Pxml.validate fig2_doc))

let test_of_tree_roundtrip () =
  let t = parse "<r><a>x</a><b/>tail</r>" in
  let doc = Pxml.doc_of_tree t in
  check Alcotest.bool "certain" true (Pxml.is_certain doc);
  match Pxml.to_tree_exn doc with
  | [ t' ] -> check Alcotest.bool "same tree" true (Tree.deep_equal t t')
  | _ -> Alcotest.fail "expected one root"

let test_to_tree_exn_uncertain () =
  match Pxml.to_tree_exn fig2_doc with
  | exception Pxml.Invalid _ -> ()
  | _ -> Alcotest.fail "uncertain document extracted"

let test_is_certain_nested () =
  let deep_uncertain =
    Pxml.certain
      [ Pxml.elem "a" [ Pxml.dist [ Pxml.choice ~prob:0.5 []; Pxml.choice ~prob:0.5 [ Pxml.text "x" ] ] ] ]
  in
  check Alcotest.bool "nested uncertainty detected" false (Pxml.is_certain deep_uncertain)

(* ---- statistics ----------------------------------------------------------- *)

let test_stats_fig2 () =
  let s = Pxml.stats fig2_doc in
  (* Hand count: root prob/poss (1/1); addressbook's person-level prob with
     2 poss; merged-person branch: 4 elems (person, nm, 2×tel), 3 texts,
     5 prob + 6 poss (two certain wrappers, nm text, tel choice, 2 tel
     texts); two-person branch: 6 elems, 4 texts, 8 prob + 8 poss. *)
  check Alcotest.int "prob nodes" 15 s.Pxml.prob_nodes;
  check Alcotest.int "poss nodes" 17 s.Pxml.poss_nodes;
  check Alcotest.int "elements" 11 s.Pxml.elements;
  check Alcotest.int "texts" 7 s.Pxml.texts;
  check Alcotest.int "total" 50 (Pxml.node_count fig2_doc)

let test_world_count_fig2 () =
  check (Alcotest.float 1e-9) "combinations" 3. (Pxml.world_count fig2_doc);
  check Alcotest.(option int) "exact" (Some 3) (Pxml.world_count_int fig2_doc)

let test_world_count_multiplies () =
  let two = Pxml.dist [ Pxml.choice ~prob:0.5 [ Pxml.text "a" ]; Pxml.choice ~prob:0.5 [ Pxml.text "b" ] ] in
  let doc = Pxml.certain [ Pxml.elem "r" [ two; two; two ] ] in
  check (Alcotest.float 1e-9) "independent choices multiply" 8. (Pxml.world_count doc)

(* ---- worlds ---------------------------------------------------------------- *)

let test_fig2_worlds () =
  let worlds = Worlds.merged fig2_doc in
  check Alcotest.int "three worlds" 3 (List.length worlds);
  let probs = List.map fst worlds in
  check (Alcotest.float 1e-9) "total" 1. (List.fold_left ( +. ) 0. probs);
  match worlds with
  | (p0, w0) :: rest ->
      check (Alcotest.float 1e-9) "two-person world" 0.5 p0;
      (match w0 with
      | [ book ] -> check Alcotest.int "two persons" 2 (List.length (Tree.children book))
      | _ -> Alcotest.fail "one root expected");
      List.iter (fun (p, _) -> check (Alcotest.float 1e-9) "quarter" 0.25 p) rest
  | [] -> Alcotest.fail "no worlds"

let test_certain_single_world () =
  let t = parse "<r><a>x</a></r>" in
  match Worlds.merged (Pxml.doc_of_tree t) with
  | [ (p, [ w ]) ] ->
      check (Alcotest.float 1e-9) "prob 1" 1. p;
      check Alcotest.bool "same" true (Tree.deep_equal t w)
  | _ -> Alcotest.fail "expected exactly one world"

let prop_world_probabilities_sum_to_one =
  QCheck.Test.make ~name:"world probabilities sum to 1" ~count:100 doc_gen (fun doc ->
      Float.abs (Worlds.total_probability doc -. 1.) < 1e-6)

let prop_world_count_matches_enumeration =
  QCheck.Test.make ~name:"world_count = length of enumeration" ~count:100 doc_gen
    (fun doc ->
      let counted = Pxml.world_count doc in
      let enumerated = Seq.fold_left (fun n _ -> n + 1) 0 (Worlds.enumerate doc) in
      counted = float_of_int enumerated)

let prop_validate_random =
  QCheck.Test.make ~name:"generated documents validate" ~count:100 doc_gen (fun doc ->
      Result.is_ok (Pxml.validate doc))

(* ---- compaction ------------------------------------------------------------ *)

let world_distributions_equal a b =
  let wa = Worlds.merged a and wb = Worlds.merged b in
  List.length wa = List.length wb
  && List.for_all2
       (fun (p, w) (q, v) ->
         Float.abs (p -. q) < 1e-6 && List.equal Tree.deep_equal w v)
       wa wb

let test_compact_merges_duplicates () =
  let dup =
    Pxml.dist
      [
        Pxml.choice ~prob:0.3 [ Pxml.text "x" ];
        Pxml.choice ~prob:0.45 [ Pxml.text "x" ];
        Pxml.choice ~prob:0.25 [ Pxml.text "y" ];
      ]
  in
  let c = Compact.compact dup in
  check Alcotest.int "two choices left" 2 (List.length c.Pxml.choices);
  check Alcotest.bool "distribution preserved" true (world_distributions_equal dup c)

let test_compact_prunes_zero () =
  let z =
    Pxml.dist [ Pxml.choice ~prob:0. [ Pxml.text "ghost" ]; Pxml.choice ~prob:1. [ Pxml.text "real" ] ]
  in
  let c = Compact.compact z in
  check Alcotest.int "one choice" 1 (List.length c.Pxml.choices);
  check Alcotest.bool "certain now" true (Pxml.is_certain c)

let test_compact_fuses_certain_dists () =
  let doc =
    Pxml.certain
      [
        Pxml.elem "r"
          [ Pxml.certain [ Pxml.text "a" ]; Pxml.certain [ Pxml.text "b" ]; Pxml.certain [] ];
      ]
  in
  let c = Compact.compact doc in
  (match c.Pxml.choices with
  | [ { Pxml.nodes = [ Pxml.Elem (_, _, [ d ]) ]; _ } ] ->
      check Alcotest.int "one fused dist" 1 (List.length d.Pxml.choices)
  | _ -> Alcotest.fail "unexpected shape");
  check Alcotest.bool "distribution preserved" true (world_distributions_equal doc c)

let test_compact_idempotent_fig2 () =
  let c = Compact.compact fig2_doc in
  check Alcotest.bool "fixpoint" true (Pxml.equal c (Compact.compact c));
  check Alcotest.bool "distribution preserved" true (world_distributions_equal fig2_doc c)

let prop_compact_preserves_distribution =
  QCheck.Test.make ~name:"compact preserves world distribution" ~count:100 doc_gen
    (fun doc -> world_distributions_equal doc (Compact.compact doc))

let prop_compact_never_grows =
  QCheck.Test.make ~name:"compact never grows the representation" ~count:100 doc_gen
    (fun doc -> Pxml.node_count (Compact.compact doc) <= Pxml.node_count doc)

let prop_compact_valid =
  QCheck.Test.make ~name:"compact output validates" ~count:100 doc_gen (fun doc ->
      Result.is_ok (Pxml.validate (Compact.compact doc)))

(* ---- budgeted reduction ----------------------------------------------------- *)

let test_prune_to_budget () =
  (* a wide store: 10 independent binary choices = 1024 worlds *)
  let choice i =
    Pxml.dist
      [
        Pxml.choice ~prob:0.9 [ Pxml.text (Fmt.str "keep%d" i) ];
        Pxml.choice ~prob:0.1 [ Pxml.text (Fmt.str "alt%d" i) ];
      ]
  in
  let doc = Pxml.certain [ Pxml.elem "r" (List.init 10 choice) ] in
  check (Alcotest.float 0.) "1024 worlds" 1024. (Pxml.world_count doc);
  (* an already-fitting document is only compacted, never cut *)
  let same = Compact.prune_to_budget ~world_budget:2048 doc in
  check Alcotest.bool "within budget: distribution preserved" true
    (world_distributions_equal doc same);
  (* squeezing the world budget escalates until the document fits *)
  let cut = Compact.prune_to_budget ~world_budget:8 doc in
  (match Pxml.world_count_int cut with
  | Some w -> check Alcotest.bool "world budget met" true (w <= 8)
  | None -> Alcotest.fail "world count overflowed after pruning");
  check Alcotest.bool "still valid" true (Result.is_ok (Pxml.validate cut));
  (* a node budget only the argmax worlds can satisfy *)
  let tiny = Compact.prune_to_budget ~node_budget:(Pxml.node_count doc / 3) doc in
  check Alcotest.bool "node budget met" true
    (Pxml.node_count tiny <= Pxml.node_count doc / 3);
  check Alcotest.bool "tiny output valid" true (Result.is_ok (Pxml.validate tiny))

(* ---- interning --------------------------------------------------------------- *)

let test_intern_sharing () =
  let doc = random_doc 42 in
  let interned = Imprecise.Intern.doc doc in
  check Alcotest.bool "interning preserves structure" true (Pxml.equal doc interned);
  let again = Imprecise.Intern.doc doc in
  check Alcotest.bool "interning is stable (physically)" true (interned == again);
  (* a structurally equal but freshly allocated copy interns to the same
     physical document *)
  let copy =
    match Codec.of_string (Codec.to_string doc) with
    | Ok d -> d
    | Error e -> Alcotest.failf "codec round-trip failed: %s" e
  in
  check Alcotest.bool "deep-equal copy shares the canonical form" true
    (Imprecise.Intern.doc copy == interned);
  check Alcotest.bool "distinct_nodes never exceeds node_count" true
    (Imprecise.Intern.distinct_nodes interned <= Pxml.node_count doc)

let test_intern_trees_pointer_equal () =
  let tree = Tree.element "person" [ Tree.leaf "nm" "John"; Tree.leaf "tel" "1111" ] in
  let copy = Tree.element "person" [ Tree.leaf "nm" "John"; Tree.leaf "tel" "1111" ] in
  check Alcotest.bool "distinct allocations" true (tree != copy);
  let a = Imprecise.Intern.tree tree and b = Imprecise.Intern.tree copy in
  check Alcotest.bool "deep-equal trees intern to one pointer" true (a == b);
  check Alcotest.bool "interned flag" true (Imprecise.Intern.tree_interned a);
  check Alcotest.int "cached hashes agree" (Imprecise.Intern.tree_hash a)
    (Imprecise.Intern.tree_hash copy);
  check Alcotest.bool "deep_equal fast-paths to true" true (Tree.deep_equal a b)

(* ---- codec ------------------------------------------------------------------ *)

let test_codec_roundtrip_fig2 () =
  match Codec.decode (Codec.encode fig2_doc) with
  | Ok doc -> check Alcotest.bool "roundtrip" true (Pxml.equal fig2_doc doc)
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_codec_string_roundtrip () =
  match Codec.of_string (Codec.to_string ~indent:2 fig2_doc) with
  | Ok doc -> check Alcotest.bool "string roundtrip" true (Pxml.equal fig2_doc doc)
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_codec_rejects_malformed () =
  let reject s =
    match Codec.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  reject "<p:poss p=\"1\"/>";
  reject "<p:prob><p:poss/></p:prob>";
  reject "<p:prob><p:poss p=\"abc\"/></p:prob>";
  reject "<p:prob><p:poss p=\"0.5\"/></p:prob>";
  reject "<p:prob><wrong/></p:prob>";
  reject "<p:prob><p:poss p=\"1\"><a>text<p:prob><p:poss p=\"1\"/></p:prob></a></p:poss></p:prob>"

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"encode ∘ decode = id" ~count:100 doc_gen (fun doc ->
      match Codec.of_string (Codec.to_string doc) with
      | Ok doc' -> Pxml.equal doc doc'
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let q p = QCheck_alcotest.to_alcotest p in
  [
    ( "pxml.model",
      [
        t "dist validation" test_dist_validation;
        t "deep validation" test_validate_deep;
        t "of_tree/to_tree roundtrip" test_of_tree_roundtrip;
        t "to_tree_exn rejects uncertainty" test_to_tree_exn_uncertain;
        t "is_certain sees nesting" test_is_certain_nested;
        q prop_validate_random;
      ] );
    ( "pxml.stats",
      [
        t "figure-2 node breakdown" test_stats_fig2;
        t "figure-2 world count" test_world_count_fig2;
        t "independent choices multiply" test_world_count_multiplies;
      ] );
    ( "pxml.worlds",
      [
        t "figure-2 has three worlds" test_fig2_worlds;
        t "certain document = one world" test_certain_single_world;
        q prop_world_probabilities_sum_to_one;
        q prop_world_count_matches_enumeration;
      ] );
    ( "pxml.compact",
      [
        t "merges duplicate possibilities" test_compact_merges_duplicates;
        t "prunes zero-probability" test_compact_prunes_zero;
        t "fuses certain probability nodes" test_compact_fuses_certain_dists;
        t "idempotent on figure-2" test_compact_idempotent_fig2;
        q prop_compact_preserves_distribution;
        q prop_compact_never_grows;
        q prop_compact_valid;
        t "prune_to_budget meets node and world budgets" test_prune_to_budget;
      ] );
    ( "pxml.intern",
      [
        t "doc interning shares deep-equal subtrees" test_intern_sharing;
        t "tree interning yields pointer equality" test_intern_trees_pointer_equal;
      ] );
    ( "pxml.codec",
      [
        t "figure-2 roundtrip" test_codec_roundtrip_fig2;
        t "string roundtrip" test_codec_string_roundtrip;
        t "rejects malformed encodings" test_codec_rejects_malformed;
        q prop_codec_roundtrip;
      ] );
  ]
