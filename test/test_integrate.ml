(* Tests for matchings and the probabilistic integration engine, including
   the property that the analytic size estimator mirrors the materialiser
   exactly. *)

module Tree = Imprecise.Tree
module Pxml = Imprecise.Pxml
module Worlds = Imprecise.Worlds
module Oracle = Imprecise.Oracle
module Matching = Imprecise.Matching
module Integrate = Imprecise.Integrate
module Dtd = Imprecise.Dtd
module Addressbook = Imprecise.Data.Addressbook
module Workloads = Imprecise.Data.Workloads
module Rulesets = Imprecise.Rulesets

let check = Alcotest.check

let parse = Imprecise.parse_xml_exn

(* ---- matchings ------------------------------------------------------------ *)

let edge left right prob = { Matching.left; right; prob }

let full_graph m n p =
  {
    Matching.n_left = m;
    n_right = n;
    edges = List.concat (List.init m (fun i -> List.init n (fun j -> edge i j p)));
  }

let count_full m n =
  (* Σ_k C(m,k)·C(n,k)·k! — the number of partial injective matchings *)
  let rec fact k = if k = 0 then 1 else k * fact (k - 1) in
  let choose a b =
    if b > a then 0 else fact a / (fact b * fact (a - b))
  in
  List.fold_left ( + ) 0
    (List.init (min m n + 1) (fun k -> choose m k * choose n k * fact k))

let test_matching_counts () =
  List.iter
    (fun (m, n) ->
      let g = full_graph m n 0.5 in
      let c = List.hd (Matching.clusters g) in
      check Alcotest.int
        (Printf.sprintf "matchings of K(%d,%d)" m n)
        (count_full m n) (Matching.count_matchings c))
    [ (1, 1); (2, 2); (2, 3); (3, 3); (4, 2) ]

let test_matching_probabilities_sum () =
  let g = full_graph 3 3 0.4 in
  let c = List.hd (Matching.clusters g) in
  let ms = Matching.matchings c in
  let total = List.fold_left (fun acc (p, _) -> acc +. p) 0. ms in
  check (Alcotest.float 1e-9) "normalised" 1. total;
  check Alcotest.bool "all positive" true (List.for_all (fun (p, _) -> p > 0.) ms)

let test_matching_forced () =
  (* Forced edge (0,0): every matching must contain it. *)
  let g =
    { Matching.n_left = 2; n_right = 2; edges = [ edge 0 0 1.; edge 0 1 0.5; edge 1 1 0.5 ] }
  in
  let c = List.hd (Matching.clusters g) in
  let ms = Matching.matchings c in
  check Alcotest.bool "forced edge everywhere" true
    (List.for_all (fun (_, pairs) -> List.mem (0, 0) pairs) ms);
  check Alcotest.int "two matchings" 2 (List.length ms)

let test_matching_infeasible () =
  let g = { Matching.n_left = 2; n_right = 1; edges = [ edge 0 0 1.; edge 1 0 1. ] } in
  match Matching.matchings (List.hd (Matching.clusters g)) with
  | exception Matching.Infeasible _ -> ()
  | _ -> Alcotest.fail "conflicting forced edges accepted"

let test_matching_limit () =
  let g = full_graph 4 4 0.5 in
  match Matching.matchings ~limit:10 (List.hd (Matching.clusters g)) with
  | exception Matching.Too_many _ -> ()
  | _ -> Alcotest.fail "limit not enforced"

let test_clusters () =
  let g =
    { Matching.n_left = 4; n_right = 4; edges = [ edge 0 0 0.5; edge 1 0 0.5; edge 2 2 0.5 ] }
  in
  let cs = Matching.clusters g in
  check Alcotest.int "two clusters" 2 (List.length cs);
  (match cs with
  | [ c1; c2 ] ->
      check Alcotest.(list int) "cluster 1 lefts" [ 0; 1 ] c1.Matching.lefts;
      check Alcotest.(list int) "cluster 1 rights" [ 0 ] c1.Matching.rights;
      check Alcotest.(list int) "cluster 2 lefts" [ 2 ] c2.Matching.lefts
  | _ -> Alcotest.fail "expected two clusters");
  let iso_l, iso_r = Matching.isolated g in
  check Alcotest.(list int) "isolated lefts" [ 3 ] iso_l;
  check Alcotest.(list int) "isolated rights" [ 1; 3 ] iso_r

let test_graph_of_verdicts () =
  let verdict i j =
    if i = j then Oracle.Same else if i < j then Oracle.Unsure 0.3 else Oracle.Different
  in
  let g = Matching.graph_of_verdicts ~n_left:2 ~n_right:2 verdict in
  check Alcotest.int "edges" 3 (List.length g.Matching.edges)

(* ---- integration: figure 2 -------------------------------------------------- *)

let fig2_config ?factorize () =
  Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) ~dtd:Addressbook.dtd
    ?factorize ()

let integrate_fig2 () =
  match Integrate.integrate (fig2_config ()) Addressbook.source_a Addressbook.source_b with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "integrate failed: %a" Integrate.pp_error e

let test_fig2_worlds () =
  let doc = integrate_fig2 () in
  check Alcotest.bool "valid" true (Result.is_ok (Pxml.validate doc));
  let worlds = Worlds.merged doc in
  check Alcotest.int "three worlds" 3 (List.length worlds);
  let probs = List.map fst worlds in
  check (Alcotest.float 1e-9) "p(no match)" 0.5 (List.nth probs 0);
  check (Alcotest.float 1e-9) "p(match, 1111)" 0.25 (List.nth probs 1);
  check (Alcotest.float 1e-9) "p(match, 2222)" 0.25 (List.nth probs 2);
  (* The DTD rejected the two-phones world: no world has a person with two
     tel children. *)
  List.iter
    (fun (_, forest) ->
      List.iter
        (fun w ->
          Tree.iter
            (fun n ->
              if Tree.name n = Some "person" then
                check Alcotest.bool "at most one tel" true
                  (List.length (Tree.find_children n "tel") <= 1))
            w)
        forest)
    worlds

let test_fig2_without_dtd () =
  (* Without the DTD, the matched John keeps both phone numbers: the
     two-phone world is possible and there are still 3 worlds, but one of
     them has a two-phone person. *)
  let cfg = Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) () in
  match Integrate.integrate cfg Addressbook.source_a Addressbook.source_b with
  | Error e -> Alcotest.failf "integrate failed: %a" Integrate.pp_error e
  | Ok doc ->
      (* Without the DTD the tels also enter the matching pool, so: persons
         distinct; persons same with both phones; persons same with the
         tels co-referent and one of two values — 4 distinct worlds. *)
      let worlds = Worlds.merged doc in
      check Alcotest.int "four worlds" 4 (List.length worlds);
      let has_two_phone_person =
        List.exists
          (fun (_, forest) ->
            List.exists
              (fun w ->
                Tree.fold
                  (fun acc n ->
                    acc
                    || Tree.name n = Some "person"
                       && List.length (Tree.find_children n "tel") = 2)
                  false w)
              forest)
          worlds
      in
      check Alcotest.bool "two-phone John possible" true has_two_phone_person

let test_fig2_matches_paper_tree () =
  (* The integrated document is exactly the hand-built Figure 2 document
     from the pxml tests, up to world distribution. *)
  let doc = integrate_fig2 () in
  check Alcotest.int "world combinations" (Some 3 |> Option.get)
    (Option.get (Pxml.world_count_int doc))

(* ---- integration: semantics ---------------------------------------------------- *)

let oracle_05 = Oracle.make [ Oracle.deep_equal_rule ]

let worlds_equal a b =
  let wa = Worlds.merged a and wb = Worlds.merged b in
  List.length wa = List.length wb
  && List.for_all2
       (fun (p, w) (q, v) -> Float.abs (p -. q) < 1e-6 && List.equal Tree.deep_equal w v)
       wa wb

let test_identical_documents_merge () =
  let d = parse "<r><a>x</a><b>y</b></r>" in
  let cfg = Integrate.config ~oracle:oracle_05 () in
  match Integrate.integrate cfg d d with
  | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e
  | Ok doc -> (
      check Alcotest.bool "certain result" true (Pxml.is_certain doc);
      match Pxml.to_tree_exn doc with
      | [ t ] -> check Alcotest.bool "same document" true (Tree.deep_equal d t)
      | _ -> Alcotest.fail "one root expected")

let test_all_different_concatenates () =
  let all_diff = Oracle.make [ { Oracle.name = "nope"; judge = (fun _ _ -> Some Oracle.Different) } ] in
  let a = parse "<r><x>1</x></r>" and b = parse "<r><x>2</x></r>" in
  let cfg = Integrate.config ~oracle:all_diff () in
  match Integrate.integrate cfg a b with
  | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e
  | Ok doc -> (
      check Alcotest.bool "certain" true (Pxml.is_certain doc);
      match Pxml.to_tree_exn doc with
      | [ t ] -> check Alcotest.int "both children kept" 2 (List.length (Tree.children t))
      | _ -> Alcotest.fail "one root expected")

let test_symmetry_up_to_worlds () =
  let a = Addressbook.source_a and b = Addressbook.source_b in
  let cfg = fig2_config () in
  match Integrate.integrate cfg a b, Integrate.integrate cfg b a with
  | Ok ab, Ok ba ->
      let wa = Worlds.merged ab and wb = Worlds.merged ba in
      check Alcotest.int "same world count" (List.length wa) (List.length wb);
      List.iter2
        (fun (p, _) (q, _) -> check (Alcotest.float 1e-6) "same probabilities" p q)
        wa wb
  | _ -> Alcotest.fail "integration failed"

let test_empty_collections () =
  let cfg = Integrate.config ~oracle:oracle_05 () in
  (* both empty *)
  (match Integrate.integrate cfg (parse "<movies/>") (parse "<movies/>") with
  | Ok doc -> (
      check Alcotest.bool "certain" true (Pxml.is_certain doc);
      match Pxml.to_tree_exn doc with
      | [ Tree.Element ("movies", _, []) ] -> ()
      | _ -> Alcotest.fail "expected an empty movies element")
  | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e);
  (* one empty: the other side's content is kept certainly *)
  match Integrate.integrate cfg (parse "<movies/>") (parse "<movies><m>x</m></movies>") with
  | Ok doc -> (
      match Pxml.to_tree_exn doc with
      | [ t ] -> check Alcotest.int "one child kept" 1 (List.length (Tree.children t))
      | _ -> Alcotest.fail "one root expected")
  | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e

let test_root_mismatch () =
  let cfg = Integrate.config ~oracle:oracle_05 () in
  match Integrate.integrate cfg (parse "<a/>") (parse "<b/>") with
  | Error (Integrate.Root_mismatch ("a", "b")) -> ()
  | _ -> Alcotest.fail "expected Root_mismatch"

let test_mixed_content_rejected () =
  let cfg = Integrate.config ~oracle:oracle_05 () in
  match
    Integrate.integrate cfg (parse "<r>text<a/></r>") (parse "<r>text<a/></r>")
  with
  | Error (Integrate.Mixed_content "r") -> ()
  | Ok _ -> Alcotest.fail "mixed content accepted"
  | Error e -> Alcotest.failf "wrong error: %a" Integrate.pp_error e

let test_text_conflict () =
  let cfg = Integrate.config ~oracle:oracle_05 () in
  match Integrate.integrate cfg (parse "<v>1</v>") (parse "<v>2</v>") with
  | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e
  | Ok doc ->
      let worlds = Worlds.merged doc in
      check Alcotest.int "two value worlds" 2 (List.length worlds);
      List.iter (fun (p, _) -> check (Alcotest.float 1e-9) "even" 0.5 p) worlds

let test_value_conflict_weights () =
  let cfg = Integrate.config ~oracle:oracle_05 ~value_conflict:(fun _ _ -> 0.8) () in
  match Integrate.integrate cfg (parse "<v>1</v>") (parse "<v>2</v>") with
  | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e
  | Ok doc -> (
      match Worlds.merged doc with
      | [ (p1, [ w1 ]); (p2, _) ] ->
          check (Alcotest.float 1e-9) "left weight" 0.8 p1;
          check Alcotest.string "left value first" "1" (Tree.text_content w1);
          check (Alcotest.float 1e-9) "right weight" 0.2 p2
      | _ -> Alcotest.fail "expected two worlds")

let test_reconcile_hook () =
  let reconcile tag l r =
    if tag = "v" then Some (l ^ "/" ^ r) else None
  in
  let cfg = Integrate.config ~oracle:oracle_05 ~reconcile () in
  match Integrate.integrate cfg (parse "<v>a</v>") (parse "<v>b</v>") with
  | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e
  | Ok doc -> (
      check Alcotest.bool "certain" true (Pxml.is_certain doc);
      match Pxml.to_tree_exn doc with
      | [ t ] -> check Alcotest.string "reconciled" "a/b" (Tree.text_content t)
      | _ -> Alcotest.fail "one root")

let test_attribute_conflict () =
  let cfg = Integrate.config ~oracle:oracle_05 () in
  match Integrate.integrate cfg (parse {|<r k="1" x="s"/>|}) (parse {|<r k="2" y="t"/>|}) with
  | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e
  | Ok doc ->
      let worlds = Worlds.merged doc in
      check Alcotest.int "two attr worlds" 2 (List.length worlds);
      List.iter
        (fun (_, forest) ->
          match forest with
          | [ w ] ->
              (* non-conflicting attributes from both sides survive *)
              check Alcotest.(option string) "x kept" (Some "s") (Tree.attribute w "x");
              check Alcotest.(option string) "y kept" (Some "t") (Tree.attribute w "y")
          | _ -> Alcotest.fail "one root")
        worlds

let test_structural_conflict_alternatives () =
  (* One side text, other side elements: the merged element becomes a
     choice between the two variants. *)
  let cfg = Integrate.config ~oracle:oracle_05 () in
  match Integrate.integrate cfg (parse "<r>just text</r>") (parse "<r><a>x</a></r>") with
  | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e
  | Ok doc -> check Alcotest.int "two worlds" 2 (List.length (Worlds.merged doc))

let test_oracle_conflict_propagates () =
  let conflicted =
    Oracle.make
      [
        { Oracle.name = "s"; judge = (fun _ _ -> Some Oracle.Same) };
        { Oracle.name = "d"; judge = (fun _ _ -> Some Oracle.Different) };
      ]
  in
  let cfg = Integrate.config ~oracle:conflicted () in
  match Integrate.integrate cfg (parse "<r><a>1</a></r>") (parse "<r><a>2</a></r>") with
  | Error (Integrate.Oracle_conflict _) -> ()
  | _ -> Alcotest.fail "expected Oracle_conflict"

let test_infeasible_propagates () =
  (* Two identical siblings on one side, deep-equal forced to one right:
     sibling distinctness is violated. *)
  let cfg = Integrate.config ~oracle:oracle_05 () in
  match
    Integrate.integrate cfg (parse "<r><a>x</a><a>x</a></r>") (parse "<r><a>x</a></r>")
  with
  | Error (Integrate.Infeasible _) -> ()
  | Ok _ -> Alcotest.fail "expected Infeasible"
  | Error e -> Alcotest.failf "wrong error: %a" Integrate.pp_error e

let test_too_large () =
  let wl = Workloads.confusing () in
  let cfg =
    Integrate.config ~oracle:Rulesets.generic.oracle ~dtd:wl.dtd ~max_possibilities:100 ()
  in
  match Integrate.integrate cfg (Workloads.mpeg7_doc wl) (Workloads.imdb_doc wl) with
  | Error (Integrate.Too_large _) -> ()
  | Ok _ -> Alcotest.fail "expected Too_large"
  | Error e -> Alcotest.failf "wrong error: %a" Integrate.pp_error e

(* ---- factorized representation --------------------------------------------------- *)

let test_factorize_same_distribution () =
  let wl = Workloads.confusing () in
  let rules = Rulesets.movie ~genre:true ~title:true ~year:true () in
  let run factorize =
    let cfg = Integrate.config ~oracle:rules.oracle ~dtd:wl.dtd ~factorize () in
    match Integrate.integrate cfg (Workloads.mpeg7_doc wl) (Workloads.imdb_doc wl) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e
  in
  let flat = run false and fact = run true in
  check Alcotest.bool "same worlds" true (worlds_equal flat fact);
  check Alcotest.bool "factorized no larger" true
    (Pxml.node_count fact <= Pxml.node_count flat)

let test_factorize_smaller_under_confusion () =
  let wl = Workloads.confusing () in
  let rules = Rulesets.movie ~title:true () in
  let run factorize =
    match
      Integrate.stats
        (Integrate.config ~oracle:rules.oracle ~dtd:wl.dtd ~factorize ())
        (Workloads.mpeg7_doc wl) (Workloads.imdb_doc wl)
    with
    | Ok s -> s.Integrate.nodes
    | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e
  in
  check Alcotest.bool "strictly smaller" true (run true < run false /. 2.)

(* ---- analytic estimator mirrors the materialiser --------------------------------- *)

let stats_mirror_cases =
  [
    ("fig2", Addressbook.source_a, Addressbook.source_b, Addressbook.dtd, oracle_05);
    ( "confusing/full-rules",
      Workloads.mpeg7_doc (Workloads.confusing ()),
      Workloads.imdb_doc (Workloads.confusing ()),
      (Workloads.confusing ()).dtd,
      (Rulesets.movie ~genre:true ~title:true ~year:true ()).oracle );
    ( "confusing/genre+title",
      Workloads.mpeg7_doc (Workloads.confusing ()),
      Workloads.imdb_doc (Workloads.confusing ()),
      (Workloads.confusing ()).dtd,
      (Rulesets.movie ~genre:true ~title:true ()).oracle );
  ]

let test_stats_mirror () =
  List.iter
    (fun (name, a, b, dtd, oracle) ->
      List.iter
        (fun factorize ->
          let cfg = Integrate.config ~oracle ~dtd ~factorize () in
          match Integrate.integrate cfg a b, Integrate.stats cfg a b with
          | Ok doc, Ok s ->
              check (Alcotest.float 1e-6)
                (Printf.sprintf "%s nodes (factorize=%b)" name factorize)
                (float_of_int (Pxml.node_count doc))
                s.Integrate.nodes;
              check (Alcotest.float 0.5)
                (Printf.sprintf "%s worlds (factorize=%b)" name factorize)
                (Pxml.world_count doc) s.Integrate.worlds
          | Error e, _ | _, Error e -> Alcotest.failf "%s failed: %a" name Integrate.pp_error e)
        [ false; true ])
    stats_mirror_cases

let prop_stats_mirror_random =
  (* Random small documents with a coin-flip oracle: the estimator and the
     materialiser must agree exactly on node counts. *)
  let gen =
    QCheck.map
      (fun seed ->
        let rng = Imprecise.Data.Prng.make seed in
        let a, rng = Imprecise.Data.Random_docs.xml rng ~depth:2 in
        let b, _ = Imprecise.Data.Random_docs.xml rng ~depth:2 in
        (* force equal roots so integration proceeds *)
        let retag t = match t with Tree.Element (_, at, c) -> Tree.Element ("r", at, c) | t -> t in
        (retag a, retag b))
      QCheck.int
  in
  QCheck.Test.make ~name:"stats mirrors materialisation on random documents" ~count:60 gen
    (fun (a, b) ->
      let cfg = Integrate.config ~oracle:oracle_05 ~max_possibilities:100000 () in
      match Integrate.integrate cfg a b, Integrate.stats cfg a b with
      | Ok doc, Ok s ->
          float_of_int (Pxml.node_count doc) = s.Integrate.nodes
          && Float.abs (Pxml.world_count doc -. s.Integrate.worlds) < 1e-6
      | Error (Integrate.Mixed_content _), Error (Integrate.Mixed_content _) -> true
      | Error (Integrate.Infeasible _), Error (Integrate.Infeasible _) -> true
      | Error (Integrate.Too_large _), _ -> QCheck.assume_fail ()
      | Ok _, Error _ | Error _, Ok _ -> false
      | Error _, Error _ -> true)

let prop_stats_mirror_deeper =
  (* Depth-3 documents: clusters nest inside merged subtrees. *)
  let gen =
    QCheck.map
      (fun seed ->
        let rng = Imprecise.Data.Prng.make seed in
        let a, rng = Imprecise.Data.Random_docs.xml rng ~depth:3 in
        let b, _ = Imprecise.Data.Random_docs.xml rng ~depth:3 in
        let retag t = match t with Tree.Element (_, at, c) -> Tree.Element ("r", at, c) | t -> t in
        (retag a, retag b))
      QCheck.int
  in
  QCheck.Test.make ~name:"stats mirrors materialisation at depth 3" ~count:30 gen
    (fun (a, b) ->
      let cfg = Integrate.config ~oracle:oracle_05 ~max_possibilities:200000 () in
      match Integrate.integrate cfg a b, Integrate.stats cfg a b with
      | Ok doc, Ok s -> float_of_int (Pxml.node_count doc) = s.Integrate.nodes
      | Error (Integrate.Too_large _), _ -> QCheck.assume_fail ()
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)

let prop_integration_valid_and_normalised =
  let gen =
    QCheck.map
      (fun seed ->
        let rng = Imprecise.Data.Prng.make seed in
        let a, rng = Imprecise.Data.Random_docs.xml rng ~depth:2 in
        let b, _ = Imprecise.Data.Random_docs.xml rng ~depth:2 in
        let retag t = match t with Tree.Element (_, at, c) -> Tree.Element ("r", at, c) | t -> t in
        (retag a, retag b))
      QCheck.int
  in
  QCheck.Test.make ~name:"integration output validates; world probabilities sum to 1"
    ~count:60 gen (fun (a, b) ->
      let cfg = Integrate.config ~oracle:oracle_05 ~max_possibilities:100000 () in
      match Integrate.integrate cfg a b with
      | Error _ -> true
      | Ok doc ->
          Result.is_ok (Pxml.validate doc)
          &&
          if Pxml.world_count doc <= 5000. then
            Float.abs (Worlds.total_probability doc -. 1.) < 1e-6
          else true)

(* ---- workload-level regression (the paper's headline numbers) --------------------- *)

let test_stats_mirror_figure5_points () =
  (* The headline Figure-5 curve is produced by the estimator; check it
     against full materialisation at the largest still-materialisable
     points. *)
  let wl = Workloads.figure5 ~n_imdb:8 in
  let a = Workloads.mpeg7_doc wl and b = Workloads.imdb_doc wl in
  List.iter
    (fun (rs : Rulesets.t) ->
      let cfg =
        Integrate.config ~oracle:rs.oracle ~dtd:wl.dtd ~max_possibilities:3_000_000 ()
      in
      match Integrate.integrate cfg a b, Integrate.stats cfg a b with
      | Ok doc, Ok s ->
          check (Alcotest.float 1e-6)
            (Printf.sprintf "nodes at n=8 (%s)" rs.name)
            (float_of_int (Pxml.node_count doc))
            s.Integrate.nodes
      | Error e, _ | _, Error e -> Alcotest.failf "%s failed: %a" rs.name Integrate.pp_error e)
    [ Rulesets.movie ~title:true (); Rulesets.movie ~title:true ~year:true () ]

let test_table1_monotone () =
  let wl = Workloads.confusing () in
  let a = Workloads.mpeg7_doc wl and b = Workloads.imdb_doc wl in
  let nodes =
    List.map
      (fun (rs : Rulesets.t) ->
        match
          Integrate.stats (Integrate.config ~oracle:rs.oracle ~dtd:wl.dtd ()) a b
        with
        | Ok s -> s.Integrate.nodes
        | Error e -> Alcotest.failf "%s failed: %a" rs.name Integrate.pp_error e)
      Rulesets.table1
  in
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  check Alcotest.bool "each rule reduces uncertainty" true (strictly_decreasing nodes);
  check Alcotest.bool "none-row is in the millions" true (List.nth nodes 0 > 1e6);
  check Alcotest.bool "full rules bring it to thousands" true (List.nth nodes 4 < 5e3)

let test_typical_conditions () =
  let wl = Workloads.typical () in
  let a = Workloads.mpeg7_doc wl and b = Workloads.imdb_doc wl in
  let cfg =
    Integrate.config ~oracle:Rulesets.full.oracle ~reconcile:Rulesets.full.reconcile
      ~dtd:wl.dtd ()
  in
  match Integrate.stats cfg a b with
  | Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e
  | Ok s ->
      check Alcotest.int "two undecided pairs" 2 s.Integrate.trace.Integrate.unsure_pairs;
      check (Alcotest.float 0.) "four possible worlds" 4. s.Integrate.worlds;
      check Alcotest.bool "a few thousand nodes" true (s.Integrate.nodes < 10_000.)

(* ---- blocking: golden pins and counter consistency -------------------------- *)

module Blocking = Imprecise.Blocking
module Codec = Imprecise.Codec

(* Figure 2 under every blocker preset: the blocking stage must not change
   the integration outcome — worlds, probabilities and the merged encoding
   are pinned to the All_pairs baseline. *)
let test_fig2_pinned_under_blockers () =
  let integrate blocker =
    let cfg =
      Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ])
        ~dtd:Addressbook.dtd ~blocker ()
    in
    match Integrate.integrate cfg Addressbook.source_a Addressbook.source_b with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "integrate failed: %a" Integrate.pp_error e
  in
  let baseline = integrate Blocking.All_pairs in
  let ref_bytes = Codec.to_string ~indent:2 baseline in
  check Alcotest.int "baseline: three worlds" 3 (List.length (Worlds.merged baseline));
  List.iter
    (fun blocker ->
      let doc = integrate blocker in
      check Alcotest.string
        (Printf.sprintf "fig2 byte-identical under %s" (Blocking.describe blocker))
        ref_bytes
        (Codec.to_string ~indent:2 doc))
    [
      Blocking.key ~field:"nm" ();
      Blocking.qgram ~field:"nm" ();
      Blocking.sorted_neighbourhood ~field:"nm" ();
    ]

(* §VI "typical conditions" under blocker presets: clusters, verdict
   tallies and the merged document are pinned to the All_pairs baseline —
   only the pair accounting may differ. The presets are chosen to be
   recall-safe for the full rule set: key on year (the year rule calls any
   year mismatch Different), q-gram on title at a threshold below the
   title rule's Different cut-off, and a sorted neighbourhood on title
   (the two undecided pairs have near-identical titles, hence adjacent
   sort positions). *)
let test_typical_pinned_under_blockers () =
  let wl = Workloads.typical () in
  let a = Workloads.mpeg7_doc wl and b = Workloads.imdb_doc wl in
  let run blocker =
    let cfg =
      Integrate.config ~oracle:Rulesets.full.oracle ~reconcile:Rulesets.full.reconcile
        ~dtd:wl.dtd ~factorize:true ~blocker ()
    in
    match Integrate.integrate_traced cfg a b, Integrate.stats cfg a b with
    | Ok (doc, trace), Ok s -> (Codec.to_string ~indent:2 doc, trace, s)
    | Error e, _ | _, Error e -> Alcotest.failf "typical failed: %a" Integrate.pp_error e
  in
  let ref_bytes, ref_trace, ref_stats = run Blocking.All_pairs in
  check Alcotest.int "baseline: two undecided pairs" 2 ref_trace.Integrate.unsure_pairs;
  check (Alcotest.float 0.) "baseline: four worlds" 4. ref_stats.Integrate.worlds;
  List.iter
    (fun blocker ->
      let name = Blocking.describe blocker in
      let bytes, trace, s = run blocker in
      check Alcotest.string (name ^ ": byte-identical document") ref_bytes bytes;
      check Alcotest.int (name ^ ": same clusters") ref_trace.Integrate.cluster_count
        trace.Integrate.cluster_count;
      check Alcotest.int (name ^ ": same forced matches") ref_trace.Integrate.same_pairs
        trace.Integrate.same_pairs;
      check Alcotest.int (name ^ ": same undecided pairs") ref_trace.Integrate.unsure_pairs
        trace.Integrate.unsure_pairs;
      check (Alcotest.float 1e-6) (name ^ ": same nodes") ref_stats.Integrate.nodes
        s.Integrate.nodes;
      check (Alcotest.float 1e-6) (name ^ ": same worlds") ref_stats.Integrate.worlds
        s.Integrate.worlds;
      (* the full grid is always accounted, whatever was skipped *)
      check Alcotest.int (name ^ ": same pairs generated")
        ref_trace.Integrate.pairs_generated trace.Integrate.pairs_generated)
    [
      Blocking.key ~field:"year" ();
      Blocking.qgram ~field:"title" ~threshold:0.25 ();
      Blocking.sorted_neighbourhood ~field:"title" ();
    ]

(* Regression for the pair-accounting fix: generated / compared / blocked
   must stay consistent whether pruning happens at the rule level
   ([block], evaluated then dropped), at the index level ([blocker],
   skipped without evaluation), both, or neither. *)
let test_blocking_counter_consistency () =
  let a, b = Addressbook.larger 30 5 in
  let oracle =
    Oracle.make [ Oracle.deep_equal_rule; Oracle.key_rule ~tag:"person" ~field:"nm" ]
  in
  let name_block t = if Tree.name t = Some "person" then Tree.field t "nm" else None in
  let run ?block ?blocker () =
    let cfg =
      Integrate.config ~oracle ~dtd:Addressbook.dtd ~factorize:true ?block ?blocker ()
    in
    match Integrate.stats cfg a b with
    | Ok s -> s
    | Error e -> Alcotest.failf "stats failed: %a" Integrate.pp_error e
  in
  let tr (s : Integrate.summary) = s.Integrate.trace in
  let plain = run () in
  let t0 = tr plain in
  check Alcotest.int "no index: every generated pair is compared"
    t0.Integrate.pairs_generated t0.Integrate.pairs_compared;
  check Alcotest.int "no blocking at all: blocked = 0" 0 t0.Integrate.pairs_blocked;
  (* rule-level blocking evaluates the cell, then drops it *)
  let t1 = tr (run ~block:name_block ()) in
  check Alcotest.int "rule blocks still compare every pair"
    t1.Integrate.pairs_generated t1.Integrate.pairs_compared;
  check Alcotest.bool "rule-level blocks counted" true (t1.Integrate.pairs_blocked > 0);
  check Alcotest.int "same grid either way" t0.Integrate.pairs_generated
    t1.Integrate.pairs_generated;
  (* index-level blocking skips the cell without evaluating it *)
  let key_nm = Blocking.key ~field:"nm" () in
  let idx = run ~blocker:key_nm () in
  let t2 = tr idx in
  check Alcotest.int "index keeps the full grid accounted"
    t0.Integrate.pairs_generated t2.Integrate.pairs_generated;
  check Alcotest.bool "index skipped pairs" true
    (t2.Integrate.pairs_compared < t2.Integrate.pairs_generated);
  check Alcotest.int "every skipped pair is reported blocked"
    (t2.Integrate.pairs_generated - t2.Integrate.pairs_compared)
    t2.Integrate.pairs_blocked;
  (* both layers: the index removes exactly the pairs the rule would have
     dropped, so blocked = index skips and no rule-level block fires *)
  let t3 = tr (run ~block:name_block ~blocker:key_nm ()) in
  check Alcotest.int "rule finds nothing left to block"
    (t3.Integrate.pairs_generated - t3.Integrate.pairs_compared)
    t3.Integrate.pairs_blocked;
  check Alcotest.int "same comparisons as index alone" t2.Integrate.pairs_compared
    t3.Integrate.pairs_compared;
  (* and none of it changed the result *)
  List.iter
    (fun (label, s) ->
      check (Alcotest.float 1e-6) (label ^ ": nodes unchanged") plain.Integrate.nodes
        s.Integrate.nodes;
      check (Alcotest.float 1e-6) (label ^ ": worlds unchanged") plain.Integrate.worlds
        s.Integrate.worlds)
    [ ("blocker", idx); ("block+blocker", run ~block:name_block ~blocker:key_nm ()) ]

(* ---- mid-fold failure atomicity ------------------------------------------- *)

(* Regression for the batch engine's atomicity contract: a source failing
   mid-fold (here: the third source's root does not match) must surface as
   a clean typed Error and leave the shared decision cache holding only
   sound individual verdicts — never partial fold state. A rerun over good
   sources with the surviving cache must be identical to a fresh run. *)
let test_integrate_many_mid_fold_atomicity () =
  let book suffix =
    parse
      (Printf.sprintf
         "<addressbook><person><nm>Alice</nm><tel>111%s</tel></person>\
          <person><nm>Bob</nm><tel>222%s</tel></person></addressbook>"
         suffix suffix)
  in
  let good = [ book ""; book "x"; book "y" ] in
  let bad = [ book ""; book "x"; parse "<phonebook><p>oops</p></phonebook>" ] in
  let fresh =
    match Imprecise.integrate_many good with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "fresh fold failed: %a" Integrate.pp_error e
  in
  let decisions = Imprecise.Decision_cache.create () in
  (match Imprecise.integrate_many ~decisions bad with
  | Ok _ -> Alcotest.fail "a mid-fold root mismatch must fail the fold"
  | Error (Integrate.Root_mismatch _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Integrate.pp_error e);
  (* the cache survived the failed fold with only sound verdicts: reusing
     it reproduces the fresh result exactly ... *)
  (match Imprecise.integrate_many ~decisions good with
  | Ok doc -> check Alcotest.bool "reused cache, identical result" true (Pxml.equal fresh doc)
  | Error e -> Alcotest.failf "rerun over the surviving cache failed: %a" Integrate.pp_error e);
  (* ... and a second reuse is served from the cache, not the Oracle *)
  let count name = Imprecise.Obs.Metrics.count (Imprecise.Obs.Metrics.counter name) in
  let decided0 = count "oracle.decisions" in
  (match Imprecise.integrate_many ~decisions good with
  | Ok doc -> check Alcotest.bool "cached rerun still identical" true (Pxml.equal fresh doc)
  | Error e -> Alcotest.failf "cached rerun failed: %a" Integrate.pp_error e);
  check Alcotest.int "no fresh Oracle decisions on the cached rerun" decided0
    (count "oracle.decisions")

(* Regression: a Decision_cache lookup must not re-traverse the subtree
   pair (lookups used to structurally hash both trees on every probe).
   Keys are interned, and the intern pool memoizes by physical identity:
   once a pair has been seen, further finds with the same physical trees
   cost zero fresh intern-pool misses — the cached structural hash and a
   pointer check do all the work. *)
let test_decision_cache_hit_does_not_retraverse () =
  let deep tag n =
    let rec go i acc = if i = 0 then acc else go (i - 1) (Tree.element tag [ acc ]) in
    go n (Tree.leaf "leaf" tag)
  in
  let a = deep "a" 300 and b = deep "b" 300 in
  let cache = Imprecise.Decision_cache.create () in
  Imprecise.Decision_cache.add cache a b (Imprecise.Oracle.Unsure 0.5);
  let count name = Imprecise.Obs.Metrics.count (Imprecise.Obs.Metrics.counter name) in
  (* warm: the first find may still intern (a cold pool after add is
     impossible — add interned both trees — but the memo could have been
     reset); from here on the physical memo must answer *)
  (match Imprecise.Decision_cache.find cache a b with
  | Some (Imprecise.Oracle.Unsure p) -> check (Alcotest.float 0.) "verdict" 0.5 p
  | _ -> Alcotest.fail "warm find missed");
  let misses0 = count "pxml.intern.miss" in
  for _ = 1 to 100 do
    match Imprecise.Decision_cache.find cache a b with
    | Some _ -> ()
    | None -> Alcotest.fail "repeat find missed"
  done;
  check Alcotest.int "100 cache hits interned nothing new (no re-traversal)" misses0
    (count "pxml.intern.miss")

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let q p = QCheck_alcotest.to_alcotest p in
  [
    ( "integrate.matching",
      [
        t "counts on complete bipartite graphs" test_matching_counts;
        t "probabilities normalised" test_matching_probabilities_sum;
        t "forced edges" test_matching_forced;
        t "infeasible forced edges" test_matching_infeasible;
        t "enumeration limit" test_matching_limit;
        t "cluster decomposition" test_clusters;
        t "graph from verdicts" test_graph_of_verdicts;
      ] );
    ( "integrate.fig2",
      [
        t "three worlds with the right probabilities" test_fig2_worlds;
        t "without DTD the two-phone world survives" test_fig2_without_dtd;
        t "world combination count" test_fig2_matches_paper_tree;
      ] );
    ( "integrate.semantics",
      [
        t "integrating a document with itself is identity" test_identical_documents_merge;
        t "all-different oracle concatenates" test_all_different_concatenates;
        t "symmetric world distribution" test_symmetry_up_to_worlds;
        t "empty collections" test_empty_collections;
        t "root mismatch" test_root_mismatch;
        t "mixed content rejected" test_mixed_content_rejected;
        t "text conflicts become choices" test_text_conflict;
        t "value conflict weights" test_value_conflict_weights;
        t "reconcile hook" test_reconcile_hook;
        t "attribute conflicts become element choices" test_attribute_conflict;
        t "structural conflicts become alternatives" test_structural_conflict_alternatives;
        t "oracle conflict propagates" test_oracle_conflict_propagates;
        t "sibling-distinctness violation propagates" test_infeasible_propagates;
        t "possibility cap enforced" test_too_large;
      ] );
    ( "integrate.factorize",
      [
        t "same world distribution" test_factorize_same_distribution;
        t "much smaller under confusion" test_factorize_smaller_under_confusion;
      ] );
    ( "integrate.estimator",
      [
        t "mirrors materialiser on named cases" test_stats_mirror;
        q prop_stats_mirror_random;
        q prop_stats_mirror_deeper;
        q prop_integration_valid_and_normalised;
      ] );
    ( "integrate.workloads",
      [
        t "Table 1 is monotone" test_table1_monotone;
        t "estimator matches materialisation on Figure-5 points" test_stats_mirror_figure5_points;
        t "typical conditions: 2 undecided, 4 worlds" test_typical_conditions;
      ] );
    ( "integrate.blocker",
      [
        t "Figure 2 pinned under every blocker" test_fig2_pinned_under_blockers;
        t "typical conditions pinned under blockers" test_typical_pinned_under_blockers;
        t "generated/compared/blocked consistency" test_blocking_counter_consistency;
      ] );
    ( "integrate.resilience",
      [ t "mid-fold failure is atomic" test_integrate_many_mid_fold_atomicity ] );
    ( "integrate.decision_cache",
      [
        t "a cache hit does not re-traverse the trees"
          test_decision_cache_hit_does_not_retraverse;
      ] );
  ]
