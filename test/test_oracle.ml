(* Tests for string similarity and the Oracle's rule machinery. *)

module Similarity = Imprecise.Similarity
module Oracle = Imprecise.Oracle
module Tree = Imprecise.Tree

let check = Alcotest.check

let fcheck name = check (Alcotest.float 1e-9) name

(* ---- similarity ----------------------------------------------------------- *)

let test_levenshtein () =
  check Alcotest.int "identical" 0 (Similarity.levenshtein "kitten" "kitten");
  check Alcotest.int "classic" 3 (Similarity.levenshtein "kitten" "sitting");
  check Alcotest.int "empty left" 3 (Similarity.levenshtein "" "abc");
  check Alcotest.int "empty right" 3 (Similarity.levenshtein "abc" "");
  check Alcotest.int "single subst" 1 (Similarity.levenshtein "cat" "car")

let test_edit_similarity () =
  fcheck "identical" 1. (Similarity.edit_similarity "abc" "abc");
  fcheck "both empty" 1. (Similarity.edit_similarity "" "");
  fcheck "disjoint" 0. (Similarity.edit_similarity "abc" "xyz");
  fcheck "partial" (1. -. (1. /. 4.)) (Similarity.edit_similarity "abcd" "abce")

let test_jaro_winkler () =
  fcheck "identical" 1. (Similarity.jaro_winkler "martha" "martha");
  check Alcotest.bool "transposition-tolerant" true
    (Similarity.jaro "martha" "marhta" > 0.9);
  check Alcotest.bool "prefix boost" true
    (Similarity.jaro_winkler "dixon" "dicksonx" >= Similarity.jaro "dixon" "dicksonx");
  fcheck "empty vs nonempty" 0. (Similarity.jaro "" "abc");
  fcheck "both empty" 1. (Similarity.jaro "" "")

let test_tokens () =
  check
    Alcotest.(list string)
    "split and lowercase" [ "jaws"; "2"; "the"; "revenge" ]
    (Similarity.tokens "Jaws 2: The  Revenge!");
  check Alcotest.(list string) "empty" [] (Similarity.tokens "  ... ")

let test_token_jaccard () =
  fcheck "reordered names" 1. (Similarity.token_jaccard "John Woo" "Woo, John");
  fcheck "disjoint" 0. (Similarity.token_jaccard "Jaws" "Die Hard");
  fcheck "half" 0.5 (Similarity.token_jaccard "Jaws" "Jaws 2");
  fcheck "both empty" 1. (Similarity.token_jaccard "" "")

let test_name_similarity () =
  fcheck "convention flip" 1. (Similarity.name_similarity "John McTiernan" "McTiernan, John");
  check Alcotest.bool "typo tolerated" true (Similarity.name_similarity "Jon Woo" "John Woo" > 0.7);
  check Alcotest.bool "different people" true
    (Similarity.name_similarity "Renny Harlin" "Len Wiseman" < 0.4)

let test_title_similarity () =
  check Alcotest.bool "sequel capped" true (Similarity.title_similarity "Jaws" "Jaws 2" <= 0.9);
  fcheck "same sequel marker uncapped" 1.
    (Similarity.title_similarity "Jaws 2" "jaws 2");
  check Alcotest.bool "franchise vs other franchise" true
    (Similarity.title_similarity "Jaws" "Die Hard 2" < 0.3);
  check Alcotest.bool "paper's II confusion stays plausible" true
    (Similarity.title_similarity "Mission: Impossible II" "Mission: Impossible" >= 0.3)

let prop_similarity_bounds =
  QCheck.Test.make ~name:"similarities stay in [0,1] and are symmetric" ~count:300
    QCheck.(pair (string_of_size (Gen.int_bound 12)) (string_of_size (Gen.int_bound 12)))
    (fun (a, b) ->
      List.for_all
        (fun f ->
          let x = f a b and y = f b a in
          x >= 0. && x <= 1. +. 1e-9 && Float.abs (x -. y) < 1e-9)
        [
          Similarity.edit_similarity;
          Similarity.jaro;
          Similarity.jaro_winkler;
          Similarity.token_jaccard;
          Similarity.name_similarity;
          Similarity.title_similarity;
        ])

(* ---- q-grams and the inverted index ----------------------------------------- *)

let test_normalize_key () =
  check Alcotest.string "case and whitespace" "jaws 2 the revenge"
    (Similarity.normalize_key "  Jaws 2:  The REVENGE! ");
  check Alcotest.string "empty" "" (Similarity.normalize_key "  ... ");
  check Alcotest.string "idempotent" "a b" (Similarity.normalize_key (Similarity.normalize_key "A  b"))

let test_qgrams () =
  check Alcotest.(list string) "empty string has no grams" [] (Similarity.qgrams "");
  check Alcotest.(list string) "whitespace-only has no grams" [] (Similarity.qgrams "  . ");
  check Alcotest.(list string) "single char shorter than q" [ "a" ] (Similarity.qgrams "a");
  check Alcotest.(list string) "q longer than string" [ "ab" ] (Similarity.qgrams ~q:5 "ab");
  check Alcotest.(list string) "bigrams, deduplicated" [ "ab"; "ba" ]
    (Similarity.qgrams "abab");
  check Alcotest.(list string) "normalized before slicing" [ "ab" ]
    (Similarity.qgrams "  AB ");
  Alcotest.check_raises "q = 0 rejected" (Invalid_argument "Similarity.qgrams: q must be >= 1")
    (fun () -> ignore (Similarity.qgrams ~q:0 "ab"))

let test_qgram_similarity () =
  fcheck "both empty" 1. (Similarity.qgram_similarity "" "");
  fcheck "empty vs nonempty" 0. (Similarity.qgram_similarity "" "abc");
  fcheck "identical" 1. (Similarity.qgram_similarity "twelve monkeys" "twelve monkeys");
  fcheck "case/whitespace insensitive" 1.
    (Similarity.qgram_similarity "Twelve  Monkeys" "twelve monkeys");
  fcheck "disjoint" 0. (Similarity.qgram_similarity "abc" "xyz");
  check Alcotest.bool "near titles overlap" true
    (Similarity.qgram_similarity "twelve monkeys" "12 monkeys" > 0.3);
  (* single-char tokens: grams shorter than q still compare *)
  fcheck "single chars equal" 1. (Similarity.qgram_similarity "a" "a");
  fcheck "single chars differ" 0. (Similarity.qgram_similarity "a" "b")

let prop_qgram_symmetry =
  QCheck.Test.make ~name:"qgram similarity is symmetric and in [0,1]" ~count:300
    QCheck.(pair (string_of_size (Gen.int_bound 12)) (string_of_size (Gen.int_bound 12)))
    (fun (a, b) ->
      let x = Similarity.qgram_similarity a b and y = Similarity.qgram_similarity b a in
      x >= 0. && x <= 1. +. 1e-9 && Float.abs (x -. y) < 1e-9)

let test_qgram_index () =
  let keys = [| "twelve monkeys"; "die hard"; "12 monkeys"; "jaws" |] in
  let idx = Similarity.Qgram_index.build keys in
  check Alcotest.int "size" 4 (Similarity.Qgram_index.size idx);
  (* exact key always survives any threshold <= 1 *)
  check Alcotest.bool "self hit at threshold 1" true
    (List.mem 1 (Similarity.Qgram_index.query idx ~threshold:1. "die hard"));
  (* hits are exactly the entries at or above the threshold, ascending *)
  let hits = Similarity.Qgram_index.query idx ~threshold:0.3 "twelve monkeys" in
  check Alcotest.(list int) "similar titles found, ascending" [ 0; 2 ] hits;
  check Alcotest.(list int) "threshold 0 returns everything" [ 0; 1; 2; 3 ]
    (Similarity.Qgram_index.query idx ~threshold:0. "zzz");
  check Alcotest.(list int) "no shared grams, no hits" []
    (Similarity.Qgram_index.query idx ~threshold:0.1 "zzz");
  (* the index agrees with the pairwise similarity it is built from *)
  Array.iter
    (fun k ->
      let wanted =
        List.filter (fun j -> Similarity.qgram_similarity keys.(j) k >= 0.3) [ 0; 1; 2; 3 ]
      in
      check Alcotest.(list int) (Fmt.str "index vs pairwise for %S" k) wanted
        (Similarity.Qgram_index.query idx ~threshold:0.3 k))
    keys;
  (* a tick callback sees the work: at least one call per key *)
  let ticks = ref 0 in
  let _ = Similarity.Qgram_index.build ~tick:(fun () -> incr ticks) keys in
  check Alcotest.bool "build ticks" true (!ticks >= Array.length keys)

let prop_levenshtein_triangle =
  QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:200
    QCheck.(triple (string_of_size (Gen.int_bound 8)) (string_of_size (Gen.int_bound 8)) (string_of_size (Gen.int_bound 8)))
    (fun (a, b, c) ->
      Similarity.levenshtein a c <= Similarity.levenshtein a b + Similarity.levenshtein b c)

(* ---- oracle rules ----------------------------------------------------------- *)

let movie title year genres director =
  Tree.element "movie"
    (Tree.leaf "title" title :: Tree.leaf "year" (string_of_int year)
     :: List.map (Tree.leaf "genre") genres
    @ [ Tree.leaf "director" director ])

let jaws = movie "Jaws" 1975 [ "Horror" ] "Steven Spielberg"

let jaws_again = movie "Jaws" 1975 [ "Horror" ] "Steven Spielberg"

let jaws2 = movie "Jaws 2" 1978 [ "Horror" ] "Jeannot Szwarc"

let diehard = movie "Die Hard" 1988 [ "Action" ] "John McTiernan"

let verdict = Alcotest.testable Oracle.pp_verdict ( = )

let test_deep_equal_rule () =
  check verdict "identical movies" Oracle.Same
    (Oracle.decide (Oracle.make [ Oracle.deep_equal_rule ]) jaws jaws_again);
  check verdict "different movies fall to default" (Oracle.Unsure 0.5)
    (Oracle.decide (Oracle.make [ Oracle.deep_equal_rule ]) jaws jaws2)

let test_key_rule () =
  let o = Oracle.make [ Oracle.key_rule ~tag:"movie" ~field:"title" ] in
  check verdict "same key" Oracle.Same (Oracle.decide o jaws jaws_again);
  check verdict "different key" Oracle.Different (Oracle.decide o jaws jaws2)

let test_field_differs_rule () =
  let o = Oracle.make [ Oracle.field_differs_rule ~tag:"movie" ~field:"year" ] in
  check verdict "different years" Oracle.Different (Oracle.decide o jaws jaws2);
  check verdict "same year abstains" (Oracle.Unsure 0.5) (Oracle.decide o jaws jaws_again)

let test_set_disjoint_rule () =
  let o = Oracle.make [ Oracle.set_disjoint_rule ~tag:"movie" ~field:"genre" ] in
  check verdict "disjoint genres" Oracle.Different (Oracle.decide o jaws diehard);
  check verdict "shared genre abstains" (Oracle.Unsure 0.5) (Oracle.decide o jaws jaws2);
  (* missing genres on one side: abstain *)
  let nogenre = movie "Jaws" 1975 [] "X" in
  check verdict "missing genres abstain" (Oracle.Unsure 0.5) (Oracle.decide o jaws nogenre)

let test_similarity_rule () =
  let o =
    Oracle.make [ Oracle.similarity_rule ~tag:"movie" ~field:"title" ~threshold:0.3 () ]
  in
  check verdict "dissimilar titles" Oracle.Different (Oracle.decide o jaws diehard);
  check verdict "sequels abstain" (Oracle.Unsure 0.5) (Oracle.decide o jaws jaws2)

let test_text_key_rule () =
  let o = Oracle.make [ Oracle.text_key_rule ~tag:"genre" ] in
  let g1 = Tree.leaf "genre" "Horror" and g2 = Tree.leaf "genre" " horror " in
  let g3 = Tree.leaf "genre" "Action" in
  check verdict "same text (case/ws-insensitive)" Oracle.Same (Oracle.decide o g1 g2);
  check verdict "different text" Oracle.Different (Oracle.decide o g1 g3);
  check verdict "other tags fall through" (Oracle.Unsure 0.5)
    (Oracle.decide o (Tree.leaf "x" "a") (Tree.leaf "x" "b"))

let test_text_match_rule () =
  let o =
    Oracle.make [ Oracle.text_match_rule ~tag:"director" ~same_above:0.95 ~diff_below:0.3 () ]
  in
  let d1 = Tree.leaf "director" "John McTiernan" in
  let d2 = Tree.leaf "director" "McTiernan, John" in
  let d3 = Tree.leaf "director" "Renny Harlin" in
  check verdict "convention flip" Oracle.Same (Oracle.decide o d1 d2);
  check verdict "different person" Oracle.Different (Oracle.decide o d1 d3)

let test_attr_key_rule () =
  let o = Oracle.make [ Oracle.attr_key_rule ~tag:"item" ~attr:"id" ] in
  let item id = Tree.element "item" ~attrs:[ ("id", id) ] [] in
  let no_id = Tree.element "item" [] in
  check verdict "same id" Oracle.Same (Oracle.decide o (item "7") (item "7"));
  check verdict "different id" Oracle.Different (Oracle.decide o (item "7") (item "8"));
  check verdict "missing id abstains" (Oracle.Unsure 0.5) (Oracle.decide o (item "7") no_id)

let test_rule_priority_and_conflict () =
  let always_same = { Oracle.name = "always-same"; judge = (fun _ _ -> Some Oracle.Same) } in
  let always_diff =
    { Oracle.name = "always-diff"; judge = (fun _ _ -> Some Oracle.Different) }
  in
  let o = Oracle.make [ always_same; always_diff ] in
  (match Oracle.decide o jaws jaws2 with
  | exception Oracle.Conflict msg ->
      check Alcotest.bool "conflict names rules" true
        (Astring_contains.contains msg "always-same")
  | v -> Alcotest.failf "expected conflict, got %a" Oracle.pp_verdict v);
  (* absolute beats unsure *)
  let unsure p = { Oracle.name = "u"; judge = (fun _ _ -> Some (Oracle.Unsure p)) } in
  check verdict "absolute wins over unsure" Oracle.Different
    (Oracle.decide (Oracle.make [ unsure 0.9; always_diff ]) jaws jaws2);
  (* first unsure wins when no absolutes *)
  check verdict "first unsure wins" (Oracle.Unsure 0.9)
    (Oracle.decide (Oracle.make [ unsure 0.9; unsure 0.1 ]) jaws jaws2)

let test_default_prob () =
  let o =
    Oracle.make ~default:(Oracle.field_similarity_prob ~field:"title" ()) [ Oracle.deep_equal_rule ]
  in
  (match Oracle.decide o jaws (movie "Jaws" 1977 [ "Horror" ] "S") with
  | Oracle.Unsure p -> check (Alcotest.float 1e-9) "ceiling" 0.95 p
  | v -> Alcotest.failf "expected unsure, got %a" Oracle.pp_verdict v);
  match Oracle.decide o jaws diehard with
  | Oracle.Unsure p ->
      check Alcotest.bool "low but floored" true (p >= 0.05 && p <= 0.3)
  | v -> Alcotest.failf "expected unsure, got %a" Oracle.pp_verdict v

let test_rule_names () =
  let rs = Imprecise.Rulesets.movie ~genre:true ~title:true ~year:true () in
  check Alcotest.bool "names listed" true (List.length (Oracle.rule_names rs.oracle) >= 4)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let q p = QCheck_alcotest.to_alcotest p in
  [
    ( "oracle.similarity",
      [
        t "levenshtein" test_levenshtein;
        t "edit similarity" test_edit_similarity;
        t "jaro / jaro-winkler" test_jaro_winkler;
        t "tokens" test_tokens;
        t "token jaccard" test_token_jaccard;
        t "name similarity" test_name_similarity;
        t "title similarity (sequel cap)" test_title_similarity;
        t "normalize key" test_normalize_key;
        t "q-grams (edge cases)" test_qgrams;
        t "q-gram similarity" test_qgram_similarity;
        t "q-gram inverted index" test_qgram_index;
        q prop_qgram_symmetry;
        q prop_similarity_bounds;
        q prop_levenshtein_triangle;
      ] );
    ( "oracle.rules",
      [
        t "deep-equal rule" test_deep_equal_rule;
        t "key rule" test_key_rule;
        t "field-differs (year) rule" test_field_differs_rule;
        t "set-disjoint (genre) rule" test_set_disjoint_rule;
        t "similarity (title) rule" test_similarity_rule;
        t "text-key rule" test_text_key_rule;
        t "text-match rule" test_text_match_rule;
        t "attribute-key rule" test_attr_key_rule;
        t "priority and conflicts" test_rule_priority_and_conflict;
        t "similarity-based default probability" test_default_prob;
        t "rule names" test_rule_names;
      ] );
  ]
