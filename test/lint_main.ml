(* The `dune build @lint` gate: run the static analyzers over the bundled
   example documents and the paper's queries, and sanity-check the rule-set
   presets. Exits nonzero when anything at Warning severity or above is
   found; Info-level hints are counted but do not gate. *)

module Diag = Imprecise.Analyze.Diag
module Summary = Imprecise.Analyze.Summary
module Query_check = Imprecise.Analyze.Query_check
module Doc_lint = Imprecise.Analyze.Doc_lint
module Rule_lint = Imprecise.Analyze.Rule_lint
module Oracle = Imprecise.Oracle
module Rulesets = Imprecise.Rulesets
module Workloads = Imprecise.Data.Workloads
module Addressbook = Imprecise.Data.Addressbook
module Tree = Imprecise.Tree

let gate = ref Diag.Info

let raise_gate s = if Diag.compare_severity s !gate > 0 then gate := s

(* Print Warning+ findings in full; Info hints only as a count. *)
let report label diags =
  let infos, rest =
    List.partition (fun (d : Diag.t) -> d.Diag.severity = Diag.Info) diags
  in
  (match (rest, infos) with
  | [], [] -> Printf.printf "lint: %-42s ok\n" label
  | [], _ -> Printf.printf "lint: %-42s ok (%d info hints)\n" label (List.length infos)
  | _ ->
      Printf.printf "lint: %-42s %d finding(s)\n" label (List.length rest);
      List.iter (fun d -> print_endline ("  " ^ Diag.to_text d)) rest);
  List.iter (fun (d : Diag.t) -> raise_gate d.Diag.severity) diags

let integrate ~rules ~dtd a b =
  match Imprecise.integrate ~rules ~dtd a b with
  | Ok doc -> doc
  | Error e -> Fmt.failwith "integration failed: %a" Imprecise.Integrate.pp_error e

let check_queries label summary queries =
  report label
    (List.concat_map (fun q -> Query_check.check_string ~summary q) queries)

(* ---- the Figure 2 address book ------------------------------------------- *)

let fig2 () =
  let doc =
    integrate ~rules:Rulesets.generic ~dtd:Addressbook.dtd Addressbook.source_a
      Addressbook.source_b
  in
  report "fig2: integrated document" (Doc_lint.lint doc);
  check_queries "fig2: golden queries"
    (Summary.of_doc doc)
    [ "//person"; "//person/nm"; "//person/tel"; "/addressbook/person/nm/text()" ]

(* ---- the §VI query demo document ------------------------------------------ *)

let paper_queries =
  [
    {|//movie[.//genre="Horror"]/title|};
    {|//movie[some $d in .//director satisfies contains($d,"John")]/title|};
    "//movie/title";
    "//movie/year";
  ]

let section_vi () =
  let wl = Workloads.confusing () in
  let rules = Rulesets.movie ~genre:true ~title:true ~director:true () in
  let doc = integrate ~rules ~dtd:wl.Workloads.dtd (Workloads.mpeg7_doc wl) (Workloads.imdb_doc wl) in
  report "§VI: integrated movie document" (Doc_lint.lint doc);
  check_queries "§VI: paper queries" (Summary.of_doc doc) paper_queries;
  (* The raw sources, as single-world probabilistic documents. *)
  let source_summary =
    Summary.merge
      (Summary.of_tree (Workloads.mpeg7_doc wl))
      (Summary.of_tree (Workloads.imdb_doc wl))
  in
  check_queries "§VI: queries vs raw sources" source_summary paper_queries

(* ---- rule-set presets ------------------------------------------------------ *)

let presets = Rulesets.table1 @ [ Rulesets.generic; Rulesets.full ]

(* R001: duplicate rule names make reports ambiguous. *)
let preset_names (p : Rulesets.t) =
  let names = List.sort String.compare (Oracle.rule_names p.Rulesets.oracle) in
  let rec dups = function
    | a :: (b :: _ as rest) -> (if a = b then [ a ] else []) @ dups rest
    | _ -> []
  in
  List.map
    (fun n ->
      Diag.makef ~code:"R001" ~severity:Diag.Error
        "preset %S contains rule %S twice" p.Rulesets.name n)
    (List.sort_uniq String.compare (dups names))

(* R002: rules within one preset must never contradict each other on the
   bundled example pairs — a Same/Different clash means the knowledge base
   is inconsistent. *)
let preset_conflicts (p : Rulesets.t) pairs =
  List.filter_map
    (fun (a, b) ->
      match Oracle.decide p.Rulesets.oracle a b with
      | (_ : Oracle.verdict) -> None
      | exception Oracle.Conflict msg ->
          Some
            (Diag.makef ~code:"R002" ~severity:Diag.Error
               "preset %S: rules conflict on a bundled example pair: %s"
               p.Rulesets.name msg))
    pairs

let rulesets () =
  let wl = Workloads.confusing () in
  let movies doc = Tree.child_elements doc in
  let movie_pairs =
    List.concat_map
      (fun a -> List.map (fun b -> (a, b)) (movies (Workloads.imdb_doc wl)))
      (movies (Workloads.mpeg7_doc wl))
  in
  let person_pairs =
    List.concat_map
      (fun a -> List.map (fun b -> (a, b)) (Tree.child_elements Addressbook.source_b))
      (Tree.child_elements Addressbook.source_a)
  in
  (* R003/R004 probe corpus: every bundled cross-source pair, in both
     orientations implicitly (Rule_lint swaps the arguments itself). *)
  let probes = movie_pairs @ person_pairs in
  List.iter
    (fun (p : Rulesets.t) ->
      report
        (Printf.sprintf "rulesets: preset %S" p.Rulesets.name)
        (preset_names p
        @ preset_conflicts p movie_pairs
        @ preset_conflicts p person_pairs
        @ Rule_lint.check ~probes p.Rulesets.oracle))
    presets

let () =
  fig2 ();
  section_vi ();
  rulesets ();
  let code = match !gate with Diag.Info -> 0 | Diag.Warning | Diag.Error -> 1 in
  if code = 0 then print_endline "lint: clean"
  else Printf.printf "lint: FAILED (worst severity: %s)\n" (Diag.severity_to_string !gate);
  exit code
