(* Tests for answer-quality and uncertainty measures. *)

module Quality = Imprecise.Quality
module Answer = Imprecise.Answer
module Pxml = Imprecise.Pxml
module Oracle = Imprecise.Oracle
module Integrate = Imprecise.Integrate
module Addressbook = Imprecise.Data.Addressbook

let check = Alcotest.check

let fcheck name = check (Alcotest.float 1e-9) name

let answers l = List.map (fun (value, prob) -> { Answer.value; prob }) l

let test_probabilistic_precision () =
  let a = answers [ ("good", 0.8); ("bad", 0.2) ] in
  fcheck "mass-weighted" 0.8 (Quality.probabilistic_precision a ~truth:[ "good" ]);
  fcheck "all correct" 1. (Quality.probabilistic_precision a ~truth:[ "good"; "bad" ]);
  fcheck "none correct" 0. (Quality.probabilistic_precision a ~truth:[ "other" ]);
  fcheck "empty answer is vacuously precise" 1.
    (Quality.probabilistic_precision [] ~truth:[ "x" ])

let test_probabilistic_recall () =
  let a = answers [ ("good", 0.8); ("bad", 0.2) ] in
  fcheck "found with 0.8 confidence" 0.8 (Quality.probabilistic_recall a ~truth:[ "good" ]);
  fcheck "half the truth at 0.8" 0.4 (Quality.probabilistic_recall a ~truth:[ "good"; "missing" ]);
  fcheck "empty truth" 1. (Quality.probabilistic_recall a ~truth:[])

let test_f_measure () =
  let a = answers [ ("good", 1.0) ] in
  fcheck "perfect" 1. (Quality.f_measure a ~truth:[ "good" ]);
  fcheck "zero" 0. (Quality.f_measure a ~truth:[ "other" ]);
  let h = Quality.f_measure (answers [ ("good", 0.5); ("bad", 0.5) ]) ~truth:[ "good" ] in
  fcheck "harmonic mean" 0.5 h

let test_top_k () =
  let a = answers [ ("x", 0.9); ("y", 0.5); ("z", 0.1) ] in
  check Alcotest.int "top 2" 2 (List.length (Quality.top_k 2 a));
  check Alcotest.string "best first" "x" (List.hd (Quality.top_k 2 a)).Answer.value

let fig2 =
  let cfg =
    Integrate.config ~oracle:(Oracle.make [ Oracle.deep_equal_rule ]) ~dtd:Addressbook.dtd ()
  in
  Result.get_ok (Integrate.integrate cfg Addressbook.source_a Addressbook.source_b)

let test_expected_set_measures () =
  (* Truth: John's phone is 1111. Query: all phones. Worlds: both phones
     (precision 1/2, recall 1), 1111 (1, 1), 2222 (0, 0). *)
  let p, r = Quality.expected_set_measures fig2 ~query:"//person/tel" ~truth:[ "1111" ] in
  fcheck "expected precision" ((0.5 *. 0.5) +. (0.25 *. 1.) +. (0.25 *. 0.)) p;
  fcheck "expected recall" ((0.5 *. 1.) +. (0.25 *. 1.) +. (0.25 *. 0.)) r

let test_expected_guard () =
  match Quality.expected_set_measures ~limit:1. fig2 ~query:"//person" ~truth:[] with
  | exception Quality.Too_many_worlds _ -> ()
  | _ -> Alcotest.fail "expected guard to fire"

let test_world_entropy () =
  (* Distribution {0.5, 0.25, 0.25} has entropy 1.5 bits. *)
  fcheck "fig2 entropy" 1.5 (Quality.world_entropy fig2);
  let certain = Pxml.doc_of_tree (Imprecise.parse_xml_exn "<r/>") in
  fcheck "certain doc has zero entropy" 0. (Quality.world_entropy certain)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "quality",
      [
        t "probabilistic precision" test_probabilistic_precision;
        t "probabilistic recall" test_probabilistic_recall;
        t "F measure" test_f_measure;
        t "top-k" test_top_k;
        t "expected set measures over worlds" test_expected_set_measures;
        t "world-limit guard" test_expected_guard;
        t "world entropy" test_world_entropy;
      ] );
  ]
