(* Tests for the workload substrate: PRNG determinism, movie rendering
   conventions, and the structural guarantees the experiments rely on. *)

module Prng = Imprecise.Data.Prng
module Movie = Imprecise.Data.Movie
module Workloads = Imprecise.Data.Workloads
module Addressbook = Imprecise.Data.Addressbook
module Tree = Imprecise.Tree
module Dtd = Imprecise.Dtd
module Similarity = Imprecise.Similarity

let check = Alcotest.check

(* ---- prng ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let seq seed = List.init 10 (fun i -> fst (Prng.int (Prng.make (seed + i)) 1000)) in
  check Alcotest.(list int) "same seed, same stream" (seq 42) (seq 42);
  check Alcotest.bool "different seeds differ" true (seq 42 <> seq 43)

let test_prng_bounds () =
  let rng = ref (Prng.make 7) in
  for _ = 1 to 1000 do
    let v, r = Prng.int !rng 17 in
    rng := r;
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done;
  let f, _ = Prng.float (Prng.make 3) in
  check Alcotest.bool "float in [0,1)" true (f >= 0. && f < 1.)

let test_prng_split_independent () =
  let a, b = Prng.split (Prng.make 99) in
  let va, _ = Prng.int a 1_000_000 and vb, _ = Prng.int b 1_000_000 in
  check Alcotest.bool "split streams differ" true (va <> vb)

let test_prng_shuffle_permutes () =
  let xs = List.init 20 (fun i -> i) in
  let ys, _ = Prng.shuffle (Prng.make 5) xs in
  check Alcotest.(list int) "same multiset" xs (List.sort compare ys);
  check Alcotest.bool "actually shuffled" true (xs <> ys)

let test_prng_pick () =
  let v, _ = Prng.pick (Prng.make 1) [ "only" ] in
  check Alcotest.string "singleton" "only" v;
  match Prng.pick (Prng.make 1) [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pick accepted"

(* ---- movie rendering --------------------------------------------------------- *)

let sample =
  {
    Movie.rwo = "x";
    title = "Die Hard";
    year = 1988;
    genres = [ "Action"; "Thriller" ];
    directors = [ "John McTiernan" ];
  }

let test_flip_name () =
  check Alcotest.string "flip" "McTiernan, John" (Movie.flip_name "John McTiernan");
  check Alcotest.string "multi first names" "Palma, Brian De" (Movie.flip_name "Brian De Palma");
  check Alcotest.string "mononym unchanged" "Cher" (Movie.flip_name "Cher")

let test_render_conventions () =
  let mpeg7 = Movie.render Movie.Mpeg7 sample and imdb = Movie.render Movie.Imdb sample in
  check Alcotest.(option string) "mpeg7 director" (Some "John McTiernan")
    (Tree.field mpeg7 "director");
  check Alcotest.(option string) "imdb director" (Some "McTiernan, John")
    (Tree.field imdb "director");
  check Alcotest.bool "never deep-equal across conventions" false
    (Tree.deep_equal mpeg7 imdb);
  check Alcotest.(option string) "title same" (Tree.field mpeg7 "title")
    (Tree.field imdb "title");
  check Alcotest.int "two genres" 2 (List.length (Tree.find_children mpeg7 "genre"))

let test_render_no_rwo_leak () =
  let t = Movie.render Movie.Imdb sample in
  let s = Imprecise.Xml.Printer.to_string t in
  check Alcotest.bool "rwo id not rendered" false (Astring_contains.contains s "\"x\"")

let test_collection_valid_against_dtd () =
  let doc = Movie.collection Movie.Mpeg7 [ sample; sample ] in
  check Alcotest.bool "movie dtd holds" true (Result.is_ok (Dtd.validate Movie.dtd doc))

(* ---- workloads ----------------------------------------------------------------- *)

let test_confusing_structure () =
  let wl = Workloads.confusing () in
  check Alcotest.int "6 mpeg7 movies" 6 (List.length wl.mpeg7);
  check Alcotest.int "6 imdb movies" 6 (List.length wl.imdb);
  let pairs = Workloads.coref_pairs wl in
  check Alcotest.int "exactly 3 co-referent pairs (one per franchise)" 3 (List.length pairs);
  (* one co-ref per franchise *)
  let franchise (m : Movie.t) =
    if Astring_contains.contains m.title "Jaws" then "jaws"
    else if Astring_contains.contains m.title "Die Hard" then "diehard"
    else "mi"
  in
  check
    Alcotest.(list string)
    "one per franchise" [ "diehard"; "jaws"; "mi" ]
    (List.sort String.compare (List.map (fun (m, _) -> franchise m) pairs))

let test_confusing_sequel_similarity () =
  (* Every MPEG-7 movie has a title-rule candidate on the IMDB side, and
     most have a candidate that is NOT their own co-referent entry — that
     is what makes the workload confusing. *)
  let wl = Workloads.confusing () in
  let candidates coref_ok (m : Movie.t) =
    List.exists
      (fun (i : Movie.t) ->
        (coref_ok || i.rwo <> m.rwo)
        && Similarity.title_similarity m.title i.title >= Imprecise.Rulesets.title_threshold)
      wl.imdb
  in
  List.iter
    (fun (m : Movie.t) ->
      check Alcotest.bool (m.title ^ " has a candidate") true (candidates true m))
    wl.mpeg7;
  let with_confuser = List.filter (candidates false) wl.mpeg7 in
  check Alcotest.bool "most movies have a non-co-ref confuser" true
    (List.length with_confuser >= 4)

let test_figure5_growth () =
  let wl12 = Workloads.figure5 ~n_imdb:12 and wl60 = Workloads.figure5 ~n_imdb:60 in
  check Alcotest.int "12 imdb" 12 (List.length wl12.imdb);
  check Alcotest.int "60 imdb" 60 (List.length wl60.imdb);
  (* prefix-stable: growing the workload only appends *)
  List.iter2
    (fun (a : Movie.t) (b : Movie.t) -> check Alcotest.string "prefix stable" a.rwo b.rwo)
    wl12.imdb
    (List.filteri (fun i _ -> i < 12) wl60.imdb);
  (* distinct rwo ids *)
  let ids = List.map (fun (m : Movie.t) -> m.Movie.rwo) wl60.imdb in
  check Alcotest.int "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let test_figure5_franchise_mix () =
  let wl = Workloads.figure5 ~n_imdb:30 in
  let count needle =
    List.length
      (List.filter (fun (m : Movie.t) -> Astring_contains.contains m.title needle) wl.imdb)
  in
  check Alcotest.bool "jaws confusers" true (count "Jaws" >= 8);
  check Alcotest.bool "die hard confusers" true (count "Die Hard" >= 8);
  check Alcotest.bool "mi confusers" true (count "Mission" >= 8);
  let docs =
    List.filter (fun (m : Movie.t) -> m.Movie.genres = [ "Documentary" ]) wl.imdb
  in
  check Alcotest.bool "some documentaries" true (List.length docs >= 3)

let test_typical_structure () =
  let wl = Workloads.typical () in
  check Alcotest.int "60 imdb" 60 (List.length wl.imdb);
  check Alcotest.int "2 co-referent pairs" 2 (List.length (Workloads.coref_pairs wl));
  (* co-refs agree on title and year but are never deep-equal as XML *)
  List.iter
    (fun ((m : Movie.t), (i : Movie.t)) ->
      check Alcotest.string "same title" m.title i.title;
      check Alcotest.int "same year" m.year i.year;
      check Alcotest.bool "not deep-equal" false
        (Tree.deep_equal (Movie.render Movie.Mpeg7 m) (Movie.render Movie.Imdb i)))
    (Workloads.coref_pairs wl);
  (* filler titles never confusable with the mpeg7 movies *)
  let corefs = List.map (fun ((_ : Movie.t), i) -> i) (Workloads.coref_pairs wl) in
  List.iter
    (fun (m : Movie.t) ->
      List.iter
        (fun (i : Movie.t) ->
          if not (List.memq i corefs) then
            check Alcotest.bool
              (Printf.sprintf "%s vs %s below threshold" m.title i.title)
              true
              (Similarity.title_similarity m.title i.title < Imprecise.Rulesets.title_threshold))
        wl.imdb)
    wl.mpeg7

let test_titles_with_genre () =
  let wl = Workloads.confusing () in
  check
    Alcotest.(list string)
    "horror ground truth" [ "Jaws"; "Jaws 2" ]
    (Workloads.titles_with_genre wl "Horror")

(* ---- addressbook ----------------------------------------------------------------- *)

let test_addressbook_larger () =
  let a, b = Addressbook.larger 30 11 in
  check Alcotest.int "30 persons in a" 30 (List.length (Tree.children a));
  check Alcotest.bool "b differs in size" true (List.length (Tree.children b) <> 30);
  (* deterministic *)
  let a', _ = Addressbook.larger 30 11 in
  check Alcotest.bool "deterministic" true (Tree.deep_equal a a')

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "data.prng",
      [
        t "deterministic" test_prng_deterministic;
        t "bounds" test_prng_bounds;
        t "split independence" test_prng_split_independent;
        t "shuffle permutes" test_prng_shuffle_permutes;
        t "pick" test_prng_pick;
      ] );
    ( "data.movie",
      [
        t "flip_name" test_flip_name;
        t "rendering conventions differ" test_render_conventions;
        t "rwo ids never rendered" test_render_no_rwo_leak;
        t "collections validate against the movie DTD" test_collection_valid_against_dtd;
      ] );
    ( "data.workloads",
      [
        t "confusing 6v6 structure" test_confusing_structure;
        t "confusing titles are confusable" test_confusing_sequel_similarity;
        t "figure-5 growth and prefix stability" test_figure5_growth;
        t "figure-5 franchise mix" test_figure5_franchise_mix;
        t "typical structure" test_typical_structure;
        t "genre ground truth" test_titles_with_genre;
      ] );
    ("data.addressbook", [ t "larger generator" test_addressbook_larger ]);
  ]
