(* Planner certification stress: the static planner's route prediction and
   cost bounds, checked against what actually happens on random documents.

   For every (seed, query) case:
   - route agreement: Plan says `Direct exactly when the direct evaluator
     admits the query on this document (the two share one fragment
     definition, so any disagreement is a bug, not an approximation);
   - world bound: cost.worlds dominates the document's true world count;
   - answer bound: on enumerable documents, the amalgamated answer count
     never exceeds cost.answers.hi (when tracked), and a lower bound of 1
     guarantees a non-empty answer;
   - direct answers agree with enumeration to 1e-9 wherever both run.

   Runs under the usual `dune runtest`, and alone via
   `dune build @plan-stress` (case count overridable through PLAN_CASES). *)

module Pxml = Imprecise.Pxml
module Pquery = Imprecise.Pquery
module Answer = Imprecise.Answer
module Prng = Imprecise.Data.Prng
module Random_docs = Imprecise.Data.Random_docs
module Cost = Imprecise.Analyze.Cost
module Plan = Imprecise.Analyze.Plan
module Diag = Imprecise.Analyze.Diag

(* Pool biased toward the widened fragment's edges: descendant axes,
   relative paths, positional predicates on and below the binder, trailing
   value steps, and deliberate rejections (P001/P004). *)
let queries =
  [|
    "//a";
    "//item";
    "//*";
    "/descendant::a";
    "//item/descendant::b";
    "item/name";
    "//a/b";
    "//a//c";
    "//a[b]";
    {|//a[.="x"]|};
    {|//item[name="42"]/b[2]|};
    {|//a[b[1]="x"]|};
    {|//a[contains(.,"z")]|};
    {|//name[.="hello" or .="y"]|};
    "//a/text()";
    {|descendant::item[contains(name,"4")]|};
    "//a[1]";
    "//a/..";
    "count(//a)";
    "//a | //b";
  |]

let cases =
  match Sys.getenv_opt "PLAN_CASES" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 400)
  | None -> 400

let failures = ref 0

let fail seed query fmt =
  incr failures;
  Fmt.epr "FAIL (reproduce: seed %d, query %s)@.  " seed query;
  Fmt.epr (fmt ^^ "@.")

let agree = Answer.equal ~tolerance:1e-9

let check_case i =
  let seed = i in
  let query = queries.(i mod Array.length queries) in
  let depth = if i mod 3 = 0 then 3 else 2 in
  let doc = fst (Random_docs.pxml (Prng.make seed) ~depth) in
  let world_count = Pxml.world_count doc in
  let plan = Pquery.plan doc query in
  (* world bound: subsumes the true world count on every document *)
  if plan.Plan.cost.Cost.worlds +. 1e-9 < world_count then
    fail seed query "world bound %g below true world count %g"
      plan.Plan.cost.Cost.worlds world_count;
  (* route agreement, decided without enumerating anything *)
  let direct =
    match Pquery.rank ~strategy:Pquery.Direct_only ~static_check:false doc query with
    | answers -> Some answers
    | exception Pquery.Cannot_answer _ -> None
  in
  (match (plan.Plan.route, direct) with
  | Plan.Direct, None ->
      fail seed query "planner routed direct but the direct evaluator refused"
  | Plan.Enumerate, Some _ ->
      fail seed query "planner routed enumerate (%s) but direct succeeded"
        (String.concat "; "
           (List.map (fun (d : Diag.t) -> d.Diag.code) plan.Plan.reasons))
  | Plan.Direct, Some _ | Plan.Enumerate, None -> ());
  (* an enumerate route must explain itself; a direct route must prove *)
  (match plan.Plan.route with
  | Plan.Enumerate ->
      if plan.Plan.reasons = [] then fail seed query "enumerate route with no P-code"
  | Plan.Direct ->
      if plan.Plan.obligations = [] then
        fail seed query "direct route with no discharged obligations");
  if world_count <= 5000. then begin
    let reference =
      Pquery.rank ~strategy:Pquery.Enumerate_only ~static_check:false doc query
    in
    (* amalgamated answer bound *)
    if
      plan.Plan.cost.Cost.tracked
      && float_of_int (List.length reference) > plan.Plan.cost.Cost.answers.Cost.hi
    then
      fail seed query "answer bound violated: %d answers > hi %g"
        (List.length reference) plan.Plan.cost.Cost.answers.Cost.hi;
    (* a claimed lower bound guarantees an answer in every world *)
    if
      plan.Plan.cost.Cost.tracked
      && plan.Plan.cost.Cost.answers.Cost.lo >= 1.
      && reference = []
    then fail seed query "answers.lo >= 1 but enumeration found nothing";
    match direct with
    | Some d when not (agree d reference) ->
        fail seed query "direct disagrees with enumeration"
    | _ -> ()
  end

let () =
  for i = 0 to cases - 1 do
    check_case i
  done;
  Fmt.pr "plan-stress: %d cases over %d query shapes, %d disagreements@." cases
    (Array.length queries) !failures;
  if !failures > 0 then exit 1
