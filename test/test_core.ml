(* Tests for the facade API and the rule-set presets. *)

module Rulesets = Imprecise.Rulesets
module Oracle = Imprecise.Oracle
module Workloads = Imprecise.Data.Workloads
module Addressbook = Imprecise.Data.Addressbook
module Answer = Imprecise.Answer
module Integrate = Imprecise.Integrate

let check = Alcotest.check

let test_parse_xml () =
  check Alcotest.bool "ok" true (Result.is_ok (Imprecise.parse_xml "<a/>"));
  match Imprecise.parse_xml "<a" with
  | Error msg -> check Alcotest.bool "message has position" true (Astring_contains.contains msg ":")
  | Ok _ -> Alcotest.fail "expected error"

let test_ruleset_names () =
  check
    Alcotest.(list string)
    "table 1 rows"
    [ "none"; "genre"; "title"; "genre+title"; "genre+title+year" ]
    (List.map (fun (r : Rulesets.t) -> r.name) Rulesets.table1);
  check Alcotest.string "full" "genre+title+year+director" Rulesets.full.name

let test_facade_integrate_and_rank () =
  match
    Imprecise.integrate ~rules:Rulesets.generic ~dtd:Addressbook.dtd Addressbook.source_a
      Addressbook.source_b
  with
  | Error e -> Alcotest.failf "integrate failed: %a" Integrate.pp_error e
  | Ok doc ->
      check Alcotest.int "node count exposed" (Imprecise.Pxml.node_count doc)
        (Imprecise.node_count doc);
      check (Alcotest.float 1e-9) "world count exposed" 3. (Imprecise.world_count doc);
      let answers = Imprecise.rank doc "//person/nm" in
      check Alcotest.int "one name" 1 (List.length answers);
      check Alcotest.string "John" "John" (List.hd answers).Answer.value

let test_facade_stats_agree () =
  let wl = Workloads.confusing () in
  let a = Workloads.mpeg7_doc wl and b = Workloads.imdb_doc wl in
  let rules = Rulesets.movie ~genre:true ~title:true ~year:true () in
  match Imprecise.integrate ~rules ~dtd:wl.dtd a b, Imprecise.integration_stats ~rules ~dtd:wl.dtd a b with
  | Ok doc, Ok s ->
      check (Alcotest.float 1e-6) "facade stats mirror" (float_of_int (Imprecise.node_count doc))
        s.Integrate.nodes
  | Error e, _ | _, Error e -> Alcotest.failf "failed: %a" Integrate.pp_error e

let test_query_certain () =
  let doc = Imprecise.parse_xml_exn "<r><a>1</a><a>2</a></r>" in
  check Alcotest.(list string) "certain query" [ "1"; "2" ] (Imprecise.query_certain doc "//a")

let test_rulesets_decide_movie_pairs () =
  (* The year rule decides, the title rule restricts, with the expected
     interplay on the paper's franchise. *)
  let mpeg7 m = Imprecise.Data.Movie.render Imprecise.Data.Movie.Mpeg7 m in
  let imdb m = Imprecise.Data.Movie.render Imprecise.Data.Movie.Imdb m in
  let wl = Workloads.confusing () in
  let find title l = List.find (fun (m : Imprecise.Data.Movie.t) -> m.title = title) l in
  let jaws_a = mpeg7 (find "Jaws" wl.mpeg7) in
  let jaws_b = imdb (find "Jaws" wl.imdb) in
  let mi_tv = imdb (find "Mission: Impossible" wl.imdb) in
  let all = Rulesets.movie ~genre:true ~title:true ~year:true () in
  (match Oracle.decide all.oracle jaws_a jaws_b with
  | Oracle.Unsure _ -> ()
  | v -> Alcotest.failf "co-ref pair should stay unsure, got %a" Oracle.pp_verdict v);
  match Oracle.decide all.oracle jaws_a mi_tv with
  | Oracle.Different -> ()
  | v -> Alcotest.failf "cross-franchise should be Different, got %a" Oracle.pp_verdict v

let test_integrate_all () =
  let book tel =
    Imprecise.parse_xml_exn
      (Printf.sprintf
         "<addressbook><person><nm>John</nm><tel>%s</tel></person></addressbook>" tel)
  in
  (match Imprecise.integrate_all ~rules:Rulesets.generic ~dtd:Addressbook.dtd
           [ book "1111"; book "2222"; book "1111" ]
   with
  | Error e -> Alcotest.failf "integrate_all failed: %a" Integrate.pp_error e
  | Ok doc ->
      check Alcotest.bool "valid" true (Result.is_ok (Imprecise.Pxml.validate doc));
      (* three sources, two say 1111 *)
      let answers = Imprecise.rank doc "//person/tel" in
      let p v =
        match List.find_opt (fun (a : Answer.t) -> a.Answer.value = v) answers with
        | Some a -> a.Answer.prob
        | None -> 0.
      in
      check Alcotest.bool "majority number more likely" true (p "1111" > p "2222"));
  (match Imprecise.integrate_all [ Imprecise.parse_xml_exn "<r><a>1</a></r>" ] with
  | Ok doc -> check Alcotest.bool "single source is certain" true (Imprecise.Pxml.is_certain doc)
  | Error e -> Alcotest.failf "single source failed: %a" Integrate.pp_error e);
  match Imprecise.integrate_all [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty source list accepted"

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "core.facade",
      [
        t "parse_xml" test_parse_xml;
        t "integrate + rank one-liners" test_facade_integrate_and_rank;
        t "stats mirrors through the facade" test_facade_stats_agree;
        t "integrate_all folds many sources" test_integrate_all;
        t "query_certain" test_query_certain;
      ] );
    ( "core.rulesets",
      [
        t "preset names" test_ruleset_names;
        t "verdicts on paper pairs" test_rulesets_decide_movie_pairs;
      ] );
  ]
