(* Unit and property tests for the XML substrate: tree operations, parser,
   printer round-trips, and the DTD cardinality checker. *)

module Tree = Imprecise.Tree
module Parser = Imprecise.Xml.Parser
module Printer = Imprecise.Xml.Printer
module Dtd = Imprecise.Dtd
module Prng = Imprecise.Data.Prng
module Random_docs = Imprecise.Data.Random_docs

let check = Alcotest.check

let parse = Parser.parse_string_exn

let parse_err s =
  match Parser.parse_string s with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" s
  | Error _ -> ()

(* ---- tree ---------------------------------------------------------------- *)

let test_constructors () =
  let t = Tree.element "a" ~attrs:[ ("k", "v") ] [ Tree.leaf "b" "x"; Tree.text "y" ] in
  check Alcotest.(option string) "name" (Some "a") (Tree.name t);
  check Alcotest.string "tag" "a" (Tree.tag t);
  check Alcotest.(option string) "attribute" (Some "v") (Tree.attribute t "k");
  check Alcotest.(option string) "missing attribute" None (Tree.attribute t "z");
  check Alcotest.int "children" 2 (List.length (Tree.children t));
  check Alcotest.int "child elements" 1 (List.length (Tree.child_elements t));
  check Alcotest.bool "is_element" true (Tree.is_element t);
  check Alcotest.bool "is_text" true (Tree.is_text (Tree.text "s"))

let test_tag_of_text () =
  match Tree.tag (Tree.text "x") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_find_child () =
  let t = parse "<r><a>1</a><b>2</b><a>3</a></r>" in
  check Alcotest.(option string) "first a" (Some "1")
    (Option.map Tree.text_content (Tree.find_child t "a"));
  check Alcotest.int "all a" 2 (List.length (Tree.find_children t "a"));
  check Alcotest.(option string) "missing" None
    (Option.map Tree.text_content (Tree.find_child t "zz"))

let test_text_content () =
  let t = parse "<r>a<b>c<d>e</d></b>f</r>" in
  check Alcotest.string "document-order text" "acef" (Tree.text_content t)

let test_field () =
  let t = parse "<movie><title>  Jaws   2 </title></movie>" in
  check Alcotest.(option string) "normalised" (Some "Jaws 2") (Tree.field t "title")

let test_normalize_space () =
  check Alcotest.string "collapse" "a b c" (Tree.normalize_space "  a \t b \n  c  ");
  check Alcotest.string "empty" "" (Tree.normalize_space "   \n ");
  check Alcotest.string "identity" "x" (Tree.normalize_space "x")

let test_canonical_attrs_sorted () =
  let a = parse {|<r b="2" a="1"/>|} and b = parse {|<r a="1" b="2"/>|} in
  check Alcotest.bool "attr order irrelevant" true (Tree.deep_equal a b)

let test_canonical_ws () =
  let a = parse "<r>\n  <a>x</a>\n  <b>y</b>\n</r>" in
  let b = parse "<r><a>x</a><b>y</b></r>" in
  check Alcotest.bool "indentation irrelevant" true (Tree.deep_equal a b)

let test_canonical_text_merge () =
  let a = Tree.element "r" [ Tree.text "a"; Tree.text "b" ] in
  let b = Tree.element "r" [ Tree.text "ab" ] in
  check Alcotest.bool "adjacent text merged" true (Tree.deep_equal a b)

let test_deep_equal_negative () =
  check Alcotest.bool "different tag" false
    (Tree.deep_equal (parse "<a/>") (parse "<b/>"));
  check Alcotest.bool "different text" false
    (Tree.deep_equal (parse "<a>x</a>") (parse "<a>y</a>"));
  check Alcotest.bool "different attrs" false
    (Tree.deep_equal (parse {|<a k="1"/>|}) (parse {|<a k="2"/>|}));
  check Alcotest.bool "child order matters" false
    (Tree.deep_equal (parse "<r><a/><b/></r>") (parse "<r><b/><a/></r>"))

let test_node_count_depth () =
  let t = parse "<r><a>x</a><b><c/></b></r>" in
  (* r, a, "x", b, c *)
  check Alcotest.int "node_count" 5 (Tree.node_count t);
  check Alcotest.int "depth" 3 (Tree.depth t);
  check Alcotest.int "leaf depth" 1 (Tree.depth (parse "<r/>"))

let test_fold_order () =
  let t = parse "<r><a>x</a><b/></r>" in
  let names = List.rev (Tree.fold (fun acc n -> Option.value ~default:"#t" (Tree.name n) :: acc) [] t) in
  check Alcotest.(list string) "document order" [ "r"; "a"; "#t"; "b" ] names

(* ---- parser -------------------------------------------------------------- *)

let test_parse_basic () =
  let t = parse {|<a x="1"><b>hi</b></a>|} in
  check Alcotest.string "tag" "a" (Tree.tag t);
  check Alcotest.(option string) "attr" (Some "1") (Tree.attribute t "x");
  check Alcotest.string "text" "hi" (Tree.text_content t)

let test_parse_self_closing () =
  check Alcotest.int "no children" 0 (List.length (Tree.children (parse "<a/>")));
  check Alcotest.(option string) "attr on self-closing" (Some "2")
    (Tree.attribute (parse {|<a y="2"/>|}) "y")

let test_parse_entities () =
  check Alcotest.string "predefined" "<&>'\""
    (Tree.text_content (parse "<a>&lt;&amp;&gt;&apos;&quot;</a>"));
  check Alcotest.string "decimal" "A" (Tree.text_content (parse "<a>&#65;</a>"));
  check Alcotest.string "hex" "A" (Tree.text_content (parse "<a>&#x41;</a>"));
  check Alcotest.string "utf8" "é" (Tree.text_content (parse "<a>&#233;</a>"))

let test_parse_entities_in_attrs () =
  check Alcotest.(option string) "attr entity" (Some "a<b")
    (Tree.attribute (parse {|<a k="a&lt;b"/>|}) "k")

let test_parse_cdata () =
  check Alcotest.string "cdata" "<not-a-tag/>"
    (Tree.text_content (parse "<a><![CDATA[<not-a-tag/>]]></a>"))

let test_parse_comments_pi_doctype () =
  let t = parse "<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r ANY>]><!-- hi --><r>x<!-- inner -->y</r><!-- bye -->" in
  check Alcotest.string "comments dropped" "xy" (Tree.text_content t)

let test_parse_quotes () =
  check Alcotest.(option string) "single quotes" (Some {|say "hi"|})
    (Tree.attribute (parse {|<a k='say "hi"'/>|}) "k")

let test_parse_errors () =
  parse_err "";
  parse_err "<a>";
  parse_err "<a></b>";
  parse_err "<a><b></a></b>";
  parse_err "<a";
  parse_err "<a k=v/>";
  parse_err {|<a k="1" k="2"/>|};
  parse_err "<a>&unknown;</a>";
  parse_err "<a>x</a><b/>";
  parse_err "text only";
  parse_err "<a>&#xZZ;</a>";
  parse_err "<a><![CDATA[unterminated</a>"

let test_parse_error_position () =
  match Parser.parse_string "<a>\n<b>oops</a>" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
      check Alcotest.int "line" 2 e.Parser.line;
      check Alcotest.bool "message mentions tags" true
        (Astring_contains.contains e.Parser.message "mismatched")

(* ---- printer ------------------------------------------------------------- *)

let test_print_escapes () =
  let t = Tree.element "a" ~attrs:[ ("k", "a\"b<c") ] [ Tree.text "x<y&z" ] in
  let s = Printer.to_string t in
  check Alcotest.bool "text escaped" true (Astring_contains.contains s "x&lt;y&amp;z");
  check Alcotest.bool "attr escaped" true (Astring_contains.contains s "a&quot;b&lt;c")

let test_print_parse_roundtrip () =
  let t = parse {|<r a="1"><b>x &amp; y</b><c/>tail</r>|} in
  let again = parse (Printer.to_string t) in
  check Alcotest.bool "roundtrip" true (Tree.deep_equal t again)

let test_print_indent_roundtrip () =
  let t = parse "<r><a><b>deep</b></a><c/></r>" in
  let again = parse (Printer.to_string ~indent:2 t) in
  check Alcotest.bool "indented roundtrip" true (Tree.deep_equal t again)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print ∘ parse = id (canonical)" ~count:200
    (QCheck.map (fun seed -> fst (Random_docs.xml (Prng.make seed) ~depth:3)) QCheck.int)
    (fun t ->
      match Parser.parse_string (Printer.to_string t) with
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" (Parser.error_to_string e)
      | Ok t' -> Tree.deep_equal t t')

let prop_parser_no_crash =
  QCheck.Test.make ~name:"parser never raises on garbage" ~count:500
    QCheck.(string_of_size (Gen.int_bound 40))
    (fun s ->
      match Parser.parse_string s with Ok _ | Error _ -> true)

(* ---- dtd ----------------------------------------------------------------- *)

let dtd_of_string s =
  match Dtd.of_string s with
  | Ok d -> d
  | Error msg -> Alcotest.failf "dtd parse failed: %s" msg

let test_dtd_parse () =
  let d = dtd_of_string "person: nm, tel?, addr*\nmovie: title?, year+  # comment" in
  check Alcotest.bool "nm exactly one" true
    (Dtd.occurs d ~parent:"person" ~child:"nm" = Dtd.One);
  check Alcotest.bool "tel max one" true (Dtd.max_one d ~parent:"person" ~child:"tel");
  check Alcotest.bool "addr any" false (Dtd.max_one d ~parent:"person" ~child:"addr");
  check Alcotest.bool "year many" false (Dtd.max_one d ~parent:"movie" ~child:"year");
  check Alcotest.bool "undeclared" false (Dtd.max_one d ~parent:"person" ~child:"x")

let test_dtd_parse_errors () =
  (match Dtd.of_string "no-colon-here" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error");
  match Dtd.of_string ": tel?" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_dtd_validate () =
  let d = dtd_of_string "person: nm, tel?" in
  let ok = parse "<book><person><nm>A</nm><tel>1</tel></person></book>" in
  let missing_nm = parse "<book><person><tel>1</tel></person></book>" in
  let two_tels = parse "<book><person><nm>A</nm><tel>1</tel><tel>2</tel></person></book>" in
  check Alcotest.bool "valid" true (Result.is_ok (Dtd.validate d ok));
  (match Dtd.validate d missing_nm with
  | Error [ v ] ->
      check Alcotest.string "missing child" "nm" v.Dtd.child;
      check Alcotest.int "found 0" 0 v.Dtd.found
  | _ -> Alcotest.fail "expected one violation");
  match Dtd.validate d two_tels with
  | Error [ v ] -> check Alcotest.string "tel violation" "tel" v.Dtd.child
  | _ -> Alcotest.fail "expected one violation"

let test_dtd_roundtrip () =
  let d = dtd_of_string "person: nm, tel?\nmovie: title?, genre*" in
  let d' = dtd_of_string (Dtd.to_string d) in
  check
    Alcotest.(list (triple string string string))
    "declarations survive"
    (List.map (fun (p, c, o) -> (p, c, Dtd.(match o with One -> "1" | Optional -> "?" | Many -> "+" | Any -> "*"))) (Dtd.declarations d))
    (List.map (fun (p, c, o) -> (p, c, Dtd.(match o with One -> "1" | Optional -> "?" | Many -> "+" | Any -> "*"))) (Dtd.declarations d'))

let test_dtd_infer () =
  let docs =
    [
      parse "<book><person><nm>A</nm><tel>1</tel></person><person><nm>B</nm></person></book>";
      parse "<book><person><nm>C</nm><genre>x</genre><genre>y</genre></person></book>";
    ]
  in
  let d = Dtd.infer docs in
  check Alcotest.bool "nm never repeats" true (Dtd.max_one d ~parent:"person" ~child:"nm");
  check Alcotest.bool "tel never repeats" true (Dtd.max_one d ~parent:"person" ~child:"tel");
  check Alcotest.bool "genre repeats" false (Dtd.max_one d ~parent:"person" ~child:"genre");
  check Alcotest.bool "person repeats" false (Dtd.max_one d ~parent:"book" ~child:"person");
  check Alcotest.bool "unseen pair unconstrained" false (Dtd.max_one d ~parent:"x" ~child:"y");
  (* inferred knowledge validates its own witnesses *)
  List.iter (fun doc -> check Alcotest.bool "self-consistent" true (Result.is_ok (Dtd.validate d doc))) docs

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let q p = QCheck_alcotest.to_alcotest p in
  [
    ( "xml.tree",
      [
        t "constructors and accessors" test_constructors;
        t "tag of text raises" test_tag_of_text;
        t "find_child / find_children" test_find_child;
        t "text_content in document order" test_text_content;
        t "field is normalised" test_field;
        t "normalize_space" test_normalize_space;
        t "canonical sorts attributes" test_canonical_attrs_sorted;
        t "canonical drops indentation" test_canonical_ws;
        t "canonical merges adjacent text" test_canonical_text_merge;
        t "deep_equal negatives" test_deep_equal_negative;
        t "node_count and depth" test_node_count_depth;
        t "fold visits document order" test_fold_order;
      ] );
    ( "xml.parser",
      [
        t "elements, attributes, text" test_parse_basic;
        t "self-closing" test_parse_self_closing;
        t "entities" test_parse_entities;
        t "entities in attributes" test_parse_entities_in_attrs;
        t "CDATA" test_parse_cdata;
        t "comments, PIs, DOCTYPE skipped" test_parse_comments_pi_doctype;
        t "quote styles" test_parse_quotes;
        t "malformed inputs are errors" test_parse_errors;
        t "error carries position" test_parse_error_position;
        q prop_parser_no_crash;
      ] );
    ( "xml.printer",
      [
        t "escaping" test_print_escapes;
        t "roundtrip" test_print_parse_roundtrip;
        t "indented roundtrip" test_print_indent_roundtrip;
        q prop_print_parse_roundtrip;
      ] );
    ( "xml.dtd",
      [
        t "parse compact form" test_dtd_parse;
        t "parse errors" test_dtd_parse_errors;
        t "validate cardinalities" test_dtd_validate;
        t "to_string / of_string roundtrip" test_dtd_roundtrip;
        t "inference from example documents" test_dtd_infer;
      ] );
  ]
