(* Tests for the second integration domain (bibliographies): conventions,
   rules, reconciliation, and the end-to-end integration result. *)

module Pub = Imprecise.Data.Publications
module Tree = Imprecise.Tree
module Oracle = Imprecise.Oracle
module Integrate = Imprecise.Integrate
module Worlds = Imprecise.Worlds
module Pxml = Imprecise.Pxml
module Answer = Imprecise.Answer
module Pquery = Imprecise.Pquery

let check = Alcotest.check

let integrated =
  lazy
    (let dblp, acm = Pub.sources () in
     let cfg =
       Integrate.config ~oracle:(Pub.rules ()) ~reconcile:Pub.reconcile ~dtd:Pub.dtd ()
     in
     match
       Integrate.integrate cfg (Pub.collection Pub.Dblp dblp) (Pub.collection Pub.Acm acm)
     with
     | Ok doc -> doc
     | Error e -> Alcotest.failf "integration failed: %a" Integrate.pp_error e)

let test_conventions () =
  let dblp, _ = Pub.sources () in
  let p = List.hd dblp in
  let d = Pub.render Pub.Dblp p and a = Pub.render Pub.Acm p in
  check Alcotest.bool "never deep-equal across conventions" false (Tree.deep_equal d a);
  check Alcotest.(option string) "dblp venue" (Some "Proc. ICDE") (Tree.field d "venue");
  check Alcotest.(option string) "acm venue" (Some "ICDE Conference") (Tree.field a "venue");
  check Alcotest.bool "dblp has pages" true (Tree.field d "pages" <> None);
  check Alcotest.bool "acm omits pages" true (Tree.field a "pages" = None);
  check Alcotest.(option string) "author flipped" (Some "Keulen, Maurice van")
    (Tree.field a "author")

let test_rules_decide () =
  let dblp, acm = Pub.sources () in
  let rules = Pub.rules () in
  let find title l = List.find (fun (p : Pub.publication) -> p.title = title) l in
  (* co-referent pair stays unsure (never deep-equal) *)
  (match
     Oracle.decide rules
       (Pub.render Pub.Dblp (find "Principles of Dataspace Systems" dblp))
       (Pub.render Pub.Acm (find "Principles of Dataspace Systems" acm))
   with
  | Oracle.Unsure _ -> ()
  | v -> Alcotest.failf "expected unsure, got %a" Oracle.pp_verdict v);
  (* the demo/full confuser pair is separated by the year rule *)
  match
    Oracle.decide rules
      (Pub.render Pub.Dblp (find "IMPrECISE: Good-is-good-enough Data Integration" dblp))
      (Pub.render Pub.Acm (find "Good-is-good-enough Data Integration" acm))
  with
  | Oracle.Different -> ()
  | v -> Alcotest.failf "expected Different, got %a" Oracle.pp_verdict v

let test_reconcile () =
  check Alcotest.(option string) "venues" (Some "ICDE")
    (Pub.reconcile "venue" "Proc. ICDE" "ICDE Conference");
  check Alcotest.(option string) "authors" (Some "Dan Suciu")
    (Pub.reconcile "author" "Dan Suciu" "Suciu, Dan");
  check Alcotest.(option string) "different venues stay" None
    (Pub.reconcile "venue" "Proc. ICDE" "VLDB Conference");
  check Alcotest.(option string) "titles are not reconciled" None
    (Pub.reconcile "title" "A" "B")

let test_integration_shape () =
  let doc = Lazy.force integrated in
  check Alcotest.bool "valid" true (Result.is_ok (Pxml.validate doc));
  (* three unsure co-ref pairs, each a 2-way choice -> 8 worlds *)
  check (Alcotest.float 0.) "eight worlds" 8. (Pxml.world_count doc)

let test_reconciled_venue_queryable () =
  let doc = Lazy.force integrated in
  let answers = Pquery.rank doc "//publication[venue='ICDE']/title" in
  match answers with
  | [ a ] ->
      check Alcotest.string "the 2005 paper" "A Probabilistic XML Approach to Data Integration"
        a.Answer.value;
      (* only in the (likely) matched world was the venue reconciled *)
      check Alcotest.bool "high but not certain" true (a.Answer.prob > 0.9 && a.Answer.prob < 1.)
  | l -> Alcotest.failf "expected one answer, got %d" (List.length l)

let test_one_sided_knowledge_survives () =
  let doc = Lazy.force integrated in
  let answers = Pquery.rank doc "//publication[pages]/pages" in
  check Alcotest.int "three page ranges" 3 (List.length answers);
  List.iter
    (fun (a : Answer.t) -> check (Alcotest.float 1e-9) a.value 1. a.prob)
    answers

let test_confusers_stay_distinct () =
  let doc = Lazy.force integrated in
  (* in every world, the demo (2008) and the full (2006) paper coexist *)
  List.iter
    (fun (_, forest) ->
      List.iter
        (fun w ->
          let titles = Imprecise.Xpath.Eval.select_strings w "//publication/title" in
          check Alcotest.bool "demo present" true
            (List.mem "IMPrECISE: Good-is-good-enough Data Integration" titles);
          check Alcotest.bool "full version present" true
            (List.mem "Good-is-good-enough Data Integration" titles))
        forest)
    (Worlds.merged doc)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "publications",
      [
        t "rendering conventions" test_conventions;
        t "rules decide the right pairs" test_rules_decide;
        t "reconciliation knowledge" test_reconcile;
        t "integration shape (8 worlds)" test_integration_shape;
        t "reconciled venue is queryable" test_reconciled_venue_queryable;
        t "one-sided knowledge survives" test_one_sided_knowledge_survives;
        t "demo/full confusers stay distinct" test_confusers_stay_distinct;
      ] );
  ]
