(* Recall-safety differential harness for the pluggable blocking stage.

   The contract of `Integrate.config ~blocker` is exact: a recall-safe
   blocker may skip candidate pairs, but only pairs the full grid's Oracle
   would have called Different — so the final clusters, verdict tallies and
   merged PXML must be byte-identical to the All_pairs baseline. This
   harness checks that contract three ways, mirroring test_par.ml:

   - fuzzed address-book pairs (seeded, reproducible; names collide, vary
     in case/whitespace, and are sometimes missing) checked for
     *completeness* — every pair the Oracle marks Same or Unsure survives
     each blocker's plan — and then integrated under every blocker and
     jobs 1/4, comparing pxml encodings byte for byte and traces field by
     field against All_pairs;
   - the paper examples: Figure 2 and the §VI 'typical conditions'
     workload, completeness-checked at the top-level candidate pool with
     their own rule sets;
   - a larger address-book pair whose grid crosses the parallel threshold,
     where the key blocker must also demonstrate a real reduction
     (compared <= generated / 4).

   Runs under `dune runtest` and alone via `dune build @block-stress`;
   case count overridable through BLOCK_FUZZ_CASES. *)

module Tree = Imprecise.Tree
module Codec = Imprecise.Codec
module Oracle = Imprecise.Oracle
module Integrate = Imprecise.Integrate
module Blocking = Imprecise.Blocking
module Prng = Imprecise.Data.Prng
module Addressbook = Imprecise.Data.Addressbook
module Workloads = Imprecise.Data.Workloads
module Rulesets = Imprecise.Rulesets

let cases =
  match Sys.getenv_opt "BLOCK_FUZZ_CASES" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

let failures = ref 0

let fail seed fmt =
  incr failures;
  Fmt.epr "FAIL (reproduce: seed %d)@.  " seed;
  Fmt.epr (fmt ^^ "@.")

let oracle =
  Oracle.make [ Oracle.deep_equal_rule; Oracle.key_rule ~tag:"person" ~field:"nm" ]

let encode doc = Codec.to_string ~indent:2 doc

(* The presets under certification, as the CLI ships them. All key on the
   nm field; elements without one (missing nm, non-person children) must
   pair with everything. *)
let blockers =
  [
    ("key", Blocking.key ~field:"nm" ());
    ("qgram", Blocking.qgram ~field:"nm" ~q:2 ~threshold:0.4 ());
    ("snm", Blocking.sorted_neighbourhood ~field:"nm" ~window:2 ());
  ]

(* ---- fuzz generator ----------------------------------------------------------- *)

(* Random address books built for blocking: a small name pool with likely
   collisions, case/whitespace variants of the same name (raw-unequal but
   normalising to the same key), persons with no name at all, and the odd
   non-person child. *)
let names =
  [|
    "Alice"; "alice "; "Bob"; "bob"; "Carol"; "Dave Smith"; "dave  smith";
    "Eve"; "Mallory"; "Trent"; "N.N.";
  |]

let person rng =
  let which, rng = Prng.int rng 8 in
  let name, rng =
    if which = 0 then (None, rng)
    else
      let i, rng = Prng.int rng (Array.length names) in
      (Some names.(i), rng)
  in
  let tel, rng = Prng.int rng 5 in
  let children =
    (match name with None -> [] | Some n -> [ Tree.leaf "nm" n ])
    @ [ Tree.leaf "tel" (string_of_int (1000 + tel)) ]
  in
  (Tree.element "person" children, rng)

let book rng =
  let n, rng = Prng.int rng 9 in
  let children, rng =
    List.fold_left
      (fun (acc, rng) _ ->
        let noise, rng = Prng.int rng 10 in
        if noise = 0 then (acc @ [ Tree.leaf "note" "x" ], rng)
        else
          let p, rng = person rng in
          (acc @ [ p ], rng))
      ([], rng)
      (List.init (n + 1) (fun i -> i))
  in
  (Tree.element "addressbook" children, rng)

(* ---- the completeness property ------------------------------------------------ *)

(* Every pair the full grid's Oracle marks Same or Unsure must survive the
   blocker's plan. (Pairs of differently-named tags never reach the Oracle
   in the engine, so only same-tag exclusions are charged to the blocker.) *)
let check_completeness seed label ~oracle spec left right =
  match Blocking.candidates (Blocking.plan spec ~left ~right) with
  | None -> ()
  | Some row ->
      Array.iteri
        (fun i x ->
          let kept = row i in
          Array.iteri
            (fun j y ->
              if (not (List.mem j kept)) && Tree.name x = Tree.name y then
                match Oracle.decide oracle x y with
                | Oracle.Different -> ()
                | v ->
                    fail seed "%s blocked pair (%d, %d) the Oracle marks %a" label i j
                      Oracle.pp_verdict v
                | exception Oracle.Conflict _ -> ())
            right)
        left

let elements t = Array.of_list (List.filter Tree.is_element (Tree.children t))

(* ---- differential integration ------------------------------------------------- *)

let config ?(jobs = 1) blocker =
  Integrate.config ~oracle ~dtd:Addressbook.dtd ~factorize:true ~jobs ~blocker ()

let same_outcome seed label (a : Integrate.trace) (b : Integrate.trace) =
  let field name va vb =
    if va <> vb then fail seed "%s: %s differs (all: %d, blocked: %d)" label name va vb
  in
  field "pairs_generated" a.Integrate.pairs_generated b.Integrate.pairs_generated;
  field "same_pairs" a.Integrate.same_pairs b.Integrate.same_pairs;
  field "unsure_pairs" a.Integrate.unsure_pairs b.Integrate.unsure_pairs;
  field "cluster_count" a.Integrate.cluster_count b.Integrate.cluster_count;
  if b.Integrate.pairs_compared > a.Integrate.pairs_compared then
    fail seed "%s: blocker compared more pairs (%d) than the full grid (%d)" label
      b.Integrate.pairs_compared a.Integrate.pairs_compared

let check_fuzz_case seed =
  let rng = Prng.make seed in
  let a, rng = book rng in
  let b, _ = book rng in
  (* the property itself, at the top-level candidate pool *)
  List.iter
    (fun (label, spec) ->
      check_completeness seed label ~oracle spec (elements a) (elements b))
    blockers;
  (* and its consequence: bit-identical integration under every blocker *)
  match Integrate.integrate_traced (config Blocking.All_pairs) a b with
  | Error _ ->
      List.iter
        (fun (label, spec) ->
          match Integrate.integrate_traced (config spec) a b with
          | Error _ -> ()
          | Ok _ -> fail seed "%s succeeded where All_pairs failed" label)
        blockers
  | Ok (doc_all, trace_all) ->
      let ref_bytes = encode doc_all in
      List.iter
        (fun (label, spec) ->
          List.iter
            (fun jobs ->
              match Integrate.integrate_traced (config ~jobs spec) a b with
              | Error e ->
                  fail seed "%s (jobs=%d) failed where All_pairs succeeded: %a" label
                    jobs Integrate.pp_error e
              | Ok (doc, trace) ->
                  if encode doc <> ref_bytes then
                    fail seed "%s (jobs=%d) result is not byte-identical to All_pairs"
                      label jobs;
                  same_outcome seed (Printf.sprintf "%s (jobs=%d)" label jobs) trace_all
                    trace)
            [ 1; 4 ])
        blockers

(* ---- the paper examples -------------------------------------------------------- *)

let check_paper_examples () =
  (* Figure 2 under the fig2 rule set (deep-equal only): nothing may be
     blocked away from the Same/Unsure set *)
  let fig2_oracle = Oracle.make [ Oracle.deep_equal_rule ] in
  let la = elements Addressbook.source_a and lb = elements Addressbook.source_b in
  List.iter
    (fun (label, spec) ->
      check_completeness (-1) ("fig2 " ^ label) ~oracle:fig2_oracle spec la lb)
    blockers;
  (* §VI typical conditions under the full rule set, with the blockers the
     documentation recommends for movie collections *)
  let wl = Workloads.typical () in
  let ml = elements (Workloads.mpeg7_doc wl) and il = elements (Workloads.imdb_doc wl) in
  List.iter
    (fun (label, spec) ->
      check_completeness (-2) ("typical " ^ label) ~oracle:Rulesets.full.oracle spec ml il)
    [
      ("key(year)", Blocking.key ~field:"year" ());
      ("qgram(title)", Blocking.qgram ~field:"title" ~threshold:0.25 ());
      ("snm(title)", Blocking.sorted_neighbourhood ~field:"title" ());
    ]

(* ---- scale: real reduction, still bit-identical -------------------------------- *)

let check_large_case () =
  let a, b = Addressbook.larger 200 41 in
  match Integrate.integrate_traced (config Blocking.All_pairs) a b with
  | Error e -> fail 41 "larger(200) All_pairs failed: %a" Integrate.pp_error e
  | Ok (doc_all, trace_all) ->
      let ref_bytes = encode doc_all in
      List.iter
        (fun (label, spec) ->
          match Integrate.integrate_traced (config ~jobs:4 spec) a b with
          | Error e -> fail 41 "larger(200) %s failed: %a" label Integrate.pp_error e
          | Ok (doc, trace) ->
              if encode doc <> ref_bytes then
                fail 41 "larger(200) %s: not byte-identical under jobs=4" label;
              same_outcome 41 ("larger(200) " ^ label) trace_all trace;
              if trace.Integrate.pairs_blocked = 0 then
                fail 41 "larger(200) %s blocked nothing" label)
        blockers;
      (* the key blocker on unique-ish names must prune hard: this is the
         reduction the integrate_blocking bench experiment measures *)
      (match Integrate.integrate_traced (config (Blocking.key ~field:"nm" ())) a b with
      | Error e -> fail 41 "larger(200) key rerun failed: %a" Integrate.pp_error e
      | Ok (_, trace) ->
          if trace.Integrate.pairs_compared * 4 > trace.Integrate.pairs_generated then
            fail 41 "key blocker reduced %d generated pairs only to %d compared"
              trace.Integrate.pairs_generated trace.Integrate.pairs_compared);
      ignore trace_all

let () =
  for seed = 0 to cases - 1 do
    check_fuzz_case seed
  done;
  check_paper_examples ();
  check_large_case ();
  if !failures > 0 then begin
    Fmt.epr "%d recall-safety failure(s) over %d fuzz cases@." !failures cases;
    exit 1
  end;
  Fmt.pr
    "blocking: %d fuzz cases x %d blockers complete and bit-identical, paper examples \
     pinned, 4x reduction at n=200@."
    cases (List.length blockers)
