(* End-to-end robustness: messy real-world data (unicode, XML special
   characters) must survive the whole pipeline — parse, integrate, encode,
   persist, reload, query; plus overflow handling and store error paths. *)

module Tree = Imprecise.Tree
module Pxml = Imprecise.Pxml
module Worlds = Imprecise.Worlds
module Codec = Imprecise.Codec
module Oracle = Imprecise.Oracle
module Integrate = Imprecise.Integrate
module Store = Imprecise.Store
module Answer = Imprecise.Answer

let check = Alcotest.check

let messy_a =
  {|<library>
      <book><title>कथा &amp; Context: l'éducation</title><author>Zoë O'Brien</author></book>
      <book><title>C&lt;T&gt; — generics in anger</title><author>Bjørn Ångström</author></book>
    </library>|}

let messy_b =
  {|<library>
      <book><title>कथा &amp; Context: l'éducation</title><author>Zoë O'Brien</author><year>2003</year></book>
      <book><title>Nothing in common</title><author>N. N.</author></book>
    </library>|}

let oracle = Oracle.make [ Oracle.deep_equal_rule; Oracle.key_rule ~tag:"book" ~field:"title" ]

let dtd = Result.get_ok (Imprecise.Dtd.of_string "book: title?, year?")

let integrate_messy () =
  let a = Imprecise.parse_xml_exn messy_a and b = Imprecise.parse_xml_exn messy_b in
  match Integrate.integrate (Integrate.config ~oracle ~dtd ()) a b with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "integration failed: %a" Integrate.pp_error e

let test_unicode_survives_integration () =
  let doc = integrate_messy () in
  check Alcotest.bool "certain (titles are keys)" true (Pxml.is_certain doc);
  match Pxml.to_tree_exn doc with
  | [ t ] ->
      let titles = Imprecise.query_certain t "//book/title" in
      check Alcotest.bool "devanagari + accents intact" true
        (List.mem "कथा & Context: l'éducation" (List.map Tree.normalize_space titles));
      check Alcotest.bool "angle brackets intact" true
        (List.exists (fun s -> Astring_contains.contains s "C<T>") titles);
      (* one-sided year got merged into the matched book *)
      check Alcotest.(list string) "year merged" [ "2003" ] (Imprecise.query_certain t "//book/year")
  | _ -> Alcotest.fail "one root expected"

let test_unicode_survives_codec_and_store () =
  let doc = integrate_messy () in
  (match Codec.of_string (Codec.to_string ~indent:2 doc) with
  | Ok doc' -> check Alcotest.bool "codec roundtrip" true (Pxml.equal doc doc')
  | Error msg -> Alcotest.failf "decode failed: %s" msg);
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "imprecise-messy" in
  let s = Store.create () in
  Store.put s "messy" (Store.Probabilistic doc);
  (match Store.save s ~dir with Ok () -> () | Error m -> Alcotest.failf "save: %s" m);
  match Store.load dir with
  | Error m -> Alcotest.failf "load: %s" m
  | Ok (s', report) -> (
      check Alcotest.bool "clean recovery" true (Store.recovered_all report);
      match Store.get_probabilistic s' "messy" with
      | Some doc' -> check Alcotest.bool "store roundtrip" true (Pxml.equal doc doc')
      | None -> Alcotest.fail "document lost")

let test_unicode_in_queries () =
  let doc = integrate_messy () in
  let answers =
    Imprecise.rank doc {|//book[author="Zoë O'Brien"]/title|}
  in
  check Alcotest.int "one book" 1 (List.length answers);
  check Alcotest.bool "query with unicode literal matched" true
    (Astring_contains.contains (List.hd answers).Answer.value "Context")

let test_quotes_in_query_literals () =
  let doc = Pxml.doc_of_tree (Imprecise.parse_xml_exn {|<r><a>say "hi"</a></r>|}) in
  let answers = Imprecise.rank doc {|//a[contains(., '"hi"')]|} in
  check Alcotest.int "matched across quote styles" 1 (List.length answers)

(* ---- overflow handling ---------------------------------------------------- *)

let test_world_count_int_overflow () =
  (* 64 independent binary choices: 2^64 combinations overflows int. *)
  let flip = Pxml.dist [ Pxml.choice ~prob:0.5 [ Pxml.Text "0" ]; Pxml.choice ~prob:0.5 [ Pxml.Text "1" ] ] in
  let doc = Pxml.certain [ Pxml.Elem ("bits", [], List.init 64 (fun _ -> flip)) ] in
  check Alcotest.(option int) "overflow detected" None (Pxml.world_count_int doc);
  check Alcotest.bool "float count still works" true (Pxml.world_count doc > 1e18)

let test_most_likely_on_huge_space () =
  let flip p = Pxml.dist [ Pxml.choice ~prob:p [ Pxml.Text "a" ]; Pxml.choice ~prob:(1. -. p) [ Pxml.Text "b" ] ] in
  let doc = Pxml.certain [ Pxml.Elem ("bits", [], List.init 40 (fun _ -> flip 0.9)) ] in
  match Worlds.most_likely ~k:2 doc with
  | [ (p1, _); (p2, _) ] ->
      check (Alcotest.float 1e-9) "all-a world" (0.9 ** 40.) p1;
      check (Alcotest.float 1e-9) "one flip" (0.9 ** 39. *. 0.1) p2
  | _ -> Alcotest.fail "expected two worlds from a 2^40 space"

(* ---- store error paths ------------------------------------------------------ *)

let test_store_load_skips_nothing_but_fails_on_bad_xml () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "imprecise-badxml" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "broken.xml") in
  output_string oc "<unclosed>";
  close_out oc;
  (* strict keeps the all-or-nothing contract *)
  (match Store.load ~mode:Store.Strict dir with
  | Error msg -> check Alcotest.bool "names the file" true (Astring_contains.contains msg "broken")
  | Ok _ -> Alcotest.fail "bad XML accepted");
  (* salvage reports the damage instead of refusing the directory, and
     moves the bytes aside only when asked to quarantine *)
  (match Store.load dir with
  | Error msg -> Alcotest.failf "salvage refused the directory: %s" msg
  | Ok (s, report) ->
      check Alcotest.int "nothing loadable" 0 (Store.size s);
      check Alcotest.bool "damage reported" false (Store.recovered_all report);
      check Alcotest.bool "read-only load moves nothing" true
        (Sys.file_exists (Filename.concat dir "broken.xml")));
  (match Store.load ~quarantine:true dir with
  | Error msg -> Alcotest.failf "quarantining load refused: %s" msg
  | Ok _ -> ());
  Sys.remove (Filename.concat dir "broken.xml.corrupt")

let test_store_load_rejects_bad_encoding () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "imprecise-badenc" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "badprob.xml") in
  output_string oc "<p:prob><p:poss p=\"0.4\"/></p:prob>";
  close_out oc;
  (match Store.load ~mode:Store.Strict dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid probabilities accepted");
  (match Store.load dir with
  | Error msg -> Alcotest.failf "salvage refused the directory: %s" msg
  | Ok (s, _) -> check Alcotest.bool "never returned decoded" false (Store.mem s "badprob"));
  (match Store.load ~quarantine:true dir with
  | Error msg -> Alcotest.failf "quarantining load refused: %s" msg
  | Ok _ -> ());
  Sys.remove (Filename.concat dir "badprob.xml.corrupt")

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "robustness.unicode",
      [
        t "unicode survives integration" test_unicode_survives_integration;
        t "unicode survives codec and store" test_unicode_survives_codec_and_store;
        t "unicode query literals" test_unicode_in_queries;
        t "quotes in query literals" test_quotes_in_query_literals;
      ] );
    ( "robustness.limits",
      [
        t "world_count_int overflow" test_world_count_int_overflow;
        t "k-best over a 2^40 world space" test_most_likely_on_huge_space;
      ] );
    ( "robustness.store",
      [
        t "load fails cleanly on bad XML" test_store_load_skips_nothing_but_fails_on_bad_xml;
        t "load rejects invalid probability encodings" test_store_load_rejects_bad_encoding;
      ] );
  ]
