let lowercase = String.lowercase_ascii

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let edit_similarity a b =
  let n = max (String.length a) (String.length b) in
  if n = 0 then 1. else 1. -. (float_of_int (levenshtein a b) /. float_of_int n)

let jaro a b =
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.
  else if la = 0 || lb = 0 then 0.
  else begin
    let window = max 0 ((max la lb / 2) - 1) in
    let a_matched = Array.make la false and b_matched = Array.make lb false in
    let matches = ref 0 in
    for i = 0 to la - 1 do
      let lo = max 0 (i - window) and hi = min (lb - 1) (i + window) in
      let rec find j =
        if j > hi then ()
        else if (not b_matched.(j)) && a.[i] = b.[j] then begin
          a_matched.(i) <- true;
          b_matched.(j) <- true;
          incr matches
        end
        else find (j + 1)
      in
      find lo
    done;
    if !matches = 0 then 0.
    else begin
      let transpositions = ref 0 in
      let k = ref 0 in
      for i = 0 to la - 1 do
        if a_matched.(i) then begin
          while not b_matched.(!k) do incr k done;
          if a.[i] <> b.[!k] then incr transpositions;
          incr k
        end
      done;
      let m = float_of_int !matches in
      let t = float_of_int (!transpositions / 2) in
      ((m /. float_of_int la) +. (m /. float_of_int lb) +. ((m -. t) /. m)) /. 3.
    end
  end

let jaro_winkler a b =
  let j = jaro a b in
  let max_prefix = 4 in
  let rec common i =
    if i >= max_prefix || i >= String.length a || i >= String.length b then i
    else if a.[i] = b.[i] then common (i + 1)
    else i
  in
  let l = float_of_int (common 0) in
  j +. (l *. 0.1 *. (1. -. j))

let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let tokens s =
  let s = lowercase s in
  let buf = Buffer.create 8 and out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_alnum c then Buffer.add_char buf c else flush ()) s;
  flush ();
  List.rev !out

module S = Set.Make (String)

let token_jaccard a b =
  let sa = S.of_list (tokens a) and sb = S.of_list (tokens b) in
  if S.is_empty sa && S.is_empty sb then 1.
  else
    let inter = S.cardinal (S.inter sa sb) and union = S.cardinal (S.union sa sb) in
    float_of_int inter /. float_of_int union

(* Unrelated strings of similar length still share ~30-40% of their letters,
   so mid-range edit similarity carries no signal; it only means something
   when high (a typo or spelling variation). Gate it at 0.7. *)
let name_similarity a b =
  let a = lowercase a and b = lowercase b in
  let e = edit_similarity a b in
  Float.max (token_jaccard a b) (if e >= 0.7 then e else 0.)

(* ---- q-grams and the inverted candidate index ------------------------------- *)

(* Canonical form for blocking keys: lower-cased, tokenised on
   non-alphanumerics, re-joined with single spaces — so case, punctuation
   and stray whitespace never split a block. *)
let normalize_key s = String.concat " " (tokens s)

let qgram_set ?(q = 2) s =
  if q < 1 then invalid_arg "Similarity.qgrams: q must be >= 1";
  let s = normalize_key s in
  let n = String.length s in
  if n = 0 then S.empty
  else if n <= q then S.singleton s
  else begin
    let out = ref S.empty in
    for i = 0 to n - q do
      out := S.add (String.sub s i q) !out
    done;
    !out
  end

let qgrams ?q s = S.elements (qgram_set ?q s)

let qgram_similarity ?q a b =
  let ga = qgram_set ?q a and gb = qgram_set ?q b in
  if S.is_empty ga && S.is_empty gb then 1.
  else
    let inter = S.cardinal (S.inter ga gb) in
    let union = S.cardinal ga + S.cardinal gb - inter in
    float_of_int inter /. float_of_int union

module Qgram_index = struct
  module Obs = Imprecise_obs.Obs

  let c_builds = Obs.Metrics.counter "oracle.qgram.index_builds"

  let c_lookups = Obs.Metrics.counter "oracle.qgram.lookups"

  type t = {
    q : int;
    grams : S.t array;  (* per-entry gram set, for exact re-scoring *)
    buckets : (string, int list) Hashtbl.t;  (* gram -> entries, ascending *)
    size : int;
  }

  let build ?(q = 2) ?(tick = ignore) keys =
    Obs.Metrics.incr c_builds;
    let size = Array.length keys in
    let grams =
      Array.map
        (fun k ->
          tick ();
          qgram_set ~q k)
        keys
    in
    let buckets = Hashtbl.create (max 16 size) in
    (* walk entries high-to-low so each posting list comes out ascending *)
    for i = size - 1 downto 0 do
      S.iter
        (fun g ->
          tick ();
          let prev = Option.value ~default:[] (Hashtbl.find_opt buckets g) in
          Hashtbl.replace buckets g (i :: prev))
        grams.(i)
    done;
    { q; grams; buckets; size }

  let size t = t.size

  let similarity_to t i gs =
    let gi = t.grams.(i) in
    if S.is_empty gi && S.is_empty gs then 1.
    else
      let inter = S.cardinal (S.inter gi gs) in
      let union = S.cardinal gi + S.cardinal gs - inter in
      float_of_int inter /. float_of_int union

  let query ?(tick = ignore) t ~threshold key =
    Obs.Metrics.incr c_lookups;
    if threshold <= 0. then List.init t.size Fun.id
    else begin
      let gs = qgram_set ~q:t.q key in
      let seen = Hashtbl.create 16 in
      S.iter
        (fun g ->
          match Hashtbl.find_opt t.buckets g with
          | None -> ()
          | Some ids ->
              List.iter
                (fun i ->
                  tick ();
                  Hashtbl.replace seen i ())
                ids)
        gs;
      Hashtbl.fold (fun i () acc -> i :: acc) seen []
      |> List.filter (fun i -> similarity_to t i gs >= threshold)
      |> List.sort Int.compare
    end
end

let sequel_markers =
  S.of_list
    [ "2"; "3"; "4"; "5"; "ii"; "iii"; "iv"; "v"; "part"; "episode"; "returns" ]

let sequel_signature s =
  S.inter (S.of_list (tokens s)) sequel_markers

let title_similarity a b =
  let base = name_similarity a b in
  if S.equal (sequel_signature a) (sequel_signature b) then base
  else Float.min base 0.9
