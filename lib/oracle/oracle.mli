(** "The Oracle" (paper §IV–V): the component that determines whether two
    XML elements refer to the same real-world object (rwo).

    The Oracle is configured with {e knowledge rules}. A rule may state with
    certainty that two elements match ({!Same}) or do not ({!Different}), or
    abstain. When no rule is decisive the Oracle answers {!Unsure} with a
    match probability; the integration algorithm then keeps both worlds.
    The effectiveness of the rules at making absolute decisions is exactly
    what bounds the possibility explosion (Table I). *)

module Xml = Imprecise_xml

type verdict =
  | Same  (** certainly the same rwo *)
  | Different  (** certainly distinct rwos *)
  | Unsure of float  (** same rwo with this probability *)

val pp_verdict : Format.formatter -> verdict -> unit

(** A rule inspects a pair of same-tagged elements (one from each source)
    and may return a verdict. [name] identifies the rule in reports;
    [judge] returns [None] to abstain. *)
type rule = { name : string; judge : Xml.Tree.t -> Xml.Tree.t -> verdict option }

type t

exception Conflict of string
(** Raised by {!decide} when one rule says [Same] and another [Different]
    for the same pair — the knowledge base is inconsistent. *)

(** [make ?default rules] builds an Oracle. [default] supplies the match
    probability when every rule abstains (default: constant [0.5]).
    Absolute verdicts dominate: any [Different] (resp. [Same]) decides the
    pair; a [Same]/[Different] clash raises {!Conflict} from {!decide}.
    If no rule is absolute, the first [Unsure] verdict wins, then
    [default]. *)
val make : ?default:(Xml.Tree.t -> Xml.Tree.t -> float) -> rule list -> t

val rules : t -> rule list

val rule_names : t -> string list

(** [decide t a b] is the Oracle's verdict for the pair. *)
val decide : t -> Xml.Tree.t -> Xml.Tree.t -> verdict

(** {1 Generic rules (domain-independent)} *)

(** Two deep-equal elements refer to the same rwo. *)
val deep_equal_rule : rule

(** {1 Domain-rule builders}

    All builders abstain when either element lacks the field, and apply only
    to elements whose tag is [tag]. Field values are whitespace-normalised
    child-element string values. *)

(** [key_rule ~tag ~field] — the field is a key: equal values ⇒ [Same],
    different values ⇒ [Different]. *)
val key_rule : tag:string -> field:string -> rule

(** [field_differs_rule ~tag ~field] — a reliable discriminating field
    (the paper's {e year rule} with [~field:"year"]): different values ⇒
    [Different]; abstains on equal values. *)
val field_differs_rule : tag:string -> field:string -> rule

(** [set_disjoint_rule ~tag ~field] — the field occurs multiple times and
    contains no typos (the paper's {e genre rule}): if both elements have a
    non-empty set of values and the sets are disjoint ⇒ [Different]. *)
val set_disjoint_rule : tag:string -> field:string -> rule

(** [attr_key_rule ~tag ~attr] — an attribute is a key (record ids):
    equal values ⇒ [Same], different ⇒ [Different]; abstains when either
    side lacks the attribute. *)
val attr_key_rule : tag:string -> attr:string -> rule

(** [text_key_rule ~tag] — for leaf elements whose text is a reliable
    identifier (genres under the "no typos in genres" assumption): equal
    normalised text ⇒ [Same], different ⇒ [Different]. *)
val text_key_rule : tag:string -> rule

(** [text_match_rule ~tag ?measure ~same_above ~diff_below ()] — for leaf
    elements with flexible conventions (director names): similarity at or
    above [same_above] ⇒ [Same]; below [diff_below] ⇒ [Different]; between
    the two ⇒ abstain. Default measure: {!Similarity.name_similarity},
    which treats ["John Woo"] and ["Woo, John"] as identical. *)
val text_match_rule :
  tag:string ->
  ?measure:(string -> string -> float) ->
  same_above:float ->
  diff_below:float ->
  unit ->
  rule

(** [similarity_rule ~tag ~field ~threshold ?measure ()] — the paper's
    {e title rule}: two elements cannot match if their [field] values are
    not sufficiently similar ([measure] below [threshold] ⇒ [Different];
    default measure: {!Similarity.title_similarity}). *)
val similarity_rule :
  tag:string ->
  field:string ->
  threshold:float ->
  ?measure:(string -> string -> float) ->
  unit ->
  rule

(** {1 Default match-probability builders} *)

(** Constant probability. *)
val constant_prob : float -> Xml.Tree.t -> Xml.Tree.t -> float

(** [field_similarity_prob ~field ?measure ?floor ?ceiling ()] estimates the
    match probability from the similarity of a field, clamped into
    [[floor, ceiling]] (defaults 0.05 and 0.95) so that the Oracle's guess
    never silently becomes an absolute decision. Falls back to 0.5 when the
    field is missing on either side. *)
val field_similarity_prob :
  field:string ->
  ?measure:(string -> string -> float) ->
  ?floor:float ->
  ?ceiling:float ->
  unit ->
  Xml.Tree.t ->
  Xml.Tree.t ->
  float
