(** String similarity, the substrate for the Oracle's "sufficiently similar"
    rules. The two sources in the paper use different conventions (e.g.
    ["John McTiernan"] vs ["McTiernan, John"]) so exact matching never
    fires; all measures here are in [0, 1] with 1 meaning identical. *)

(** [levenshtein a b] is the edit distance (insert, delete, substitute, each
    cost 1). O(|a|·|b|) with two rows. *)
val levenshtein : string -> string -> int

(** [edit_similarity a b] is [1 - distance / max length]; [1.] for two empty
    strings. *)
val edit_similarity : string -> string -> float

val jaro : string -> string -> float

(** [jaro_winkler a b] boosts {!jaro} for common prefixes up to 4 chars with
    the standard 0.1 scaling. *)
val jaro_winkler : string -> string -> float

(** [tokens s] lower-cases, then splits on any non-alphanumeric character,
    dropping empties. *)
val tokens : string -> string list

(** [token_jaccard a b] is the Jaccard similarity of the token sets; handles
    convention differences such as ["Woo, John"] vs ["John Woo"]. *)
val token_jaccard : string -> string -> float

(** [name_similarity a b] is the max of {!token_jaccard} and a {e gated}
    {!edit_similarity} (edit similarity counts only at ≥ 0.7 — mid-range
    edit similarity between unrelated strings is noise, high values signal
    typos/spelling variants) on lower-cased input — robust to both typos
    and token reordering. *)
val name_similarity : string -> string -> float

(** [title_similarity a b] is {!name_similarity}, except that differing
    trailing numerals / roman numerals (sequel markers: "Jaws" vs "Jaws 2")
    cap the score at 0.9 so that sequels stay similar-but-not-equal. *)
val title_similarity : string -> string -> float

val lowercase : string -> string

(** {1 q-grams and the inverted candidate index}

    Substrate for the q-gram blocker (see doc/integrate.md): strings are
    canonicalised with {!normalize_key}, cut into overlapping substrings of
    length [q], and compared by Jaccard similarity of the gram sets. The
    inverted index maps grams to the entries containing them, so finding
    every entry similar to a probe key touches only the posting lists of
    the probe's own grams — not the whole collection. *)

(** [normalize_key s] is the canonical blocking form of [s]: lower-cased,
    split on non-alphanumerics, re-joined with single spaces ([""] when no
    token survives). Case, punctuation and whitespace differences never
    separate two keys. *)
val normalize_key : string -> string

(** [qgrams ?q s] is the sorted, de-duplicated list of [q]-grams (default
    [q = 2]) of [normalize_key s]. The empty (normalised) string has no
    grams; a string shorter than [q] is its own single gram. Raises
    [Invalid_argument] if [q < 1]. *)
val qgrams : ?q:int -> string -> string list

(** [qgram_similarity ?q a b] is the Jaccard similarity of the two gram
    sets — symmetric, in [0, 1], [1.] when both strings normalise equal
    (in particular two empty strings). *)
val qgram_similarity : ?q:int -> string -> string -> float

(** An inverted q-gram index over a fixed array of keys, built once and
    probed many times. Immutable after {!Qgram_index.build}, so lookups are
    safe from any domain. *)
module Qgram_index : sig
  type t

  (** [build ?q ?tick keys] indexes [keys.(0) .. keys.(n-1)]. [tick]
      (default: no-op) is called once per key and once per posting written —
      thread a resilience-budget tick through it so index construction
      counts against the caller's work budget. *)
  val build : ?q:int -> ?tick:(unit -> unit) -> string array -> t

  (** Number of indexed entries. *)
  val size : t -> int

  (** [query ?tick t ~threshold key] is the ascending list of entry indices
      whose {!qgram_similarity} to [key] is [>= threshold]. Only entries
      sharing at least one gram with [key] are examined (an entry equal to
      [key] always shares all of them), except [threshold <= 0.] which
      returns every entry. [tick] is called once per posting examined. *)
  val query : ?tick:(unit -> unit) -> t -> threshold:float -> string -> int list
end
