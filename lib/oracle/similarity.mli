(** String similarity, the substrate for the Oracle's "sufficiently similar"
    rules. The two sources in the paper use different conventions (e.g.
    ["John McTiernan"] vs ["McTiernan, John"]) so exact matching never
    fires; all measures here are in [0, 1] with 1 meaning identical. *)

(** [levenshtein a b] is the edit distance (insert, delete, substitute, each
    cost 1). O(|a|·|b|) with two rows. *)
val levenshtein : string -> string -> int

(** [edit_similarity a b] is [1 - distance / max length]; [1.] for two empty
    strings. *)
val edit_similarity : string -> string -> float

val jaro : string -> string -> float

(** [jaro_winkler a b] boosts {!jaro} for common prefixes up to 4 chars with
    the standard 0.1 scaling. *)
val jaro_winkler : string -> string -> float

(** [tokens s] lower-cases, then splits on any non-alphanumeric character,
    dropping empties. *)
val tokens : string -> string list

(** [token_jaccard a b] is the Jaccard similarity of the token sets; handles
    convention differences such as ["Woo, John"] vs ["John Woo"]. *)
val token_jaccard : string -> string -> float

(** [name_similarity a b] is the max of {!token_jaccard} and a {e gated}
    {!edit_similarity} (edit similarity counts only at ≥ 0.7 — mid-range
    edit similarity between unrelated strings is noise, high values signal
    typos/spelling variants) on lower-cased input — robust to both typos
    and token reordering. *)
val name_similarity : string -> string -> float

(** [title_similarity a b] is {!name_similarity}, except that differing
    trailing numerals / roman numerals (sequel markers: "Jaws" vs "Jaws 2")
    cap the score at 0.9 so that sequels stay similar-but-not-equal. *)
val title_similarity : string -> string -> float

val lowercase : string -> string
