(** Memoized Oracle decisions.

    Integration decides the same subtree pairs over and over: re-running
    with revised rules, folding a third source over an integration whose
    elements were already compared, or simply meeting the same repeated
    subtrees in one verdict grid. This cache keys the Oracle's verdict by
    the {e pair of subtrees themselves} (structural equality), so any
    repeat is answered without consulting the rules again.

    Keys are hash-consed through {!Imprecise_pxml.Intern}: the key hash is
    the intern pool's cached structural hash and key equality is a pointer
    check, so a lookup — hit or miss — is O(1) in the size of the subtrees
    rather than a full traversal per probe.

    Soundness contract: the Oracle's rules and default must be pure
    functions of the two subtrees. Rules that close over external state
    would make a cached verdict stale; nothing in this module can detect
    that. Callers who revise the rule set must use a fresh cache (the
    engine creates one per {!val:Imprecise.integrate_many} call).

    The cache is a mutex-guarded LRU, safe to consult from the parallel
    domains of [Matching.graph_of_outcomes]. Hits, misses and evictions
    are counted under [oracle.cache.hit] / [oracle.cache.miss] /
    [oracle.cache.evict]; note that a cache hit skips [Oracle.decide],
    so [oracle.decisions] and per-rule fired counters only grow on
    misses. *)

module Xml = Imprecise_xml

type t

(** [create ?capacity ()] makes an empty cache evicting least-recently
    used entries beyond [capacity] (default 4096) pairs. Raises
    [Invalid_argument] if [capacity <= 0]. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

val length : t -> int

val clear : t -> unit

(** [find t a b] is the cached verdict for the pair, if present (counts a
    hit or miss either way). *)
val find : t -> Xml.Tree.t -> Xml.Tree.t -> Oracle.verdict option

(** [add t a b v] records a verdict (overwriting any previous one). *)
val add : t -> Xml.Tree.t -> Xml.Tree.t -> Oracle.verdict -> unit

(** [decide t oracle a b] is [Oracle.decide oracle a b] memoized through
    the cache. [Oracle.Conflict] propagates and is never cached. The
    internal lock is not held during the Oracle call, so concurrent
    misses on the same pair may both run the rules — harmless for pure
    rules, see the soundness contract above. *)
val decide : t -> Oracle.t -> Xml.Tree.t -> Xml.Tree.t -> Oracle.verdict
