module Xml = Imprecise_xml
module Intern = Imprecise_pxml.Intern
module Obs = Imprecise_obs.Obs

let c_hit = Obs.Metrics.counter "oracle.cache.hit"

let c_miss = Obs.Metrics.counter "oracle.cache.miss"

let c_evict = Obs.Metrics.counter "oracle.cache.evict"

(* Same LRU shape as Pquery.Cache (hash table into an intrusive recency
   list, every operation O(1)), but keyed by the subtree pair itself and
   guarded by a mutex: the integration engine consults one cache from all
   the domains deciding the verdict grid.

   Keys are INTERNED subtrees (Intern.tree), so a lookup is O(1) in the
   size of the trees: the key hash is the intern pool's cached structural
   hash (one bounded memo probe, no traversal — structural hashing here
   used to walk the whole subtree pair on every lookup), and key equality
   is two pointer checks (deep-equal trees intern to the same pointer).
   Re-interning the probe trees is itself O(1) once they have been seen:
   the pool memoizes by physical identity. *)

type key = Xml.Tree.t * Xml.Tree.t

module Ktbl = Hashtbl.Make (struct
  type t = key

  let equal (a1, b1) (a2, b2) = a1 == a2 && b1 == b2

  let hash (a, b) = (Intern.tree_hash a * 31) lxor Intern.tree_hash b
end)

type node = {
  key : key;
  mutable value : Oracle.verdict;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  lock : Mutex.t;
  tbl : node Ktbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable capacity : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Decision_cache.create: capacity must be positive";
  { lock = Mutex.create (); tbl = Ktbl.create 64; head = None; tail = None; capacity }

let capacity t = t.capacity

let length t = Mutex.protect t.lock @@ fun () -> Ktbl.length t.tbl

let clear t =
  Mutex.protect t.lock @@ fun () ->
  Ktbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Ktbl.remove t.tbl n.key;
      Obs.Metrics.incr c_evict

let find t a b =
  let a = Intern.tree a and b = Intern.tree b in
  let r =
    Mutex.protect t.lock @@ fun () ->
    match Ktbl.find_opt t.tbl (a, b) with
    | Some n ->
        Obs.Metrics.incr c_hit;
        touch t n;
        Some n.value
    | None ->
        Obs.Metrics.incr c_miss;
        None
  in
  (* gated and outside the cache lock: the event sink has its own mutex *)
  if Obs.Event.enabled () then
    Obs.Event.emit ~fields:[ ("hit", Obs.Json.Bool (r <> None)) ] "oracle.cache";
  r

let add t a b value =
  let a = Intern.tree a and b = Intern.tree b in
  Mutex.protect t.lock @@ fun () ->
  let key = (a, b) in
  match Ktbl.find_opt t.tbl key with
  | Some n ->
      n.value <- value;
      touch t n
  | None ->
      if Ktbl.length t.tbl >= t.capacity then evict_tail t;
      let n = { key; value; prev = None; next = None } in
      Ktbl.add t.tbl key n;
      push_front t n

(* The lock is NOT held across [Oracle.decide]: a slow rule set would
   serialise every domain. Two domains may therefore decide the same
   fresh pair concurrently; both compute the same verdict (rules are
   pure by the {!Oracle} contract) and the second [add] is an idempotent
   overwrite, so the race costs duplicated work, never wrong answers.
   Conflicts are re-raised and never cached. *)
let decide t oracle a b =
  match find t a b with
  | Some v -> v
  | None ->
      let v = Oracle.decide oracle a b in
      add t a b v;
      v
