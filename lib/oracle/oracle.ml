module Xml = Imprecise_xml
module Obs = Imprecise_obs.Obs

(* Every decision is counted; which rule fired is attributed per rule name
   under oracle.rule_fired.<name> (see doc/observability.md). *)
let c_decisions = Obs.Metrics.counter "oracle.decisions"

let c_defaulted = Obs.Metrics.counter "oracle.default_prob_used"

type verdict = Same | Different | Unsure of float

let pp_verdict ppf = function
  | Same -> Fmt.string ppf "same"
  | Different -> Fmt.string ppf "different"
  | Unsure p -> Fmt.pf ppf "unsure(%.3g)" p

type rule = { name : string; judge : Xml.Tree.t -> Xml.Tree.t -> verdict option }

type t = {
  rules : rule list;
  default : Xml.Tree.t -> Xml.Tree.t -> float;
  (* rule-name → its fired counter, interned once at [make] so the hot
     path never does a by-name registry lookup *)
  fired : (string * Obs.Metrics.counter) list;
}

exception Conflict of string

let constant_prob p _ _ = p

let make ?(default = constant_prob 0.5) rules =
  let fired =
    List.map (fun r -> (r.name, Obs.Metrics.counter ("oracle.rule_fired." ^ r.name))) rules
  in
  { rules; default; fired }

let rules t = t.rules

let rule_names t = List.map (fun r -> r.name) t.rules

let decide t a b =
  Obs.Metrics.incr c_decisions;
  let verdicts =
    List.filter_map (fun r -> Option.map (fun v -> (r.name, v)) (r.judge a b)) t.rules
  in
  List.iter
    (fun (name, _) ->
      match List.assoc_opt name t.fired with
      | Some c -> Obs.Metrics.incr c
      | None -> ())
    verdicts;
  if verdicts = [] then Obs.Metrics.incr c_defaulted;
  let sames = List.filter (fun (_, v) -> v = Same) verdicts in
  let diffs = List.filter (fun (_, v) -> v = Different) verdicts in
  let result =
    match sames, diffs with
    | (s, _) :: _, (d, _) :: _ ->
        raise
          (Conflict
             (Fmt.str "rule %S says the pair matches but rule %S says it cannot" s d))
    | _ :: _, [] -> Same
    | [], _ :: _ -> Different
    | [], [] -> (
        match List.find_opt (fun (_, v) -> match v with Unsure _ -> true | _ -> false) verdicts with
        | Some (_, v) -> v
        | None -> Unsure (t.default a b))
  in
  (* gated: the verdict grid calls [decide] from its innermost loop, so the
     fields list must not be built when nobody is recording *)
  if Obs.Event.enabled () then
    Obs.Event.emit
      ~fields:
        [
          ("verdict", Obs.Json.String (Fmt.str "%a" pp_verdict result));
          ( "rules",
            Obs.Json.List (List.map (fun (n, _) -> Obs.Json.String n) verdicts) );
        ]
      "oracle.verdict";
  result

let deep_equal_rule =
  {
    name = "deep-equal";
    judge = (fun a b -> if Xml.Tree.deep_equal a b then Some Same else None);
  }

let has_tag tag t = Xml.Tree.name t = Some tag

let field_pair ~tag ~field a b =
  if has_tag tag a && has_tag tag b then
    match Xml.Tree.field a field, Xml.Tree.field b field with
    | Some va, Some vb -> Some (va, vb)
    | _ -> None
  else None

let key_rule ~tag ~field =
  {
    name = Fmt.str "key(%s/%s)" tag field;
    judge =
      (fun a b ->
        match field_pair ~tag ~field a b with
        | Some (va, vb) -> Some (if String.equal va vb then Same else Different)
        | None -> None);
  }

let field_differs_rule ~tag ~field =
  {
    name = Fmt.str "differs(%s/%s)" tag field;
    judge =
      (fun a b ->
        match field_pair ~tag ~field a b with
        | Some (va, vb) -> if String.equal va vb then None else Some Different
        | None -> None);
  }

module S = Set.Make (String)

let value_set t field =
  Xml.Tree.find_children t field
  |> List.map (fun c -> Similarity.lowercase (Xml.Tree.normalize_space (Xml.Tree.text_content c)))
  |> S.of_list

let set_disjoint_rule ~tag ~field =
  {
    name = Fmt.str "disjoint(%s/%s)" tag field;
    judge =
      (fun a b ->
        if has_tag tag a && has_tag tag b then begin
          let sa = value_set a field and sb = value_set b field in
          if S.is_empty sa || S.is_empty sb then None
          else if S.is_empty (S.inter sa sb) then Some Different
          else None
        end
        else None);
  }

let attr_key_rule ~tag ~attr =
  {
    name = Fmt.str "attr-key(%s/@%s)" tag attr;
    judge =
      (fun a b ->
        if has_tag tag a && has_tag tag b then
          match Xml.Tree.attribute a attr, Xml.Tree.attribute b attr with
          | Some va, Some vb -> Some (if String.equal va vb then Same else Different)
          | _ -> None
        else None);
  }

let own_text t = Similarity.lowercase (Xml.Tree.normalize_space (Xml.Tree.text_content t))

let text_key_rule ~tag =
  {
    name = Fmt.str "text-key(%s)" tag;
    judge =
      (fun a b ->
        if has_tag tag a && has_tag tag b then
          Some (if String.equal (own_text a) (own_text b) then Same else Different)
        else None);
  }

let text_match_rule ~tag ?(measure = Similarity.name_similarity) ~same_above ~diff_below () =
  {
    name = Fmt.str "text-match(%s)" tag;
    judge =
      (fun a b ->
        if has_tag tag a && has_tag tag b then begin
          let s = measure (own_text a) (own_text b) in
          if s >= same_above then Some Same
          else if s < diff_below then Some Different
          else None
        end
        else None);
  }

let similarity_rule ~tag ~field ~threshold ?(measure = Similarity.title_similarity) () =
  {
    name = Fmt.str "similar(%s/%s<%.2f)" tag field threshold;
    judge =
      (fun a b ->
        match field_pair ~tag ~field a b with
        | Some (va, vb) -> if measure va vb < threshold then Some Different else None
        | None -> None);
  }

let field_similarity_prob ~field ?(measure = Similarity.title_similarity) ?(floor = 0.05)
    ?(ceiling = 0.95) () a b =
  match Xml.Tree.field a field, Xml.Tree.field b field with
  | Some va, Some vb -> Float.min ceiling (Float.max floor (measure va vb))
  | _ -> 0.5
