module Tree = Imprecise_xml.Tree
module Similarity = Imprecise_oracle.Similarity

type key_fn = Tree.t -> string option

type spec =
  | All_pairs
  | Key of { key : key_fn }
  | Qgram of { key : key_fn; q : int; threshold : float }
  | Sorted_neighbourhood of { key : key_fn; window : int }

let name = function
  | All_pairs -> "all"
  | Key _ -> "key"
  | Qgram _ -> "qgram"
  | Sorted_neighbourhood _ -> "sortedneighbourhood"

let describe = function
  | All_pairs -> "all (full grid)"
  | Key _ -> "key (exact normalized key)"
  | Qgram { q; threshold; _ } -> Fmt.str "qgram (q=%d, threshold=%.2f)" q threshold
  | Sorted_neighbourhood { window; _ } -> Fmt.str "sortedneighbourhood (window=%d)" window

(* A key that normalises to "" is treated as missing: an element the key
   function cannot describe must pair with everything (recall safety). *)
let non_empty s =
  let s = Similarity.normalize_key s in
  if s = "" then None else Some s

let text_key t =
  match Tree.name t with
  | None -> None
  | Some _ -> non_empty (Tree.text_content t)

let field_key field t = Option.bind (Tree.field t field) non_empty

let key_of_field = function None -> text_key | Some f -> field_key f

let key ?field () = Key { key = key_of_field field }

let qgram ?field ?(q = 2) ?(threshold = 0.3) () =
  if q < 1 then invalid_arg "Blocking.qgram: q must be >= 1";
  if threshold < 0. || threshold > 1. then
    invalid_arg "Blocking.qgram: threshold must be in [0, 1]";
  Qgram { key = key_of_field field; q; threshold }

let sorted_neighbourhood ?field ?(window = 7) () =
  if window < 1 then invalid_arg "Blocking.sorted_neighbourhood: window must be >= 1";
  Sorted_neighbourhood { key = key_of_field field; window }

let of_string ?field ?(q = 2) ?(threshold = 0.3) ?(window = 7) s =
  match String.lowercase_ascii s with
  | "all" | "allpairs" | "all-pairs" -> Ok All_pairs
  | "key" -> Ok (key ?field ())
  | "qgram" | "q-gram" -> (
      try Ok (qgram ?field ~q ~threshold ()) with Invalid_argument m -> Error m)
  | "sortedneighbourhood" | "sorted-neighbourhood" | "sorted" | "snm" -> (
      try Ok (sorted_neighbourhood ?field ~window ()) with Invalid_argument m -> Error m)
  | other ->
      Error
        (Fmt.str "unknown blocker %S; expected key, qgram, sortedneighbourhood or all"
           other)

(* ---- compiled plans ----------------------------------------------------------- *)

(* [rows.(i)] is the ascending list of right indices left child [i] may pair
   with; [None] means the full grid (the identity plan). Rows are built
   eagerly, before the candidate grid fans out across domains, and are
   immutable afterwards — [candidates] is a pure array read, safe to call
   from any band domain. *)
type plan = { rows : int list array option }

let identity = { rows = None }

let candidates { rows } = Option.map Array.get rows

(* Merge two ascending duplicate-free lists (tail-recursive: a row can span
   a 100k-element source). *)
let merge_sorted a b =
  let rec go acc a b =
    match a, b with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys ->
        if x < y then go (x :: acc) xs b
        else if y < x then go (y :: acc) a ys
        else go (x :: acc) xs ys
  in
  go [] a b

let extract_keys ~tick key elems = Array.map (fun t -> tick (); key t) elems

let missing_of keys =
  let out = ref [] in
  for j = Array.length keys - 1 downto 0 do
    if keys.(j) = None then out := j :: !out
  done;
  !out

let all_rights n = List.init n Fun.id

(* Share one row list per distinct left key: rows with the same key are the
   same list, so a plan over n rows with k distinct keys allocates k rows. *)
let rows_of_keys ~keys_l ~n_right ~row_of_key =
  let all = all_rights n_right in
  let memo = Hashtbl.create 64 in
  Array.map
    (function
      | None -> all
      | Some k -> (
          match Hashtbl.find_opt memo k with
          | Some row -> row
          | None ->
              let row = row_of_key k in
              Hashtbl.add memo k row;
              row))
    keys_l

let key_plan ~tick ~key ~left ~right =
  let keys_l = extract_keys ~tick key left in
  let keys_r = extract_keys ~tick key right in
  let n_right = Array.length right in
  let bucket : (string, int list) Hashtbl.t = Hashtbl.create 64 in
  for j = n_right - 1 downto 0 do
    match keys_r.(j) with
    | None -> ()
    | Some k ->
        Hashtbl.replace bucket k (j :: Option.value ~default:[] (Hashtbl.find_opt bucket k))
  done;
  let missing_r = missing_of keys_r in
  let row_of_key k =
    merge_sorted (Option.value ~default:[] (Hashtbl.find_opt bucket k)) missing_r
  in
  { rows = Some (rows_of_keys ~keys_l ~n_right ~row_of_key) }

let qgram_plan ~tick ~key ~q ~threshold ~left ~right =
  let keys_l = extract_keys ~tick key left in
  let keys_r = extract_keys ~tick key right in
  let n_right = Array.length right in
  (* index only the keyed rights; [keyed_idx] maps index positions back to
     right indices (both ascending, so query results map back in order) *)
  let keyed = ref [] in
  for j = n_right - 1 downto 0 do
    match keys_r.(j) with None -> () | Some k -> keyed := (j, k) :: !keyed
  done;
  let keyed_idx = Array.of_list (List.map fst !keyed) in
  let keyed_keys = Array.of_list (List.map snd !keyed) in
  let index = Similarity.Qgram_index.build ~q ~tick keyed_keys in
  let missing_r = missing_of keys_r in
  let row_of_key k =
    let hits = Similarity.Qgram_index.query ~tick index ~threshold k in
    merge_sorted (List.map (fun p -> keyed_idx.(p)) hits) missing_r
  in
  { rows = Some (rows_of_keys ~keys_l ~n_right ~row_of_key) }

(* Sorted neighbourhood: both sides' keyed records are sorted together by
   key; a left record is a candidate for the rights within [window]
   positions of it in that order, and — window or not — for every right
   sharing its exact key (duplicate runs longer than the window must never
   lose their pairs: that is the recall guarantee). *)
let sorted_neighbourhood_plan ~tick ~key ~window ~left ~right =
  let keys_l = extract_keys ~tick key left in
  let keys_r = extract_keys ~tick key right in
  let n_right = Array.length right in
  let entries = ref [] in
  Array.iteri
    (fun j -> function None -> () | Some k -> entries := (k, 1, j) :: !entries)
    keys_r;
  Array.iteri
    (fun i -> function None -> () | Some k -> entries := (k, 0, i) :: !entries)
    keys_l;
  let arr =
    Array.of_list
      (List.sort
         (fun (ka, sa, ia) (kb, sb, ib) ->
           match String.compare ka kb with
           | 0 -> ( match Int.compare sa sb with 0 -> Int.compare ia ib | c -> c)
           | c -> c)
         !entries)
  in
  let len = Array.length arr in
  let missing_r = missing_of keys_r in
  let all = all_rights n_right in
  let rows = Array.map (fun _ -> all) keys_l in
  let module IS = Set.Make (Int) in
  let key_at p = let k, _, _ = arr.(p) in k in
  Array.iteri
    (fun p (k, side, i) ->
      if side = 0 then begin
        tick ();
        let set = ref IS.empty in
        let add p' =
          let _, side', j = arr.(p') in
          if side' = 1 then set := IS.add j !set
        in
        for p' = max 0 (p - window + 1) to min (len - 1) (p + window - 1) do
          if p' <> p then add p'
        done;
        (* the full equal-key run, even beyond the window *)
        let p' = ref (p - 1) in
        while !p' >= 0 && String.equal (key_at !p') k do
          add !p';
          decr p'
        done;
        p' := p + 1;
        while !p' < len && String.equal (key_at !p') k do
          add !p';
          incr p'
        done;
        rows.(i) <- merge_sorted (IS.elements !set) missing_r
      end)
    arr;
  { rows = Some rows }

let plan ?(tick = ignore) spec ~left ~right =
  match spec with
  | All_pairs -> identity
  | Key { key } -> key_plan ~tick ~key ~left ~right
  | Qgram { key; q; threshold } ->
      if threshold <= 0. then identity
      else qgram_plan ~tick ~key ~q ~threshold ~left ~right
  | Sorted_neighbourhood { key; window } ->
      sorted_neighbourhood_plan ~tick ~key ~window ~left ~right
