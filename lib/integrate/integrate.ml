module Xml = Imprecise_xml
module Pxml = Imprecise_pxml
module Oracle = Imprecise_oracle
module Obs = Imprecise_obs.Obs

module Tree = Xml.Tree
module O = Oracle.Oracle
module P = Pxml.Pxml
module Budget = Imprecise_resilience.Budget

(* Registered at load time so the catalogue is complete even in runs that
   never integrate (metric names: doc/observability.md). *)
let c_runs = Obs.Metrics.counter "integrate.runs"

let c_par_runs = Obs.Metrics.counter "integrate.parallel_runs"

let c_pairs = Obs.Metrics.counter "integrate.pairs_compared"

let c_generated = Obs.Metrics.counter "integrate.pairs_generated"

let c_blocked = Obs.Metrics.counter "integrate.pairs_blocked"

(* Per-blocker pruning counters, one per preset so the catalogue is stable;
   "all" never blocks and stays 0. *)
let blocker_counters =
  List.map
    (fun n -> (n, Obs.Metrics.counter ("integrate.blocked." ^ n)))
    [ "all"; "key"; "qgram"; "sortedneighbourhood" ]

let c_blocked_by name =
  match List.assoc_opt name blocker_counters with
  | Some c -> c
  | None -> Obs.Metrics.counter ("integrate.blocked." ^ name)

let c_unsure = Obs.Metrics.counter "integrate.unsure_pairs"

let c_same = Obs.Metrics.counter "integrate.same_pairs"

let c_clusters = Obs.Metrics.counter "integrate.clusters"

let h_matchings = Obs.Metrics.histogram "integrate.cluster_matchings"

let h_nodes = Obs.Metrics.histogram "integrate.nodes_produced"

let h_worlds = Obs.Metrics.histogram "integrate.worlds_produced"

type config = {
  oracle : O.t;
  dtd : Xml.Dtd.t;
  factorize : bool;
  value_conflict : Tree.t -> Tree.t -> float;
  reconcile : string -> string -> string -> string option;
  block : Tree.t -> string option;
  blocker : Blocking.spec;
  max_possibilities : int;
  max_matchings : int;
  jobs : int;
  decisions : Oracle.Decision_cache.t option;
  budget : Budget.t option;
}

let config ~oracle ?(dtd = Xml.Dtd.empty) ?(factorize = false)
    ?(value_conflict = fun _ _ -> 0.5) ?(reconcile = fun _ _ _ -> None)
    ?(block = fun _ -> None) ?(blocker = Blocking.All_pairs)
    ?(max_possibilities = 1_000_000) ?(max_matchings = 1_000_000) ?(jobs = 1)
    ?decisions ?budget () =
  if jobs < 1 then invalid_arg "Integrate.config: jobs must be >= 1";
  {
    oracle;
    dtd;
    factorize;
    value_conflict;
    reconcile;
    block;
    blocker;
    max_possibilities;
    max_matchings;
    jobs;
    decisions;
    budget;
  }

type error =
  | Root_mismatch of string * string
  | Mixed_content of string
  | Too_large of int
  | Oracle_conflict of string
  | Infeasible of string
  | Budget_exceeded of string

let pp_error ppf = function
  | Root_mismatch (a, b) -> Fmt.pf ppf "root elements differ: <%s> vs <%s>" a b
  | Mixed_content tag -> Fmt.pf ppf "<%s> mixes text and element children" tag
  | Too_large n -> Fmt.pf ppf "more than %d possibilities; use stats or factorize" n
  | Oracle_conflict msg -> Fmt.pf ppf "oracle conflict: %s" msg
  | Infeasible msg -> Fmt.pf ppf "infeasible integration: %s" msg
  | Budget_exceeded reason -> Fmt.pf ppf "budget exceeded (%s); raise --timeout-ms/--max-worlds" reason

type trace = {
  mutable unsure_pairs : int;
  mutable same_pairs : int;
  mutable cluster_count : int;
  mutable largest_enumeration : int;
  mutable pairs_generated : int;
  mutable pairs_compared : int;
  mutable pairs_blocked : int;
}

let new_trace () =
  {
    unsure_pairs = 0;
    same_pairs = 0;
    cluster_count = 0;
    largest_enumeration = 0;
    pairs_generated = 0;
    pairs_compared = 0;
    pairs_blocked = 0;
  }

type summary = { nodes : float; worlds : float; trace : trace }

exception Run_error of error

(* The integration recursion is written once against this representation
   signature; instantiating it with probabilistic-tree constructors gives
   the materialising integrator, instantiating it with size arithmetic gives
   the analytic estimator. [joint] combines the possibility lists of
   independent clusters into one probability node (the cross product). *)
module type REP = sig
  type node

  type dist

  val text : string -> node

  val elem : string -> (string * string) list -> dist list -> node

  val dist : (float * node list) list -> dist

  val joint : limit:int -> (float * node list) list list -> dist
end

module Engine (R : REP) = struct
  let rec embed (t : Tree.t) : R.node =
    match t with
    | Tree.Text s -> R.text s
    | Tree.Element (tag, attrs, []) -> R.elem tag attrs []
    | Tree.Element (tag, attrs, children) ->
        R.elem tag attrs [ R.dist [ (1., List.map embed children) ] ]

  let non_ws_text t =
    match t with
    | Tree.Text s -> Tree.normalize_space s <> ""
    | Tree.Element _ -> false

  (* Split an element's children into meaningful text and elements; reject
     mixed content. *)
  let split_children tag t =
    let children = Tree.children t in
    let texts = List.filter non_ws_text children in
    let elems = List.filter Tree.is_element children in
    if texts <> [] && elems <> [] then raise (Run_error (Mixed_content tag));
    let text =
      Tree.normalize_space (String.concat " " (List.map Tree.text_content texts))
    in
    (text, elems)

  (* Cross product of weighted alternatives, concatenating payloads in
     order. *)
  let rec cross (lists : (float * 'a list) list list) : (float * 'a list) list =
    match lists with
    | [] -> [ (1., []) ]
    | alts :: rest ->
        let tails = cross rest in
        List.concat_map
          (fun (w, xs) -> List.map (fun (v, ys) -> (w *. v, xs @ ys)) tails)
          alts

  let rec merge cfg trace (a : Tree.t) (b : Tree.t) : (float * R.node) list =
    let tag = Tree.tag a in
    let wl = cfg.value_conflict a b in
    let wr = 1. -. wl in
    match merge_content cfg trace tag a b with
    | None ->
        (* Structural conflict (one side text, other elements): keep the two
           variants as alternatives. *)
        [ (wl, embed a); (wr, embed b) ]
    | Some content ->
        let attrs_a = Tree.attributes a and attrs_b = Tree.attributes b in
        let union favour other =
          favour @ List.filter (fun (k, _) -> not (List.mem_assoc k favour)) other
        in
        let conflicting =
          List.exists
            (fun (k, v) ->
              match List.assoc_opt k attrs_b with
              | Some v' -> v <> v'
              | None -> false)
            attrs_a
        in
        if conflicting then
          [
            (wl, R.elem tag (union attrs_a attrs_b) content);
            (wr, R.elem tag (union attrs_b attrs_a) content);
          ]
        else [ (1., R.elem tag (union attrs_a attrs_b) content) ]

  (* [None] when the two elements cannot be merged structurally. *)
  and merge_content cfg trace tag a b : R.dist list option =
    let text_a, elems_a = split_children tag a in
    let text_b, elems_b = split_children tag b in
    match (text_a, elems_a), (text_b, elems_b) with
    | ("", []), ("", []) -> Some []
    | (ta, []), (tb, []) when ta <> "" && tb <> "" ->
        if String.equal ta tb then Some [ R.dist [ (1., [ R.text ta ]) ] ]
        else (
          match cfg.reconcile tag ta tb with
          | Some v -> Some [ R.dist [ (1., [ R.text v ]) ] ]
          | None ->
              let wl = cfg.value_conflict a b in
              Some [ R.dist [ (wl, [ R.text ta ]); (1. -. wl, [ R.text tb ]) ] ])
    | (ta, []), ("", []) when ta <> "" -> Some [ R.dist [ (1., [ R.text ta ]) ] ]
    | ("", []), (tb, []) when tb <> "" -> Some [ R.dist [ (1., [ R.text tb ]) ] ]
    | ("", ea), ("", eb) -> Some (merge_element_children cfg trace tag ea eb)
    | _ -> None

  and merge_element_children cfg trace tag ea eb : R.dist list =
    (* 1. Reconcile child tags the DTD caps at one occurrence. *)
    let child_tags l = List.filter_map Tree.name l in
    let seen = Hashtbl.create 8 in
    let tags_in_order =
      List.filter
        (fun t ->
          if Hashtbl.mem seen t then false
          else begin
            Hashtbl.add seen t ();
            true
          end)
        (child_tags ea @ child_tags eb)
    in
    let is_special t =
      Xml.Dtd.max_one cfg.dtd ~parent:tag ~child:t
      && List.length (List.filter (fun c -> Tree.name c = Some t) ea) <= 1
      && List.length (List.filter (fun c -> Tree.name c = Some t) eb) <= 1
    in
    let special_tags = List.filter is_special tags_in_order in
    let special_dists =
      Obs.Trace.with_span "reconcile" @@ fun () ->
      List.filter_map
        (fun t ->
          let ca = List.find_opt (fun c -> Tree.name c = Some t) ea in
          let cb = List.find_opt (fun c -> Tree.name c = Some t) eb in
          match ca, cb with
          | None, None -> None
          | Some c, None | None, Some c -> Some (R.dist [ (1., [ embed c ]) ])
          | Some ca, Some cb ->
              if Tree.deep_equal ca cb then Some (R.dist [ (1., [ embed ca ]) ])
              else
                let alts = merge cfg trace ca cb in
                Some (R.dist (List.map (fun (w, n) -> (w, [ n ])) alts)))
        special_tags
    in
    let general l =
      List.filter
        (fun c -> match Tree.name c with Some t -> not (is_special t) | None -> false)
        l
    in
    let ga = Array.of_list (general ea) and gb = Array.of_list (general eb) in
    (* 2. Candidate graph over the general pool. Block keys are computed
       once per child; pairs in different blocks never reach the Oracle —
       the standard entity-resolution blocking optimisation (sound only if
       the blocking function is, which is the caller's promise). *)
    let blocks_a = Array.map cfg.block ga and blocks_b = Array.map cfg.block gb in
    (* The outcome function is called from [cfg.jobs] domains at once, so it
       must not touch [trace] or bump counters one by one: each domain keeps
       a private tally, and the merged totals are folded in below — exact
       counts with no cross-domain mutation. The only shared state it
       reaches is the decision cache, which synchronises internally. *)
    let outcome i j =
      let x = ga.(i) and y = gb.(j) in
      if Tree.name x <> Tree.name y then Matching.Verdict O.Different
      else if
        match blocks_a.(i), blocks_b.(j) with
        | Some ka, Some kb -> not (String.equal ka kb)
        | _ -> false
      then Matching.Blocked
      else
        let v =
          try
            match cfg.decisions with
            | Some cache -> Oracle.Decision_cache.decide cache cfg.oracle x y
            | None -> O.decide cfg.oracle x y
          with O.Conflict msg -> raise (Run_error (Oracle_conflict msg))
        in
        Matching.Verdict v
    in
    (* 3. Compile the blocker's candidate plan — the pluggable stage in
       front of the grid. The plan is built here, before any domain fans
       out, and is immutable afterwards; index construction ticks the same
       budget as grid cells. *)
    let plan =
      match cfg.blocker with
      | Blocking.All_pairs -> None
      | spec ->
          Obs.Trace.with_span "block" (fun () ->
              Blocking.candidates
                (Blocking.plan
                   ~tick:(fun () -> Option.iter Budget.tick cfg.budget)
                   spec ~left:ga ~right:gb))
    in
    let graph, tally =
      Obs.Trace.with_span "match" (fun () ->
          Matching.graph_of_outcomes ?budget:cfg.budget ?candidates:plan
            ~jobs:cfg.jobs ~n_left:(Array.length ga) ~n_right:(Array.length gb)
            outcome)
    in
    trace.pairs_generated <- trace.pairs_generated + tally.Matching.generated;
    trace.pairs_compared <- trace.pairs_compared + tally.Matching.pairs;
    trace.pairs_blocked <- trace.pairs_blocked + tally.Matching.blocked;
    trace.same_pairs <- trace.same_pairs + tally.Matching.same;
    trace.unsure_pairs <- trace.unsure_pairs + tally.Matching.unsure;
    Obs.Metrics.incr ~by:tally.Matching.generated c_generated;
    Obs.Metrics.incr ~by:tally.Matching.pairs c_pairs;
    Obs.Metrics.incr ~by:tally.Matching.blocked c_blocked;
    Obs.Metrics.incr ~by:tally.Matching.same c_same;
    Obs.Metrics.incr ~by:tally.Matching.unsure c_unsure;
    let index_blocked = tally.Matching.generated - tally.Matching.pairs in
    if index_blocked > 0 then begin
      Obs.Metrics.incr ~by:index_blocked (c_blocked_by (Blocking.name cfg.blocker));
      Obs.Event.emit
        ~fields:
          [
            ("blocker", Obs.Json.String (Blocking.name cfg.blocker));
            ("generated", Obs.Json.Int tally.Matching.generated);
            ("compared", Obs.Json.Int tally.Matching.pairs);
            ("blocked", Obs.Json.Int index_blocked);
          ]
        "integrate.block"
    end;
    let iso_left, iso_right = Matching.isolated graph in
    let certain_dist =
      match List.map (fun i -> embed ga.(i)) iso_left
            @ List.map (fun j -> embed gb.(j)) iso_right
      with
      | [] -> []
      | nodes -> [ R.dist [ (1., nodes) ] ]
    in
    let clusters = Matching.clusters graph in
    trace.cluster_count <- trace.cluster_count + List.length clusters;
    Obs.Metrics.incr ~by:(List.length clusters) c_clusters;
    let merged_memo = Hashtbl.create 16 in
    let merged i j =
      match Hashtbl.find_opt merged_memo (i, j) with
      | Some alts -> alts
      | None ->
          let alts = merge cfg trace ga.(i) gb.(j) in
          Hashtbl.add merged_memo (i, j) alts;
          alts
    in
    let embed_left = lazy (Array.map embed ga) and embed_right = lazy (Array.map embed gb) in
    let cluster_possibilities (c : Matching.cluster) : (float * R.node list) list =
      let ms =
        Obs.Trace.with_span "enumerate" (fun () ->
            try Matching.matchings ~limit:cfg.max_matchings c with
            | Matching.Too_many n -> raise (Run_error (Too_large n))
            | Matching.Infeasible msg -> raise (Run_error (Infeasible msg)))
      in
      trace.largest_enumeration <- max trace.largest_enumeration (List.length ms);
      Obs.Metrics.observe h_matchings (float_of_int (List.length ms));
      List.concat_map
        (fun (p, pairs) ->
          let entries =
            List.map
              (fun i ->
                match List.assoc_opt i pairs with
                | Some j -> merged i j
                | None -> [ (1., (Lazy.force embed_left).(i)) ])
              c.Matching.lefts
            @ List.filter_map
                (fun j ->
                  if List.exists (fun (_, j') -> j' = j) pairs then None
                  else Some [ (1., (Lazy.force embed_right).(j)) ])
                c.Matching.rights
          in
          let combos = cross (List.map (List.map (fun (w, n) -> (w, [ n ]))) entries) in
          List.map (fun (w, nodes) -> (p *. w, nodes)) combos)
        ms
    in
    let cluster_dists =
      match clusters with
      | [] -> []
      | clusters ->
          Obs.Trace.with_span "merge" (fun () ->
              let possibilities = List.map cluster_possibilities clusters in
              if cfg.factorize then List.map R.dist possibilities
              else [ R.joint ~limit:cfg.max_possibilities possibilities ])
    in
    special_dists @ certain_dist @ cluster_dists

  let run cfg trace (a : Tree.t) (b : Tree.t) : R.dist =
    match Tree.name a, Tree.name b with
    | Some ta, Some tb when ta <> tb -> raise (Run_error (Root_mismatch (ta, tb)))
    | None, _ | _, None -> raise (Run_error (Root_mismatch ("#text", "#text")))
    | Some _, Some _ ->
        let alts = merge cfg trace a b in
        R.dist (List.map (fun (w, n) -> (w, [ n ])) alts)
end

module Materialize_rep = struct
  type node = P.node

  type dist = P.dist

  let text s = P.Text s

  let elem tag attrs content = P.Elem (tag, attrs, content)

  let dist possibilities =
    P.dist (List.map (fun (w, nodes) -> P.choice ~prob:w nodes) possibilities)

  let joint ~limit (clusters : (float * node list) list list) =
    let total =
      List.fold_left (fun acc ps -> acc * List.length ps) 1 clusters
    in
    if total > limit || total < 0 then raise (Run_error (Too_large limit));
    let rec go = function
      | [] -> [ (1., []) ]
      | ps :: rest ->
          let tails = go rest in
          List.concat_map
            (fun (w, nodes) ->
              List.map (fun (v, more) -> (w *. v, nodes @ more)) tails)
            ps
    in
    dist (go clusters)
end

module Count_rep = struct
  (* [nodes] mirrors Pxml.node_count, [worlds] mirrors Pxml.world_count. *)
  type node = { nodes : float; worlds : float }

  type dist = node

  let text _ = { nodes = 1.; worlds = 1. }

  let elem _ _ content =
    List.fold_left
      (fun acc d -> { nodes = acc.nodes +. d.nodes; worlds = acc.worlds *. d.worlds })
      { nodes = 1.; worlds = 1. }
      content

  let possibility_measure nodes_list =
    List.fold_left
      (fun acc n -> { nodes = acc.nodes +. n.nodes; worlds = acc.worlds *. n.worlds })
      { nodes = 1. (* the possibility node itself *); worlds = 1. }
      nodes_list

  let dist possibilities =
    List.fold_left
      (fun acc (_, nodes_list) ->
        let m = possibility_measure nodes_list in
        { nodes = acc.nodes +. m.nodes; worlds = acc.worlds +. m.worlds })
      { nodes = 1. (* the probability node itself *); worlds = 0. }
      possibilities

  let joint ~limit:_ (clusters : (float * node list) list list) =
    (* One probability node holding the cross product of the clusters'
       possibility lists, sized without expanding it. With m_c possibilities
       of total payload T_c and world sum W_c per cluster:
       possibilities P = ∏ m_c, payload Σ = Σ_c T_c·(P/m_c), worlds = ∏ W_c. *)
    let summaries =
      List.map
        (fun ps ->
          let m = float_of_int (List.length ps) in
          let t, w =
            List.fold_left
              (fun (t, w) (_, nodes_list) ->
                let payload =
                  List.fold_left (fun acc n -> acc +. n.nodes) 0. nodes_list
                in
                let worlds =
                  List.fold_left (fun acc n -> acc *. n.worlds) 1. nodes_list
                in
                (t +. payload, w +. worlds))
              (0., 0.) ps
          in
          (m, t, w))
        clusters
    in
    let p = List.fold_left (fun acc (m, _, _) -> acc *. m) 1. summaries in
    let payload =
      List.fold_left (fun acc (m, t, _) -> acc +. (t *. (p /. m))) 0. summaries
    in
    let worlds = List.fold_left (fun acc (_, _, w) -> acc *. w) 1. summaries in
    { nodes = 1. +. p +. payload; worlds }
end

module Materializer = Engine (Materialize_rep)
module Counter = Engine (Count_rep)

let run_catching f =
  try Ok (f ()) with
  | Run_error e -> Error e
  | Matching.Infeasible msg -> Error (Infeasible msg)
  | O.Conflict msg -> Error (Oracle_conflict msg)
  | Budget.Exceeded reason -> Error (Budget_exceeded (Budget.reason_to_string reason))

(* [run_catching] turns failures into [Error], so a flight record would
   read "ok" for a failed integration; [recorded] re-surfaces the error as
   the record's outcome and notes the trace tallies on success. The span
   wraps the recorder so the finished record carries the op's own
   trace/span ids (the recorder reads them at finish time). *)
let recorded ~op f =
  Obs.Trace.with_span op @@ fun () ->
  Obs.Recorder.run ~op @@ fun () ->
  let result = f () in
  (match result with
  | Error e -> Obs.Recorder.outcome (Fmt.str "error:%a" pp_error e)
  | Ok _ -> ());
  result

let note_trace trace =
  Obs.Recorder.note "pairs_generated" (Obs.Json.Int trace.pairs_generated);
  Obs.Recorder.note "pairs_compared" (Obs.Json.Int trace.pairs_compared);
  Obs.Recorder.note "clusters" (Obs.Json.Int trace.cluster_count)

let integrate_traced cfg a b =
  Obs.Metrics.incr c_runs;
  if cfg.jobs > 1 then Obs.Metrics.incr c_par_runs;
  let trace = new_trace () in
  recorded ~op:"integrate" @@ fun () ->
  run_catching (fun () ->
      let doc = Materializer.run cfg trace a b in
      Obs.Metrics.observe h_nodes (float_of_int (P.node_count doc));
      Obs.Metrics.observe h_worlds (P.world_count doc);
      note_trace trace;
      (doc, trace))

let integrate cfg a b = Result.map fst (integrate_traced cfg a b)

let stats cfg a b =
  Obs.Metrics.incr c_runs;
  let trace = new_trace () in
  recorded ~op:"integrate.stats" @@ fun () ->
  run_catching (fun () ->
      let m = Counter.run cfg trace a b in
      Obs.Metrics.observe h_nodes m.Count_rep.nodes;
      Obs.Metrics.observe h_worlds m.Count_rep.worlds;
      note_trace trace;
      { nodes = m.Count_rep.nodes; worlds = m.Count_rep.worlds; trace })

let integrate_incremental cfg ?(world_limit = 1000.) doc source =
  let combos = P.world_count doc in
  if combos > world_limit then Error (Too_large (int_of_float world_limit))
  else begin
    Obs.Metrics.incr c_runs;
    let trace = new_trace () in
    recorded ~op:"integrate.incremental" @@ fun () ->
    run_catching (fun () ->
        let choices =
          List.concat_map
            (fun (p, forest) ->
              match forest with
              | [ world_root ] ->
                  let merged = Materializer.run cfg trace world_root source in
                  List.map
                    (fun (c : P.choice) -> { c with P.prob = p *. c.prob })
                    merged.P.choices
              | _ ->
                  raise
                    (Run_error
                       (Root_mismatch
                          ("#forest", Option.value ~default:"#text" (Tree.name source)))))
            (Imprecise_pxml.Worlds.merged ?budget:cfg.budget doc)
        in
        Imprecise_pxml.Compact.compact (P.dist choices))
  end
