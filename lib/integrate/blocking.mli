(** Pluggable entity-resolution blocking (doc/integrate.md has the
    catalogue).

    A blocker runs in front of {!Matching.graph_of_outcomes}: from the two
    child arrays it compiles a {e plan} — per left child, the ascending list
    of right children worth comparing — and only those cells of the
    candidate grid reach the Oracle. The pairs a blocker skips are exactly
    the pairs its strategy deems implausible; soundness ("a skipped pair
    would have been [Different] anyway") is relative to the Oracle in use
    and is the caller's contract, certified for the shipped presets by
    [test/test_blocking.ml] (`dune build @block-stress`).

    Every blocker is {e recall-safe by construction} in one respect:
    children whose key function returns [None] (or a key that normalises to
    the empty string) are never blocked — they pair with everything, on
    both sides. *)

(** Extracts the blocking key of one child element; [None] (and keys that
    normalise to [""]) mean "unknown — compare against everything". Must be
    pure: plans are built once and read from many domains. *)
type key_fn = Imprecise_xml.Tree.t -> string option

type spec =
  | All_pairs  (** identity baseline: every pair reaches the Oracle *)
  | Key of { key : key_fn }
      (** exact match on {!Imprecise_oracle.Similarity.normalize_key}ed
          keys: a pair survives iff the keys are equal (or either is
          missing) *)
  | Qgram of { key : key_fn; q : int; threshold : float }
      (** a pair survives iff the keys' q-gram Jaccard similarity is
          [>= threshold] (or either key is missing), found through an
          inverted {!Imprecise_oracle.Similarity.Qgram_index}. Equal keys
          have similarity 1, so any [threshold <= 1] keeps them. *)
  | Sorted_neighbourhood of { key : key_fn; window : int }
      (** both sides' keyed children are sorted together by key; a pair
          survives iff the two records fall within [window] positions of
          each other in that order, {e or} share the exact key (duplicate
          runs longer than the window never lose their pairs), or either
          key is missing. *)

(** CLI names: ["all"], ["key"], ["qgram"], ["sortedneighbourhood"]. These
    are also the [integrate.blocked.<name>] counter suffixes. *)
val name : spec -> string

(** Human-readable form with the parameters, for reports and benches. *)
val describe : spec -> string

(** Key on the element's whole normalised text content. *)
val text_key : key_fn

(** [field_key f] keys on the normalised text of child field [f] (as
    {!Imprecise_xml.Tree.field}). *)
val field_key : string -> key_fn

(** Smart constructors; [field] picks {!field_key}, default {!text_key}.
    Defaults: [q = 2], [threshold = 0.3], [window = 7]. They raise
    [Invalid_argument] on [q < 1], [threshold] outside [0, 1] (a threshold
    above 1 would block even identical keys), or [window < 1]. *)

val key : ?field:string -> unit -> spec

val qgram : ?field:string -> ?q:int -> ?threshold:float -> unit -> spec

val sorted_neighbourhood : ?field:string -> ?window:int -> unit -> spec

(** [of_string name] parses a CLI blocker name
    ([key|qgram|sortedneighbourhood|all], plus a few aliases), applying the
    optional parameters to the blockers that use them. *)
val of_string :
  ?field:string ->
  ?q:int ->
  ?threshold:float ->
  ?window:int ->
  string ->
  (spec, string) result

(** A compiled plan for one candidate grid. Built eagerly — key extraction,
    index construction and all candidate rows happen inside {!plan} — and
    immutable afterwards, so {!candidates} may be called concurrently from
    every band domain of the parallel grid. *)
type plan

(** [plan ?tick spec ~left ~right] compiles [spec] against one child-array
    pair. [tick] (default: no-op) is called once per key extracted and once
    per index posting touched — pass the integration budget's tick so plan
    construction counts against the deadline / work pool. *)
val plan :
  ?tick:(unit -> unit) ->
  spec ->
  left:Imprecise_xml.Tree.t array ->
  right:Imprecise_xml.Tree.t array ->
  plan

(** [candidates p] is [None] for the identity plan (full grid), or
    [Some f] where [f i] is the ascending, duplicate-free list of right
    indices left child [i] may pair with. Ascending order matters: it
    preserves the row-major edge order, which keeps any [jobs] value
    bit-identical to sequential evaluation. *)
val candidates : plan -> (int -> int list) option
