module Oracle = Imprecise_oracle.Oracle
module Budget = Imprecise_resilience.Budget

type edge = { left : int; right : int; prob : float }

type graph = { n_left : int; n_right : int; edges : edge list }

type cluster = { lefts : int list; rights : int list; cluster_edges : edge list }

exception Too_many of int

exception Infeasible of string

let forced_threshold = 1. -. 1e-9

module IS = Set.Make (Int)

let clusters g =
  (* Union-find over vertices encoded as [left i = 2i], [right j = 2j+1]. *)
  let size = (2 * max g.n_left g.n_right) + 2 in
  let parent = Array.init size (fun i -> i) in
  let rec find i = if parent.(i) = i then i else begin parent.(i) <- find parent.(i); parent.(i) end in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter (fun e -> union (2 * e.left) ((2 * e.right) + 1)) g.edges;
  let by_root = Hashtbl.create 8 in
  let touch v =
    let r = find v in
    if not (Hashtbl.mem by_root r) then
      Hashtbl.add by_root r { lefts = []; rights = []; cluster_edges = [] }
  in
  List.iter
    (fun e ->
      touch (2 * e.left);
      touch ((2 * e.right) + 1))
    g.edges;
  let lefts_seen = ref IS.empty and rights_seen = ref IS.empty in
  List.iter
    (fun e ->
      lefts_seen := IS.add e.left !lefts_seen;
      rights_seen := IS.add e.right !rights_seen)
    g.edges;
  IS.iter
    (fun i ->
      let r = find (2 * i) in
      let c = Hashtbl.find by_root r in
      Hashtbl.replace by_root r { c with lefts = i :: c.lefts })
    !lefts_seen;
  IS.iter
    (fun j ->
      let r = find ((2 * j) + 1) in
      let c = Hashtbl.find by_root r in
      Hashtbl.replace by_root r { c with rights = j :: c.rights })
    !rights_seen;
  List.iter
    (fun e ->
      let r = find (2 * e.left) in
      let c = Hashtbl.find by_root r in
      Hashtbl.replace by_root r { c with cluster_edges = e :: c.cluster_edges })
    g.edges;
  Hashtbl.fold (fun _ c acc -> c :: acc) by_root []
  |> List.map (fun c ->
         {
           lefts = List.sort Int.compare c.lefts;
           rights = List.sort Int.compare c.rights;
           cluster_edges = List.rev c.cluster_edges;
         })
  |> List.sort (fun a b ->
         match a.lefts, b.lefts with
         | x :: _, y :: _ -> Int.compare x y
         | [], _ -> 1
         | _, [] -> -1)

let isolated g =
  let lefts_seen =
    List.fold_left (fun s e -> IS.add e.left s) IS.empty g.edges
  and rights_seen =
    List.fold_left (fun s e -> IS.add e.right s) IS.empty g.edges
  in
  let range n seen =
    List.filter (fun i -> not (IS.mem i seen)) (List.init n (fun i -> i))
  in
  (range g.n_left lefts_seen, range g.n_right rights_seen)

(* Enumerate matchings of one cluster by deciding the lefts in order: each
   left stays unmatched or takes one free right neighbour. Forced edges
   (probability ≥ forced_threshold) prune the search: a left with a forced
   edge must take it, and a right wanted by a forced edge is unavailable to
   other lefts. *)
let enumerate ?(limit = max_int) cluster k =
  let forced_of_left = Hashtbl.create 4 and forced_of_right = Hashtbl.create 4 in
  List.iter
    (fun e ->
      if e.prob >= forced_threshold then begin
        if Hashtbl.mem forced_of_left e.left then
          raise (Infeasible "two forced matches for one element");
        if Hashtbl.mem forced_of_right e.right then
          raise (Infeasible "two forced matches for one element");
        Hashtbl.add forced_of_left e.left e.right;
        Hashtbl.add forced_of_right e.right e.left
      end)
    cluster.cluster_edges;
  let neighbours =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl e.left) in
        Hashtbl.replace tbl e.left (prev @ [ e ]))
      cluster.cluster_edges;
    tbl
  in
  let count = ref 0 in
  let weight pairs =
    List.fold_left
      (fun w e ->
        if List.exists (fun (l, r) -> l = e.left && r = e.right) pairs then w *. e.prob
        else w *. (1. -. e.prob))
      1. cluster.cluster_edges
  in
  let rec go lefts used pairs =
    match lefts with
    | [] ->
        let w = weight (List.rev pairs) in
        if w > 0. then begin
          incr count;
          if !count > limit then raise (Too_many !count);
          k (w, List.rev pairs)
        end
    | l :: rest ->
        let forced = Hashtbl.find_opt forced_of_left l in
        (match forced with
        | Some _ -> () (* a forced left may not stay unmatched *)
        | None -> go rest used pairs);
        List.iter
          (fun e ->
            let right_reserved =
              match Hashtbl.find_opt forced_of_right e.right with
              | Some fl -> fl <> l
              | None -> false
            in
            let allowed =
              (match forced with Some fr -> fr = e.right | None -> true)
              && (not right_reserved)
              && not (IS.mem e.right used)
            in
            if allowed then go rest (IS.add e.right used) ((l, e.right) :: pairs))
          (Option.value ~default:[] (Hashtbl.find_opt neighbours l))
  in
  go cluster.lefts IS.empty [];
  !count

let matchings ?limit cluster =
  let acc = ref [] in
  let n = enumerate ?limit cluster (fun m -> acc := m :: !acc) in
  if n = 0 then raise (Infeasible "no matching has positive probability");
  let results = List.rev !acc in
  let total = List.fold_left (fun s (w, _) -> s +. w) 0. results in
  if total <= 0. then raise (Infeasible "zero total matching probability");
  List.map (fun (w, pairs) -> (w /. total, pairs)) results

let count_matchings cluster = enumerate cluster (fun _ -> ())

let clamp_prob p = Float.max 1e-9 (Float.min (1. -. 1e-9) p)

type outcome = Verdict of Oracle.verdict | Blocked

type tally = {
  generated : int;
  pairs : int;
  blocked : int;
  same : int;
  unsure : int;
}

let empty_tally = { generated = 0; pairs = 0; blocked = 0; same = 0; unsure = 0 }

let add_tally a b =
  {
    generated = a.generated + b.generated;
    pairs = a.pairs + b.pairs;
    blocked = a.blocked + b.blocked;
    same = a.same + b.same;
    unsure = a.unsure + b.unsure;
  }

(* One contiguous band of rows, evaluated sequentially in row-major order.
   Returns the band's edges (in that order) and its private tally — no
   shared mutable state, so bands can run on separate domains. With
   [candidates], only the listed cells of each row are evaluated; the rest
   are counted as blocked without being visited (that skip, not a cheaper
   per-cell check, is what makes 100k-row grids tractable). Candidate rows
   must be ascending so the edge order stays row-major. *)
let eval_band ?budget ?candidates ~lo ~hi ~n_right outcome =
  let edges = ref [] in
  let generated = ref 0 in
  let pairs = ref 0 and blocked = ref 0 and same = ref 0 and unsure = ref 0 in
  let eval i j =
    Option.iter Budget.tick budget;
    incr pairs;
    match outcome i j with
    | Blocked -> incr blocked
    | Verdict Oracle.Same ->
        incr same;
        edges := { left = i; right = j; prob = 1. } :: !edges
    | Verdict Oracle.Different -> ()
    | Verdict (Oracle.Unsure p) ->
        incr unsure;
        if p > 0. then edges := { left = i; right = j; prob = clamp_prob p } :: !edges
  in
  for i = lo to hi - 1 do
    generated := !generated + n_right;
    match candidates with
    | None -> for j = 0 to n_right - 1 do eval i j done
    | Some row ->
        let js : int list = row i in
        blocked := !blocked + (n_right - List.length js);
        List.iter (fun j -> eval i j) js
  done;
  ( List.rev !edges,
    {
      generated = !generated;
      pairs = !pairs;
      blocked = !blocked;
      same = !same;
      unsure = !unsure;
    } )

(* Grids smaller than this run sequentially whatever [jobs] says: spawning
   a domain costs more than deciding this few pairs. Equality of the two
   plans is unconditional (see below), so the gate is pure performance. *)
let par_grid_min = 64

let graph_of_outcomes ?budget ?candidates ?(jobs = 1) ~n_left ~n_right outcome =
  let jobs = max 1 (min jobs n_left) in
  let jobs = if n_left * n_right < par_grid_min then 1 else jobs in
  if jobs <= 1 then begin
    let edges, tally = eval_band ?budget ?candidates ~lo:0 ~hi:n_left ~n_right outcome in
    ({ n_left; n_right; edges }, tally)
  end
  else begin
    (* Contiguous row bands, one per domain. Concatenating the per-band
       buffers in band order reproduces the sequential row-major edge
       order exactly, and each edge's probability is computed from its
       pair alone — so any [jobs] is bit-identical to [jobs = 1].

       Every band runs inside [guarded], which captures success or failure
       instead of letting an exception escape mid-join (which would leak
       unjoined domains, and could report a later band's failure while an
       earlier band's went unseen). On failure the shared budget is
       cancelled so sibling bands stop at their next tick; after all
       domains are joined, the first failure in band order is re-raised. *)
    let base = n_left / jobs and extra = n_left mod jobs in
    let band d =
      let lo = (d * base) + min d extra in
      (lo, lo + base + if d < extra then 1 else 0)
    in
    let guarded d () =
      let lo, hi = band d in
      match eval_band ?budget ?candidates ~lo ~hi ~n_right outcome with
      | result -> Ok result
      | exception e ->
          Option.iter Budget.cancel budget;
          Error e
    in
    let workers = List.init (jobs - 1) (fun k -> Domain.spawn (guarded (k + 1))) in
    let outcomes = guarded 0 () :: List.map Domain.join workers in
    let parts = List.map (function Ok r -> r | Error e -> raise e) outcomes in
    let edges = List.concat_map fst parts in
    let tally = List.fold_left (fun acc (_, t) -> add_tally acc t) empty_tally parts in
    ({ n_left; n_right; edges }, tally)
  end

let graph_of_verdicts ?jobs ~n_left ~n_right verdict =
  fst (graph_of_outcomes ?jobs ~n_left ~n_right (fun i j -> Verdict (verdict i j)))
