(** Probabilistic integration (paper §III).

    Integration descends the two source documents from their (matching)
    roots. At each pair of merged elements the child sequences are
    integrated:

    - child tags the DTD limits to at most one occurrence are reconciled
      directly — deep-equal values merge, conflicting values become a local
      probability choice (this is how the Fig. 2 DTD rejects the
      two-phones-John world);
    - the remaining children form a bipartite candidate graph, with edges
      weighted by the Oracle's verdicts; every partial injective matching
      of the graph is one possibility;
    - matched pairs are merged recursively (conflicting text becomes a
      local choice); unmatched children are kept as certain subtrees.

    The candidate graph decomposes into connected {e clusters} that choose
    independently. Two representation strategies are offered:

    - [factorize = false] (default, faithful to the paper's system): all
      clusters of one parent are expanded jointly into a single probability
      node — the representation grows with the {e product} of cluster
      matching counts, which is exactly the data explosion the paper's
      Table I and Figure 5 measure;
    - [factorize = true] (this repo's improvement, see DESIGN.md): one
      probability node per cluster, so independent uncertainty only {e adds}
      representation nodes.

    {!stats} runs the same algorithm but computes exact node and world
    counts without materialising the result, which is how the large points
    of Figure 5 are produced. *)

module Xml = Imprecise_xml
module Pxml = Imprecise_pxml
module Oracle = Imprecise_oracle

type config = {
  oracle : Oracle.Oracle.t;
  dtd : Xml.Dtd.t;
  factorize : bool;
  value_conflict : Xml.Tree.t -> Xml.Tree.t -> float;
      (** weight of the {e left} value when two values for the same field
          conflict; default: constant 0.5 *)
  reconcile : string -> string -> string -> string option;
      (** [reconcile tag left right] may resolve a value conflict under a
          leaf [tag] to one canonical value — knowledge such as "these are
          the same director name in two conventions". Default: never. *)
  block : Xml.Tree.t -> string option;
      (** Entity-resolution blocking: children whose block keys are both
          present and different are ruled out {e without} consulting the
          Oracle (computed once per child — this is what makes
          10⁴-record integrations fast). Children without a key pair with
          everything. Soundness is the blocking function's contract.
          Default: no blocking. *)
  blocker : Blocking.spec;
      (** Pluggable candidate-indexing stage ({!Blocking}): compiles a
          per-grid plan (key buckets, inverted q-gram index, or sorted
          neighbourhood) so only plausible pairs are {e visited} at all —
          unlike [block], which still evaluates every cell. Default
          {!Blocking.All_pairs} (full grid, legacy behaviour). Recall
          safety relative to the Oracle is the caller's contract, certified
          for the shipped presets by [dune build @block-stress]. *)
  max_possibilities : int;
      (** materialisation cap for a single probability node; {!integrate}
          fails with [Too_large] beyond it (default 1_000_000) *)
  max_matchings : int;
      (** enumeration cap per cluster (default 1_000_000) *)
  jobs : int;
      (** OCaml domains scoring each candidate grid (default 1). Any value
          produces a bit-identical result to [jobs = 1] — the grid is
          sharded into contiguous row bands whose edge buffers and tallies
          are merged deterministically (see doc/integrate.md). Requires
          the Oracle's rules, [value_conflict] and [block] to be pure. *)
  decisions : Oracle.Decision_cache.t option;
      (** memoize Oracle verdicts by subtree pair across (and within)
          runs; default [None]. See {!Oracle.Decision_cache} for the
          purity contract. *)
  budget : Imprecise_resilience.Budget.t option;
      (** cooperative deadline / work-pool token (default [None]): ticked
          once per candidate-grid cell and once per prior world during
          {!integrate_incremental}'s fold. A trip surfaces as
          [Error (Budget_exceeded _)], never as an exception, and with
          [jobs > 1] cancels the sibling band domains at their next tick.
          See doc/resilience.md. *)
}

(** [config ~oracle ()] with defaults described above. Raises
    [Invalid_argument] if [jobs < 1]. *)
val config :
  oracle:Oracle.Oracle.t ->
  ?dtd:Xml.Dtd.t ->
  ?factorize:bool ->
  ?value_conflict:(Xml.Tree.t -> Xml.Tree.t -> float) ->
  ?reconcile:(string -> string -> string -> string option) ->
  ?block:(Xml.Tree.t -> string option) ->
  ?blocker:Blocking.spec ->
  ?max_possibilities:int ->
  ?max_matchings:int ->
  ?jobs:int ->
  ?decisions:Oracle.Decision_cache.t ->
  ?budget:Imprecise_resilience.Budget.t ->
  unit ->
  config

type error =
  | Root_mismatch of string * string
      (** the two documents' root tags differ — schemas are not aligned *)
  | Mixed_content of string
      (** an element mixes non-whitespace text with element children *)
  | Too_large of int  (** more possibilities than [max_possibilities] *)
  | Oracle_conflict of string  (** contradictory absolute rules *)
  | Infeasible of string
      (** forced matches contradict sibling-distinctness *)
  | Budget_exceeded of string
      (** the configured {!Imprecise_resilience.Budget} tripped (deadline,
          world pool, or explicit cancellation — the string names which) *)

val pp_error : Format.formatter -> error -> unit

(** Integration metadata: how hard the Oracle had to think. The same
    counts also feed the global {!Imprecise_obs.Obs.Metrics} registry
    (under [integrate.*]), where they accumulate across runs; the trace
    record is per-run. *)
type trace = {
  mutable unsure_pairs : int;  (** pairs with no absolute decision *)
  mutable same_pairs : int;  (** pairs forced [Same] *)
  mutable cluster_count : int;
  mutable largest_enumeration : int;  (** matchings in the biggest cluster *)
  mutable pairs_generated : int;
      (** every pair of the full candidate grids ([n_left * n_right]
          summed), whether or not it was visited *)
  mutable pairs_compared : int;
      (** grid cells actually evaluated, including tag mismatches and
          rule-level blocked pairs that never reached the Oracle. Equal to
          [pairs_generated] unless a [blocker] index skipped cells. *)
  mutable pairs_blocked : int;
      (** pairs ruled out before the Oracle ran — by the [blocker] index
          (skipped without evaluation) or by the [block] key (evaluated,
          then dropped). Invariant:
          [pairs_generated = pairs_compared + pairs_blocked - rule-level
          blocks]. *)
}

(** Exact size measures computed without materialising: [nodes] mirrors
    {!Pxml.node_count} of the would-be result, [worlds] mirrors
    {!Pxml.world_count}. *)
type summary = { nodes : float; worlds : float; trace : trace }

(** [integrate cfg left right] builds the probabilistic integration of the
    two documents. *)
val integrate : config -> Xml.Tree.t -> Xml.Tree.t -> (Pxml.Pxml.doc, error) result

(** [integrate_traced cfg left right] also reports the {!trace}. *)
val integrate_traced :
  config -> Xml.Tree.t -> Xml.Tree.t -> (Pxml.Pxml.doc * trace, error) result

(** [stats cfg left right] is the analytic mirror of {!integrate}: for any
    inputs on which both succeed,
    [stats.nodes = float (Pxml.node_count doc)] and
    [stats.worlds = Pxml.world_count doc] exactly. [stats] succeeds on
    inputs far beyond [max_possibilities]. *)
val stats : config -> Xml.Tree.t -> Xml.Tree.t -> (summary, error) result

(** [integrate_incremental cfg ?world_limit doc source] folds a further
    source into an already-probabilistic document — the dataspace story:
    sources arrive over time, and each is integrated against the current
    uncertain state. Semantics: integrate [source] with every possible
    world of [doc] and combine the results, weighted by the world
    probabilities (then compact). Exponential in the prior uncertainty, so
    guarded by [world_limit] (default 1000 choice combinations; fails with
    [Too_large]). Give feedback first to shrink the world space if the
    guard fires. *)
val integrate_incremental :
  config -> ?world_limit:float -> Pxml.Pxml.doc -> Xml.Tree.t -> (Pxml.Pxml.doc, error) result
