(** Matchings between two child sequences.

    When integrating the children of two matched elements, the system must
    decide which child of the one source refers to the same real-world
    object as which child of the other. The paper's generic rule "no two
    siblings in one source refer to the same rwo" makes a consistent set of
    decisions a {e partial injective matching} of the bipartite candidate
    graph. Edges carry the Oracle's match probability; an edge with
    probability 1 is {e forced} (the Oracle said [Same]).

    The probability of a matching [M] is
    [∏_{e∈M} p(e) · ∏_{e∉M} (1−p(e))], normalised over all injective
    matchings — i.e. independent per-edge coins conditioned on
    injectivity. *)

type edge = { left : int; right : int; prob : float }

type graph = { n_left : int; n_right : int; edges : edge list }

(** A connected component of the candidate graph. Distinct clusters choose
    their matchings independently. *)
type cluster = { lefts : int list; rights : int list; cluster_edges : edge list }

exception Too_many of int
(** Raised by {!matchings} when the enumeration exceeds the given limit. *)

exception Infeasible of string
(** Raised when every matching has probability 0 — the Oracle forced
    contradictory pairs. *)

(** [clusters g] partitions the vertices that occur in at least one edge
    into connected components, ordered by smallest left index. Vertices
    with no incident edge are not part of any cluster. *)
val clusters : graph -> cluster list

(** [isolated g] is the (lefts, rights) with no incident edges. *)
val isolated : graph -> int list * int list

(** [matchings ?limit cluster] enumerates every partial injective matching
    of the cluster with non-zero probability, as
    [(normalised probability, pairs)] with pairs sorted by left index. The
    empty matching is included (unless forced edges exclude it). Raises
    {!Too_many} if more than [limit] (default [max_int]) matchings exist,
    {!Infeasible} if no matching has positive probability. *)
val matchings : ?limit:int -> cluster -> (float * (int * int) list) list

(** [count_matchings cluster] is the number of positive-probability
    matchings, without materialising them. *)
val count_matchings : cluster -> int

(** What happened to one candidate pair: either the Oracle (or a
    tag/structure check) produced a verdict, or blocking pruned the pair
    before any Oracle call. *)
type outcome = Verdict of Imprecise_oracle.Oracle.verdict | Blocked

type tally = {
  generated : int;
  pairs : int;
  blocked : int;
  same : int;
  unsure : int;
}
(** Per-grid bookkeeping: [generated] is the full grid size
    ([n_left * n_right] — every pair that exists), [pairs] the cells
    actually evaluated ([outcome] called), [blocked] the pairs pruned
    either by the candidate index (skipped without evaluation) or by a
    rule-level [Blocked] outcome, [same]/[unsure] the Oracle verdicts of
    those kinds. Invariants: [generated = pairs + (blocked - rule-level
    blocks)], and without a candidate index [generated = pairs]. Collected
    privately per domain and summed, so the totals are exact whatever
    [jobs] is. *)

val empty_tally : tally

val add_tally : tally -> tally -> tally

(** [graph_of_outcomes ?jobs ~n_left ~n_right outcome] builds the candidate
    graph by consulting [outcome left right] for every cell of the grid:
    [Verdict Same] ⇒ forced edge, [Verdict Different] or [Blocked] ⇒ no
    edge, [Verdict (Unsure p)] ⇒ edge with probability [p] (clamped away
    from 0 and 1), and returns the tally alongside.

    [candidates] (from {!Blocking.candidates}) restricts each row [i] to
    the cells [candidates i]: only those are evaluated (and ticked against
    the budget); the rest of the row is counted as blocked without being
    visited. The lists must be ascending, duplicate-free right indices in
    [0, n_right) — ascending order preserves the row-major edge order, so
    the band sharding below stays bit-identical for every [jobs] with any
    blocker. [candidates] is called from every band domain, so it must be a
    pure read (compiled plans are).

    [jobs] (default 1) shards the grid into contiguous row bands, one OCaml
    domain per band. Each band buffers its edges and tally privately; the
    buffers are concatenated in band order, which reproduces the
    sequential row-major edge order exactly — the result is bit-identical
    to [jobs = 1] for every [jobs]. [outcome] must therefore be safe to
    call from multiple domains at once (pure, or internally synchronised),
    and must not depend on call order. Grids smaller than an internal
    threshold run sequentially regardless of [jobs]. If any band's
    [outcome] raises (e.g. an Oracle conflict), every domain is joined
    first and then the first failure in band order is re-raised —
    whichever band it came from; no domain leaks.

    [budget] ({!Imprecise_resilience.Budget}) is ticked once per grid
    cell; a blown deadline or work pool raises [Budget.Exceeded], and
    with [jobs > 1] the tripping band cancels the shared budget so its
    siblings stop at their next tick instead of finishing their bands. *)
val graph_of_outcomes :
  ?budget:Imprecise_resilience.Budget.t ->
  ?candidates:(int -> int list) ->
  ?jobs:int ->
  n_left:int ->
  n_right:int ->
  (int -> int -> outcome) ->
  graph * tally

(** [graph_of_verdicts ?jobs ~n_left ~n_right verdict] is
    {!graph_of_outcomes} over [fun i j -> Verdict (verdict i j)], with the
    tally discarded. *)
val graph_of_verdicts :
  ?jobs:int ->
  n_left:int ->
  n_right:int ->
  (int -> int -> Imprecise_oracle.Oracle.verdict) ->
  graph
