(** Matchings between two child sequences.

    When integrating the children of two matched elements, the system must
    decide which child of the one source refers to the same real-world
    object as which child of the other. The paper's generic rule "no two
    siblings in one source refer to the same rwo" makes a consistent set of
    decisions a {e partial injective matching} of the bipartite candidate
    graph. Edges carry the Oracle's match probability; an edge with
    probability 1 is {e forced} (the Oracle said [Same]).

    The probability of a matching [M] is
    [∏_{e∈M} p(e) · ∏_{e∉M} (1−p(e))], normalised over all injective
    matchings — i.e. independent per-edge coins conditioned on
    injectivity. *)

type edge = { left : int; right : int; prob : float }

type graph = { n_left : int; n_right : int; edges : edge list }

(** A connected component of the candidate graph. Distinct clusters choose
    their matchings independently. *)
type cluster = { lefts : int list; rights : int list; cluster_edges : edge list }

exception Too_many of int
(** Raised by {!matchings} when the enumeration exceeds the given limit. *)

exception Infeasible of string
(** Raised when every matching has probability 0 — the Oracle forced
    contradictory pairs. *)

(** [clusters g] partitions the vertices that occur in at least one edge
    into connected components, ordered by smallest left index. Vertices
    with no incident edge are not part of any cluster. *)
val clusters : graph -> cluster list

(** [isolated g] is the (lefts, rights) with no incident edges. *)
val isolated : graph -> int list * int list

(** [matchings ?limit cluster] enumerates every partial injective matching
    of the cluster with non-zero probability, as
    [(normalised probability, pairs)] with pairs sorted by left index. The
    empty matching is included (unless forced edges exclude it). Raises
    {!Too_many} if more than [limit] (default [max_int]) matchings exist,
    {!Infeasible} if no matching has positive probability. *)
val matchings : ?limit:int -> cluster -> (float * (int * int) list) list

(** [count_matchings cluster] is the number of positive-probability
    matchings, without materialising them. *)
val count_matchings : cluster -> int

(** [graph_of_verdicts ~n_left ~n_right verdict] builds the candidate graph
    by consulting [verdict left right] for every pair: [Same] ⇒ forced
    edge, [Different] ⇒ no edge, [Unsure p] ⇒ edge with probability [p]
    (clamped away from 0 and 1). *)
val graph_of_verdicts :
  n_left:int -> n_right:int -> (int -> int -> Imprecise_oracle.Oracle.verdict) -> graph
