(** Static analysis of Oracle rule sets against a probe corpus.

    Rules are opaque judge functions, so the lint is behavioural: it
    exercises each rule over representative probe pairs and reports
    structural defects as diagnostics (catalogue in [doc/analysis.md]):

    - [R003] (warning): a rule is unreachable — it fires on at least one
      probe pair, but on every pair it fires an {e earlier} rule fires
      too, so it never decides first (shadowing);
    - [R004] (warning): a rule is not symmetric under argument swap —
      [judge a b] and [judge b a] disagree on a probe pair. The candidate
      grid visits each pair once in arbitrary orientation, so an
      asymmetric rule makes integration order-dependent.

    The bundled {!Imprecise_oracle.Similarity} measures are symmetric, so
    the [Rulesets] presets pass; the [@lint] alias audits them on every
    run ([test/lint_main.ml]). *)

(** [check ~probes oracle] lints [oracle]'s rules over [probes] (ordered
    pairs of same-tagged elements, e.g. the lint harness's Figure 2 /
    Table 1 record pairs). An empty probe list reports nothing. *)
val check :
  probes:(Imprecise_xml.Tree.t * Imprecise_xml.Tree.t) list ->
  Imprecise_oracle.Oracle.t ->
  Diag.t list
