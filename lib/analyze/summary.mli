(** Path summaries (DataGuides) for probabilistic documents.

    A summary folds a {!Imprecise_pxml.Pxml.doc} into the set of element
    label paths it can exhibit in {e any} possible world, with
    per-parent-instance cardinality bounds, a certainty flag, text and
    attribute information. It is the document-shaped half of static query
    analysis: {!Query_check} decides satisfiability of a query against it
    without enumerating a single world.

    Soundness contract (what {!Query_check.statically_empty} relies on):
    the summary {b over-approximates} — every label path, text position and
    attribute that occurs in at least one possible world is recorded.
    Possibilities are walked regardless of their probability (even zero),
    so pruning decisions made against a summary hold in every world.
    Conversely [certain] {b under-approximates}: it is only [true] when the
    path provably occurs in every world.

    Paths are root-to-node label lists; the empty path [[]] is the virtual
    document node above the root element(s), mirroring the evaluator's
    [#document] wrapper. *)

type path = string list

type card = { cmin : int; cmax : int }
(** Total occurrences of a label under one parent instance, bounded over
    that instance's local choice combinations and then over all parent
    instances: [cmin] is a lower bound for every world that contains the
    parent, [cmax] an upper bound. *)

type entry = {
  card : card;
  certain : bool;  (** present in every possible world *)
  has_text : bool;  (** may have text children in some world *)
  attrs : string list;  (** attribute names seen on elements at this path, sorted *)
  instances : int;  (** element instances at this path in the representation *)
  texts : int;
      (** text-node occurrences in the representation directly under
          elements at this path — an upper bound on distinct text values
          any world (or all worlds together) can exhibit there *)
  subtree_worlds : float;
      (** max over instances at this path of that instance's subtree world
          count (raw choice combinations, zero-probability choices
          included) — computed with [Pxml.world_count]'s exact recursion,
          so comparisons against the direct evaluator's local world limit
          agree bit-for-bit. At the document path [[]] this is the whole
          document's world count, an upper bound on worlds any enumeration
          can walk. *)
}

type t

(** [of_doc d] infers the summary of one document. Cost: one walk of the
    representation — linear in its node count, independent of the number
    of worlds. *)
val of_doc : Imprecise_pxml.Pxml.doc -> t

(** [of_tree t] summarises a certain document (single world). *)
val of_tree : Imprecise_xml.Tree.t -> t

(** [merge a b] is the collection-level summary: a path is possible when
    possible in either input (cardinalities widen to cover both), and
    certain only when certain in both. Merging the per-document summaries
    of a store yields a summary sound for every document in it. *)
val merge : t -> t -> t

(** [empty] is the summary of "no document at all" — the neutral element
    of {!merge}. *)
val empty : t

val find : t -> path -> entry option

val mem : t -> path -> bool

(** Child element labels recorded under [path], sorted. *)
val labels_under : t -> path -> string list

(** Whether elements at [path] may have text children. *)
val has_text : t -> path -> bool

val attrs : t -> path -> string list

(** All recorded element paths, excluding the virtual root, in
    lexicographic order. *)
val paths : t -> path list

(** [descendant_paths t p] is every recorded path strictly below [p]. *)
val descendant_paths : t -> path -> path list

val path_to_string : path -> string

val pp : Format.formatter -> t -> unit

val to_json : t -> Imprecise_obs.Obs.Json.t
