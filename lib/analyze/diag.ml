module Json = Imprecise_obs.Obs.Json

type severity = Info | Warning | Error

type location =
  | Nowhere
  | Doc_path of string list
  | Query_at of { source : string; offset : int option }

type t = { code : string; severity : severity; message : string; location : location }

let make ?(location = Nowhere) ~code ~severity message =
  { code; severity; message; location }

let makef ?location ~code ~severity fmt =
  Format.kasprintf (fun message -> make ?location ~code ~severity message) fmt

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)

let worst = function
  | [] -> None
  | d :: rest ->
      Some
        (List.fold_left
           (fun acc d -> if compare_severity d.severity acc > 0 then d.severity else acc)
           d.severity rest)

let exit_code diags =
  match worst diags with
  | None | Some Info -> 0
  | Some Warning -> 1
  | Some Error -> 2

let path_to_string components = "/" ^ String.concat "/" components

let to_text d =
  let head =
    Printf.sprintf "%s %s: %s" (severity_to_string d.severity) d.code d.message
  in
  match d.location with
  | Nowhere -> head
  | Doc_path components -> Printf.sprintf "%s\n  at %s" head (path_to_string components)
  | Query_at { source; offset } -> (
      match offset with
      | None -> Printf.sprintf "%s\n  in: %s" head source
      | Some off ->
          (* The caret lines up under the offending character; the "  in: "
             prefix is 6 columns wide. Offsets past the end (e.g. an
             unexpected <eof>) point just after the last character. *)
          let off = max 0 (min off (String.length source)) in
          Printf.sprintf "%s\n  in: %s\n      %s^" head source (String.make off ' '))

let pp ppf d = Format.pp_print_string ppf (to_text d)

(* Every located diagnostic carries an "offset" key so consumers can rely
   on the shape: Q-codes have real character offsets (from parse_located),
   D/R/P-codes carry null. *)
let location_to_json = function
  | Nowhere -> Json.Null
  | Doc_path components ->
      Json.Obj
        [
          ("kind", Json.String "doc");
          ("path", Json.String (path_to_string components));
          ("offset", Json.Null);
        ]
  | Query_at { source; offset } ->
      Json.Obj
        [
          ("kind", Json.String "query");
          ("source", Json.String source);
          ("offset", (match offset with None -> Json.Null | Some o -> Json.Int o));
        ]

let to_json d =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_to_string d.severity));
      ("message", Json.String d.message);
      ("location", location_to_json d.location);
    ]

let list_to_json diags =
  Json.Obj
    [
      ("diagnostics", Json.List (List.map to_json diags));
      ( "worst",
        match worst diags with
        | None -> Json.Null
        | Some s -> Json.String (severity_to_string s) );
    ]
