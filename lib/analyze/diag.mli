(** Diagnostics: stable codes, severities, locations, renderers.

    Every analyzer in this library (and the CLI's [check]/[validate]
    subcommands) reports findings as {!t} values instead of printing or
    raising on the first problem, so a single run surfaces {e all}
    findings and tooling can consume them as JSON. The code catalogue
    lives in [doc/analysis.md]; codes are stable across releases —
    renumbering is a breaking change.

    Prefixes: [Q***] query analysis, [D***] document analysis, [R***]
    ruleset analysis. *)

type severity = Info | Warning | Error

(** Where a finding points:
    - [Doc_path]: a path into a probabilistic document, components are
      element labels plus [prob[i]]/[poss[j]] markers for probability
      nodes and possibilities (1-based);
    - [Query_at]: a position in a query's source text ([offset] is a
      0-based character offset when known);
    - [Nowhere]: a finding about the input as a whole. *)
type location =
  | Nowhere
  | Doc_path of string list
  | Query_at of { source : string; offset : int option }

type t = { code : string; severity : severity; message : string; location : location }

val make : ?location:location -> code:string -> severity:severity -> string -> t

(** [makef] is {!make} with a format string. *)
val makef :
  ?location:location ->
  code:string ->
  severity:severity ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val severity_to_string : severity -> string

(** [Error > Warning > Info]. *)
val compare_severity : severity -> severity -> int

(** The highest severity present; [None] on an empty list. *)
val worst : t list -> severity option

(** Exit status for a CLI run: 0 when nothing worse than [Info] was
    reported, 1 when [Warning] is the worst finding, 2 on any [Error]. *)
val exit_code : t list -> int

(** One finding, rendered over one or more lines: severity, code and
    message, then the location — a [at /path] line, or the query source
    with a caret pointing at the offset. *)
val to_text : t -> string

val pp : Format.formatter -> t -> unit

val to_json : t -> Imprecise_obs.Obs.Json.t

(** The full report: a [{"diagnostics": [...], "worst": ...}] object. *)
val list_to_json : t list -> Imprecise_obs.Obs.Json.t
