module Oracle = Imprecise_oracle.Oracle

let verdict_equal (a : Oracle.verdict option) (b : Oracle.verdict option) =
  match (a, b) with
  | None, None -> true
  | Some Oracle.Same, Some Oracle.Same -> true
  | Some Oracle.Different, Some Oracle.Different -> true
  | Some (Oracle.Unsure x), Some (Oracle.Unsure y) -> Float.equal x y
  | _ -> false

let pp_verdict_opt ppf = function
  | None -> Format.pp_print_string ppf "abstain"
  | Some v -> Oracle.pp_verdict ppf v

let check ~probes oracle =
  let rules = Oracle.rules oracle in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* R004: a rule must not care which source a record came from — the
     candidate grid visits each pair once, in an arbitrary orientation. *)
  List.iter
    (fun (r : Oracle.rule) ->
      match
        List.find_opt
          (fun (a, b) -> not (verdict_equal (r.Oracle.judge a b) (r.Oracle.judge b a)))
          probes
      with
      | None -> ()
      | Some (a, b) ->
          emit
            (Diag.makef ~code:"R004" ~severity:Diag.Warning
               "rule %S is not symmetric under argument swap: %a forward vs %a \
                swapped on a probe pair"
               r.Oracle.name pp_verdict_opt (r.Oracle.judge a b) pp_verdict_opt
               (r.Oracle.judge b a)))
    rules;
  (* R003: a rule that never fires alone — on every probe pair it judges,
     an earlier rule already fires — adds nothing the earlier rules do not
     already decide, and is likely shadowed dead weight (or the probe set
     is too weak to exercise it, which deserves the same look). *)
  let arr = Array.of_list rules in
  Array.iteri
    (fun i (r : Oracle.rule) ->
      if i > 0 then begin
        let fires = List.filter (fun (a, b) -> r.Oracle.judge a b <> None) probes in
        let earlier_fires (a, b) =
          let rec go j =
            j < i && (arr.(j).Oracle.judge a b <> None || go (j + 1))
          in
          go 0
        in
        if fires <> [] && List.for_all earlier_fires fires then
          emit
            (Diag.makef ~code:"R003" ~severity:Diag.Warning
               "rule %S is unreachable on the probe set: an earlier rule fires on \
                every pair (%d) that reaches it"
               r.Oracle.name (List.length fires))
      end)
    arr;
  List.rev !diags
