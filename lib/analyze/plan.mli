(** The static query planner: decide, before touching any worlds, which
    evaluator is safe for a query, what it will cost, and why.

    [plan] combines three static passes over a {!Summary.t}:

    + {!Cost.analyze} — sound upper bounds on answer cardinality and
      worlds-to-enumerate;
    + [Imprecise_xpath.Fragment.classify] — the syntactic tractability
      classifier shared with the direct evaluator;
    + the data-dependent proofs the direct evaluator otherwise discovers
      at runtime, decided here against the summary with the same step
      automaton: binder occurrences never nest ([P005] when they can),
      and every occurrence subtree stays under the local world limit
      ([P006] when one may exceed it).

    Route prediction is exact (fuzz-certified): [route = Direct] iff the
    direct evaluator accepts the query on any document the summary
    covers, because both sides share one fragment definition, one
    automaton, and bit-identical world counts.

    Fallback reasons are reported as {!Diag.t} with codes [P001]–[P006]
    (severity [Info] — routing to enumeration is not a defect) and flow
    through [imprecise check --plan] and the [Obs] event stream. *)

type route = Direct | Enumerate

type t = {
  route : route;
  cost : Cost.t;
  obligations : string list;
      (** the proof obligations discharged when [route = Direct] *)
  reasons : Diag.t list;
      (** why not direct — [P00n] diagnostics when [route = Enumerate] *)
  shards : int;
      (** enumeration shard hint sized from the world bound (1 when
          direct, or when the bound is small) *)
}

(** [plan ~summary ?source ?local_limit expr] — [source] attaches the
    query text to reason diagnostics; [local_limit] must match the
    evaluator's ([Fragment.default_local_limit] by default, as in
    [Pquery]). *)
val plan :
  summary:Summary.t ->
  ?source:string ->
  ?local_limit:float ->
  Imprecise_xpath.Ast.expr ->
  t

val route_to_string : route -> string

val to_json : t -> Imprecise_obs.Obs.Json.t

val pp : Format.formatter -> t -> unit
