(** Static analysis of queries against a path summary.

    The analyzer abstractly interprets an {!Imprecise_xpath.Ast.expr} over
    the label paths recorded in a {!Summary.t}: the abstract state of a
    node-set is the set of (element path | text-under-path |
    attribute-at-path) shapes its items can take in {e any} possible world.
    Axis steps, node tests, [//] separators and predicates mirror the
    evaluator's semantics; whenever the analyzer is unsure it
    over-approximates, so an abstract state of [∅] proves the concrete
    result empty in every world.

    Codes reported (catalogue in [doc/analysis.md]):
    - [Q001] (error): the query is a node-set expression that can never
      select anything — {!statically_empty} holds;
    - [Q002] (error): call to a function the evaluator does not implement
      (would raise at evaluation time);
    - [Q003] (error): reference to an unbound [$variable] (likewise);
    - [Q004] (warning): suspicious comparison — both operands constant, or
      one side a statically-empty node-set;
    - [Q005] (warning): dead [|] union branch that can never contribute;
    - [Q000] (error): syntax error ({!check_string} only).

    Soundness contract: when {!statically_empty} returns [true], ranking
    the query over any document covered by the summary yields zero
    answers. [Pquery.rank] relies on this to skip world enumeration
    (see [doc/analysis.md]). *)

(** Abstract item shapes. [El []] is the synthetic document node the
    evaluator places above each world root; [Tx p] a text child of an
    element at path [p]; [At (p, n)] an attribute [n] of an element at
    [p]. Only shapes recorded in the summary are ever constructed. *)
type state = El of string list | Tx of string list | At of string list * string

(** [nodeset_states s ctx e] is [Some states] when [e] is a node-set
    expression whose items provably take one of [states]' shapes in every
    possible world, [None] when [e] is not a node-set or cannot be
    tracked. [ctx] is the abstract context-item set ([None] = unknown);
    top-level queries start from [Some [El []]]. [Some []] proves concrete
    emptiness in every world. The cost model ({!Cost}) sums per-shape
    cardinality bounds over this result. *)
val nodeset_states :
  Summary.t -> state list option -> Imprecise_xpath.Ast.expr -> state list option

(** [statically_empty ~summary e] is [true] only when [e] is a node-set
    expression whose result is provably empty in every possible world of
    every document covered by [summary]. Conservative: [false] means
    "unknown", never "proved non-empty". *)
val statically_empty : summary:Summary.t -> Imprecise_xpath.Ast.expr -> bool

(** Function names the evaluator implements; anything else raises
    [unknown function] at evaluation time. *)
val known_functions : string list

(** [check ~summary e] runs all query diagnostics. [source] attaches the
    query text to locations so renderers can point into it. Without a
    [summary] only the shape-free checks can fire (syntax, unknown
    functions, unbound variables, constant comparisons) — there is no
    document to judge emptiness against. *)
val check :
  ?summary:Summary.t -> ?source:string -> Imprecise_xpath.Ast.expr -> Diag.t list

(** [check_string ~summary src] parses and checks; syntax errors come back
    as a single [Q000] diagnostic carrying the character offset. *)
val check_string : ?summary:Summary.t -> string -> Diag.t list
