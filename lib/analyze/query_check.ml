module Ast = Imprecise_xpath.Ast
module Parser = Imprecise_xpath.Parser

(* Abstract item shapes. [El []] is the synthetic document node the
   evaluator places above each world root; [Tx p] is a text child of an
   element at path [p]; [At (p, n)] an attribute [n] of an element at
   [p]. Only shapes recorded in the summary are ever constructed, so a
   state set of [] proves concrete emptiness in every world. *)
type state = El of string list | Tx of string list | At of string list * string

let dedup = List.sort_uniq Stdlib.compare

let proper_prefixes p =
  (* [a;b;c] -> [[]; [a]; [a;b]] *)
  let rec go acc rev_prefix = function
    | [] -> List.rev acc
    | x :: rest -> go (List.rev rev_prefix :: acc) (x :: rev_prefix) rest
  in
  go [] [] p

let parent_of p = List.filteri (fun i _ -> i < List.length p - 1) p

let children_states s p =
  List.map (fun l -> El (p @ [ l ])) (Summary.labels_under s p)
  @ (if Summary.has_text s p then [ Tx p ] else [])

let descendant_states s p =
  List.map (fun q -> El q) (Summary.descendant_paths s p)
  @ List.filter_map
      (fun q -> if Summary.has_text s q then Some (Tx q) else None)
      (p :: Summary.descendant_paths s p)

let axis_states s (st : state) (axis : Ast.axis) : state list =
  match (st, axis) with
  (* From an attribute only self and parent are non-empty. *)
  | At _, Ast.Self -> [ st ]
  | At (p, _), Ast.Parent -> [ El p ]
  | At _, _ -> []
  | Tx _, (Ast.Self | Ast.Descendant_or_self) -> [ st ]
  | Tx p, Ast.Parent -> [ El p ]
  | Tx p, Ast.Ancestor -> List.map (fun q -> El q) (p :: proper_prefixes p)
  | Tx p, Ast.Ancestor_or_self -> st :: List.map (fun q -> El q) (p :: proper_prefixes p)
  | Tx p, (Ast.Following_sibling | Ast.Preceding_sibling) -> children_states s p
  | Tx _, (Ast.Child | Ast.Descendant | Ast.Attribute) -> []
  | El p, Ast.Child -> children_states s p
  | El p, Ast.Descendant -> descendant_states s p
  | El p, Ast.Descendant_or_self -> st :: descendant_states s p
  | El _, Ast.Self -> [ st ]
  | El [], Ast.Parent -> []
  | El p, Ast.Parent -> [ El (parent_of p) ]
  | El p, Ast.Ancestor -> List.map (fun q -> El q) (proper_prefixes p)
  | El p, Ast.Ancestor_or_self -> st :: List.map (fun q -> El q) (proper_prefixes p)
  | El [], (Ast.Following_sibling | Ast.Preceding_sibling) -> []
  | El p, (Ast.Following_sibling | Ast.Preceding_sibling) -> children_states s (parent_of p)
  | El p, Ast.Attribute -> List.map (fun n -> At (p, n)) (Summary.attrs s p)

let last_label p = List.nth p (List.length p - 1)

let test_keeps (test : Ast.node_test) (st : state) =
  match (test, st) with
  | Ast.Any_node, _ -> true
  | Ast.Text_node, Tx _ -> true
  | Ast.Text_node, (El _ | At _) -> false
  (* The synthetic document node is never selected by [*]. *)
  | Ast.Wildcard, El [] -> false
  | Ast.Wildcard, (El _ | At _) -> true
  | Ast.Wildcard, Tx _ -> false
  | Ast.Name n, El [] -> String.equal n "#document"
  | Ast.Name n, El p -> String.equal n (last_label p)
  | Ast.Name _, Tx _ -> false
  | Ast.Name n, At (_, a) -> String.equal n a

(* [nodeset_states s ctx e] is [Some states] when [e] is a node-set
   expression whose items provably take one of [states]' shapes, [None]
   when [e] is not a node-set or we cannot track it. [ctx] is the abstract
   context item set ([None] = unknown). *)
let rec nodeset_states s (ctx : state list option) (e : Ast.expr) : state list option =
  match e with
  | Ast.Path p -> (
      let start = if p.Ast.absolute then Some [ El [] ] else ctx in
      match start with
      | None -> None
      | Some states -> Some (steps_states s states p.Ast.steps))
  | Ast.Union (a, b) -> (
      match (nodeset_states s ctx a, nodeset_states s ctx b) with
      | Some xs, Some ys -> Some (dedup (xs @ ys))
      | _ -> None)
  | Ast.Filter (primary, preds, steps) -> (
      match nodeset_states s ctx primary with
      | None -> None
      | Some states ->
          let states =
            List.filter
              (fun st -> not (List.exists (pred_always_false s st) preds))
              states
          in
          Some (steps_states s states steps))
  | Ast.If (_, then_, else_) -> (
      (* Either branch may be taken; the union of their shapes covers both. *)
      match (nodeset_states s ctx then_, nodeset_states s ctx else_) with
      | Some xs, Some ys -> Some (dedup (xs @ ys))
      | _ -> None)
  | Ast.For (_, domain, _, _) -> (
      (* An empty domain yields an empty sequence; otherwise the body may
         produce synthesised text items we cannot shape-track. *)
      match nodeset_states s ctx domain with Some [] -> Some [] | _ -> None)
  | Ast.Let (_, _, body) -> nodeset_states s ctx body
  | _ -> None

and steps_states s states steps =
  List.fold_left
    (fun states (descendant_sep, (step : Ast.step)) ->
      let states =
        if descendant_sep then
          dedup (List.concat_map (fun st -> axis_states s st Ast.Descendant_or_self) states)
        else states
      in
      let after_axis = List.concat_map (fun st -> axis_states s st step.Ast.axis) states in
      let after_test = List.filter (test_keeps step.Ast.test) after_axis in
      let after_preds =
        List.filter
          (fun st -> not (List.exists (pred_always_false s st) step.Ast.predicates))
          after_test
      in
      dedup after_preds)
    states steps

(* A predicate may drop a state only when it is provably false for every
   concrete node of that shape, at every position. *)
and pred_always_false s st (pred : Ast.expr) : bool =
  match pred with
  (* A bare number predicate is positional: position() = f. *)
  | Ast.Number f -> f < 1.0 || not (Float.is_integer f)
  | e -> expr_always_false s st e

(* [boolean_value] of [e] is false for every concrete node of shape [st]. *)
and expr_always_false s st (e : Ast.expr) : bool =
  let provably_empty e =
    match nodeset_states s (Some [ st ]) e with Some [] -> true | _ -> false
  in
  match e with
  | Ast.Literal str -> String.length str = 0
  | Ast.Number f -> f = 0. || Float.is_nan f
  | Ast.Binop (Ast.And, a, b) -> expr_always_false s st a || expr_always_false s st b
  | Ast.Binop (Ast.Or, a, b) -> expr_always_false s st a && expr_always_false s st b
  | Ast.Call ("false", []) -> true
  (* Boolean-coercion contexts around a statically empty node-set: the
     coercion of [] is false, so the whole predicate is. *)
  | Ast.Call ("boolean", [ a ]) -> expr_always_false s st a
  | Ast.Call ("exists", [ a ]) -> provably_empty a
  | Ast.Quantified (Ast.Some_q, _, dom, _) ->
      (* [some $x in ∅ satisfies _] is false; [every] over ∅ is true, so it
         must not prune. *)
      provably_empty dom
  | Ast.Binop ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), a, b) ->
      (* Comparing an empty node-set is existential — false — except when
         the other side is a boolean (coercion compares against false), so
         only node-set and string/number-constant operands qualify. *)
      let comparable = function
        | Ast.Literal _ | Ast.Number _ | Ast.Path _ | Ast.Union _ | Ast.Filter _ ->
            true
        | _ -> false
      in
      (provably_empty a && comparable b) || (provably_empty b && comparable a)
  | e -> provably_empty e

let statically_empty ~summary e =
  match nodeset_states summary (Some [ El [] ]) e with Some [] -> true | _ -> false

(* Keep in sync with [Eval.eval_call]'s dispatch. *)
let known_functions =
  [
    "last"; "position"; "count"; "name"; "local-name"; "string"; "concat";
    "starts-with"; "ends-with"; "contains"; "substring-before"; "substring-after";
    "substring"; "string-length"; "normalize-space"; "translate"; "boolean"; "not";
    "true"; "false"; "number"; "sum"; "floor"; "ceiling"; "round"; "min"; "max";
    "avg"; "string-join"; "distinct-values"; "exists"; "empty"; "deep-equal";
  ]

let is_constant = function Ast.Literal _ | Ast.Number _ -> true | _ -> false

let binop_symbol = function
  | Ast.Eq -> "="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | _ -> "?"

let check ?summary ?source expr =
  let location =
    match source with
    | Some src -> Diag.Query_at { source = src; offset = None }
    | None -> Diag.Nowhere
  in
  let diags = ref [] in
  let add ~code ~severity fmt = Diag.makef ~location ~code ~severity fmt in
  let emit d = diags := d :: !diags in
  (* Without a summary there is no shape information: context stays
     unknown, so only the shape-free checks (Q002/Q003/Q004-constants)
     can fire. *)
  let nstates ctx e =
    match summary with None -> None | Some s -> nodeset_states s ctx e
  in
  let keeps_preds preds sts =
    match summary with
    | None -> sts
    | Some s ->
        List.filter (fun st -> not (List.exists (pred_always_false s st) preds)) sts
  in
  let step_cands descendant_sep (step : Ast.step) ctx =
    match summary with
    | None -> None
    | Some s ->
        Option.map
          (fun states ->
            let states =
              if descendant_sep then
                dedup
                  (List.concat_map (fun st -> axis_states s st Ast.Descendant_or_self) states)
              else states
            in
            List.filter (test_keeps step.Ast.test)
              (List.concat_map (fun st -> axis_states s st step.Ast.axis) states))
          ctx
  in
  (* [ctx] is the abstract context-item set where we can track it, [None]
     where we cannot. Var bindings never change the context item, so only
     path predicates refine it. *)
  let rec walk env ctx (e : Ast.expr) =
    match e with
    | Ast.Literal _ | Ast.Number _ -> ()
    | Ast.Var v ->
        if not (List.mem v env) then
          emit (add ~code:"Q003" ~severity:Diag.Error "unbound variable $%s" v)
    | Ast.Neg e -> walk env ctx e
    | Ast.Binop (op, a, b) -> (
        walk env ctx a;
        walk env ctx b;
        match op with
        | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
            if is_constant a && is_constant b then
              emit
                (add ~code:"Q004" ~severity:Diag.Warning
                   "comparison of two constants (%s %s %s) has a fixed outcome"
                   (Ast.to_string a) (binop_symbol op) (Ast.to_string b))
            else
              List.iter
                (fun side ->
                  match nstates ctx side with
                  | Some [] ->
                      emit
                        (add ~code:"Q004" ~severity:Diag.Warning
                           "comparison against statically empty node-set %s is always \
                            false"
                           (Ast.to_string side))
                  | _ -> ())
                [ a; b ]
        | _ -> ())
    | Ast.Union (a, b) ->
        walk env ctx a;
        walk env ctx b;
        List.iter
          (fun side ->
            match side with
            | Ast.Path _ | Ast.Union _ | Ast.Filter _ -> (
                match nstates ctx side with
                | Some [] ->
                    emit
                      (add ~code:"Q005" ~severity:Diag.Warning
                         "union branch %s can never contribute: no document path \
                          matches"
                         (Ast.to_string side))
                | _ -> ())
            | _ -> ())
          [ a; b ]
    | Ast.Call (f, args) ->
        if not (List.mem f known_functions) then
          emit (add ~code:"Q002" ~severity:Diag.Error "unknown function %s()" f);
        List.iter (walk env ctx) args
    | Ast.Quantified (_, v, domain, cond) ->
        walk env ctx domain;
        walk (v :: env) ctx cond
    | Ast.For (v, domain, where, body) ->
        walk env ctx domain;
        Option.iter (walk (v :: env) ctx) where;
        walk (v :: env) ctx body
    | Ast.Let (v, value, body) ->
        walk env ctx value;
        walk (v :: env) ctx body
    | Ast.If (cond, then_, else_) ->
        walk env ctx cond;
        walk env ctx then_;
        walk env ctx else_
    | Ast.Element_ctor (_, content) -> List.iter (walk env ctx) content
    | Ast.Text_ctor e -> walk env ctx e
    | Ast.Path p -> walk_steps env (if p.Ast.absolute then Some [ El [] ] else ctx) p.Ast.steps
    | Ast.Filter (primary, preds, steps) ->
        walk env ctx primary;
        let states = nstates ctx primary in
        List.iter (walk env states) preds;
        walk_steps env (Option.map (keeps_preds preds) states) steps
  and walk_steps env ctx steps =
    (* Predicates see the candidate set after axis and test. *)
    ignore
      (List.fold_left
         (fun ctx (descendant_sep, (step : Ast.step)) ->
           let cands = step_cands descendant_sep step ctx in
           List.iter (walk env cands) step.Ast.predicates;
           Option.map (fun sts -> dedup (keeps_preds step.Ast.predicates sts)) cands)
         ctx steps)
  in
  walk []
    (match summary with Some _ -> Some [ El [] ] | None -> None)
    expr;
  let found = List.rev !diags in
  let found =
    if (match summary with Some s -> statically_empty ~summary:s expr | None -> false)
    then
      add ~code:"Q001" ~severity:Diag.Error
        "query can never produce answers: no document path matches %s"
        (Ast.to_string expr)
      :: found
    else found
  in
  (* The same defect can surface once per occurrence; report each once. *)
  List.fold_left (fun acc d -> if List.mem d acc then acc else d :: acc) [] found
  |> List.rev

let check_string ?summary src =
  match Parser.parse_located src with
  | Error { Parser.message; offset } ->
      [
        Diag.make
          ~location:(Diag.Query_at { source = src; offset })
          ~code:"Q000" ~severity:Diag.Error message;
      ]
  | Ok expr -> check ?summary ~source:src expr
