module Ast = Imprecise_xpath.Ast
module Fragment = Imprecise_xpath.Fragment
module Json = Imprecise_obs.Obs.Json

type route = Direct | Enumerate

type t = {
  route : route;
  cost : Cost.t;
  obligations : string list;
  reasons : Diag.t list;
  shards : int;
}

let route_to_string = function Direct -> "direct" | Enumerate -> "enumerate"

let reason ?source code detail =
  let location =
    match source with
    | Some src -> Diag.Query_at { source = src; offset = None }
    | None -> Diag.Nowhere
  in
  Diag.make ~location ~code ~severity:Diag.Info detail

let reasonf ?source code fmt = Format.kasprintf (reason ?source code) fmt

(* Shard hint for the enumeration fallback, sized from the world bound:
   one domain per ~50k worlds once past 100k, capped by the machine. *)
let shards_of worlds =
  if worlds > 100_000. then
    let want =
      if Float.is_finite worlds then int_of_float (Float.ceil (worlds /. 50_000.))
      else max_int
    in
    max 1 (min want (Domain.recommended_domain_count ()))
  else 1

let is_strict_prefix prefix p =
  let rec go prefix p =
    match (prefix, p) with
    | [], _ :: _ -> true
    | [], [] -> false
    | x :: prefix, y :: p -> String.equal x y && go prefix p
    | _ :: _, [] -> false
  in
  go prefix p

let plan ~summary ?source ?(local_limit = Fragment.default_local_limit) expr : t =
  let cost = Cost.analyze summary expr in
  let enumerate reasons =
    { route = Enumerate; cost; obligations = []; reasons; shards = shards_of cost.Cost.worlds }
  in
  match Fragment.classify expr with
  | Error { Fragment.code; detail } -> enumerate [ reason ?source code detail ]
  | Ok shape -> (
      let automaton = Fragment.automaton shape in
      let occurrences =
        List.filter (Fragment.occurrence_path automaton) (Summary.paths summary)
      in
      let nested =
        List.find_opt
          (fun p -> List.exists (fun q -> is_strict_prefix p q) occurrences)
          occurrences
      in
      match nested with
      | Some p ->
          enumerate
            [
              reasonf ?source "P005"
                "binder occurrences can nest (an occurrence below %s) — independence \
                 of occurrence emissions would be lost"
                (Summary.path_to_string p);
            ]
      | None ->
          let max_local =
            List.fold_left
              (fun acc p ->
                match Summary.find summary p with
                | Some (e : Summary.entry) -> Float.max acc e.Summary.subtree_worlds
                | None -> acc)
              0. occurrences
          in
          if max_local > local_limit then
            enumerate
              [
                reasonf ?source "P006"
                  "an occurrence subtree has %g local worlds (limit %g)" max_local
                  local_limit;
              ]
          else
            {
              route = Direct;
              cost;
              obligations =
                [
                  Printf.sprintf
                    "binder occurrences never nest (%d occurrence path(s) over %d \
                     summary paths)"
                    (List.length occurrences)
                    (List.length (Summary.paths summary));
                  Printf.sprintf
                    "every occurrence subtree has at most %g local worlds (limit %g)"
                    max_local local_limit;
                  "local predicates and value steps stay inside each occurrence's \
                   subtree (Fragment.classify)";
                ];
              reasons = [];
              shards = 1;
            })

let to_json t =
  Json.Obj
    [
      ("route", Json.String (route_to_string t.route));
      ("cost", Cost.to_json t.cost);
      ("obligations", Json.List (List.map (fun o -> Json.String o) t.obligations));
      ("reasons", Json.List (List.map Diag.to_json t.reasons));
      ("shards", Json.Int t.shards);
    ]

let pp ppf t =
  Format.fprintf ppf "route=%s shards=%d %a" (route_to_string t.route) t.shards Cost.pp
    t.cost;
  List.iter
    (fun (d : Diag.t) -> Format.fprintf ppf "@.  %s: %s" d.Diag.code d.Diag.message)
    t.reasons;
  List.iter (fun o -> Format.fprintf ppf "@.  proves: %s" o) t.obligations
