module Ast = Imprecise_xpath.Ast
module Json = Imprecise_obs.Obs.Json

type interval = { lo : float; hi : float }

type t = {
  answers : interval;
  per_world : interval;
  worlds : float;
  tracked : bool;
}

(* Every proper prefix of [p] followed by [p] itself: the chain of card
   entries whose product bounds the per-world element count at [p]. *)
let chain p =
  let rec go acc rev = function
    | [] -> List.rev acc
    | x :: rest -> go ((List.rev rev @ [ x ]) :: acc) (x :: rev) rest
  in
  go [] [] p

let card_product s pick p =
  List.fold_left
    (fun acc q ->
      match Summary.find s q with
      | Some (e : Summary.entry) -> acc *. float_of_int (pick e.Summary.card)
      | None -> 0.)
    1. (chain p)

let entry_stat s p f ~default =
  match Summary.find s p with Some e -> f e | None -> default

(* Upper bound on distinct amalgamated answer values contributed by this
   shape across all worlds together: every selected node in every world is
   a projection of one representation instance, and an element instance
   emits at most one string value per world of its own subtree (its value
   is determined by the choices made inside it), so it contributes at most
   [subtree_worlds] distinct values. Text and attribute values are literal
   strings, fixed per instance. *)
let amalgamated_bound s (st : Query_check.state) =
  match st with
  | Query_check.El p ->
      entry_stat s p
        (fun e ->
          float_of_int e.Summary.instances *. Float.max 1. e.Summary.subtree_worlds)
        ~default:0.
  | Query_check.At (p, _) ->
      entry_stat s p (fun e -> float_of_int e.Summary.instances) ~default:0.
  | Query_check.Tx p -> entry_stat s p (fun e -> float_of_int e.Summary.texts) ~default:0.

(* Nodes a single world can select at this shape: interval arithmetic over
   the per-path cardinality chain, capped by the representation count
   (which also bounds any one world). *)
let per_world_hi s (st : Query_check.state) =
  match st with
  | Query_check.El p | Query_check.At (p, _) ->
      Float.min
        (card_product s (fun c -> c.Summary.cmax) p)
        (entry_stat s p (fun e -> float_of_int e.Summary.instances) ~default:0.)
  | Query_check.Tx p -> entry_stat s p (fun e -> float_of_int e.Summary.texts) ~default:0.

let per_world_lo s (st : Query_check.state) =
  match st with
  | Query_check.El p -> card_product s (fun c -> c.Summary.cmin) p
  | Query_check.Tx _ | Query_check.At _ -> 0.

(* Lower bounds are only claimed for queries the abstract interpretation
   tracks exactly: plain downward location paths without predicates select
   precisely the elements whose label path matches, so a certain path
   guarantees answers in every world. Anything with predicates, upward
   axes or computation may filter everything out. *)
let guaranteed_shape (e : Ast.expr) =
  match e with
  | Ast.Path { steps; _ } ->
      List.for_all
        (fun ((_, s) : bool * Ast.step) ->
          s.Ast.predicates = []
          &&
          match s.Ast.axis with
          | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Self
          | Ast.Attribute ->
              true
          | _ -> false)
        steps
  | _ -> false

let analyze (s : Summary.t) (e : Ast.expr) : t =
  let worlds =
    entry_stat s [] (fun en -> en.Summary.subtree_worlds) ~default:1.
  in
  match Query_check.nodeset_states s (Some [ Query_check.El [] ]) e with
  | Some states ->
      let sum f = List.fold_left (fun acc st -> acc +. f s st) 0. states in
      let exact = guaranteed_shape e in
      let pw_lo =
        if exact then
          List.fold_left
            (fun acc st ->
              match st with
              | Query_check.El p
                when entry_stat s p (fun en -> en.Summary.certain) ~default:false ->
                  acc +. per_world_lo s st
              | _ -> acc)
            0. states
        else 0.
      in
      let pw_hi = sum per_world_hi in
      (* each world contributes at most pw_hi values, so the cross-world
         distinct count is also capped by worlds * pw_hi *)
      let am_hi = Float.min (sum amalgamated_bound) (worlds *. pw_hi) in
      {
        answers = { lo = (if pw_lo >= 1. then 1. else 0.); hi = am_hi };
        per_world = { lo = pw_lo; hi = pw_hi };
        worlds;
        tracked = true;
      }
  | None ->
      (* Not a node-set (or untrackable): one value per world, so the
         amalgamated answer count is bounded by the world count. *)
      {
        answers = { lo = 0.; hi = worlds };
        per_world = { lo = 0.; hi = 1. };
        worlds;
        tracked = false;
      }

let interval_to_json { lo; hi } =
  Json.Obj [ ("lo", Json.Float lo); ("hi", Json.Float hi) ]

let to_json t =
  Json.Obj
    [
      ("answers", interval_to_json t.answers);
      ("per_world", interval_to_json t.per_world);
      ("worlds", Json.Float t.worlds);
      ("tracked", Json.Bool t.tracked);
    ]

let pp ppf t =
  Format.fprintf ppf "answers=[%g,%g] per_world=[%g,%g] worlds<=%g%s"
    t.answers.lo t.answers.hi t.per_world.lo t.per_world.hi t.worlds
    (if t.tracked then "" else " (untracked)")
