module Pxml = Imprecise_pxml.Pxml
module Json = Imprecise_obs.Obs.Json

type path = string list

type card = { cmin : int; cmax : int }

type entry = {
  card : card;
  certain : bool;
  has_text : bool;
  attrs : string list;
  instances : int;
  texts : int;
  subtree_worlds : float;
}

module PathMap = Map.Make (struct
  type t = string list

  let compare = Stdlib.compare
end)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = entry PathMap.t

let empty = PathMap.empty

(* Accumulators, mutated during the single walk of the representation. *)

type elem_acc = {
  mutable instances : int;
  mutable has_text : bool;
  mutable attrs : SSet.t;
  mutable texts : int;
  mutable worlds : float;  (* max instance subtree world count *)
}

type card_acc = {
  mutable cmin : int;
  mutable cmax : int;
  mutable recorded_in : int;  (* parent instances that contained the label *)
}

(* Per-label (min, max) occurrence counts among the direct children of one
   element instance. Each probability node chooses independently, so the
   bounds are min/max over the choices of each dist, summed across dists. *)
let instance_label_bounds (dists : Pxml.dist list) : (int * int) SMap.t =
  let bounds_of_dist (d : Pxml.dist) =
    let counts_of_choice (c : Pxml.choice) =
      List.fold_left
        (fun m n ->
          match n with
          | Pxml.Elem (name, _, _) ->
              SMap.update name (fun v -> Some (1 + Option.value v ~default:0)) m
          | Pxml.Text _ -> m)
        SMap.empty c.Pxml.nodes
    in
    let per_choice = List.map counts_of_choice d.Pxml.choices in
    let labels =
      List.fold_left
        (fun s m -> SMap.fold (fun k _ s -> SSet.add k s) m s)
        SSet.empty per_choice
    in
    SSet.fold
      (fun l acc ->
        let counts =
          List.map (fun m -> Option.value (SMap.find_opt l m) ~default:0) per_choice
        in
        let mn = List.fold_left min max_int counts in
        let mx = List.fold_left max 0 counts in
        SMap.add l (mn, mx) acc)
      labels SMap.empty
  in
  List.fold_left
    (fun acc d ->
      SMap.union
        (fun _ (amn, amx) (bmn, bmx) -> Some (amn + bmn, amx + bmx))
        acc (bounds_of_dist d))
    SMap.empty dists

let dists_have_text dists =
  List.exists
    (fun (d : Pxml.dist) ->
      List.exists
        (fun (c : Pxml.choice) ->
          List.exists (function Pxml.Text _ -> true | Pxml.Elem _ -> false) c.Pxml.nodes)
        d.Pxml.choices)
    dists

let of_dists (root_dists : Pxml.dist list) : t =
  let elems : (path, elem_acc) Hashtbl.t = Hashtbl.create 64 in
  let cards : (path, card_acc) Hashtbl.t = Hashtbl.create 64 in
  let elem_acc path =
    match Hashtbl.find_opt elems path with
    | Some a -> a
    | None ->
        let a =
          { instances = 0; has_text = false; attrs = SSet.empty; texts = 0; worlds = 0. }
        in
        Hashtbl.add elems path a;
        a
  in
  (* One element instance (or the document node) at [path] with content
     [dists]. Possibilities are walked regardless of probability — even a
     zero-probability subtree is recorded, keeping the summary a sound
     over-approximation of every world. *)
  let rec visit_instance path attrs dists : float =
    let acc = elem_acc path in
    acc.instances <- acc.instances + 1;
    if dists_have_text dists then acc.has_text <- true;
    List.iter (fun (name, _) -> acc.attrs <- SSet.add name acc.attrs) attrs;
    let bounds = instance_label_bounds dists in
    SMap.iter
      (fun label (mn, mx) ->
        let child = path @ [ label ] in
        match Hashtbl.find_opt cards child with
        | Some c ->
            c.cmin <- min c.cmin mn;
            c.cmax <- max c.cmax mx;
            c.recorded_in <- c.recorded_in + 1
        | None -> Hashtbl.add cards child { cmin = mn; cmax = mx; recorded_in = 1 })
      bounds;
    (* Recurse and compute this instance's subtree world count with
       exactly [Pxml.world_count]'s recursion (same fold order, so the
       floats are bit-identical to what the direct evaluator checks its
       local limit against): product across content dists of the
       per-dist sum over choices of the product of node counts. *)
    let wc =
      List.fold_left
        (fun w (d : Pxml.dist) ->
          w
          *. List.fold_left
               (fun s (c : Pxml.choice) ->
                 s
                 +. List.fold_left
                      (fun p n ->
                        match n with
                        | Pxml.Elem (name, a, ds) ->
                            p *. visit_instance (path @ [ name ]) a ds
                        | Pxml.Text _ ->
                            acc.texts <- acc.texts + 1;
                            p)
                      1. c.Pxml.nodes)
               0. d.Pxml.choices)
        1. dists
    in
    if wc > acc.worlds then acc.worlds <- wc;
    wc
  in
  ignore (visit_instance [] [] root_dists);
  (* A label absent from some parent instances can have zero occurrences
     under those parents, so its lower bound drops to 0. *)
  Hashtbl.iter
    (fun path (c : card_acc) ->
      let parent = List.filteri (fun i _ -> i < List.length path - 1) path in
      let parent_instances =
        match Hashtbl.find_opt elems parent with Some a -> a.instances | None -> 0
      in
      if c.recorded_in < parent_instances then c.cmin <- 0)
    cards;
  (* Certainty flows top-down: the document node is certain; a child path is
     certain when its parent is and at least one occurrence is guaranteed. *)
  let certain_memo : (path, bool) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.add certain_memo [] true;
  let rec certain path =
    match Hashtbl.find_opt certain_memo path with
    | Some c -> c
    | None ->
        let parent = List.filteri (fun i _ -> i < List.length path - 1) path in
        let c =
          certain parent
          && match Hashtbl.find_opt cards path with Some k -> k.cmin >= 1 | None -> false
        in
        Hashtbl.add certain_memo path c;
        c
  in
  Hashtbl.fold
    (fun path (a : elem_acc) map ->
      let card =
        match Hashtbl.find_opt cards path with
        | Some c -> { cmin = c.cmin; cmax = c.cmax }
        | None -> { cmin = 1; cmax = 1 } (* the document node *)
      in
      PathMap.add path
        {
          card;
          certain = certain path;
          has_text = a.has_text;
          attrs = SSet.elements a.attrs;
          instances = a.instances;
          texts = a.texts;
          subtree_worlds = a.worlds;
        }
        map)
    elems PathMap.empty

let of_doc (d : Pxml.doc) = of_dists [ d ]

let of_tree t = of_doc (Pxml.doc_of_tree t)

let parent_of path = List.filteri (fun i _ -> i < List.length path - 1) path

let merge a b =
  if PathMap.is_empty a then b
  else if PathMap.is_empty b then a
  else
    let union_sorted xs ys = SSet.elements (SSet.union (SSet.of_list xs) (SSet.of_list ys)) in
    PathMap.merge
      (fun path ea eb ->
        match (ea, eb) with
        | Some ea, Some eb ->
            Some
              {
                card =
                  {
                    cmin = min ea.card.cmin eb.card.cmin;
                    cmax = max ea.card.cmax eb.card.cmax;
                  };
                certain = ea.certain && eb.certain;
                has_text = ea.has_text || eb.has_text;
                attrs = union_sorted ea.attrs eb.attrs;
                instances = ea.instances + eb.instances;
                texts = ea.texts + eb.texts;
                subtree_worlds = Float.max ea.subtree_worlds eb.subtree_worlds;
              }
        | Some e, None | None, Some e ->
            (* Present on one side only: if the parent exists on both sides,
               the other side's parents have zero occurrences, so the lower
               bound drops and certainty is lost. If the parent is also
               one-sided, the cardinality stays conditional on the parent. *)
            let parent = parent_of path in
            if path <> [] && PathMap.mem parent a && PathMap.mem parent b then
              Some { e with card = { e.card with cmin = 0 }; certain = false }
            else Some { e with certain = path = [] && e.certain }
        | None, None -> None)
      a b

let find t path = PathMap.find_opt path t

let mem t path = PathMap.mem path t

let labels_under t path =
  let n = List.length path in
  PathMap.fold
    (fun p _ acc ->
      if List.length p = n + 1 && List.filteri (fun i _ -> i < n) p = path then
        match List.nth_opt p n with Some l -> l :: acc | None -> acc
      else acc)
    t []
  |> List.sort_uniq String.compare

let has_text t path =
  match find t path with Some (e : entry) -> e.has_text | None -> false

let attrs t path = match find t path with Some (e : entry) -> e.attrs | None -> []

let paths t = PathMap.fold (fun p _ acc -> if p = [] then acc else p :: acc) t [] |> List.rev

let is_strict_prefix prefix p =
  let rec go prefix p =
    match (prefix, p) with
    | [], _ :: _ -> true
    | [], [] -> false
    | x :: prefix, y :: p -> x = y && go prefix p
    | _ :: _, [] -> false
  in
  go prefix p

let descendant_paths t prefix =
  PathMap.fold (fun p _ acc -> if is_strict_prefix prefix p then p :: acc else acc) t []
  |> List.rev

let path_to_string = function [] -> "/" | p -> "/" ^ String.concat "/" p

let pp ppf t =
  PathMap.iter
    (fun p e ->
      Format.fprintf ppf "%s  card=[%d,%d]%s%s%s  instances=%d@."
        (path_to_string p) e.card.cmin e.card.cmax
        (if e.certain then " certain" else " possible")
        (if e.has_text then " text" else "")
        (match e.attrs with [] -> "" | a -> " attrs=" ^ String.concat "," a)
        e.instances)
    t

let to_json t =
  let entry_json p e =
    Json.Obj
      [
        ("path", Json.String (path_to_string p));
        ("cmin", Json.Int e.card.cmin);
        ("cmax", Json.Int e.card.cmax);
        ("certain", Json.Bool e.certain);
        ("has_text", Json.Bool e.has_text);
        ("attrs", Json.List (List.map (fun a -> Json.String a) e.attrs));
        ("instances", Json.Int e.instances);
        ("texts", Json.Int e.texts);
        ("subtree_worlds", Json.Float e.subtree_worlds);
      ]
  in
  Json.Obj
    [ ("paths", Json.List (PathMap.fold (fun p e acc -> entry_json p e :: acc) t [] |> List.rev)) ]
