module Pxml = Imprecise_pxml.Pxml

(* Coarse tolerance the decoder applies to probability sums; drift beyond
   [Pxml.epsilon] but inside this is D004, beyond it D003. *)
let decoder_tolerance = 1e-6

let prob_component i = Printf.sprintf "prob[%d]" i

let poss_component j = Printf.sprintf "poss[%d]" j

let reserved_tags = [ "p:prob"; "p:poss" ]

let lint (doc : Pxml.doc) : Diag.t list =
  let diags = ref [] in
  let emit ~code ~severity ~path fmt =
    Format.kasprintf
      (fun message ->
        diags :=
          Diag.make ~location:(Diag.Doc_path (List.rev path)) ~code ~severity message
          :: !diags)
      fmt
  in
  let is_certain_dist (d : Pxml.dist) =
    match d.Pxml.choices with
    | [ { Pxml.prob; _ } ] -> Float.abs (prob -. 1.) <= decoder_tolerance
    | _ -> false
  in
  (* [rev_path] grows towards the root; locations reverse it back. *)
  let rec lint_dist rev_path i (d : Pxml.dist) =
    let path = prob_component i :: rev_path in
    (match d.Pxml.choices with
    | [] ->
        emit ~code:"D002" ~severity:Diag.Error ~path
          "probability node has no possibilities"
    | choices ->
        let sum = List.fold_left (fun acc (c : Pxml.choice) -> acc +. c.Pxml.prob) 0. choices in
        let drift = Float.abs (sum -. 1.) in
        if drift > decoder_tolerance then
          emit ~code:"D003" ~severity:Diag.Error ~path
            "possibility probabilities sum to %g, not 1" sum
        else if drift > Pxml.epsilon then
          emit ~code:"D004" ~severity:Diag.Warning ~path
            "possibility probabilities sum to %.12g: drift %g exceeds epsilon but is \
             inside the decoder tolerance"
            sum drift;
        List.iteri
          (fun j0 (c : Pxml.choice) ->
            let cpath = poss_component (j0 + 1) :: path in
            if c.Pxml.prob < -.Pxml.epsilon || c.Pxml.prob > 1. +. Pxml.epsilon then
              emit ~code:"D001" ~severity:Diag.Error ~path:cpath
                "probability %g is outside [0, 1]" c.Pxml.prob
            else if Float.abs c.Pxml.prob <= Pxml.epsilon then
              emit ~code:"D005" ~severity:Diag.Warning ~path:cpath
                "possibility has probability 0: dead weight the enumerator skips but \
                 every walk pays for")
          choices;
        (* Deep-equal siblings: the choice is not really a choice. *)
        List.iteri
          (fun j0 (c : Pxml.choice) ->
            let rec first_equal k = function
              | [] -> None
              | (c' : Pxml.choice) :: rest ->
                  if k < j0 && List.equal Pxml.equal_node c.Pxml.nodes c'.Pxml.nodes then
                    Some (k + 1)
                  else first_equal (k + 1) rest
            in
            match first_equal 0 choices with
            | Some k when k <= j0 ->
                emit ~code:"D006" ~severity:Diag.Warning
                  ~path:(poss_component (j0 + 1) :: path)
                  "possibility %d is deep-equal to possibility %d: compaction was \
                   never run"
                  (j0 + 1) k
            | _ -> ())
          choices);
    List.iteri
      (fun j0 (c : Pxml.choice) ->
        let cpath = poss_component (j0 + 1) :: path in
        List.iter (lint_node cpath) c.Pxml.nodes)
      d.Pxml.choices
  and lint_node rev_path (n : Pxml.node) =
    match n with
    | Pxml.Text _ -> ()
    | Pxml.Elem (name, _, dists) ->
        let path = name :: rev_path in
        if List.mem name reserved_tags then
          emit ~code:"D007" ~severity:Diag.Error ~path
            "element uses reserved codec tag <%s>" name;
        (* Adjacent certain probability nodes could be one. *)
        let rec adjacent i = function
          | a :: (b :: _ as rest) ->
              if is_certain_dist a && is_certain_dist b then
                emit ~code:"D008" ~severity:Diag.Info ~path:(prob_component (i + 1) :: path)
                  "adjacent certain probability nodes %d and %d can be merged" i (i + 1);
              adjacent (i + 1) rest
          | _ -> ()
        in
        adjacent 1 dists;
        List.iteri (fun i0 d -> lint_dist path (i0 + 1) d) dists
  in
  lint_dist [] 1 doc;
  List.rev !diags
