(** Linter for probabilistic documents: what {!Imprecise_pxml.Codec.decode}
    tolerates but shouldn't ship.

    Locations are {!Diag.Doc_path}s whose components are element labels
    interleaved with [prob[i]]/[poss[j]] markers (1-based) naming the
    probability node and possibility on the way down.

    Codes reported (catalogue in [doc/analysis.md]):
    - [D001] (error): a probability outside [0, 1];
    - [D002] (error): a probability node with no possibilities;
    - [D003] (error): sibling probabilities summing to something other
      than 1, beyond the coarse decoder tolerance (1e-6);
    - [D004] (warning): probability sum drifting from 1 by more than
      {!Imprecise_pxml.Pxml.epsilon} while still inside the decoder
      tolerance — usually an un-normalised merge;
    - [D005] (warning): a zero-probability possibility — dead weight the
      world enumerator skips but every walk still pays for;
    - [D006] (warning): deep-equal sibling possibilities — compaction was
      never run, the choice is not really a choice;
    - [D007] (error): reserved codec tags ([p:prob]/[p:poss]) used as
      element names inside the payload;
    - [D008] (info): degenerate nesting — a single certain possibility
      wrapping only probability nodes, collapsible without changing the
      distribution. *)

(** [lint d] runs every document check and returns all findings, in
    document order. *)
val lint : Imprecise_pxml.Pxml.doc -> Diag.t list
