(** Static cost and cardinality bounds for a query against a path summary.

    [analyze] abstractly interprets the query over the summary the way
    {!Query_check} does, then applies interval arithmetic over the
    DataGuide's per-path cardinality/certainty bounds to the resulting
    shape set.

    Soundness contract (fuzz-certified in [test/test_differential.ml]):

    - [worlds] is an upper bound on the possible-world enumerations any
      evaluation of any query over a summarised document can perform
      (the counter [pquery.worlds_enumerated] never exceeds it for one
      query) — it is the document's raw choice-combination count,
      zero-probability choices included.
    - [answers.hi] bounds the number of distinct values in the
      amalgamated ranked answer: every selected node in every world is a
      projection of one representation instance, and an element instance
      emits at most one string value per world of its own subtree, so
      summing [instances * subtree_worlds] per element shape (texts and
      attributes are fixed strings: plain [instances]) covers all worlds
      together; the total is additionally capped by
      [worlds * per_world.hi].
    - [per_world.hi] bounds the node-set size any single world can
      produce; [per_world.lo] (and [answers.lo]) are only non-zero for
      plain downward predicate-free paths over certain entries, where the
      abstract shapes are exact.

    Bounds saturate to [infinity] rather than overflow; lower bounds are
    conservative (0 means "unknown", never "proved empty" — that is
    {!Query_check.statically_empty}'s job). *)

type interval = { lo : float; hi : float }

type t = {
  answers : interval;  (** distinct values in the amalgamated answer *)
  per_world : interval;  (** node-set size within any single world *)
  worlds : float;  (** worlds an enumeration fallback may walk *)
  tracked : bool;
      (** whether the shape analysis tracked the result (false: the query
          is not a node-set expression, and only [worlds] is informative) *)
}

val analyze : Summary.t -> Imprecise_xpath.Ast.expr -> t

val to_json : t -> Imprecise_obs.Obs.Json.t

val pp : Format.formatter -> t -> unit
