(* IMPrECISE — "good is good enough" probabilistic XML data integration.
   Facade over the subsystem libraries; see imprecise.mli for the tour. *)

module Xml = Imprecise_xml
module Tree = Imprecise_xml.Tree
module Dtd = Imprecise_xml.Dtd
module Pxml = Imprecise_pxml.Pxml
module Worlds = Imprecise_pxml.Worlds
module Compact = Imprecise_pxml.Compact
module Codec = Imprecise_pxml.Codec
module Bincodec = Imprecise_pxml.Bincodec
module Intern = Imprecise_pxml.Intern
module Xpath = Imprecise_xpath
module Oracle = Imprecise_oracle.Oracle
module Decision_cache = Imprecise_oracle.Decision_cache
module Similarity = Imprecise_oracle.Similarity
module Integrate = Imprecise_integrate.Integrate
module Matching = Imprecise_integrate.Matching
module Blocking = Imprecise_integrate.Blocking
module Pquery = Imprecise_pquery.Pquery
module Answer = Imprecise_pquery.Answer
module Quality = Imprecise_quality.Quality
module Feedback = Imprecise_feedback.Feedback
module Data = struct
  module Movie = Imprecise_data.Movie
  module Workloads = Imprecise_data.Workloads
  module Addressbook = Imprecise_data.Addressbook
  module Publications = Imprecise_data.Publications
  module Prng = Imprecise_data.Prng
  module Random_docs = Imprecise_data.Random_docs
end
module Store = Imprecise_store.Store
module Rulesets = Rulesets
module Obs = Imprecise_obs.Obs
module Resilience = struct
  module Budget = Imprecise_resilience.Budget
  module Retry = Imprecise_resilience.Retry
  module Degrade = Imprecise_resilience.Degrade
  module Chaos = Imprecise_resilience.Chaos
end
module Analyze = struct
  module Diag = Imprecise_analyze.Diag
  module Summary = Imprecise_analyze.Summary
  module Query_check = Imprecise_analyze.Query_check
  module Doc_lint = Imprecise_analyze.Doc_lint
  module Cost = Imprecise_analyze.Cost
  module Plan = Imprecise_analyze.Plan
  module Rule_lint = Imprecise_analyze.Rule_lint
end

let parse_xml s =
  Result.map_error Xml.Parser.error_to_string (Xml.Parser.parse_string s)

let parse_xml_exn = Xml.Parser.parse_string_exn

let config_of_rules (rules : Rulesets.t) ~dtd ?factorize ?jobs ?blocker ?decisions
    ?budget () =
  Integrate.config ~oracle:rules.Rulesets.oracle ~reconcile:rules.Rulesets.reconcile ~dtd
    ?factorize ?jobs ?blocker ?decisions ?budget ()

let integrate ?(rules = Rulesets.full) ?(dtd = Dtd.empty) ?factorize ?blocker left right =
  Integrate.integrate (config_of_rules rules ~dtd ?factorize ?blocker ()) left right

let integration_stats ?(rules = Rulesets.full) ?(dtd = Dtd.empty) ?factorize ?blocker
    ?budget left right =
  Integrate.stats (config_of_rules rules ~dtd ?factorize ?blocker ?budget ()) left right

(* Fold a whole list of sources into one probabilistic document: ordinary
   integration for the first two, incremental integration for the rest. *)
let integrate_all ?(rules = Rulesets.full) ?(dtd = Dtd.empty) ?factorize ?blocker
    ?world_limit sources =
  match sources with
  | [] -> Error (Integrate.Root_mismatch ("(no", "sources)"))
  | [ only ] -> Ok (Pxml.doc_of_tree only)
  | first :: second :: rest ->
      let cfg = config_of_rules rules ~dtd ?factorize ?blocker () in
      Result.bind (Integrate.integrate cfg first second) (fun doc ->
          List.fold_left
            (fun acc source ->
              Result.bind acc (fun doc ->
                  Integrate.integrate_incremental cfg ?world_limit doc source))
            (Ok doc) rest)

(* Batch integration through the parallel engine: one decision cache for
   the whole fold, so a subtree pair decided while integrating source k is
   free when source k+1 (or a later world of the same incremental step)
   meets it again. The cache is created fresh here — it must not outlive
   the rule set it memoizes. *)
let integrate_many ?(rules = Rulesets.full) ?(dtd = Dtd.empty) ?factorize ?blocker
    ?world_limit ?jobs ?decisions ?budget sources =
  match sources with
  | [] -> Error (Integrate.Root_mismatch ("(no", "sources)"))
  | [ only ] -> Ok (Pxml.doc_of_tree only)
  | first :: second :: rest ->
      let decisions =
        match decisions with Some c -> c | None -> Decision_cache.create ()
      in
      let cfg =
        config_of_rules rules ~dtd ?factorize ?jobs ?blocker ~decisions ?budget ()
      in
      Result.bind (Integrate.integrate cfg first second) (fun doc ->
          List.fold_left
            (fun acc source ->
              Result.bind acc (fun doc ->
                  Integrate.integrate_incremental cfg ?world_limit doc source))
            (Ok doc) rest)

let rank = Pquery.rank

(* Merge the per-document summaries: sound for every document in the
   store, so one summary serves collection-wide query analysis. *)
let summarize_store store =
  List.fold_left
    (fun acc name ->
      match Store.get store name with
      | None -> acc
      | Some (Store.Probabilistic doc) ->
          Analyze.Summary.merge acc (Analyze.Summary.of_doc doc)
      | Some (Store.Certain tree) -> Analyze.Summary.merge acc (Analyze.Summary.of_tree tree))
    Analyze.Summary.empty (Store.names store)

(* The store knows each document's generation; the cache key needs it.
   This is the one place that dependency is tied together — Pquery cannot
   depend on Store. *)
let query_store ?budget ?strategy ?world_limit ?jobs ?top_k ?top_k_tolerance store name
    query =
  match Store.get store name with
  | None -> Error (Fmt.str "no document %S in store" name)
  | Some stored -> (
      let doc =
        match stored with
        | Store.Probabilistic doc -> doc
        | Store.Certain tree -> Pxml.doc_of_tree tree
      in
      let generation = Option.value ~default:0 (Store.generation store name) in
      match
        Pquery.rank_cached ?budget ?strategy ?world_limit ?jobs ?top_k ?top_k_tolerance
          ~collection:name ~generation doc query
      with
      | answers -> Ok answers
      | exception Pquery.Cannot_answer msg -> Error msg
      | exception Failure msg -> Error msg
      | exception Imprecise_resilience.Budget.Exceeded reason ->
          Error
            (Fmt.str "budget exceeded (%s); raise --timeout-ms/--max-worlds or use rank_graded"
               (Imprecise_resilience.Budget.reason_to_string reason)))

let explain = Pquery.explain

let query_certain = Xpath.Eval.select_strings

let node_count = Pxml.node_count

let world_count = Pxml.world_count
