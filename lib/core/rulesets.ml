module Oracle = Imprecise_oracle.Oracle

module Similarity = Imprecise_oracle.Similarity

type t = {
  name : string;
  oracle : Oracle.t;
  reconcile : string -> string -> string -> string option;
  description : string;
}

let no_reconcile _ _ _ = None

(* Director names in the two conventions denote the same string; keep the
   left (MPEG-7, "First Last") form. *)
let director_reconcile tag l r =
  if String.equal tag "director" && Similarity.name_similarity l r >= 0.95 then Some l
  else None

let title_threshold = 0.3

let generic =
  {
    name = "none";
    oracle = Oracle.make [ Oracle.deep_equal_rule ];
    reconcile = no_reconcile;
    description = "generic rules only (deep-equal, sibling distinctness)";
  }

let movie ?(genre = false) ?(title = false) ?(year = false) ?(director = false)
    ?(threshold = title_threshold) () =
  let rules =
    [ Oracle.deep_equal_rule ]
    @ (if genre then
         [
           Oracle.set_disjoint_rule ~tag:"movie" ~field:"genre";
           Oracle.text_key_rule ~tag:"genre";
         ]
       else [])
    @ (if title then
         [ Oracle.similarity_rule ~tag:"movie" ~field:"title" ~threshold () ]
       else [])
    @ (if year then [ Oracle.field_differs_rule ~tag:"movie" ~field:"year" ] else [])
    @
    if director then
      [ Oracle.text_match_rule ~tag:"director" ~same_above:0.95 ~diff_below:0.3 () ]
    else []
  in
  let default =
    if title then Oracle.field_similarity_prob ~field:"title" ()
    else Oracle.constant_prob 0.5
  in
  let parts =
    List.filter_map
      (fun (flag, n) -> if flag then Some n else None)
      [ (genre, "genre"); (title, "title"); (year, "year"); (director, "director") ]
  in
  let name = match parts with [] -> "none" | _ -> String.concat "+" parts in
  {
    name;
    oracle = Oracle.make ~default rules;
    reconcile = (if director then director_reconcile else no_reconcile);
    description = Fmt.str "generic rules plus the %s rule(s)" name;
  }

let table1 =
  [
    generic;
    movie ~genre:true ();
    movie ~title:true ();
    movie ~genre:true ~title:true ();
    movie ~genre:true ~title:true ~year:true ();
  ]

let full = movie ~genre:true ~title:true ~year:true ~director:true ()
