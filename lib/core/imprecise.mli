(** IMPrECISE — probabilistic XML data integration, after de Keijzer & van
    Keulen, ICDE 2008.

    The one-module tour:

    {[
      let left  = Imprecise.parse_xml_exn "<addressbook>...</addressbook>" in
      let right = Imprecise.parse_xml_exn "<addressbook>...</addressbook>" in
      let dtd   = Result.get_ok (Imprecise.Dtd.of_string "person: nm?, tel?") in
      match Imprecise.integrate ~rules:Imprecise.Rulesets.generic ~dtd left right with
      | Error e -> Fmt.epr "%a@." Imprecise.Integrate.pp_error e
      | Ok doc ->
          Fmt.pr "%d nodes, %g worlds@."
            (Imprecise.node_count doc) (Imprecise.world_count doc);
          Fmt.pr "%a" Imprecise.Answer.pp (Imprecise.rank doc "//person/nm")
    ]}

    Sub-modules re-export the full API of each subsystem: {!Xml} (trees,
    parser, printer, {!Dtd}), {!Pxml} (the probabilistic model, with
    {!Worlds}, {!Compact}, {!Codec}), {!Xpath} (the query language),
    {!Oracle} and {!Similarity} (knowledge rules), {!Integrate} and
    {!Matching} (probabilistic integration), {!Pquery}/{!Answer}
    (ranked answers), {!Quality}, {!Feedback}, {!Data} (workloads) and
    {!Store}. *)

module Xml = Imprecise_xml
module Tree = Imprecise_xml.Tree
module Dtd = Imprecise_xml.Dtd
module Pxml = Imprecise_pxml.Pxml
module Worlds = Imprecise_pxml.Worlds
module Compact = Imprecise_pxml.Compact
module Codec = Imprecise_pxml.Codec

(** Compact binary document codec — the on-disk v3 store format. *)
module Bincodec = Imprecise_pxml.Bincodec

(** Hash-consing of deep-equal subtrees (pointer-check equality, cached
    structural hashes). *)
module Intern = Imprecise_pxml.Intern

module Xpath = Imprecise_xpath
module Oracle = Imprecise_oracle.Oracle
module Decision_cache = Imprecise_oracle.Decision_cache
module Similarity = Imprecise_oracle.Similarity
module Integrate = Imprecise_integrate.Integrate
module Matching = Imprecise_integrate.Matching
module Blocking = Imprecise_integrate.Blocking
module Pquery = Imprecise_pquery.Pquery
module Answer = Imprecise_pquery.Answer
module Quality = Imprecise_quality.Quality
module Feedback = Imprecise_feedback.Feedback

module Data : sig
  module Movie = Imprecise_data.Movie
  module Workloads = Imprecise_data.Workloads
  module Addressbook = Imprecise_data.Addressbook
  module Publications = Imprecise_data.Publications
  module Prng = Imprecise_data.Prng
  module Random_docs = Imprecise_data.Random_docs
end

module Store = Imprecise_store.Store
module Rulesets = Rulesets

(** Telemetry: metrics registry, tracing spans, JSON snapshots (see
    doc/observability.md). *)
module Obs = Imprecise_obs.Obs

(** Resilience: deadlines and work budgets ({!Resilience.Budget}),
    retry with backoff ({!Resilience.Retry}), graceful degradation
    ({!Resilience.Degrade}) and scripted fault plans for chaos testing
    ({!Resilience.Chaos}). See doc/resilience.md. *)
module Resilience : sig
  module Budget = Imprecise_resilience.Budget
  module Retry = Imprecise_resilience.Retry
  module Degrade = Imprecise_resilience.Degrade
  module Chaos = Imprecise_resilience.Chaos
end

(** Static analysis: diagnostics, path summaries, query and document
    checks (see doc/analysis.md). *)
module Analyze : sig
  module Diag = Imprecise_analyze.Diag
  module Summary = Imprecise_analyze.Summary
  module Query_check = Imprecise_analyze.Query_check
  module Doc_lint = Imprecise_analyze.Doc_lint
  module Cost = Imprecise_analyze.Cost
  module Plan = Imprecise_analyze.Plan
  module Rule_lint = Imprecise_analyze.Rule_lint
end

(** [parse_xml s] parses a document, with the error rendered as a string. *)
val parse_xml : string -> (Tree.t, string) result

val parse_xml_exn : string -> Tree.t

(** [integrate ?rules ?dtd ?factorize left right] integrates two certain
    documents into a probabilistic one. Defaults: the {!Rulesets.full} rule
    set, no DTD knowledge, the paper-faithful non-factorised
    representation. [blocker] (default {!Blocking.All_pairs}) selects the
    candidate-indexing stage run in front of the Oracle — see {!Blocking}
    for the presets and their recall guarantees. *)
val integrate :
  ?rules:Rulesets.t ->
  ?dtd:Dtd.t ->
  ?factorize:bool ->
  ?blocker:Blocking.spec ->
  Tree.t ->
  Tree.t ->
  (Pxml.doc, Integrate.error) result

(** [integration_stats] — exact node/world counts of the would-be
    integration, without materialising it (works at any scale). [budget]
    bounds the candidate-grid work as in {!integrate_many}. *)
val integration_stats :
  ?rules:Rulesets.t ->
  ?dtd:Dtd.t ->
  ?factorize:bool ->
  ?blocker:Blocking.spec ->
  ?budget:Imprecise_resilience.Budget.t ->
  Tree.t ->
  Tree.t ->
  (Integrate.summary, Integrate.error) result

(** [integrate_all ?rules ?dtd ?factorize ?world_limit sources] folds any
    number of sources into one probabilistic document: ordinary integration
    for the first two, {!Integrate.integrate_incremental} for each further
    source. A single source yields its certain embedding; an empty list is
    an error. *)
val integrate_all :
  ?rules:Rulesets.t ->
  ?dtd:Dtd.t ->
  ?factorize:bool ->
  ?blocker:Blocking.spec ->
  ?world_limit:float ->
  Tree.t list ->
  (Pxml.doc, Integrate.error) result

(** [integrate_many ?jobs sources] is {!integrate_all} through the parallel
    incremental engine: every candidate grid is scored by [jobs] OCaml
    domains ({!Integrate.config}'s [jobs] — bit-identical to sequential for
    any value), and one {!Decision_cache} is shared across the whole fold,
    so subtree pairs already decided for an earlier source are not
    re-decided for later ones. By default the cache is created per call and
    dies with it (rule sets are caller-supplied, so it must not persist);
    pass [decisions] to reuse one across folds {e of the same rule set} —
    the fold is atomic with respect to it: on [Error] the cache holds only
    sound individual verdicts, never partial fold state.

    [budget] ({!Resilience.Budget}) bounds the whole fold — candidate-grid
    cells and prior-world expansions tick it; a trip yields
    [Error (Budget_exceeded _)] and, as with any mid-fold failure, no
    partial result escapes. *)
val integrate_many :
  ?rules:Rulesets.t ->
  ?dtd:Dtd.t ->
  ?factorize:bool ->
  ?blocker:Blocking.spec ->
  ?world_limit:float ->
  ?jobs:int ->
  ?decisions:Decision_cache.t ->
  ?budget:Imprecise_resilience.Budget.t ->
  Tree.t list ->
  (Pxml.doc, Integrate.error) result

(** [rank doc query] is the amalgamated ranked answer (see {!Pquery}).
    [jobs] parallelises the enumeration fallback over OCaml domains;
    [top_k] keeps only the leading answers, stopping enumeration early
    when they are provably final. [static_check] (default [true]) prunes
    statically-empty queries without evaluation (see {!Pquery.rank}). *)
val rank :
  ?budget:Imprecise_resilience.Budget.t ->
  ?strategy:Pquery.strategy ->
  ?static_check:bool ->
  ?world_limit:float ->
  ?jobs:int ->
  ?top_k:int ->
  ?top_k_tolerance:float ->
  Pxml.doc ->
  string ->
  Answer.t list

(** [summarize_store store] merges the path summaries of every document in
    the store — a single {!Analyze.Summary.t} that soundly over-approximates
    all of them, suitable for collection-wide query analysis. *)
val summarize_store : Store.t -> Analyze.Summary.t

(** [query_store store name query] ranks a query over the named stored
    document through the process-wide answer cache: the store supplies the
    document and its {!Store.generation}, so answers computed before a
    [Store.put] of the same name are never served after it. Certain
    documents are queried as single-world probabilistic ones. [Error] on a
    missing name, an unparseable query, or a strategy that cannot answer
    ({!Pquery.Cannot_answer}). A [budget] trip is reported as [Error] too,
    with the cache left untouched. *)
val query_store :
  ?budget:Imprecise_resilience.Budget.t ->
  ?strategy:Pquery.strategy ->
  ?world_limit:float ->
  ?jobs:int ->
  ?top_k:int ->
  ?top_k_tolerance:float ->
  Store.t ->
  string ->
  string ->
  (Answer.t list, string) result

(** [explain ?k doc query value] classifies the most likely worlds by
    whether [value] is part of the answer there (see {!Pquery.explain}). *)
val explain : ?k:int -> Pxml.doc -> string -> string -> Pquery.explanation

(** [query_certain tree query] runs the query engine over a plain document. *)
val query_certain : Tree.t -> string -> string list

val node_count : Pxml.doc -> int

val world_count : Pxml.doc -> float
