(** Knowledge-rule presets: the rule sets of the paper's Table I, plus the
    full set used under typical conditions.

    Every preset includes the generic rules (deep-equal elements co-refer;
    sibling distinctness is enforced structurally by the matcher). The
    domain rules are the paper's:

    - {e genre rule} — no typos occur in genres, so movies with disjoint
      genre sets cannot match, and genre leaves merge by exact text;
    - {e title rule} — two movies cannot match if their titles are not
      sufficiently similar; when active, the Oracle also estimates match
      probabilities from title similarity instead of a flat 0.5;
    - {e year rule} — movies of different years cannot match;
    - {e director knowledge} (typical conditions) — director names match
      across conventions (["John Woo"] = ["Woo, John"]) and clearly
      different names do not. *)

module Oracle = Imprecise_oracle.Oracle

type t = {
  name : string;
  oracle : Oracle.t;
  reconcile : string -> string -> string -> string option;
      (** leaf-value reconciliation knowledge (see {!Imprecise_integrate.Integrate.config}) *)
  description : string;
}

val title_threshold : float
(** Similarity below which the title rule rejects a match (0.3). *)

(** Generic rules only — Table I's "none" row. *)
val generic : t

(** [movie ?genre ?title ?year ?director ?threshold ()] composes a movie
    rule set; all flags default to [false]; [threshold] (default
    {!title_threshold}) tunes the title rule's similarity cut-off. *)
val movie :
  ?genre:bool ->
  ?title:bool ->
  ?year:bool ->
  ?director:bool ->
  ?threshold:float ->
  unit ->
  t

(** The five Table I rows, in the paper's order: none; genre; title;
    genre+title; genre+title+year. *)
val table1 : t list

(** Everything on — used for typical conditions and the query demos. *)
val full : t
