(* Telemetry for the whole stack: counters and histograms in a registry
   (Metrics), nested timing spans with a pluggable sink (Trace), and the
   minimal JSON both render to (Json). Stdlib only — see obs.mli. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* Floats must round-trip and must not print as "nan"/"inf" (not JSON).
     %.17g round-trips any float; shorter forms win when exact. *)
  let float_repr f =
    if Float.is_nan f then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else if f = Float.infinity then "1e999"
    else if f = Float.neg_infinity then "-1e999"
    else
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let to_string ?indent v =
    let buf = Buffer.create 256 in
    let nl level =
      match indent with
      | None -> ()
      | Some n ->
          Buffer.add_char buf '\n';
          Buffer.add_string buf (String.make (n * level) ' ')
    in
    let rec go level v =
      match v with
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (float_repr f)
      | String s ->
          Buffer.add_char buf '"';
          escape buf s;
          Buffer.add_char buf '"'
      | List [] -> Buffer.add_string buf "[]"
      | List items ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i item ->
              if i > 0 then Buffer.add_char buf ',';
              nl (level + 1);
              go (level + 1) item)
            items;
          nl level;
          Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, item) ->
              if i > 0 then Buffer.add_char buf ',';
              nl (level + 1);
              Buffer.add_char buf '"';
              escape buf k;
              Buffer.add_string buf "\":";
              if indent <> None then Buffer.add_char buf ' ';
              go (level + 1) item)
            fields;
          nl level;
          Buffer.add_char buf '}'
    in
    go 0 v;
    Buffer.contents buf

  exception Bad of string

  (* Recursive-descent parser for the subset above. Escapes are decoded to
     their bytes; \uXXXX escapes — including surrogate pairs, which decode
     to the astral-plane scalar they encode — become UTF-8. Enough to
     validate and read back what [to_string] writes (and what other
     emitters write about non-ASCII labels) — which is what the bench
     smoke-check and snapshot tooling need. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              (if !pos >= n then fail "unterminated escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char buf '"'
                 | '\\' -> Buffer.add_char buf '\\'
                 | '/' -> Buffer.add_char buf '/'
                 | 'n' -> Buffer.add_char buf '\n'
                 | 'r' -> Buffer.add_char buf '\r'
                 | 't' -> Buffer.add_char buf '\t'
                 | 'b' -> Buffer.add_char buf '\b'
                 | 'f' -> Buffer.add_char buf '\012'
                 | 'u' ->
                     (* [read_hex] consumes the four digits after the 'u' at
                        [!pos], leaving [!pos] on the last digit (the shared
                        [incr pos] below then steps past it). *)
                     let read_hex () =
                       if !pos + 4 >= n then fail "truncated \\u escape";
                       let hex = String.sub s (!pos + 1) 4 in
                       String.iter
                         (fun c ->
                           match c with
                           | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                           | _ -> fail (Printf.sprintf "bad \\u escape \\u%s" hex))
                         hex;
                       pos := !pos + 4;
                       int_of_string ("0x" ^ hex)
                     in
                     let code = read_hex () in
                     let scalar =
                       if code >= 0xD800 && code <= 0xDBFF then
                         (* a high surrogate is only meaningful with the low
                            half immediately behind it *)
                         if !pos + 2 < n && s.[!pos + 1] = '\\' && s.[!pos + 2] = 'u'
                         then begin
                           pos := !pos + 2;
                           let low = read_hex () in
                           if low < 0xDC00 || low > 0xDFFF then
                             fail
                               (Printf.sprintf
                                  "high surrogate \\u%04x followed by \\u%04x, \
                                   which is not a low surrogate"
                                  code low);
                           0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                         end
                         else fail (Printf.sprintf "lone high surrogate \\u%04x" code)
                       else if code >= 0xDC00 && code <= 0xDFFF then
                         fail (Printf.sprintf "lone low surrogate \\u%04x" code)
                       else code
                     in
                     Buffer.add_utf_8_uchar buf (Uchar.of_int scalar)
                 | c -> fail (Printf.sprintf "bad escape %C" c));
              incr pos;
              go ()
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let number_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && number_char s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  fields ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  items (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (items [])
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

module Clock = struct
  (* The process clock behind events and flight records. lib/obs cannot
     depend on unix, so the default is [Sys.time] (CPU seconds); the CLI,
     bench, and tests install [Unix.gettimeofday] (or a fake) at startup.
     The slot is atomic so a read from a spawned domain is well-defined. *)
  let state : (unit -> float) Atomic.t = Atomic.make Sys.time
  let set now = Atomic.set state now
  let now () = (Atomic.get state) ()
end

module Quantile = struct
  (* Streaming quantile estimation over a fixed log-bucketed histogram
     (DDSketch-style). A positive value lands in bucket
     floor(ln v / ln gamma); reporting the bucket's geometric midpoint
     bounds the *relative* error of any quantile by sqrt(gamma) - 1,
     about 5.1% with alpha = 0.05. Buckets cover gamma^-128 .. gamma^192
     (roughly 2.7e-6 .. 2.2e8 in whatever unit is observed — picoseconds
     to days when the unit is milliseconds); values outside clamp to the
     edge buckets, zero and negative values count in a dedicated zero
     bucket. Memory is one fixed int array; no allocation per [add].

     Not internally synchronised: the one inside a [Metrics] histogram is
     guarded by that histogram's mutex, standalone uses (the [report]
     aggregator) are single-threaded. *)
  let alpha = 0.05
  let gamma = (1. +. alpha) /. (1. -. alpha)
  let log_gamma = Float.log gamma
  let offset = 128
  let nbuckets = 320

  type t = { mutable total : int; mutable zeros : int; counts : int array }

  let create () = { total = 0; zeros = 0; counts = Array.make nbuckets 0 }

  let bucket v =
    let i = offset + int_of_float (Float.floor (Float.log v /. log_gamma)) in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

  let add t v =
    t.total <- t.total + 1;
    if v <= 0. then t.zeros <- t.zeros + 1
    else begin
      let i = bucket v in
      t.counts.(i) <- t.counts.(i) + 1
    end

  let clear t =
    t.total <- 0;
    t.zeros <- 0;
    Array.fill t.counts 0 nbuckets 0

  let count t = t.total

  let estimate t q =
    if t.total = 0 then 0.
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.total))) in
      if rank <= t.zeros then 0.
      else begin
        let seen = ref t.zeros in
        let found = ref (-1) in
        let i = ref 0 in
        while !found < 0 && !i < nbuckets do
          seen := !seen + t.counts.(!i);
          if !seen >= rank then found := !i;
          incr i
        done;
        if !found < 0 then 0. (* unreachable: total = zeros + sum counts *)
        else Float.exp ((float_of_int (!found - offset) +. 0.5) *. log_gamma)
      end
    end
end

module Metrics = struct
  (* Domain-safety: instrumented code runs inside spawned domains (parallel
     integration and query enumeration), so counters are [Atomic.t] — an
     increment is one fetch-and-add, never a lost update — and the
     multi-field histograms take a per-histogram mutex. Registration (rare,
     usually at module load) is serialised by a per-registry mutex. *)
  type counter = { cname : string; n : int Atomic.t }

  type histogram = {
    hname : string;
    hlock : Mutex.t;
    mutable obs : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
    sketch : Quantile.t;
  }

  type registry = {
    lock : Mutex.t;
    counters : (string, counter) Hashtbl.t;
    histograms : (string, histogram) Hashtbl.t;
    (* registration order, oldest first, for stable rendering *)
    mutable rev_names : (string * [ `Counter | `Histogram ]) list;
  }

  let registry () =
    {
      lock = Mutex.create ();
      counters = Hashtbl.create 32;
      histograms = Hashtbl.create 16;
      rev_names = [];
    }

  let global = registry ()

  let counter ?(registry = global) name =
    Mutex.protect registry.lock @@ fun () ->
    match Hashtbl.find_opt registry.counters name with
    | Some c -> c
    | None ->
        let c = { cname = name; n = Atomic.make 0 } in
        Hashtbl.add registry.counters name c;
        registry.rev_names <- (name, `Counter) :: registry.rev_names;
        c

  let histogram ?(registry = global) name =
    Mutex.protect registry.lock @@ fun () ->
    match Hashtbl.find_opt registry.histograms name with
    | Some h -> h
    | None ->
        let h =
          {
            hname = name;
            hlock = Mutex.create ();
            obs = 0;
            sum = 0.;
            mn = Float.infinity;
            mx = Float.neg_infinity;
            sketch = Quantile.create ();
          }
        in
        Hashtbl.add registry.histograms name h;
        registry.rev_names <- (name, `Histogram) :: registry.rev_names;
        h

  let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.n by)

  let count c = Atomic.get c.n

  let observe h v =
    Mutex.protect h.hlock @@ fun () ->
    h.obs <- h.obs + 1;
    h.sum <- h.sum +. v;
    if v < h.mn then h.mn <- v;
    if v > h.mx then h.mx <- v;
    Quantile.add h.sketch v

  type hstats = {
    observations : int;
    sum : float;
    min : float;
    max : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  let stats h =
    Mutex.protect h.hlock @@ fun () ->
    {
      observations = h.obs;
      sum = h.sum;
      min = h.mn;
      max = h.mx;
      p50 = Quantile.estimate h.sketch 0.50;
      p90 = Quantile.estimate h.sketch 0.90;
      p99 = Quantile.estimate h.sketch 0.99;
    }

  let mean s = if s.observations = 0 then 0. else s.sum /. float_of_int s.observations

  type snapshot = {
    counters : (string * int) list;
    histograms : (string * hstats) list;
  }

  let snapshot ?(registry = global) () =
    (* the registry lock also excludes concurrent registration, so the
       Hashtbl reads below never race a resize *)
    Mutex.protect registry.lock @@ fun () ->
    let names = List.rev registry.rev_names in
    {
      counters =
        List.filter_map
          (function
            | name, `Counter ->
                Some (name, Atomic.get (Hashtbl.find registry.counters name).n)
            | _, `Histogram -> None)
          names;
      histograms =
        List.filter_map
          (function
            | name, `Histogram -> Some (name, stats (Hashtbl.find registry.histograms name))
            | _, `Counter -> None)
          names;
    }

  let reset ?(registry = global) () =
    Mutex.protect registry.lock @@ fun () ->
    Hashtbl.iter (fun _ c -> Atomic.set c.n 0) registry.counters;
    Hashtbl.iter
      (fun _ h ->
        Mutex.protect h.hlock @@ fun () ->
        h.obs <- 0;
        h.sum <- 0.;
        h.mn <- Float.infinity;
        h.mx <- Float.neg_infinity;
        Quantile.clear h.sketch)
      registry.histograms

  (* Renderers sort by metric name: snapshots keep registration order (the
     catalogue), but rendered output must diff stably across runs whose
     modules loaded in a different order. *)
  let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

  let to_text snap =
    let buf = Buffer.create 256 in
    List.iter
      (fun (name, n) -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name n))
      (by_name snap.counters);
    List.iter
      (fun (name, s) ->
        if s.observations = 0 then
          Buffer.add_string buf (Printf.sprintf "%-40s (no observations)\n" name)
        else
          Buffer.add_string buf
            (Printf.sprintf
               "%-40s n=%d sum=%g min=%g mean=%g p50=%g p90=%g p99=%g max=%g\n" name
               s.observations s.sum s.min (mean s) s.p50 s.p90 s.p99 s.max))
      (by_name snap.histograms);
    Buffer.contents buf

  let json_of_hstats s =
    if s.observations = 0 then Json.Obj [ ("n", Json.Int 0) ]
    else
      Json.Obj
        [
          ("n", Json.Int s.observations);
          ("sum", Json.Float s.sum);
          ("min", Json.Float s.min);
          ("mean", Json.Float (mean s));
          ("p50", Json.Float s.p50);
          ("p90", Json.Float s.p90);
          ("p99", Json.Float s.p99);
          ("max", Json.Float s.max);
        ]

  let to_json snap =
    Json.Obj
      [
        ( "counters",
          Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) (by_name snap.counters)) );
        ( "histograms",
          Json.Obj
            (List.map (fun (k, s) -> (k, json_of_hstats s)) (by_name snap.histograms))
        );
      ]
end

module Trace = struct
  type span = { name : string; start : float; stop : float; children : span list }

  let duration s = s.stop -. s.start

  type sink = span -> unit

  type frame = {
    fname : string;
    fstart : float;
    fid : int;
    mutable rev_children : span list;
  }

  (* Frame ids are minted process-wide so (root id, open-frame id) works as
     a (trace id, span id) pair for correlating events with spans; 0 is
     reserved for "no tracing active". *)
  let next_id = Atomic.make 1

  type state = {
    mutable sink : sink option;
    mutable now : unit -> float;
  }

  (* [Sys.time] (CPU seconds) is the only clock the stdlib has; real callers
     install a wall clock such as [Unix.gettimeofday]. *)
  let st = { sink = None; now = Sys.time }

  (* Every domain owns its own span stack. A single shared stack corrupts
     the tree as soon as a span opens inside a spawned domain (frames from
     different domains interleave); with domain-local stacks, spans opened
     off the installing domain nest among themselves and are delivered to
     the sink as separate *root* spans when their outermost span completes.
     They are never attached under another domain's currently-open span —
     cross-domain attachment would race with the parent closing. The sink
     itself is serialised by [sink_lock], so any sink (the collector
     included) may be driven from parallel code. *)
  let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

  let sink_lock = Mutex.create ()

  let enabled () = st.sink <> None

  let install ?(now = Sys.time) sink =
    st.sink <- Some sink;
    st.now <- now;
    Domain.DLS.get stack_key := []

  let uninstall () =
    st.sink <- None;
    Domain.DLS.get stack_key := []

  let with_span name f =
    match st.sink with
    | None -> f () (* the whole cost of disabled tracing: one load + branch *)
    | Some _ ->
        let stack = Domain.DLS.get stack_key in
        let frame =
          {
            fname = name;
            fstart = st.now ();
            fid = Atomic.fetch_and_add next_id 1;
            rev_children = [];
          }
        in
        stack := frame :: !stack;
        let finish () =
          let stop = st.now () in
          (* tolerate install/uninstall mid-span: pop up to our frame if it
             is still there, otherwise drop the record silently *)
          let rec pop = function
            | f :: rest when f == frame -> Some rest
            | _ :: rest -> pop rest
            | [] -> None
          in
          match pop !stack with
          | None -> ()
          | Some rest ->
              stack := rest;
              let span =
                {
                  name = frame.fname;
                  start = frame.fstart;
                  stop;
                  children = List.rev frame.rev_children;
                }
              in
              (match (!stack, st.sink) with
              | parent :: _, _ -> parent.rev_children <- span :: parent.rev_children
              | [], Some sink -> Mutex.protect sink_lock (fun () -> sink span)
              | [], None -> ())
        in
        Fun.protect ~finally:finish f

  (* (trace id, span id) of this domain's innermost open span: the trace id
     is the root frame's id, the span id the innermost frame's. (0, 0) when
     no span is open on this domain (or tracing is off, since with_span
     opens no frame then). *)
  let ids () =
    match !(Domain.DLS.get stack_key) with
    | [] -> (0, 0)
    | top :: _ as stack ->
        let rec root = function
          | [ f ] -> f
          | _ :: tl -> root tl
          | [] -> top
        in
        ((root stack).fid, top.fid)

  let collector () =
    (* roots only ever arrive under [sink_lock]; the read side takes the
       same lock so a collect during parallel spans is well-defined *)
    let rev_roots = ref [] in
    let sink span = rev_roots := span :: !rev_roots in
    (sink, fun () -> Mutex.protect sink_lock (fun () -> List.rev !rev_roots))

  let human_duration s =
    if s >= 1. then Printf.sprintf "%.2f s" s
    else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
    else if s >= 1e-6 then Printf.sprintf "%.2f us" (s *. 1e6)
    else Printf.sprintf "%.0f ns" (s *. 1e9)

  let to_text ?max_depth root =
    let buf = Buffer.create 256 in
    let rec go depth span =
      match max_depth with
      | Some d when depth > d -> ()
      | _ ->
          Buffer.add_string buf
            (Printf.sprintf "%s%-*s %10s\n"
               (String.make (2 * depth) ' ')
               (max 1 (40 - (2 * depth)))
               span.name
               (human_duration (duration span)));
          List.iter (go (depth + 1)) span.children
    in
    go 0 root;
    Buffer.contents buf

  let rec to_json span =
    Json.Obj
      [
        ("name", Json.String span.name);
        ("start_s", Json.Float span.start);
        ("dur_s", Json.Float (duration span));
        ("children", Json.List (List.map to_json span.children));
      ]

  (* Chrome trace-event JSON ("complete" events, ph "X") loadable by
     chrome://tracing and Perfetto. Timestamps are microseconds relative to
     the earliest root so the viewer opens at t=0; each root span (one per
     collected tree, i.e. per domain that closed an outermost span) gets its
     own tid row, and the viewer reconstructs nesting from ts/dur. *)
  let to_chrome roots =
    let t0 =
      List.fold_left (fun acc s -> Float.min acc s.start) Float.infinity roots
    in
    let t0 = if t0 = Float.infinity then 0. else t0 in
    let rec events tid acc span =
      let ev =
        Json.Obj
          [
            ("name", Json.String span.name);
            ("cat", Json.String "imprecise");
            ("ph", Json.String "X");
            ("ts", Json.Float ((span.start -. t0) *. 1e6));
            ("dur", Json.Float (duration span *. 1e6));
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
          ]
      in
      List.fold_left (events tid) (ev :: acc) span.children
    in
    let _, rev_events =
      List.fold_left
        (fun (tid, acc) root -> (tid + 1, events tid acc root))
        (1, []) roots
    in
    Json.Obj
      [
        ("traceEvents", Json.List (List.rev rev_events));
        ("displayTimeUnit", Json.String "ms");
      ]
end

module Event = struct
  (* The structured half of the flight recorder: timestamped, named events
     with JSON fields, kept in a lock-free bounded ring (last [capacity]
     survive) and optionally streamed to a JSONL sink. Emission is OFF by
     default — [emit] with no ring enabled is one atomic load and a branch,
     so instrumented hot paths cost ~nothing until someone is recording. *)
  type t = {
    ts : float;
    name : string;
    trace_id : int;
    span_id : int;
    fields : (string * Json.t) list;
  }

  let c_emitted = Metrics.counter "obs.events_emitted"
  let c_dropped = Metrics.counter "obs.events_dropped"

  type ring = {
    slots : t option Atomic.t array;
    seq : int Atomic.t; (* events ever emitted into this ring *)
    sink : (t -> unit) option;
  }

  let state : ring option Atomic.t = Atomic.make None
  let sink_lock = Mutex.create ()

  let enabled () = Atomic.get state <> None

  let enable ?(capacity = 4096) ?sink () =
    if capacity <= 0 then invalid_arg "Obs.Event.enable: capacity must be positive";
    Atomic.set state
      (Some
         {
           slots = Array.init capacity (fun _ -> Atomic.make None);
           seq = Atomic.make 0;
           sink;
         })

  let disable () = Atomic.set state None

  (* Lock-free: a slot index is claimed with one fetch-and-add on [seq],
     then the slot pointer is swapped to the new (immutable) record — a
     concurrent reader sees either the old record or the new one, never a
     torn mix. An emission beyond capacity overwrites the oldest slot, so
     drops are exactly max(0, emitted - capacity) and [c_dropped] counts
     them one-for-one. *)
  let emit ?(fields = []) name =
    match Atomic.get state with
    | None -> ()
    | Some r ->
        let trace_id, span_id = Trace.ids () in
        let ev = { ts = Clock.now (); name; trace_id; span_id; fields } in
        let i = Atomic.fetch_and_add r.seq 1 in
        let cap = Array.length r.slots in
        Atomic.set r.slots.(i mod cap) (Some ev);
        Metrics.incr c_emitted;
        if i >= cap then Metrics.incr c_dropped;
        (match r.sink with
        | None -> ()
        | Some f -> Mutex.protect sink_lock (fun () -> f ev))

  let emitted () =
    match Atomic.get state with None -> 0 | Some r -> Atomic.get r.seq

  (* Oldest-first surviving contents. Quiescent reads (after emitters have
     joined) see exactly the last min(emitted, capacity) events; a read
     racing emitters may see a slot's previous occupant instead — each slot
     is still a whole record. *)
  let recent () =
    match Atomic.get state with
    | None -> []
    | Some r ->
        let cap = Array.length r.slots in
        let n = Atomic.get r.seq in
        let lo = if n > cap then n - cap else 0 in
        List.filter_map
          (fun k -> Atomic.get r.slots.((lo + k) mod cap))
          (List.init (n - lo) Fun.id)

  let to_json ev =
    Json.Obj
      [
        ("ts", Json.Float ev.ts);
        ("name", Json.String ev.name);
        ("trace", Json.Int ev.trace_id);
        ("span", Json.Int ev.span_id);
        ("fields", Json.Obj ev.fields);
      ]

  let of_json j =
    match j with
    | Json.Obj _ -> (
        let num = function
          | Some (Json.Float f) -> Some f
          | Some (Json.Int i) -> Some (float_of_int i)
          | _ -> None
        in
        let int = function Some (Json.Int i) -> i | _ -> 0 in
        match (num (Json.member "ts" j), Json.member "name" j) with
        | Some ts, Some (Json.String name) ->
            Ok
              {
                ts;
                name;
                trace_id = int (Json.member "trace" j);
                span_id = int (Json.member "span" j);
                fields =
                  (match Json.member "fields" j with
                  | Some (Json.Obj kvs) -> kvs
                  | _ -> []);
              }
        | None, _ -> Error "event is missing a numeric \"ts\""
        | _, _ -> Error "event is missing a string \"name\"")
    | _ -> Error "event is not a JSON object"

  let jsonl_sink oc ev =
    output_string oc (Json.to_string (to_json ev));
    output_char oc '\n'

  let field name ev = List.assoc_opt name ev.fields
end

module Recorder = struct
  (* Per-operation flight records: what ran, for how long, and how it came
     out. [run] brackets an operation; the body (and anything it calls on
     the same domain) annotates the in-flight record with [note]/[outcome].
     Completion feeds the op's latency histogram ("<subsystem>.latency",
     milliseconds), lands the record in a bounded ring, and — when events
     are enabled — emits an event named after the op carrying dur_ms,
     outcome, and the notes. Records over the slow threshold are force-kept
     in a separate slowest-ops list so a burst of fast chatter cannot evict
     the outliers an operator came to see. *)
  type record = {
    op : string;
    detail : string;
    started : float;
    duration : float; (* seconds *)
    outcome : string;
    slow : bool;
    trace_id : int;
    span_id : int;
    fields : (string * Json.t) list;
  }

  type inflight = {
    iop : string;
    idetail : string;
    istart : float;
    mutable rev_fields : (string * Json.t) list;
    mutable ioutcome : string option;
  }

  (* in-flight stacks are domain-local, like Trace's span stacks *)
  let inflight_key : inflight list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let slow_keep = 16

  type state = {
    lock : Mutex.t;
    mutable slots : record option array;
    mutable next : int;
    mutable slow_s : float;
    mutable slowest : record list; (* duration-descending, <= slow_keep *)
  }

  let st =
    {
      lock = Mutex.create ();
      slots = Array.make 256 None;
      next = 0;
      slow_s = 1.0;
      slowest = [];
    }

  let c_ops = Metrics.counter "obs.ops_recorded"
  let c_slow = Metrics.counter "obs.slow_ops"

  (* Latency histograms are per subsystem (the op name up to the first
     dot): pquery.rank -> pquery.latency, store.save -> store.latency.
     The three core ones are registered eagerly so every snapshot carries
     them even before the first operation. *)
  let latency_hist op =
    let prefix =
      match String.index_opt op '.' with
      | Some i -> String.sub op 0 i
      | None -> op
    in
    Metrics.histogram (prefix ^ ".latency")

  let _ = Metrics.histogram "pquery.latency"
  let _ = Metrics.histogram "integrate.latency"
  let _ = Metrics.histogram "store.latency"

  let configure ?capacity ?slow_s () =
    Mutex.protect st.lock @@ fun () ->
    (match capacity with
    | Some c when c > 0 ->
        st.slots <- Array.make c None;
        st.next <- 0
    | Some _ -> invalid_arg "Obs.Recorder.configure: capacity must be positive"
    | None -> ());
    match slow_s with Some s -> st.slow_s <- s | None -> ()

  let slow_threshold () = Mutex.protect st.lock (fun () -> st.slow_s)

  let note key v =
    match !(Domain.DLS.get inflight_key) with
    | [] -> ()
    | fr :: _ -> fr.rev_fields <- (key, v) :: fr.rev_fields

  let outcome s =
    match !(Domain.DLS.get inflight_key) with
    | [] -> ()
    | fr :: _ -> fr.ioutcome <- Some s

  let keep r =
    Mutex.protect st.lock @@ fun () ->
    st.slots.(st.next mod Array.length st.slots) <- Some r;
    st.next <- st.next + 1;
    if r.slow then begin
      let rec insert = function
        | [] -> [ r ]
        | x :: _ as l when r.duration >= x.duration -> r :: l
        | x :: tl -> x :: insert tl
      in
      st.slowest <- List.filteri (fun i _ -> i < slow_keep) (insert st.slowest)
    end

  let run ~op ?(detail = "") f =
    let stack = Domain.DLS.get inflight_key in
    let fr =
      {
        iop = op;
        idetail = detail;
        istart = Clock.now ();
        rev_fields = [];
        ioutcome = None;
      }
    in
    stack := fr :: !stack;
    let finish default_outcome =
      let stop = Clock.now () in
      let rec pop = function
        | g :: rest when g == fr -> rest
        | g :: rest -> g :: pop rest
        | [] -> []
      in
      stack := pop !stack;
      let duration = stop -. fr.istart in
      let outcome = Option.value ~default:default_outcome fr.ioutcome in
      let trace_id, span_id = Trace.ids () in
      Metrics.observe (latency_hist fr.iop) (duration *. 1000.);
      Metrics.incr c_ops;
      let slow = duration >= Mutex.protect st.lock (fun () -> st.slow_s) in
      if slow then Metrics.incr c_slow;
      let fields = List.rev fr.rev_fields in
      let r =
        {
          op = fr.iop;
          detail = fr.idetail;
          started = fr.istart;
          duration;
          outcome;
          slow;
          trace_id;
          span_id;
          fields;
        }
      in
      keep r;
      if Event.enabled () then begin
        let base =
          ("dur_ms", Json.Float (duration *. 1000.))
          :: ("outcome", Json.String outcome)
          ::
          (if fr.idetail = "" then [] else [ ("detail", Json.String fr.idetail) ])
        in
        Event.emit ~fields:(base @ fields) fr.iop;
        if slow then
          Event.emit
            ~fields:
              [
                ("op", Json.String fr.iop);
                ("dur_ms", Json.Float (duration *. 1000.));
                ("outcome", Json.String outcome);
              ]
            "slow_op"
      end
    in
    match f () with
    | v ->
        finish "ok";
        v
    | exception e ->
        finish ("error:" ^ Printexc.to_string e);
        raise e

  (* newest first *)
  let recent ?n () =
    let all =
      Mutex.protect st.lock @@ fun () ->
      let cap = Array.length st.slots in
      let total = st.next in
      let lo = if total > cap then total - cap else 0 in
      List.filter_map
        (fun k -> st.slots.((total - 1 - k) mod cap))
        (List.init (total - lo) Fun.id)
    in
    match n with
    | None -> all
    | Some n -> List.filteri (fun i _ -> i < n) all

  let slowest () = Mutex.protect st.lock (fun () -> st.slowest)

  let record_to_json r =
    Json.Obj
      [
        ("op", Json.String r.op);
        ("detail", Json.String r.detail);
        ("started", Json.Float r.started);
        ("dur_ms", Json.Float (r.duration *. 1000.));
        ("outcome", Json.String r.outcome);
        ("slow", Json.Bool r.slow);
        ("trace", Json.Int r.trace_id);
        ("span", Json.Int r.span_id);
        ("fields", Json.Obj r.fields);
      ]
end
