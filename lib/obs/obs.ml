(* Telemetry for the whole stack: counters and histograms in a registry
   (Metrics), nested timing spans with a pluggable sink (Trace), and the
   minimal JSON both render to (Json). Stdlib only — see obs.mli. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* Floats must round-trip and must not print as "nan"/"inf" (not JSON).
     %.17g round-trips any float; shorter forms win when exact. *)
  let float_repr f =
    if Float.is_nan f then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else if f = Float.infinity then "1e999"
    else if f = Float.neg_infinity then "-1e999"
    else
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let to_string ?indent v =
    let buf = Buffer.create 256 in
    let nl level =
      match indent with
      | None -> ()
      | Some n ->
          Buffer.add_char buf '\n';
          Buffer.add_string buf (String.make (n * level) ' ')
    in
    let rec go level v =
      match v with
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (float_repr f)
      | String s ->
          Buffer.add_char buf '"';
          escape buf s;
          Buffer.add_char buf '"'
      | List [] -> Buffer.add_string buf "[]"
      | List items ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i item ->
              if i > 0 then Buffer.add_char buf ',';
              nl (level + 1);
              go (level + 1) item)
            items;
          nl level;
          Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, item) ->
              if i > 0 then Buffer.add_char buf ',';
              nl (level + 1);
              Buffer.add_char buf '"';
              escape buf k;
              Buffer.add_string buf "\":";
              if indent <> None then Buffer.add_char buf ' ';
              go (level + 1) item)
            fields;
          nl level;
          Buffer.add_char buf '}'
    in
    go 0 v;
    Buffer.contents buf

  exception Bad of string

  (* Recursive-descent parser for the subset above (no \uXXXX surrogate
     pairs; escapes are decoded to their bytes). Enough to validate and read
     back what [to_string] writes — which is what the bench smoke-check and
     snapshot tooling need. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              (if !pos >= n then fail "unterminated escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char buf '"'
                 | '\\' -> Buffer.add_char buf '\\'
                 | '/' -> Buffer.add_char buf '/'
                 | 'n' -> Buffer.add_char buf '\n'
                 | 'r' -> Buffer.add_char buf '\r'
                 | 't' -> Buffer.add_char buf '\t'
                 | 'b' -> Buffer.add_char buf '\b'
                 | 'f' -> Buffer.add_char buf '\012'
                 | 'u' ->
                     if !pos + 4 >= n then fail "truncated \\u escape";
                     let hex = String.sub s (!pos + 1) 4 in
                     let code =
                       try int_of_string ("0x" ^ hex)
                       with Failure _ -> fail "bad \\u escape"
                     in
                     (* decode only the ASCII range we ever emit *)
                     if code < 0x80 then Buffer.add_char buf (Char.chr code)
                     else Buffer.add_string buf (Printf.sprintf "\\u%s" hex);
                     pos := !pos + 4
                 | c -> fail (Printf.sprintf "bad escape %C" c));
              incr pos;
              go ()
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let number_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && number_char s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  fields ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  items (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (items [])
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

module Metrics = struct
  (* Domain-safety: instrumented code runs inside spawned domains (parallel
     integration and query enumeration), so counters are [Atomic.t] — an
     increment is one fetch-and-add, never a lost update — and the
     multi-field histograms take a per-histogram mutex. Registration (rare,
     usually at module load) is serialised by a per-registry mutex. *)
  type counter = { cname : string; n : int Atomic.t }

  type histogram = {
    hname : string;
    hlock : Mutex.t;
    mutable obs : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
  }

  type registry = {
    lock : Mutex.t;
    counters : (string, counter) Hashtbl.t;
    histograms : (string, histogram) Hashtbl.t;
    (* registration order, oldest first, for stable rendering *)
    mutable rev_names : (string * [ `Counter | `Histogram ]) list;
  }

  let registry () =
    {
      lock = Mutex.create ();
      counters = Hashtbl.create 32;
      histograms = Hashtbl.create 16;
      rev_names = [];
    }

  let global = registry ()

  let counter ?(registry = global) name =
    Mutex.protect registry.lock @@ fun () ->
    match Hashtbl.find_opt registry.counters name with
    | Some c -> c
    | None ->
        let c = { cname = name; n = Atomic.make 0 } in
        Hashtbl.add registry.counters name c;
        registry.rev_names <- (name, `Counter) :: registry.rev_names;
        c

  let histogram ?(registry = global) name =
    Mutex.protect registry.lock @@ fun () ->
    match Hashtbl.find_opt registry.histograms name with
    | Some h -> h
    | None ->
        let h =
          {
            hname = name;
            hlock = Mutex.create ();
            obs = 0;
            sum = 0.;
            mn = Float.infinity;
            mx = Float.neg_infinity;
          }
        in
        Hashtbl.add registry.histograms name h;
        registry.rev_names <- (name, `Histogram) :: registry.rev_names;
        h

  let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.n by)

  let count c = Atomic.get c.n

  let observe h v =
    Mutex.protect h.hlock @@ fun () ->
    h.obs <- h.obs + 1;
    h.sum <- h.sum +. v;
    if v < h.mn then h.mn <- v;
    if v > h.mx then h.mx <- v

  type hstats = { observations : int; sum : float; min : float; max : float }

  let stats h =
    Mutex.protect h.hlock @@ fun () ->
    { observations = h.obs; sum = h.sum; min = h.mn; max = h.mx }

  let mean s = if s.observations = 0 then 0. else s.sum /. float_of_int s.observations

  type snapshot = {
    counters : (string * int) list;
    histograms : (string * hstats) list;
  }

  let snapshot ?(registry = global) () =
    (* the registry lock also excludes concurrent registration, so the
       Hashtbl reads below never race a resize *)
    Mutex.protect registry.lock @@ fun () ->
    let names = List.rev registry.rev_names in
    {
      counters =
        List.filter_map
          (function
            | name, `Counter ->
                Some (name, Atomic.get (Hashtbl.find registry.counters name).n)
            | _, `Histogram -> None)
          names;
      histograms =
        List.filter_map
          (function
            | name, `Histogram -> Some (name, stats (Hashtbl.find registry.histograms name))
            | _, `Counter -> None)
          names;
    }

  let reset ?(registry = global) () =
    Mutex.protect registry.lock @@ fun () ->
    Hashtbl.iter (fun _ c -> Atomic.set c.n 0) registry.counters;
    Hashtbl.iter
      (fun _ h ->
        Mutex.protect h.hlock @@ fun () ->
        h.obs <- 0;
        h.sum <- 0.;
        h.mn <- Float.infinity;
        h.mx <- Float.neg_infinity)
      registry.histograms

  let to_text snap =
    let buf = Buffer.create 256 in
    List.iter
      (fun (name, n) -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name n))
      snap.counters;
    List.iter
      (fun (name, s) ->
        if s.observations = 0 then
          Buffer.add_string buf (Printf.sprintf "%-40s (no observations)\n" name)
        else
          Buffer.add_string buf
            (Printf.sprintf "%-40s n=%d sum=%g min=%g mean=%g max=%g\n" name
               s.observations s.sum s.min (mean s) s.max))
      snap.histograms;
    Buffer.contents buf

  let json_of_hstats s =
    if s.observations = 0 then Json.Obj [ ("n", Json.Int 0) ]
    else
      Json.Obj
        [
          ("n", Json.Int s.observations);
          ("sum", Json.Float s.sum);
          ("min", Json.Float s.min);
          ("mean", Json.Float (mean s));
          ("max", Json.Float s.max);
        ]

  let to_json snap =
    Json.Obj
      [
        ("counters", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) snap.counters));
        ( "histograms",
          Json.Obj (List.map (fun (k, s) -> (k, json_of_hstats s)) snap.histograms) );
      ]
end

module Trace = struct
  type span = { name : string; start : float; stop : float; children : span list }

  let duration s = s.stop -. s.start

  type sink = span -> unit

  type frame = { fname : string; fstart : float; mutable rev_children : span list }

  type state = {
    mutable sink : sink option;
    mutable now : unit -> float;
  }

  (* [Sys.time] (CPU seconds) is the only clock the stdlib has; real callers
     install a wall clock such as [Unix.gettimeofday]. *)
  let st = { sink = None; now = Sys.time }

  (* Every domain owns its own span stack. A single shared stack corrupts
     the tree as soon as a span opens inside a spawned domain (frames from
     different domains interleave); with domain-local stacks, spans opened
     off the installing domain nest among themselves and are delivered to
     the sink as separate *root* spans when their outermost span completes.
     They are never attached under another domain's currently-open span —
     cross-domain attachment would race with the parent closing. The sink
     itself is serialised by [sink_lock], so any sink (the collector
     included) may be driven from parallel code. *)
  let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

  let sink_lock = Mutex.create ()

  let enabled () = st.sink <> None

  let install ?(now = Sys.time) sink =
    st.sink <- Some sink;
    st.now <- now;
    Domain.DLS.get stack_key := []

  let uninstall () =
    st.sink <- None;
    Domain.DLS.get stack_key := []

  let with_span name f =
    match st.sink with
    | None -> f () (* the whole cost of disabled tracing: one load + branch *)
    | Some _ ->
        let stack = Domain.DLS.get stack_key in
        let frame = { fname = name; fstart = st.now (); rev_children = [] } in
        stack := frame :: !stack;
        let finish () =
          let stop = st.now () in
          (* tolerate install/uninstall mid-span: pop up to our frame if it
             is still there, otherwise drop the record silently *)
          let rec pop = function
            | f :: rest when f == frame -> Some rest
            | _ :: rest -> pop rest
            | [] -> None
          in
          match pop !stack with
          | None -> ()
          | Some rest ->
              stack := rest;
              let span =
                {
                  name = frame.fname;
                  start = frame.fstart;
                  stop;
                  children = List.rev frame.rev_children;
                }
              in
              (match (!stack, st.sink) with
              | parent :: _, _ -> parent.rev_children <- span :: parent.rev_children
              | [], Some sink -> Mutex.protect sink_lock (fun () -> sink span)
              | [], None -> ())
        in
        Fun.protect ~finally:finish f

  let collector () =
    (* roots only ever arrive under [sink_lock]; the read side takes the
       same lock so a collect during parallel spans is well-defined *)
    let rev_roots = ref [] in
    let sink span = rev_roots := span :: !rev_roots in
    (sink, fun () -> Mutex.protect sink_lock (fun () -> List.rev !rev_roots))

  let human_duration s =
    if s >= 1. then Printf.sprintf "%.2f s" s
    else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
    else if s >= 1e-6 then Printf.sprintf "%.2f us" (s *. 1e6)
    else Printf.sprintf "%.0f ns" (s *. 1e9)

  let to_text ?max_depth root =
    let buf = Buffer.create 256 in
    let rec go depth span =
      match max_depth with
      | Some d when depth > d -> ()
      | _ ->
          Buffer.add_string buf
            (Printf.sprintf "%s%-*s %10s\n"
               (String.make (2 * depth) ' ')
               (max 1 (40 - (2 * depth)))
               span.name
               (human_duration (duration span)));
          List.iter (go (depth + 1)) span.children
    in
    go 0 root;
    Buffer.contents buf

  let rec to_json span =
    Json.Obj
      [
        ("name", Json.String span.name);
        ("start_s", Json.Float span.start);
        ("dur_s", Json.Float (duration span));
        ("children", Json.List (List.map to_json span.children));
      ]
end
