(** Telemetry for the whole stack.

    Three small pieces, stdlib-only so any layer can link them:

    - {!Metrics}: named counters and histograms in a registry, with
      snapshot/reset and text/JSON rendering. Counters are always on —
      an increment is one atomic fetch-and-add, so the hot paths simply
      count unconditionally, and they count {e exactly} even from
      parallel domains.
    - {!Trace}: nested timing spans with an injectable clock and a
      pluggable sink. The default is {e no sink}: [with_span name f] is
      then a single load-and-branch around [f ()], so instrumented code
      costs ~nothing when tracing is off. Span stacks are domain-local.
    - {!Json}: the minimal JSON both render to, including a parser so
      snapshot files can be validated without external dependencies.

    See doc/observability.md for the metric-name catalogue and the span
    hierarchy the rest of the repo emits. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  (** [to_string ?indent v] renders [v]; [indent] pretty-prints with that
      many spaces per level. NaN renders as [null], infinities as
      [±1e999] (out-of-range numerals, as other JSON emitters do). *)
  val to_string : ?indent:int -> t -> string

  (** [parse s] reads back what {!to_string} writes (standard JSON minus
      non-ASCII [\u] escapes, which are kept verbatim). *)
  val parse : string -> (t, string) result

  (** [member key v] is the field [key] of an [Obj], if both exist. *)
  val member : string -> t -> t option
end

module Metrics : sig
  type registry

  (** The process-wide registry every instrumented library uses by
      default. *)
  val global : registry

  (** A fresh, independent registry (tests). *)
  val registry : unit -> registry

  (** {1 Counters} *)

  type counter

  (** [counter ?registry name] registers (or finds — registration is
      idempotent, the same name yields the same counter) a counter. *)
  val counter : ?registry:registry -> string -> counter

  (** Atomic (one fetch-and-add): increments from parallel domains are
      never lost — [n] domains adding [k] each always totals [n·k]. *)
  val incr : ?by:int -> counter -> unit

  val count : counter -> int

  (** {1 Histograms} *)

  type histogram

  (** Idempotent, like {!counter}. Histograms and counters live in
      separate namespaces. *)
  val histogram : ?registry:registry -> string -> histogram

  (** Guarded by a per-histogram mutex, so the (count, sum, min, max)
      tuple stays internally consistent under parallel observation. *)
  val observe : histogram -> float -> unit

  type hstats = { observations : int; sum : float; min : float; max : float }
  (** [min]/[max] are [+∞]/[−∞] when [observations = 0]. *)

  val stats : histogram -> hstats

  val mean : hstats -> float

  (** {1 Snapshots} *)

  type snapshot = {
    counters : (string * int) list;
    histograms : (string * hstats) list;
  }

  (** Current values, in registration order. Zero-valued metrics are
      included: a registered name is part of the catalogue. *)
  val snapshot : ?registry:registry -> unit -> snapshot

  (** Zero every value; registrations (and the handles already handed
      out) stay valid. *)
  val reset : ?registry:registry -> unit -> unit

  val to_text : snapshot -> string

  val to_json : snapshot -> Json.t
end

module Trace : sig
  (** A completed span: wall-clock interval plus completed sub-spans in
      start order. *)
  type span = { name : string; start : float; stop : float; children : span list }

  val duration : span -> float

  (** A sink receives each completed {e root} span (children arrive
      inside their parent, not separately). *)
  type sink = span -> unit

  (** No sink installed ⇒ {!with_span} runs its thunk directly. *)
  val enabled : unit -> bool

  (** [install ?now sink] turns tracing on. [now] is the clock, in
      seconds; the default is [Sys.time] (CPU time — the only stdlib
      clock), so real callers pass a monotonic or wall clock such as
      [Unix.gettimeofday]. Resets the span stack. *)
  val install : ?now:(unit -> float) -> sink -> unit

  val uninstall : unit -> unit

  (** [with_span name f] runs [f ()] inside a span when a sink is
      installed (the span closes even if [f] raises), and is just
      [f ()] otherwise.

      Span stacks are {e domain-local}: a span opened inside a spawned
      domain nests under that domain's open spans only, and when the
      domain's outermost span completes it reaches the sink as a
      separate root span — it is never attached under another domain's
      currently-open span (attachment across domains would race with the
      parent closing). Sink invocations are serialised by an internal
      mutex, so {!collector} is safe to use from parallel code. *)
  val with_span : string -> (unit -> 'a) -> 'a

  (** [collector ()] is a sink that accumulates root spans, and the
      function that returns them in completion order. *)
  val collector : unit -> sink * (unit -> span list)

  (** Render a span tree, one line per span, indented two spaces per
      level; [max_depth] prunes deep recursions (depth 0 = root only). *)
  val to_text : ?max_depth:int -> span -> string

  val to_json : span -> Json.t

  val human_duration : float -> string
end
