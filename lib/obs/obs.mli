(** Telemetry for the whole stack.

    Stdlib-only so any layer can link it:

    - {!Metrics}: named counters and histograms in a registry, with
      snapshot/reset and text/JSON rendering. Counters are always on —
      an increment is one atomic fetch-and-add, so the hot paths simply
      count unconditionally, and they count {e exactly} even from
      parallel domains. Histograms carry streaming p50/p90/p99 via
      {!Quantile}.
    - {!Trace}: nested timing spans with an injectable clock and a
      pluggable sink. The default is {e no sink}: [with_span name f] is
      then a single load-and-branch around [f ()], so instrumented code
      costs ~nothing when tracing is off. Span stacks are domain-local.
      Completed trees export to Chrome trace-event JSON ({!Trace.to_chrome}).
    - {!Event}: the flight recorder's structured event stream — named,
      timestamped events in a lock-free bounded ring, optionally mirrored
      to a JSONL sink. Off by default; emission is then one atomic load.
    - {!Recorder}: per-operation flight records (op, detail, duration,
      outcome, annotations) in a bounded ring with a slow-op threshold.
    - {!Json}: the minimal JSON everything renders to, including a parser
      so snapshot and event files can be validated without external
      dependencies.

    See doc/observability.md for the metric-name and event-name
    catalogues and the span hierarchy the rest of the repo emits. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  (** [to_string ?indent v] renders [v]; [indent] pretty-prints with that
      many spaces per level. NaN renders as [null], infinities as
      [±1e999] (out-of-range numerals, as other JSON emitters do). *)
  val to_string : ?indent:int -> t -> string

  (** [parse s] reads back what {!to_string} writes. [\uXXXX] escapes
      decode to UTF-8, surrogate pairs included; a lone or misordered
      surrogate half is a parse error naming the offending escape. *)
  val parse : string -> (t, string) result

  (** [member key v] is the field [key] of an [Obj], if both exist. *)
  val member : string -> t -> t option
end

module Clock : sig
  (** The process clock behind {!Event} timestamps and {!Recorder}
      durations. Defaults to [Sys.time] (CPU seconds — the only stdlib
      clock); the CLI and bench install [Unix.gettimeofday] at startup,
      tests may install a fake. Reads from spawned domains are
      well-defined (the slot is atomic). *)

  val set : (unit -> float) -> unit

  val now : unit -> float
end

module Quantile : sig
  (** Streaming quantile estimation over a fixed log-bucketed histogram
      (DDSketch-style): constant memory, no allocation per [add], and any
      quantile of the positive observations is reported with relative
      error ≤ ~5% (bucket boundaries grow geometrically by
      γ = 1.05/0.95; estimates are bucket geometric midpoints, so the
      error bound is √γ − 1 ≈ 5.1%). Zero and negative observations
      count in a dedicated zero bucket and report as [0.].

      Not internally synchronised — the instance inside each
      {!Metrics.histogram} is protected by that histogram's mutex. *)

  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  (** [estimate t q] for [q] in [0,1]; [0.] when empty. *)
  val estimate : t -> float -> float

  val clear : t -> unit
end

module Metrics : sig
  type registry

  (** The process-wide registry every instrumented library uses by
      default. *)
  val global : registry

  (** A fresh, independent registry (tests). *)
  val registry : unit -> registry

  (** {1 Counters} *)

  type counter

  (** [counter ?registry name] registers (or finds — registration is
      idempotent, the same name yields the same counter) a counter. *)
  val counter : ?registry:registry -> string -> counter

  (** Atomic (one fetch-and-add): increments from parallel domains are
      never lost — [n] domains adding [k] each always totals [n·k]. *)
  val incr : ?by:int -> counter -> unit

  val count : counter -> int

  (** {1 Histograms} *)

  type histogram

  (** Idempotent, like {!counter}. Histograms and counters live in
      separate namespaces. *)
  val histogram : ?registry:registry -> string -> histogram

  (** Guarded by a per-histogram mutex, so the (count, sum, min, max,
      quantile sketch) state stays internally consistent under parallel
      observation. *)
  val observe : histogram -> float -> unit

  type hstats = {
    observations : int;
    sum : float;
    min : float;
    max : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }
  (** [min]/[max] are [+∞]/[−∞] when [observations = 0]. The quantiles
      are {!Quantile} estimates (~5% relative error); [0.] when empty. *)

  val stats : histogram -> hstats

  val mean : hstats -> float

  (** {1 Snapshots} *)

  type snapshot = {
    counters : (string * int) list;
    histograms : (string * hstats) list;
  }

  (** Current values, in registration order. Zero-valued metrics are
      included: a registered name is part of the catalogue. *)
  val snapshot : ?registry:registry -> unit -> snapshot

  (** Zero every value (quantile sketches included); registrations (and
      the handles already handed out) stay valid. *)
  val reset : ?registry:registry -> unit -> unit

  (** Rendered output is sorted by metric name — deterministic across
      runs regardless of module-load (registration) order. *)
  val to_text : snapshot -> string

  val to_json : snapshot -> Json.t
end

module Trace : sig
  (** A completed span: wall-clock interval plus completed sub-spans in
      start order. *)
  type span = { name : string; start : float; stop : float; children : span list }

  val duration : span -> float

  (** A sink receives each completed {e root} span (children arrive
      inside their parent, not separately). *)
  type sink = span -> unit

  (** No sink installed ⇒ {!with_span} runs its thunk directly. *)
  val enabled : unit -> bool

  (** [install ?now sink] turns tracing on. [now] is the clock, in
      seconds; the default is [Sys.time] (CPU time — the only stdlib
      clock), so real callers pass a monotonic or wall clock such as
      [Unix.gettimeofday]. Resets the span stack. *)
  val install : ?now:(unit -> float) -> sink -> unit

  val uninstall : unit -> unit

  (** [with_span name f] runs [f ()] inside a span when a sink is
      installed (the span closes even if [f] raises), and is just
      [f ()] otherwise.

      Span stacks are {e domain-local}: a span opened inside a spawned
      domain nests under that domain's open spans only, and when the
      domain's outermost span completes it reaches the sink as a
      separate root span — it is never attached under another domain's
      currently-open span (attachment across domains would race with the
      parent closing). Sink invocations are serialised by an internal
      mutex, so {!collector} is safe to use from parallel code. *)
  val with_span : string -> (unit -> 'a) -> 'a

  (** [ids ()] is [(trace_id, span_id)] of this domain's innermost open
      span: the trace id names the root span of the open tree, the span
      id the innermost frame. [(0, 0)] when no span is open on this
      domain — in particular whenever tracing is off. {!Event.emit}
      stamps these onto every event so a JSONL stream joins against the
      exported trace. *)
  val ids : unit -> int * int

  (** [collector ()] is a sink that accumulates root spans, and the
      function that returns them in completion order. *)
  val collector : unit -> sink * (unit -> span list)

  (** Render a span tree, one line per span, indented two spaces per
      level; [max_depth] prunes deep recursions (depth 0 = root only). *)
  val to_text : ?max_depth:int -> span -> string

  val to_json : span -> Json.t

  (** [to_chrome roots] is the whole collected forest as Chrome
      trace-event JSON (["traceEvents"] of complete — [ph "X"] — events),
      loadable by Perfetto / [chrome://tracing]. Timestamps are
      microseconds relative to the earliest root; each root tree gets its
      own [tid] row, so spans from spawned domains appear as parallel
      tracks. *)
  val to_chrome : span list -> Json.t

  val human_duration : float -> string
end

module Event : sig
  (** Structured flight-recorder events. Emission is {e off} by default
      and [emit] is then one atomic load and a branch, so call sites can
      stay unconditional. [enable] installs a lock-free bounded ring
      keeping the last [capacity] events (and optionally mirrors every
      event to a sink, e.g. {!jsonl_sink}); overwritten events are
      counted {e exactly} by the [obs.events_dropped] counter
      ([obs.events_emitted] counts all of them). Concurrent emitters
      never tear a record: a slot swap is one atomic store of an
      immutable record. *)

  type t = {
    ts : float;  (** {!Clock.now} at emission *)
    name : string;  (** e.g. ["budget.trip"]; doc/observability.md has the catalogue *)
    trace_id : int;  (** {!Trace.ids} fst; 0 when no span was open *)
    span_id : int;  (** {!Trace.ids} snd; 0 when no span was open *)
    fields : (string * Json.t) list;
  }

  val enabled : unit -> bool

  (** [enable ?capacity ?sink ()] starts recording into a fresh ring
      (default capacity 4096). Raises [Invalid_argument] on
      non-positive capacity. *)
  val enable : ?capacity:int -> ?sink:(t -> unit) -> unit -> unit

  val disable : unit -> unit

  (** [emit ?fields name] records one event (no-op when disabled). The
      sink, if any, runs under an internal mutex. *)
  val emit : ?fields:(string * Json.t) list -> string -> unit

  (** Events emitted into the current ring since [enable] (0 when
      disabled) — drops included. *)
  val emitted : unit -> int

  (** Surviving events, oldest first: exactly the last
      [min (emitted ()) capacity] events once emitters are quiescent. *)
  val recent : unit -> t list

  val to_json : t -> Json.t

  (** Inverse of {!to_json} (for the [report] aggregator): requires a
      numeric ["ts"] and string ["name"]; ids and fields default. *)
  val of_json : Json.t -> (t, string) result

  (** [jsonl_sink oc] writes one compact JSON object per line. The
      caller owns (flushes/closes) the channel. *)
  val jsonl_sink : out_channel -> t -> unit

  (** [field name ev] is the field's value, if present. *)
  val field : string -> t -> Json.t option
end

module Recorder : sig
  (** Per-operation flight records — the "what were the last N queries
      and why were they slow" layer. [run ~op f] brackets an operation:
      it times [f] with {!Clock}, lets the body annotate the in-flight
      record with {!note}/{!outcome} (domain-local, like spans), then
      lands the completed record in a bounded ring, feeds the op's
      latency histogram (["<subsystem>.latency"], milliseconds — the op
      name up to its first ['.']), and, when {!Event} recording is on,
      emits an event named after the op with [dur_ms]/[outcome]/[detail]
      plus the notes. Records at or over the slow threshold are
      additionally kept in a small slowest-ops list that fast chatter
      cannot evict, counted by [obs.slow_ops] and flagged by a
      ["slow_op"] event. *)

  type record = {
    op : string;  (** e.g. ["pquery.rank"] *)
    detail : string;  (** e.g. the query source *)
    started : float;
    duration : float;  (** seconds *)
    outcome : string;  (** ["ok"], ["error:..."], or a {!outcome} override *)
    slow : bool;
    trace_id : int;
    span_id : int;
    fields : (string * Json.t) list;
  }

  (** [run ~op ?detail f] records [f ()]'s execution; exceptions are
      recorded as [error:<exn>] and re-raised. *)
  val run : op:string -> ?detail:string -> (unit -> 'a) -> 'a

  (** [note key v] annotates the innermost in-flight record on this
      domain (no-op outside [run]). Repeated keys all appear, in call
      order. *)
  val note : string -> Json.t -> unit

  (** Override the recorded outcome (e.g. an error turned into a result
      value rather than raised). *)
  val outcome : string -> unit

  (** [configure ?capacity ?slow_s ()] resizes the ring (clearing it)
      and/or sets the slow threshold in seconds (default: 256 records,
      1.0 s). *)
  val configure : ?capacity:int -> ?slow_s:float -> unit -> unit

  val slow_threshold : unit -> float

  (** Completed records, newest first, at most [n] (default all
      surviving). *)
  val recent : ?n:int -> unit -> record list

  (** The slowest records seen (duration descending, bounded), kept
      independently of the ring. *)
  val slowest : unit -> record list

  val record_to_json : record -> Json.t
end
