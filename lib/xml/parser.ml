type error = { line : int; column : int; message : string }

let pp_error ppf e = Fmt.pf ppf "%d:%d: %s" e.line e.column e.message

let error_to_string e = Fmt.str "%a" pp_error e

exception Error of error

type state = { src : string; mutable pos : int; mutable line : int; mutable bol : int }

let fail st message =
  raise (Error { line = st.line; column = st.pos - st.bol + 1; message })

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let next st =
  let c = peek st in
  if eof st then fail st "unexpected end of input";
  advance st;
  c

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else fail st (Fmt.str "expected %S" s)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Encode a Unicode scalar value as UTF-8. *)
let utf8_of_code code =
  let buf = Buffer.create 4 in
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end;
  Buffer.contents buf

let parse_reference st =
  expect st "&";
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' in
    if hex then advance st;
    let start = st.pos in
    while
      (not (eof st))
      &&
      match peek st with
      | '0' .. '9' -> true
      | 'a' .. 'f' | 'A' .. 'F' -> hex
      | _ -> false
    do
      advance st
    done;
    if st.pos = start then fail st "empty character reference";
    let digits = String.sub st.src start (st.pos - start) in
    expect st ";";
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> fail st "invalid character reference"
    in
    if code < 0 || code > 0x10FFFF then fail st "character reference out of range";
    utf8_of_code code
  end
  else
    let name = parse_name st in
    expect st ";";
    match name with
    | "lt" -> "<"
    | "gt" -> ">"
    | "amp" -> "&"
    | "apos" -> "'"
    | "quot" -> "\""
    | other -> fail st (Fmt.str "unknown entity &%s;" other)

let parse_attr_value st =
  let quote = next st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | c when c = quote -> advance st
    | '&' -> Buffer.add_string buf (parse_reference st); go ()
    | '<' -> fail st "'<' in attribute value"
    | _ when eof st -> fail st "unterminated attribute value"
    | c -> advance st; Buffer.add_char buf c; go ()
  in
  go ();
  Buffer.contents buf

let skip_until st terminator what =
  let rec go () =
    if eof st then fail st (Fmt.str "unterminated %s" what)
    else if looking_at st terminator then expect st terminator
    else begin advance st; go () end
  in
  go ()

let skip_comment st = expect st "<!--"; skip_until st "-->" "comment"

let skip_pi st = expect st "<?"; skip_until st "?>" "processing instruction"

(* Skip <!DOCTYPE ...>, including a bracketed internal subset. *)
let skip_doctype st =
  expect st "<!DOCTYPE";
  let rec go depth =
    if eof st then fail st "unterminated DOCTYPE"
    else
      match next st with
      | '[' -> go (depth + 1)
      | ']' -> go (depth - 1)
      | '>' when depth = 0 -> ()
      | _ -> go depth
  in
  go 0

let parse_cdata st =
  expect st "<![CDATA[";
  let start = st.pos in
  let rec go () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then begin
      let s = String.sub st.src start (st.pos - start) in
      expect st "]]>";
      s
    end
    else begin advance st; go () end
  in
  go ()

let rec parse_misc st =
  skip_space st;
  if looking_at st "<!--" then begin skip_comment st; parse_misc st end
  else if looking_at st "<?" then begin skip_pi st; parse_misc st end
  else if looking_at st "<!DOCTYPE" then begin skip_doctype st; parse_misc st end

let rec parse_element st =
  expect st "<";
  let tag = parse_name st in
  let rec attrs acc =
    skip_space st;
    match peek st with
    | '>' -> advance st; (List.rev acc, false)
    | '/' -> expect st "/>"; (List.rev acc, true)
    | _ ->
        let name = parse_name st in
        skip_space st;
        expect st "=";
        skip_space st;
        let value = parse_attr_value st in
        if List.mem_assoc name acc then fail st (Fmt.str "duplicate attribute %s" name);
        attrs ((name, value) :: acc)
  in
  let attributes, self_closing = attrs [] in
  if self_closing then Tree.Element (tag, attributes, [])
  else begin
    let children = parse_content st in
    expect st "</";
    let close = parse_name st in
    if close <> tag then fail st (Fmt.str "mismatched close tag </%s> for <%s>" close tag);
    skip_space st;
    expect st ">";
    Tree.Element (tag, attributes, children)
  end

and parse_content st =
  let buf = Buffer.create 16 in
  let flush acc =
    if Buffer.length buf = 0 then acc
    else begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      Tree.Text s :: acc
    end
  in
  let rec go acc =
    if eof st then fail st "unterminated element content"
    else if looking_at st "</" then List.rev (flush acc)
    else if looking_at st "<!--" then begin skip_comment st; go acc end
    else if looking_at st "<![CDATA[" then begin
      Buffer.add_string buf (parse_cdata st);
      go acc
    end
    else if looking_at st "<?" then begin skip_pi st; go acc end
    else if peek st = '<' then begin
      let acc = flush acc in
      let child = parse_element st in
      go (child :: acc)
    end
    else if peek st = '&' then begin
      Buffer.add_string buf (parse_reference st);
      go acc
    end
    else begin
      Buffer.add_char buf (next st);
      go acc
    end
  in
  go []

let parse_string s =
  let st = { src = s; pos = 0; line = 1; bol = 0 } in
  try
    parse_misc st;
    if eof st then fail st "no root element";
    if peek st <> '<' then fail st "expected root element";
    let root = parse_element st in
    parse_misc st;
    if not (eof st) then fail st "trailing content after root element";
    Ok root
  with Error e -> Result.Error e

let parse_string_exn s =
  match parse_string s with
  | Ok t -> t
  | Result.Error e -> failwith (Fmt.str "XML parse error at %a" pp_error e)

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s
