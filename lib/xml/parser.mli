(** A from-scratch XML 1.0 parser, sufficient for data-integration workloads.

    Supported: elements, attributes (single or double quoted), character
    data, the five predefined entities plus decimal/hex character
    references, comments, CDATA sections, processing instructions and the
    XML declaration (both skipped), and a DOCTYPE declaration (skipped,
    including an internal subset). Not supported: namespaces beyond treating
    the colon as a name character, and external entities (by design — no
    I/O, no XXE). *)

type error = { line : int; column : int; message : string }

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

(** [parse_string s] parses a complete document and returns its root
    element. Leading/trailing prolog and misc content is allowed. *)
val parse_string : string -> (Tree.t, error) result

(** [parse_string_exn s] is [parse_string], raising [Failure] on error. *)
val parse_string_exn : string -> Tree.t

(** [parse_file path] reads and parses [path]. *)
val parse_file : string -> (Tree.t, error) result
