(** Schema knowledge in the form of child-element cardinalities.

    The paper uses a DTD to rule out impossible worlds during integration —
    e.g. "a person has at most one phone number" rejects the world in which
    the two address-book Johns are one person with two phones (Fig. 2).
    Only the cardinality part of a DTD matters for that purpose, so this
    module models exactly that: for a parent element name and a child
    element name, how many occurrences a world may contain. *)

type occurs =
  | Optional  (** [?] — zero or one *)
  | One  (** exactly one *)
  | Many  (** [+] — one or more *)
  | Any  (** [*] — zero or more (the default for undeclared pairs) *)

type t

val empty : t

(** [declare t ~parent ~child occurs] adds (or replaces) a cardinality
    declaration. *)
val declare : t -> parent:Tree.name -> child:Tree.name -> occurs -> t

val occurs : t -> parent:Tree.name -> child:Tree.name -> occurs

(** [max_one t ~parent ~child] is true when at most one [child] may occur
    under [parent] ([Optional] or [One]). *)
val max_one : t -> parent:Tree.name -> child:Tree.name -> bool

type violation = {
  parent : Tree.name;
  child : Tree.name;
  expected : occurs;
  found : int;
}

val pp_violation : Format.formatter -> violation -> unit

(** [validate t tree] checks every element of [tree] against the declared
    cardinalities. Undeclared (parent, child) pairs are unconstrained. *)
val validate : t -> Tree.t -> (unit, violation list) result

(** [infer docs] derives cardinality knowledge from example documents: for
    every (parent, child) element-tag pair observed, if no parent instance
    in any document ever holds more than one [child], the pair is declared
    [Optional] (at most one). Pairs observed with repetition are declared
    [Any]. This is the "other semantical knowledge" route when no DTD is
    written down: the sources themselves witness which fields are
    single-valued. Sound for integration only insofar as the samples are
    representative — a field that merely {e happened} to be unique gets
    capped. *)
val infer : Tree.t list -> t

(** [of_string s] parses a compact textual form, one declaration per line:
    ["person: nm, tel?, address*"] declares [nm] as exactly-one, [tel] as
    at-most-one and [address] as any, under [person]. A trailing [+] means
    one-or-more. Blank lines and [#] comments are ignored. *)
val of_string : string -> (t, string) result

val to_string : t -> string

(** All declarations, sorted by parent then child. *)
val declarations : t -> (Tree.name * Tree.name * occurs) list
