type name = string

type attribute = name * string

type t =
  | Element of name * attribute list * t list
  | Text of string

let element ?(attrs = []) name children = Element (name, attrs, children)

let text s = Text s

let leaf ?attrs name value = element ?attrs name [ text value ]

let is_element = function Element _ -> true | Text _ -> false

let is_text = function Text _ -> true | Element _ -> false

let name = function Element (n, _, _) -> Some n | Text _ -> None

let tag = function
  | Element (n, _, _) -> n
  | Text _ -> invalid_arg "Tree.tag: text node"

let attributes = function Element (_, attrs, _) -> attrs | Text _ -> []

let attribute t key = List.assoc_opt key (attributes t)

let children = function Element (_, _, cs) -> cs | Text _ -> []

let child_elements t = List.filter is_element (children t)

let find_child t n =
  List.find_opt (function Element (m, _, _) -> m = n | Text _ -> false) (children t)

let find_children t n =
  List.filter (function Element (m, _, _) -> m = n | Text _ -> false) (children t)

let text_content t =
  let buf = Buffer.create 32 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element (_, _, cs) -> List.iter go cs
  in
  go t;
  Buffer.contents buf

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let normalize_space s =
  let buf = Buffer.create (String.length s) in
  let pending = ref false in
  String.iter
    (fun c ->
      if is_space c then (if Buffer.length buf > 0 then pending := true)
      else begin
        if !pending then Buffer.add_char buf ' ';
        pending := false;
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

let field t n =
  match find_child t n with
  | None -> None
  | Some c -> Some (normalize_space (text_content c))

let all_space s =
  let rec go i = i >= String.length s || (is_space s.[i] && go (i + 1)) in
  go 0

(* Merge adjacent text children, drop pure-whitespace text that sits between
   elements (indentation), and normalise the text that remains. *)
let rec canonical t =
  match t with
  | Text s -> Text (normalize_space s)
  | Element (n, attrs, cs) ->
      let attrs = List.sort (fun (a, _) (b, _) -> String.compare a b) attrs in
      let has_elem = List.exists is_element cs in
      let merged =
        let rec merge = function
          | Text a :: Text b :: rest -> merge (Text (a ^ b) :: rest)
          | x :: rest -> x :: merge rest
          | [] -> []
        in
        merge cs
      in
      let kept =
        List.filter
          (function Text s -> not (has_elem && all_space s) | Element _ -> true)
          merged
      in
      Element (n, attrs, List.map canonical kept)

let rec compare_raw a b =
  if a == b then 0
  else
    match a, b with
    | Text x, Text y -> String.compare x y
    | Text _, Element _ -> -1
    | Element _, Text _ -> 1
    | Element (n1, a1, c1), Element (n2, a2, c2) ->
        let c = String.compare n1 n2 in
        if c <> 0 then c
        else
          let c = Stdlib.compare a1 a2 in
          if c <> 0 then c else List.compare compare_raw c1 c2

let compare a b = if a == b then 0 else compare_raw (canonical a) (canonical b)

let equal a b = a == b || compare a b = 0

let deep_equal = equal

let rec fold f acc t =
  let acc = f acc t in
  match t with
  | Text _ -> acc
  | Element (_, _, cs) -> List.fold_left (fold f) acc cs

let iter f t = fold (fun () n -> f n) () t

let node_count t = fold (fun n _ -> n + 1) 0 t

let rec depth = function
  | Text _ -> 1
  | Element (_, _, []) -> 1
  | Element (_, _, cs) -> 1 + List.fold_left (fun d c -> max d (depth c)) 0 cs

let rec pp ppf = function
  | Text s -> Fmt.pf ppf "%S" s
  | Element (n, attrs, cs) ->
      Fmt.pf ppf "@[<hv 2>%s%a(%a)@]" n
        Fmt.(list ~sep:nop (fun ppf (k, v) -> pf ppf "[@%s=%S]" k v))
        attrs
        Fmt.(list ~sep:comma pp)
        cs
