(** Plain (certain) XML trees.

    This is the data substrate everything else builds on: documents loaded
    from the sources being integrated, possible worlds extracted from a
    probabilistic document, and query results. The representation is
    deliberately small: elements with attributes, and text. Comments,
    processing instructions and CDATA sections are resolved by the parser
    and do not appear in trees. *)

type name = string

type attribute = name * string

type t =
  | Element of name * attribute list * t list
  | Text of string

(** {1 Construction} *)

val element : ?attrs:attribute list -> name -> t list -> t

val text : string -> t

(** [leaf name value] is [element name [text value]] — the common shape for
    data fields such as [<title>Jaws</title>]. *)
val leaf : ?attrs:attribute list -> name -> string -> t

(** {1 Accessors} *)

val is_element : t -> bool

val is_text : t -> bool

(** [name t] is the tag of an element, [None] for text. *)
val name : t -> name option

(** [tag t] is the tag of an element; raises [Invalid_argument] on text. *)
val tag : t -> name

val attributes : t -> attribute list

val attribute : t -> name -> string option

val children : t -> t list

val child_elements : t -> t list

(** [find_child t n] is the first child element of [t] named [n]. *)
val find_child : t -> name -> t option

val find_children : t -> name -> t list

(** [text_content t] concatenates all descendant text, in document order.
    This is the XPath 1.0 string-value of a node. *)
val text_content : t -> string

(** [field t n] is the whitespace-normalised string value of the first child
    element named [n], if present. *)
val field : t -> name -> string option

(** {1 Canonical form and comparison} *)

(** [normalize_space s] collapses runs of XML whitespace to single spaces and
    trims both ends, as XPath's [normalize-space]. *)
val normalize_space : string -> string

(** [canonical t] sorts attributes by name, merges adjacent text nodes, drops
    text nodes that are entirely whitespace between elements, and normalises
    surviving text. Two trees representing the same information have equal
    canonical forms. *)
val canonical : t -> t

(** [deep_equal a b] compares canonical forms structurally. This implements
    the paper's generic rule "two deep-equal elements refer to the same
    real-world object". *)
val deep_equal : t -> t -> bool

val compare : t -> t -> int

val equal : t -> t -> bool

(** {1 Traversal and statistics} *)

(** [fold f acc t] folds [f] over every node of [t] in document order. *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

val iter : (t -> unit) -> t -> unit

(** [node_count t] is the number of nodes (elements and text) in [t]. *)
val node_count : t -> int

val depth : t -> int

val pp : Format.formatter -> t -> unit
