(** XML serialisation. Round-trips with {!Parser}: for any tree [t],
    [Parser.parse_string (to_string t)] succeeds and the result is
    canonically equal to [t]. *)

(** [escape_text s] escapes [&], [<] and [>] for character data. *)
val escape_text : string -> string

(** [escape_attr s] additionally escapes quotes and newlines, for use inside
    a double-quoted attribute value. *)
val escape_attr : string -> string

(** [to_string ?decl ?indent t] serialises [t]. With [~indent:n], child
    elements of element-only content are placed on fresh lines indented by
    [n] spaces per level; mixed content is never reformatted. [~decl:true]
    (default [false]) prepends an XML declaration. *)
val to_string : ?decl:bool -> ?indent:int -> Tree.t -> string

val pp : Format.formatter -> Tree.t -> unit

val to_file : ?decl:bool -> ?indent:int -> string -> Tree.t -> unit
