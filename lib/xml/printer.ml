let escape ~attr s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | '\n' when attr -> Buffer.add_string buf "&#10;"
      | '\t' when attr -> Buffer.add_string buf "&#9;"
      | '\r' -> Buffer.add_string buf "&#13;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text = escape ~attr:false

let escape_attr = escape ~attr:true

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr v);
      Buffer.add_char buf '"')
    attrs

let to_buffer ?indent buf t =
  let pad level =
    match indent with
    | None -> ()
    | Some n ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (level * n) ' ')
  in
  let rec go level t =
    match t with
    | Tree.Text s -> Buffer.add_string buf (escape_text s)
    | Tree.Element (name, attrs, []) ->
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        add_attrs buf attrs;
        Buffer.add_string buf "/>"
    | Tree.Element (name, attrs, children) ->
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        add_attrs buf attrs;
        Buffer.add_char buf '>';
        let element_only = List.for_all Tree.is_element children in
        if element_only && indent <> None then begin
          List.iter
            (fun c ->
              pad (level + 1);
              go (level + 1) c)
            children;
          pad level
        end
        else List.iter (go level) children;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
  in
  go 0 t

let to_string ?(decl = false) ?indent t =
  let buf = Buffer.create 256 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  to_buffer ?indent buf t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string ~indent:2 t)

let to_file ?decl ?indent path t =
  let oc = open_out_bin path in
  output_string oc (to_string ?decl ?indent t);
  output_char oc '\n';
  close_out oc
