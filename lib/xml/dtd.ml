type occurs = Optional | One | Many | Any

module Key = struct
  type t = Tree.name * Tree.name

  let compare = Stdlib.compare
end

module M = Map.Make (Key)

type t = occurs M.t

let empty = M.empty

let declare t ~parent ~child occurs = M.add (parent, child) occurs t

let occurs t ~parent ~child =
  match M.find_opt (parent, child) t with Some o -> o | None -> Any

let max_one t ~parent ~child =
  match occurs t ~parent ~child with
  | Optional | One -> true
  | Many | Any -> false

type violation = {
  parent : Tree.name;
  child : Tree.name;
  expected : occurs;
  found : int;
}

let occurs_to_string = function
  | Optional -> "?"
  | One -> "1"
  | Many -> "+"
  | Any -> "*"

let pp_violation ppf v =
  Fmt.pf ppf "under <%s>: <%s> occurs %d times, cardinality is %s" v.parent
    v.child v.found (occurs_to_string v.expected)

let admissible expected found =
  match expected with
  | Optional -> found <= 1
  | One -> found = 1
  | Many -> found >= 1
  | Any -> true

let count_children parent name =
  List.length (Tree.find_children parent name)

let validate t tree =
  let violations = ref [] in
  let check node =
    match node with
    | Tree.Text _ -> ()
    | Tree.Element (parent, _, _) ->
        M.iter
          (fun (p, child) expected ->
            if p = parent then begin
              let found = count_children node child in
              if not (admissible expected found) then
                violations := { parent; child; expected; found } :: !violations
            end)
          t
  in
  Tree.iter check tree;
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let infer docs =
  let max_counts = Hashtbl.create 32 in
  let visit node =
    match node with
    | Tree.Text _ -> ()
    | Tree.Element (parent, _, children) ->
        let counts = Hashtbl.create 8 in
        List.iter
          (fun c ->
            match Tree.name c with
            | None -> ()
            | Some child ->
                Hashtbl.replace counts child
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts child)))
          children;
        Hashtbl.iter
          (fun child n ->
            let key = (parent, child) in
            let prev = Option.value ~default:0 (Hashtbl.find_opt max_counts key) in
            Hashtbl.replace max_counts key (max prev n))
          counts
  in
  List.iter (fun doc -> Tree.iter visit doc) docs;
  Hashtbl.fold
    (fun (parent, child) n t ->
      declare t ~parent ~child (if n <= 1 then Optional else Any))
    max_counts empty

let parse_item parent t item =
  let item = Tree.normalize_space item in
  if item = "" then Ok t
  else
    let n = String.length item in
    let name, occ =
      match item.[n - 1] with
      | '?' -> (String.sub item 0 (n - 1), Optional)
      | '*' -> (String.sub item 0 (n - 1), Any)
      | '+' -> (String.sub item 0 (n - 1), Many)
      | _ -> (item, One)
    in
    let name = Tree.normalize_space name in
    if name = "" then Error (Fmt.str "empty child name in declaration for %s" parent)
    else Ok (declare t ~parent ~child:name occ)

let parse_line t line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = Tree.normalize_space line in
  if line = "" then Ok t
  else
    match String.index_opt line ':' with
    | None -> Error (Fmt.str "missing ':' in DTD line %S" line)
    | Some i ->
        let parent = Tree.normalize_space (String.sub line 0 i) in
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        if parent = "" then Error (Fmt.str "missing parent name in %S" line)
        else
          List.fold_left
            (fun acc item ->
              match acc with Error _ as e -> e | Ok t -> parse_item parent t item)
            (Ok t)
            (String.split_on_char ',' rest)

let of_string s =
  List.fold_left
    (fun acc line -> match acc with Error _ as e -> e | Ok t -> parse_line t line)
    (Ok empty)
    (String.split_on_char '\n' s)

let declarations t =
  M.bindings t |> List.map (fun ((p, c), o) -> (p, c, o))

let to_string t =
  let by_parent = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (p, c, o) ->
      if not (Hashtbl.mem by_parent p) then begin
        Hashtbl.add by_parent p [];
        order := p :: !order
      end;
      Hashtbl.replace by_parent p ((c, o) :: Hashtbl.find by_parent p))
    (declarations t);
  !order |> List.rev
  |> List.map (fun p ->
         let items =
           Hashtbl.find by_parent p |> List.rev
           |> List.map (fun (c, o) ->
                  match o with
                  | One -> c
                  | Optional -> c ^ "?"
                  | Many -> c ^ "+"
                  | Any -> c ^ "*")
         in
         p ^ ": " ^ String.concat ", " items)
  |> String.concat "\n"
