(** Answer-quality measures for uncertain query answers, adapted
    precision/recall in the spirit of the paper's ref [13] (de Keijzer &
    van Keulen, SUM 2007). The paper announces answer-quality experiments
    over these measures (§V, §VII); this module implements them.

    A ranked answer assigns each candidate value a probability. Against a
    ground-truth value set [T]:

    - {e probabilistic precision} — of the probability mass the system
      put on answers, the fraction placed on correct ones:
      [Σ_{v∈T} p(v) / Σ_v p(v)];
    - {e probabilistic recall} — how much of the truth the system found,
      weighted by its confidence: [Σ_{v∈T} p(v) / |T|];
    - {e expected precision/recall} — the expectation over possible worlds
      of the classical set measures. *)

module Pxml = Imprecise_pxml.Pxml
module Answer = Imprecise_pquery.Answer

val probabilistic_precision : Answer.t list -> truth:string list -> float

val probabilistic_recall : Answer.t list -> truth:string list -> float

(** Harmonic mean of the two probabilistic measures; 0 when either is 0. *)
val f_measure : Answer.t list -> truth:string list -> float

(** [top_k k answers] restricts to the [k] highest-ranked answers (for
    precision-at-k style evaluation). *)
val top_k : int -> Answer.t list -> Answer.t list

(** [expected_set_measures ?limit doc ~query ~truth] enumerates the worlds
    (guarded by [limit], default 200_000 combinations), computes classical
    precision/recall of the query answer in each world, and returns their
    expectations [(precision, recall)]. A world with an empty answer has
    precision 1 (nothing asserted, nothing wrong). *)
val expected_set_measures :
  ?limit:float -> Pxml.doc -> query:string -> truth:string list -> float * float

(** {1 Uncertainty measures}

    The paper argues #possible-worlds is deceiving and prefers #nodes; both
    are exposed by {!Pxml}. Entropy is a third view: how spread the
    probability mass is over distinct worlds. *)

(** [world_entropy ?limit doc] is the Shannon entropy (bits) of the
    distribution over distinct (canonical) worlds. *)
val world_entropy : ?limit:float -> Pxml.doc -> float

exception Too_many_worlds of float
