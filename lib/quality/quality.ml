module Pxml = Imprecise_pxml.Pxml
module Worlds = Imprecise_pxml.Worlds
module Answer = Imprecise_pquery.Answer
module Naive = Imprecise_pquery.Naive

exception Too_many_worlds of float

module SS = Set.Make (String)

let mass_on answers pred =
  List.fold_left
    (fun acc (a : Answer.t) -> if pred a.value then acc +. a.prob else acc)
    0. answers

let probabilistic_precision answers ~truth =
  let t = SS.of_list truth in
  let total = mass_on answers (fun _ -> true) in
  if total <= 0. then 1. else mass_on answers (fun v -> SS.mem v t) /. total

let probabilistic_recall answers ~truth =
  let t = SS.of_list truth in
  if SS.is_empty t then 1.
  else mass_on answers (fun v -> SS.mem v t) /. float_of_int (SS.cardinal t)

let f_measure answers ~truth =
  let p = probabilistic_precision answers ~truth in
  let r = probabilistic_recall answers ~truth in
  if p +. r <= 0. then 0. else 2. *. p *. r /. (p +. r)

let top_k k answers =
  List.filteri (fun i _ -> i < k) (Answer.rank answers)

let guard limit doc =
  let combos = Pxml.world_count doc in
  if combos > limit then raise (Too_many_worlds combos)

let expected_set_measures ?(limit = 200_000.) doc ~query ~truth =
  guard limit doc;
  let expr = Imprecise_xpath.Parser.parse_exn query in
  let t = SS.of_list truth in
  let acc_p = ref 0. and acc_r = ref 0. in
  Seq.iter
    (fun (p, forest) ->
      if p > 0. then begin
        let answer = SS.of_list (Naive.answer_in_world forest expr) in
        let correct = SS.cardinal (SS.inter answer t) in
        let precision =
          if SS.is_empty answer then 1.
          else float_of_int correct /. float_of_int (SS.cardinal answer)
        in
        let recall =
          if SS.is_empty t then 1. else float_of_int correct /. float_of_int (SS.cardinal t)
        in
        acc_p := !acc_p +. (p *. precision);
        acc_r := !acc_r +. (p *. recall)
      end)
    (Worlds.enumerate doc);
  (!acc_p, !acc_r)

let world_entropy ?(limit = 200_000.) doc =
  guard limit doc;
  List.fold_left
    (fun acc (p, _) -> if p > 0. then acc -. (p *. (Float.log p /. Float.log 2.)) else acc)
    0. (Worlds.merged doc)
