(* Hash-consing of deep-equal subtrees. See intern.mli for the contract.

   Two structures per interned type:

   - a WEAK POOL keyed by a full structural hash, holding the canonical
     representative of every distinct subtree currently alive. Weak, so
     the pool pins nothing: a subtree no longer referenced anywhere else
     is collected and its cell swept on the next resize.

   - a bounded PHYSICAL MEMO from trees already seen (by pointer) to
     their canonical form and its hash. This is what makes repeat calls
     O(1): interning the same physical subtree again — the hot case in
     Decision_cache lookups and integration folds — is one bounded-hash
     table probe, no traversal. The memo is strong, so it is capped and
     dropped wholesale when it grows past [memo_cap]; correctness never
     depends on it, only constant factors.

   All state is process-global behind one mutex: interning is called from
   the parallel domains of the integration grid. *)

module Tree = Imprecise_xml.Tree
module Obs = Imprecise_obs.Obs

let c_hit = Obs.Metrics.counter "pxml.intern.hit"

let c_miss = Obs.Metrics.counter "pxml.intern.miss"

let lock = Mutex.create ()

let memo_cap = 1 lsl 17

(* FNV-style mixing; results are masked positive at bucket time. *)
let comb h x = (h * 16777619) lxor x

let hash_string s = Hashtbl.hash s

(* ---- weak pool -------------------------------------------------------- *)

(* An open-hashing weak set with the hash cached per cell, so stored
   elements are never re-hashed (their children's hashes may have left the
   memo). *)
module Wpool = struct
  type 'a cell = { h : int; w : 'a Weak.t }

  type 'a t = { mutable buckets : 'a cell list array; mutable count : int }

  let create n = { buckets = Array.make n []; count = 0 }

  let index h len = (h land max_int) mod len

  let resize p =
    let live =
      Array.fold_left
        (fun acc cells ->
          List.fold_left
            (fun acc c -> if Weak.check c.w 0 then c :: acc else acc)
            acc cells)
        [] p.buckets
    in
    let n = List.length live in
    let size = max (Array.length p.buckets) (4 * max 1 n) in
    let buckets = Array.make size [] in
    List.iter
      (fun c ->
        let i = index c.h size in
        buckets.(i) <- c :: buckets.(i))
      live;
    p.buckets <- buckets;
    p.count <- n

  (* [merge p ~hash ~equal x] is the canonical element equal to [x], adding
     [x] itself if the pool has none. [equal] is shallow: callers intern
     children first, so child comparisons are pointer checks. *)
  let merge p ~hash ~equal x =
    let b = index hash (Array.length p.buckets) in
    let rec find = function
      | [] -> None
      | c :: rest -> (
          if c.h <> hash then find rest
          else
            match Weak.get c.w 0 with
            | Some y when equal y x -> Some y
            | _ -> find rest)
    in
    match find p.buckets.(b) with
    | Some y ->
        Obs.Metrics.incr c_hit;
        y
    | None ->
        Obs.Metrics.incr c_miss;
        let w = Weak.create 1 in
        Weak.set w 0 (Some x);
        p.buckets.(b) <- { h = hash; w } :: p.buckets.(b);
        p.count <- p.count + 1;
        if p.count > 4 * Array.length p.buckets then resize p;
        x
end

(* ---- physical memos ---------------------------------------------------- *)

(* [Hashtbl.hash] only inspects a bounded prefix of the structure, so the
   probe is O(1) even on huge trees; physical equality resolves the
   bucket. *)
module Pmemo (T : sig
  type t
end) =
struct
  module H = Hashtbl.Make (struct
    type t = T.t

    let equal = ( == )

    let hash = Hashtbl.hash
  end)

  let tbl : (T.t * int) H.t = H.create 1024

  let find t = H.find_opt tbl t

  let add t v =
    if H.length tbl >= memo_cap then H.reset tbl;
    H.replace tbl t v
end

(* ---- Tree.t ------------------------------------------------------------ *)

module Tree_memo = Pmemo (struct
  type t = Tree.t
end)

let tree_pool : Tree.t Wpool.t = Wpool.create 1024

let hash_attrs attrs =
  List.fold_left
    (fun h (k, v) -> comb (comb h (hash_string k)) (hash_string v))
    0x9e3779b9 attrs

let tree_shallow_equal a b =
  match (a, b) with
  | Tree.Text x, Tree.Text y -> String.equal x y
  | Tree.Element (n1, a1, c1), Tree.Element (n2, a2, c2) ->
      String.equal n1 n2 && a1 = a2 && List.equal ( == ) c1 c2
  | Tree.Text _, Tree.Element _ | Tree.Element _, Tree.Text _ -> false

let rec tree_ih t =
  match Tree_memo.find t with
  | Some r ->
      Obs.Metrics.incr c_hit;
      r
  | None ->
      let ((t', _) as r) =
        match t with
        | Tree.Text s ->
            let h = comb 3 (hash_string s) in
            (Wpool.merge tree_pool ~hash:h ~equal:tree_shallow_equal t, h)
        | Tree.Element (name, attrs, children) ->
            let children, h =
              List.fold_left
                (fun (rev, h) c ->
                  let c', hc = tree_ih c in
                  (c' :: rev, comb h hc))
                ([], comb (comb 5 (hash_string name)) (hash_attrs attrs))
                children
            in
            let candidate = Tree.Element (name, attrs, List.rev children) in
            (Wpool.merge tree_pool ~hash:h ~equal:tree_shallow_equal candidate, h)
      in
      Tree_memo.add t r;
      if t' != t then Tree_memo.add t' r;
      r

let tree t = Mutex.protect lock @@ fun () -> fst (tree_ih t)

let tree_hash t = Mutex.protect lock @@ fun () -> snd (tree_ih t)

let tree_interned t =
  Mutex.protect lock @@ fun () ->
  match Tree_memo.find t with Some (t', _) -> t == t' | None -> false

(* ---- Pxml -------------------------------------------------------------- *)

module Node_memo = Pmemo (struct
  type t = Pxml.node
end)

module Dist_memo = Pmemo (struct
  type t = Pxml.dist
end)

let node_pool : Pxml.node Wpool.t = Wpool.create 1024

let dist_pool : Pxml.dist Wpool.t = Wpool.create 1024

let choice_pool : Pxml.choice Wpool.t = Wpool.create 1024

(* Probabilities intern by BITWISE equality (Int64.bits_of_float), never by
   epsilon: interning must be semantics-preserving to the last bit, or a
   round-trip through the pool would change query probabilities. *)
let hash_prob p = Int64.to_int (Int64.bits_of_float p)

let node_shallow_equal a b =
  match (a, b) with
  | Pxml.Text x, Pxml.Text y -> String.equal x y
  | Pxml.Elem (t1, a1, c1), Pxml.Elem (t2, a2, c2) ->
      String.equal t1 t2 && a1 = a2 && List.equal ( == ) c1 c2
  | Pxml.Text _, Pxml.Elem _ | Pxml.Elem _, Pxml.Text _ -> false

let choice_shallow_equal (a : Pxml.choice) (b : Pxml.choice) =
  Int64.bits_of_float a.prob = Int64.bits_of_float b.prob
  && List.equal ( == ) a.nodes b.nodes

let dist_shallow_equal (a : Pxml.dist) (b : Pxml.dist) =
  List.equal ( == ) a.choices b.choices

let rec node_ih (n : Pxml.node) =
  match Node_memo.find n with
  | Some r ->
      Obs.Metrics.incr c_hit;
      r
  | None ->
      let r =
        match n with
        | Pxml.Text s ->
            let h = comb 7 (hash_string s) in
            (Wpool.merge node_pool ~hash:h ~equal:node_shallow_equal n, h)
        | Pxml.Elem (tag, attrs, content) ->
            let content, h =
              List.fold_left
                (fun (rev, h) d ->
                  let d', hd = dist_ih d in
                  (d' :: rev, comb h hd))
                ([], comb (comb 11 (hash_string tag)) (hash_attrs attrs))
                content
            in
            let candidate = Pxml.Elem (tag, attrs, List.rev content) in
            (Wpool.merge node_pool ~hash:h ~equal:node_shallow_equal candidate, h)
      in
      Node_memo.add n r;
      if fst r != n then Node_memo.add (fst r) r;
      r

and choice_ih (c : Pxml.choice) =
  let nodes, h =
    List.fold_left
      (fun (rev, h) n ->
        let n', hn = node_ih n in
        (n' :: rev, comb h hn))
      ([], comb 13 (hash_prob c.prob))
      c.nodes
  in
  let candidate = { Pxml.prob = c.prob; nodes = List.rev nodes } in
  (Wpool.merge choice_pool ~hash:h ~equal:choice_shallow_equal candidate, h)

and dist_ih (d : Pxml.dist) =
  match Dist_memo.find d with
  | Some r ->
      Obs.Metrics.incr c_hit;
      r
  | None ->
      let choices, h =
        List.fold_left
          (fun (rev, h) c ->
            let c', hc = choice_ih c in
            (c' :: rev, comb h hc))
          ([], 17) d.choices
      in
      let candidate = { Pxml.choices = List.rev choices } in
      let ((d', _) as r) =
        (Wpool.merge dist_pool ~hash:h ~equal:dist_shallow_equal candidate, h)
      in
      Dist_memo.add d r;
      if d' != d then Dist_memo.add d' r;
      r

let node n = Mutex.protect lock @@ fun () -> fst (node_ih n)

let doc (d : Pxml.doc) = Mutex.protect lock @@ fun () -> fst (dist_ih d)

let doc_hash (d : Pxml.doc) = Mutex.protect lock @@ fun () -> snd (dist_ih d)

(* ---- accounting -------------------------------------------------------- *)

type stats = { trees : int; nodes : int; dists : int; choices : int }

let live (p : _ Wpool.t) =
  Array.fold_left
    (fun acc cells ->
      List.fold_left
        (fun acc (c : _ Wpool.cell) -> if Weak.check c.w 0 then acc + 1 else acc)
        acc cells)
    0 p.buckets

let stats () =
  Mutex.protect lock @@ fun () ->
  {
    trees = live tree_pool;
    nodes = live node_pool;
    dists = live dist_pool;
    choices = live choice_pool;
  }

(* [distinct_nodes d] counts PHYSICALLY distinct representation nodes in a
   document — on an interned document this is the deduplicated size, the
   number a shared (binary) encoding will actually write. *)
let distinct_nodes (d : Pxml.doc) =
  let module NT = Hashtbl.Make (struct
    type t = Pxml.node

    let equal = ( == )

    let hash = Hashtbl.hash
  end) in
  let module DT = Hashtbl.Make (struct
    type t = Pxml.dist

    let equal = ( == )

    let hash = Hashtbl.hash
  end) in
  let nt = NT.create 256 and dt = DT.create 256 in
  let count = ref 0 in
  let rec go_node n =
    if not (NT.mem nt n) then begin
      NT.add nt n ();
      incr count;
      match n with
      | Pxml.Text _ -> ()
      | Pxml.Elem (_, _, content) -> List.iter go_dist content
    end
  and go_dist d =
    if not (DT.mem dt d) then begin
      DT.add dt d ();
      incr count;
      List.iter (fun (c : Pxml.choice) -> List.iter go_node c.nodes) d.choices
    end
  in
  go_dist d;
  !count
