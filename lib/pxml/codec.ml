module Xml = Imprecise_xml

let prob_tag = "p:prob"

let poss_tag = "p:poss"

(* Shortest representation that parses back to the SAME bits. "%.17g" is
   always exact for finite doubles but ugly (0.1 +. 0.2 prints as
   0.30000000000000004); "%.12g" is what a human wrote in most inputs. Try
   short first, verified by a bitwise round-trip, and keep the hex-float
   form as a belt-and-braces fallback for anything both decimal forms
   would drift on. *)
let float_to_attr f =
  let exact s =
    match float_of_string_opt s with
    | Some g -> Int64.bits_of_float g = Int64.bits_of_float f
    | None -> false
  in
  let short = Fmt.str "%.12g" f in
  if exact short then short
  else
    let full = Fmt.str "%.17g" f in
    if exact full then full else Fmt.str "%h" f

let rec encode (d : Pxml.doc) : Xml.Tree.t =
  Xml.Tree.Element (prob_tag, [], List.map encode_choice d.choices)

and encode_choice (c : Pxml.choice) : Xml.Tree.t =
  Xml.Tree.Element (poss_tag, [ ("p", float_to_attr c.prob) ], List.map encode_node c.nodes)

and encode_node (n : Pxml.node) : Xml.Tree.t =
  match n with
  | Pxml.Text s -> Xml.Tree.Text s
  | Pxml.Elem (tag, attrs, content) ->
      Xml.Tree.Element (tag, attrs, List.map encode content)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let rec decode (t : Xml.Tree.t) : (Pxml.doc, string) result =
  match t with
  | Xml.Tree.Element (tag, _, children) when tag = prob_tag ->
      let children = List.filter Xml.Tree.is_element children in
      let* choices = map_result decode_choice children in
      (try Ok (Pxml.dist choices) with Pxml.Invalid msg -> Error msg)
  | Xml.Tree.Element (tag, _, _) ->
      Error (Fmt.str "expected <%s>, found <%s>" prob_tag tag)
  | Xml.Tree.Text _ -> Error (Fmt.str "expected <%s>, found text" prob_tag)

and decode_choice (t : Xml.Tree.t) : (Pxml.choice, string) result =
  match t with
  | Xml.Tree.Element (tag, attrs, children) when tag = poss_tag -> (
      match List.assoc_opt "p" attrs with
      | None -> Error (Fmt.str "<%s> without p attribute" poss_tag)
      | Some p -> (
          match float_of_string_opt p with
          | None -> Error (Fmt.str "unparsable probability %S" p)
          | Some prob ->
              (* Indentation whitespace between a possibility's element
                 children is serialisation artefact, not data. *)
              let has_elem = List.exists Xml.Tree.is_element children in
              let children =
                if has_elem then
                  List.filter
                    (function
                      | Xml.Tree.Text s -> Xml.Tree.normalize_space s <> ""
                      | Xml.Tree.Element _ -> true)
                    children
                else children
              in
              let* nodes = map_result decode_node children in
              Ok { Pxml.prob; nodes }))
  | Xml.Tree.Element (tag, _, _) ->
      Error (Fmt.str "expected <%s>, found <%s>" poss_tag tag)
  | Xml.Tree.Text _ -> Error (Fmt.str "expected <%s>, found text" poss_tag)

and decode_node (t : Xml.Tree.t) : (Pxml.node, string) result =
  match t with
  | Xml.Tree.Text s -> Ok (Pxml.Text s)
  | Xml.Tree.Element (tag, _, _) when tag = prob_tag || tag = poss_tag ->
      Error (Fmt.str "<%s> in regular-node position" tag)
  | Xml.Tree.Element (tag, attrs, children) ->
      (* Indentation whitespace between probability nodes is not data; any
         other text here violates the layering (text belongs inside a
         possibility). *)
      let non_ws =
        List.filter
          (function
            | Xml.Tree.Text s -> Xml.Tree.normalize_space s <> ""
            | Xml.Tree.Element _ -> true)
          children
      in
      if List.exists Xml.Tree.is_text non_ws then
        Error (Fmt.str "text directly under <%s>: expected <%s> children" tag prob_tag)
      else
        let* content = map_result decode non_ws in
        Ok (Pxml.Elem (tag, attrs, content))

let to_string ?indent d = Xml.Printer.to_string ?indent (encode d)

let of_string s =
  match Xml.Parser.parse_string s with
  | Error e -> Error (Xml.Parser.error_to_string e)
  | Ok t -> decode t
