(** Encoding probabilistic documents as plain XML.

    This is how IMPrECISE stores probabilistic documents inside an ordinary
    XML DBMS (the paper implements the model as XQuery functions over plain
    MonetDB/XQuery documents). Probability nodes become [<p:prob>] elements
    and possibility nodes become [<p:poss p="…">] elements; regular nodes
    are stored as themselves. [decode ∘ encode = id]. *)

(** Reserved element names. Data documents must not use them. *)
val prob_tag : string

(** [float_to_attr f] is the shortest decimal (or, as a last resort,
    hexadecimal) representation of [f] that [float_of_string] parses back
    to the {e same bits} — probabilities survive the XML round-trip
    bit-for-bit. Exposed for the codec-stress property tests. *)
val float_to_attr : float -> string

val poss_tag : string

val encode : Pxml.doc -> Imprecise_xml.Tree.t

val encode_node : Pxml.node -> Imprecise_xml.Tree.t

(** [decode t] parses the encoding back. Fails with a descriptive message on
    structure violations (wrong layering, missing or unparsable [p]
    attributes, probabilities not summing to 1). *)
val decode : Imprecise_xml.Tree.t -> (Pxml.doc, string) result

val decode_node : Imprecise_xml.Tree.t -> (Pxml.node, string) result

(** [to_string d] / [of_string s] round-trip through serialised XML. *)
val to_string : ?indent:int -> Pxml.doc -> string

val of_string : string -> (Pxml.doc, string) result
