module Xml = Imprecise_xml

type node =
  | Elem of Xml.Tree.name * (Xml.Tree.name * string) list * dist list
  | Text of string

and dist = { choices : choice list }

and choice = { prob : float; nodes : node list }

type doc = dist

let epsilon = 1e-9

exception Invalid of string

let check_dist choices =
  if choices = [] then raise (Invalid "probability node with no possibilities");
  let sum =
    List.fold_left
      (fun acc c ->
        if c.prob < -.epsilon || c.prob > 1. +. epsilon then
          raise (Invalid (Fmt.str "possibility probability %g out of [0,1]" c.prob));
        acc +. c.prob)
      0. choices
  in
  if Float.abs (sum -. 1.) > 1e-6 then
    raise (Invalid (Fmt.str "possibility probabilities sum to %g, not 1" sum))

let dist choices =
  check_dist choices;
  { choices }

let choice ~prob nodes = { prob; nodes }

let certain nodes = { choices = [ { prob = 1.; nodes } ] }

let elem ?(attrs = []) tag content = Elem (tag, attrs, content)

let text s = Text s

let rec of_tree t =
  match t with
  | Xml.Tree.Text s -> Text s
  | Xml.Tree.Element (tag, attrs, []) -> Elem (tag, attrs, [])
  | Xml.Tree.Element (tag, attrs, children) ->
      Elem (tag, attrs, [ certain (List.map of_tree children) ])

let doc_of_tree t = certain [ of_tree t ]

let is_certain_choice_list = function
  | [ { prob; _ } ] -> Float.abs (prob -. 1.) <= 1e-6
  | _ -> false

let rec is_certain_node = function
  | Text _ -> true
  | Elem (_, _, content) -> List.for_all is_certain_dist content

and is_certain_dist d =
  is_certain_choice_list d.choices
  && List.for_all is_certain_node (List.hd d.choices).nodes

let is_certain = is_certain_dist

let rec node_to_tree = function
  | Text s -> Xml.Tree.Text s
  | Elem (tag, attrs, content) ->
      Xml.Tree.Element (tag, attrs, List.concat_map dist_to_trees content)

and dist_to_trees d =
  match d.choices with
  | [ { prob; nodes } ] when Float.abs (prob -. 1.) <= 1e-6 ->
      List.map node_to_tree nodes
  | _ -> raise (Invalid "to_tree_exn: document is not certain")

let to_tree_exn d = dist_to_trees d

let validate d =
  let rec check_node = function
    | Text _ -> ()
    | Elem (_, _, content) -> List.iter check_d content
  and check_d d =
    check_dist d.choices;
    List.iter (fun c -> List.iter check_node c.nodes) d.choices
  in
  try
    check_d d;
    Ok ()
  with Invalid msg -> Error msg

type stats = {
  elements : int;
  texts : int;
  prob_nodes : int;
  poss_nodes : int;
}

let stats d =
  let elements = ref 0
  and texts = ref 0
  and prob_nodes = ref 0
  and poss_nodes = ref 0 in
  let rec node = function
    | Text _ -> incr texts
    | Elem (_, _, content) ->
        incr elements;
        List.iter dist content
  and dist d =
    incr prob_nodes;
    List.iter
      (fun c ->
        incr poss_nodes;
        List.iter node c.nodes)
      d.choices
  in
  dist d;
  { elements = !elements; texts = !texts; prob_nodes = !prob_nodes; poss_nodes = !poss_nodes }

let node_count d =
  let s = stats d in
  s.elements + s.texts + s.prob_nodes + s.poss_nodes

let world_count d =
  let rec node = function
    | Text _ -> 1.
    | Elem (_, _, content) -> List.fold_left (fun acc d -> acc *. dist d) 1. content
  and dist d =
    List.fold_left
      (fun acc c -> acc +. List.fold_left (fun a n -> a *. node n) 1. c.nodes)
      0. d.choices
  in
  dist d

let world_count_int d =
  let overflow = ref false in
  let mul a b =
    if a = 0 || b = 0 then 0
    else if a > max_int / b then begin
      overflow := true;
      max_int
    end
    else a * b
  in
  let add a b =
    if a > max_int - b then begin
      overflow := true;
      max_int
    end
    else a + b
  in
  let rec node = function
    | Text _ -> 1
    | Elem (_, _, content) -> List.fold_left (fun acc d -> mul acc (dist d)) 1 content
  and dist d =
    List.fold_left
      (fun acc c -> add acc (List.fold_left (fun a n -> mul a (node n)) 1 c.nodes))
      0 d.choices
  in
  let n = dist d in
  if !overflow then None else Some n

(* Physical-equality fast paths: on interned (hash-consed) values deep
   equality is a pointer check; on everything else they only add one
   comparison. *)
let rec equal_node a b =
  a == b
  ||
  match a, b with
  | Text x, Text y -> x = y
  | Elem (t1, a1, c1), Elem (t2, a2, c2) ->
      t1 = t2 && a1 = a2 && List.equal equal_dist c1 c2
  | Text _, Elem _ | Elem _, Text _ -> false

and equal_dist a b = a == b || List.equal equal_choice a.choices b.choices

and equal_choice a b =
  a == b
  || Float.abs (a.prob -. b.prob) <= epsilon && List.equal equal_node a.nodes b.nodes

let equal = equal_dist

let rec pp_node ppf = function
  | Text s -> Fmt.pf ppf "%S" s
  | Elem (tag, _, content) ->
      Fmt.pf ppf "@[<hv 2><%s>%a@]" tag Fmt.(list ~sep:sp pp) content

and pp ppf d =
  let pp_choice ppf c =
    Fmt.pf ppf "@[<hv 2>o[%.3g]%a@]" c.prob Fmt.(list ~sep:sp pp_node) c.nodes
  in
  Fmt.pf ppf "@[<hv 2>v(%a)@]" Fmt.(list ~sep:(any " | ") pp_choice) d.choices
