(** Possible-world semantics.

    A possible world of a probabilistic document is obtained by picking one
    possibility at every probability node, independently; its probability is
    the product of the picked possibilities' probabilities. Worlds are plain
    XML forests (usually a single root element).

    Enumeration is the {e reference semantics}: every compact algorithm in
    this repository (compaction, querying, feedback, integration counting)
    is property-tested against it. It is exponential by nature — use
    {!Pxml.world_count} before calling anything here on a large document. *)

type world = float * Imprecise_xml.Tree.t list

(** [enumerate d] lazily produces every choice combination with its
    probability. Worlds that happen to contain the same information are
    {e not} merged. Zero-probability possibilities are skipped up front —
    they carry no mass, so expanding them is pure waste ({!Pxml.world_count}
    still counts them, being a count of combinations, not of reachable
    worlds). Suffix products are memoized, so sibling probability nodes are
    each expanded once rather than once per prefix world.

    [?budget] is ticked once per produced world
    ({!Imprecise_resilience.Budget.tick}), so forcing the sequence raises
    [Budget.Exceeded] promptly when a deadline passes or the world pool
    runs dry — cooperative cancellation for consumers that would otherwise
    walk an exponential space to the end. *)
val enumerate : ?budget:Imprecise_resilience.Budget.t -> Pxml.doc -> world Seq.t

(** [enumerate_node n] enumerates worlds of a single probabilistic node. *)
val enumerate_node : Pxml.node -> (float * Imprecise_xml.Tree.t) Seq.t

(** [enumerate_shard ~shards ~shard d] is the sub-sequence of
    {!enumerate}[ d] owned by [shard] (0-based) out of [shards] equal-ish
    parts: the shards are pairwise disjoint and their union is exactly the
    full enumeration, so per-shard answer tables can simply be summed.
    With [shards <= 1] this is {!enumerate}.

    The split deals one unconditional dimension of the choice space out
    round-robin — the top-level probability node, or, descending through
    forced choices, a nested one wide enough — so shards do not duplicate
    each other's structural work. Only when no such dimension exists
    (near-certain documents) does a shard fall back to index-striding the
    full enumeration, which repeats the walk per shard but still splits
    the per-world evaluation cost evenly. Used by the parallel query
    evaluator — each OCaml domain walks one shard.

    [?budget] is ticked once per world the shard {e owns}; sharing one
    budget across all shards therefore consumes it exactly once per world
    overall, and tripping it cancels every sibling shard at its next
    tick. *)
val enumerate_shard :
  ?budget:Imprecise_resilience.Budget.t -> shards:int -> shard:int -> Pxml.doc -> world Seq.t

(** [merged d] enumerates all worlds, merges those whose canonical XML is
    equal (summing probabilities), and returns them sorted by decreasing
    probability. [?budget] as in {!enumerate}. *)
val merged : ?budget:Imprecise_resilience.Budget.t -> Pxml.doc -> world list

(** [distinct_count d] is the number of distinct (canonical) worlds. *)
val distinct_count : Pxml.doc -> int

(** [total_probability d] sums the probability of all worlds — 1 within
    tolerance for a valid document. *)
val total_probability : Pxml.doc -> float

(** [take n seq] is the first [n] elements of [seq] as a list. *)
val take : int -> 'a Seq.t -> 'a list

(** {1 k-best worlds}

    The most likely interpretations of a document, without enumerating the
    world space: a hierarchical k-best combination — at every probability
    node the choices' best lists are merged by probability, across an
    element's independent probability nodes the lists are combined
    lazily product-wise, keeping only the top [k] at each step. Cost is
    polynomial in [k] and the document size, independent of the number of
    worlds. *)

(** [most_likely ~k d] is the up-to-[k] highest-probability choice
    combinations, as [(probability, forest)], sorted by decreasing
    probability. Equal worlds arising from different combinations are
    {e not} merged (mirroring {!enumerate}); apply canonicalisation if
    needed. *)
val most_likely : k:int -> Pxml.doc -> world list

(** {1 Monte-Carlo sampling}

    For documents whose world space is too large to enumerate, worlds can
    be sampled: at each probability node one possibility is drawn according
    to its probability, independently — which is exactly the model's
    semantics, so a sample is an unbiased draw from the world
    distribution. *)

(** [sample rng d] draws one world and returns it with the advanced
    generator state. The returned float is the world's probability (the
    product of the drawn possibilities). *)
val sample :
  Imprecise_prng.Prng.t ->
  Pxml.doc ->
  (float * Imprecise_xml.Tree.t list) * Imprecise_prng.Prng.t

(** [sample_many ~n rng d] draws [n] independent worlds. *)
val sample_many :
  n:int ->
  Imprecise_prng.Prng.t ->
  Pxml.doc ->
  (float * Imprecise_xml.Tree.t list) list * Imprecise_prng.Prng.t
