(** Hash-consing of deep-equal subtrees.

    Integration folds re-create deep-equal subtrees endlessly: the same
    person element appears in both sources, in every world of the merged
    document, and again when a third source is folded in. Interning maps
    every structurally-equal subtree to one canonical, shared value, so

    - structural equality on interned values starts with a {e pointer
      check} ({!Pxml.equal_node} and {!Imprecise_xml.Tree.deep_equal} both
      fast-path on physical equality);
    - hashing an interned subtree is O(1) — the hash was computed once,
      bottom-up, when the subtree entered the pool (this is what makes
      {!Imprecise_oracle.Decision_cache} lookups cheap); and
    - the binary codec ({!Bincodec}) writes each distinct subtree once,
      emitting back-references for every other occurrence.

    Pools are weak: the canonical representatives are pointed to only
    weakly, so interning never pins memory — a subtree dropped by every
    client is collected as usual. A bounded physical memo makes re-interning
    an already-interned (or already-seen) value O(1) without traversal.

    All functions are thread-safe (one internal mutex) and
    semantics-preserving to the last bit: probabilities are compared
    bitwise, never with an epsilon, so an interned document is
    indistinguishable from its original under every query.

    Counters: [pxml.intern.hit] (a value was already known — physical memo
    or pool), [pxml.intern.miss] (a new distinct structure entered a
    pool). *)

module Tree = Imprecise_xml.Tree

(** {1 Plain XML trees} *)

(** [tree t] is the canonical representative of [t]: structurally equal
    inputs return physically equal outputs. *)
val tree : Tree.t -> Tree.t

(** [tree_hash t] is the full structural hash of [t]'s canonical form,
    interning it first if needed. O(1) on a tree already interned (or
    already hashed) — no traversal. *)
val tree_hash : Tree.t -> int

(** [tree_interned t] is [true] iff [t] is (physically) a canonical
    representative. *)
val tree_interned : Tree.t -> bool

(** {1 Probabilistic documents} *)

(** [doc d] interns a whole probabilistic document: every deep-equal
    subtree — node, possibility, probability node — is shared. *)
val doc : Pxml.doc -> Pxml.doc

val node : Pxml.node -> Pxml.node

(** Structural hash of the canonical form, O(1) once interned. *)
val doc_hash : Pxml.doc -> int

(** {1 Accounting} *)

type stats = { trees : int; nodes : int; dists : int; choices : int }

(** Live (not yet collected) canonical values per pool. *)
val stats : unit -> stats

(** [distinct_nodes d] is the number of {e physically} distinct
    representation nodes reachable from [d] — on an interned document, the
    deduplicated size: what a shared encoding writes, against
    {!Pxml.node_count} which counts every occurrence. *)
val distinct_nodes : Pxml.doc -> int
