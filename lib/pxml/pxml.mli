(** The probabilistic XML data model of the paper (§II).

    A probabilistic document is a strictly layered tree over three node
    kinds:

    - {b probability nodes} (▽, here {!dist}) indicate a choice; their
      children are possibility nodes;
    - {b possibility nodes} (○, here {!choice}) carry the probability that
      their subtree exists; sibling possibilities are mutually exclusive and
      their probabilities sum to 1;
    - {b regular XML nodes} (□, here {!node}) are elements and text; the
      content of an element is a sequence of probability nodes.

    Distinct probability nodes choose {e independently}; this is what makes
    the representation compact — independent uncertainty multiplies the
    number of possible worlds but only adds representation nodes.

    The root of a document is a probability node. A document in which every
    probability node has exactly one possibility of probability 1 is
    {e certain}. *)

module Xml = Imprecise_xml

type node =
  | Elem of Xml.Tree.name * (Xml.Tree.name * string) list * dist list
  | Text of string

and dist = { choices : choice list }

and choice = { prob : float; nodes : node list }

type doc = dist

(** Probability-sum tolerance used by {!validate} and the constructors. *)
val epsilon : float

(** {1 Construction} *)

exception Invalid of string

(** [dist choices] builds a probability node. Raises {!Invalid} if [choices]
    is empty, a probability is outside [0, 1+ε], or the sum differs from 1
    by more than {!epsilon}. *)
val dist : choice list -> dist

val choice : prob:float -> node list -> choice

(** [certain nodes] is a probability node with the single possibility
    [nodes] at probability 1. *)
val certain : node list -> dist

val elem : ?attrs:(Xml.Tree.name * string) list -> Xml.Tree.name -> dist list -> node

val text : string -> node

(** {1 Conversion from/to certain XML} *)

(** [of_tree t] embeds a plain XML tree: each element's children become a
    single certain probability node. *)
val of_tree : Xml.Tree.t -> node

(** [doc_of_tree t] is [certain [of_tree t]]. *)
val doc_of_tree : Xml.Tree.t -> doc

(** [to_tree_exn d] extracts the unique world of a certain document. Raises
    {!Invalid} if [d] is not certain. *)
val to_tree_exn : doc -> Xml.Tree.t list

val is_certain : doc -> bool

(** {1 Validation} *)

(** [validate d] checks the probability invariants everywhere: non-empty
    choice lists, probabilities within bounds, sums within {!epsilon} of
    1. *)
val validate : doc -> (unit, string) result

(** {1 Statistics} *)

type stats = {
  elements : int;
  texts : int;
  prob_nodes : int;
  poss_nodes : int;
}

val stats : doc -> stats

(** [node_count d] is the total number of representation nodes — elements,
    texts, probability and possibility nodes. This is the measure the paper
    reports in Table I and Figure 5. *)
val node_count : doc -> int

(** [world_count d] is the number of choice combinations, i.e. the size of
    the possible-world space before merging worlds that happen to be equal.
    Returns a float because the count grows multiplicatively. *)
val world_count : doc -> float

(** [world_count_int d] is [world_count] as an exact int; [None] on
    overflow. *)
val world_count_int : doc -> int option

(** {1 Structural equality} *)

(** [equal_node a b] is structural equality of probabilistic nodes, with
    probabilities compared up to {!epsilon}. *)
val equal_node : node -> node -> bool

val equal : doc -> doc -> bool

val pp : Format.formatter -> doc -> unit

val pp_node : Format.formatter -> node -> unit
