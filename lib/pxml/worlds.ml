module Xml = Imprecise_xml

type world = float * Xml.Tree.t list

(* Cartesian product of world sequences, concatenating payloads and
   multiplying probabilities. Lazy, and the suffix product is memoized:
   the worlds of [rest] are computed once and replayed for every head
   element, instead of being re-forced per head (which made enumeration
   quadratic in the per-level fan-out). *)
let rec product (seqs : (float * 'a list) Seq.t list) : (float * 'a list) Seq.t =
  match seqs with
  | [] -> Seq.return (1., [])
  | s :: rest ->
      let suffix = Seq.memoize (product rest) in
      Seq.concat_map
        (fun (p, xs) -> Seq.map (fun (q, ys) -> (p *. q, xs @ ys)) suffix)
        s

(* Zero-probability possibilities contribute no mass to any answer;
   expanding them only to filter the resulting worlds later is wasted
   (potentially exponential) work, so they are skipped up front. *)
let live_choices (d : Pxml.dist) =
  List.filter (fun (c : Pxml.choice) -> c.Pxml.prob > 0.) d.Pxml.choices

let rec enumerate_node (n : Pxml.node) : (float * Xml.Tree.t) Seq.t =
  match n with
  | Pxml.Text s -> Seq.return (1., Xml.Tree.Text s)
  | Pxml.Elem (tag, attrs, content) ->
      Seq.map
        (fun (p, children) -> (p, Xml.Tree.Element (tag, attrs, children)))
        (product (List.map enumerate content))

and enumerate (d : Pxml.dist) : world Seq.t =
  Seq.concat_map
    (fun (c : Pxml.choice) ->
      Seq.map
        (fun (p, nodes) -> (c.Pxml.prob *. p, nodes))
        (product (List.map (fun n -> Seq.map (fun (p, t) -> (p, [ t ])) (enumerate_node n)) c.Pxml.nodes)))
    (List.to_seq (live_choices d))

module Budget = Imprecise_resilience.Budget

(* Cooperative cancellation: tick the budget once per produced world, so a
   blown deadline or exhausted world pool stops the consumer at the next
   element instead of at the end of an exponential walk. *)
let guard budget seq =
  match budget with
  | None -> seq
  | Some b ->
      Seq.map
        (fun w ->
          Budget.tick b;
          w)
        seq

let enumerate ?budget d = guard budget (enumerate d)

(* ---- sharding, for parallel enumeration ----------------------------------

   A shard is a rewritten document whose enumeration is a disjoint subset
   of the original's, with the [shards] subsets united being exactly
   [enumerate d]. The rewrite deals one {e unconditional dimension} of the
   choice space out round-robin: the top-level dist itself when it has at
   least [shards] live choices, else — descending through forced
   (single-live-choice) dists, whose content dists are independent product
   dimensions — the first nested dist that does. A multi-choice dist that
   is itself too small to deal out can still carry the shard if {e every}
   one of its live choices can be sharded inside, since the union of
   per-choice partitions partitions the whole. The search path depends
   only on the structure, never on [shard], so all shards restrict the
   same dimension.

   When no dimension is wide enough (a near-certain document), the shard
   falls back to taking every [shards]-th world of the full enumeration:
   the structural walk is then repeated per shard, but the expensive
   per-world work downstream (query evaluation) still splits evenly. *)

let deal ~shards ~shard choices =
  List.filteri (fun i _ -> i mod shards = shard) choices

let rec shard_dist ~shards ~shard (d : Pxml.dist) : Pxml.dist option =
  let live = live_choices d in
  if List.length live >= shards then
    Some { Pxml.choices = deal ~shards ~shard live }
  else
    let inside (c : Pxml.choice) =
      Option.map
        (fun nodes -> { c with Pxml.nodes })
        (shard_nodes ~shards ~shard c.Pxml.nodes)
    in
    match live with
    | [ c ] -> Option.map (fun c -> { Pxml.choices = [ c ] }) (inside c)
    | live ->
        (* whether a choice is shardable inside is structural — identical
           for every shard — so this classification is consistent: each
           shard keeps all shardable choices (with its own interior slice)
           while the unshardable ones are dealt out whole, one shard each *)
        let sharded = List.map (fun c -> (c, inside c)) live in
        if List.exists (fun (_, o) -> Option.is_some o) sharded then begin
          let dealt = ref 0 in
          let choices =
            List.filter_map
              (fun (c, o) ->
                match o with
                | Some c -> Some c
                | None ->
                    let mine = !dealt mod shards = shard in
                    incr dealt;
                    if mine then Some c else None)
              sharded
          in
          Some { Pxml.choices = choices }
        end
        else None

and shard_nodes ~shards ~shard nodes =
  let rec go acc = function
    | [] -> None
    | (Pxml.Text _ as n) :: rest -> go (n :: acc) rest
    | (Pxml.Elem (tag, attrs, content) as n) :: rest -> (
        match shard_content ~shards ~shard content with
        | Some content ->
            Some (List.rev_append acc (Pxml.Elem (tag, attrs, content) :: rest))
        | None -> go (n :: acc) rest)
  in
  go [] nodes

and shard_content ~shards ~shard dists =
  let rec go acc = function
    | [] -> None
    | d :: rest -> (
        match shard_dist ~shards ~shard d with
        | Some d -> Some (List.rev_append acc (d :: rest))
        | None -> go (d :: acc) rest)
  in
  go [] dists

let enumerate_shard ?budget ~shards ~shard (d : Pxml.dist) : world Seq.t =
  if shards <= 1 then enumerate ?budget d
  else begin
    if shard < 0 || shard >= shards then
      invalid_arg (Printf.sprintf "Worlds.enumerate_shard: shard %d of %d" shard shards);
    match shard_dist ~shards ~shard d with
    | Some d -> enumerate ?budget d
    | None ->
        (* guard outside the stride: each shard ticks only the worlds it
           owns, so across shards the shared budget is consumed exactly
           once per world, same as the structurally-sharded path *)
        guard budget
          (Seq.filter_map
             (fun (i, w) -> if i mod shards = shard then Some w else None)
             (Seq.mapi (fun i w -> (i, w)) (enumerate d)))
  end



module Key = struct
  type t = Xml.Tree.t list

  let compare = List.compare Xml.Tree.compare
end

module M = Map.Make (Key)

let merged ?budget d =
  let m =
    Seq.fold_left
      (fun m (p, forest) ->
        let key = List.map Xml.Tree.canonical forest in
        let prev = Option.value ~default:0. (M.find_opt key m) in
        M.add key (prev +. p) m)
      M.empty (enumerate ?budget d)
  in
  M.bindings m
  |> List.map (fun (k, p) -> (p, k))
  |> List.sort (fun (p, _) (q, _) -> Float.compare q p)

let distinct_count d = List.length (merged d)

let total_probability d = Seq.fold_left (fun acc (p, _) -> acc +. p) 0. (enumerate d)

let take n seq = List.of_seq (Seq.take n seq)

(* ---- k-best worlds -------------------------------------------------------- *)

let take_top k xs =
  let sorted = List.sort (fun (p, _) (q, _) -> Float.compare q p) xs in
  List.filteri (fun i _ -> i < k) sorted

(* Combine the k-best lists of independent components: a lazy product would
   be asymptotically better, but with the top-k lists already capped at k
   elements the quadratic merge-per-step is k²·|components| — fine for the
   small k this API is for. *)
let product_top k (lists : (float * 'a list) list list) : (float * 'a list) list =
  List.fold_left
    (fun acc best ->
      take_top k
        (List.concat_map (fun (p, xs) -> List.map (fun (q, ys) -> (p *. q, xs @ ys)) best) acc))
    [ (1., []) ]
    lists

let rec best_node k (n : Pxml.node) : (float * Xml.Tree.t) list =
  match n with
  | Pxml.Text s -> [ (1., Xml.Tree.Text s) ]
  | Pxml.Elem (tag, attrs, content) ->
      List.map
        (fun (p, children) -> (p, Xml.Tree.Element (tag, attrs, children)))
        (product_top k (List.map (best_dist k) content))

and best_dist k (d : Pxml.dist) : (float * Xml.Tree.t list) list =
  take_top k
    (List.concat_map
       (fun (c : Pxml.choice) ->
         List.map
           (fun (p, nodes) -> (c.Pxml.prob *. p, nodes))
           (product_top k
              (List.map (fun n -> List.map (fun (p, t) -> (p, [ t ])) (best_node k n)) c.Pxml.nodes)))
       d.Pxml.choices)

let most_likely ~k d = if k <= 0 then [] else best_dist k d

module Prng = Imprecise_prng.Prng

let pick_choice rng (d : Pxml.dist) =
  let u, rng = Prng.float rng in
  let rec go acc = function
    | [] -> (List.hd (List.rev d.Pxml.choices), rng) (* numeric slack: last *)
    | (c : Pxml.choice) :: rest ->
        let acc = acc +. c.prob in
        if u < acc then (c, rng) else go acc rest
  in
  go 0. d.Pxml.choices

let rec sample_node rng (n : Pxml.node) =
  match n with
  | Pxml.Text s -> ((1., Xml.Tree.Text s), rng)
  | Pxml.Elem (tag, attrs, content) ->
      let (p, children), rng = sample_dists rng content in
      ((p, Xml.Tree.Element (tag, attrs, children)), rng)

and sample_dists rng (dists : Pxml.dist list) =
  List.fold_left
    (fun ((p, acc), rng) d ->
      let (q, nodes), rng = sample_dist rng d in
      ((p *. q, acc @ nodes), rng))
    ((1., []), rng)
    dists

and sample_dist rng (d : Pxml.dist) =
  let c, rng = pick_choice rng d in
  let (p, nodes), rng =
    List.fold_left
      (fun ((p, acc), rng) n ->
        let (q, t), rng = sample_node rng n in
        ((p *. q, acc @ [ t ]), rng))
      ((c.Pxml.prob, []), rng)
      c.Pxml.nodes
  in
  ((p, nodes), rng)

let sample rng d = sample_dist rng d

let sample_many ~n rng d =
  let rec go k rng acc =
    if k = 0 then (List.rev acc, rng)
    else
      let w, rng = sample rng d in
      go (k - 1) rng (w :: acc)
  in
  go n rng []
