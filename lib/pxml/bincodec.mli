(** Compact binary codec for probabilistic documents — the v3 store format.

    A binary document is one self-describing {e frame}:

    {v
      "IPXB"              4-byte magic
      version             1 byte      (currently 1)
      kind                1 byte      (0 = certain tree, 1 = probabilistic doc)
      payload length      LEB128 varint
      payload CRC-32      4 bytes, little-endian (IEEE polynomial)
      payload             <length> bytes
    v}

    The payload encodes the document with {e shared subtrees}: every
    sharable production (string, XML node, probability node) is prefixed by
    a varint [k] — [k = 0] introduces a definition (body follows, appended
    post-order to that production's table), [k > 0] is a back-reference to
    definition [k-1]. Encoding interns the document first ({!Intern.doc}),
    so deep-equal subtrees are written once; decoding rebuilds the same
    sharing physically. Probabilities travel as their IEEE-754 bits
    (little-endian), so the round-trip is bit-exact — no text formatting is
    involved.

    Decoding verifies magic, version, declared length, and CRC-32 before
    building anything, and re-validates the structural invariants
    (probability sums) as the XML codec does; any mismatch is an [Error],
    never an exception, so the store can quarantine a torn or corrupted
    file instead of crashing. *)

module Tree = Imprecise_xml.Tree

type payload = Certain of Tree.t | Probabilistic of Pxml.doc

val version : int

(** [to_string p] is the framed binary encoding of [p]. The input is
    interned as a side effect. *)
val to_string : payload -> string

val tree_to_string : Tree.t -> string

val doc_to_string : Pxml.doc -> string

(** [of_string s] decodes a frame produced by {!to_string}. Errors (bad
    magic, unsupported version, length mismatch, checksum failure,
    truncation, malformed payload) are returned, not raised. *)
val of_string : string -> (payload, string) result

(** [is_binary s] is [true] iff [s] starts with the binary magic — use to
    dispatch between the XML and binary parsers. *)
val is_binary : string -> bool

(** CRC-32 (IEEE) of a string, exposed for tests. *)
val crc32 : string -> int32
