(** Compaction of probabilistic documents.

    Compaction shrinks the representation without changing the possible-world
    distribution (up to merging of deep-equal worlds):

    - possibilities with probability ≤ ε are pruned (the remaining mass is
      renormalised — it differs from 1 by at most the pruned mass);
    - structurally equal sibling possibilities are merged, summing their
      probabilities;
    - adjacent {e certain} probability nodes in an element's content are
      fused into one, and empty certain probability nodes are dropped.

    The paper's incremental-improvement story (feedback removes impossible
    worlds) relies on compaction to actually reclaim the space. *)

(** [compact d] applies all rules bottom-up until a fixpoint. *)
val compact : Pxml.doc -> Pxml.doc

val compact_node : Pxml.node -> Pxml.node

(** [prune_threshold] — possibilities below this probability are considered
    impossible by {!compact} (default [1e-12]); exposed for tests. *)
val prune_threshold : float

(** {1 Lossy reduction}

    The paper warns that "reduction should not be pushed too far, because
    eliminating valid possibilities reduces the quality of query answers".
    [prune_unlikely] is the knob that warning is about: it deletes every
    possibility whose probability is below [threshold] and renormalises —
    the representation shrinks, but any answer that only existed in the
    deleted worlds is silently lost. The answer-quality-vs-threshold curve
    is measured by [bench/main.exe ablation]. *)

(** [prune_unlikely ~threshold d] — possibilities with probability
    < [threshold] are removed bottom-up, survivors renormalised, then
    {!compact} is applied. A probability node always keeps at least its
    most likely possibility. *)
val prune_unlikely : threshold:float -> Pxml.doc -> Pxml.doc

(** [prune_to_budget ?node_budget ?world_budget d] is the budgeted form:
    lossless {!compact} first, then {!prune_unlikely} with a geometrically
    escalating threshold (from [1e-6], ×4 per round) until the document has
    at most [node_budget] representation nodes ({!Pxml.node_count}) and at
    most [world_budget] possible worlds ({!Pxml.world_count_int};
    overflowing counts as over budget). Always terminates: at threshold 1
    every probability node keeps only its most likely possibility. This is
    what keeps stores bounded under repeated [integrate_many] folds — and it
    is exactly the lossy reduction the paper warns not to push too far. *)
val prune_to_budget : ?node_budget:int -> ?world_budget:int -> Pxml.doc -> Pxml.doc
