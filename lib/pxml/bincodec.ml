(* The compact binary codec. See bincodec.mli for the format specification
   (doc/store.md carries the same spec for operators). *)

module Tree = Imprecise_xml.Tree

let magic = "IPXB"

let version = 1

type payload = Certain of Tree.t | Probabilistic of Pxml.doc

(* ---- CRC-32 (IEEE/zlib polynomial, same as Store.Manifest) ------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl)
      in
      crc := Int32.logxor table.(i) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xFFFFFFFFl

(* ---- primitive writers ------------------------------------------------- *)

let put_varint buf n =
  if n < 0 then invalid_arg "Bincodec: negative varint";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_u32le buf (v : int32) =
  for i = 0 to 3 do
    Buffer.add_char buf
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * i)) 0xFFl)))
  done

(* Probabilities travel as their IEEE-754 bits, little-endian: the decode
   is bit-for-bit the encode, with no text formatting in between. *)
let put_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

(* ---- primitive readers ------------------------------------------------- *)

exception Bad of string

type reader = { s : string; mutable pos : int; limit : int }

let fail r msg = raise (Bad (Fmt.str "%s at offset %d" msg r.pos))

let byte r =
  if r.pos >= r.limit then fail r "truncated payload";
  let c = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_varint r =
  let rec go shift acc =
    if shift > 62 then fail r "varint too wide";
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_u32le r =
  let b () = Int32.of_int (byte r) in
  let v0 = b () in
  let v1 = b () in
  let v2 = b () in
  let v3 = b () in
  Int32.logor v0
    (Int32.logor
       (Int32.shift_left v1 8)
       (Int32.logor (Int32.shift_left v2 16) (Int32.shift_left v3 24)))

let get_float r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let get_bytes r n =
  if n < 0 || r.pos + n > r.limit then fail r "truncated payload";
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

(* ---- shared-value streams ----------------------------------------------

   Every sharable production (string, tree node, pxml node, probability
   node) is written as [varint k]: [k = 0] introduces a definition whose
   body follows and which is appended to that production's table once
   complete (post-order), [k > 0] is a back-reference to [table[k-1]].
   Encoding interns the value first, so deep-equal subtrees are written
   once and referenced ever after; decoding rebuilds the same sharing
   physically. *)

module Etbl (T : sig
  type t
end) =
struct
  module H = Hashtbl.Make (struct
    type t = T.t

    let equal = ( == )

    let hash = Hashtbl.hash
  end)

  type t = { tbl : int H.t; mutable next : int }

  let create () = { tbl = H.create 64; next = 0 }

  let find t v = H.find_opt t.tbl v

  let define t v =
    H.replace t.tbl v t.next;
    t.next <- t.next + 1
end

module Dtbl = struct
  type 'a t = { mutable items : 'a array; mutable n : int }

  let create () = { items = [||]; n = 0 }

  let append t v =
    if t.n >= Array.length t.items then begin
      let size = max 64 (2 * Array.length t.items) in
      let items = Array.make size v in
      Array.blit t.items 0 items 0 t.n;
      t.items <- items
    end;
    t.items.(t.n) <- v;
    t.n <- t.n + 1

  let get r t k = if k < 0 || k >= t.n then fail r "dangling back-reference" else t.items.(k)
end

(* ---- encoding ---------------------------------------------------------- *)

module Stbl = Etbl (struct
  type t = string
end)

module Ttbl = Etbl (struct
  type t = Tree.t
end)

module Ntbl = Etbl (struct
  type t = Pxml.node
end)

module Dstbl = Etbl (struct
  type t = Pxml.dist
end)

type encoder = {
  buf : Buffer.t;
  strings : Stbl.t;
  trees : Ttbl.t;
  nodes : Ntbl.t;
  dists : Dstbl.t;
}

(* Strings are shared by an == probe over interned values; a string missed
   by the probe (same bytes, different allocation) is merely written twice,
   never decoded differently. *)
let put_string e s =
  match Stbl.find e.strings s with
  | Some k -> put_varint e.buf (k + 1)
  | None ->
      put_varint e.buf 0;
      put_varint e.buf (String.length s);
      Buffer.add_string e.buf s;
      Stbl.define e.strings s

let put_attrs e attrs =
  put_varint e.buf (List.length attrs);
  List.iter
    (fun (k, v) ->
      put_string e k;
      put_string e v)
    attrs

let rec put_tree e t =
  match Ttbl.find e.trees t with
  | Some k -> put_varint e.buf (k + 1)
  | None ->
      put_varint e.buf 0;
      (match t with
      | Tree.Text s ->
          Buffer.add_char e.buf '\000';
          put_string e s
      | Tree.Element (name, attrs, children) ->
          Buffer.add_char e.buf '\001';
          put_string e name;
          put_attrs e attrs;
          put_varint e.buf (List.length children);
          List.iter (put_tree e) children);
      Ttbl.define e.trees t

let rec put_node e (n : Pxml.node) =
  match Ntbl.find e.nodes n with
  | Some k -> put_varint e.buf (k + 1)
  | None ->
      put_varint e.buf 0;
      (match n with
      | Pxml.Text s ->
          Buffer.add_char e.buf '\000';
          put_string e s
      | Pxml.Elem (tag, attrs, content) ->
          Buffer.add_char e.buf '\001';
          put_string e tag;
          put_attrs e attrs;
          put_varint e.buf (List.length content);
          List.iter (put_dist e) content);
      Ntbl.define e.nodes n

and put_dist e (d : Pxml.dist) =
  match Dstbl.find e.dists d with
  | Some k -> put_varint e.buf (k + 1)
  | None ->
      put_varint e.buf 0;
      put_varint e.buf (List.length d.choices);
      List.iter
        (fun (c : Pxml.choice) ->
          put_float e.buf c.prob;
          put_varint e.buf (List.length c.nodes);
          List.iter (put_node e) c.nodes)
        d.choices;
      Dstbl.define e.dists d

let encoder () =
  {
    buf = Buffer.create 1024;
    strings = Stbl.create ();
    trees = Ttbl.create ();
    nodes = Ntbl.create ();
    dists = Dstbl.create ();
  }

let frame ~kind payload =
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr kind);
  put_varint buf (String.length payload);
  put_u32le buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let tree_to_string t =
  let e = encoder () in
  put_tree e (Intern.tree t);
  frame ~kind:0 (Buffer.contents e.buf)

let doc_to_string d =
  let e = encoder () in
  put_dist e (Intern.doc d);
  frame ~kind:1 (Buffer.contents e.buf)

let to_string = function
  | Certain t -> tree_to_string t
  | Probabilistic d -> doc_to_string d

(* ---- decoding ---------------------------------------------------------- *)

type decoder = {
  r : reader;
  dstrings : string Dtbl.t;
  dtrees : Tree.t Dtbl.t;
  dnodes : Pxml.node Dtbl.t;
  ddists : Pxml.dist Dtbl.t;
}

let get_string d =
  let k = get_varint d.r in
  if k > 0 then Dtbl.get d.r d.dstrings (k - 1)
  else begin
    let len = get_varint d.r in
    let s = get_bytes d.r len in
    Dtbl.append d.dstrings s;
    s
  end

let get_attrs d =
  let n = get_varint d.r in
  List.init n (fun _ ->
      let k = get_string d in
      let v = get_string d in
      (k, v))

let rec get_tree d =
  let k = get_varint d.r in
  if k > 0 then Dtbl.get d.r d.dtrees (k - 1)
  else begin
    let t =
      match byte d.r with
      | 0 -> Tree.Text (get_string d)
      | 1 ->
          let name = get_string d in
          let attrs = get_attrs d in
          let n = get_varint d.r in
          Tree.Element (name, attrs, List.init n (fun _ -> get_tree d))
      | k -> fail d.r (Fmt.str "unknown tree-node kind %d" k)
    in
    Dtbl.append d.dtrees t;
    t
  end

let rec get_node d : Pxml.node =
  let k = get_varint d.r in
  if k > 0 then Dtbl.get d.r d.dnodes (k - 1)
  else begin
    let n =
      match byte d.r with
      | 0 -> Pxml.Text (get_string d)
      | 1 ->
          let tag = get_string d in
          let attrs = get_attrs d in
          let n = get_varint d.r in
          Pxml.Elem (tag, attrs, List.init n (fun _ -> get_dist d))
      | k -> fail d.r (Fmt.str "unknown node kind %d" k)
    in
    Dtbl.append d.dnodes n;
    n
  end

and get_dist d : Pxml.dist =
  let k = get_varint d.r in
  if k > 0 then Dtbl.get d.r d.ddists (k - 1)
  else begin
    let n = get_varint d.r in
    if n = 0 then fail d.r "probability node with no possibilities";
    let choices =
      List.init n (fun _ ->
          let prob = get_float d.r in
          let n = get_varint d.r in
          { Pxml.prob; nodes = List.init n (fun _ -> get_node d) })
    in
    (* the structural invariants (probabilities in range, sums within
       epsilon of 1) are enforced exactly as the XML codec enforces them *)
    let dist = try Pxml.dist choices with Pxml.Invalid msg -> fail d.r msg in
    Dtbl.append d.ddists dist;
    dist
  end

let of_string s =
  let n = String.length s in
  try
    if n < 6 || String.sub s 0 4 <> magic then Error "bad magic: not a binary document"
    else if Char.code s.[4] <> version then
      Error (Fmt.str "unsupported binary format version %d" (Char.code s.[4]))
    else begin
      let kind = Char.code s.[5] in
      let r = { s; pos = 6; limit = n } in
      let len = get_varint r in
      let crc = get_u32le r in
      if n - r.pos <> len then
        Error
          (Fmt.str "payload length mismatch: frame declares %d bytes, found %d" len
             (n - r.pos))
      else begin
        let payload_start = r.pos in
        let payload = String.sub s payload_start len in
        if crc32 payload <> crc then
          Error "payload fails its CRC-32 (torn write or bit corruption)"
        else begin
          let d =
            {
              r;
              dstrings = Dtbl.create ();
              dtrees = Dtbl.create ();
              dnodes = Dtbl.create ();
              ddists = Dtbl.create ();
            }
          in
          let v =
            match kind with
            | 0 -> Certain (get_tree d)
            | 1 -> Probabilistic (get_dist d)
            | k -> fail r (Fmt.str "unknown document kind %d" k)
          in
          if r.pos <> r.limit then Error "trailing bytes after document"
          else Ok v
        end
      end
    end
  with Bad msg -> Error msg

let is_binary s = String.length s >= 4 && String.sub s 0 4 = magic
