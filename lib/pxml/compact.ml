let prune_threshold = 1e-12

let is_certain_unit (d : Pxml.dist) =
  match d.choices with
  | [ { prob; _ } ] -> Float.abs (prob -. 1.) <= 1e-6
  | _ -> false

(* Fuse runs of certain probability nodes in an element's content and drop
   certain-empty ones. Distinct uncertain probability nodes must remain
   separate: they are independent choices. *)
let fuse_content (content : Pxml.dist list) : Pxml.dist list =
  let flush pending acc =
    match List.concat (List.rev pending) with
    | [] -> acc
    | nodes -> Pxml.certain nodes :: acc
  in
  let rec go pending acc = function
    | [] -> List.rev (flush pending acc)
    | d :: rest ->
        if is_certain_unit d then
          go ((List.hd d.Pxml.choices).nodes :: pending) acc rest
        else go [] (d :: flush pending acc) rest
  in
  go [] [] content

let rec compact_node (n : Pxml.node) : Pxml.node =
  match n with
  | Pxml.Text _ -> n
  | Pxml.Elem (tag, attrs, content) ->
      let content = List.map compact_dist content in
      Pxml.Elem (tag, attrs, fuse_content content)

and compact_dist (d : Pxml.dist) : Pxml.dist =
  let choices =
    List.map
      (fun (c : Pxml.choice) -> { c with Pxml.nodes = List.map compact_node c.nodes })
      d.choices
  in
  let kept = List.filter (fun (c : Pxml.choice) -> c.prob > prune_threshold) choices in
  let kept = if kept = [] then choices else kept in
  (* Merge structurally equal possibilities. *)
  let merged =
    List.fold_left
      (fun acc (c : Pxml.choice) ->
        let rec insert = function
          | [] -> [ c ]
          | (c' : Pxml.choice) :: rest ->
              if List.equal Pxml.equal_node c'.nodes c.nodes then
                { c' with prob = c'.prob +. c.prob } :: rest
              else c' :: insert rest
        in
        insert acc)
      [] kept
  in
  let total = List.fold_left (fun acc (c : Pxml.choice) -> acc +. c.prob) 0. merged in
  let normalised =
    if total > 0. && Float.abs (total -. 1.) > Pxml.epsilon then
      List.map (fun (c : Pxml.choice) -> { c with Pxml.prob = c.prob /. total }) merged
    else merged
  in
  { Pxml.choices = normalised }

let rec compact (d : Pxml.doc) : Pxml.doc =
  let d' = compact_dist d in
  if Pxml.equal d d' then d' else compact d'

let rec prune_unlikely_node threshold (n : Pxml.node) : Pxml.node =
  match n with
  | Pxml.Text _ -> n
  | Pxml.Elem (tag, attrs, content) ->
      Pxml.Elem (tag, attrs, List.map (prune_unlikely_dist threshold) content)

and prune_unlikely_dist threshold (d : Pxml.dist) : Pxml.dist =
  let kept = List.filter (fun (c : Pxml.choice) -> c.prob >= threshold) d.choices in
  let kept =
    if kept = [] then
      (* keep the most likely possibility rather than emptying the node *)
      [
        List.fold_left
          (fun (best : Pxml.choice) (c : Pxml.choice) -> if c.prob > best.prob then c else best)
          (List.hd d.choices) (List.tl d.choices);
      ]
    else kept
  in
  let total = List.fold_left (fun acc (c : Pxml.choice) -> acc +. c.prob) 0. kept in
  {
    Pxml.choices =
      List.map
        (fun (c : Pxml.choice) ->
          {
            Pxml.prob = c.prob /. total;
            nodes = List.map (prune_unlikely_node threshold) c.nodes;
          })
        kept;
  }

let prune_unlikely ~threshold d = compact (prune_unlikely_dist threshold d)

(* Budgeted reduction: escalate the prune threshold geometrically until the
   document fits. Threshold 1.0 is the floor of the search space — at that
   point every probability node keeps only its argmax possibility (one
   world), which is the smallest document [prune_unlikely] can produce, so
   the loop always terminates even on unsatisfiable budgets. *)
let prune_to_budget ?node_budget ?world_budget (d : Pxml.doc) : Pxml.doc =
  let within (d : Pxml.doc) =
    (match node_budget with
    | Some b -> Pxml.node_count d <= b
    | None -> true)
    &&
    match world_budget with
    | Some b -> ( match Pxml.world_count_int d with Some w -> w <= b | None -> false)
    | None -> true
  in
  let d = compact d in
  if within d then d
  else
    let rec go threshold d =
      let d' = prune_unlikely ~threshold d in
      if within d' || threshold >= 1. then d'
      else go (Float.min 1. (threshold *. 4.)) d'
    in
    go 1e-6 d
