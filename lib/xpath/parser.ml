exception Parse_error of string

type located_error = { message : string; offset : int option }

(* Tokens are paired with their start offset in the source, so errors can
   point at the offending character. *)
type stream = { mutable toks : (Lexer.token * int) list }

let peek st = match st.toks with [] -> Lexer.Eof | (t, _) :: _ -> t

let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.Eof

let peek_offset st = match st.toks with [] -> None | (_, off) :: _ -> Some off

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let expect st tok =
  if peek st = tok then advance st
  else fail "expected %s, found %s" (Lexer.token_to_string tok) (Lexer.token_to_string (peek st))

let axis_of_name = function
  | "child" -> Ast.Child
  | "descendant" -> Ast.Descendant
  | "descendant-or-self" -> Ast.Descendant_or_self
  | "self" -> Ast.Self
  | "parent" -> Ast.Parent
  | "ancestor" -> Ast.Ancestor
  | "ancestor-or-self" -> Ast.Ancestor_or_self
  | "following-sibling" -> Ast.Following_sibling
  | "preceding-sibling" -> Ast.Preceding_sibling
  | "attribute" -> Ast.Attribute
  | a -> fail "unsupported axis %s" a

(* Tokens that may start a location-path step. *)
let starts_step = function
  | Lexer.Name _ | Lexer.Star | Lexer.At | Lexer.Dot | Lexer.Dotdot -> true
  | _ -> false

let rec parse_expr st : Ast.expr =
  match peek st, peek2 st with
  | Lexer.Name ("some" | "every"), Lexer.Variable _ -> parse_quantified st
  | Lexer.Name "for", Lexer.Variable _ -> parse_for st
  | Lexer.Name "let", Lexer.Variable _ -> parse_let st
  | Lexer.Name "if", Lexer.Lparen -> parse_if st
  | _ -> parse_or st

and parse_for st =
  advance st;
  let var =
    match peek st with
    | Lexer.Variable v -> advance st; v
    | t -> fail "expected $variable, found %s" (Lexer.token_to_string t)
  in
  expect st (Lexer.Name "in");
  let domain = parse_or st in
  let where =
    match peek st with
    | Lexer.Name "where" ->
        advance st;
        Some (parse_or st)
    | _ -> None
  in
  expect st (Lexer.Name "return");
  let body = parse_expr st in
  Ast.For (var, domain, where, body)

and parse_let st =
  advance st;
  let var =
    match peek st with
    | Lexer.Variable v -> advance st; v
    | t -> fail "expected $variable, found %s" (Lexer.token_to_string t)
  in
  expect st Lexer.Assign;
  let value = parse_expr st in
  expect st (Lexer.Name "return");
  let body = parse_expr st in
  Ast.Let (var, value, body)

and parse_if st =
  advance st;
  expect st Lexer.Lparen;
  let cond = parse_expr st in
  expect st Lexer.Rparen;
  expect st (Lexer.Name "then");
  let then_ = parse_expr st in
  expect st (Lexer.Name "else");
  let else_ = parse_expr st in
  Ast.If (cond, then_, else_)

and parse_quantified st =
  let quant =
    match peek st with
    | Lexer.Name "some" -> Ast.Some_q
    | Lexer.Name "every" -> Ast.Every_q
    | t -> fail "expected quantifier, found %s" (Lexer.token_to_string t)
  in
  advance st;
  let var =
    match peek st with
    | Lexer.Variable v -> advance st; v
    | t -> fail "expected $variable, found %s" (Lexer.token_to_string t)
  in
  expect st (Lexer.Name "in");
  let domain = parse_or st in
  expect st (Lexer.Name "satisfies");
  let condition = parse_expr st in
  Ast.Quantified (quant, var, domain, condition)

and parse_or st =
  let left = parse_and st in
  match peek st with
  | Lexer.Name "or" ->
      advance st;
      Ast.Binop (Ast.Or, left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_equality st in
  match peek st with
  | Lexer.Name "and" ->
      advance st;
      Ast.Binop (Ast.And, left, parse_and st)
  | _ -> left

and parse_equality st =
  let rec go left =
    match peek st with
    | Lexer.Equal -> advance st; go (Ast.Binop (Ast.Eq, left, parse_relational st))
    | Lexer.Not_equal -> advance st; go (Ast.Binop (Ast.Neq, left, parse_relational st))
    | _ -> left
  in
  go (parse_relational st)

and parse_relational st =
  let rec go left =
    match peek st with
    | Lexer.Less -> advance st; go (Ast.Binop (Ast.Lt, left, parse_additive st))
    | Lexer.Less_equal -> advance st; go (Ast.Binop (Ast.Le, left, parse_additive st))
    | Lexer.Greater -> advance st; go (Ast.Binop (Ast.Gt, left, parse_additive st))
    | Lexer.Greater_equal -> advance st; go (Ast.Binop (Ast.Ge, left, parse_additive st))
    | _ -> left
  in
  go (parse_additive st)

and parse_additive st =
  let rec go left =
    match peek st with
    | Lexer.Plus -> advance st; go (Ast.Binop (Ast.Add, left, parse_multiplicative st))
    | Lexer.Minus -> advance st; go (Ast.Binop (Ast.Sub, left, parse_multiplicative st))
    | _ -> left
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go left =
    match peek st with
    | Lexer.Star -> advance st; go (Ast.Binop (Ast.Mul, left, parse_union st))
    | Lexer.Name "div" -> advance st; go (Ast.Binop (Ast.Div, left, parse_union st))
    | Lexer.Name "mod" -> advance st; go (Ast.Binop (Ast.Mod, left, parse_union st))
    | _ -> left
  in
  go (parse_union st)

and parse_union st =
  let rec go left =
    match peek st with
    | Lexer.Pipe -> advance st; go (Ast.Union (left, parse_unary st))
    | _ -> left
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.Minus ->
      advance st;
      Ast.Neg (parse_unary st)
  | _ -> parse_path_expr st

and parse_path_expr st =
  match peek st, peek2 st with
  | Lexer.Name "element", Lexer.Name _ -> with_continuation st (parse_element_ctor st)
  | Lexer.Name "text", Lexer.Lbrace ->
      advance st;
      advance st;
      let e = parse_expr st in
      expect st Lexer.Rbrace;
      with_continuation st (Ast.Text_ctor e)
  | (Lexer.Slash | Lexer.Double_slash), _ -> parse_location_path st
  | (Lexer.Lparen | Lexer.Literal _ | Lexer.Number _ | Lexer.Variable _), _ ->
      parse_filter st
  | Lexer.Name n, Lexer.Lparen when n <> "text" && n <> "node" -> parse_filter st
  | t, _ when starts_step t -> parse_location_path st
  | t, _ -> fail "unexpected token %s" (Lexer.token_to_string t)

(* Constructors are primary expressions: they accept predicates and path
   continuations like any other filter expression. *)
and with_continuation st primary =
  let predicates = parse_predicates st in
  let continuation = parse_path_continuation st in
  match predicates, continuation with
  | [], [] -> primary
  | _ -> Ast.Filter (primary, predicates, continuation)

and parse_element_ctor st =
  advance st;
  let name =
    match peek st with
    | Lexer.Name n -> advance st; n
    | t -> fail "expected element name, found %s" (Lexer.token_to_string t)
  in
  expect st Lexer.Lbrace;
  if peek st = Lexer.Rbrace then begin
    advance st;
    Ast.Element_ctor (name, [])
  end
  else begin
    let rec contents acc =
      let e = parse_expr st in
      match peek st with
      | Lexer.Comma -> advance st; contents (e :: acc)
      | Lexer.Rbrace -> advance st; List.rev (e :: acc)
      | t -> fail "expected ',' or '}', found %s" (Lexer.token_to_string t)
    in
    Ast.Element_ctor (name, contents [])
  end

and parse_filter st =
  let primary =
    match peek st with
    | Lexer.Lparen ->
        advance st;
        let e = parse_expr st in
        expect st Lexer.Rparen;
        e
    | Lexer.Literal s -> advance st; Ast.Literal s
    | Lexer.Number f -> advance st; Ast.Number f
    | Lexer.Variable v -> advance st; Ast.Var v
    | Lexer.Name f when peek2 st = Lexer.Lparen ->
        advance st;
        advance st;
        let rec args acc =
          if peek st = Lexer.Rparen then begin advance st; List.rev acc end
          else
            let a = parse_expr st in
            match peek st with
            | Lexer.Comma -> advance st; args (a :: acc)
            | Lexer.Rparen -> advance st; List.rev (a :: acc)
            | t -> fail "expected ',' or ')', found %s" (Lexer.token_to_string t)
        in
        Ast.Call (f, args [])
    | t -> fail "unexpected token %s" (Lexer.token_to_string t)
  in
  let predicates = parse_predicates st in
  let continuation = parse_path_continuation st in
  match predicates, continuation with
  | [], [] -> primary
  | _ -> Ast.Filter (primary, predicates, continuation)

and parse_path_continuation st =
  match peek st with
  | Lexer.Slash when starts_step (peek2 st) ->
      advance st;
      let s = parse_step st in
      (false, s) :: parse_path_continuation st
  | Lexer.Double_slash when starts_step (peek2 st) ->
      advance st;
      let s = parse_step st in
      (true, s) :: parse_path_continuation st
  | _ -> []

and parse_location_path st =
  match peek st with
  | Lexer.Slash ->
      advance st;
      if starts_step (peek st) then
        let s = parse_step st in
        Ast.Path { absolute = true; steps = (false, s) :: parse_path_continuation st }
      else Ast.Path { absolute = true; steps = [] }
  | Lexer.Double_slash ->
      advance st;
      let s = parse_step st in
      Ast.Path { absolute = true; steps = (true, s) :: parse_path_continuation st }
  | _ ->
      let s = parse_step st in
      Ast.Path { absolute = false; steps = (false, s) :: parse_path_continuation st }

and parse_predicates st =
  match peek st with
  | Lexer.Lbracket ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.Rbracket;
      e :: parse_predicates st
  | _ -> []

and parse_step st : Ast.step =
  match peek st with
  | Lexer.Dot ->
      advance st;
      { Ast.axis = Ast.Self; test = Ast.Any_node; predicates = parse_predicates st }
  | Lexer.Dotdot ->
      advance st;
      { Ast.axis = Ast.Parent; test = Ast.Any_node; predicates = parse_predicates st }
  | Lexer.At ->
      advance st;
      let test = parse_node_test st in
      { Ast.axis = Ast.Attribute; test; predicates = parse_predicates st }
  | Lexer.Name a when peek2 st = Lexer.Axis_sep ->
      advance st;
      advance st;
      let axis = axis_of_name a in
      let test = parse_node_test st in
      { Ast.axis; test; predicates = parse_predicates st }
  | _ ->
      let test = parse_node_test st in
      { Ast.axis = Ast.Child; test; predicates = parse_predicates st }

and parse_node_test st : Ast.node_test =
  match peek st with
  | Lexer.Star -> advance st; Ast.Wildcard
  | Lexer.Name "text" when peek2 st = Lexer.Lparen ->
      advance st;
      advance st;
      expect st Lexer.Rparen;
      Ast.Text_node
  | Lexer.Name "node" when peek2 st = Lexer.Lparen ->
      advance st;
      advance st;
      expect st Lexer.Rparen;
      Ast.Any_node
  | Lexer.Name n -> advance st; Ast.Name n
  | t -> fail "expected a node test, found %s" (Lexer.token_to_string t)

let parse_located src =
  match Lexer.tokenize_located src with
  | Error (e : Lexer.located_error) ->
      Error { message = e.Lexer.message; offset = Some e.Lexer.offset }
  | Ok toks -> (
      let st = { toks } in
      try
        let e = parse_expr st in
        match peek st with
        | Lexer.Eof -> Ok e
        | t ->
            Error
              {
                message =
                  Printf.sprintf "trailing tokens starting at %s" (Lexer.token_to_string t);
                offset = peek_offset st;
              }
      with Parse_error msg ->
        (* The head of the stream is the token that parsing choked on. *)
        Error { message = msg; offset = peek_offset st })

let parse src =
  match parse_located src with
  | Ok e -> Ok e
  | Error { message; offset = None } -> Error message
  | Error { message; offset = Some off } ->
      Error (Printf.sprintf "%s (at offset %d)" message off)

let parse_exn src =
  match parse src with
  | Ok e -> e
  | Error msg -> failwith (Printf.sprintf "query parse error: %s (in %S)" msg src)
