type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling
  | Attribute

type node_test = Name of string | Wildcard | Text_node | Any_node

type binop = Or | And | Eq | Neq | Lt | Le | Gt | Ge | Add | Sub | Mul | Div | Mod

type quantifier = Some_q | Every_q

type expr =
  | Path of path
  | Filter of expr * expr list * (bool * step) list
  | Literal of string
  | Number of float
  | Var of string
  | Binop of binop * expr * expr
  | Neg of expr
  | Union of expr * expr
  | Call of string * expr list
  | Quantified of quantifier * string * expr * expr
  | For of string * expr * expr option * expr
      (* variable, domain, optional where-condition, body *)
  | Let of string * expr * expr
  | If of expr * expr * expr
  | Element_ctor of string * expr list
  | Text_ctor of expr

and step = { axis : axis; test : node_test; predicates : expr list }

and path = { absolute : bool; steps : (bool * step) list }

let axis_to_string = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Self -> "self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Attribute -> "attribute"

let binop_to_string = function
  | Or -> "or"
  | And -> "and"
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Mod -> "mod"

let test_to_string = function
  | Name n -> n
  | Wildcard -> "*"
  | Text_node -> "text()"
  | Any_node -> "node()"

let rec expr_to_string = function
  | Path p -> path_to_string p
  | Filter (e, preds, steps) ->
      Printf.sprintf "(%s)%s%s" (expr_to_string e)
        (String.concat "" (List.map (fun p -> "[" ^ expr_to_string p ^ "]") preds))
        (String.concat "" (List.map (fun (d, s) -> (if d then "//" else "/") ^ step_to_string s) steps))
  | Literal s -> Printf.sprintf "%S" s
  | Number f -> if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f
  | Var v -> "$" ^ v
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op) (expr_to_string b)
  | Neg e -> "-" ^ expr_to_string e
  | Union (a, b) -> Printf.sprintf "(%s | %s)" (expr_to_string a) (expr_to_string b)
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Quantified (q, v, dom, cond) ->
      Printf.sprintf "%s $%s in %s satisfies %s"
        (match q with Some_q -> "some" | Every_q -> "every")
        v (expr_to_string dom) (expr_to_string cond)
  | For (v, dom, None, body) ->
      Printf.sprintf "for $%s in %s return %s" v (expr_to_string dom) (expr_to_string body)
  | For (v, dom, Some w, body) ->
      Printf.sprintf "for $%s in %s where %s return %s" v (expr_to_string dom)
        (expr_to_string w) (expr_to_string body)
  | Let (v, value, body) ->
      Printf.sprintf "let $%s := %s return %s" v (expr_to_string value) (expr_to_string body)
  | If (c, t, e) ->
      Printf.sprintf "if (%s) then %s else %s" (expr_to_string c) (expr_to_string t)
        (expr_to_string e)
  | Element_ctor (name, content) ->
      Printf.sprintf "element %s { %s }" name
        (String.concat ", " (List.map expr_to_string content))
  | Text_ctor e -> Printf.sprintf "text { %s }" (expr_to_string e)

and step_to_string s =
  let base =
    match s.axis with
    | Child -> test_to_string s.test
    | Attribute -> "@" ^ test_to_string s.test
    | Self when s.test = Any_node -> "."
    | Parent when s.test = Any_node -> ".."
    | a -> axis_to_string a ^ "::" ^ test_to_string s.test
  in
  base ^ String.concat "" (List.map (fun p -> "[" ^ expr_to_string p ^ "]") s.predicates)

and path_to_string p =
  let rec steps = function
    | [] -> ""
    | (desc, s) :: rest ->
        (if desc then "//" else "/") ^ step_to_string s ^ steps rest
  in
  match p.steps with
  | [] -> if p.absolute then "/" else "."
  | (desc0, s0) :: rest ->
      if p.absolute then (if desc0 then "//" else "/") ^ step_to_string s0 ^ steps rest
      else step_to_string s0 ^ steps rest

let to_string = expr_to_string

let pp ppf e = Format.pp_print_string ppf (to_string e)
