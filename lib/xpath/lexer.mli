(** Tokeniser for the query language. Operator-vs-name disambiguation
    ([and], [or], [div], [mod], [*]) is left to the parser, which knows
    whether an operator or an operand is expected. *)

type token =
  | Name of string  (** includes axis names and operator keywords *)
  | Number of float
  | Literal of string
  | Variable of string  (** [$name] *)
  | Slash
  | Double_slash
  | Lbracket
  | Rbracket
  | Lbrace  (** [{] — constructor bodies *)
  | Rbrace
  | Lparen
  | Rparen
  | At
  | Dot
  | Dotdot
  | Axis_sep  (** [::] *)
  | Assign  (** [:=] *)
  | Comma
  | Pipe
  | Plus
  | Minus
  | Star
  | Equal
  | Not_equal
  | Less
  | Less_equal
  | Greater
  | Greater_equal
  | Eof

val token_to_string : token -> string

type located_error = { message : string; offset : int }
(** [offset] is the 0-based character offset of the offending character in
    the source string. *)

(** [tokenize s] is the token stream of [s], ending with [Eof]. *)
val tokenize : string -> (token list, string) result

(** [tokenize_located s] additionally carries each token's start offset;
    [Eof]'s offset is [String.length s]. *)
val tokenize_located : string -> ((token * int) list, located_error) result
