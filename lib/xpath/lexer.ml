type token =
  | Name of string
  | Number of float
  | Literal of string
  | Variable of string
  | Slash
  | Double_slash
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | At
  | Dot
  | Dotdot
  | Axis_sep
  | Assign
  | Comma
  | Pipe
  | Plus
  | Minus
  | Star
  | Equal
  | Not_equal
  | Less
  | Less_equal
  | Greater
  | Greater_equal
  | Eof

let token_to_string = function
  | Name s -> s
  | Number f -> string_of_float f
  | Literal s -> Printf.sprintf "%S" s
  | Variable v -> "$" ^ v
  | Slash -> "/"
  | Double_slash -> "//"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lparen -> "("
  | Rparen -> ")"
  | At -> "@"
  | Dot -> "."
  | Dotdot -> ".."
  | Axis_sep -> "::"
  | Assign -> ":="
  | Comma -> ","
  | Pipe -> "|"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Equal -> "="
  | Not_equal -> "!="
  | Less -> "<"
  | Less_equal -> "<="
  | Greater -> ">"
  | Greater_equal -> ">="
  | Eof -> "<eof>"

type located_error = { message : string; offset : int }

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || Char.code c >= 128

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.' || c = ':'

let tokenize_located src =
  let n = String.length src in
  let exception Lex_error of string * int in
  let error ~at fmt = Format.kasprintf (fun m -> raise (Lex_error (m, at))) fmt in
  let peek i = if i < n then src.[i] else '\000' in
  let rec go i acc =
    if i >= n then Ok (List.rev ((Eof, n) :: acc))
    else
      let c = src.[i] in
      if is_space c then go (i + 1) acc
      else
        let tok t w = go (i + w) ((t, i) :: acc) in
        match c with
        | '/' -> if peek (i + 1) = '/' then tok Double_slash 2 else tok Slash 1
        | '[' -> tok Lbracket 1
        | ']' -> tok Rbracket 1
        | '(' -> tok Lparen 1
        | ')' -> tok Rparen 1
        | '@' -> tok At 1
        | ',' -> tok Comma 1
        | '|' -> tok Pipe 1
        | '+' -> tok Plus 1
        | '-' -> tok Minus 1
        | '*' -> tok Star 1
        | '=' -> tok Equal 1
        | '!' ->
            if peek (i + 1) = '=' then tok Not_equal 2
            else error ~at:i "'!' must be followed by '='"
        | '<' -> if peek (i + 1) = '=' then tok Less_equal 2 else tok Less 1
        | '>' -> if peek (i + 1) = '=' then tok Greater_equal 2 else tok Greater 1
        | ':' ->
            if peek (i + 1) = ':' then tok Axis_sep 2
            else if peek (i + 1) = '=' then tok Assign 2
            else error ~at:i "unexpected ':'"
        | '.' ->
            if peek (i + 1) = '.' then tok Dotdot 2
            else if is_digit (peek (i + 1)) then number i acc
            else tok Dot 1
        | '{' -> tok Lbrace 1
        | '}' -> tok Rbrace 1
        | '"' | '\'' -> literal c i (i + 1) (i + 1) acc
        | '$' ->
            if is_name_start (peek (i + 1)) then begin
              let j = name_end (i + 1) in
              go j ((Variable (String.sub src (i + 1) (j - i - 1)), i) :: acc)
            end
            else error ~at:i "'$' must be followed by a name"
        | c when is_digit c -> number i acc
        | c when is_name_start c ->
            let j = name_end i in
            go j ((Name (String.sub src i (j - i)), i) :: acc)
        | c -> error ~at:i "unexpected character %C" c
  and name_end i =
    (* A ':' is part of the name (QName) only when followed by exactly one
       name character — never when it starts the '::' axis separator. *)
    let rec go i =
      if i >= n || not (is_name_char src.[i]) then i
      else if src.[i] = ':' then
        if peek (i + 1) <> ':' && is_name_start (peek (i + 1)) then go (i + 2)
        else i
      else go (i + 1)
    in
    go i
  and number i acc =
    let j = ref i in
    while !j < n && is_digit (peek !j) do incr j done;
    if peek !j = '.' && is_digit (peek (!j + 1)) then begin
      incr j;
      while !j < n && is_digit (peek !j) do incr j done
    end;
    let s = String.sub src i (!j - i) in
    match float_of_string_opt s with
    | Some f -> go !j ((Number f, i) :: acc)
    | None -> error ~at:i "bad number %S" s
  and literal quote opening start i acc =
    if i >= n then error ~at:opening "unterminated string literal"
    else if src.[i] = quote then
      go (i + 1) ((Literal (String.sub src start (i - start)), opening) :: acc)
    else literal quote opening start (i + 1) acc
  in
  try go 0 [] with Lex_error (message, offset) -> Error { message; offset }

let tokenize src =
  match tokenize_located src with
  | Ok tokens -> Ok (List.map fst tokens)
  | Error e -> Error e.message
