type token =
  | Name of string
  | Number of float
  | Literal of string
  | Variable of string
  | Slash
  | Double_slash
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | At
  | Dot
  | Dotdot
  | Axis_sep
  | Assign
  | Comma
  | Pipe
  | Plus
  | Minus
  | Star
  | Equal
  | Not_equal
  | Less
  | Less_equal
  | Greater
  | Greater_equal
  | Eof

let token_to_string = function
  | Name s -> s
  | Number f -> string_of_float f
  | Literal s -> Printf.sprintf "%S" s
  | Variable v -> "$" ^ v
  | Slash -> "/"
  | Double_slash -> "//"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lparen -> "("
  | Rparen -> ")"
  | At -> "@"
  | Dot -> "."
  | Dotdot -> ".."
  | Axis_sep -> "::"
  | Assign -> ":="
  | Comma -> ","
  | Pipe -> "|"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Equal -> "="
  | Not_equal -> "!="
  | Less -> "<"
  | Less_equal -> "<="
  | Greater -> ">"
  | Greater_equal -> ">="
  | Eof -> "<eof>"

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || Char.code c >= 128

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.' || c = ':'

let tokenize src =
  let n = String.length src in
  let exception Lex_error of string in
  let peek i = if i < n then src.[i] else '\000' in
  let rec go i acc =
    if i >= n then Ok (List.rev (Eof :: acc))
    else
      let c = src.[i] in
      if is_space c then go (i + 1) acc
      else
        match c with
        | '/' -> if peek (i + 1) = '/' then go (i + 2) (Double_slash :: acc) else go (i + 1) (Slash :: acc)
        | '[' -> go (i + 1) (Lbracket :: acc)
        | ']' -> go (i + 1) (Rbracket :: acc)
        | '(' -> go (i + 1) (Lparen :: acc)
        | ')' -> go (i + 1) (Rparen :: acc)
        | '@' -> go (i + 1) (At :: acc)
        | ',' -> go (i + 1) (Comma :: acc)
        | '|' -> go (i + 1) (Pipe :: acc)
        | '+' -> go (i + 1) (Plus :: acc)
        | '-' -> go (i + 1) (Minus :: acc)
        | '*' -> go (i + 1) (Star :: acc)
        | '=' -> go (i + 1) (Equal :: acc)
        | '!' ->
            if peek (i + 1) = '=' then go (i + 2) (Not_equal :: acc)
            else raise (Lex_error "'!' must be followed by '='")
        | '<' -> if peek (i + 1) = '=' then go (i + 2) (Less_equal :: acc) else go (i + 1) (Less :: acc)
        | '>' ->
            if peek (i + 1) = '=' then go (i + 2) (Greater_equal :: acc)
            else go (i + 1) (Greater :: acc)
        | ':' ->
            if peek (i + 1) = ':' then go (i + 2) (Axis_sep :: acc)
            else if peek (i + 1) = '=' then go (i + 2) (Assign :: acc)
            else raise (Lex_error "unexpected ':'")
        | '.' ->
            if peek (i + 1) = '.' then go (i + 2) (Dotdot :: acc)
            else if is_digit (peek (i + 1)) then number i acc
            else go (i + 1) (Dot :: acc)
        | '{' -> go (i + 1) (Lbrace :: acc)
        | '}' -> go (i + 1) (Rbrace :: acc)
        | '"' | '\'' -> literal c (i + 1) (i + 1) acc
        | '$' ->
            if is_name_start (peek (i + 1)) then begin
              let j = name_end (i + 1) in
              go j (Variable (String.sub src (i + 1) (j - i - 1)) :: acc)
            end
            else raise (Lex_error "'$' must be followed by a name")
        | c when is_digit c -> number i acc
        | c when is_name_start c ->
            let j = name_end i in
            go j (Name (String.sub src i (j - i)) :: acc)
        | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c))
  and name_end i =
    (* A ':' is part of the name (QName) only when followed by exactly one
       name character — never when it starts the '::' axis separator. *)
    let rec go i =
      if i >= n || not (is_name_char src.[i]) then i
      else if src.[i] = ':' then
        if peek (i + 1) <> ':' && is_name_start (peek (i + 1)) then go (i + 2)
        else i
      else go (i + 1)
    in
    go i
  and number i acc =
    let j = ref i in
    while !j < n && is_digit (peek !j) do incr j done;
    if peek !j = '.' && is_digit (peek (!j + 1)) then begin
      incr j;
      while !j < n && is_digit (peek !j) do incr j done
    end;
    let s = String.sub src i (!j - i) in
    match float_of_string_opt s with
    | Some f -> go !j (Number f :: acc)
    | None -> raise (Lex_error (Printf.sprintf "bad number %S" s))
  and literal quote start i acc =
    if i >= n then raise (Lex_error "unterminated string literal")
    else if src.[i] = quote then
      go (i + 1) (Literal (String.sub src start (i - start)) :: acc)
    else literal quote start (i + 1) acc
  in
  try go 0 [] with Lex_error msg -> Error msg
