(** The tractable query fragment shared by the direct probabilistic
    evaluator and the static query planner.

    [classify] decomposes a query into {e structural prefix steps}, a
    {e binder} step and a {e local} expression, or rejects it with a stable
    reason code. Both the evaluator ([Imprecise_pquery.Direct]) and the
    planner ([Imprecise_analyze.Plan]) consume this one definition, which
    is what makes the planner's route prediction exact: the remaining
    rejections are data-dependent (nested binder occurrences, local world
    limit) and both sides decide them with the same {!automaton} — the
    evaluator over the p-document, the planner over its path summary.

    The fragment (paper demo queries and well beyond):
    - the query is a top-level location path (absolute or relative — the
      evaluator's initial context item is the document node either way);
    - skeleton steps use the child or descendant axis with name/wildcard
      tests ([descendant::t] is folded into a [//t] separator);
    - the binder is the first predicated step when its predicates survive
      the subtree rewrite, otherwise the step before it; trailing value
      steps ([text()], [@attr], further paths) move into the local
      expression;
    - local predicates and value steps stay inside the binder's subtree:
      no upward/sideways axes, no absolute paths, and positional
      references only where they are relative to a candidate list drawn
      from inside the subtree.

    Reason codes (catalogue in [doc/analysis.md]): [P001] not a location
    path; [P002] unsupported leading axis; [P003] leading step binds no
    element; [P004] non-local predicate or value step. The data-dependent
    [P005] (occurrences can nest) and [P006] (local world limit) are
    issued by the planner, and correspond to the evaluator's runtime
    [Unsupported] rejections. *)

type shape = {
  prefix : (bool * Ast.node_test) list;
      (** structural steps before the binder; bool = descendant separator *)
  binder : bool * Ast.node_test;  (** the binder step's separator and test *)
  local : Ast.expr;  (** evaluated inside each occurrence's local worlds *)
}

type reject = { code : string; detail : string }

val classify : Ast.expr -> (shape, reject) result

(** Default bound on per-occurrence local world enumeration (shared by the
    evaluator and the planner so their admission decisions agree). *)
val default_local_limit : float

(** {1 The step automaton}

    State [k] means steps [0..k-1] are matched along the element chain from
    the document node; an element matching step [n_prefix] is an
    {e occurrence} of the binder. *)

type automaton

val automaton : shape -> automaton

(** The initial state set, at the document node. *)
val start : int list

(** [advance a states tag] steps the automaton over an element labelled
    [tag]: the successor state set, and whether this element is an
    occurrence. *)
val advance : automaton -> int list -> string -> int list * bool

(** [occurrence_path a labels] — is an element at this root-to-node label
    path an occurrence? (Folds {!advance} from {!start}.) *)
val occurrence_path : automaton -> string list -> bool
