(** Abstract syntax of the query language: the XPath 1.0 subset used by the
    paper's demo queries, extended with XQuery quantified expressions
    ([some $d in .//director satisfies contains($d, "John")]). *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling
  | Attribute

type node_test =
  | Name of string  (** element (or attribute) name *)
  | Wildcard  (** [*] *)
  | Text_node  (** [text()] *)
  | Any_node  (** [node()] *)

type binop =
  | Or
  | And
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Add
  | Sub
  | Mul
  | Div
  | Mod

type quantifier = Some_q | Every_q

type expr =
  | Path of path
  | Filter of expr * expr list * (bool * step) list
      (** primary expression, predicates, then a path continuation; the
          [bool] is true when the separator was [//] *)
  | Literal of string
  | Number of float
  | Var of string
  | Binop of binop * expr * expr
  | Neg of expr
  | Union of expr * expr
  | Call of string * expr list
  | Quantified of quantifier * string * expr * expr
      (** [Quantified (q, v, domain, condition)] *)
  | For of string * expr * expr option * expr
      (** XQuery-lite FLWOR: [for $v in domain (where cond)? return body].
          The result is the sequence of the bodies' items in iteration
          order. *)
  | Let of string * expr * expr  (** [let $v := value return body] *)
  | If of expr * expr * expr  (** [if (cond) then e1 else e2] *)
  | Element_ctor of string * expr list
      (** computed element constructor: [element name { e, e, ... }] —
          node items are copied as children, atomic values become text *)
  | Text_ctor of expr  (** [text { e }] *)

and step = { axis : axis; test : node_test; predicates : expr list }

and path = {
  absolute : bool;  (** starts at the document root *)
  steps : (bool * step) list;  (** the [bool] is true after a [//] *)
}

val axis_to_string : axis -> string

val step_to_string : step -> string

val pp : Format.formatter -> expr -> unit

val to_string : expr -> string
