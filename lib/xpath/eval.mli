(** Query evaluation over plain XML trees (XPath 1.0 data model).

    Nodes carry identity: the same subtree reached twice is one node. Result
    node-sets are in document order without duplicates. *)

module Xml = Imprecise_xml

(** A node with identity: the subtree plus its position in the document. *)
type node = {
  tree : Xml.Tree.t;
  parent : node option;
  order : int list;  (** root is []; child i of n is n.order @ [i] *)
}

type item =
  | Node of node
  | Attr of { owner : node; name : string; value : string }

type value =
  | Nodeset of item list  (** document order, no duplicates *)
  | Bool of bool
  | Num of float
  | Str of string

exception Eval_error of string

(** {1 Coercions (XPath 1.0 §3.2–3.5)} *)

val string_of_item : item -> string

val string_value : value -> string

val number_value : value -> float

val boolean_value : value -> bool

val compare_items : item -> item -> int

(** {1 Evaluation} *)

(** [eval ?vars root expr] evaluates [expr] with the root element of the
    document as context node. Raises {!Eval_error} on unknown functions or
    variables and on type errors. *)
val eval : ?vars:(string * value) list -> Xml.Tree.t -> Ast.expr -> value

(** [eval_at ?vars ~root node expr] evaluates with an explicit context node
    (used by the probabilistic evaluator to scope predicates). *)
val eval_at : ?vars:(string * value) list -> root:node -> node -> Ast.expr -> value

(** [root_node tree] wraps a tree as a context node. *)
val root_node : Xml.Tree.t -> node

(** [children_nodes n] is [n]'s children with identity attached. *)
val children_nodes : node -> node list

val descendants_or_self : node -> node list

(** {1 Compiled queries}

    A query handle that pairs the parsed AST with its source text, so hot
    paths (repeated ranking, caches keyed by query string) parse once and
    reuse the handle. Compilation is pure: a [compiled] value is immutable
    and safe to share across domains. *)

type compiled

(** [compile q] parses [q] once; reuse the handle for every evaluation. *)
val compile : string -> (compiled, string) result

(** [compile_exn q] raises [Failure] with the parse error. *)
val compile_exn : string -> compiled

(** [compiled_of_expr ?source e] wraps an already-built AST ([source], the
    text reported by {!compiled_source}, defaults to ["<expr>"]). *)
val compiled_of_expr : ?source:string -> Ast.expr -> compiled

(** The query text the handle was compiled from. *)
val compiled_source : compiled -> string

val compiled_ast : compiled -> Ast.expr

(** [eval_compiled ?vars tree c] is [eval ?vars tree (compiled_ast c)]. *)
val eval_compiled : ?vars:(string * value) list -> Xml.Tree.t -> compiled -> value

(** {1 Convenience} *)

(** [select root query] parses [query] and returns matching element/text
    subtrees in document order. Raises [Failure] on parse errors and
    {!Eval_error} if the result is not a node-set. *)
val select : Xml.Tree.t -> string -> Xml.Tree.t list

(** [select_strings root query] is the XPath string-value of each selected
    node. *)
val select_strings : Xml.Tree.t -> string -> string list

(** [eval_string root query] coerces the result to a string. *)
val eval_string : Xml.Tree.t -> string -> string

val eval_bool : Xml.Tree.t -> string -> bool

val eval_number : Xml.Tree.t -> string -> float
