(** Recursive-descent parser for the query language.

    Grammar (after XPath 1.0, plus XQuery quantified expressions):
    {v
    Expr        ::= QuantExpr | OrExpr
    QuantExpr   ::= ("some" | "every") "$" Name "in" Expr "satisfies" Expr
    OrExpr      ::= AndExpr ("or" AndExpr)*
    AndExpr     ::= EqExpr ("and" EqExpr)*
    EqExpr      ::= RelExpr (("=" | "!=") RelExpr)*
    RelExpr     ::= AddExpr (("<" | "<=" | ">" | ">=") AddExpr)*
    AddExpr     ::= MulExpr (("+" | "-") MulExpr)*
    MulExpr     ::= UnionExpr (("*" | "div" | "mod") UnionExpr)*
    UnionExpr   ::= UnaryExpr ("|" UnaryExpr)*
    UnaryExpr   ::= "-"* PathExpr
    PathExpr    ::= LocationPath
                  | FilterExpr (("/" | "//") RelPath)?
    FilterExpr  ::= Primary Predicate*
    Primary     ::= "(" Expr ")" | Literal | Number | Variable | Call
    LocationPath::= ("/" | "//")? RelPath | "/"
    RelPath     ::= Step (("/" | "//") Step)*
    Step        ::= "." | ".." | (AxisName "::" | "@")? NodeTest Predicate*
    NodeTest    ::= "*" | Name | "text" "(" ")" | "node" "(" ")"
    v}

    Operator keywords ([and], [or], [div], [mod]) and [*] are disambiguated
    by parse position, as the XPath specification prescribes. *)

type located_error = { message : string; offset : int option }
(** [offset] is the 0-based character offset of the token the parser choked
    on, when known ([None] only for errors with no anchor token). *)

(** [parse_located src] parses with error positions. *)
val parse_located : string -> (Ast.expr, located_error) result

(** [parse src] is {!parse_located} with the offset folded into the error
    message ([... (at offset N)]). *)
val parse : string -> (Ast.expr, string) result

val parse_exn : string -> Ast.expr
