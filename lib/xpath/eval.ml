module Xml = Imprecise_xml

type node = { tree : Xml.Tree.t; parent : node option; order : int list }

type item =
  | Node of node
  | Attr of { owner : node; name : string; value : string }

type value = Nodeset of item list | Bool of bool | Num of float | Str of string

exception Eval_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let root_node tree = { tree; parent = None; order = [] }

let children_nodes n =
  List.mapi (fun i c -> { tree = c; parent = Some n; order = n.order @ [ i ] }) (Xml.Tree.children n.tree)

let rec descendants_or_self n = n :: List.concat_map descendants_or_self (children_nodes n)

let item_order = function
  | Node n -> (n.order, -1)
  | Attr a ->
      (* Attributes sort directly after their owner, by position. *)
      let rec index i = function
        | [] -> max_int
        | (k, _) :: rest -> if k = a.name then i else index (i + 1) rest
      in
      (a.owner.order, index 0 (Xml.Tree.attributes a.owner.tree))

let compare_items a b = Stdlib.compare (item_order a) (item_order b)

let sort_dedup items =
  let sorted = List.sort_uniq (fun a b -> Stdlib.compare (item_order a) (item_order b)) items in
  sorted

let string_of_item = function
  | Node n -> Xml.Tree.text_content n.tree
  | Attr a -> a.value

let number_of_string s =
  match float_of_string_opt (String.trim s) with Some f -> f | None -> Float.nan

let string_of_number f =
  if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let string_value = function
  | Str s -> s
  | Num f -> string_of_number f
  | Bool b -> if b then "true" else "false"
  | Nodeset [] -> ""
  | Nodeset (i :: _) -> string_of_item i

let number_value = function
  | Num f -> f
  | Str s -> number_of_string s
  | Bool b -> if b then 1. else 0.
  | Nodeset _ as v -> number_of_string (string_value v)

let boolean_value = function
  | Bool b -> b
  | Num f -> f <> 0. && not (Float.is_nan f)
  | Str s -> String.length s > 0
  | Nodeset l -> l <> []

(* XPath 1.0 §3.4 comparison semantics. *)
let compare_values op (a : value) (b : value) =
  let cmp_num x y =
    match op with
    | Ast.Eq -> x = y
    | Ast.Neq -> x <> y
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | _ -> assert false
  in
  let cmp_str x y =
    match op with
    | Ast.Eq -> String.equal x y
    | Ast.Neq -> not (String.equal x y)
    | _ -> cmp_num (number_of_string x) (number_of_string y)
  in
  let exists_in l f = List.exists f l in
  match a, b with
  | Nodeset xs, Nodeset ys ->
      exists_in xs (fun x -> exists_in ys (fun y -> cmp_str (string_of_item x) (string_of_item y)))
  | Nodeset xs, (Num _ as v) | (Num _ as v), Nodeset xs ->
      let n = number_value v in
      let flip = match a with Nodeset _ -> false | _ -> true in
      exists_in xs (fun x ->
          let xn = number_of_string (string_of_item x) in
          if flip then cmp_num n xn else cmp_num xn n)
  | Nodeset xs, (Str _ as v) | (Str _ as v), Nodeset xs -> (
      let s = string_value v in
      let flip = match a with Nodeset _ -> false | _ -> true in
      exists_in xs (fun x ->
          let xs' = string_of_item x in
          if flip then cmp_str s xs' else cmp_str xs' s))
  | Nodeset _, Bool _ | Bool _, Nodeset _ ->
      cmp_num (if boolean_value a then 1. else 0.) (if boolean_value b then 1. else 0.)
  | _ -> (
      match op with
      | Ast.Eq | Ast.Neq -> (
          match a, b with
          | Bool _, _ | _, Bool _ ->
              cmp_num (if boolean_value a then 1. else 0.) (if boolean_value b then 1. else 0.)
          | Num _, _ | _, Num _ -> cmp_num (number_value a) (number_value b)
          | _ -> cmp_str (string_value a) (string_value b))
      | _ -> cmp_num (number_value a) (number_value b))

type context = {
  item : item;
  position : int;
  size : int;
  vars : (string * value) list;
  root : node;
  fresh : int ref;
      (* document-order key source for nodes built by constructors *)
}

let test_matches test (n : node) =
  match test, n.tree with
  | Ast.Any_node, _ -> true
  | Ast.Wildcard, Xml.Tree.Element ("#document", _, _) ->
      false (* the synthetic document node is never selected by * *)
  | Ast.Wildcard, Xml.Tree.Element _ -> true
  | Ast.Wildcard, Xml.Tree.Text _ -> false
  | Ast.Name name, Xml.Tree.Element (tag, _, _) -> String.equal name tag
  | Ast.Name _, Xml.Tree.Text _ -> false
  | Ast.Text_node, Xml.Tree.Text _ -> true
  | Ast.Text_node, Xml.Tree.Element _ -> false

let axis_items axis (ctx_item : item) : item list =
  match ctx_item with
  | Attr a -> (
      (* The only axes that make sense from an attribute. *)
      match axis with
      | Ast.Self -> [ ctx_item ]
      | Ast.Parent -> [ Node a.owner ]
      | _ -> [])
  | Node n -> (
      match axis with
      | Ast.Child -> List.map (fun c -> Node c) (children_nodes n)
      | Ast.Descendant -> List.concat_map (fun c -> List.map (fun d -> Node d) (descendants_or_self c)) (children_nodes n)
      | Ast.Descendant_or_self -> List.map (fun d -> Node d) (descendants_or_self n)
      | Ast.Self -> [ Node n ]
      | Ast.Parent -> ( match n.parent with None -> [] | Some p -> [ Node p ])
      (* Reverse axes list the nearest node first, as XPath positions
         require; results are re-sorted to document order afterwards. *)
      | Ast.Ancestor ->
          let rec up n =
            match n.parent with None -> [] | Some p -> Node p :: up p
          in
          up n
      | Ast.Ancestor_or_self ->
          let rec up n =
            match n.parent with None -> [] | Some p -> Node p :: up p
          in
          Node n :: up n
      | Ast.Following_sibling -> (
          match n.parent with
          | None -> []
          | Some p ->
              List.filter_map
                (fun c ->
                  if Stdlib.compare c.order n.order > 0 then Some (Node c) else None)
                (children_nodes p))
      | Ast.Preceding_sibling -> (
          match n.parent with
          | None -> []
          | Some p ->
              List.rev
                (List.filter_map
                   (fun c ->
                     if Stdlib.compare c.order n.order < 0 then Some (Node c) else None)
                   (children_nodes p)))
      | Ast.Attribute ->
          List.map (fun (name, value) -> Attr { owner = n; name; value }) (Xml.Tree.attributes n.tree))

let apply_test test items =
  List.filter
    (fun it ->
      match it with
      | Node n -> test_matches test n
      | Attr a -> (
          match test with
          | Ast.Name name -> String.equal name a.name
          | Ast.Wildcard | Ast.Any_node -> true
          | Ast.Text_node -> false))
    items

(* Nodes built by constructors live outside the source document; they get
   fresh order keys after every real node so that iteration order is
   preserved by the document-order sort. *)
let constructed_base = max_int / 2

let make_node_item ctx tree =
  incr ctx.fresh;
  Node { tree; parent = None; order = [ constructed_base + !(ctx.fresh) ] }

let make_text_item ctx s = make_node_item ctx (Xml.Tree.Text s)

let rec eval_expr (ctx : context) (e : Ast.expr) : value =
  match e with
  | Ast.Literal s -> Str s
  | Ast.Number f -> Num f
  | Ast.Var v -> (
      match List.assoc_opt v ctx.vars with
      | Some value -> value
      | None -> fail "unbound variable $%s" v)
  | Ast.Neg e -> Num (-.number_value (eval_expr ctx e))
  | Ast.Union (a, b) -> (
      match eval_expr ctx a, eval_expr ctx b with
      | Nodeset xs, Nodeset ys -> Nodeset (sort_dedup (xs @ ys))
      | _ -> fail "'|' requires node-sets")
  | Ast.Binop (op, a, b) -> eval_binop ctx op a b
  | Ast.Call (f, args) -> eval_call ctx f args
  | Ast.Quantified (q, v, domain, cond) -> (
      match eval_expr ctx domain with
      | Nodeset items ->
          let test it =
            boolean_value (eval_expr { ctx with vars = (v, Nodeset [ it ]) :: ctx.vars } cond)
          in
          Bool
            (match q with
            | Ast.Some_q -> List.exists test items
            | Ast.Every_q -> List.for_all test items)
      | _ -> fail "quantifier domain must be a node-set")
  | Ast.Path p -> Nodeset (eval_path ctx p)
  | Ast.Let (v, value, body) ->
      let bound = eval_expr ctx value in
      eval_expr { ctx with vars = (v, bound) :: ctx.vars } body
  | Ast.If (cond, then_, else_) ->
      if boolean_value (eval_expr ctx cond) then eval_expr ctx then_
      else eval_expr ctx else_
  | Ast.For (v, domain, where, body) -> (
      match eval_expr ctx domain with
      | Nodeset items ->
          let results =
            List.concat_map
              (fun it ->
                let ctx' = { ctx with vars = (v, Nodeset [ it ]) :: ctx.vars } in
                let keep =
                  match where with
                  | None -> true
                  | Some cond -> boolean_value (eval_expr ctx' cond)
                in
                if not keep then []
                else
                  match eval_expr ctx' body with
                  | Nodeset out -> out
                  | atomic -> [ make_text_item ctx (string_value atomic) ])
              items
          in
          Nodeset (sort_dedup results)
      | _ -> fail "'for' domain must be a node-set")
  | Ast.Element_ctor (name, content) ->
      let attrs = ref [] and children = ref [] in
      List.iter
        (fun e ->
          match eval_expr ctx e with
          | Nodeset items ->
              List.iter
                (fun it ->
                  match it with
                  | Node n -> children := n.tree :: !children
                  | Attr a -> attrs := (a.name, a.value) :: !attrs)
                items
          | atomic -> children := Xml.Tree.Text (string_value atomic) :: !children)
        content;
      Nodeset
        [ make_node_item ctx (Xml.Tree.Element (name, List.rev !attrs, List.rev !children)) ]
  | Ast.Text_ctor e -> Nodeset [ make_text_item ctx (string_value (eval_expr ctx e)) ]
  | Ast.Filter (primary, predicates, continuation) -> (
      match eval_expr ctx primary with
      | Nodeset items ->
          let filtered = apply_predicates ctx predicates items in
          Nodeset (eval_steps ctx continuation filtered)
      | v when predicates = [] && continuation = [] -> v
      | _ -> fail "predicates and path steps require a node-set")

and eval_binop ctx op a b =
  match op with
  | Ast.Or -> Bool (boolean_value (eval_expr ctx a) || boolean_value (eval_expr ctx b))
  | Ast.And -> Bool (boolean_value (eval_expr ctx a) && boolean_value (eval_expr ctx b))
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      Bool (compare_values op (eval_expr ctx a) (eval_expr ctx b))
  | Ast.Add -> Num (number_value (eval_expr ctx a) +. number_value (eval_expr ctx b))
  | Ast.Sub -> Num (number_value (eval_expr ctx a) -. number_value (eval_expr ctx b))
  | Ast.Mul -> Num (number_value (eval_expr ctx a) *. number_value (eval_expr ctx b))
  | Ast.Div -> Num (number_value (eval_expr ctx a) /. number_value (eval_expr ctx b))
  | Ast.Mod -> Num (Float.rem (number_value (eval_expr ctx a)) (number_value (eval_expr ctx b)))

and eval_path ctx (p : Ast.path) : item list =
  let start = if p.absolute then Node ctx.root else ctx.item in
  eval_steps ctx p.steps [ start ]

and eval_steps ctx steps items =
  List.fold_left
    (fun items (descendant_sep, step) ->
      let items =
        if descendant_sep then
          sort_dedup
            (List.concat_map (fun it -> axis_items Ast.Descendant_or_self it) items)
        else items
      in
      let results =
        List.concat_map
          (fun it ->
            let candidates = apply_test step.Ast.test (axis_items step.Ast.axis it) in
            apply_predicates ctx step.Ast.predicates candidates)
          items
      in
      sort_dedup results)
    items steps

and apply_predicates ctx predicates items =
  List.fold_left
    (fun items pred ->
      let size = List.length items in
      List.filteri
        (fun i it ->
          let ctx' = { ctx with item = it; position = i + 1; size } in
          match eval_expr ctx' pred with
          | Num f -> f = float_of_int (i + 1)
          | v -> boolean_value v)
        items)
    items predicates

and eval_call ctx f args =
  let arity n =
    if List.length args <> n then fail "%s expects %d argument(s), got %d" f n (List.length args)
  in
  let arg i = List.nth args i in
  let str i = string_value (eval_expr ctx (arg i)) in
  let num i = number_value (eval_expr ctx (arg i)) in
  let value i = eval_expr ctx (arg i) in
  let str0_or_context () =
    if args = [] then
      string_value (Nodeset [ ctx.item ])
    else str 0
  in
  match f with
  | "last" -> arity 0; Num (float_of_int ctx.size)
  | "position" -> arity 0; Num (float_of_int ctx.position)
  | "count" -> (
      arity 1;
      match value 0 with
      | Nodeset l -> Num (float_of_int (List.length l))
      | _ -> fail "count() requires a node-set")
  | "name" | "local-name" ->
      if args = [] then
        Str
          (match ctx.item with
          | Node n -> Option.value ~default:"" (Xml.Tree.name n.tree)
          | Attr a -> a.name)
      else (
        arity 1;
        match value 0 with
        | Nodeset (Node n :: _) -> Str (Option.value ~default:"" (Xml.Tree.name n.tree))
        | Nodeset (Attr a :: _) -> Str a.name
        | Nodeset [] -> Str ""
        | _ -> fail "name() requires a node-set")
  | "string" -> if args = [] then Str (string_value (Nodeset [ ctx.item ])) else (arity 1; Str (str 0))
  | "concat" ->
      if List.length args < 2 then fail "concat expects at least 2 arguments";
      Str (String.concat "" (List.mapi (fun i _ -> str i) args))
  | "starts-with" -> arity 2; Bool (String.starts_with ~prefix:(str 1) (str 0))
  | "ends-with" -> arity 2; Bool (String.ends_with ~suffix:(str 1) (str 0))
  | "contains" ->
      arity 2;
      let hay = str 0 and needle = str 1 in
      let nh = String.length hay and nn = String.length needle in
      let rec search i = i + nn <= nh && (String.sub hay i nn = needle || search (i + 1)) in
      Bool (nn = 0 || search 0)
  | "substring-before" | "substring-after" ->
      arity 2;
      let hay = str 0 and needle = str 1 in
      let nh = String.length hay and nn = String.length needle in
      let rec search i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else search (i + 1) in
      Str
        (match search 0 with
        | None -> ""
        | Some i ->
            if f = "substring-before" then String.sub hay 0 i
            else String.sub hay (i + nn) (nh - i - nn))
  | "substring" ->
      if List.length args < 2 || List.length args > 3 then fail "substring expects 2 or 3 arguments";
      let s = str 0 in
      let start = Float.round (num 1) in
      let len =
        if List.length args = 3 then Float.round (num 2) else Float.of_int (String.length s)
      in
      let first = int_of_float (Float.max 1. start) in
      let last = int_of_float (start +. len -. 1.) in
      let last = min last (String.length s) in
      if Float.is_nan start || last < first then Str ""
      else Str (String.sub s (first - 1) (last - first + 1))
  | "string-length" -> Str (str0_or_context ()) |> fun v -> Num (float_of_int (String.length (string_value v)))
  | "normalize-space" -> Str (Xml.Tree.normalize_space (str0_or_context ()))
  | "translate" ->
      arity 3;
      let s = str 0 and from = str 1 and into = str 2 in
      let buf = Buffer.create (String.length s) in
      String.iter
        (fun c ->
          match String.index_opt from c with
          | None -> Buffer.add_char buf c
          | Some i -> if i < String.length into then Buffer.add_char buf into.[i])
        s;
      Str (Buffer.contents buf)
  | "boolean" -> arity 1; Bool (boolean_value (value 0))
  | "not" -> arity 1; Bool (not (boolean_value (value 0)))
  | "true" -> arity 0; Bool true
  | "false" -> arity 0; Bool false
  | "number" -> if args = [] then Num (number_value (Nodeset [ ctx.item ])) else (arity 1; Num (num 0))
  | "sum" -> (
      arity 1;
      match value 0 with
      | Nodeset l ->
          Num (List.fold_left (fun acc it -> acc +. number_of_string (string_of_item it)) 0. l)
      | _ -> fail "sum() requires a node-set")
  | "floor" -> arity 1; Num (Float.floor (num 0))
  | "ceiling" -> arity 1; Num (Float.ceil (num 0))
  | "round" -> arity 1; Num (Float.round (num 0))
  | "min" | "max" | "avg" -> (
      arity 1;
      match value 0 with
      | Nodeset [] -> Num Float.nan
      | Nodeset l ->
          let nums = List.map (fun it -> number_of_string (string_of_item it)) l in
          let total = List.fold_left ( +. ) 0. nums in
          Num
            (match f with
            | "min" -> List.fold_left Float.min Float.infinity nums
            | "max" -> List.fold_left Float.max Float.neg_infinity nums
            | _ -> total /. float_of_int (List.length nums))
      | v -> Num (number_value v))
  | "string-join" ->
      arity 2;
      let sep = str 1 in
      (match value 0 with
      | Nodeset l -> Str (String.concat sep (List.map string_of_item l))
      | v -> Str (string_value v))
  | "distinct-values" -> (
      arity 1;
      match value 0 with
      | Nodeset l ->
          let seen = Hashtbl.create 8 in
          Nodeset
            (List.filter
               (fun it ->
                 let s = string_of_item it in
                 if Hashtbl.mem seen s then false
                 else begin
                   Hashtbl.add seen s ();
                   true
                 end)
               l)
      | v -> v)
  | "exists" -> (
      arity 1;
      match value 0 with
      | Nodeset l -> Bool (l <> [])
      | _ -> fail "exists() requires a node-set")
  | "empty" -> (
      arity 1;
      match value 0 with
      | Nodeset l -> Bool (l = [])
      | _ -> fail "empty() requires a node-set")
  | "deep-equal" -> (
      arity 2;
      let tree_of = function
        | Nodeset (Node n :: _) -> Some n.tree
        | Nodeset _ -> None
        | v -> Some (Xml.Tree.Text (string_value v))
      in
      match tree_of (value 0), tree_of (value 1) with
      | Some a, Some b -> Bool (Xml.Tree.deep_equal a b)
      | _ -> Bool false)
  | f -> fail "unknown function %s()" f

let make_context ?(vars = []) root item =
  { item; position = 1; size = 1; vars; root; fresh = ref 0 }

(* XPath evaluates absolute paths from the document node above the root
   element; we synthesise one. It is never selected itself: every axis step
   out of it goes through child/descendant. *)
let document_node tree =
  { tree = Xml.Tree.Element ("#document", [], [ tree ]); parent = None; order = [] }

let eval ?vars tree expr =
  let root = document_node tree in
  eval_expr (make_context ?vars root (Node root)) expr

let eval_at ?vars ~root node expr = eval_expr (make_context ?vars root (Node node)) expr

let select tree query =
  match eval tree (Parser.parse_exn query) with
  | Nodeset items ->
      List.filter_map (function Node n -> Some n.tree | Attr _ -> None) items
  | _ -> fail "query %S did not return a node-set" query

let select_strings tree query =
  match eval tree (Parser.parse_exn query) with
  | Nodeset items -> List.map string_of_item items
  | v -> [ string_value v ]

let eval_string tree query = string_value (eval tree (Parser.parse_exn query))

let eval_bool tree query = boolean_value (eval tree (Parser.parse_exn query))

let eval_number tree query = number_value (eval tree (Parser.parse_exn query))

(* ---- compiled query handles --------------------------------------------- *)

type compiled = { source : string; ast : Ast.expr }

let compile query =
  Result.map (fun ast -> { source = query; ast }) (Parser.parse query)

let compile_exn query = { source = query; ast = Parser.parse_exn query }

let compiled_of_expr ?(source = "<expr>") ast = { source; ast }

let compiled_source c = c.source

let compiled_ast c = c.ast

let eval_compiled ?vars tree c = eval ?vars tree c.ast
