(* The tractable query fragment shared by the direct evaluator
   (Imprecise_pquery.Direct) and the static planner (Imprecise_analyze.Plan).

   Both sides need the same decomposition of a query into

     structural prefix steps -> binder step -> local expression

   and the same step automaton over element labels: the evaluator walks the
   p-document with it, the planner walks the path summary. Keeping one
   definition here is what makes the planner's route prediction exact — a
   query is in the fragment iff [classify] says so, and the only remaining
   rejections are the data-dependent ones (nested occurrences, local world
   limit), which the planner decides from the summary with the same
   automaton. *)

type shape = {
  prefix : (bool * Ast.node_test) list;
      (** structural steps before the binder; bool = descendant separator *)
  binder : bool * Ast.node_test;  (** the binder step's separator and test *)
  local : Ast.expr;  (** evaluated inside each occurrence's local worlds *)
}

type reject = { code : string; detail : string }

exception Rejected of reject

let rejectf code fmt =
  Format.kasprintf (fun detail -> raise (Rejected { code; detail })) fmt

let default_local_limit = 4096.

(* ---- locality ----------------------------------------------------------- *)

(* An expression is local when evaluating it inside an occurrence's isolated
   subtree gives the same result as evaluating it in the full document:
   every step stays inside the subtree and every position()/last() reference
   is relative to a candidate list drawn from inside the subtree. [pos]
   tracks whether positional references are allowed at the current level:
   the evaluator applies step predicates per source item against that item's
   own candidate list, so positions nested under a step (or filter) inside
   the subtree are exact, while positions at the binder step's own level
   would refer to the binder's siblings — which the rewrite collapses. *)
let rec expr_local ~pos (e : Ast.expr) =
  match e with
  | Ast.Literal _ | Ast.Number _ | Ast.Var _ -> true
  | Ast.Path { absolute; steps } ->
      (not absolute) && List.for_all (fun (_, s) -> step_local s) steps
  | Ast.Filter (p, preds, steps) ->
      expr_local ~pos p
      && List.for_all pred_local preds
      && List.for_all (fun (_, s) -> step_local s) steps
  | Ast.Binop (_, a, b) -> expr_local ~pos a && expr_local ~pos b
  | Ast.Neg a -> expr_local ~pos a
  | Ast.Union (a, b) -> expr_local ~pos a && expr_local ~pos b
  | Ast.Call (("position" | "last"), _) -> pos
  | Ast.Call (_, args) -> List.for_all (expr_local ~pos) args
  | Ast.Quantified (_, _, dom, cond) ->
      expr_local ~pos dom && expr_local ~pos:false cond
  | Ast.For (_, dom, where, body) ->
      expr_local ~pos dom
      && (match where with None -> true | Some w -> expr_local ~pos:false w)
      && expr_local ~pos:false body
  | Ast.Let (_, value, body) -> expr_local ~pos value && expr_local ~pos body
  | Ast.If (c, t, e) -> expr_local ~pos c && expr_local ~pos t && expr_local ~pos e
  | Ast.Element_ctor (_, content) -> List.for_all (expr_local ~pos) content
  | Ast.Text_ctor e -> expr_local ~pos e

and step_local (s : Ast.step) =
  (match s.Ast.axis with
  | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Following_sibling
  | Ast.Preceding_sibling ->
      false (* may escape the binder's subtree *)
  | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Self | Ast.Attribute ->
      true)
  && List.for_all pred_local s.Ast.predicates

and pred_local p =
  match p with
  | Ast.Number _ -> true (* positional, but per source node inside the subtree *)
  | e -> expr_local ~pos:true e

(* Predicates attached directly to the binder step: their position context is
   the binder's slot among its document siblings, which the self::node()
   rewrite cannot see. *)
let binder_pred_local p =
  match p with Ast.Number _ -> false | e -> expr_local ~pos:false e

(* ---- classification ----------------------------------------------------- *)

(* A step the automaton can encode: child or descendant axis, element test.
   [descendant::t] from a context set equals [//t] (children of
   descendant-or-self are exactly the strict descendants), so both collapse
   to a (separator, test) pair. *)
let structural (s : Ast.step) =
  (match s.Ast.axis with Ast.Child | Ast.Descendant -> true | _ -> false)
  && match s.Ast.test with Ast.Name _ | Ast.Wildcard -> true | _ -> false

let convert (sep, (s : Ast.step)) = (sep || s.Ast.axis = Ast.Descendant, s.Ast.test)

let classify_steps steps =
  let arr = Array.of_list steps in
  let n = Array.length arr in
  let is_struct i = structural (snd arr.(i)) in
  (* first step that cannot join the structural skeleton as-is *)
  let first_stop =
    let rec go i =
      if i >= n then None
      else if (not (is_struct i)) || (snd arr.(i)).Ast.predicates <> [] then Some i
      else go (i + 1)
    in
    go 0
  in
  let rest_from i = Array.to_list (Array.sub arr i (n - i)) in
  let finish binder_idx binder_preds rest =
    List.iter
      (fun (_, s) ->
        if not (step_local s) then
          rejectf "P004" "value step %s may escape the binder's subtree"
            (Ast.step_to_string s))
      rest;
    let prefix = List.map convert (Array.to_list (Array.sub arr 0 binder_idx)) in
    let binder = convert arr.(binder_idx) in
    let local =
      Ast.Path
        {
          absolute = false;
          steps =
            ( false,
              { Ast.axis = Ast.Self; test = Ast.Any_node; predicates = binder_preds } )
            :: rest;
        }
    in
    { prefix; binder; local }
  in
  match first_stop with
  | None -> finish (n - 1) [] []
  | Some k ->
      let sk = snd arr.(k) in
      if is_struct k then
        (* stopped on predicates: bind here when they survive the rewrite,
           else bind one step earlier so they become nested (per-parent,
           hence local) — possible only when an earlier step exists *)
        let preds = sk.Ast.predicates in
        if List.for_all binder_pred_local preds then finish k preds (rest_from (k + 1))
        else if k >= 1 && List.for_all pred_local preds then
          finish (k - 1) [] (rest_from k)
        else
          rejectf "P004"
            "predicate%s on step %s depend%s on context outside the binder's subtree"
            (if List.length preds > 1 then "s" else "")
            (Ast.step_to_string sk)
            (if List.length preds > 1 then "" else "s")
      else if k >= 1 then finish (k - 1) [] (rest_from k)
      else (
        match sk.Ast.axis with
        | Ast.Child | Ast.Descendant ->
            rejectf "P003" "leading step %s does not bind an element"
              (Ast.step_to_string sk)
        | a ->
            rejectf "P002" "unsupported axis %s:: on the leading step"
              (Ast.axis_to_string a))

let classify (e : Ast.expr) : (shape, reject) result =
  match e with
  (* a relative top-level path starts at the document node, exactly like an
     absolute one — the evaluator's initial context item is the root *)
  | Ast.Path { absolute = _; steps = _ :: _ as steps } -> (
      try Ok (classify_steps steps) with Rejected r -> Error r)
  | Ast.Path { steps = []; _ } ->
      Error { code = "P001"; detail = "empty location path" }
  | _ -> Error { code = "P001"; detail = "query is not a location path" }

(* ---- the step automaton over element labels ----------------------------- *)

type automaton = { steps : (bool * Ast.node_test) array; n_prefix : int }

let automaton (shape : shape) =
  {
    steps = Array.of_list (shape.prefix @ [ shape.binder ]);
    n_prefix = List.length shape.prefix;
  }

(* State k means: steps 0..k-1 are matched along the element chain; matching
   step [n_prefix] makes the element an occurrence of the binder. *)
let start = [ 0 ]

let test_matches test tag =
  match test with
  | Ast.Name n -> String.equal n tag
  | Ast.Wildcard -> true
  | Ast.Text_node | Ast.Any_node -> false

let advance a states tag =
  let next = Hashtbl.create 4 in
  let occurrence = ref false in
  List.iter
    (fun k ->
      let sep, test = a.steps.(k) in
      if test_matches test tag then
        if k = a.n_prefix then occurrence := true else Hashtbl.replace next (k + 1) ();
      if sep then Hashtbl.replace next k ())
    states;
  (Hashtbl.fold (fun k () acc -> k :: acc) next [], !occurrence)

let occurrence_path a labels =
  let rec go states = function
    | [] -> false
    | [ last ] -> snd (advance a states last)
    | l :: rest -> go (fst (advance a states l)) rest
  in
  go start labels
