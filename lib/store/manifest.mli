(** The store's on-disk commit record.

    A saved directory carries a [MANIFEST] file naming every live document
    with its kind, byte length, CRC-32 checksum, and the file that holds
    its bytes. Each save writes its documents under fresh
    generation-stamped filenames ([<name>.g<N>.xml]) and the manifest is
    written last (tmp + fsync + rename), so its rename is the {e commit
    point} of a save: a load that finds it trusts exactly the files it
    lists, a crash before it leaves the previous manifest — and therefore
    the previous store contents, whose files were never touched — in
    force.

    The format is line-based and self-checking:
    {v
    imprecise-manifest 2
    <name> certain|probabilistic <length> <crc32-hex> <file>
    ...
    end <entry-count> <crc32-hex of the entry block>
    v}
    Version-1 manifests (four fields, documents at [<name>.xml]) are still
    readable. Version 3 has the same entry syntax but its files may be
    compact binary ([.ipx], see {!Imprecise_pxml.Bincodec}) as well as XML;
    {!to_string} only emits the version-3 header when a binary file is
    actually listed, so stores without binary documents stay readable by
    pre-binary builds. A torn write cannot pass for a complete manifest:
    truncation loses the [end] line or breaks its count/checksum, and
    {!of_string} rejects it. *)

type kind = Certain | Probabilistic

type entry = { name : string; kind : kind; length : int; crc : int32; file : string }

type t = entry list

(** ["MANIFEST"] — reserved; never a document name (names end in [.xml]). *)
val filename : string

(** CRC-32 (the IEEE/zlib polynomial) of a string. *)
val crc32 : string -> int32

val to_string : t -> string

(** Parses and verifies header, entry syntax, entry count and block
    checksum. Any deviation — including duplicate names or files — is an
    error. *)
val of_string : string -> (t, string) result

val find : t -> string -> entry option

val pp_kind : Format.formatter -> kind -> unit
