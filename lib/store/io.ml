type t = {
  list_dir : string -> string list;
  read_file : string -> string;
  write_file : string -> string -> unit;
  fsync : string -> unit;
  fsync_dir : string -> unit;
  rename : src:string -> dst:string -> unit;
  delete : string -> unit;
  mkdir : string -> unit;
  exists : string -> bool;
}

type op = List_dir | Read | Write | Fsync | Fsync_dir | Rename | Delete | Mkdir

let is_mutating = function
  | Write | Fsync | Fsync_dir | Rename | Delete | Mkdir -> true
  | List_dir | Read -> false

exception Fault of string

(* One exception family for callers: Unix_error becomes Sys_error. *)
let sys_errors path f =
  try f ()
  with Unix.Unix_error (e, _, _) ->
    raise (Sys_error (Fmt.str "%s: %s" path (Unix.error_message e)))

let real =
  {
    list_dir = (fun dir -> Sys.readdir dir |> Array.to_list);
    read_file =
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)));
    write_file =
      (fun path data ->
        sys_errors path (fun () ->
            let fd =
              Unix.openfile path Unix.[ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644
            in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                let n = String.length data in
                let written = ref 0 in
                while !written < n do
                  written :=
                    !written + Unix.write_substring fd data !written (n - !written)
                done)));
    fsync =
      (fun path ->
        sys_errors path (fun () ->
            let fd = Unix.openfile path Unix.[ O_WRONLY; O_CLOEXEC ] 0 in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> Unix.fsync fd)));
    fsync_dir =
      (fun dir ->
        sys_errors dir (fun () ->
            let fd = Unix.openfile dir Unix.[ O_RDONLY; O_CLOEXEC ] 0 in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                (* some filesystems refuse to fsync a directory fd *)
                try Unix.fsync fd with Unix.Unix_error (Unix.EINVAL, _, _) -> ())));
    rename = (fun ~src ~dst -> Sys.rename src dst);
    delete = Sys.remove;
    mkdir = (fun dir -> Sys.mkdir dir 0o755);
    exists = Sys.file_exists;
  }

type fault_mode = Crash | Torn | Enospc

let faulty ?(mode = Crash) ~fail_at base =
  let n = ref 0 in
  (* true iff this mutating operation is the one that fails *)
  let armed () =
    incr n;
    !n = fail_at
  in
  let boom what =
    match mode with
    | Crash | Torn -> raise (Fault (Fmt.str "injected crash at operation %d (%s)" fail_at what))
    | Enospc ->
        raise (Sys_error (Fmt.str "%s: No space left on device (injected at operation %d)" what fail_at))
  in
  {
    base with
    write_file =
      (fun path data ->
        if armed () then begin
          (match mode with
          | Crash -> ()
          | Torn | Enospc ->
              (* a partial flush: only a prefix of the bytes reached disk *)
              base.write_file path (String.sub data 0 (String.length data / 2)));
          boom ("write " ^ path)
        end
        else base.write_file path data);
    fsync = (fun path -> if armed () then boom ("fsync " ^ path) else base.fsync path);
    fsync_dir =
      (fun dir -> if armed () then boom ("fsync-dir " ^ dir) else base.fsync_dir dir);
    rename =
      (fun ~src ~dst ->
        if armed () then boom ("rename " ^ dst) else base.rename ~src ~dst);
    delete = (fun path -> if armed () then boom ("delete " ^ path) else base.delete path);
    mkdir = (fun dir -> if armed () then boom ("mkdir " ^ dir) else base.mkdir dir);
  }

let observe f base =
  {
    list_dir =
      (fun dir ->
        let r = base.list_dir dir in
        f List_dir dir;
        r);
    read_file =
      (fun path ->
        let r = base.read_file path in
        f Read path;
        r);
    write_file =
      (fun path data ->
        base.write_file path data;
        f Write path);
    fsync =
      (fun path ->
        base.fsync path;
        f Fsync path);
    fsync_dir =
      (fun dir ->
        base.fsync_dir dir;
        f Fsync_dir dir);
    rename =
      (fun ~src ~dst ->
        base.rename ~src ~dst;
        f Rename dst);
    delete =
      (fun path ->
        base.delete path;
        f Delete path);
    mkdir =
      (fun dir ->
        base.mkdir dir;
        f Mkdir dir);
    exists = base.exists;
  }

let list_dir t = t.list_dir

let read_file t = t.read_file

let write_file t = t.write_file

let fsync t = t.fsync

let fsync_dir t = t.fsync_dir

let rename t = t.rename

let delete t = t.delete

let mkdir t = t.mkdir

let exists t = t.exists
