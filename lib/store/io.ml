type t = {
  list_dir : string -> string list;
  read_file : string -> string;
  write_file : string -> string -> unit;
  fsync : string -> unit;
  fsync_dir : string -> unit;
  rename : src:string -> dst:string -> unit;
  delete : string -> unit;
  mkdir : string -> unit;
  exists : string -> bool;
}

type op = List_dir | Read | Write | Fsync | Fsync_dir | Rename | Delete | Mkdir

let is_mutating = function
  | Write | Fsync | Fsync_dir | Rename | Delete | Mkdir -> true
  | List_dir | Read -> false

exception Fault of string

(* One exception family for callers: Unix_error becomes Sys_error. *)
let sys_errors path f =
  try f ()
  with Unix.Unix_error (e, _, _) ->
    raise (Sys_error (Fmt.str "%s: %s" path (Unix.error_message e)))

let real =
  {
    list_dir = (fun dir -> Sys.readdir dir |> Array.to_list);
    read_file =
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)));
    write_file =
      (fun path data ->
        sys_errors path (fun () ->
            let fd =
              Unix.openfile path Unix.[ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644
            in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                let n = String.length data in
                let written = ref 0 in
                while !written < n do
                  written :=
                    !written + Unix.write_substring fd data !written (n - !written)
                done)));
    fsync =
      (fun path ->
        sys_errors path (fun () ->
            let fd = Unix.openfile path Unix.[ O_WRONLY; O_CLOEXEC ] 0 in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> Unix.fsync fd)));
    fsync_dir =
      (fun dir ->
        sys_errors dir (fun () ->
            let fd = Unix.openfile dir Unix.[ O_RDONLY; O_CLOEXEC ] 0 in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                (* some filesystems refuse to fsync a directory fd *)
                try Unix.fsync fd with Unix.Unix_error (Unix.EINVAL, _, _) -> ())));
    rename = (fun ~src ~dst -> Sys.rename src dst);
    delete = Sys.remove;
    mkdir = (fun dir -> Sys.mkdir dir 0o755);
    exists = Sys.file_exists;
  }

type fault_mode = Crash | Torn | Enospc

let faulty ?(mode = Crash) ~fail_at base =
  let n = ref 0 in
  (* true iff this mutating operation is the one that fails *)
  let armed () =
    incr n;
    !n = fail_at
  in
  let boom what =
    match mode with
    | Crash | Torn -> raise (Fault (Fmt.str "injected crash at operation %d (%s)" fail_at what))
    | Enospc ->
        raise (Sys_error (Fmt.str "%s: No space left on device (injected at operation %d)" what fail_at))
  in
  {
    base with
    write_file =
      (fun path data ->
        if armed () then begin
          (match mode with
          | Crash -> ()
          | Torn | Enospc ->
              (* a partial flush: only a prefix of the bytes reached disk *)
              base.write_file path (String.sub data 0 (String.length data / 2)));
          boom ("write " ^ path)
        end
        else base.write_file path data);
    fsync = (fun path -> if armed () then boom ("fsync " ^ path) else base.fsync path);
    fsync_dir =
      (fun dir -> if armed () then boom ("fsync-dir " ^ dir) else base.fsync_dir dir);
    rename =
      (fun ~src ~dst ->
        if armed () then boom ("rename " ^ dst) else base.rename ~src ~dst);
    delete = (fun path -> if armed () then boom ("delete " ^ path) else base.delete path);
    mkdir = (fun dir -> if armed () then boom ("mkdir " ^ dir) else base.mkdir dir);
  }

(* Predicate-driven fault injection: [should_fail op path] is consulted on
   every operation, so a chaos plan can script transient faults ("first two
   manifest fsyncs"), persistent ones ("every write to this path"), and
   read-side damage, none of which the one-shot [faulty] can express. *)
let flaky ?(mode = Crash) ~should_fail base =
  let boom what =
    match mode with
    | Crash | Torn -> raise (Fault (Fmt.str "injected fault (%s)" what))
    | Enospc -> raise (Sys_error (Fmt.str "%s: No space left on device (injected)" what))
  in
  {
    list_dir =
      (fun dir ->
        if should_fail List_dir dir then boom ("list " ^ dir) else base.list_dir dir);
    read_file =
      (fun path ->
        if should_fail Read path then
          match mode with
          | Crash | Enospc -> boom ("read " ^ path)
          | Torn ->
              (* silent damage: a truncated read with no error — the CRC
                 gate, not the IO layer, must catch this *)
              let r = base.read_file path in
              String.sub r 0 (String.length r / 2)
        else base.read_file path);
    write_file =
      (fun path data ->
        if should_fail Write path then begin
          (match mode with
          | Crash -> ()
          | Torn | Enospc ->
              base.write_file path (String.sub data 0 (String.length data / 2)));
          boom ("write " ^ path)
        end
        else base.write_file path data);
    fsync =
      (fun path -> if should_fail Fsync path then boom ("fsync " ^ path) else base.fsync path);
    fsync_dir =
      (fun dir ->
        if should_fail Fsync_dir dir then boom ("fsync-dir " ^ dir)
        else base.fsync_dir dir);
    rename =
      (fun ~src ~dst ->
        if should_fail Rename dst then boom ("rename " ^ dst) else base.rename ~src ~dst);
    delete =
      (fun path ->
        if should_fail Delete path then boom ("delete " ^ path) else base.delete path);
    mkdir =
      (fun dir -> if should_fail Mkdir dir then boom ("mkdir " ^ dir) else base.mkdir dir);
    exists = base.exists;
  }

(* ---- fault classification ----------------------------------------------

   Which IO failures are worth retrying? Injected [Fault]s model crashes
   and torn writes — the transient kind the chaos harness scripts.
   [Sys_error] covers both transient conditions (full disk that a cleanup
   may free, EINTR, EAGAIN, flaky media) and permanent ones (permission
   denied, no such directory); only messages recognisably of the first
   kind classify as transient. *)

let transient_fragments =
  [
    "No space left";
    "Resource temporarily unavailable";
    "Interrupted system call";
    "Input/output error";
    "Too many open files";
    "Device or resource busy";
  ]

let contains ~needle hay =
  let nh = String.length needle and lh = String.length hay in
  let rec go i = i + nh <= lh && (String.sub hay i nh = needle || go (i + 1)) in
  go 0

let classify_error = function
  | Fault _ -> Imprecise_resilience.Retry.Transient
  | Sys_error msg
    when List.exists (fun needle -> contains ~needle msg) transient_fragments ->
      Imprecise_resilience.Retry.Transient
  | _ -> Imprecise_resilience.Retry.Permanent

(* ---- operation labels --------------------------------------------------

   The store runs different kinds of operations through one [t]: staging a
   document, committing the manifest, cleaning up superseded generations,
   quarantining damage. A spy that only sees [op] and [path] cannot tell a
   manifest-commit write from a document write, so the store brackets each
   kind in [with_tag] and tagged observers read the ambient label. *)

let default_tag = "io"

let tag_stack = ref []

let current_tag () = match !tag_stack with t :: _ -> t | [] -> default_tag

let with_tag tag f =
  tag_stack := tag :: !tag_stack;
  Fun.protect ~finally:(fun () -> tag_stack := List.tl !tag_stack) f

let observe_tagged f base =
  let report op ~bytes path = f op ~tag:(current_tag ()) ~bytes path in
  {
    list_dir =
      (fun dir ->
        let r = base.list_dir dir in
        report List_dir ~bytes:0 dir;
        r);
    read_file =
      (fun path ->
        let r = base.read_file path in
        report Read ~bytes:(String.length r) path;
        r);
    write_file =
      (fun path data ->
        base.write_file path data;
        report Write ~bytes:(String.length data) path);
    fsync =
      (fun path ->
        base.fsync path;
        report Fsync ~bytes:0 path);
    fsync_dir =
      (fun dir ->
        base.fsync_dir dir;
        report Fsync_dir ~bytes:0 dir);
    rename =
      (fun ~src ~dst ->
        base.rename ~src ~dst;
        report Rename ~bytes:0 dst);
    delete =
      (fun path ->
        base.delete path;
        report Delete ~bytes:0 path);
    mkdir =
      (fun dir ->
        base.mkdir dir;
        report Mkdir ~bytes:0 dir);
    exists = base.exists;
  }

let observe f base = observe_tagged (fun op ~tag:_ ~bytes:_ path -> f op path) base

(* ---- metrics ----------------------------------------------------------- *)

module Obs = Imprecise_obs.Obs

(* Registered at load time: the store's metric names are part of the
   catalogue even for processes that never touch a store. *)
let () =
  List.iter
    (fun name -> ignore (Obs.Metrics.counter name))
    [ "store.bytes_written"; "store.bytes_read"; "store.fsyncs"; "store.renames"; "store.deletes" ]

let metered ?registry base =
  let counter name =
    match registry with
    | None -> Obs.Metrics.counter name
    | Some registry -> Obs.Metrics.counter ~registry name
  in
  let bytes_written = counter "store.bytes_written" in
  let bytes_read = counter "store.bytes_read" in
  let fsyncs = counter "store.fsyncs" in
  let renames = counter "store.renames" in
  let deletes = counter "store.deletes" in
  observe_tagged
    (fun op ~tag ~bytes _path ->
      match op with
      | Write ->
          Obs.Metrics.incr ~by:bytes bytes_written;
          (* per-label attribution: store.writes.doc vs store.writes.manifest *)
          Obs.Metrics.incr (counter ("store.writes." ^ tag));
          Obs.Metrics.incr ~by:bytes (counter ("store.write_bytes." ^ tag))
      | Read -> Obs.Metrics.incr ~by:bytes bytes_read
      | Fsync | Fsync_dir -> Obs.Metrics.incr fsyncs
      | Rename -> Obs.Metrics.incr renames
      | Delete -> Obs.Metrics.incr deletes
      | List_dir | Mkdir -> ())
    base

let list_dir t = t.list_dir

let read_file t = t.read_file

let write_file t = t.write_file

let fsync t = t.fsync

let fsync_dir t = t.fsync_dir

let rename t = t.rename

let delete t = t.delete

let mkdir t = t.mkdir

let exists t = t.exists
