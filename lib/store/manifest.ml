type kind = Certain | Probabilistic

type entry = { name : string; kind : kind; length : int; crc : int32; file : string }

type t = entry list

let filename = "MANIFEST"

(* Version 3 = version 2 entries, except files may be compact binary
   ([.ipx]) as well as XML. The v3 header is only written when a binary
   file is actually present, so pre-binary readers keep reading any store
   they could have written. *)
let header_v3 = "imprecise-manifest 3"

let header = "imprecise-manifest 2"

(* version-1 manifests (no file field; documents lived at <name>.xml) are
   still readable *)
let header_v1 = "imprecise-manifest 1"

let binary_file file = Filename.check_suffix file ".ipx"

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl) in
      crc := Int32.logxor table.(i) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xFFFFFFFFl

let kind_to_string = function Certain -> "certain" | Probabilistic -> "probabilistic"

let kind_of_string = function
  | "certain" -> Some Certain
  | "probabilistic" -> Some Probabilistic
  | _ -> None

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let entry_line e =
  Fmt.str "%s %s %d %08lx %s" e.name (kind_to_string e.kind) e.length e.crc e.file

let to_string entries =
  let block = String.concat "" (List.map (fun e -> entry_line e ^ "\n") entries) in
  let h = if List.exists (fun e -> binary_file e.file) entries then header_v3 else header in
  Fmt.str "%s\n%send %d %08lx\n" h block (List.length entries) (crc32 block)

let parse_crc s = if String.length s = 8 then Int32.of_string_opt ("0x" ^ s) else None

let parse_entry ~v1 line =
  let fields = String.split_on_char ' ' line in
  let parsed =
    match (v1, fields) with
    | true, [ name; kind; length; crc ] -> Some (name, kind, length, crc, name ^ ".xml")
    | false, [ name; kind; length; crc; file ] -> Some (name, kind, length, crc, file)
    | _ -> None
  in
  match parsed with
  | Some (name, kind, length, crc, file) -> (
      match (kind_of_string kind, int_of_string_opt length, parse_crc crc) with
      | Some kind, Some length, Some crc when name <> "" && length >= 0 && file <> "" ->
          Ok { name; kind; length; crc; file }
      | _ -> Error (Fmt.str "malformed manifest entry %S" line))
  | None -> Error (Fmt.str "malformed manifest entry %S" line)

let of_string s =
  let ( let* ) = Result.bind in
  match String.split_on_char '\n' s with
  | h :: rest when h = header || h = header_v1 || h = header_v3 ->
      let v1 = h = header_v1 in
      let block = Buffer.create 256 in
      let rec go acc = function
        | [] | [ "" ] -> Error "truncated manifest: no end line"
        | line :: rest -> (
            (* the end line has three fields; an entry (even one for a
               document named "end") always has four (v1) or five (v2) *)
            match String.split_on_char ' ' line with
            | [ "end"; count; crc ] -> (
                match (int_of_string_opt count, parse_crc crc) with
                | Some count, Some crc ->
                    if count <> List.length acc then
                      Error
                        (Fmt.str "manifest end line declares %d entries, found %d" count
                           (List.length acc))
                    else if crc <> crc32 (Buffer.contents block) then
                      Error "manifest entry block fails its checksum"
                    else if rest <> [] && rest <> [ "" ] then
                      Error "trailing data after manifest end line"
                    else Ok (List.rev acc)
                | _ -> Error (Fmt.str "malformed manifest end line %S" line))
            | _ ->
                let* e = parse_entry ~v1 line in
                if List.exists (fun e' -> e'.name = e.name || e'.file = e.file) acc then
                  Error (Fmt.str "duplicate manifest entry for %S" e.name)
                else begin
                  Buffer.add_string block (line ^ "\n");
                  go (e :: acc) rest
                end)
      in
      go [] rest
  | _ -> Error "bad or missing manifest header"

let find t name = List.find_opt (fun e -> e.name = name) t
