(** A miniature XML document store — the MonetDB/XQuery stand-in.

    IMPrECISE in the paper is an XQuery module layered on an XML DBMS whose
    only obligations are to hold XML documents and evaluate queries over
    them (Fig. 4). This store provides the document-management half: named
    collections of certain and probabilistic documents, persisted as plain
    XML files (probabilistic documents via the {!Imprecise_pxml.Codec}
    encoding, recognised on load by their [p:prob] root). The query half is
    {!Imprecise_xpath} / {!Imprecise_pquery}, which operate on the values
    this store returns. *)

module Tree = Imprecise_xml.Tree
module Pxml = Imprecise_pxml.Pxml

type doc = Certain of Tree.t | Probabilistic of Pxml.doc

type t

val create : unit -> t

(** [put t name doc] adds or replaces. Names must be non-empty and use only
    [A-Za-z0-9._-]; raises [Invalid_argument] otherwise. *)
val put : t -> string -> doc -> unit

val get : t -> string -> doc option

val get_certain : t -> string -> Tree.t option

val get_probabilistic : t -> string -> Pxml.doc option

val remove : t -> string -> unit

val mem : t -> string -> bool

(** Names in insertion order. *)
val names : t -> string list

val size : t -> int

(** {1 Persistence}

    One file per document, [<name>.xml], in a directory. *)

val save : t -> dir:string -> (unit, string) result

val load : dir:string -> (t, string) result
