(** A miniature XML document store — the MonetDB/XQuery stand-in.

    IMPrECISE in the paper is an XQuery module layered on an XML DBMS whose
    only obligations are to hold XML documents and evaluate queries over
    them (Fig. 4). This store provides the document-management half: named
    collections of certain and probabilistic documents, persisted as plain
    XML files (probabilistic documents via the {!Imprecise_pxml.Codec}
    encoding, recognised on load by their [p:prob] root). The query half is
    {!Imprecise_xpath} / {!Imprecise_pquery}, which operate on the values
    this store returns.

    Persistence is crash-safe: saves stage each document through a
    tmp + fsync + rename protocol and commit by renaming a checksummed
    [MANIFEST]; loads salvage — they verify every file, quarantine what is
    damaged, and report rather than refuse. See [doc/store.md] for the
    on-disk layout and the exact guarantees. *)

module Tree = Imprecise_xml.Tree
module Pxml = Imprecise_pxml.Pxml

(** The IO layer the store runs on; swap in {!Io.faulty} to test crashes. *)
module Io = Io

(** The on-disk commit record written by {!save}. *)
module Manifest = Manifest

type doc = Certain of Tree.t | Probabilistic of Pxml.doc

type t

val create : unit -> t

(** [put t name doc] adds or replaces. Names must be non-empty and use only
    [A-Za-z0-9._-]; raises [Invalid_argument] otherwise. O(1) per call. *)
val put : t -> string -> doc -> unit

val get : t -> string -> doc option

val get_certain : t -> string -> Tree.t option

val get_probabilistic : t -> string -> Pxml.doc option

val remove : t -> string -> unit

val mem : t -> string -> bool

(** Names in insertion order. *)
val names : t -> string list

val size : t -> int

(** {1 Persistence}

    One file per document, [<name>.xml], plus a [MANIFEST], in a directory.

    [save] is atomic per document {e and} per collection: each file is
    written to [<name>.xml.tmp], fsynced, then renamed into place, and the
    manifest — listing every live document with its byte length and CRC-32
    — is written last by the same protocol. The manifest rename is the
    commit point; after it, files of removed documents and leftover [.tmp]
    staging files are deleted, so removed documents stay removed. A save
    that fails mid-way (crash, full disk) leaves the previous commit
    loadable. *)

val save : ?io:Io.t -> t -> dir:string -> (unit, string) result

(** How {!load} treats damage:
    - [Salvage] (default): recover every intact document; rename anything
      unparseable, checksum-mismatched, stray, or left over as [.tmp] to
      [<file>.corrupt] (bytes are kept, never silently deleted) and record
      the reason in the report;
    - [Strict]: all-or-nothing — the first problem aborts the load with
      [Error] and the directory is not touched. *)
type load_mode = Strict | Salvage

(** Per-document result of a load. *)
type outcome =
  | Recovered  (** verified (against the manifest when present) and loaded *)
  | Quarantined of string  (** renamed to [*.corrupt]; the reason why *)
  | Missing  (** listed in the manifest but no file on disk *)

type manifest_status =
  [ `Ok  (** present and verified *)
  | `Absent  (** legacy directory: files are taken at face value *)
  | `Corrupt of string  (** unreadable; quarantined, files taken at face value *)
  ]

type report = { manifest : manifest_status; docs : (string * outcome) list }

(** [true] iff every document came back [Recovered]. *)
val recovered_all : report -> bool

val pp_outcome : Format.formatter -> outcome -> unit

val pp_report : Format.formatter -> report -> unit

(** [load dir] reads a saved directory back. With a manifest, exactly the
    listed documents are candidates and each is verified against its length
    and checksum — a document whose bytes do not match its manifest entry
    is never returned. Without one, every [<valid-name>.xml] that parses is
    accepted (legacy layout). [Error] is reserved for the directory being
    unreadable — or, under [Strict], for any damage at all. *)
val load : ?io:Io.t -> ?mode:load_mode -> string -> (t * report, string) result
