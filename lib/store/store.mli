(** A miniature XML document store — the MonetDB/XQuery stand-in.

    IMPrECISE in the paper is an XQuery module layered on an XML DBMS whose
    only obligations are to hold XML documents and evaluate queries over
    them (Fig. 4). This store provides the document-management half: named
    collections of certain and probabilistic documents, persisted as plain
    XML files (probabilistic documents via the {!Imprecise_pxml.Codec}
    encoding, recognised on load by their [p:prob] root). The query half is
    {!Imprecise_xpath} / {!Imprecise_pquery}, which operate on the values
    this store returns.

    Persistence is crash-safe: saves stage each document through a
    tmp + fsync + rename protocol onto fresh generation-stamped filenames
    and commit by renaming a checksummed [MANIFEST]; loads salvage — they
    verify every file and report, rather than refuse, whatever is damaged.
    See [doc/store.md] for the on-disk layout and the exact guarantees. *)

module Tree = Imprecise_xml.Tree
module Pxml = Imprecise_pxml.Pxml

(** The IO layer the store runs on; swap in {!Io.faulty} to test crashes. *)
module Io = Io

(** The on-disk commit record written by {!save}. *)
module Manifest = Manifest

type doc = Certain of Tree.t | Probabilistic of Pxml.doc

type t

val create : unit -> t

(** [put t name doc] adds or replaces. Names must be non-empty and use only
    [A-Za-z0-9._-]; raises [Invalid_argument] otherwise. O(1) per call.
    Each put stamps the document with a fresh generation (see
    {!generation}), which is how query caches learn the old answers are
    stale. *)
val put : t -> string -> doc -> unit

val get : t -> string -> doc option

val get_certain : t -> string -> Tree.t option

val get_probabilistic : t -> string -> Pxml.doc option

val remove : t -> string -> unit

(** [generation t name] is the document's current generation: an integer
    drawn from a process-global counter by every {!put}, so a
    [(name, generation)] pair uniquely identifies one document state — even
    across distinct stores sharing a name. [None] when the document is
    absent. Cache keys built on it (see {!Imprecise_pquery.Cache}) are
    invalidated simply by the generation moving on. *)
val generation : t -> string -> int option

val mem : t -> string -> bool

(** Names in insertion order. *)
val names : t -> string list

val size : t -> int

(** {1 Persistence}

    One file per document, [<name>.g<N>.xml] (or [<name>.g<N>.ipx] for the
    compact binary format) where [N] is the generation of the save that
    wrote it, plus a [MANIFEST], in a directory.

    The on-disk serialization of each document is chosen by {!format}:
    text XML (readable by every earlier version) or the compact binary
    codec (smaller, faster to load, checksummed per document). Loads
    auto-detect the format of each file from its first bytes, whatever
    the manifest version says. *)

type format = Xml | Binary

(** [save] is atomic per document {e and} per collection: each file is
    written to a fresh generation-stamped name via tmp + fsync + rename,
    and the manifest — listing every live document with its byte length,
    CRC-32 and file — is committed last by the same protocol, with a
    directory fsync on either side so the commit is durable. Committed
    files are never renamed or overwritten: a save that fails at {e any}
    point (crash, power loss, full disk) leaves every file of the previous
    commit intact and the previous manifest in force. Only after the
    commit are superseded files deleted — the previous manifest's files,
    older-generation documents, and leftover staging files — so removed
    documents stay removed. [<base>.g<N>.xml], [<base>.g<N>.ipx],
    [*.xml.tmp], [*.ipx.tmp] and [MANIFEST] names are owned by the store;
    foreign files are never deleted.

    [retry] re-runs a failed save under the given
    {!Imprecise_resilience.Retry.policy} (default: one attempt, as
    before), classifying failures with {!Io.classify_error} — transient
    faults (injected crash/torn write, full disk, EINTR-family errors)
    are retried with exponential backoff, permanent ones (bad directory,
    permissions) fail immediately. Retrying is safe because every attempt
    stages under a fresh generation: a half-staged failed attempt is
    invisible to the next one and swept by its cleanup. [sleep] overrides
    the backoff sleep (seconds; tests pass [ignore]). Counters
    [resilience.retries] / [resilience.retry_giveups] record the
    outcome.

    [format] picks the serialization: [Xml] (default — plain text, the
    format every earlier version reads) or [Binary] — the compact v3
    format ({!Imprecise_pxml.Bincodec} frames, one per document, each
    length-prefixed and CRC-32-checksummed, with deep-equal subtrees
    stored once). A manifest listing any binary file carries the
    version-3 header. Loading auto-detects per file by magic, so a
    directory may mix formats and [doctor --migrate] is just
    load + save [~format:Binary]. *)
val save :
  ?io:Io.t ->
  ?retry:Imprecise_resilience.Retry.policy ->
  ?sleep:(float -> unit) ->
  ?format:format ->
  t ->
  dir:string ->
  (unit, string) result

(** How {!load} treats damage:
    - [Salvage] (default): recover every intact document and record what
      is wrong with the rest — unparseable, checksum-mismatched, stray,
      or left over as [.tmp] — in the report;
    - [Strict]: all-or-nothing — the first problem aborts the load with
      [Error]. *)
type load_mode = Strict | Salvage

(** Per-document result of a load. *)
type outcome =
  | Recovered  (** verified (against the manifest when present) and loaded *)
  | Quarantined of string
      (** damaged or stray; the reason why. Renamed to [*.corrupt] only
          when the load was called with [~quarantine:true] — bytes are
          kept, never silently deleted. *)
  | Missing  (** listed in the manifest but no file on disk *)

type manifest_status =
  [ `Ok  (** present and verified *)
  | `Absent  (** legacy directory: files are taken at face value *)
  | `Corrupt of string  (** unreadable; files taken at face value *)
  ]

type report = { manifest : manifest_status; docs : (string * outcome) list }

(** [true] iff every document came back [Recovered]. *)
val recovered_all : report -> bool

val pp_outcome : Format.formatter -> outcome -> unit

val pp_report : Format.formatter -> report -> unit

(** [load dir] reads a saved directory back. With a manifest, exactly the
    listed documents are candidates and each is verified against its length
    and checksum — a document whose bytes do not match its manifest entry
    is never returned. Without one, every [<valid-name>.xml] or [.ipx]
    that parses is accepted (legacy layout; a [.g<N>] generation tag is
    stripped from the name). [Error] is reserved for the directory being unreadable — or,
    under [Strict], for any damage at all.

    By default a load only reads: it works on a read-only directory and
    cannot disturb a save racing it. With [~quarantine:true] (used by
    [imprecise doctor --repair]) everything reported [Quarantined] — plus
    a corrupt manifest and leftover [.tmp] staging files — is renamed to
    [<file>.corrupt] so that a subsequent load finds a clean directory.

    [retry]/[sleep] as in {!save}: transient IO failures re-run the whole
    load (each attempt builds a fresh in-memory store, so attempts cannot
    contaminate each other); strict-mode damage is permanent and is never
    retried. *)
val load :
  ?io:Io.t ->
  ?retry:Imprecise_resilience.Retry.policy ->
  ?sleep:(float -> unit) ->
  ?mode:load_mode ->
  ?quarantine:bool ->
  string ->
  (t * report, string) result
