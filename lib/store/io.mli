(** Pluggable filesystem operations for the store.

    Every byte the store reads or writes goes through a value of type {!t}.
    The default, {!real}, performs direct syscalls ([Unix.fsync] included);
    tests swap in {!faulty}, a shim that simulates a crash, a torn write or
    a full disk at a chosen operation, and {!observe}, a spy that reports
    each completed operation — together they let the fault-injection suite
    walk every crash point of a [save] and assert what a subsequent [load]
    can still recover. *)

type t

(** The operation classes a shim can observe or fail. *)
type op = List_dir | Read | Write | Fsync | Fsync_dir | Rename | Delete | Mkdir

(** [is_mutating op] is [true] for the operations that change the disk
    (write, fsync, fsync-dir, rename, delete, mkdir) — the ones {!faulty}
    counts. *)
val is_mutating : op -> bool

(** Raised by {!faulty} in [Crash] and [Torn] modes: the process "died" at
    this operation. *)
exception Fault of string

(** Direct syscalls. Writes go through a file descriptor and report short
    writes; [fsync] forces data to disk; [fsync_dir] fsyncs a directory fd
    so completed renames and deletes survive power loss (filesystems that
    refuse to fsync a directory are tolerated). [Unix.Unix_error] is
    translated to [Sys_error] so callers handle one exception family. *)
val real : t

(** How the failing operation misbehaves:
    - [Crash]: the operation raises {!Fault} before doing anything;
    - [Torn]: a failing write flushes only a prefix of its bytes before
      raising {!Fault} (a partial flush at power loss); non-writes crash;
    - [Enospc]: like [Torn], but raises [Sys_error] "No space left on
      device" — the error path a full disk takes. *)
type fault_mode = Crash | Torn | Enospc

(** [faulty ~mode ~fail_at base] fails the [fail_at]-th (1-based) mutating
    operation; earlier and later operations pass through to [base].
    Default mode: [Crash]. *)
val faulty : ?mode:fault_mode -> fail_at:int -> t -> t

(** [flaky ?mode ~should_fail base] fails exactly the operations for which
    [should_fail op path] is true — unlike {!faulty} it covers reads and
    directory listings, and the predicate can script transient faults
    (fail the first [n] consultations, then heal) or persistent ones.
    Drive it from a {!Imprecise_resilience.Chaos} plan:
    [flaky ~should_fail:(fun op _ -> op = Fsync && Chaos.fires plan "fsync") real].

    Mode refines {!fault_mode} for the read path: [Torn] reads return a
    silent prefix of the data {e without} raising — damage only the
    store's CRC gate can catch; [Crash]/[Enospc] reads raise like any
    other operation. *)
val flaky : ?mode:fault_mode -> should_fail:(op -> string -> bool) -> t -> t

(** [classify_error e] sorts an IO failure for retry purposes:
    {!Fault} (injected crash/torn write) and [Sys_error]s whose message
    indicates a typically-transient condition (full disk, EINTR, EAGAIN,
    EIO, EMFILE, EBUSY) are
    [Transient]; everything else — permission denied, missing directory,
    and all non-IO exceptions — is [Permanent]. This is the default
    classifier behind {!Store.save}/{!Store.load} retries. *)
val classify_error : exn -> Imprecise_resilience.Retry.error_class

(** [observe f base] calls [f op path] after each operation of [base]
    {e completes} ([path] is the destination for renames). Failed
    operations are not reported, so wrapping a {!faulty} shim records
    exactly what reached the disk before the crash. *)
val observe : (op -> string -> unit) -> t -> t

(** {1 Labelled observation}

    The store runs different kinds of operations through one {!t} —
    staging document files, committing the manifest, cleaning up
    superseded generations, quarantining damage. [op] and [path] alone
    cannot attribute a write to its purpose, so the store brackets each
    kind in {!with_tag} and tagged observers receive the ambient label. *)

(** [with_tag tag f] runs [f ()] with [tag] as the current operation
    label (dynamically scoped; restored on exit, even on exceptions). *)
val with_tag : string -> (unit -> 'a) -> 'a

(** The innermost {!with_tag} label, or ["io"] outside any. *)
val current_tag : unit -> string

(** [observe_tagged f base] is {!observe} with attribution: [f] also
    receives the ambient tag and the payload size in bytes (the data
    length for writes, the result length for reads, [0] otherwise). *)
val observe_tagged : (op -> tag:string -> bytes:int -> string -> unit) -> t -> t

(** [metered ?registry base] feeds every completed operation into
    {!Imprecise_obs.Obs.Metrics} (default: the global registry):
    [store.bytes_written], [store.bytes_read], [store.fsyncs],
    [store.renames], [store.deletes], plus per-label attribution
    [store.writes.<tag>] and [store.write_bytes.<tag>] — e.g.
    [store.writes.manifest] vs [store.writes.doc]. {!Store.save} and
    {!Store.load} meter their io themselves; wrap explicitly only for
    custom registries or direct [Io] use. *)
val metered : ?registry:Imprecise_obs.Obs.Metrics.registry -> t -> t

(** {1 Operations}

    All raise [Sys_error] on real filesystem errors. *)

val list_dir : t -> string -> string list

val read_file : t -> string -> string

val write_file : t -> string -> string -> unit

val fsync : t -> string -> unit

val fsync_dir : t -> string -> unit

val rename : t -> src:string -> dst:string -> unit

val delete : t -> string -> unit

val mkdir : t -> string -> unit

val exists : t -> string -> bool
