module Xml = Imprecise_xml
module Tree = Xml.Tree
module Pxml = Imprecise_pxml.Pxml
module Codec = Imprecise_pxml.Codec

type doc = Certain of Tree.t | Probabilistic of Pxml.doc

type t = { tbl : (string, doc) Hashtbl.t; mutable order : string list }

let create () = { tbl = Hashtbl.create 16; order = [] }

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = '-')
       name

let put t name doc =
  if not (valid_name name) then
    invalid_arg (Fmt.str "Store.put: invalid document name %S" name);
  if not (Hashtbl.mem t.tbl name) then t.order <- t.order @ [ name ];
  Hashtbl.replace t.tbl name doc

let get t name = Hashtbl.find_opt t.tbl name

let get_certain t name =
  match get t name with Some (Certain tree) -> Some tree | _ -> None

let get_probabilistic t name =
  match get t name with Some (Probabilistic doc) -> Some doc | _ -> None

let remove t name =
  if Hashtbl.mem t.tbl name then begin
    Hashtbl.remove t.tbl name;
    t.order <- List.filter (fun n -> n <> name) t.order
  end

let mem t name = Hashtbl.mem t.tbl name

let names t = t.order

let size t = Hashtbl.length t.tbl

let doc_to_tree = function
  | Certain tree -> tree
  | Probabilistic doc -> Codec.encode doc

let save t ~dir =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun name ->
        let doc = Hashtbl.find t.tbl name in
        Xml.Printer.to_file ~decl:true ~indent:2
          (Filename.concat dir (name ^ ".xml"))
          (doc_to_tree doc))
      t.order;
    Ok ()
  with Sys_error msg -> Error msg

let load ~dir =
  try
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".xml")
      |> List.sort String.compare
    in
    let t = create () in
    let rec go = function
      | [] -> Ok t
      | file :: rest -> (
          let path = Filename.concat dir file in
          match Xml.Parser.parse_file path with
          | Error e -> Error (Fmt.str "%s: %s" path (Xml.Parser.error_to_string e))
          | Ok tree -> (
              let name = Filename.chop_suffix file ".xml" in
              if Tree.name tree = Some Codec.prob_tag then
                match Codec.decode tree with
                | Error msg -> Error (Fmt.str "%s: %s" path msg)
                | Ok doc ->
                    put t name (Probabilistic doc);
                    go rest
              else begin
                put t name (Certain tree);
                go rest
              end))
    in
    go files
  with Sys_error msg -> Error msg
