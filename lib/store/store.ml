module Xml = Imprecise_xml
module Tree = Xml.Tree
module Pxml = Imprecise_pxml.Pxml
module Codec = Imprecise_pxml.Codec
module Bincodec = Imprecise_pxml.Bincodec
module Io = Io
module Manifest = Manifest
module Obs = Imprecise_obs.Obs

let c_saves = Obs.Metrics.counter "store.saves"

let c_loads = Obs.Metrics.counter "store.loads"

let c_salvage = Obs.Metrics.counter "store.salvage_events"

let c_binary_bytes = Obs.Metrics.counter "store.binary_bytes"

type doc = Certain of Tree.t | Probabilistic of Pxml.doc

type t = {
  tbl : (string, doc) Hashtbl.t;
  (* newest first, so put is O(1); [names] reverses once and caches *)
  mutable rev_order : string list;
  mutable order_cache : string list option;
  gens : (string, int) Hashtbl.t;
}

(* Document generations come from one process-global counter, so a
   (name, generation) pair is never reused — not within a store, and not
   across two stores that happen to share a name. Query caches keyed by
   generation therefore never serve a stale answer. Atomic, because
   parallel query evaluation may share the process with a writer. *)
let gen_counter = Atomic.make 0

let create () =
  {
    tbl = Hashtbl.create 16;
    rev_order = [];
    order_cache = None;
    gens = Hashtbl.create 16;
  }

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = '-')
       name

let put t name doc =
  if not (valid_name name) then
    invalid_arg (Fmt.str "Store.put: invalid document name %S" name);
  if not (Hashtbl.mem t.tbl name) then begin
    t.rev_order <- name :: t.rev_order;
    t.order_cache <- None
  end;
  Hashtbl.replace t.tbl name doc;
  Hashtbl.replace t.gens name (Atomic.fetch_and_add gen_counter 1)

let get t name = Hashtbl.find_opt t.tbl name

let get_certain t name =
  match get t name with Some (Certain tree) -> Some tree | _ -> None

let get_probabilistic t name =
  match get t name with Some (Probabilistic doc) -> Some doc | _ -> None

let remove t name =
  if Hashtbl.mem t.tbl name then begin
    Hashtbl.remove t.tbl name;
    Hashtbl.remove t.gens name;
    t.rev_order <- List.filter (fun n -> n <> name) t.rev_order;
    t.order_cache <- None
  end

let generation t name = Hashtbl.find_opt t.gens name

let mem t name = Hashtbl.mem t.tbl name

let names t =
  match t.order_cache with
  | Some order -> order
  | None ->
      let order = List.rev t.rev_order in
      t.order_cache <- Some order;
      order

let size t = Hashtbl.length t.tbl

let doc_to_tree = function
  | Certain tree -> tree
  | Probabilistic doc -> Codec.encode doc

let kind_of_doc = function
  | Certain _ -> Manifest.Certain
  | Probabilistic _ -> Manifest.Probabilistic

(* ---- on-disk naming --------------------------------------------------- *)

type format = Xml | Binary

let xml_suffix = ".xml"

(* compact binary documents (store format v3, Bincodec frames) *)
let ipx_suffix = ".ipx"

let doc_suffixes = [ xml_suffix; ipx_suffix ]

let doc_suffix_of file = List.find_opt (Filename.check_suffix file) doc_suffixes

let tmp_suffix = ".tmp"

let corrupt_suffix = ".corrupt"

(* Committed document files carry the generation of the save that wrote
   them: [<name>.g<N>.xml] (or [.ipx] for binary). A save stages under
   filenames no previous commit references, so committed files are never
   renamed or overwritten; the manifest rename flips the store from one
   generation's files to the next, and only then are superseded files
   deleted. *)
let gen_filename name ~gen ~format =
  let suffix = match format with Xml -> xml_suffix | Binary -> ipx_suffix in
  Fmt.str "%s.g%d%s" name gen suffix

(* [split_gen "alpha.g12.xml"] is [Some ("alpha", 12)]; same for [.ipx]. *)
let split_gen file =
  match doc_suffix_of file with
  | None -> None
  | Some suffix -> (
      let base = Filename.chop_suffix file suffix in
      match String.rindex_opt base '.' with
      | None | Some 0 -> None
      | Some i ->
          let tag = String.sub base (i + 1) (String.length base - i - 1) in
          if
            String.length tag >= 2
            && tag.[0] = 'g'
            && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub tag 1 (String.length tag - 1))
          then
            match int_of_string_opt (String.sub tag 1 (String.length tag - 1)) with
            | Some gen -> Some (String.sub base 0 i, gen)
            | None -> None
          else None)

(* The document a file was meant to hold — for reports, and for loading
   directories whose manifest is absent or damaged. *)
let doc_name_of_file file =
  match split_gen file with
  | Some (name, _) -> name
  | None -> (
      match doc_suffix_of file with
      | Some suffix -> Filename.chop_suffix file suffix
      | None -> file)

let serialize ~format doc =
  match format with
  | Xml -> Xml.Printer.to_string ~decl:true ~indent:2 (doc_to_tree doc) ^ "\n"
  | Binary ->
      let data =
        match doc with
        | Certain tree -> Bincodec.tree_to_string tree
        | Probabilistic d -> Bincodec.doc_to_string d
      in
      Obs.Metrics.incr ~by:(String.length data) c_binary_bytes;
      data

(* ---- retry ------------------------------------------------------------- *)

module Retry = Imprecise_resilience.Retry

(* Attempts are idempotent by construction, so retrying is safe: a save
   stages each try under a fresh generation (leftover .tmp files and
   half-committed generations from a failed attempt are invisible to the
   next, and swept by its cleanup phase), and a load builds a fresh
   in-memory store per attempt. [Io.classify_error] keeps permanent
   failures (bad directory, strict-mode corruption) from burning
   attempts. *)
let with_retry ?retry ?sleep f =
  match retry with
  | None -> f ()
  | Some policy -> Retry.run ?sleep ~classify:Io.classify_error policy f

(* ---- save ------------------------------------------------------------- *)

let save_attempt io t ~dir ~format =
    if not (Io.exists io dir) then Io.mkdir io dir;
    let mpath = Filename.concat dir Manifest.filename in
    (* the previous commit, when readable: exactly the document files this
       save supersedes and may delete once it has committed *)
    let prev =
      if not (Io.exists io mpath) then []
      else
        match Manifest.of_string (Io.read_file io mpath) with
        | Ok entries -> entries
        | Error _ -> []
    in
    let gen =
      let max_gen acc file =
        match split_gen file with Some (_, g) -> max acc g | None -> acc
      in
      1
      + List.fold_left max_gen
          (List.fold_left (fun acc (e : Manifest.entry) -> max_gen acc e.file) 0 prev)
          (Io.list_dir io dir)
    in
    (* stage this generation: tmp, fsync, rename — onto fresh filenames, so
       the previous commit's files stay intact until after the commit *)
    let entries =
      Io.with_tag "doc" @@ fun () ->
      List.map
        (fun name ->
          let doc = Hashtbl.find t.tbl name in
          let data = serialize ~format doc in
          let file = gen_filename name ~gen ~format in
          let final = Filename.concat dir file in
          let tmp = final ^ tmp_suffix in
          Io.write_file io tmp data;
          Io.fsync io tmp;
          Io.rename io ~src:tmp ~dst:final;
          {
            Manifest.name;
            kind = kind_of_doc doc;
            length = String.length data;
            crc = Manifest.crc32 data;
            file;
          })
        (names t)
    in
    Io.with_tag "manifest" (fun () ->
        (* the renames must be durable before a manifest may name them *)
        Io.fsync_dir io dir;
        (* commit: the manifest names exactly the live documents *)
        let mtmp = mpath ^ tmp_suffix in
        Io.write_file io mtmp (Manifest.to_string entries);
        Io.fsync io mtmp;
        Io.rename io ~src:mtmp ~dst:mpath;
        (* ... and the commit must be durable before save reports success *)
        Io.fsync_dir io dir);
    (* after the commit, delete superseded store-owned files: the previous
       manifest's files, older-generation documents, and leftover staging
       files. Foreign files — anything the store did not write — are never
       touched. *)
    let committed file = List.exists (fun (e : Manifest.entry) -> e.file = file) entries in
    Io.with_tag "cleanup" (fun () ->
        List.iter
          (fun file ->
            let store_owned =
              List.exists (fun (e : Manifest.entry) -> e.file = file) prev
              || split_gen file <> None
              || List.exists
                   (fun s -> Filename.check_suffix file (s ^ tmp_suffix))
                   doc_suffixes
              || file = Manifest.filename ^ tmp_suffix
            in
            if store_owned && not (committed file) then
              Io.delete io (Filename.concat dir file))
          (Io.list_dir io dir))

let save ?(io = Io.real) ?retry ?sleep ?(format = Xml) t ~dir =
  let io = Io.metered io in
  Obs.Metrics.incr c_saves;
  Obs.Trace.with_span "store.save" @@ fun () ->
  Obs.Recorder.run ~op:"store.save" ~detail:dir @@ fun () ->
  match with_retry ?retry ?sleep (fun () -> save_attempt io t ~dir ~format) with
  | () -> Ok ()
  | exception Sys_error msg ->
      Obs.Recorder.outcome ("error:" ^ msg);
      Error msg
  | exception Io.Fault msg ->
      Obs.Recorder.outcome ("error:" ^ msg);
      Error msg

(* ---- load ------------------------------------------------------------- *)

type load_mode = Strict | Salvage

type outcome = Recovered | Quarantined of string | Missing

type manifest_status = [ `Ok | `Absent | `Corrupt of string ]

type report = { manifest : manifest_status; docs : (string * outcome) list }

let recovered_all r = List.for_all (fun (_, o) -> o = Recovered) r.docs

let pp_outcome ppf = function
  | Recovered -> Fmt.string ppf "recovered"
  | Quarantined reason -> Fmt.pf ppf "quarantined: %s" reason
  | Missing -> Fmt.string ppf "missing (listed in manifest, no file)"

let pp_report ppf r =
  (match r.manifest with
  | `Ok -> Fmt.pf ppf "manifest: ok@."
  | `Absent -> Fmt.pf ppf "manifest: absent (legacy directory, files taken at face value)@."
  | `Corrupt reason -> Fmt.pf ppf "manifest: corrupt (%s); files taken at face value@." reason);
  List.iter (fun (name, o) -> Fmt.pf ppf "  %-24s %a@." name pp_outcome o) r.docs

(* Strict mode turns the first problem into an [Error]. *)
exception Abort of string

let parse_doc data =
  if Bincodec.is_binary data then
    match Bincodec.of_string data with
    | Ok (Bincodec.Certain tree) -> Ok (Certain tree)
    | Ok (Bincodec.Probabilistic d) -> Ok (Probabilistic d)
    | Error msg -> Error msg
  else
    match Xml.Parser.parse_string data with
    | Error e -> Error (Xml.Parser.error_to_string e)
    | Ok tree ->
        if Tree.name tree = Some Codec.prob_tag then
          match Codec.decode tree with
          | Ok d -> Ok (Probabilistic d)
          | Error msg -> Error msg
        else Ok (Certain tree)

let load_attempt io ~mode ~quarantine dir =
    let files = Io.list_dir io dir |> List.sort String.compare in
    let t = create () in
    let outcomes = ref [] (* newest first *) in
    let note name o =
      if o <> Recovered then begin
        Obs.Metrics.incr c_salvage;
        Obs.Event.emit
          ~fields:
            [
              ("doc", Obs.Json.String name);
              ("outcome", Obs.Json.String (Fmt.str "%a" pp_outcome o));
            ]
          "store.salvage"
      end;
      outcomes := (name, o) :: !outcomes
    in
    let noted name = List.exists (fun (n, _) -> n = name) !outcomes in
    (* renames to *.corrupt only happen when the caller opted in; the
       default load has no write side effects at all *)
    let move_aside path =
      if quarantine then
        Io.with_tag "quarantine" (fun () ->
            Io.rename io ~src:path ~dst:(path ^ corrupt_suffix))
    in
    (* the manifest, if any *)
    let mpath = Filename.concat dir Manifest.filename in
    let manifest_status, manifest =
      if not (List.mem Manifest.filename files) then (`Absent, None)
      else
        match Manifest.of_string (Io.read_file io mpath) with
        | Ok m -> (`Ok, Some m)
        | Error reason -> (
            match mode with
            | Strict -> raise (Abort (Fmt.str "%s: %s" mpath reason))
            | Salvage ->
                move_aside mpath;
                (`Corrupt reason, None))
    in
    (* leftover staging files are interrupted writes; salvage reports them
       (strict ignores them, as the pre-manifest loader did) *)
    let tmp_notes =
      match mode with
      | Strict -> []
      | Salvage ->
          List.filter_map
            (fun file ->
              if not (Filename.check_suffix file tmp_suffix) then None
              else begin
                move_aside (Filename.concat dir file);
                if
                  List.exists
                    (fun s -> Filename.check_suffix file (s ^ tmp_suffix))
                    doc_suffixes
                then Some (doc_name_of_file (Filename.chop_suffix file tmp_suffix))
                else None
              end)
            files
    in
    let doc_files = List.filter (fun f -> doc_suffix_of f <> None) files in
    let fail_or_flag path key reason =
      match mode with
      | Strict -> raise (Abort (Fmt.str "%s: %s" path reason))
      | Salvage ->
          move_aside path;
          note key (Quarantined reason)
    in
    (match manifest with
    | Some entries ->
        (* the manifest is authoritative: verify each listed document *)
        List.iter
          (fun (e : Manifest.entry) ->
            let path = Filename.concat dir e.file in
            if not (valid_name e.name && valid_name e.file) then
              match mode with
              | Strict ->
                  raise (Abort (Fmt.str "%s: invalid manifest entry for %S" mpath e.name))
              | Salvage -> note e.name (Quarantined "invalid name or file in manifest entry")
            else if not (Io.exists io path) then
              match mode with
              | Strict -> raise (Abort (Fmt.str "%s: missing (listed in manifest)" path))
              | Salvage -> note e.name Missing
            else
              let data = Io.read_file io path in
              let verdict =
                if String.length data <> e.length || Manifest.crc32 data <> e.crc then
                  Error
                    "checksum mismatch against manifest (torn write, or data from an \
                     interrupted later save)"
                else
                  match parse_doc data with
                  | Error msg -> Error (Fmt.str "parse error: %s" msg)
                  | Ok doc ->
                      if kind_of_doc doc <> e.kind then
                        Error
                          (Fmt.str "manifest says %a, file decodes as %a" Manifest.pp_kind
                             e.kind Manifest.pp_kind (kind_of_doc doc))
                      else Ok doc
              in
              (match verdict with
              | Ok doc ->
                  put t e.name doc;
                  note e.name Recovered
              | Error reason -> fail_or_flag path e.name reason))
          entries;
        (* files the manifest does not know: leftovers of a removed
           document or of an interrupted save, or foreign files; never
           load them (loading would resurrect deleted data) *)
        List.iter
          (fun file ->
            if not (List.exists (fun (e : Manifest.entry) -> e.file = file) entries) then
              fail_or_flag (Filename.concat dir file) file
                "not listed in manifest (leftover of a removed document or an \
                 interrupted save, or a foreign file)")
          doc_files
    | None ->
        (* no manifest: a legacy or uncommitted directory; take every
           well-formed <valid-name>.xml at face value *)
        List.iter
          (fun file ->
            let path = Filename.concat dir file in
            let name = doc_name_of_file file in
            if not (valid_name name) then
              fail_or_flag path name (Fmt.str "invalid document name %S" name)
            else
              match parse_doc (Io.read_file io path) with
              | Error msg -> fail_or_flag path name msg
              | Ok doc ->
                  put t name doc;
                  if not (noted name) then note name Recovered)
          doc_files);
    (* interrupted writes with no surviving document of the same name *)
    List.iter
      (fun name ->
        if not (noted name) then
          note name (Quarantined "interrupted write (only a .tmp staging file found)"))
      tmp_notes;
    (t, { manifest = manifest_status; docs = List.rev !outcomes })

let load ?(io = Io.real) ?retry ?sleep ?(mode = Salvage) ?(quarantine = false) dir =
  let io = Io.metered io in
  Obs.Metrics.incr c_loads;
  Obs.Trace.with_span "store.load" @@ fun () ->
  Obs.Recorder.run ~op:"store.load" ~detail:dir @@ fun () ->
  match with_retry ?retry ?sleep (fun () -> load_attempt io ~mode ~quarantine dir) with
  | result -> Ok result
  | exception Abort msg ->
      Obs.Recorder.outcome ("error:" ^ msg);
      Error msg
  | exception Sys_error msg ->
      Obs.Recorder.outcome ("error:" ^ msg);
      Error msg
  | exception Io.Fault msg ->
      Obs.Recorder.outcome ("error:" ^ msg);
      Error msg
