module Xml = Imprecise_xml
module Tree = Xml.Tree
module Pxml = Imprecise_pxml.Pxml
module Codec = Imprecise_pxml.Codec
module Io = Io
module Manifest = Manifest

type doc = Certain of Tree.t | Probabilistic of Pxml.doc

type t = {
  tbl : (string, doc) Hashtbl.t;
  (* newest first, so put is O(1); [names] reverses once and caches *)
  mutable rev_order : string list;
  mutable order_cache : string list option;
}

let create () = { tbl = Hashtbl.create 16; rev_order = []; order_cache = None }

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = '-')
       name

let put t name doc =
  if not (valid_name name) then
    invalid_arg (Fmt.str "Store.put: invalid document name %S" name);
  if not (Hashtbl.mem t.tbl name) then begin
    t.rev_order <- name :: t.rev_order;
    t.order_cache <- None
  end;
  Hashtbl.replace t.tbl name doc

let get t name = Hashtbl.find_opt t.tbl name

let get_certain t name =
  match get t name with Some (Certain tree) -> Some tree | _ -> None

let get_probabilistic t name =
  match get t name with Some (Probabilistic doc) -> Some doc | _ -> None

let remove t name =
  if Hashtbl.mem t.tbl name then begin
    Hashtbl.remove t.tbl name;
    t.rev_order <- List.filter (fun n -> n <> name) t.rev_order;
    t.order_cache <- None
  end

let mem t name = Hashtbl.mem t.tbl name

let names t =
  match t.order_cache with
  | Some order -> order
  | None ->
      let order = List.rev t.rev_order in
      t.order_cache <- Some order;
      order

let size t = Hashtbl.length t.tbl

let doc_to_tree = function
  | Certain tree -> tree
  | Probabilistic doc -> Codec.encode doc

let kind_of_doc = function
  | Certain _ -> Manifest.Certain
  | Probabilistic _ -> Manifest.Probabilistic

(* ---- on-disk naming --------------------------------------------------- *)

let xml_suffix = ".xml"

let tmp_suffix = ".tmp"

let corrupt_suffix = ".corrupt"

let xml_filename name = name ^ xml_suffix

let serialize doc = Xml.Printer.to_string ~decl:true ~indent:2 (doc_to_tree doc) ^ "\n"

(* ---- save ------------------------------------------------------------- *)

let save ?(io = Io.real) t ~dir =
  try
    if not (Io.exists io dir) then Io.mkdir io dir;
    (* stage and publish every document: tmp, fsync, rename *)
    let entries =
      List.map
        (fun name ->
          let doc = Hashtbl.find t.tbl name in
          let data = serialize doc in
          let final = Filename.concat dir (xml_filename name) in
          let tmp = final ^ tmp_suffix in
          Io.write_file io tmp data;
          Io.fsync io tmp;
          Io.rename io ~src:tmp ~dst:final;
          {
            Manifest.name;
            kind = kind_of_doc doc;
            length = String.length data;
            crc = Manifest.crc32 data;
          })
        (names t)
    in
    (* commit: the manifest names exactly the live documents *)
    let mpath = Filename.concat dir Manifest.filename in
    let mtmp = mpath ^ tmp_suffix in
    Io.write_file io mtmp (Manifest.to_string entries);
    Io.fsync io mtmp;
    Io.rename io ~src:mtmp ~dst:mpath;
    (* after the commit, clean up files of removed documents and any
       leftover staging files *)
    List.iter
      (fun file ->
        let stale_doc =
          Filename.check_suffix file xml_suffix
          && not (mem t (Filename.chop_suffix file xml_suffix))
        in
        if stale_doc || Filename.check_suffix file tmp_suffix then
          Io.delete io (Filename.concat dir file))
      (Io.list_dir io dir);
    Ok ()
  with
  | Sys_error msg -> Error msg
  | Io.Fault msg -> Error msg

(* ---- load ------------------------------------------------------------- *)

type load_mode = Strict | Salvage

type outcome = Recovered | Quarantined of string | Missing

type manifest_status = [ `Ok | `Absent | `Corrupt of string ]

type report = { manifest : manifest_status; docs : (string * outcome) list }

let recovered_all r = List.for_all (fun (_, o) -> o = Recovered) r.docs

let pp_outcome ppf = function
  | Recovered -> Fmt.string ppf "recovered"
  | Quarantined reason -> Fmt.pf ppf "quarantined: %s" reason
  | Missing -> Fmt.string ppf "missing (listed in manifest, no file)"

let pp_report ppf r =
  (match r.manifest with
  | `Ok -> Fmt.pf ppf "manifest: ok@."
  | `Absent -> Fmt.pf ppf "manifest: absent (legacy directory, files taken at face value)@."
  | `Corrupt reason -> Fmt.pf ppf "manifest: corrupt (%s); quarantined@." reason);
  List.iter (fun (name, o) -> Fmt.pf ppf "  %-24s %a@." name pp_outcome o) r.docs

(* Strict mode turns the first problem into an [Error]. *)
exception Abort of string

let parse_doc data =
  match Xml.Parser.parse_string data with
  | Error e -> Error (Xml.Parser.error_to_string e)
  | Ok tree ->
      if Tree.name tree = Some Codec.prob_tag then
        match Codec.decode tree with
        | Ok d -> Ok (Probabilistic d)
        | Error msg -> Error msg
      else Ok (Certain tree)

let load ?(io = Io.real) ?(mode = Salvage) dir =
  try
    let files = Io.list_dir io dir |> List.sort String.compare in
    let t = create () in
    let outcomes = ref [] (* newest first *) in
    let note name o = outcomes := (name, o) :: !outcomes in
    let noted name = List.exists (fun (n, _) -> n = name) !outcomes in
    let quarantine path =
      Io.rename io ~src:path ~dst:(path ^ corrupt_suffix)
    in
    (* the manifest, if any *)
    let mpath = Filename.concat dir Manifest.filename in
    let manifest_status, manifest =
      if not (List.mem Manifest.filename files) then (`Absent, None)
      else
        match Manifest.of_string (Io.read_file io mpath) with
        | Ok m -> (`Ok, Some m)
        | Error reason -> (
            match mode with
            | Strict -> raise (Abort (Fmt.str "%s: %s" mpath reason))
            | Salvage ->
                quarantine mpath;
                (`Corrupt reason, None))
    in
    (* leftover staging files are interrupted writes; salvage quarantines
       them (strict leaves the directory untouched and ignores them, as the
       pre-manifest loader did) *)
    let tmp_notes =
      match mode with
      | Strict -> []
      | Salvage ->
          List.filter_map
            (fun file ->
              if not (Filename.check_suffix file tmp_suffix) then None
              else begin
                quarantine (Filename.concat dir file);
                if Filename.check_suffix file (xml_suffix ^ tmp_suffix) then
                  Some (Filename.chop_suffix file (xml_suffix ^ tmp_suffix))
                else None
              end)
            files
    in
    let xml_files = List.filter (fun f -> Filename.check_suffix f xml_suffix) files in
    let fail_or_quarantine path name reason =
      match mode with
      | Strict -> raise (Abort (Fmt.str "%s: %s" path reason))
      | Salvage ->
          quarantine path;
          note name (Quarantined reason)
    in
    (match manifest with
    | Some entries ->
        (* the manifest is authoritative: verify each listed document *)
        List.iter
          (fun (e : Manifest.entry) ->
            let path = Filename.concat dir (xml_filename e.name) in
            if not (valid_name e.name) then
              match mode with
              | Strict -> raise (Abort (Fmt.str "%s: invalid document name in manifest" path))
              | Salvage -> note e.name (Quarantined "invalid document name in manifest")
            else if not (Io.exists io path) then
              match mode with
              | Strict -> raise (Abort (Fmt.str "%s: missing (listed in manifest)" path))
              | Salvage -> note e.name Missing
            else
              let data = Io.read_file io path in
              let verdict =
                if String.length data <> e.length || Manifest.crc32 data <> e.crc then
                  Error
                    "checksum mismatch against manifest (torn write, or data from an \
                     interrupted later save)"
                else
                  match parse_doc data with
                  | Error msg -> Error (Fmt.str "parse error: %s" msg)
                  | Ok doc ->
                      if kind_of_doc doc <> e.kind then
                        Error
                          (Fmt.str "manifest says %a, file decodes as %a" Manifest.pp_kind
                             e.kind Manifest.pp_kind (kind_of_doc doc))
                      else Ok doc
              in
              (match verdict with
              | Ok doc ->
                  put t e.name doc;
                  note e.name Recovered
              | Error reason -> fail_or_quarantine path e.name reason))
          entries;
        (* files the manifest does not know: leftovers of removed documents
           (deleted in memory, save interrupted before cleanup) or foreign
           files; never resurrect them *)
        List.iter
          (fun file ->
            let name = Filename.chop_suffix file xml_suffix in
            if Manifest.find entries name = None then
              fail_or_quarantine (Filename.concat dir file) name
                "not listed in manifest (leftover of a removed document, or a foreign \
                 file)")
          xml_files
    | None ->
        (* no manifest: a legacy or uncommitted directory; take every
           well-formed <valid-name>.xml at face value *)
        List.iter
          (fun file ->
            let path = Filename.concat dir file in
            let name = Filename.chop_suffix file xml_suffix in
            if not (valid_name name) then
              fail_or_quarantine path name (Fmt.str "invalid document name %S" name)
            else
              match parse_doc (Io.read_file io path) with
              | Error msg -> fail_or_quarantine path name msg
              | Ok doc ->
                  put t name doc;
                  note name Recovered)
          xml_files);
    (* interrupted writes with no surviving document of the same name *)
    List.iter
      (fun name ->
        if not (noted name) then
          note name (Quarantined "interrupted write (only a .tmp staging file found)"))
      tmp_notes;
    Ok (t, { manifest = manifest_status; docs = List.rev !outcomes })
  with
  | Abort msg -> Error msg
  | Sys_error msg -> Error msg
  | Io.Fault msg -> Error msg
