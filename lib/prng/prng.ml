type t = int64

let make seed = Int64.of_int seed

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  let t' = Int64.add t golden in
  (mix t', t')

let split t =
  let a, t' = next t in
  (mix (Int64.logxor a 0x5851F42D4C957F2DL), t')

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v, t' = next t in
  (* keep 62 bits so the native-int conversion stays non-negative *)
  let v = Int64.to_int (Int64.shift_right_logical v 2) in
  (v mod bound, t')

let float t =
  let v, t' = next t in
  let v53 = Int64.to_float (Int64.shift_right_logical v 11) in
  (v53 /. 9007199254740992. (* 2^53 *), t')

let pick t xs =
  if xs = [] then invalid_arg "Prng.pick: empty list";
  let i, t' = int t (List.length xs) in
  (List.nth xs i, t')

let shuffle t xs =
  let arr = Array.of_list xs in
  let t = ref t in
  for i = Array.length arr - 1 downto 1 do
    let j, t' = int !t (i + 1) in
    t := t';
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  (Array.to_list arr, !t)
