(** Deterministic, splittable pseudo-random numbers (SplitMix64).

    All workload generation is a pure function of a seed, so every
    experiment in the repository is exactly reproducible. *)

type t

val make : int -> t

(** [next t] is a fresh 64-bit value and the advanced state. *)
val next : t -> int64 * t

(** [split t] is two independent generators. *)
val split : t -> t * t

(** [int t bound] is a value in [0, bound) and the advanced state. *)
val int : t -> int -> int * t

(** [float t] is a value in [0, 1). *)
val float : t -> float * t

(** [pick t xs] chooses uniformly from a non-empty list. *)
val pick : t -> 'a list -> 'a * t

(** [shuffle t xs] is a uniformly random permutation. *)
val shuffle : t -> 'a list -> 'a list * t
