(** Direct probabilistic query evaluation — no world enumeration.

    Exploits the independence structure of the layered model: distinct
    probability nodes choose independently, sibling possibilities are
    mutually exclusive. The supported query class is the widened direct
    fragment defined once in {!Imprecise_xpath.Fragment} (the static
    planner {!Imprecise_analyze.Plan} consumes the same definition, so
    its route prediction is exact). For queries in the fragment the
    result is {e exact} (property-tested against {!Naive}):

    - the query is a location path (absolute or relative — evaluation
      starts at the document node either way);
    - the steps before the {e binder} use the child or descendant axis
      with name/wildcard tests and no predicates ([descendant::t] is
      folded into a [//] separator);
    - predicates and the remaining steps only inspect the binder
      element's subtree: downward axes, [contains]/string functions,
      quantified expressions, and positional predicates {e below} the
      binder (per-source-item, hence subtree-local) are all admitted; a
      positional test on the binder step itself shifts the binder one
      step up when possible, and upward axes or absolute paths inside
      predicates are rejected ([P001]–[P004], see [doc/analysis.md]);
    - binder elements are not nested within each other in any world
      ([P005]), and each occurrence subtree stays under [local_limit]
      local worlds ([P006]).

    This covers the paper's demo queries, e.g.
    [//movie[.//genre="Horror"]/title] and
    [//movie[some $d in .//director satisfies contains($d,"John")]/title].

    How it works: each element the path can bind is an {e occurrence}; its
    subtree's local worlds (usually a handful — one per value conflict) give
    a local distribution of emitted values, memoised per shared subtree.
    For each value [v], [P(v ∈ answer)] is [1 − P(no occurrence emits v)],
    computed compositionally: product across independent probability nodes
    and occurrences, possibility-weighted sum within a probability node. *)

module Pxml = Imprecise_pxml.Pxml
module Ast = Imprecise_xpath.Ast

exception Unsupported of string
(** The query is outside the supported class (or a local subtree exceeds
    [local_limit] worlds); callers should fall back to {!Naive}. *)

(** [rank ?local_limit doc query] is the exact amalgamated ranked answer.
    [local_limit] (default 4096) bounds the per-occurrence local world
    enumeration. *)
val rank : ?local_limit:float -> Pxml.doc -> string -> Answer.t list

val rank_expr : ?local_limit:float -> Pxml.doc -> Ast.expr -> Answer.t list

(** [supported expr] checks the query class without evaluating. *)
val supported : Ast.expr -> bool
