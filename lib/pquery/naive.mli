(** Reference query evaluation by possible-world enumeration.

    The semantics of a query over a probabilistic document is the query's
    answer in every possible world; a value's probability is the total
    probability of the worlds in which it is part of the answer. This
    module implements that definition literally and serves as the ground
    truth for {!Direct}. Exponential — guard with [limit]. *)

module Pxml = Imprecise_pxml.Pxml
module Ast = Imprecise_xpath.Ast

exception Too_many_worlds of float

(** [rank ?limit ?jobs ?top_k ?tolerance doc query] enumerates all worlds
    (failing with {!Too_many_worlds} if the document has more than [limit]
    choice combinations, default [200_000]), evaluates [query] in each,
    and merges the answers. Values are XPath string-values of the selected
    nodes.

    [jobs] (default 1, capped at 64) spreads the enumeration over that
    many OCaml domains: each domain walks a disjoint shard of the choice
    space ({!Imprecise_pxml.Worlds.enumerate_shard}) into its own answer
    table and the tables are summed after the join. The merged
    distribution is the sequential one; only float summation order can
    differ, so probabilities agree to ~1 ulp. [jobs = 1] takes the
    original sequential path, bit for bit.

    [top_k] returns only the [k] most likely answers and stops
    enumerating once the remaining probability mass can no longer change
    their order {e and} is at most [tolerance] (default [1e-9]), so the
    reported probabilities are within [tolerance] of the full
    enumeration's. Raises [Invalid_argument] on [top_k <= 0]. With
    [jobs > 1] the cut happens after the parallel merge (no early stop:
    shards cannot observe each other's accumulated mass cheaply).

    [budget] is a cooperative cancellation token
    ({!Imprecise_resilience.Budget}): it is checked on entry and ticked
    once per enumerated world (across all shards when [jobs > 1]), so a
    blown deadline or world pool raises [Budget.Exceeded] promptly
    instead of walking the space to the end. With [jobs > 1] the first
    shard to trip cancels the budget, stopping every sibling domain at
    its next tick; all domains are still joined before the exception
    propagates. *)
val rank :
  ?budget:Imprecise_resilience.Budget.t ->
  ?limit:float ->
  ?jobs:int ->
  ?top_k:int ->
  ?tolerance:float ->
  Pxml.doc ->
  string ->
  Answer.t list

(** [rank_expr] is {!rank} on a pre-parsed query. *)
val rank_expr :
  ?budget:Imprecise_resilience.Budget.t ->
  ?limit:float ->
  ?jobs:int ->
  ?top_k:int ->
  ?tolerance:float ->
  Pxml.doc ->
  Ast.expr ->
  Answer.t list

(** [answer_in_world w query] is the distinct string-values the query
    selects in one world. *)
val answer_in_world : Imprecise_xml.Tree.t list -> Ast.expr -> string list
