(** Reference query evaluation by possible-world enumeration.

    The semantics of a query over a probabilistic document is the query's
    answer in every possible world; a value's probability is the total
    probability of the worlds in which it is part of the answer. This
    module implements that definition literally and serves as the ground
    truth for {!Direct}. Exponential — guard with [limit]. *)

module Pxml = Imprecise_pxml.Pxml
module Ast = Imprecise_xpath.Ast

exception Too_many_worlds of float

(** [rank ?limit doc query] enumerates all worlds (failing with
    {!Too_many_worlds} if the document has more than [limit] choice
    combinations, default [200_000]), evaluates [query] in each, and
    merges the answers. Values are XPath string-values of the selected
    nodes. *)
val rank : ?limit:float -> Pxml.doc -> string -> Answer.t list

(** [rank_expr] is {!rank} on a pre-parsed query. *)
val rank_expr : ?limit:float -> Pxml.doc -> Ast.expr -> Answer.t list

(** [answer_in_world w query] is the distinct string-values the query
    selects in one world. *)
val answer_in_world : Imprecise_xml.Tree.t list -> Ast.expr -> string list
