module Xml = Imprecise_xml
module Pxml = Imprecise_pxml.Pxml
module Worlds = Imprecise_pxml.Worlds
module Ast = Imprecise_xpath.Ast
module Eval = Imprecise_xpath.Eval

module Obs = Imprecise_obs.Obs
module Budget = Imprecise_resilience.Budget

exception Too_many_worlds of float

let c_worlds = Obs.Metrics.counter "pquery.worlds_enumerated"

let c_parallel = Obs.Metrics.counter "pquery.parallel_ranks"

let c_early = Obs.Metrics.counter "pquery.topk_early_stops"

module SS = Set.Make (String)

let answer_in_world forest expr =
  let values =
    List.concat_map
      (fun root ->
        match Eval.eval root expr with
        | Eval.Nodeset items -> List.map Eval.string_of_item items
        | v -> [ Eval.string_value v ])
      forest
  in
  SS.elements (SS.of_list values)

let add_world tbl p forest expr =
  if p > 0. then
    List.iter
      (fun v ->
        let prev = Option.value ~default:0. (Hashtbl.find_opt tbl v) in
        Hashtbl.replace tbl v (prev +. p))
      (answer_in_world forest expr)

let answers_of_tbl tbl =
  Answer.rank
    (Hashtbl.fold
       (fun value prob acc ->
         if prob <= 1e-12 then acc else { Answer.value; prob } :: acc)
       tbl [])

(* ---- top-k early termination --------------------------------------------

   Processed worlds carry mass [seen]; the rest of the enumeration carries
   at most [remaining = 1 - seen], so any value's final probability lies in
   [cur, cur + remaining] (unseen values in [0, remaining]). The top-k
   order is provably final once consecutive entries of the current ranking
   are separated by strictly more than [remaining] down to and including
   the k/k+1 boundary — nothing below (or unseen) can then climb past the
   k-th place, and no pair inside the top k can swap. The reported
   probabilities are underestimates by at most [remaining]; requiring
   [remaining <= tolerance] bounds that error, so the early-stopped answer
   equals the full enumeration within [tolerance]. *)
let topk_settled ranked k remaining =
  let arr = Array.of_list ranked in
  let p i = if i < Array.length arr then arr.(i).Answer.prob else 0. in
  Array.length arr >= k
  &&
  let rec gaps i = i >= k || (p i > p (i + 1) +. remaining && gaps (i + 1)) in
  gaps 0

let take k l = List.filteri (fun i _ -> i < k) l

(* Sequential shard walk: one answer table, one world count. *)
let shard_table ?budget ~shards ~shard doc expr =
  let tbl = Hashtbl.create 64 in
  let n = ref 0 in
  Seq.iter
    (fun (p, forest) ->
      incr n;
      add_world tbl p forest expr)
    (Worlds.enumerate_shard ?budget ~shards ~shard doc);
  (tbl, !n)

(* jobs = 1, with optional top-k early termination. The settled check is
   O(answers log answers); run it every 32 worlds so it stays invisible. *)
let rank_seq ?budget ?top_k ~tolerance doc expr =
  let tbl = Hashtbl.create 64 in
  let seen = ref 0. in
  let n = ref 0 in
  let rec walk seq =
    match Seq.uncons seq with
    | None -> None
    | Some ((p, forest), rest) ->
        incr n;
        seen := !seen +. p;
        add_world tbl p forest expr;
        let early =
          match top_k with
          | Some k when !n land 31 = 0 ->
              let remaining = Float.max 0. (1. -. !seen) in
              if remaining <= tolerance then
                let ranked = answers_of_tbl tbl in
                if topk_settled ranked k remaining then Some ranked else None
              else None
          | _ -> None
        in
        (match early with Some _ -> Obs.Metrics.incr c_early | None -> ());
        (match early with Some _ as r -> r | None -> walk rest)
  in
  let early = walk (Worlds.enumerate ?budget doc) in
  Obs.Metrics.incr ~by:!n c_worlds;
  let ranked = match early with Some r -> r | None -> answers_of_tbl tbl in
  match top_k with Some k -> take k ranked | None -> ranked

(* jobs > 1: each domain owns one shard of the choice space and accumulates
   its own table; the tables are summed afterwards. Shards partition the
   enumeration exactly, so the merged distribution is the sequential one
   (up to float summation order). Counters are bumped once, after the
   join — atomic counters make per-shard bumps safe too, but one
   batched add keeps the increment off the enumeration loop.

   Every shard (including shard 0 on this domain) runs inside [guarded],
   which captures the outcome instead of letting it escape: an escaping
   exception mid-join would leak unjoined domains. On any failure the
   shared budget is cancelled so sibling shards stop at their next tick
   rather than enumerating to the end; all workers are then joined and the
   first failure in shard order is re-raised. *)
let rank_par ?budget ~jobs ?top_k doc expr =
  Obs.Metrics.incr c_parallel;
  let guarded shard () =
    match shard_table ?budget ~shards:jobs ~shard doc expr with
    | r -> Ok r
    | exception e ->
        Option.iter Budget.cancel budget;
        Error e
  in
  let workers =
    List.init (jobs - 1) (fun i -> Domain.spawn (guarded (i + 1)))
  in
  let first = guarded 0 () in
  let outcomes = first :: List.map Domain.join workers in
  let parts =
    List.map (function Ok r -> r | Error e -> raise e) outcomes
  in
  Obs.Metrics.incr ~by:(List.fold_left (fun acc (_, n) -> acc + n) 0 parts) c_worlds;
  let merged = Hashtbl.create 64 in
  List.iter
    (fun (tbl, _) ->
      Hashtbl.iter
        (fun v p ->
          let prev = Option.value ~default:0. (Hashtbl.find_opt merged v) in
          Hashtbl.replace merged v (prev +. p))
        tbl)
    parts;
  let ranked = answers_of_tbl merged in
  match top_k with Some k -> take k ranked | None -> ranked

let rank_expr ?budget ?(limit = 200_000.) ?(jobs = 1) ?top_k ?(tolerance = 1e-9) doc expr
    =
  (match top_k with
  | Some k when k <= 0 -> invalid_arg "Naive.rank_expr: top_k must be positive"
  | _ -> ());
  Option.iter Budget.check budget;
  let combos = Pxml.world_count doc in
  if combos > limit then raise (Too_many_worlds combos);
  let jobs = max 1 (min jobs 64) in
  if jobs = 1 then rank_seq ?budget ?top_k ~tolerance doc expr
  else rank_par ?budget ~jobs ?top_k doc expr

let rank ?budget ?limit ?jobs ?top_k ?tolerance doc query =
  rank_expr ?budget ?limit ?jobs ?top_k ?tolerance doc
    (Imprecise_xpath.Parser.parse_exn query)
