module Xml = Imprecise_xml
module Pxml = Imprecise_pxml.Pxml
module Worlds = Imprecise_pxml.Worlds
module Ast = Imprecise_xpath.Ast
module Eval = Imprecise_xpath.Eval

module Obs = Imprecise_obs.Obs

exception Too_many_worlds of float

let c_worlds = Obs.Metrics.counter "pquery.worlds_enumerated"

module SS = Set.Make (String)

let answer_in_world forest expr =
  let values =
    List.concat_map
      (fun root ->
        match Eval.eval root expr with
        | Eval.Nodeset items -> List.map Eval.string_of_item items
        | v -> [ Eval.string_value v ])
      forest
  in
  SS.elements (SS.of_list values)

let rank_expr ?(limit = 200_000.) doc expr =
  let combos = Pxml.world_count doc in
  if combos > limit then raise (Too_many_worlds combos);
  let tbl = Hashtbl.create 64 in
  Seq.iter
    (fun (p, forest) ->
      Obs.Metrics.incr c_worlds;
      if p > 0. then
        List.iter
          (fun v ->
            let prev = Option.value ~default:0. (Hashtbl.find_opt tbl v) in
            Hashtbl.replace tbl v (prev +. p))
          (answer_in_world forest expr))
    (Worlds.enumerate doc);
  Answer.rank
    (Hashtbl.fold
       (fun value prob acc ->
         if prob <= 1e-12 then acc else { Answer.value; prob } :: acc)
       tbl [])

let rank ?limit doc query = rank_expr ?limit doc (Imprecise_xpath.Parser.parse_exn query)
