module Xml = Imprecise_xml
module Pxml = Imprecise_pxml.Pxml
module Worlds = Imprecise_pxml.Worlds
module Ast = Imprecise_xpath.Ast
module Eval = Imprecise_xpath.Eval

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* ---- query decomposition ------------------------------------------------ *)

module Fragment = Imprecise_xpath.Fragment

type plan = Fragment.shape = {
  prefix : (bool * Ast.node_test) list;
      (** structural steps before the binder; bool = descendant separator *)
  binder : bool * Ast.node_test;  (** the binder step's separator and test *)
  local : Ast.expr;  (** evaluated inside each occurrence's local worlds *)
}

(* The syntactic admission test lives in Imprecise_xpath.Fragment — one
   definition shared with the static planner, so a route prediction of
   `Direct can only be defeated by the data-dependent checks below (which
   the planner also mirrors, against the path summary). *)
let plan_of_expr (e : Ast.expr) : plan =
  match Fragment.classify e with
  | Ok shape -> shape
  | Error { Fragment.code; detail } -> unsupported "%s: %s" code detail

let supported e =
  match plan_of_expr e with _ -> true | exception Unsupported _ -> false

(* ---- emission trees ------------------------------------------------------ *)

type etree =
  | Edist of (float * etree list) list
  | Eelem of etree list
  | Eoccur of (string * float) list  (** local value distribution *)

(* Physical-identity memo table for shared subtrees: integration shares
   merged/embedded subtrees across possibilities, so the expensive local
   enumeration runs once per distinct subtree. Buckets by (depth-bounded)
   structural hash, compares physically within a bucket. *)
module Phys = struct
  type 'v t = (int, (Pxml.node * 'v) list ref) Hashtbl.t

  let table () : 'v t = Hashtbl.create 256

  let find (tbl : 'v t) (k : Pxml.node) : 'v option =
    match Hashtbl.find_opt tbl (Hashtbl.hash k) with
    | None -> None
    | Some bucket -> (
        match List.find_opt (fun (k', _) -> k' == k) !bucket with
        | Some (_, v) -> Some v
        | None -> None)

  let add (tbl : 'v t) (k : Pxml.node) (v : 'v) =
    let h = Hashtbl.hash k in
    match Hashtbl.find_opt tbl h with
    | None -> Hashtbl.add tbl h (ref [ (k, v) ])
    | Some bucket -> bucket := (k, v) :: !bucket
end

let local_distribution ~local_limit local_expr (node : Pxml.node) : (string * float) list =
  let count =
    (* world count of a single node *)
    Pxml.world_count { Pxml.choices = [ { Pxml.prob = 1.; nodes = [ node ] } ] }
  in
  if count > local_limit then
    unsupported "P006: occurrence subtree has %g local worlds (limit %g)" count
      local_limit;
  let tbl = Hashtbl.create 8 in
  Seq.iter
    (fun (q, tree) ->
      let root = Eval.root_node tree in
      let values =
        match Eval.eval_at ~root root local_expr with
        | Eval.Nodeset items -> List.sort_uniq String.compare (List.map Eval.string_of_item items)
        | v -> [ Eval.string_value v ]
      in
      List.iter
        (fun v ->
          let prev = Option.value ~default:0. (Hashtbl.find_opt tbl v) in
          Hashtbl.replace tbl v (prev +. q))
        values)
    (Worlds.enumerate_node node);
  Hashtbl.fold (fun v p acc -> (v, p) :: acc) tbl []

let build_etree ~local_limit (plan : plan) (doc : Pxml.doc) : etree =
  let occ_memo = Phys.table () in
  let automaton = Fragment.automaton plan in
  let advance states tag = Fragment.advance automaton states tag in
  let rec walk_dist states inside (d : Pxml.dist) : etree =
    Edist
      (List.map
         (fun (c : Pxml.choice) ->
           (c.Pxml.prob, List.filter_map (walk_node states inside) c.Pxml.nodes))
         d.Pxml.choices)
  and walk_node states inside (n : Pxml.node) : etree option =
    match n with
    | Pxml.Text _ -> None
    | Pxml.Elem (tag, _, content) ->
        let states', occurrence = advance states tag in
        if occurrence then begin
          if inside then
            unsupported "P005: nested occurrences of the binder element";
          (* Check for nested occurrences below, then summarise locally. *)
          List.iter (fun d -> ignore (walk_dist states' true d)) content;
          let dist =
            match Phys.find occ_memo n with
            | Some d -> d
            | None ->
                let d = local_distribution ~local_limit plan.local n in
                Phys.add occ_memo n d;
                d
          in
          Some (Eoccur dist)
        end
        else if states' = [] then None
        else Some (Eelem (List.map (walk_dist states' inside) content))
  in
  (* The initial state set: at the document node, about to match step 0. *)
  walk_dist Fragment.start false doc

module SS = Set.Make (String)

let values_of_etree t =
  let rec go acc = function
    | Eoccur dist -> List.fold_left (fun acc (v, _) -> SS.add v acc) acc dist
    | Eelem ts -> List.fold_left go acc ts
    | Edist cs -> List.fold_left (fun acc (_, ts) -> List.fold_left go acc ts) acc cs
  in
  SS.elements (go SS.empty t)

(* P(no occurrence emits v). *)
let rec noemit v = function
  | Eoccur dist -> 1. -. Option.value ~default:0. (List.assoc_opt v dist)
  | Eelem ts -> List.fold_left (fun acc t -> acc *. noemit v t) 1. ts
  | Edist cs ->
      List.fold_left
        (fun acc (p, ts) ->
          acc +. (p *. List.fold_left (fun a t -> a *. noemit v t) 1. ts))
        0. cs

let rank_expr ?(local_limit = Fragment.default_local_limit) doc expr =
  let plan = plan_of_expr expr in
  let etree = build_etree ~local_limit plan doc in
  let values = values_of_etree etree in
  Answer.rank
    (List.filter_map
       (fun v ->
         let p = 1. -. noemit v etree in
         if p <= 1e-12 then None else Some { Answer.value = v; prob = p })
       values)

let rank ?local_limit doc query =
  rank_expr ?local_limit doc (Imprecise_xpath.Parser.parse_exn query)
